package recmat

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// This file is the public face of the observability layer
// (internal/obs): per-engine metrics and the Chrome-trace event
// tracer. Profiler integration needs no API — worker goroutines carry
// a pprof label ("recmat_worker") from birth, and the driver phases
// run inside runtime/trace regions visible in go tool trace.

// Metrics is a registry of cumulative counters and histograms. Every
// Engine owns one and records into it on each DGEMM/GEMMPrepacked
// call: call and error counts, per-phase latency and GFLOPS
// histograms, scheduler spawn/steal counters, buffer-pool hit rates,
// arena heap-fallback bytes, and degradation decisions. Reading is
// race-free via Snapshot; Publish exposes the registry over expvar
// (/debug/vars) for scraping.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of a Metrics registry.
type MetricsSnapshot = obs.Snapshot

// Metrics returns the engine's metrics registry. It is live — counters
// keep moving as calls run — and safe to read concurrently with
// multiplications via its Snapshot method.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// EnableTracing starts recording an execution trace of every call on
// this engine: scheduler task and steal activity per worker, leaf
// kernel runs, pack/unpack chunks, driver phases, arena traffic, and
// degradation decisions. The trace accumulates in fixed per-worker
// ring buffers (oldest events drop on overflow — tracing never blocks
// or allocates on the hot path) and is written to w as Chrome Trace
// Event JSON by DisableTracing. Load the file at
// https://ui.perfetto.dev or chrome://tracing: one track per worker,
// plus one track per (concurrent) driver call carrying its phases.
//
// Only one tracer can be active per process; EnableTracing fails if
// this or another engine is already tracing. Calls from other engines
// in the process are recorded too (the tracer is process-global),
// folded onto this engine's worker tracks.
func (e *Engine) EnableTracing(w io.Writer) error {
	if w == nil {
		return fmt.Errorf("recmat: EnableTracing(nil)")
	}
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	if e.tracer != nil {
		return fmt.Errorf("recmat: tracing is already enabled on this engine")
	}
	t := obs.NewTracer(e.pool.Workers(), 0)
	if err := obs.Install(t); err != nil {
		return err
	}
	e.tracer, e.traceW = t, w
	return nil
}

// DisableTracing stops recording and writes the accumulated trace to
// the writer given to EnableTracing. Call it after the traced
// multiplications have returned; in-flight calls on other goroutines
// may lose events recorded during the export. It is an error if
// tracing is not enabled.
func (e *Engine) DisableTracing() error {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	if e.tracer == nil {
		return fmt.Errorf("recmat: tracing is not enabled")
	}
	t, w := e.tracer, e.traceW
	e.tracer, e.traceW = nil, nil
	obs.Uninstall(t)
	return t.Export(w)
}
