// Benchmarks regenerating the shape of every figure and table in the
// paper's evaluation (Section 5). Each benchmark mirrors one experiment;
// the cmd/experiments tool runs the same sweeps at the paper's full
// problem sizes and prints paper-style tables. Benchmark sizes here are
// scaled down so the whole suite completes in minutes on a laptop; the
// relative ordering (who wins, where the knees are) is what matters, as
// absolute times depend on the host.
//
// Index:
//
//	BenchmarkFig4TileSize     — Figure 4: execution time vs. tile size
//	BenchmarkFig5Robustness   — Figure 5: time vs. n near pathological sizes
//	BenchmarkFig6Layouts      — Figure 6: layouts × algorithms cross-product
//	BenchmarkFig7Kernels      — Figure 7: leaf-kernel quality overheads
//	BenchmarkSlowdown         — §5 text: element-level vs. tiled slowdowns
//	BenchmarkConversion       — §4: layout conversion cost vs. multiply
//	BenchmarkScalability      — §5: speedup on 1, 2, 4 workers
//	BenchmarkAblation*        — design-choice ablations (DESIGN.md §5):
//	                            spawn structure, fast cutoff, serial
//	                            cutoff, orientation cost, quadtree
//	                            baseline, low-memory Strassen
//	BenchmarkPackedAmortization — resident recursive layouts vs convert-per-call
//	BenchmarkBLAS3            — Cholesky / TRSM / SYRK on the recursive GEMM
package recmat

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/quadtree"
)

// benchGEMM runs C = A·B repeatedly under the given options.
func benchGEMM(b *testing.B, eng *Engine, n int, opts *Options) {
	rng := rand.New(rand.NewSource(1))
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	C := NewMatrix(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Mul(C, A, B, opts); err != nil {
			b.Fatal(err)
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "MFLOPS")
}

// BenchmarkFig4TileSize reproduces Figure 4: the standard algorithm with
// the Z-Morton layout at a fixed n, sweeping the tile size at which the
// recursive layout stops. The paper's curve is U-shaped: element-level
// tiles (t=1, the Frens–Wise layout) are an order of magnitude slower
// than the plateau around t=16–64, and very large tiles lose again.
func BenchmarkFig4TileSize(b *testing.B) {
	const n = 256
	eng := NewEngine(1) // the paper's Figure 4 is single-processor
	defer eng.Close()
	for _, t := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d/t=%d", n, t), func(b *testing.B) {
			benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: Standard, ForceTile: t})
		})
	}
}

// BenchmarkFig5Robustness reproduces Figure 5: execution time as n
// varies in small steps around a power of two, for the standard and
// Strassen algorithms under the canonical and Z-Morton layouts. The
// paper's signature is high variance for standard+ColMajor, damped
// variance for standard+ZMorton, and flat curves for Strassen under
// both.
func BenchmarkFig5Robustness(b *testing.B) {
	eng := NewEngine(2)
	defer eng.Close()
	for _, alg := range []Algorithm{Standard, Strassen} {
		for _, lo := range []Layout{ColMajor, ZMorton} {
			for n := 250; n <= 262; n += 3 {
				b.Run(fmt.Sprintf("%v/%v/n=%d", alg, lo, n), func(b *testing.B) {
					benchGEMM(b, eng, n, &Options{Layout: lo, Algorithm: alg})
				})
			}
		}
	}
}

// BenchmarkFig6Layouts reproduces Figure 6: the full cross-product of
// the six layouts and three algorithms at a non-power-of-two size. The
// paper's findings: recursive layouts beat ColMajor decisively for the
// standard algorithm, only marginally for the fast ones; and the five
// recursive layouts perform nearly identically.
func BenchmarkFig6Layouts(b *testing.B) {
	const n = 360
	eng := NewEngine(2)
	defer eng.Close()
	for _, alg := range []Algorithm{Standard, Strassen, Winograd} {
		for _, lo := range Layouts {
			b.Run(fmt.Sprintf("%v/%v/n=%d", alg, lo, n), func(b *testing.B) {
				benchGEMM(b, eng, n, &Options{Layout: lo, Algorithm: alg})
			})
		}
	}
}

// BenchmarkFig7Kernels reproduces Figure 7's overhead decomposition with
// the kernel-substitution documented in DESIGN.md: the ratio between the
// register-blocked kernel (standing in for native BLAS) and the paper's
// unrolled-4 kernel plays the role of the "no native BLAS" factor
// (1.2–1.4× in the paper), and naive/unrolled4 plays the compiler-
// quality factor (1.5–1.9×).
func BenchmarkFig7Kernels(b *testing.B) {
	const n = 256
	eng := NewEngine(1)
	defer eng.Close()
	for _, alg := range []Algorithm{Standard, Strassen} {
		for _, kn := range Kernels() {
			k, _ := KernelByName(kn)
			b.Run(fmt.Sprintf("%v/%s/n=%d", alg, kn, n), func(b *testing.B) {
				benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: alg, Kernel: k})
			})
		}
	}
}

// BenchmarkSlowdown reproduces the Section 5 slowdown-factor discussion:
// the paper reports that stopping the recursion at tiles (t=16) is only
// 1.88× slower than native dgemm at n=1024, versus the ≈8× Frens and
// Wise reported for element-level quadtrees. Here "native dgemm" is the
// register-blocked kernel run as a single tile.
func BenchmarkSlowdown(b *testing.B) {
	const n = 256
	eng := NewEngine(1)
	defer eng.Close()
	blocked, _ := KernelByName("blocked")
	b.Run("native-stand-in", func(b *testing.B) {
		// One huge "tile": the blocked kernel over the whole matrix.
		benchGEMM(b, eng, n, &Options{Layout: ColMajor, Algorithm: Standard,
			Kernel: blocked, ForceTile: n})
	})
	b.Run("recursive-t16", func(b *testing.B) {
		benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: Standard, ForceTile: 16})
	})
	b.Run("element-level-t1", func(b *testing.B) {
		benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: Standard, ForceTile: 1})
	})
}

// BenchmarkConversion measures the column-major ⇄ recursive conversion
// cost that Section 4 insists must be accounted for, relative to one
// multiplication at the same size.
func BenchmarkConversion(b *testing.B) {
	const n = 512
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(1))
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	C := NewMatrix(n, n)
	for _, lo := range []Layout{UMorton, XMorton, ZMorton, GrayMorton, Hilbert} {
		b.Run(fmt.Sprintf("%v", lo), func(b *testing.B) {
			var conv, comp float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := eng.Mul(C, A, B, &Options{Layout: lo, Algorithm: Standard})
				if err != nil {
					b.Fatal(err)
				}
				conv += (rep.ConvertIn + rep.ConvertOut).Seconds()
				comp += rep.Compute.Seconds()
			}
			if comp > 0 {
				b.ReportMetric(100*conv/(conv+comp), "conv%")
			}
		})
	}
}

// BenchmarkScalability reproduces the near-perfect 1→4 processor scaling
// of Figures 5 and 6 (worker counts beyond the host's CPUs just measure
// oversubscription).
func BenchmarkScalability(b *testing.B) {
	const n = 384
	for _, w := range []int{1, 2, 4} {
		for _, alg := range []Algorithm{Standard, Strassen} {
			b.Run(fmt.Sprintf("%v/workers=%d", alg, w), func(b *testing.B) {
				eng := NewEngine(w)
				defer eng.Close()
				benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: alg})
			})
		}
	}
}

// BenchmarkAblationSpawnStructure compares the two standard-algorithm
// parallelizations: accumulate form (no temporaries, two spawn rounds)
// versus the Figure 1(a) eight-spawn form with temporaries.
func BenchmarkAblationSpawnStructure(b *testing.B) {
	const n = 384
	eng := NewEngine(2)
	defer eng.Close()
	for _, alg := range []Algorithm{Standard, Standard8} {
		b.Run(alg.String(), func(b *testing.B) {
			benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: alg})
		})
	}
}

// BenchmarkAblationFastCutoff varies the point at which Strassen falls
// back to the standard recursion (the paper recurses fully; later work
// showed early cutoff wins).
func BenchmarkAblationFastCutoff(b *testing.B) {
	const n = 512
	eng := NewEngine(2)
	defer eng.Close()
	for _, fc := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cutoff=%d", fc), func(b *testing.B) {
			benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: Strassen, FastCutoff: fc})
		})
	}
}

// BenchmarkAblationSerialCutoff varies the task-spawning grain.
func BenchmarkAblationSerialCutoff(b *testing.B) {
	const n = 512
	eng := NewEngine(2)
	defer eng.Close()
	for _, sc := range []int{1, 2, 4, 8, 32} {
		b.Run(fmt.Sprintf("cutoff=%d", sc), func(b *testing.B) {
			benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: Standard, SerialCutoff: sc})
		})
	}
}

// BenchmarkAblationGrayHalfStep isolates the cost of orientation
// resolution in pre/post-additions by comparing a one-orientation curve
// (Z) against the two-orientation Gray-Morton and four-orientation
// Hilbert under Strassen, whose additions exercise the machinery.
func BenchmarkAblationOrientationCost(b *testing.B) {
	const n = 512
	eng := NewEngine(2)
	defer eng.Close()
	for _, lo := range []Layout{ZMorton, GrayMorton, Hilbert} {
		b.Run(fmt.Sprintf("%v", lo), func(b *testing.B) {
			benchGEMM(b, eng, n, &Options{Layout: lo, Algorithm: Strassen})
		})
	}
}

// BenchmarkAblationQuadtreeBaseline compares the Frens–Wise element-level
// quadtree representation (physically represented internal nodes, zero
// subtrees elided) against this library's tiled recursive layout and
// against forcing the tiled machinery down to single elements. The
// ordering — tiled ≫ forced-element-level ≈ quadtree — is the paper's
// core argument for stopping the layout recursion at tiles.
func BenchmarkAblationQuadtreeBaseline(b *testing.B) {
	const n = 128
	rng := rand.New(rand.NewSource(1))
	Ad := Random(n, n, rng)
	Bd := Random(n, n, rng)
	b.Run("quadtree-element", func(b *testing.B) {
		qa, qb := quadtree.FromDense(Ad), quadtree.FromDense(Bd)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			quadtree.Mul(qa, qb)
		}
	})
	eng := NewEngine(1)
	defer eng.Close()
	b.Run("tiled-element", func(b *testing.B) {
		benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: Standard, ForceTile: 1})
	})
	b.Run("tiled-t16", func(b *testing.B) {
		benchGEMM(b, eng, n, &Options{Layout: ZMorton, Algorithm: Standard, ForceTile: 16})
	})
}

// BenchmarkAblationLowMemStrassen reproduces the Section 5 curiosity:
// the space-conserving sequential Strassen variant (pre/post-additions
// interspersed with recursive calls) "behaves more like the standard
// algorithm: L_Z reduces execution times by 10–20%" — unlike the
// parallel Strassen, for which the layout is nearly irrelevant.
func BenchmarkAblationLowMemStrassen(b *testing.B) {
	const n = 360
	eng := NewEngine(1)
	defer eng.Close()
	for _, alg := range []Algorithm{Strassen, StrassenLowMem} {
		for _, lo := range []Layout{ColMajor, ZMorton} {
			b.Run(fmt.Sprintf("%v/%v", alg, lo), func(b *testing.B) {
				benchGEMM(b, eng, n, &Options{Layout: lo, Algorithm: alg})
			})
		}
	}
}

// BenchmarkPackedAmortization quantifies the benefit of keeping matrices
// resident in the recursive layout (the Frens–Wise usage model) against
// converting at every call (the dgemm interface model whose cost the
// paper insists on counting): a chain of k multiplications pays one
// conversion with Packed and k conversions through Mul.
func BenchmarkPackedAmortization(b *testing.B) {
	const n = 256
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(1))
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	opts := &Options{Layout: ZMorton, Algorithm: Standard, ForceTile: 32}
	b.Run("convert-every-call", func(b *testing.B) {
		C := NewMatrix(n, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Mul(C, A, B, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed-resident", func(b *testing.B) {
		pa, err := eng.Pack(A, opts)
		if err != nil {
			b.Fatal(err)
		}
		pb, err := eng.Pack(B, opts)
		if err != nil {
			b.Fatal(err)
		}
		pc, err := eng.NewPackedResult(pa, pb)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.MulPacked(pc, pa, pb, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBLAS3 measures the BLAS-3 layer built on the recursive
// multiply (the ATLAS extension): Cholesky, TRSM, and SYRK.
func BenchmarkBLAS3(b *testing.B) {
	const n = 256
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(1))
	A := spdMatrix(n, rng)
	opts := &Options{Layout: ZMorton, Algorithm: Standard}
	b.Run("cholesky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Cholesky(A, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	L, err := eng.Cholesky(A, opts)
	if err != nil {
		b.Fatal(err)
	}
	rhs := Random(n, 8, rng)
	b.Run("trsm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			X := rhs.Clone()
			if err := eng.TRSM(false, false, 1, L, X, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	G := Random(n, 64, rng)
	C := NewMatrix(n, n)
	b.Run("syrk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := eng.SYRK(false, 1, G, 0, C, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
