// Package bits provides the bit-manipulation primitives that underlie the
// recursive array layout functions of Chatterjee et al. (SPAA 1999):
// bitwise interleaving (the ⋈ operator of Section 3), Gray-code encoding
// and decoding, and helpers for extracting bit pairs.
//
// All functions operate on the low Width bits of their arguments; indices
// used by the layout package never exceed 2^31, so uint32 coordinates and
// uint64 interleaved keys cover every case in practice.
package bits

// Spread distributes the low 32 bits of x into the even bit positions of
// the result: bit k of x moves to bit 2k. It is the building block of
// Interleave and runs in O(lg lg n) word operations using the classic
// "magic masks" bit-dilation sequence.
func Spread(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// Compact is the inverse of Spread: it gathers the even bit positions of x
// (bits 0, 2, 4, ...) into a dense 32-bit value. Odd bit positions of x
// are ignored.
func Compact(x uint64) uint32 {
	v := x & 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return uint32(v)
}

// Interleave computes the bitwise interleaving u ⋈ v of the paper:
// the result has bit 2k+1 equal to bit k of u and bit 2k equal to bit k
// of v. In the paper's notation u ⋈ v = u_{d-1} v_{d-1} ... u_0 v_0, so
// u supplies the more significant bit of every pair.
func Interleave(u, v uint32) uint64 {
	return Spread(u)<<1 | Spread(v)
}

// Deinterleave splits an interleaved key back into its two components,
// inverting Interleave: u receives the odd bits, v the even bits.
func Deinterleave(x uint64) (u, v uint32) {
	return Compact(x >> 1), Compact(x)
}

// Gray returns the standard reflected binary Gray code G(i) of i:
// bit k of the result is b_k XOR b_{k+1}.
func Gray(i uint32) uint32 {
	return i ^ (i >> 1)
}

// GrayInverse decodes a reflected binary Gray code, returning the integer
// i such that Gray(i) == g. Decoding is the parallel prefix XOR of the
// bits of g from the most significant end, computed in O(lg w) steps.
func GrayInverse(g uint32) uint32 {
	g ^= g >> 16
	g ^= g >> 8
	g ^= g >> 4
	g ^= g >> 2
	g ^= g >> 1
	return g
}

// Gray64 returns the reflected binary Gray code of a 64-bit value. The
// Gray-Morton layout applies Gray decoding to the full interleaved
// 2d-bit key, so a 64-bit variant is required.
func Gray64(i uint64) uint64 {
	return i ^ (i >> 1)
}

// GrayInverse64 decodes a 64-bit reflected binary Gray code.
func GrayInverse64(g uint64) uint64 {
	g ^= g >> 32
	g ^= g >> 16
	g ^= g >> 8
	g ^= g >> 4
	g ^= g >> 2
	g ^= g >> 1
	return g
}

// Pair extracts the bit pair (bit k of i, bit k of j) as a 2-bit value
// with i's bit in the more significant position. The Hilbert finite state
// machine of Bially consumes exactly these pairs from the most significant
// level downward.
func Pair(i, j uint32, k uint) uint8 {
	return uint8((i>>k&1)<<1 | j>>k&1)
}

// Log2 returns floor(log2(x)) for x > 0, and 0 for x == 0.
func Log2(x uint32) uint {
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x int) bool {
	return x > 0 && x&(x-1) == 0
}

// NextPow2 returns the smallest power of two that is >= x, for x >= 1.
func NextPow2(x int) int {
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}
