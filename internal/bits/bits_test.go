package bits

import (
	"testing"
	"testing/quick"
)

func TestSpreadSmall(t *testing.T) {
	cases := []struct {
		in   uint32
		want uint64
	}{
		{0b0, 0b0},
		{0b1, 0b1},
		{0b10, 0b100},
		{0b11, 0b101},
		{0b101, 0b10001},
		{0b111, 0b10101},
		{0xFFFF, 0x55555555},
		{0xFFFFFFFF, 0x5555555555555555},
	}
	for _, c := range cases {
		if got := Spread(c.in); got != c.want {
			t.Errorf("Spread(%b) = %b, want %b", c.in, got, c.want)
		}
	}
}

func TestCompactInvertsSpread(t *testing.T) {
	if err := quick.Check(func(x uint32) bool {
		return Compact(Spread(x)) == x
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleaveSmall(t *testing.T) {
	// u ⋈ v puts u's bits in the odd (more significant) positions.
	cases := []struct {
		u, v uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 0b10},
		{0, 1, 0b01},
		{1, 1, 0b11},
		{0b11, 0b00, 0b1010},
		{0b10, 0b01, 0b1001},
		{0b111, 0b000, 0b101010},
	}
	for _, c := range cases {
		if got := Interleave(c.u, c.v); got != c.want {
			t.Errorf("Interleave(%b,%b) = %b, want %b", c.u, c.v, got, c.want)
		}
	}
}

func TestDeinterleaveInvertsInterleave(t *testing.T) {
	if err := quick.Check(func(u, v uint32) bool {
		a, b := Deinterleave(Interleave(u, v))
		return a == u && b == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayKnownSequence(t *testing.T) {
	// The classic 3-bit reflected Gray code sequence.
	want := []uint32{0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100}
	for i, w := range want {
		if got := Gray(uint32(i)); got != w {
			t.Errorf("Gray(%d) = %03b, want %03b", i, got, w)
		}
	}
}

func TestGrayAdjacentDifferByOneBit(t *testing.T) {
	for i := uint32(0); i < 4096; i++ {
		diff := Gray(i) ^ Gray(i+1)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("Gray(%d) and Gray(%d) differ in %b (not exactly one bit)", i, i+1, diff)
		}
	}
}

func TestGrayInverse(t *testing.T) {
	if err := quick.Check(func(i uint32) bool {
		return GrayInverse(Gray(i)) == i && Gray(GrayInverse(i)) == i
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestGray64Inverse(t *testing.T) {
	if err := quick.Check(func(i uint64) bool {
		return GrayInverse64(Gray64(i)) == i
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestGray64MatchesGray32OnSmallValues(t *testing.T) {
	for i := uint32(0); i < 1 << 16; i++ {
		if uint64(Gray(i)) != Gray64(uint64(i)) {
			t.Fatalf("Gray mismatch at %d", i)
		}
	}
}

func TestPair(t *testing.T) {
	i, j := uint32(0b1100), uint32(0b1010)
	want := []uint8{0b00, 0b01, 0b10, 0b11} // k = 0..3
	for k, w := range want {
		if got := Pair(i, j, uint(k)); got != w {
			t.Errorf("Pair(%b,%b,%d) = %b, want %b", i, j, k, got, w)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint32]uint{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10, 1025: 10}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, x := range []int{1, 2, 4, 8, 1 << 20} {
		if !IsPow2(x) {
			t.Errorf("IsPow2(%d) = false", x)
		}
	}
	for _, x := range []int{0, -1, -4, 3, 6, 12, 1<<20 + 1} {
		if IsPow2(x) {
			t.Errorf("IsPow2(%d) = true", x)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 17: 32, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := [][3]int{{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3}}
	for _, c := range cases {
		if got := CeilDiv(c[0], c[1]); got != c[2] {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func BenchmarkInterleave(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Interleave(uint32(i), uint32(i>>1))
	}
	_ = sink
}

func BenchmarkGrayInverse64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += GrayInverse64(uint64(i) * 0x9E3779B97F4A7C15)
	}
	_ = sink
}
