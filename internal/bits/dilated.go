package bits

// Dilated integer arithmetic. A "dilated" integer stores its bits in
// every other position of a word (even positions for one coordinate, odd
// for the other), which is exactly how the two coordinates of a
// Z-Morton (Lebesgue) index coexist inside one S value. Arithmetic on a
// coordinate can then be performed directly on the interleaved S value,
// without deinterleaving — the "fast algorithms, perhaps involving bit
// manipulation, for maintaining the dope vectors" the paper asks for in
// Section 1.
//
// The trick: to increment the even-position bits of s, set all the odd
// positions to 1 so that carries propagate across them, add 1, and mask
// the odd positions back out. General addition works the same way.

const (
	// MaskEven selects the even bit positions (coordinate j of a
	// Z-Morton key, per this package's Interleave convention).
	MaskEven uint64 = 0x5555555555555555
	// MaskOdd selects the odd bit positions (coordinate i).
	MaskOdd uint64 = 0xAAAAAAAAAAAAAAAA
)

// incEven increments the even-position (j) coordinate of a dilated key,
// discarding the odd positions.
func incEven(s uint64) uint64 {
	return ((s | MaskOdd) + 1) & MaskEven
}

func incOdd(s uint64) uint64 {
	return ((s | MaskEven) + 2) & MaskOdd
}

// ZNextJ advances a Z-Morton key to the cell one column to the right
// (j+1, same i): increment the even-dilated coordinate and splice the
// odd-dilated coordinate back in.
func ZNextJ(s uint64) uint64 {
	return incEven(s) | s&MaskOdd
}

// ZNextI advances a Z-Morton key to the cell one row down (i+1, same j).
func ZNextI(s uint64) uint64 {
	return incOdd(s) | s&MaskEven
}

// ZAddJ adds dj columns to a Z-Morton key. dj must be non-negative.
func ZAddJ(s uint64, dj uint32) uint64 {
	return ((s | MaskOdd) + Spread(dj)) & MaskEven | s&MaskOdd
}

// ZAddI adds di rows to a Z-Morton key. di must be non-negative.
func ZAddI(s uint64, di uint32) uint64 {
	return ((s | MaskEven) + Spread(di)<<1) & MaskOdd | s&MaskEven
}
