package bits

import (
	"testing"
	"testing/quick"
)

func TestZNextJ(t *testing.T) {
	// Walking a row with ZNextJ must agree with re-interleaving.
	for i := uint32(0); i < 16; i++ {
		s := Interleave(i, 0)
		for j := uint32(1); j < 64; j++ {
			s = ZNextJ(s)
			if want := Interleave(i, j); s != want {
				t.Fatalf("ZNextJ walk at (%d,%d): got %b, want %b", i, j, s, want)
			}
		}
	}
}

func TestZNextI(t *testing.T) {
	for j := uint32(0); j < 16; j++ {
		s := Interleave(0, j)
		for i := uint32(1); i < 64; i++ {
			s = ZNextI(s)
			if want := Interleave(i, j); s != want {
				t.Fatalf("ZNextI walk at (%d,%d): got %b, want %b", i, j, s, want)
			}
		}
	}
}

func TestZAdd(t *testing.T) {
	if err := quick.Check(func(i, j, di, dj uint16) bool {
		s := Interleave(uint32(i), uint32(j))
		sj := ZAddJ(s, uint32(dj))
		si := ZAddI(s, uint32(di))
		return sj == Interleave(uint32(i), uint32(j)+uint32(dj)) &&
			si == Interleave(uint32(i)+uint32(di), uint32(j))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestZAddCommutes(t *testing.T) {
	// Adding rows then columns equals columns then rows.
	s := Interleave(3, 5)
	a := ZAddI(ZAddJ(s, 7), 9)
	b := ZAddJ(ZAddI(s, 9), 7)
	if a != b || a != Interleave(12, 12) {
		t.Fatalf("dilated adds do not commute: %b vs %b", a, b)
	}
}

func TestMasksPartition(t *testing.T) {
	if MaskEven|MaskOdd != ^uint64(0) || MaskEven&MaskOdd != 0 {
		t.Fatal("masks do not partition the word")
	}
	if MaskEven != Spread(0xFFFFFFFF) {
		t.Fatal("MaskEven inconsistent with Spread")
	}
}

func BenchmarkZNextJIncremental(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s = ZNextJ(s) & (1<<40 - 1)
	}
	_ = s
}

func BenchmarkZNextJRecompute(b *testing.B) {
	// The non-incremental alternative: deinterleave, add, re-interleave.
	var s uint64
	for i := 0; i < b.N; i++ {
		u, v := Deinterleave(s)
		s = Interleave(u, v+1) & (1<<40 - 1)
	}
	_ = s
}
