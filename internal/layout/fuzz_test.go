package layout

import "testing"

// FuzzSRoundTrip drives arbitrary coordinates and depths through every
// curve's S/SInverse pair (including high depths the table-driven tests
// do not enumerate exhaustively).
func FuzzSRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint8(1))
	f.Add(uint32(3), uint32(5), uint8(4))
	f.Add(uint32(1023), uint32(511), uint8(10))
	f.Add(uint32(65535), uint32(1), uint8(16))
	f.Fuzz(func(t *testing.T, i, j uint32, dRaw uint8) {
		d := uint(dRaw)%24 + 1
		mask := uint32(1)<<d - 1
		i &= mask
		j &= mask
		for _, c := range Curves {
			s := c.S(i, j, d)
			if s >= uint64(1)<<(2*d) {
				t.Fatalf("%v d=%d: S(%d,%d)=%d out of range", c, d, i, j, s)
			}
			gi, gj := c.SInverse(s, d)
			if gi != i || gj != j {
				t.Fatalf("%v d=%d: round trip (%d,%d) -> %d -> (%d,%d)", c, d, i, j, s, gi, gj)
			}
		}
	})
}

// FuzzOrientedRoundTrip exercises the oriented variants used by the
// pre-/post-addition machinery.
func FuzzOrientedRoundTrip(f *testing.F) {
	f.Add(uint32(7), uint32(2), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, i, j uint32, dRaw, oRaw uint8) {
		d := uint(dRaw)%12 + 1
		mask := uint32(1)<<d - 1
		i &= mask
		j &= mask
		for _, c := range RecursiveCurves {
			o := Orient(int(oRaw) % c.Orientations())
			s := c.SOriented(o, i, j, d)
			gi, gj := c.SInverseOriented(o, s, d)
			if gi != i || gj != j {
				t.Fatalf("%v o=%d d=%d: oriented round trip failed at (%d,%d)", c, o, d, i, j)
			}
		}
	})
}
