package layout

// Dilation quantifies the multi-scale dilation effect of Section 3.4:
// when walking the curve position by position, how often and how far the
// walk jumps to a non-adjacent grid cell. The paper observes that "these
// jumps get less pronounced as the number of orientations increases" —
// Hilbert (4 orientations) has none, Gray-Morton (2) has short ones, and
// the Morton family (1) jumps across entire quadrant diagonals at every
// scale.
//
// A second measure looks from the grid side: for each pair of cardinal
// grid neighbors, the distance |S(a) − S(b)| along the curve. By the
// pigeonhole argument of Section 3.4 at most two of a cell's four
// neighbors can be curve-adjacent, so even Hilbert has stretched
// neighbor pairs — the relevant comparison is the average stretch.
type Dilation struct {
	// Jumps counts steps s→s+1 whose grid cells are not cardinal
	// neighbors.
	Jumps int
	// MaxJump is the largest Manhattan distance of any single step.
	MaxJump int
	// AvgStep is the mean Manhattan distance over all steps (1.0 means
	// the curve is continuous).
	AvgStep float64
	// AvgNeighborStretch is the mean |S(a)−S(b)| over all cardinal
	// neighbor pairs (a, b) of the grid.
	AvgNeighborStretch float64
	// AvgRowStretch and AvgColStretch split the neighbor stretch by
	// direction: row-direction pairs (i,j)→(i+1,j) and column-direction
	// pairs (i,j)→(i,j+1). Canonical layouts are extremely asymmetric
	// (one direction has stretch 1, the other 2^d — the "favors one
	// axis" dilation of Section 3); recursive layouts keep the two
	// within a small constant factor of each other.
	AvgRowStretch, AvgColStretch float64
}

// Asymmetry returns max(row, col) / min(row, col) average stretch — the
// degree to which the layout favors one axis.
func (d Dilation) Asymmetry() float64 {
	hi, lo := d.AvgRowStretch, d.AvgColStretch
	if lo > hi {
		hi, lo = lo, hi
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}

// MeasureDilation walks curve c at depth d and computes its dilation
// statistics.
func MeasureDilation(c Curve, d uint) Dilation {
	n := 1 << d
	total := n * n
	var dil Dilation
	var sumStep float64
	pi, pj := c.SInverse(0, d)
	for s := 1; s < total; s++ {
		i, j := c.SInverse(uint64(s), d)
		di, dj := int(i)-int(pi), int(j)-int(pj)
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		step := di + dj
		sumStep += float64(step)
		if step > 1 {
			dil.Jumps++
		}
		if step > dil.MaxJump {
			dil.MaxJump = step
		}
		pi, pj = i, j
	}
	dil.AvgStep = sumStep / float64(total-1)

	// Neighbor stretch over horizontal and vertical grid edges.
	var sumRow, sumCol float64
	s := func(i, j int) int64 { return int64(c.S(uint32(i), uint32(j), d)) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j+1 < n {
				v := s(i, j) - s(i, j+1)
				if v < 0 {
					v = -v
				}
				sumCol += float64(v)
			}
			if i+1 < n {
				v := s(i, j) - s(i+1, j)
				if v < 0 {
					v = -v
				}
				sumRow += float64(v)
			}
		}
	}
	edges := float64(n * (n - 1))
	dil.AvgRowStretch = sumRow / edges
	dil.AvgColStretch = sumCol / edges
	dil.AvgNeighborStretch = (sumRow + sumCol) / (2 * edges)
	return dil
}
