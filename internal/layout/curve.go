// Package layout implements the array layout functions of Chatterjee,
// Lebeck, Patnala, and Thottethodi, "Recursive Array Layouts and Fast
// Parallel Matrix Multiplication" (SPAA 1999), Section 3.
//
// A layout function maps a two-dimensional index space onto linear memory.
// The canonical layouts (row-major L_R, column-major L_C) favor one axis
// and dilate the other. The five recursive layouts — U-Morton, X-Morton,
// Z-Morton, Gray-Morton, and Hilbert — are derived from space-filling
// curves and keep quadrants of the index space contiguous in memory at
// every scale.
//
// Following the paper, the recursive layouts are applied in "T-space":
// the matrix is viewed as a 2^d × 2^d grid of t_R × t_C tiles; the curve
// orders the tiles, and each tile is stored contiguously in column-major
// order (equation (3) of the paper). This package provides:
//
//   - the S functions (position along the curve) for all curves, computed
//     with the fast bit-manipulation algorithms of Section 3;
//   - their inverses;
//   - the orientation machinery (quadrant visit order and child
//     orientations) that lets the matrix-multiplication recursion locate
//     quadrants implicitly, without ever evaluating S in the hot path
//     (Section 4, "Integration of address computation into control
//     structure");
//   - orientation permutation arrays used by the pre-/post-additions of
//     the fast algorithms under the multi-orientation layouts (Section 4,
//     "Issues with pre- and post-additions").
package layout

import "fmt"

// Curve identifies a layout function. The zero value is ColMajor, the
// dgemm default.
type Curve uint8

// The layout functions evaluated in the paper (Figure 2). ColMajor and
// RowMajor are the canonical layouts L_C and L_R; the remaining five are
// the recursive layouts L_U, L_X, L_Z, L_G, L_H.
const (
	ColMajor Curve = iota // L_C: column-major (Fortran, BLAS)
	RowMajor              // L_R: row-major (Pascal, C)
	UMorton               // L_U: single-orientation, U-shaped quadrant order
	XMorton               // L_X: single-orientation, X-shaped quadrant order
	ZMorton               // L_Z: single-orientation, Lebesgue curve
	GrayMorton            // L_G: two orientations, Gray-code interleaving
	Hilbert               // L_H: four orientations, Hilbert curve
	numCurves
)

// Curves lists every layout function in paper order, convenient for the
// cross-product experiments of Section 5.
var Curves = []Curve{ColMajor, RowMajor, UMorton, XMorton, ZMorton, GrayMorton, Hilbert}

// RecursiveCurves lists only the five recursive layouts of Section 3.
var RecursiveCurves = []Curve{UMorton, XMorton, ZMorton, GrayMorton, Hilbert}

var curveNames = [numCurves]string{
	"ColMajor", "RowMajor", "U-Morton", "X-Morton", "Z-Morton", "Gray-Morton", "Hilbert",
}

func (c Curve) String() string {
	if int(c) < len(curveNames) {
		return curveNames[c]
	}
	return fmt.Sprintf("Curve(%d)", uint8(c))
}

// ParseCurve maps a user-facing name (case-sensitive, as printed by
// String, or the short forms "c", "r", "u", "x", "z", "g", "h") to a Curve.
func ParseCurve(s string) (Curve, error) {
	switch s {
	case "ColMajor", "c", "col", "colmajor":
		return ColMajor, nil
	case "RowMajor", "r", "row", "rowmajor":
		return RowMajor, nil
	case "U-Morton", "u", "umorton":
		return UMorton, nil
	case "X-Morton", "x", "xmorton":
		return XMorton, nil
	case "Z-Morton", "z", "zmorton", "morton":
		return ZMorton, nil
	case "Gray-Morton", "g", "graymorton", "gray":
		return GrayMorton, nil
	case "Hilbert", "h", "hilbert":
		return Hilbert, nil
	}
	return 0, fmt.Errorf("layout: unknown curve %q", s)
}

// Recursive reports whether the curve is one of the five recursive
// layouts (as opposed to a canonical layout).
func (c Curve) Recursive() bool {
	return c >= UMorton && c <= Hilbert
}

// Orientations returns the number of distinct orientations the curve's
// self-similar construction requires: 1 for the Morton family, 2 for
// Gray-Morton, 4 for Hilbert (Section 3 classification). Canonical
// layouts report 1.
func (c Curve) Orientations() int {
	switch c {
	case GrayMorton:
		return 2
	case Hilbert:
		return 4
	default:
		return 1
	}
}

// Orient identifies one of a curve's orientations. Orientation 0 is the
// reference orientation in which whole matrices are laid out. For
// Gray-Morton, orientation 1 is the 180°-rotated variant. For Hilbert the
// four orientations form the Klein four-group {identity, transpose,
// 180° rotation, anti-transpose}, and composition is XOR of indices.
type Orient uint8

const (
	// OrientID is the identity (reference) orientation.
	OrientID Orient = 0
	// OrientT is the transpose orientation (Hilbert only).
	OrientT Orient = 1
	// OrientR is the 180°-rotation orientation (Gray-Morton uses
	// index 1 for its rotated orientation; Hilbert uses index 2).
	OrientR Orient = 2
	// OrientAT is the anti-transpose orientation (Hilbert only).
	OrientAT Orient = 3
)

// A quadrant of a square index space is encoded as 2*rowBit + colBit:
// NW=0, NE=1, SW=2, SE=3.
const (
	QuadNW = 0
	QuadNE = 1
	QuadSW = 2
	QuadSE = 3
)

// applyTransform applies Hilbert orientation transform t (Klein
// four-group element) to quadrant q.
func applyTransform(t Orient, q int) int {
	qi, qj := q>>1, q&1
	switch t {
	case OrientID:
		return q
	case OrientT: // transpose: swap row and column bits
		return qj<<1 | qi
	case OrientR: // 180° rotation: complement both bits
		return q ^ 3
	default: // OrientAT: transpose then rotate
		return (qj<<1 | qi) ^ 3
	}
}

// Descent tables. quadOrder[c][o][p] is the quadrant visited at position
// p along curve c in orientation o; childOrient[c][o][p] is the
// orientation of that child quadrant. posOf inverts quadOrder.
var (
	quadOrder   [numCurves][4][4]uint8
	childOrient [numCurves][4][4]Orient
	posOf       [numCurves][4][4]uint8
)

func init() {
	// Single-orientation curves: orders derived directly from the bit
	// formulas of Section 3.1 (position p as a function of the level's
	// row bit and column bit).
	single := map[Curve][4]uint8{
		// L_Z: p = 2*ib + jb → NW, NE, SW, SE.
		ZMorton: {QuadNW, QuadNE, QuadSW, QuadSE},
		// L_U: p = 2*jb + (ib^jb) → NW, SW, SE, NE.
		UMorton: {QuadNW, QuadSW, QuadSE, QuadNE},
		// L_X: p = 2*(ib^jb) + jb → NW, SE, SW, NE.
		XMorton: {QuadNW, QuadSE, QuadSW, QuadNE},
	}
	for c, ord := range single {
		quadOrder[c][0] = ord
		// childOrient stays all-zero: one orientation.
	}

	// Gray-Morton: base order NW, NE, SE, SW with children alternating
	// between the reference and rotated orientations; the rotated
	// orientation visits the 180°-rotated quadrants with conjugated
	// child orientations. (Derived from S = G⁻¹(G(i) ⋈ G(j)); pinned
	// against the direct formula in the tests.)
	quadOrder[GrayMorton][0] = [4]uint8{QuadNW, QuadNE, QuadSE, QuadSW}
	childOrient[GrayMorton][0] = [4]Orient{0, 1, 1, 0}
	for p := 0; p < 4; p++ {
		quadOrder[GrayMorton][1][p] = uint8(applyTransform(OrientR, int(quadOrder[GrayMorton][0][p])))
		childOrient[GrayMorton][1][p] = childOrient[GrayMorton][0][p] ^ 1
	}

	// Hilbert: base order NW, SW, SE, NE; base child transforms
	// T, id, id, AT. Orientation o visits o(base[p]) with child
	// orientation o ∘ baseChild[p] (= XOR in the Klein four-group).
	base := [4]uint8{QuadNW, QuadSW, QuadSE, QuadNE}
	baseChild := [4]Orient{OrientT, OrientID, OrientID, OrientAT}
	for o := Orient(0); o < 4; o++ {
		for p := 0; p < 4; p++ {
			quadOrder[Hilbert][o][p] = uint8(applyTransform(o, int(base[p])))
			childOrient[Hilbert][o][p] = o ^ baseChild[p]
		}
	}

	// Canonical curves get the Z order for completeness so that generic
	// code may iterate positions; core never descends them this way.
	quadOrder[ColMajor][0] = [4]uint8{QuadNW, QuadSW, QuadNE, QuadSE}
	quadOrder[RowMajor][0] = [4]uint8{QuadNW, QuadNE, QuadSW, QuadSE}

	for c := Curve(0); c < numCurves; c++ {
		for o := 0; o < 4; o++ {
			for p := 0; p < 4; p++ {
				posOf[c][o][quadOrder[c][o][p]] = uint8(p)
			}
		}
	}
}

// QuadAt returns the quadrant visited at position p (0..3) along curve c
// in orientation o.
func (c Curve) QuadAt(o Orient, p int) int {
	return int(quadOrder[c][o][p])
}

// ChildOrient returns the orientation of the child quadrant at position p
// along curve c in orientation o.
func (c Curve) ChildOrient(o Orient, p int) Orient {
	return childOrient[c][o][p]
}

// PosOf returns the position along the curve (in orientation o) at which
// quadrant q is visited; it inverts QuadAt.
func (c Curve) PosOf(o Orient, q int) int {
	return int(posOf[c][o][q])
}
