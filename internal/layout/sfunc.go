package layout

import "repro/internal/bits"

// S returns the position along curve c of the cell at rectangular
// coordinates (i, j) in a 2^d × 2^d grid — the 𝕊 function of Section 3.
// S(0,0) = 0 for every curve. The canonical curves are included so that
// conversion and visualization code can treat all layouts uniformly:
// for them "position along the curve" is simply the canonical offset.
//
// The Morton-family and Gray-Morton values are computed with the O(lg w)
// bit-manipulation formulas of Sections 3.1 and 3.2; Hilbert uses the
// Bially finite-state-machine method of Section 3.3, consuming one bit
// pair of (i, j) per step from the most significant level downward and
// emitting two bits of S per step.
func (c Curve) S(i, j uint32, d uint) uint64 {
	switch c {
	case ColMajor:
		return uint64(j)<<d | uint64(i)
	case RowMajor:
		return uint64(i)<<d | uint64(j)
	case UMorton:
		return bits.Interleave(j, i^j)
	case XMorton:
		return bits.Interleave(i^j, j)
	case ZMorton:
		return bits.Interleave(i, j)
	case GrayMorton:
		return bits.GrayInverse64(bits.Interleave(bits.Gray(i), bits.Gray(j)))
	case Hilbert:
		var s uint64
		state := OrientID
		for k := int(d) - 1; k >= 0; k-- {
			q := int(bits.Pair(i, j, uint(k)))
			p := posOf[Hilbert][state][q]
			s = s<<2 | uint64(p)
			state = childOrient[Hilbert][state][p]
		}
		return s
	}
	panic("layout: invalid curve")
}

// SInverse returns the rectangular coordinates of the cell at position s
// along curve c in a 2^d × 2^d grid; it inverts S.
func (c Curve) SInverse(s uint64, d uint) (i, j uint32) {
	switch c {
	case ColMajor:
		mask := uint64(1)<<d - 1
		return uint32(s & mask), uint32(s >> d)
	case RowMajor:
		mask := uint64(1)<<d - 1
		return uint32(s >> d), uint32(s & mask)
	case UMorton:
		u, v := bits.Deinterleave(s) // u = j, v = i^j
		return u ^ v, u
	case XMorton:
		u, v := bits.Deinterleave(s) // u = i^j, v = j
		return u ^ v, v
	case ZMorton:
		return bits.Deinterleave(s)
	case GrayMorton:
		gi, gj := bits.Deinterleave(bits.Gray64(s))
		return bits.GrayInverse(gi), bits.GrayInverse(gj)
	case Hilbert:
		state := OrientID
		for k := int(d) - 1; k >= 0; k-- {
			p := int(s >> (2 * uint(k)) & 3)
			q := quadOrder[Hilbert][state][p]
			i = i<<1 | uint32(q>>1)
			j = j<<1 | uint32(q&1)
			state = childOrient[Hilbert][state][p]
		}
		return i, j
	}
	panic("layout: invalid curve")
}

// SOriented is S evaluated for a sub-curve that starts in orientation o
// instead of the reference orientation. The recursive layouts assign
// non-reference orientations to interior quadrants; pre-/post-addition
// code uses SOriented to reason about tile positions inside such
// quadrants. For single-orientation curves it coincides with S.
func (c Curve) SOriented(o Orient, i, j uint32, d uint) uint64 {
	if c.Orientations() == 1 || o == OrientID {
		return c.S(i, j, d)
	}
	var s uint64
	state := o
	for k := int(d) - 1; k >= 0; k-- {
		q := int(bits.Pair(i, j, uint(k)))
		p := posOf[c][state][q]
		s = s<<2 | uint64(p)
		state = childOrient[c][state][p]
	}
	return s
}

// SInverseOriented inverts SOriented.
func (c Curve) SInverseOriented(o Orient, s uint64, d uint) (i, j uint32) {
	if c.Orientations() == 1 || o == OrientID {
		return c.SInverse(s, d)
	}
	state := o
	for k := int(d) - 1; k >= 0; k-- {
		p := int(s >> (2 * uint(k)) & 3)
		q := quadOrder[c][state][p]
		i = i<<1 | uint32(q>>1)
		j = j<<1 | uint32(q&1)
		state = childOrient[c][state][p]
	}
	return i, j
}

// SDescent computes S by explicit quadrant descent using the orientation
// tables, for any curve including the canonical ones where the descent is
// not meaningful (those panic). It exists as an independently-derived
// reference implementation against which the fast bit-manipulation
// S functions are cross-checked in the tests.
func (c Curve) SDescent(i, j uint32, d uint) uint64 {
	if !c.Recursive() {
		panic("layout: SDescent on canonical curve")
	}
	return c.SOriented(OrientID, i, j, d)
}

// Grid returns the full d-level ordering of curve c as a 2^d × 2^d
// row-major slice g with g[i*2^d+j] = S(i,j). It is used by the
// visualization command and by tests that pin the Figure 2 orderings.
func (c Curve) Grid(d uint) []uint64 {
	n := 1 << d
	g := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g[i*n+j] = c.S(uint32(i), uint32(j), d)
		}
	}
	return g
}

// Perm returns the tile permutation that relates two orientations of the
// same curve over a 2^d × 2^d block of tiles: element t of the result is
// the position, in orientation `to`, of the tile stored at position t in
// orientation `from`. The fast algorithms use these arrays to walk
// corresponding tiles of differently-oriented quadrants during pre- and
// post-additions under the Hilbert layout (Section 4); for Gray-Morton
// the two-half-step symmetry makes the explicit array unnecessary, but
// Perm still yields the correct mapping and is used by tests to verify
// that symmetry.
func (c Curve) Perm(from, to Orient, d uint) []int32 {
	n := 1 << d
	perm := make([]int32, n*n)
	for s := 0; s < n*n; s++ {
		i, j := c.SInverseOriented(from, uint64(s), d)
		perm[s] = int32(c.SOriented(to, i, j, d))
	}
	return perm
}
