package layout

import (
	"testing"
	"testing/quick"
)

// abs1 reports whether a and b differ by exactly 1.
func adj(a, b uint32) bool {
	return a-b == 1 || b-a == 1
}

func TestSZero(t *testing.T) {
	// The paper adopts the convention S(0,0) = 0 for all layouts.
	for _, c := range Curves {
		for d := uint(0); d <= 8; d++ {
			if got := c.S(0, 0, d); got != 0 {
				t.Errorf("%v: S(0,0;d=%d) = %d, want 0", c, d, got)
			}
		}
	}
}

func TestSBijective(t *testing.T) {
	for _, c := range Curves {
		for d := uint(1); d <= 5; d++ {
			n := uint32(1) << d
			seen := make(map[uint64]bool, n*n)
			for i := uint32(0); i < n; i++ {
				for j := uint32(0); j < n; j++ {
					s := c.S(i, j, d)
					if s >= uint64(n)*uint64(n) {
						t.Fatalf("%v d=%d: S(%d,%d) = %d out of range", c, d, i, j, s)
					}
					if seen[s] {
						t.Fatalf("%v d=%d: S(%d,%d) = %d duplicated", c, d, i, j, s)
					}
					seen[s] = true
				}
			}
		}
	}
}

func TestSInverseRoundTrip(t *testing.T) {
	for _, c := range Curves {
		for d := uint(1); d <= 6; d++ {
			n := uint32(1) << d
			for i := uint32(0); i < n; i++ {
				for j := uint32(0); j < n; j++ {
					s := c.S(i, j, d)
					gi, gj := c.SInverse(s, d)
					if gi != i || gj != j {
						t.Fatalf("%v d=%d: SInverse(S(%d,%d)) = (%d,%d)", c, d, i, j, gi, gj)
					}
				}
			}
		}
	}
}

func TestSInverseOrientedRoundTrip(t *testing.T) {
	for _, c := range RecursiveCurves {
		for o := Orient(0); int(o) < c.Orientations(); o++ {
			for d := uint(1); d <= 4; d++ {
				n := uint32(1) << d
				for i := uint32(0); i < n; i++ {
					for j := uint32(0); j < n; j++ {
						s := c.SOriented(o, i, j, d)
						gi, gj := c.SInverseOriented(o, s, d)
						if gi != i || gj != j {
							t.Fatalf("%v o=%d d=%d: round trip failed at (%d,%d)", c, o, d, i, j)
						}
					}
				}
			}
		}
	}
}

// TestDescentMatchesBitFormulas cross-checks the two independently
// derived implementations of each recursive S function: the fast
// bit-manipulation formula (Section 3) and the orientation-table quadrant
// descent (Section 4's control structure).
func TestDescentMatchesBitFormulas(t *testing.T) {
	for _, c := range RecursiveCurves {
		for d := uint(1); d <= 6; d++ {
			n := uint32(1) << d
			for i := uint32(0); i < n; i++ {
				for j := uint32(0); j < n; j++ {
					fast := c.S(i, j, d)
					desc := c.SDescent(i, j, d)
					if fast != desc {
						t.Fatalf("%v d=%d (%d,%d): fast=%d descent=%d", c, d, i, j, fast, desc)
					}
				}
			}
		}
	}
}

// TestPinned4x4Orderings pins the exact 4×4 orderings of every curve so
// that any change to the tables or formulas is caught. The recursive
// orderings correspond to the structure in Figure 2 of the paper.
func TestPinned4x4Orderings(t *testing.T) {
	want := map[Curve][]uint64{
		ColMajor: {
			0, 4, 8, 12,
			1, 5, 9, 13,
			2, 6, 10, 14,
			3, 7, 11, 15,
		},
		RowMajor: {
			0, 1, 2, 3,
			4, 5, 6, 7,
			8, 9, 10, 11,
			12, 13, 14, 15,
		},
		ZMorton: {
			0, 1, 4, 5,
			2, 3, 6, 7,
			8, 9, 12, 13,
			10, 11, 14, 15,
		},
		UMorton: {
			0, 3, 12, 15,
			1, 2, 13, 14,
			4, 7, 8, 11,
			5, 6, 9, 10,
		},
		XMorton: {
			0, 3, 12, 15,
			2, 1, 14, 13,
			8, 11, 4, 7,
			10, 9, 6, 5,
		},
		GrayMorton: {
			0, 1, 6, 7,
			3, 2, 5, 4,
			12, 13, 10, 11,
			15, 14, 9, 8,
		},
		Hilbert: {
			0, 1, 14, 15,
			3, 2, 13, 12,
			4, 7, 8, 11,
			5, 6, 9, 10,
		},
	}
	for c, w := range want {
		g := c.Grid(2)
		for k := range w {
			if g[k] != w[k] {
				t.Errorf("%v grid(2):\n got %v\nwant %v", c, g, w)
				break
			}
		}
	}
}

// TestHilbertContinuity verifies the defining property of the Hilbert
// curve: consecutive positions along the curve are grid-adjacent. None of
// the Morton-family curves has this property — their "jumps" are the
// multi-scale dilation effect discussed in Section 3.4.
func TestHilbertContinuity(t *testing.T) {
	for d := uint(1); d <= 7; d++ {
		n := uint64(1) << d
		pi, pj := Hilbert.SInverse(0, d)
		for s := uint64(1); s < n*n; s++ {
			i, j := Hilbert.SInverse(s, d)
			manhattan := 0
			if i != pi {
				if !adj(i, pi) {
					t.Fatalf("d=%d s=%d: row jump %d -> %d", d, s, pi, i)
				}
				manhattan++
			}
			if j != pj {
				if !adj(j, pj) {
					t.Fatalf("d=%d s=%d: col jump %d -> %d", d, s, pj, j)
				}
				manhattan++
			}
			if manhattan != 1 {
				t.Fatalf("d=%d s=%d: (%d,%d) -> (%d,%d) not adjacent", d, s, pi, pj, i, j)
			}
			pi, pj = i, j
		}
	}
}

// TestHilbertContinuityAllOrientations checks continuity for the
// sub-curves in all four orientations, which exercises every entry of the
// orientation tables.
func TestHilbertContinuityAllOrientations(t *testing.T) {
	for o := Orient(0); o < 4; o++ {
		for d := uint(1); d <= 5; d++ {
			n := uint64(1) << d
			pi, pj := Hilbert.SInverseOriented(o, 0, d)
			for s := uint64(1); s < n*n; s++ {
				i, j := Hilbert.SInverseOriented(o, s, d)
				if (i-pi)*(i-pi)+(j-pj)*(j-pj) != 1 {
					t.Fatalf("o=%d d=%d s=%d: (%d,%d) -> (%d,%d) not adjacent", o, d, s, pi, pj, i, j)
				}
				pi, pj = i, j
			}
		}
	}
}

// TestMortonNonContinuity documents that the single-orientation layouts
// are NOT continuous (they have the multi-scale jumps of Section 3.4);
// this guards against accidentally swapping curve implementations.
func TestMortonNonContinuity(t *testing.T) {
	for _, c := range []Curve{UMorton, XMorton, ZMorton, GrayMorton} {
		d := uint(3)
		n := uint64(1) << d
		jumps := 0
		pi, pj := c.SInverse(0, d)
		for s := uint64(1); s < n*n; s++ {
			i, j := c.SInverse(s, d)
			di, dj := int(i)-int(pi), int(j)-int(pj)
			if di*di+dj*dj != 1 {
				jumps++
			}
			pi, pj = i, j
		}
		if jumps == 0 {
			t.Errorf("%v: expected jumps, found none (curve is continuous?)", c)
		}
	}
}

// TestQuadrantContiguity verifies the property the whole paper rests on:
// under every recursive layout, each quadrant (at every scale) occupies a
// contiguous range of S values.
func TestQuadrantContiguity(t *testing.T) {
	for _, c := range RecursiveCurves {
		d := uint(4)
		n := uint32(1) << d
		// For every aligned power-of-two quadrant, min and max S must
		// span exactly the quadrant's area.
		for size := uint32(2); size <= n; size *= 2 {
			for i0 := uint32(0); i0 < n; i0 += size {
				for j0 := uint32(0); j0 < n; j0 += size {
					lo, hi := ^uint64(0), uint64(0)
					for i := i0; i < i0+size; i++ {
						for j := j0; j < j0+size; j++ {
							s := c.S(i, j, d)
							if s < lo {
								lo = s
							}
							if s > hi {
								hi = s
							}
						}
					}
					if hi-lo+1 != uint64(size)*uint64(size) {
						t.Fatalf("%v: quadrant (%d,%d) size %d spans [%d,%d], not contiguous",
							c, i0, j0, size, lo, hi)
					}
				}
			}
		}
	}
}

// TestSelfSimilarity verifies that the descent tables are consistent:
// the child at position p covers exactly the S range
// [p·k², (p+1)·k²) of its parent, in the child's orientation.
func TestSelfSimilarity(t *testing.T) {
	for _, c := range RecursiveCurves {
		for o := Orient(0); int(o) < c.Orientations(); o++ {
			d := uint(4)
			half := uint32(1) << (d - 1)
			area := uint64(half) * uint64(half)
			for p := 0; p < 4; p++ {
				q := c.QuadAt(o, p)
				co := c.ChildOrient(o, p)
				i0 := uint32(q>>1) * half
				j0 := uint32(q&1) * half
				for i := uint32(0); i < half; i++ {
					for j := uint32(0); j < half; j++ {
						parent := c.SOriented(o, i0+i, j0+j, d)
						child := c.SOriented(co, i, j, d-1)
						if parent != uint64(p)*area+child {
							t.Fatalf("%v o=%d p=%d: parent S=%d child S=%d", c, o, p, parent, child)
						}
					}
				}
			}
		}
	}
}

// TestGrayHalfStepSymmetry verifies the symmetry of Section 3.4 that the
// Gray-Morton pre-/post-additions exploit: if one orientation orders the
// tiles T_1..T_2k, the other orders them T_{k+1}..T_2k, T_1..T_k.
func TestGrayHalfStepSymmetry(t *testing.T) {
	for d := uint(1); d <= 6; d++ {
		n := 1 << d
		total := n * n
		half := total / 2
		perm := GrayMorton.Perm(1, 0, d)
		for s := 0; s < total; s++ {
			want := (s + half) % total
			if int(perm[s]) != want {
				t.Fatalf("d=%d: perm[%d] = %d, want %d (half-step symmetry)", d, s, perm[s], want)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	for _, c := range RecursiveCurves {
		k := c.Orientations()
		for from := 0; from < k; from++ {
			for to := 0; to < k; to++ {
				perm := c.Perm(Orient(from), Orient(to), 3)
				seen := make([]bool, len(perm))
				for _, v := range perm {
					if v < 0 || int(v) >= len(perm) || seen[v] {
						t.Fatalf("%v %d->%d: not a permutation", c, from, to)
					}
					seen[v] = true
				}
			}
		}
	}
}

func TestPermComposition(t *testing.T) {
	// Perm(a,b) followed by Perm(b,c) must equal Perm(a,c).
	c := Hilbert
	d := uint(3)
	for a := Orient(0); a < 4; a++ {
		for b := Orient(0); b < 4; b++ {
			for cc := Orient(0); cc < 4; cc++ {
				ab := c.Perm(a, b, d)
				bc := c.Perm(b, cc, d)
				ac := c.Perm(a, cc, d)
				for s := range ab {
					if bc[ab[s]] != ac[s] {
						t.Fatalf("composition fails at %d->%d->%d, s=%d", a, b, cc, s)
					}
				}
			}
		}
	}
}

func TestPermIdentity(t *testing.T) {
	for _, c := range RecursiveCurves {
		perm := c.Perm(OrientID, OrientID, 4)
		for s, v := range perm {
			if int(v) != s {
				t.Fatalf("%v: Perm(0,0) not identity at %d", c, s)
			}
		}
	}
}

// TestQuadAtPosOfInverse checks QuadAt/PosOf are mutually inverse for all
// curves and orientations.
func TestQuadAtPosOfInverse(t *testing.T) {
	for _, c := range Curves {
		for o := 0; o < c.Orientations(); o++ {
			for p := 0; p < 4; p++ {
				q := c.QuadAt(Orient(o), p)
				if c.PosOf(Orient(o), q) != p {
					t.Fatalf("%v o=%d: PosOf(QuadAt(%d)) != %d", c, o, p, p)
				}
			}
		}
	}
}

// TestLevelBitDependence verifies the computational-complexity claim of
// Section 3.4: for the single-orientation layouts, bits 2u+1 and 2u of
// S(i,j) depend only on bit u of i and j.
func TestLevelBitDependence(t *testing.T) {
	d := uint(6)
	for _, c := range []Curve{UMorton, XMorton, ZMorton} {
		if err := quick.Check(func(i1, j1, i2, j2 uint32) bool {
			mask := uint32(1)<<d - 1
			i1, j1, i2, j2 = i1&mask, j1&mask, i2&mask, j2&mask
			for u := uint(0); u < d; u++ {
				// Replace bit u of (i2,j2) with bit u of (i1,j1): the
				// S bit pair at level u must match S(i1,j1)'s pair.
				bi := i2&^(1<<u) | i1&(1<<u)
				bj := j2&^(1<<u) | j1&(1<<u)
				got := c.S(bi, bj, d) >> (2 * u) & 3
				want := c.S(i1, j1, d) >> (2 * u) & 3
				if got != want {
					return false
				}
			}
			return true
		}, nil); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// TestGrayHigherBitDependence documents the converse for Gray-Morton:
// low S bits depend on high coordinate bits (Section 3.4).
func TestGrayHigherBitDependence(t *testing.T) {
	d := uint(2)
	// (0,0) vs (0,2): identical level-0 coordinate bits, but the level-0
	// S bit pair differs because Gray decoding propagates the flipped
	// high bit of j downward.
	a := GrayMorton.S(0, 0, d)
	b := GrayMorton.S(0, 2, d)
	if a&3 == b&3 {
		t.Errorf("Gray-Morton level-0 S pair should depend on high bits of j: S(0,0)=%d S(0,2)=%d", a, b)
	}
}

func TestParseCurve(t *testing.T) {
	for _, c := range Curves {
		got, err := ParseCurve(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCurve(%q) = %v, %v", c.String(), got, err)
		}
	}
	shorts := map[string]Curve{"c": ColMajor, "r": RowMajor, "u": UMorton,
		"x": XMorton, "z": ZMorton, "g": GrayMorton, "h": Hilbert}
	for s, want := range shorts {
		if got, err := ParseCurve(s); err != nil || got != want {
			t.Errorf("ParseCurve(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCurve("peano"); err == nil {
		t.Error("ParseCurve(peano) should fail")
	}
}

func TestOrientations(t *testing.T) {
	want := map[Curve]int{ColMajor: 1, RowMajor: 1, UMorton: 1, XMorton: 1,
		ZMorton: 1, GrayMorton: 2, Hilbert: 4}
	for c, w := range want {
		if got := c.Orientations(); got != w {
			t.Errorf("%v.Orientations() = %d, want %d", c, got, w)
		}
	}
}

func TestRecursive(t *testing.T) {
	for _, c := range RecursiveCurves {
		if !c.Recursive() {
			t.Errorf("%v.Recursive() = false", c)
		}
	}
	for _, c := range []Curve{ColMajor, RowMajor} {
		if c.Recursive() {
			t.Errorf("%v.Recursive() = true", c)
		}
	}
}

func BenchmarkS(b *testing.B) {
	for _, c := range Curves {
		b.Run(c.String(), func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += c.S(uint32(i)&1023, uint32(i>>10)&1023, 10)
			}
			_ = sink
		})
	}
}

func BenchmarkSInverse(b *testing.B) {
	for _, c := range Curves {
		b.Run(c.String(), func(b *testing.B) {
			var sink uint32
			for i := 0; i < b.N; i++ {
				x, y := c.SInverse(uint64(i)&(1<<20-1), 10)
				sink += x + y
			}
			_ = sink
		})
	}
}

func TestDilationHilbertContinuous(t *testing.T) {
	d := MeasureDilation(Hilbert, 5)
	if d.Jumps != 0 || d.MaxJump != 1 || d.AvgStep != 1 {
		t.Fatalf("Hilbert dilation = %+v, want a continuous walk", d)
	}
}

func TestDilationOrderingMatchesOrientationCount(t *testing.T) {
	// Section 3.4: jumps get less pronounced as orientations increase.
	depth := uint(6)
	z := MeasureDilation(ZMorton, depth)
	g := MeasureDilation(GrayMorton, depth)
	h := MeasureDilation(Hilbert, depth)
	if !(h.AvgStep < g.AvgStep && g.AvgStep < z.AvgStep) {
		t.Errorf("avg step ordering violated: H=%g G=%g Z=%g", h.AvgStep, g.AvgStep, z.AvgStep)
	}
	if !(h.MaxJump <= g.MaxJump && g.MaxJump <= z.MaxJump) {
		t.Errorf("max jump ordering violated: H=%d G=%d Z=%d", h.MaxJump, g.MaxJump, z.MaxJump)
	}
}

func TestDilationCanonicalFavorsOneAxis(t *testing.T) {
	// Section 3's dilation claim, quantified: the canonical layouts have
	// unit stretch along the favored axis and 2^d along the other (an
	// asymmetry ratio of 2^d), while every recursive layout keeps the
	// two directions within a factor of two of each other.
	depth := uint(5)
	n := float64(int(1) << depth)
	col := MeasureDilation(ColMajor, depth)
	if col.AvgRowStretch != 1 || col.AvgColStretch != n {
		t.Fatalf("ColMajor stretches = (%g,%g), want (1,%g)", col.AvgRowStretch, col.AvgColStretch, n)
	}
	row := MeasureDilation(RowMajor, depth)
	if row.AvgColStretch != 1 || row.AvgRowStretch != n {
		t.Fatalf("RowMajor stretches = (%g,%g)", row.AvgRowStretch, row.AvgColStretch)
	}
	if col.Asymmetry() != n {
		t.Fatalf("canonical asymmetry = %g, want %g", col.Asymmetry(), n)
	}
	for _, c := range RecursiveCurves {
		r := MeasureDilation(c, depth)
		if r.Asymmetry() > 2 {
			t.Errorf("%v asymmetry %g exceeds 2 (row %g, col %g)",
				c, r.Asymmetry(), r.AvgRowStretch, r.AvgColStretch)
		}
	}
}

func TestDilationMortonJumpCount(t *testing.T) {
	// Z-Morton at depth d jumps at every step that crosses a quadrant
	// boundary at any scale: exactly (4^d-1) - (number of unit steps).
	// Unit steps happen only inside 2x2 blocks (3 of every 4 steps at
	// the lowest level are... pinned empirically at small depth).
	d := MeasureDilation(ZMorton, 2)
	// Sequence of 15 steps in a 4x4 Z walk: known structure with 6 jumps
	// (after positions 1, 3, 5, 7, 9... verify: steps between s=1→2,
	// 3→4, 5→6, 7→8, 9→10, 11→12, 13→14 cross block boundaries).
	if d.Jumps != 7 {
		t.Errorf("Z-Morton depth-2 jumps = %d, want 7", d.Jumps)
	}
}
