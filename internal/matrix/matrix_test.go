package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	a := New(3, 5)
	if a.Rows != 3 || a.Cols != 5 || a.Stride != 3 || len(a.Data) != 15 {
		t.Fatalf("New(3,5) = %+v", a)
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New not zeroed")
		}
	}
}

func TestColumnMajorAddressing(t *testing.T) {
	a := New(2, 3)
	a.Set(1, 2, 42)
	// Column-major: element (1,2) lives at 2*stride+1 = 5.
	if a.Data[5] != 42 {
		t.Fatalf("column-major addressing broken: %v", a.Data)
	}
	if a.At(1, 2) != 42 {
		t.Fatal("At/Set disagree")
	}
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	a := FromSlice(data, 2, 3, 2)
	if a.At(0, 0) != 1 || a.At(1, 0) != 2 || a.At(0, 1) != 3 || a.At(1, 2) != 6 {
		t.Fatalf("FromSlice addressing wrong: %v", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice should panic on short slice")
		}
	}()
	FromSlice(data, 3, 3, 3)
}

func TestViewSharesStorage(t *testing.T) {
	a := Sequential(4, 4)
	v := a.View(1, 2, 2, 2)
	if v.At(0, 0) != a.At(1, 2) || v.At(1, 1) != a.At(2, 3) {
		t.Fatal("view addressing wrong")
	}
	v.Set(0, 0, -7)
	if a.At(1, 2) != -7 {
		t.Fatal("view does not share storage")
	}
}

func TestViewBounds(t *testing.T) {
	a := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds view should panic")
		}
	}()
	a.View(2, 2, 3, 3)
}

func TestCloneIndependent(t *testing.T) {
	a := Sequential(3, 3)
	c := a.Clone()
	c.Set(0, 0, -1)
	if a.At(0, 0) == -1 {
		t.Fatal("clone shares storage")
	}
	if !Equal(a, Sequential(3, 3), 0) {
		t.Fatal("clone mutated original")
	}
}

func TestCopyFromStrided(t *testing.T) {
	a := Sequential(6, 6)
	src := a.View(2, 2, 3, 3)
	dst := New(3, 3)
	dst.CopyFrom(src)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if dst.At(i, j) != a.At(i+2, j+2) {
				t.Fatalf("strided copy wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestZeroOnView(t *testing.T) {
	a := Sequential(4, 4)
	a.View(1, 1, 2, 2).Zero()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			inView := i >= 1 && i <= 2 && j >= 1 && j <= 2
			if inView && a.At(i, j) != 0 {
				t.Fatalf("(%d,%d) not zeroed", i, j)
			}
			if !inView && a.At(i, j) == 0 {
				t.Fatalf("(%d,%d) wrongly zeroed", i, j)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := Sequential(3, 5)
	at := a.Transpose()
	if at.Rows != 5 || at.Cols != 3 {
		t.Fatal("transpose shape")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
	// Involution.
	if !Equal(a, at.Transpose(), 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := Random(5, 7, rng), Random(5, 7, rng)
	sum, diff := New(5, 7), New(5, 7)
	Add(sum, a, b)
	Sub(diff, sum, b)
	if !Equal(diff, a, 1e-15) {
		t.Fatal("(a+b)-b != a")
	}
}

func TestAddToSubFromInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := Random(4, 4, rng), Random(4, 4, rng)
	orig := a.Clone()
	AddTo(a, b)
	SubFrom(a, b)
	if !Equal(a, orig, 1e-15) {
		t.Fatal("AddTo then SubFrom not identity")
	}
}

func TestAXPBY(t *testing.T) {
	a := Sequential(3, 3)
	c := Identity(3)
	AXPBY(c, a, 2, -1)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 2 * a.At(i, j)
			if i == j {
				want--
			}
			if c.At(i, j) != want {
				t.Fatalf("AXPBY wrong at (%d,%d): %g != %g", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestScale(t *testing.T) {
	a := Sequential(3, 3)
	b := a.Clone()
	b.Scale(1) // no-op path
	if !Equal(a, b, 0) {
		t.Fatal("Scale(1) changed matrix")
	}
	b.Scale(-2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b.At(i, j) != -2*a.At(i, j) {
				t.Fatal("Scale(-2) wrong")
			}
		}
	}
}

func TestRefMulAddIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(6, 6, rng)
	c := New(6, 6)
	RefMulAdd(c, a, Identity(6))
	if !Equal(c, a, 0) {
		t.Fatal("A·I != A")
	}
	c.Zero()
	RefMulAdd(c, Identity(6), a)
	if !Equal(c, a, 0) {
		t.Fatal("I·A != A")
	}
}

func TestRefMulAddKnown(t *testing.T) {
	// [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := New(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c := New(2, 2)
	RefMulAdd(c, a, b)
	want := [2][2]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestRefMulAddRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := Random(3, 5, rng), Random(5, 2, rng)
	c := New(3, 2)
	RefMulAdd(c, a, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			var want float64
			for k := 0; k < 5; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-want) > 1e-14 {
				t.Fatalf("rectangular multiply wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestRefGEMMTransposeAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	A, B := Random(4, 3, rng), Random(5, 4, rng) // op(A)=Aᵀ is 3x4, op(B)=Bᵀ is 4x5
	C := Random(3, 5, rng)
	want := C.Clone()
	// Manual: want = 2·Aᵀ·Bᵀ + 0.5·C
	at, bt := A.Transpose(), B.Transpose()
	p := New(3, 5)
	RefMulAdd(p, at, bt)
	AXPBY(want, p, 2, 0.5)

	RefGEMM(true, true, 2, A, B, 0.5, C)
	if !Equal(C, want, 1e-14) {
		t.Fatal("RefGEMM with transposes and scalars wrong")
	}
}

func TestRefGEMMAlphaZeroSkipsProduct(t *testing.T) {
	A := New(2, 2)
	A.Set(0, 0, math.NaN()) // would poison the product if computed
	C := Sequential(2, 2)
	RefGEMM(false, false, 0, A, A, 3, C)
	want := Sequential(2, 2)
	want.Scale(3)
	if !Equal(C, want, 0) {
		t.Fatal("alpha=0 should reduce to C *= beta")
	}
}

func TestMaxAbsDiffNaN(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	a.Set(0, 0, math.NaN())
	if !math.IsInf(MaxAbsDiff(a, b), 1) {
		t.Fatal("NaN diff should be +Inf")
	}
	if Equal(a, b, 1e9) {
		t.Fatal("NaN matrices must never compare equal")
	}
}

func TestHasNaN(t *testing.T) {
	a := New(3, 3)
	if a.HasNaN() {
		t.Fatal("zero matrix has no NaN")
	}
	a.Set(2, 1, math.NaN())
	if !a.HasNaN() {
		t.Fatal("NaN not detected")
	}
}

func TestRandomReproducible(t *testing.T) {
	a := Random(4, 4, rand.New(rand.NewSource(7)))
	b := Random(4, 4, rand.New(rand.NewSource(7)))
	if !Equal(a, b, 0) {
		t.Fatal("Random not reproducible with same seed")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("Random element %g out of [-1,1)", v)
		}
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	// Property: A·(B+C) == A·B + A·C.
	rng := rand.New(rand.NewSource(8))
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := 1 + r.Intn(8)
		k := 1 + r.Intn(8)
		A := Random(m, k, rng)
		B := Random(k, n, rng)
		C := Random(k, n, rng)
		sum := New(k, n)
		Add(sum, B, C)
		left := New(m, n)
		RefMulAdd(left, A, sum)
		right := New(m, n)
		RefMulAdd(right, A, B)
		RefMulAdd(right, A, C)
		return Equal(left, right, 1e-12)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransposeOfProduct(t *testing.T) {
	// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
	rng := rand.New(rand.NewSource(9))
	A, B := Random(5, 4, rng), Random(4, 6, rng)
	ab := New(5, 6)
	RefMulAdd(ab, A, B)
	btat := New(6, 5)
	RefMulAdd(btat, B.Transpose(), A.Transpose())
	if !Equal(ab.Transpose(), btat, 1e-13) {
		t.Fatal("(AB)ᵀ != BᵀAᵀ")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Add":       func() { Add(New(2, 2), New(2, 3), New(2, 2)) },
		"RefMulAdd": func() { RefMulAdd(New(2, 2), New(2, 3), New(2, 2)) },
		"CopyFrom":  func() { New(2, 2).CopyFrom(New(3, 2)) },
		"AXPBY":     func() { AXPBY(New(2, 2), New(3, 3), 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkRefMulAdd256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	A, B := Random(256, 256, rng), Random(256, 256, rng)
	C := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefMulAdd(C, A, B)
	}
}

func TestNorms(t *testing.T) {
	// [1 -2; 3 4]: col sums {4, 6}, row sums {3, 7}, fro = sqrt(30).
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, -2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	if NormOne(a) != 6 {
		t.Errorf("NormOne = %g, want 6", NormOne(a))
	}
	if NormInf(a) != 7 {
		t.Errorf("NormInf = %g, want 7", NormInf(a))
	}
	if math.Abs(NormFro(a)-math.Sqrt(30)) > 1e-15 {
		t.Errorf("NormFro = %g, want sqrt(30)", NormFro(a))
	}
}

func TestNormDuality(t *testing.T) {
	// ‖A‖₁ == ‖Aᵀ‖∞, and all norms vanish only on the zero matrix.
	rng := rand.New(rand.NewSource(11))
	a := Random(7, 9, rng)
	if math.Abs(NormOne(a)-NormInf(a.Transpose())) > 1e-13 {
		t.Error("1-norm / ∞-norm duality violated")
	}
	z := New(4, 4)
	if NormOne(z) != 0 || NormInf(z) != 0 || NormFro(z) != 0 {
		t.Error("zero matrix norms not zero")
	}
}

func TestNormsOnViews(t *testing.T) {
	big := Sequential(8, 8)
	v := big.View(2, 2, 3, 3)
	w := v.Clone()
	if NormOne(v) != NormOne(w) || NormInf(v) != NormInf(w) || NormFro(v) != NormFro(w) {
		t.Error("norms differ between view and its copy")
	}
}
