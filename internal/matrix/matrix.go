// Package matrix provides the dense matrix substrate used throughout the
// reproduction: column-major storage with an explicit leading dimension
// (stride), sub-matrix views, element-wise kernels, and a naive reference
// GEMM used as the correctness oracle for all fast algorithms.
//
// The column-major convention with a leading dimension matches the
// Level 3 BLAS interface the paper adopts (Section 2.1): element (i, j)
// of a matrix lives at Data[j*Stride+i].
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a column-major matrix of float64 values. A Dense value may be
// a view into a larger matrix, in which case Stride exceeds Rows and the
// storage is not contiguous.
type Dense struct {
	Rows, Cols int
	// Stride is the leading dimension: the distance in elements between
	// the starts of consecutive columns. Stride >= max(Rows, 1).
	Stride int
	Data   []float64
}

// New returns a zeroed m×n matrix with contiguous storage (Stride == m).
func New(m, n int) *Dense {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", m, n))
	}
	s := m
	if s == 0 {
		s = 1
	}
	return &Dense{Rows: m, Cols: n, Stride: s, Data: make([]float64, m*n)}
}

// FromSlice wraps an existing column-major slice with leading dimension
// ld as an m×n matrix without copying. The slice must hold at least
// (n-1)*ld+m elements.
func FromSlice(data []float64, m, n, ld int) *Dense {
	if ld < m || (n > 0 && len(data) < (n-1)*ld+m) {
		panic(fmt.Sprintf("matrix: slice of %d too small for %dx%d ld=%d", len(data), m, n, ld))
	}
	return &Dense{Rows: m, Cols: n, Stride: ld, Data: data}
}

// At returns element (i, j).
func (a *Dense) At(i, j int) float64 {
	return a.Data[j*a.Stride+i]
}

// Set assigns element (i, j).
func (a *Dense) Set(i, j int, v float64) {
	a.Data[j*a.Stride+i] = v
}

// View returns an m×n view of a starting at (i0, j0). The view shares
// storage with a; mutations are visible through both.
func (a *Dense) View(i0, j0, m, n int) *Dense {
	if i0 < 0 || j0 < 0 || i0+m > a.Rows || j0+n > a.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d)+%dx%d exceeds %dx%d", i0, j0, m, n, a.Rows, a.Cols))
	}
	return &Dense{Rows: m, Cols: n, Stride: a.Stride, Data: a.Data[j0*a.Stride+i0:]}
}

// Clone returns a newly allocated contiguous copy of a.
func (a *Dense) Clone() *Dense {
	c := New(a.Rows, a.Cols)
	c.CopyFrom(a)
	return c
}

// CopyFrom copies the contents of src into a. Dimensions must match.
func (a *Dense) CopyFrom(src *Dense) {
	if a.Rows != src.Rows || a.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy %dx%d <- %dx%d", a.Rows, a.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < a.Cols; j++ {
		copy(a.Data[j*a.Stride:j*a.Stride+a.Rows], src.Data[j*src.Stride:j*src.Stride+a.Rows])
	}
}

// Zero sets every element of a to zero.
func (a *Dense) Zero() {
	for j := 0; j < a.Cols; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element of a to v.
func (a *Dense) Fill(v float64) {
	for j := 0; j < a.Cols; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for i := range col {
			col[i] = v
		}
	}
}

// Scale multiplies every element of a by alpha.
func (a *Dense) Scale(alpha float64) {
	if alpha == 1 {
		return
	}
	a.ScaleCols(alpha, 0, a.Cols)
}

// ScaleCols multiplies columns [lo, hi) of a by alpha — the ranged core
// of Scale, exposed so callers with a worker pool can split the pass
// into parallel column chunks (a full-matrix β·C scale is a memory-bound
// sweep worth parallelizing above a size threshold).
func (a *Dense) ScaleCols(alpha float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for i := range col {
			col[i] *= alpha
		}
	}
}

// Transpose returns a newly allocated transpose of a.
func (a *Dense) Transpose() *Dense {
	t := New(a.Cols, a.Rows)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			t.Data[i*t.Stride+j] = a.Data[j*a.Stride+i]
		}
	}
	return t
}

// Equal reports whether a and b have the same shape and all elements
// agree within absolute tolerance tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// a and b, which must have the same shape. NaNs compare as +Inf so that
// corrupted results never pass a tolerance check.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: diff %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var max float64
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			d := math.Abs(a.At(i, j) - b.At(i, j))
			if math.IsNaN(d) {
				return math.Inf(1)
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MaxAbs returns the maximum absolute element of a.
func (a *Dense) MaxAbs() float64 {
	var max float64
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			if d := math.Abs(a.At(i, j)); d > max {
				max = d
			}
		}
	}
	return max
}

// HasNaN reports whether a contains any NaN element.
func (a *Dense) HasNaN() bool {
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			if math.IsNaN(a.At(i, j)) {
				return true
			}
		}
	}
	return false
}

// Random returns an m×n matrix with elements drawn uniformly from
// [-1, 1) using the supplied source, so that tests and benchmarks are
// reproducible.
func Random(m, n int, rng *rand.Rand) *Dense {
	a := New(m, n)
	for k := range a.Data {
		a.Data[k] = 2*rng.Float64() - 1
	}
	return a
}

// RandomSeeded returns an m×n matrix with entries in [-1, 1) generated
// by a splitmix64 stream over the seed. It is the seed→operand contract
// of the serving layer: unlike math/rand, whose NewSource runs ~600
// mixing rounds before the first draw — more work than filling a small
// serving-shaped operand — seeding here is one add, so materializing
// operands from request seeds costs only the fill itself.
func RandomSeeded(m, n int, seed int64) *Dense {
	a := New(m, n)
	SeedFill(a.Data, seed)
	return a
}

// SeedFill fills dst with the splitmix64 stream over seed — the same
// values RandomSeeded produces for a contiguous matrix, exposed so
// callers recycling buffers (the serving layer's operand pool) share
// one definition of the seed→values contract.
func SeedFill(dst []float64, seed int64) {
	s := uint64(seed)
	for k := range dst {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		dst[k] = 2*(float64(z>>11)*0x1p-53) - 1
	}
}

// Sequential returns an m×n matrix whose (i, j) element is i*n+j+1; its
// distinct, structured values make layout bugs (transpositions, swapped
// quadrants) show up as large, easily-localized errors in tests.
func Sequential(m, n int) *Dense {
	a := New(m, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			a.Set(i, j, float64(i*n+j+1))
		}
	}
	return a
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	a := New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	return a
}

// String renders small matrices for test failure messages.
func (a *Dense) String() string {
	if a.Rows > 16 || a.Cols > 16 {
		return fmt.Sprintf("Dense{%dx%d stride=%d}", a.Rows, a.Cols, a.Stride)
	}
	s := ""
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			s += fmt.Sprintf("%8.3f ", a.At(i, j))
		}
		s += "\n"
	}
	return s
}
