package matrix

import (
	"fmt"
	"math"
)

// checkSameShape panics unless every matrix has the same shape.
func checkSameShape(ms ...*Dense) {
	for _, m := range ms[1:] {
		if m.Rows != ms[0].Rows || m.Cols != ms[0].Cols {
			panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d",
				ms[0].Rows, ms[0].Cols, m.Rows, m.Cols))
		}
	}
}

// Add computes dst = a + b element-wise. The destination may alias
// either operand.
func Add(dst, a, b *Dense) {
	checkSameShape(dst, a, b)
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		x := a.Data[j*a.Stride : j*a.Stride+dst.Rows]
		y := b.Data[j*b.Stride : j*b.Stride+dst.Rows]
		for i := range d {
			d[i] = x[i] + y[i]
		}
	}
}

// Sub computes dst = a - b element-wise. The destination may alias
// either operand.
func Sub(dst, a, b *Dense) {
	checkSameShape(dst, a, b)
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		x := a.Data[j*a.Stride : j*a.Stride+dst.Rows]
		y := b.Data[j*b.Stride : j*b.Stride+dst.Rows]
		for i := range d {
			d[i] = x[i] - y[i]
		}
	}
}

// AddTo computes dst += a element-wise.
func AddTo(dst, a *Dense) {
	checkSameShape(dst, a)
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		x := a.Data[j*a.Stride : j*a.Stride+dst.Rows]
		for i := range d {
			d[i] += x[i]
		}
	}
}

// SubFrom computes dst -= a element-wise.
func SubFrom(dst, a *Dense) {
	checkSameShape(dst, a)
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		x := a.Data[j*a.Stride : j*a.Stride+dst.Rows]
		for i := range d {
			d[i] -= x[i]
		}
	}
}

// AXPBY computes dst = alpha*a + beta*dst element-wise, the update shape
// used by the dgemm interface for the beta*C term.
func AXPBY(dst, a *Dense, alpha, beta float64) {
	checkSameShape(dst, a)
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		x := a.Data[j*a.Stride : j*a.Stride+dst.Rows]
		for i := range d {
			d[i] = alpha*x[i] + beta*d[i]
		}
	}
}

// RefMulAdd computes C += A·B with the naive triple loop. It is the
// correctness oracle: deliberately simple, obviously correct, and
// independent of every layout and algorithm under test.
func RefMulAdd(C, A, B *Dense) {
	if A.Cols != B.Rows || C.Rows != A.Rows || C.Cols != B.Cols {
		panic(fmt.Sprintf("matrix: mul %dx%d · %dx%d -> %dx%d",
			A.Rows, A.Cols, B.Rows, B.Cols, C.Rows, C.Cols))
	}
	for j := 0; j < C.Cols; j++ {
		for k := 0; k < A.Cols; k++ {
			bkj := B.At(k, j)
			if bkj == 0 {
				continue
			}
			ccol := C.Data[j*C.Stride : j*C.Stride+C.Rows]
			acol := A.Data[k*A.Stride : k*A.Stride+C.Rows]
			for i := range ccol {
				ccol[i] += acol[i] * bkj
			}
		}
	}
}

// RefGEMM computes C = alpha·op(A)·op(B) + beta·C with the naive
// algorithm, matching the dgemm semantics of Section 2.1. op(X) is X or
// Xᵀ according to the trans flags.
func RefGEMM(transA, transB bool, alpha float64, A, B *Dense, beta float64, C *Dense) {
	opA, opB := A, B
	if transA {
		opA = A.Transpose()
	}
	if transB {
		opB = B.Transpose()
	}
	if opA.Cols != opB.Rows || C.Rows != opA.Rows || C.Cols != opB.Cols {
		panic(fmt.Sprintf("matrix: gemm op(A)=%dx%d op(B)=%dx%d C=%dx%d",
			opA.Rows, opA.Cols, opB.Rows, opB.Cols, C.Rows, C.Cols))
	}
	C.Scale(beta)
	if alpha == 0 {
		return
	}
	P := New(C.Rows, C.Cols)
	RefMulAdd(P, opA, opB)
	AXPBY(C, P, alpha, 1)
}

// NormOne returns the 1-norm (maximum absolute column sum).
func NormOne(a *Dense) float64 {
	var max float64
	for j := 0; j < a.Cols; j++ {
		var s float64
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for _, v := range col {
			if v < 0 {
				v = -v
			}
			s += v
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns the ∞-norm (maximum absolute row sum).
func NormInf(a *Dense) float64 {
	sums := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for i, v := range col {
			if v < 0 {
				v = -v
			}
			sums[i] += v
		}
	}
	var max float64
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// NormFro returns the Frobenius norm.
func NormFro(a *Dense) float64 {
	var s float64
	for j := 0; j < a.Cols; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for _, v := range col {
			s += v * v
		}
	}
	return math.Sqrt(s)
}
