package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/sched"
)

// This file implements the hierarchical scratch arena: one contiguous
// workspace reserved per block multiplication, pre-sized from the same
// recursion-shaped footprint math the admission estimator uses, and
// served to the recursive algorithms through per-worker LIFO stacks.
//
// Why a stack per worker is correct: the scheduler is help-first. A
// frame that reaches a sync point never migrates — it keeps executing
// (its own children, or stolen tasks) on the same worker goroutine, and
// every stolen task runs to completion on the thief's call stack before
// the suspended frame underneath resumes. Temporary lifetimes therefore
// nest exactly like the call stack of the worker that allocated them,
// so mark/release per frame on a worker-private stack reclaims them in
// LIFO order with no synchronization at all.
//
// Why the per-stack size is one depth-first path: a worker descends one
// recursion path at a time, so the temporaries live on its stack at any
// moment are (in steady state) those of one root-to-leaf path —
// Σ_levels own(t), the same geometric series estimateBytes charges per
// worker. Help-first stealing can violate this bound transiently: a
// worker suspended deep in one subtree may steal a shallow task from
// another subtree and stack a second partial path on top. That case is
// handled by falling back to the heap for the overflow (counted in
// Stats.AllocBytes), never by failing — the arena is an optimization,
// not a correctness boundary.

// arenaStack is one worker's LIFO allocation region inside the arena
// buffer. Only the owning worker moves top, so the fields need no
// locking; the padding keeps neighboring stacks off one cache line.
type arenaStack struct {
	top   int // next free element (absolute index into buf)
	limit int // one past the last element of this stack's segment
	_     [112]byte
}

// arena is the pre-reserved scratch workspace of one multiplication
// run. A nil *arena is valid everywhere and means "heap-allocate every
// temporary" — the probe path and the Standard algorithm use it.
type arena struct {
	buf    []float64
	stacks []arenaStack
	// fallbackAllocs/fallbackElems count newTemp requests that missed
	// the arena (stack exhausted under cross-subtree stealing, or an
	// oversized request). Read into Stats.AllocBytes after the run.
	fallbackAllocs atomic.Int64
	fallbackElems  atomic.Int64
}

// bytes returns the reserved workspace size.
func (a *arena) bytes() int64 {
	if a == nil {
		return 0
	}
	return 8 * int64(len(a.buf))
}

// stackIndex maps the executing worker to its stack. Serial runs carry
// a single stack regardless of which worker executes the one live task
// (and regardless of whether the Ctx is bound to a pool at all).
func (a *arena) stackIndex(c *sched.Ctx) int {
	i := c.WorkerID()
	if i < 0 || i >= len(a.stacks) {
		return 0
	}
	return i
}

// mark records the executing worker's stack position at frame entry.
// Pair it with a deferred release so cancellation early-returns and
// panic unwinding reclaim the frame's temporaries too.
func (a *arena) mark(c *sched.Ctx) (stack, top int) {
	if a == nil {
		return 0, 0
	}
	i := a.stackIndex(c)
	return i, a.stacks[i].top
}

// release pops every allocation made on stack since the paired mark.
// Heap-fallback temporaries interleaved with arena ones are simply left
// to the garbage collector.
func (a *arena) release(stack, top int) {
	if a == nil {
		return
	}
	a.stacks[stack].top = top
}

// alloc carves n elements off the executing worker's stack, or returns
// nil when the stack cannot hold them (the caller heap-allocates). The
// returned memory is dirty: product temporaries must be zeroed by the
// caller before accumulating into them.
func (a *arena) alloc(c *sched.Ctx, n int) []float64 {
	if a == nil {
		return nil
	}
	s := &a.stacks[a.stackIndex(c)]
	if s.limit-s.top < n {
		return nil
	}
	b := a.buf[s.top : s.top+n : s.top+n]
	s.top += n
	return b
}

// newTemp is the arena-aware form of newTemp: same geometry rules
// (reference orientation for tiled storage, contiguous leading
// dimension for canonical), but the backing memory comes from the
// executing worker's arena stack when it fits. Unlike the heap form the
// arena memory is NOT zeroed — callers that accumulate into the temp
// (product temporaries) must matZero it first; temps that are fully
// overwritten (pre-addition operands) may skip that.
func (e *exec) newTemp(c *sched.Ctx, proto Mat) Mat {
	t := proto
	if proto.tiledStore() {
		t.orient = layout.OrientID
	} else {
		t.ld = proto.rows()
	}
	n := proto.elems()
	if b := e.ar.alloc(c, n); b != nil {
		t.data = b
		return t
	}
	faultinject.Alloc("core.newTemp")
	if e.ar != nil {
		e.ar.fallbackAllocs.Add(1)
		e.ar.fallbackElems.Add(int64(n))
		if tr := obs.Cur(); tr != nil {
			tr.Instant(c.WorkerID(), obs.KindArenaFallback, 8*int64(n))
		}
	}
	t.data = make([]float64, n)
	return t
}

// arenaStackElems returns the number of scratch elements one worker's
// depth-first path through alg needs, descending from a gm×gk×gn tile
// grid (equal extents for the quadrant-based algorithms) down to the
// leaves: Σ_levels own(level), where own is the storage the algorithm
// allocates at that level (quadrant operands are (t/2)² tiles). The
// per-algorithm terms:
//
//   - Standard: no temporaries.
//   - Standard8: 8 quadrant products.
//   - Strassen: 5 A-shaped + 5 B-shaped pre-addition operands and
//     7 C-shaped products.
//   - Winograd: 4+4 pre-addition operands, 7 products plus the shared
//     U2 accumulator (U6 reuses P4's storage).
//   - StrassenLowMem: one reused S-, T-, and P-shaped scratch.
//   - Table-driven ⟨m,k,n⟩: the BFS bound per table level — preA
//     A-shaped + preB B-shaped operands, R products, and the
//     evaluation schedule's aux blocks (the DFS levels use strictly
//     fewer per-product temps) — then the base algorithm's series
//     below the square power-of-two handoff.
//
// The fast algorithms stop allocating below fastCutoff, where they
// hand off to the temporary-free standard recursion. This function is
// the single source of truth for both the admission estimate and the
// arena reservation, so the MemBudget ladder accounts the arena up
// front — one reservation, not per-level guesses.
func arenaStackElems(alg Alg, gm, gk, gn, tm, tk, tn, fastCutoff int) int64 {
	if fastCutoff < 1 {
		fastCutoff = 1
	}
	if tb := tableOf(alg); tb != nil {
		return tableArenaElems(tb, gm, gk, gn, tm, tk, tn, fastCutoff)
	}
	var need int64
	for t := gm; t > 1; t /= 2 {
		q := int64(t/2) * int64(t/2)
		qa := q * int64(tm) * int64(tk)
		qb := q * int64(tk) * int64(tn)
		qc := q * int64(tm) * int64(tn)
		switch alg {
		case Standard8:
			need += 8 * qc
		case Strassen:
			if t <= fastCutoff {
				return need
			}
			need += 5*qa + 5*qb + 7*qc
		case Winograd:
			if t <= fastCutoff {
				return need
			}
			need += 4*qa + 4*qb + 8*qc
		case StrassenLowMem:
			if t <= fastCutoff {
				return need
			}
			need += qa + qb + qc
		default: // Standard, and anything unknown: no temporaries.
			return 0
		}
	}
	return need
}

// tableArenaElems walks the same level structure tableMul executes —
// table divisions while the grid divides by ⟨M,K,N⟩, then the base
// algorithm on the remaining square power-of-two grid — charging each
// table level its BFS maximum.
func tableArenaElems(tb *Table, gm, gk, gn, tm, tk, tn, fastCutoff int) int64 {
	var need int64
	for {
		if gm == 1 && gk == 1 && gn == 1 {
			return need
		}
		if tb.M == 2 && tb.K == 2 && tb.N == 2 {
			if gm <= fastCutoff {
				return need
			}
		} else {
			if gm == gk && gk == gn && gm&(gm-1) == 0 {
				return need + arenaStackElems(tb.Base, gm, gk, gn, tm, tk, tn, fastCutoff)
			}
			if gm%tb.M != 0 || gk%tb.K != 0 || gn%tb.N != 0 {
				return need // tableMul panics here; nothing more allocates
			}
		}
		gm, gk, gn = gm/tb.M, gk/tb.K, gn/tb.N
		qa := int64(gm) * int64(gk) * int64(tm) * int64(tk)
		qb := int64(gk) * int64(gn) * int64(tk) * int64(tn)
		qc := int64(gm) * int64(gn) * int64(tm) * int64(tn)
		// Schedule aux blocks live for the whole level on both the BFS
		// and DFS paths, on top of the per-product operands/products.
		need += int64(tb.preA+len(tb.AuxU))*qa +
			int64(tb.preB+len(tb.AuxV))*qb +
			int64(tb.R+len(tb.AuxW))*qc
	}
}

// arenaPool recycles arena buffers across runs. Checked-out arenas keep
// their (monotonically grown) buffer, so steady-state repeated
// multiplications of the same shape reuse one allocation.
var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// maxArenaElems caps the up-front reservation at 64 GiB of float64s;
// beyond it acquireArena declines and every temporary heap-allocates
// incrementally, which at that scale is the less catastrophic failure
// mode (and MemBudget admission will normally have refused far
// earlier).
const maxArenaElems = int64(1) << 33

// acquireArena reserves the workspace for one block multiplication:
// stacks × arenaStackElems elements in one contiguous buffer. stacks
// should be the pool's worker count, or 1 for serial execution (a
// serial run has exactly one live task, so every frame maps to stack
// 0). Returns nil when the algorithm needs no temporaries or the
// reservation would be absurd; the run then heap-allocates as before.
func acquireArena(alg Alg, gm, gk, gn, tm, tk, tn, fastCutoff, stacks int) *arena {
	return acquireArenaElems(arenaStackElems(alg, gm, gk, gn, tm, tk, tn, fastCutoff), stacks)
}

// acquireArenaElems reserves stacks × per elements directly — the form
// the batched wave driver uses, where per is the maximum single-item
// depth-first path over the wave's (possibly heterogeneous) geometries.
// A worker interleaving frames of two items under help-first stealing
// can transiently exceed its stack, exactly like cross-subtree stealing
// in a single call; the heap fallback absorbs it.
func acquireArenaElems(per int64, stacks int) *arena {
	if per <= 0 {
		return nil
	}
	if stacks < 1 {
		stacks = 1
	}
	total := per * int64(stacks)
	if total > maxArenaElems {
		return nil
	}
	// The reservation is the run's one up-front allocation — the
	// injection site that models workspace OOM (see internal/faultinject).
	faultinject.Alloc("core.arena")
	a := arenaPool.Get().(*arena)
	if int64(cap(a.buf)) < total {
		a.buf = make([]float64, total)
	}
	a.buf = a.buf[:total]
	if cap(a.stacks) < stacks {
		a.stacks = make([]arenaStack, stacks)
	}
	a.stacks = a.stacks[:stacks]
	for i := range a.stacks {
		base := i * int(per)
		a.stacks[i] = arenaStack{top: base, limit: base + int(per)}
	}
	a.fallbackAllocs.Store(0)
	a.fallbackElems.Store(0)
	return a
}

// releaseArena returns the workspace to the recycling pool. Callers
// must not release while tasks of the run may still allocate — in the
// driver this is after pool.RunCtx has returned, which waits out even
// cancelled runs.
func releaseArena(a *arena) {
	if a != nil {
		arenaPool.Put(a)
	}
}
