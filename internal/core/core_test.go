package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/leaf"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tile"
)

// testTile uses small tiles so that even modest test matrices exercise
// several levels of recursion.
var testTile = tile.Config{TMin: 4, TMax: 16, TSweet: 8, PadSlack: 0.05}

// mulCurves are the curves the multiplication driver accepts.
var mulCurves = []layout.Curve{
	layout.ColMajor, layout.UMorton, layout.XMorton,
	layout.ZMorton, layout.GrayMorton, layout.Hilbert,
}

// tol scales the comparison tolerance with problem size; Strassen-type
// algorithms lose a few digits relative to the naive sum.
func tol(m, k, n int) float64 {
	return 1e-10 * float64(k)
}

func TestGEMMCrossProduct(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{1, 1, 1},    // degenerate
		{7, 7, 7},    // single tile
		{16, 16, 16}, // exactly one tile at TMax
		{33, 29, 37}, // padding in all three dimensions
		{64, 64, 64}, // perfect power of two
		{60, 72, 48}, // rectangular with distinct tiles
	}
	for _, alg := range Algs {
		for _, cv := range mulCurves {
			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				A := matrix.Random(m, k, rng)
				B := matrix.Random(k, n, rng)
				C := matrix.Random(m, n, rng)
				want := C.Clone()
				matrix.RefGEMM(false, false, 1, A, B, 0, want)

				got := C.Clone()
				opts := Options{Curve: cv, Alg: alg, Tile: testTile}
				if _, err := GEMM(pool, opts, false, false, 1, A, B, 0, got); err != nil {
					t.Fatalf("%v/%v %v: %v", alg, cv, sh, err)
				}
				if !matrix.Equal(got, want, tol(m, k, n)) {
					t.Errorf("%v/%v %v: max diff %g", alg, cv, sh, matrix.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

func TestGEMMTransposesAndScalars(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(7))
	m, k, n := 40, 24, 56
	for _, alg := range Algs {
		for _, cv := range mulCurves {
			for _, ta := range []bool{false, true} {
				for _, tb := range []bool{false, true} {
					A := matrix.Random(m, k, rng)
					if ta {
						A = matrix.Random(k, m, rng)
					}
					B := matrix.Random(k, n, rng)
					if tb {
						B = matrix.Random(n, k, rng)
					}
					C := matrix.Random(m, n, rng)
					want := C.Clone()
					matrix.RefGEMM(ta, tb, -1.5, A, B, 0.25, want)

					got := C.Clone()
					opts := Options{Curve: cv, Alg: alg, Tile: testTile}
					if _, err := GEMM(pool, opts, ta, tb, -1.5, A, B, 0.25, got); err != nil {
						t.Fatalf("%v/%v ta=%v tb=%v: %v", alg, cv, ta, tb, err)
					}
					if !matrix.Equal(got, want, tol(m, k, n)) {
						t.Errorf("%v/%v ta=%v tb=%v: max diff %g",
							alg, cv, ta, tb, matrix.MaxAbsDiff(got, want))
					}
				}
			}
		}
	}
}

func TestGEMMWideLeanShapes(t *testing.T) {
	// Shapes that trigger the Figure 3 submatrix decomposition.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{300, 20, 20},  // wide A
		{20, 300, 20},  // lean A, wide B
		{20, 20, 300},  // lean B
		{256, 16, 200}, // mixed
	}
	for _, cv := range []layout.Curve{layout.ColMajor, layout.ZMorton, layout.Hilbert} {
		for _, alg := range []Alg{Standard, Strassen} {
			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				A := matrix.Random(m, k, rng)
				B := matrix.Random(k, n, rng)
				C := matrix.Random(m, n, rng)
				want := C.Clone()
				matrix.RefGEMM(false, false, 2, A, B, -1, want)

				got := C.Clone()
				opts := Options{Curve: cv, Alg: alg, Tile: testTile}
				st, err := GEMM(pool, opts, false, false, 2, A, B, -1, got)
				if err != nil {
					t.Fatalf("%v/%v %v: %v", alg, cv, sh, err)
				}
				if !matrix.Equal(got, want, tol(m, k, n)) {
					t.Errorf("%v/%v %v: max diff %g", alg, cv, sh, matrix.MaxAbsDiff(got, want))
				}
				if st.Blocks < 2 {
					t.Errorf("%v/%v %v: expected splitting, got %d block(s)", alg, cv, sh, st.Blocks)
				}
			}
		}
	}
}

func TestGEMMElementLevelTiles(t *testing.T) {
	// ForceTile=1 reproduces the Frens-Wise element-level recursion.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(13))
	A := matrix.Random(16, 16, rng)
	B := matrix.Random(16, 16, rng)
	for _, cv := range mulCurves {
		C := matrix.New(16, 16)
		want := matrix.New(16, 16)
		matrix.RefGEMM(false, false, 1, A, B, 0, want)
		opts := Options{Curve: cv, Alg: Standard, ForceTile: 1, Tile: testTile}
		st, err := GEMM(pool, opts, false, false, 1, A, B, 0, C)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(C, want, 1e-12) {
			t.Errorf("%v: element-level recursion wrong", cv)
		}
		if st.TileM != 1 || st.Depth != 4 {
			t.Errorf("%v: tile=%d depth=%d, want 1 and 4", cv, st.TileM, st.Depth)
		}
	}
}

func TestGEMMForceTileSweep(t *testing.T) {
	// The Figure 4 knob: every forced tile size gives the same product.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(17))
	n := 48
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := matrix.New(n, n)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)
	for _, ft := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 48} {
		C := matrix.New(n, n)
		opts := Options{Curve: layout.ZMorton, Alg: Standard, ForceTile: ft}
		if _, err := GEMM(pool, opts, false, false, 1, A, B, 0, C); err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(C, want, 1e-11) {
			t.Errorf("ForceTile=%d: wrong product", ft)
		}
	}
}

func TestGEMMAlphaZeroShortCircuit(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	A := matrix.New(8, 8)
	A.Set(0, 0, math.NaN())
	C := matrix.Sequential(8, 8)
	want := matrix.Sequential(8, 8)
	want.Scale(2)
	if _, err := GEMM(pool, Options{Curve: layout.ZMorton}, false, false, 0, A, A, 2, C); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(C, want, 0) {
		t.Fatal("alpha=0 should reduce to C *= beta without touching A")
	}
}

func TestGEMMDimensionErrors(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	A := matrix.New(4, 5)
	B := matrix.New(6, 3) // inner mismatch
	C := matrix.New(4, 3)
	if _, err := GEMM(pool, Options{}, false, false, 1, A, B, 0, C); err == nil {
		t.Error("inner dimension mismatch not rejected")
	}
	B2 := matrix.New(5, 3)
	C2 := matrix.New(9, 9) // wrong C
	if _, err := GEMM(pool, Options{}, false, false, 1, A, B2, 0, C2); err == nil {
		t.Error("C shape mismatch not rejected")
	}
	if _, err := GEMM(pool, Options{Curve: layout.RowMajor}, false, false, 1, A, B2, 0, matrix.New(4, 3)); err == nil {
		t.Error("row-major layout not rejected")
	}
}

func TestGEMMSerialCutoffIrrelevantToResult(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(19))
	A := matrix.Random(64, 64, rng)
	B := matrix.Random(64, 64, rng)
	want := matrix.New(64, 64)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)
	for _, cut := range []int{1, 2, 4, 64} {
		for _, alg := range Algs {
			C := matrix.New(64, 64)
			opts := Options{Curve: layout.Hilbert, Alg: alg, Tile: testTile, SerialCutoff: cut}
			if _, err := GEMM(pool, opts, false, false, 1, A, B, 0, C); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(C, want, 1e-10) {
				t.Errorf("alg=%v cutoff=%d: wrong product", alg, cut)
			}
		}
	}
}

func TestGEMMFastCutoff(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(23))
	A := matrix.Random(64, 64, rng)
	B := matrix.Random(64, 64, rng)
	want := matrix.New(64, 64)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)
	for _, fc := range []int{1, 2, 4, 8, 16} {
		C := matrix.New(64, 64)
		opts := Options{Curve: layout.GrayMorton, Alg: Winograd, Tile: testTile, FastCutoff: fc}
		if _, err := GEMM(pool, opts, false, false, 1, A, B, 0, C); err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(C, want, 1e-10) {
			t.Errorf("FastCutoff=%d: wrong product", fc)
		}
	}
}

func TestGEMMKernelIndependence(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(29))
	A := matrix.Random(40, 40, rng)
	B := matrix.Random(40, 40, rng)
	want := matrix.New(40, 40)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)
	for _, name := range leaf.Names() {
		k, _ := leaf.Get(name)
		C := matrix.New(40, 40)
		opts := Options{Curve: layout.ZMorton, Alg: Strassen, Tile: testTile, Kernel: k}
		if _, err := GEMM(pool, opts, false, false, 1, A, B, 0, C); err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(C, want, 1e-10) {
			t.Errorf("kernel %s: wrong product", name)
		}
	}
}

func TestGEMMPropertyRandomShapes(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(70), 1+rng.Intn(70), 1+rng.Intn(70)
		alg := Algs[rng.Intn(len(Algs))]
		cv := mulCurves[rng.Intn(len(mulCurves))]
		alpha := 2*rng.Float64() - 1
		beta := 2*rng.Float64() - 1
		ta := rng.Intn(2) == 1
		tb := rng.Intn(2) == 1
		ar, ac := m, k
		if ta {
			ar, ac = k, m
		}
		br, bc := k, n
		if tb {
			br, bc = n, k
		}
		A := matrix.Random(ar, ac, rng)
		B := matrix.Random(br, bc, rng)
		C := matrix.Random(m, n, rng)
		want := C.Clone()
		matrix.RefGEMM(ta, tb, alpha, A, B, beta, want)
		got := C.Clone()
		opts := Options{Curve: cv, Alg: alg, Tile: testTile}
		if _, err := GEMM(pool, opts, ta, tb, alpha, A, B, beta, got); err != nil {
			return false
		}
		return matrix.Equal(got, want, tol(m, k, n))
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(31))
	n := 64
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	C := matrix.New(n, n)
	opts := Options{Curve: layout.ZMorton, Alg: Standard, ForceTile: 8}
	st, err := GEMM(pool, opts, false, false, 1, A, B, 0, C)
	if err != nil {
		t.Fatal(err)
	}
	// The standard algorithm on a padded 64³ problem performs exactly
	// 2·64³ accounted flops (no additions).
	wantWork := 2.0 * 64 * 64 * 64
	if st.Work != wantWork {
		t.Errorf("work = %g, want %g", st.Work, wantWork)
	}
	if st.Span <= 0 || st.Span > st.Work {
		t.Errorf("span = %g out of range (work %g)", st.Span, st.Work)
	}
	if st.Depth != 3 || st.TileM != 8 {
		t.Errorf("depth=%d tile=%d, want 3 and 8", st.Depth, st.TileM)
	}
	if st.Parallelism() <= 1 {
		t.Errorf("parallelism = %g, want > 1", st.Parallelism())
	}
	if st.Total() <= 0 {
		t.Error("total time not recorded")
	}
}

func TestWorkSpanAnalyticMatchesAccounted(t *testing.T) {
	// With full spawning (SerialCutoff=1) the runtime accounting must
	// match the analytic recurrences exactly for the no-add algorithm.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(37))
	n := 32
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	for _, alg := range Algs {
		C := matrix.New(n, n)
		opts := Options{Curve: layout.ZMorton, Alg: alg, ForceTile: 4, SerialCutoff: 1}
		st, err := GEMM(pool, opts, false, false, 1, A, B, 0, C)
		if err != nil {
			t.Fatal(err)
		}
		w, s := WorkSpan(alg, 3, 4)
		if math.Abs(st.Work-w) > 1e-6*w {
			t.Errorf("%v: accounted work %g, analytic %g", alg, st.Work, w)
		}
		if tableOf(alg) != nil {
			// The table engine chooses BFS or DFS per level from live
			// worker occupancy, so the accounted span is only bounded
			// by the fully-parallel analytic span below and the serial
			// work above.
			if st.Span < s*(1-1e-6) || st.Span > st.Work*(1+1e-6) {
				t.Errorf("%v: accounted span %g outside [analytic %g, work %g]",
					alg, st.Span, s, st.Work)
			}
		} else if math.Abs(st.Span-s) > 1e-6*s {
			t.Errorf("%v: accounted span %g, analytic %g", alg, st.Span, s)
		}
	}
}

func TestFastAlgorithmsDoLessWork(t *testing.T) {
	// The defining property: Strassen and Winograd perform fewer flops
	// than the standard algorithm once the recursion is deep enough.
	wStd, _ := WorkSpan(Standard, 5, 16)
	wStr, _ := WorkSpan(Strassen, 5, 16)
	wWin, _ := WorkSpan(Winograd, 5, 16)
	if wStr >= wStd {
		t.Errorf("Strassen work %g not below standard %g", wStr, wStd)
	}
	if wWin >= wStr {
		t.Errorf("Winograd work %g not below Strassen %g", wWin, wStr)
	}
}

func TestNilPoolCreatesTransient(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	A := matrix.Random(20, 20, rng)
	B := matrix.Random(20, 20, rng)
	C := matrix.New(20, 20)
	want := matrix.New(20, 20)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)
	if _, err := GEMM(nil, Options{Curve: layout.Hilbert, Tile: testTile}, false, false, 1, A, B, 0, C); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(C, want, 1e-11) {
		t.Fatal("nil-pool GEMM wrong")
	}
}

func TestGEMMOnStridedViews(t *testing.T) {
	// Operands that are views into larger matrices (Stride > Rows) must
	// work through every layout path: pack, canonical pad, and unpack.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(77))
	big := matrix.Random(100, 100, rng)
	A := big.View(3, 7, 40, 30)
	B := big.View(11, 42, 30, 50)
	Cbig := matrix.Random(90, 90, rng)
	for _, cv := range mulCurves {
		C := Cbig.View(5, 9, 40, 50)
		saved := Cbig.Clone()
		want := C.Clone()
		matrix.RefGEMM(false, false, 1, A, B, 1, want)
		opts := Options{Curve: cv, Alg: Strassen, Tile: testTile}
		if _, err := GEMM(pool, opts, false, false, 1, A, B, 1, C); err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(C, want, 1e-11) {
			t.Errorf("%v: strided-view GEMM wrong", cv)
		}
		// The rest of Cbig must be untouched.
		for i := 0; i < 90; i++ {
			for j := 0; j < 90; j++ {
				inside := i >= 5 && i < 45 && j >= 9 && j < 59
				if !inside && Cbig.At(i, j) != saved.At(i, j) {
					t.Fatalf("%v: GEMM wrote outside the C view at (%d,%d)", cv, i, j)
				}
			}
		}
		// Restore C for the next layout.
		Cbig.CopyFrom(saved)
	}
}

func TestGEMMEmptyDims(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	// k = 0: C should just be scaled by beta.
	A := matrix.New(4, 0)
	B := matrix.New(0, 4)
	C := matrix.Sequential(4, 4)
	want := matrix.Sequential(4, 4)
	want.Scale(2)
	if _, err := GEMM(pool, Options{Curve: layout.ZMorton}, false, false, 1, A, B, 2, C); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(C, want, 0) {
		t.Fatal("k=0 GEMM should reduce to C *= beta")
	}
}
