//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Under
// race, sync.Pool deliberately drops a fraction of Puts to surface
// lifecycle races, so tests asserting zero steady-state pool misses
// cannot hold and must skip.
const raceEnabled = true
