package core
