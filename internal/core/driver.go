package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bits"
	"repro/internal/layout"
	"repro/internal/leaf"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/tile"
)

// Options selects the algorithm, layout, kernel, and tuning knobs for a
// GEMM call. The zero value requests the standard algorithm on the
// column-major layout with the paper's default leaf kernel and tile
// configuration.
type Options struct {
	// Curve is the array layout. ColMajor runs the baseline; the five
	// recursive curves run equation (3) layouts. RowMajor is rejected
	// (the paper's multiplication experiments do not use it).
	Curve layout.Curve
	// Alg is the multiplication algorithm.
	Alg Alg
	// Kernel is the leaf kernel as a bare function. Most callers should
	// prefer KernelName, which also unlocks the kernel's scratch-aware
	// form; when both are unset the driver autotunes: it benchmarks the
	// registered kernels on the chosen tile shape at first use and runs
	// the winner (leaf.Calibrate).
	Kernel leaf.Kernel
	// KernelName selects a registered kernel by name (leaf.Names). It
	// takes precedence over Kernel. The empty string (with Kernel nil)
	// selects the autotuned default.
	KernelName string
	// Tile is the tile-size configuration; the zero value selects
	// tile.DefaultConfig.
	Tile tile.Config
	// ForceTile, when positive, bypasses tile selection and forces
	// square tiles of exactly this size in every dimension — the knob
	// behind the Figure 4 depth-of-recursion experiment (ForceTile=1
	// reproduces Frens and Wise's element-level layout).
	ForceTile int
	// SerialCutoff is the quadrant size (tiles per side) at or below
	// which the recursion stops spawning parallel tasks; 0 selects the
	// default of 4. Set 1 to spawn at every level like the Cilk code.
	SerialCutoff int
	// FastCutoff is the quadrant size (tiles per side) at or below
	// which Strassen/Winograd fall back to the standard recursion;
	// 0 selects 1 (recurse the fast algorithm to single tiles, as the
	// paper does).
	FastCutoff int
	// DisableSplit turns off the wide/lean submatrix decomposition of
	// Figure 3, forcing a single (possibly heavily padded) tiling.
	DisableSplit bool
	// PartnerDim, when positive, tells Prepack the expected free
	// dimension of future multiplication partners (e.g. the width b of
	// the streamed right-hand sides a plan will serve). It enters the
	// wide/lean split exactly as the third dimension does in a direct
	// GEMM, so a square operand prepacked for skinny partners splits
	// into the same squat blocks a direct call would use — without it, a
	// plan assumes partners its own size, and its deep monolithic grid
	// forces heavy padding on a skinny partner's free dimension.
	// Ignored outside Prepack.
	PartnerDim int
	// MemBudget, when positive, is an admission-control cap in bytes on
	// the estimated footprint of each block multiplication (packed
	// operands + algorithm temporaries + per-worker kernel scratch).
	// When the requested configuration exceeds it, the driver degrades
	// along a ladder — Strassen/Winograd → StrassenLowMem (serial) →
	// Standard → Standard (serial) — and records each decision in
	// Stats.Degraded; if even the smallest rung exceeds the budget the
	// call fails with ErrMemBudget before allocating anything.
	MemBudget int64
	// MaxResidualGrowth, when positive, bounds the numerical error
	// growth tolerated from a fast (Strassen-like) algorithm, in units
	// of the standard algorithm's error floor (eps·k·|A|·|B|). Before
	// running a fast algorithm the driver samples a small probe block
	// from the operands, multiplies it with both the fast algorithm and
	// the naive reference, and falls back to Standard (recorded in
	// Stats.Degraded) when the measured growth exceeds this bound.
	// Typical useful values are 8–100; the standard algorithm itself
	// measures ≈1.
	MaxResidualGrowth float64
	// Metrics, when non-nil, receives cumulative per-call metrics
	// (call/error counts, phase-latency and GFLOPS histograms, scheduler
	// and pool counters) — see the metric* names in obs.go. Updates are
	// lock-free; the registry may be shared across pools and engines.
	Metrics *obs.Registry
	// TraceID, when non-zero, attributes this call to a served request:
	// the call's lane carries a wave-item event with the id as its arg,
	// which the exporter links back to the request's lane. Zero (the
	// default) emits nothing extra.
	TraceID int64
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Tile == (tile.Config{}) {
		v.Tile = tile.DefaultConfig
		if v.Kernel == nil && v.KernelName == "" {
			// Autotuned kernel selection may land on a packed
			// register-blocked kernel, so bias tile selection toward
			// sizes its micro-tiles divide evenly (fringe-free leaves).
			v.Tile.MicroM, v.Tile.MicroN = leaf.MicroM, leaf.MicroN
		}
	}
	if v.SerialCutoff <= 0 {
		v.SerialCutoff = 4
	}
	if v.FastCutoff <= 0 {
		v.FastCutoff = 1
	}
	return v
}

// Stats reports what a GEMM call did: conversion and compute wall times
// (the honest cost accounting the paper calls for), the accounted
// work/span of the computation DAG, and the tiling actually used.
type Stats struct {
	ConvertIn  time.Duration
	Compute    time.Duration
	ConvertOut time.Duration
	// Work and Span are the accounted flop totals of the task DAG;
	// Work/Span estimates available parallelism as Cilk's critical-path
	// instrumentation did.
	Work, Span float64
	// Depth and tile sizes of the (first) block multiplication.
	Depth                     uint
	TileM, TileK, TileN       int
	PaddedM, PaddedK, PaddedN int
	// Kernel names the leaf kernel that actually ran ("custom" for a
	// caller-supplied bare function); under the autotuned default it is
	// the calibration winner for the chosen tile shape.
	Kernel string
	// Blocks counts the sub-multiplications after wide/lean splitting.
	Blocks int
	// Alg is the algorithm that actually ran — it differs from the
	// requested one when graceful degradation stepped in.
	Alg Alg
	// Serial reports that degradation disabled parallel spawning.
	Serial bool
	// Degraded lists the degradation decisions (memory budget,
	// residual-growth probe) taken for the first block, in order; empty
	// means the requested configuration ran unchanged.
	Degraded []string
	// EstimatedBytes is the admission-control footprint estimate of the
	// configuration that ran (first block).
	EstimatedBytes int64
	// ArenaBytes is the scratch-arena workspace reserved up front for
	// the (first) block multiplication — the recursion's temporaries are
	// carved from it instead of the heap. 0 means the algorithm needs no
	// temporaries (Standard) or the reservation was declined.
	ArenaBytes int64
	// AllocBytes counts temporary bytes that missed the arena and fell
	// back to the heap (summed over blocks). 0 in steady state; non-zero
	// indicates transient over-subscription of a worker's arena stack
	// under work stealing, or a declined reservation.
	AllocBytes int64
	// ConvertBytes counts the packed bytes the call actually converted:
	// operand buffers filled from (or, for the fused epilogue,
	// accumulated back into) column-major storage. Prepacked operands
	// contribute nothing, so a plan-reusing call reports ≈ 0 here —
	// Section 4's conversion accounting, in bytes rather than seconds.
	ConvertBytes int64
	// PackReused counts operand packs satisfied without reading the
	// column-major source: blocks served by a *Prepacked* plan, and
	// second operands derived in-layout from the first (the transposed
	// pack a symmetric α·A·Aᵀ product folds).
	PackReused int
	// PoolHits and PoolMisses count tiled-buffer recycling-pool
	// outcomes for the buffers this call acquired; in steady state
	// repeated calls of one shape report PoolMisses == 0.
	PoolHits, PoolMisses int
	// Spawns, Steals, and Inline are the scheduler-counter deltas over
	// the call: tasks pushed to deques, tasks executed by a worker other
	// than their spawner, and frames run directly at their spawn site.
	// The counters are pool-global, so with concurrent callers on one
	// pool the deltas apportion approximately; they are clamped at zero.
	Spawns, Steals, Inline int64
	// Utilization is the fraction of worker·wall time the pool spent
	// executing tasks during the call — busy worker-nanoseconds over
	// workers × call wall time, in (0, 1] for any call that ran work.
	// Pool-global like the scheduler counters: concurrent callers
	// inflate each other's numerator, so the value is clamped at 1.
	Utilization float64
}

// Total returns the end-to-end wall time.
func (s *Stats) Total() time.Duration {
	return s.ConvertIn + s.Compute + s.ConvertOut
}

// Parallelism returns work/span.
func (s *Stats) Parallelism() float64 {
	return sched.Parallelism(s.Work, s.Span)
}

// GEMM computes C ← α·op(A)·op(B) + β·C with the selected algorithm and
// layout, following the Level 3 BLAS dgemm calling convention of
// Section 2.1: A, B, C are column-major with arbitrary leading
// dimensions, and op(X) is X or Xᵀ. Internally it converts the operands
// to the requested layout (padding per Section 4, splitting wide/lean
// shapes per Figure 3), runs the parallel recursive multiplication on
// the pool, and converts the result back.
//
// pool may be nil, in which case a transient pool with one worker per
// CPU is used.
//
// GEMM is GEMMCtx with a background context.
func GEMM(pool *sched.Pool, opts Options, transA, transB bool, alpha float64,
	A, B *matrix.Dense, beta float64, C *matrix.Dense) (*Stats, error) {
	return GEMMCtx(context.Background(), pool, opts, transA, transB, alpha, A, B, beta, C)
}

// GEMMCtx is GEMM with cooperative cancellation and the hardened
// failure contract: it never panics (panics anywhere in the recursion
// are recovered, aggregated with worker-side stacks, and returned as a
// *sched.TaskError), it validates scalars and tilings before touching
// C, and it honors ctx — a cancelled context makes the call return an
// error wrapping ctx's cause within a bounded latency.
//
// Failure atomicity: before any validation passes, C is untouched.
// After admission, C is scaled by beta up front; if the call then fails
// or is cancelled, C holds the β-scaled inputs (for beta == 0, zeros)
// plus the fully-unpacked products of any *completed* blocks — never a
// partially-written block product, since results are unpacked into C
// only after a block's compute finishes. The error reports how many
// blocks had completed.
func GEMMCtx(ctx context.Context, pool *sched.Pool, opts Options, transA, transB bool, alpha float64,
	A, B *matrix.Dense, beta float64, C *matrix.Dense) (stats *Stats, err error) {

	// The tracer and lane are captured once per call so a tracer swap
	// mid-call cannot split the call's spans across two tracers. The
	// metrics defer is declared before the recover boundary: deferred
	// calls run LIFO, so the recover sets the final (stats, err) pair
	// before the metrics and the whole-call span read them.
	t0 := time.Now()
	tr := obs.Cur()
	var lane int32
	if tr != nil {
		lane = tr.NewLane()
		if opts.TraceID != 0 {
			tr.LaneInstant(lane, obs.KindWaveItem, opts.TraceID)
		}
	}
	defer func() {
		if tr != nil {
			tr.LaneSpan(lane, obs.KindGEMM, t0, time.Since(t0), gemmSpanArg(stats))
		}
		recordCallMetrics(opts.Metrics, stats, err, time.Since(t0))
	}()
	defer func() {
		if r := recover(); r != nil {
			stats, err = nil, recoveredError(r)
		}
	}()
	o := opts.withDefaults()
	if o.Curve == layout.RowMajor {
		return nil, fmt.Errorf("core: the row-major layout is not supported by the multiplication driver")
	}
	if !isFinite(alpha) || !isFinite(beta) {
		return nil, fmt.Errorf("%w: alpha=%v, beta=%v", ErrNonFinite, alpha, beta)
	}
	m, k := A.Rows, A.Cols
	if transA {
		m, k = k, m
	}
	kb, n := B.Rows, B.Cols
	if transB {
		kb, n = n, kb
	}
	if kb != k {
		return nil, fmt.Errorf("core: inner dimensions disagree: op(A) is %dx%d, op(B) is %dx%d", m, k, kb, n)
	}
	if C.Rows != m || C.Cols != n {
		return nil, fmt.Errorf("core: C is %dx%d, want %dx%d", C.Rows, C.Cols, m, n)
	}
	if pool == nil {
		p := sched.NewPool(0)
		defer p.Close()
		pool = p
	} else if pool.Closed() {
		return nil, sched.ErrPoolClosed
	}
	if ctx.Err() != nil {
		// context.Cause preserves a cause-carrying cancellation (e.g. a
		// server drain) that plain ctx.Err() would flatten to Canceled.
		return nil, fmt.Errorf("core: GEMM not started: %w", context.Cause(ctx))
	}
	c0 := startCall(pool, t0)

	// β scaling happens once, up front, on the logical C; every block
	// product then accumulates α·A_ij·B_jl into it. Large matrices are
	// scaled in parallel column chunks across the pool instead of a
	// serial full-matrix pass on the caller's goroutine.
	if C.Rows*C.Cols >= ewParMin && pool.Workers() > 1 {
		if serr := scaleCols(pool, C, beta); serr != nil {
			return nil, fmt.Errorf("core: GEMM beta scale: %w", serr)
		}
	} else {
		C.Scale(beta)
	}
	if alpha == 0 || m == 0 || n == 0 {
		return &Stats{}, nil
	}
	if k == 0 {
		return &Stats{}, nil
	}
	// Per-shape auto-selection happens once per call, before splitting:
	// the wide/lean segments share near-identical shapes, and the daemon
	// keys its plan cache on the resolved algorithm.
	o.Alg = selectAlg(o, m, k, n)

	stats = &Stats{}
	ms := []tile.Seg{{Off: 0, Len: m}}
	ks := []tile.Seg{{Off: 0, Len: k}}
	ns := []tile.Seg{{Off: 0, Len: n}}
	if !o.DisableSplit && o.ForceTile == 0 {
		ms, ks, ns = o.Tile.SplitDims(m, k, n)
	}
	total := len(ms) * len(ks) * len(ns)
	first := true
	for _, sm := range ms {
		for _, sn := range ns {
			for _, sk := range ks {
				if ctx.Err() != nil {
					return nil, fmt.Errorf("core: GEMM cancelled after %d of %d blocks: %w", stats.Blocks, total, context.Cause(ctx))
				}
				av := opView(A, transA, sm, sk)
				bv := opView(B, transB, sk, sn)
				cv := C.View(sm.Off, sn.Off, sm.Len, sn.Len)
				if err := blockGEMM(ctx, pool, o, stats, first, tr, lane, transA, transB, alpha, av, bv, cv); err != nil {
					return nil, fmt.Errorf("core: GEMM failed in block %d of %d: %w", stats.Blocks+1, total, err)
				}
				first = false
				stats.Blocks++
			}
		}
	}
	finishStats(stats, pool, c0)
	return stats, nil
}

// opView returns the view of X whose op() is the (rows, cols) segment
// pair: when trans is set the roles of the segments swap because the
// stored matrix is the transpose of the logical operand.
func opView(X *matrix.Dense, trans bool, r, c tile.Seg) *matrix.Dense {
	if trans {
		return X.View(c.Off, r.Off, c.Len, r.Len)
	}
	return X.View(r.Off, c.Off, r.Len, c.Len)
}

// choose determines depth and tile sizes for one block multiplication,
// validating that the padded extents cannot overflow (an absurd
// ForceTile or tile range yields ErrDimension instead of garbage
// allocation sizes).
func choose(o Options, m, k, n int) (d uint, tm, tk, tn int, err error) {
	if o.ForceTile > 0 {
		t := o.ForceTile
		d = 0
		for _, dim := range []int{m, k, n} {
			need := uint(0)
			// The shift below is safe: dim and t are positive ints, and
			// need grows only while t<<need < dim ≤ MaxInt, so it stays
			// far below the width of int.
			for need < 62 && (t<<need) < dim {
				need++
			}
			if (t << need) < dim {
				return 0, 0, 0, 0, fmt.Errorf("%w: ForceTile=%d cannot cover %dx%dx%d", ErrDimension, t, m, k, n)
			}
			if need > d {
				d = need
			}
		}
		tm, tk, tn = t, t, t
	} else {
		ch := o.Tile.Pick(m, k, n)
		d, tm, tk, tn = ch.D, ch.Tiles[0], ch.Tiles[1], ch.Tiles[2]
	}
	if _, _, _, err := paddedDims(d, tm, tk, tn); err != nil {
		return 0, 0, 0, 0, err
	}
	return d, tm, tk, tn, nil
}

// resolveKernel turns the Options kernel selection into the executable
// forms for tm×tn leaf tiles with inner dimension tk. Precedence:
// KernelName (registry lookup, including the scratch-aware form), then a
// caller-supplied bare Kernel, then the autotuned winner for the shape.
func resolveKernel(o Options, tm, tk, tn int) (leaf.Kernel, leaf.ScratchKernel, string, error) {
	if o.KernelName != "" {
		impl, err := leaf.GetImpl(o.KernelName)
		if err != nil {
			return nil, nil, "", err
		}
		return impl.Kern, impl.Scratch, impl.Name, nil
	}
	if o.Kernel != nil {
		return o.Kernel, nil, "custom", nil
	}
	impl := leaf.Auto(tm, tn, tk)
	return impl.Kern, impl.Scratch, impl.Name, nil
}

// blockGEMM multiplies one squat block: Cv += alpha·op(Av)·op(Bv), with
// beta already applied to C by the caller. Admission control and the
// degradation ladder run here, before any allocation: the algorithm
// that actually executes may be a cheaper rung than the requested one,
// with every decision recorded in stats.Degraded (first block only —
// the wide/lean segments share near-identical shapes, so the decisions
// coincide across blocks).
func blockGEMM(ctx context.Context, pool *sched.Pool, o Options, stats *Stats, record bool,
	tr *obs.Tracer, lane int32, transA, transB bool, alpha float64, Av, Bv, Cv *matrix.Dense) error {

	m, n := Cv.Rows, Cv.Cols
	k := Av.Cols
	if transA {
		k = Av.Rows
	}
	// Geometry and admission run as one small fixed point: a rectangular
	// table algorithm starts on its mixed-radix grid (when one fits the
	// tile range), but any degradation off that algorithm — memory
	// budget or residual probe — invalidates the grid, so the loop
	// reverts to the square power-of-two geometry and re-admits there.
	// At most three iterations: the table geometry can be given up once,
	// and a fast algorithm can degrade to Standard once.
	oa := o
	useTG, tg := false, tableGeom{}
	if tb := tableOf(oa.Alg); tb != nil && !(tb.M == 2 && tb.K == 2 && tb.N == 2) &&
		o.Curve == layout.ColMajor && o.ForceTile == 0 {
		tg, useTG = chooseTableGeom(tb, o.Tile, m, k, n)
	}
	var d uint
	var gm, gk, gn, tm, tk, tn, mp, kp, np int
	var alg Alg
	var serial bool
	var est int64
	var notes []string
	var kern leaf.Kernel
	var skern leaf.ScratchKernel
	var kname string
	var e *exec
	for {
		if useTG {
			d, gm, gk, gn, tm, tk, tn = tg.d, tg.gm, tg.gk, tg.gn, tg.tm, tg.tk, tg.tn
			mp, kp, np = gm*tm, gk*tk, gn*tn
		} else {
			var err error
			d, tm, tk, tn, err = choose(o, m, k, n)
			if err != nil {
				return err
			}
			gm, gk, gn = 1<<d, 1<<d, 1<<d
			mp, kp, np, err = paddedDims(d, tm, tk, tn)
			if err != nil {
				return err
			}
		}
		var err error
		kern, skern, kname, err = resolveKernel(o, tm, tk, tn)
		if err != nil {
			return err
		}
		var anotes []string
		alg, serial, est, anotes, err = admit(oa, pool.Workers(), mp, kp, np, tm, tk, tn, false)
		notes = append(notes, anotes...)
		if err != nil {
			return err
		}
		if useTG && alg != oa.Alg {
			// The budget pushed the ladder below the table algorithm; its
			// mixed-radix grid can run nothing else. Retry the whole
			// ladder on the square geometry, where every rung is valid.
			notes = append(notes, fmt.Sprintf("table-geometry: %v does not fit on its %dx%dx%d grid; reverting to square geometry", oa.Alg, gm, gk, gn))
			useTG = false
			continue
		}
		e = &exec{kern: kern, skern: skern, serialCutoff: o.SerialCutoff, fastCutoff: o.FastCutoff, ewMin: ewParMin,
			tr: tr, lane: lane}
		if o.MaxResidualGrowth > 0 && isFastAlg(alg) && oa.Alg != Standard {
			if growth := probeResidualGrowth(e, alg, transA, transB, Av, Bv); growth > o.MaxResidualGrowth {
				notes = append(notes, fmt.Sprintf("residual-probe: %v growth %.1f > bound %.1f; degraded to %v",
					alg, growth, o.MaxResidualGrowth, Standard))
				oa.Alg = Standard
				useTG = false
				continue
			}
		}
		break
	}
	if serial {
		// Degraded-to-serial: stop all spawning so only one depth-first
		// path of temporaries (and one worker's kernel scratch) is live.
		e.serialCutoff = 1 << 30
	}
	// Reserve the block's scratch arena — the one up-front allocation
	// the admission estimate already charged. Every temporary of the
	// recursion is carved from it; release returns the buffer to the
	// recycling pool once the block's tasks have drained (RunCtx returns
	// only after that, even on cancellation).
	stacks := pool.Workers()
	if serial {
		stacks = 1
	}
	ar := acquireArena(alg, gm, gk, gn, tm, tk, tn, e.fastCutoff, stacks)
	defer releaseArena(ar)
	e.ar = ar
	if tr != nil {
		// One instant per degradation decision, plus the arena
		// reservation (arg = reserved bytes), on the call's lane.
		for range notes {
			tr.LaneInstant(lane, obs.KindDegrade, 0)
		}
		if ar != nil {
			tr.LaneInstant(lane, obs.KindArena, ar.bytes())
		}
	}
	if record {
		stats.Depth = d
		stats.TileM, stats.TileK, stats.TileN = tm, tk, tn
		stats.PaddedM, stats.PaddedK, stats.PaddedN = mp, kp, np
		stats.Kernel = kname
		stats.Alg = alg
		stats.Serial = serial
		stats.Degraded = notes
		stats.EstimatedBytes = est
		stats.ArenaBytes = ar.bytes()
	}

	var err error
	if o.Curve == layout.ColMajor {
		err = blockCanonical(ctx, pool, alg, e, stats, gm, gk, gn, tm, tk, tn, transA, transB, alpha, Av, Bv, Cv)
	} else {
		err = blockRecursive(ctx, pool, o, alg, e, stats, d, tm, tk, tn, transA, transB, alpha, Av, Bv, Cv)
	}
	if ar != nil {
		stats.AllocBytes += 8 * ar.fallbackElems.Load()
	}
	return err
}

// sameView reports whether two operand views alias the same storage
// with identical geometry — the pattern a symmetric product (SYRK's
// GEMM over one matrix in both slots with opposite trans flags)
// presents to the driver.
func sameView(a, b *matrix.Dense) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && a.Stride == b.Stride &&
		len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

func blockRecursive(ctx context.Context, pool *sched.Pool, o Options, alg Alg, e *exec, stats *Stats,
	d uint, tm, tk, tn int, transA, transB bool, alpha float64, Av, Bv, Cv *matrix.Dense) error {

	opDims := func(x *matrix.Dense, trans bool) (int, int) {
		if trans {
			return x.Cols, x.Rows
		}
		return x.Rows, x.Cols
	}
	// Operands are packed UNSCALED (alpha rides in the fused epilogue)
	// into recycled buffers; C is not packed at all — the product
	// accumulates into a zero-filled tiled buffer and folds back with
	// UnpackAccumulate, so C is read and written once instead of
	// read+pack+unpack. Buffers return to the pool even on failure:
	// every parallel pass below drains its tasks before returning.
	// Each phase runs under e.phase, which closes its runtime/trace
	// region and tracer span on error paths too.
	var ta, tb, tc *Tiled
	defer func() {
		releaseTiled(tc)
		releaseTiled(tb)
		releaseTiled(ta)
	}()
	t0 := time.Now()
	err := e.phase(ctx, obs.KindConvertIn, "recmat.convert-in", func() error {
		ar, ac := opDims(Av, transA)
		ta = acquireTiled(stats, o.Curve, d, tm, tk, ar, ac)
		if err := ta.Pack(ctx, pool, Av, transA, 1); err != nil {
			return err
		}
		br, bc := opDims(Bv, transB)
		tb = acquireTiled(stats, o.Curve, d, tk, tn, br, bc)
		if sameView(Av, Bv) && transA != transB && tm == tn {
			// op(B) is exactly op(A)ᵀ: derive the second packed operand from
			// the first inside the recursive layout instead of re-reading the
			// strided column-major source (the SYRK double-pack fold).
			if err := tb.PackTransposeOf(ctx, pool, ta); err != nil {
				return err
			}
			stats.PackReused++
			stats.ConvertBytes += 8 * int64(len(ta.Data))
		} else {
			if err := tb.Pack(ctx, pool, Bv, transB, 1); err != nil {
				return err
			}
			stats.ConvertBytes += 8 * int64(len(ta.Data)+len(tb.Data))
		}
		tc = acquireTiled(stats, o.Curve, d, tm, tn, Cv.Rows, Cv.Cols)
		return zeroFill(ctx, pool, tc.Data)
	})
	stats.ConvertIn += time.Since(t0)
	if err != nil {
		return err
	}

	t1 := time.Now()
	var work, span float64
	err = e.phase(ctx, obs.KindCompute, "recmat.compute", func() error {
		cm, am, bm := tc.Mat(), ta.Mat(), tb.Mat()
		var rerr error
		work, span, rerr = pool.RunCtx(ctx, func(c *sched.Ctx) { e.mul(c, alg, cm, am, bm) })
		return rerr
	})
	stats.Compute += time.Since(t1)
	stats.Work += work
	if span > stats.Span {
		stats.Span = span
	}
	if err != nil {
		// The packed product is incomplete; Cv is untouched — still
		// exactly the β-scaled input for this block.
		return err
	}

	t2 := time.Now()
	err = e.phase(ctx, obs.KindConvertOut, "recmat.convert-out", func() error {
		// The epilogue accumulates under a background context: once it
		// starts, a cancellation must not leave the block half-applied (the
		// β-scaled-or-complete contract); the pass is one bounded sweep.
		return tc.UnpackAccumulate(context.Background(), pool, Cv, alpha)
	})
	stats.ConvertOut += time.Since(t2)
	if err != nil {
		return err
	}
	stats.ConvertBytes += 8 * int64(len(tc.Data))
	return nil
}

func blockCanonical(ctx context.Context, pool *sched.Pool, alg Alg, e *exec, stats *Stats,
	gm, gk, gn, tm, tk, tn int, transA, transB bool, alpha float64, Av, Bv, Cv *matrix.Dense) error {

	// Same fused-epilogue discipline as blockRecursive: recycled padded
	// buffers, unscaled operand packs (packPadded overwrites every
	// element, padding included, so dirty buffers are safe), a zero-filled
	// C, and the α·accumulate folded into the unpack. The tile grid is
	// square (gm = gk = gn = 2^d) for the quadrant algorithms and
	// mixed-radix rectangular for the table-driven ⟨m,k,n⟩ family.
	mp, kp, np := gm*tm, gk*tk, gn*tn
	var ap, bp, cp *matrix.Dense
	defer func() {
		releasePadded(cp)
		releasePadded(bp)
		releasePadded(ap)
	}()
	t0 := time.Now()
	err := e.phase(ctx, obs.KindConvertIn, "recmat.convert-in", func() error {
		ap = acquirePadded(stats, mp, kp)
		if err := packPadded(ctx, pool, ap, Av, transA, 1); err != nil {
			return err
		}
		bp = acquirePadded(stats, kp, np)
		if err := packPadded(ctx, pool, bp, Bv, transB, 1); err != nil {
			return err
		}
		cp = acquirePadded(stats, mp, np)
		return zeroFill(ctx, pool, cp.Data)
	})
	stats.ConvertIn += time.Since(t0)
	if err != nil {
		return err
	}
	stats.ConvertBytes += 8 * int64(len(ap.Data)+len(bp.Data))

	mk := func(x *matrix.Dense, gr, gc, tr, tc int) Mat {
		mt := Mat{data: x.Data, tiles: gr, tr: tr, tc: tc, ld: x.Stride, curve: layout.ColMajor}
		if gc != gr {
			mt.tilesc = gc
		}
		return mt
	}
	cm, am, bm := mk(cp, gm, gn, tm, tn), mk(ap, gm, gk, tm, tk), mk(bp, gk, gn, tk, tn)
	t1 := time.Now()
	var work, span float64
	err = e.phase(ctx, obs.KindCompute, "recmat.compute", func() error {
		var rerr error
		work, span, rerr = pool.RunCtx(ctx, func(c *sched.Ctx) { e.mul(c, alg, cm, am, bm) })
		return rerr
	})
	stats.Compute += time.Since(t1)
	stats.Work += work
	if span > stats.Span {
		stats.Span = span
	}
	if err != nil {
		// The padded product is incomplete; Cv is untouched — still
		// exactly the β-scaled input for this block.
		return err
	}

	t2 := time.Now()
	err = e.phase(ctx, obs.KindConvertOut, "recmat.convert-out", func() error {
		// Background context for the same atomicity reason as blockRecursive.
		return unpackPaddedAccumulate(context.Background(), pool, Cv, cp, alpha)
	})
	stats.ConvertOut += time.Since(t2)
	if err != nil {
		return err
	}
	stats.ConvertBytes += 8 * int64(len(cp.Data))
	return nil
}

// MulTiled runs C += A·B directly on pre-converted tiled operands,
// bypassing conversion — the entry point benchmarks use to time the
// multiplication alone. The three operands must share curve and depth,
// with conforming tile shapes. MulTiled is MulTiledCtx with a
// background context.
func MulTiled(pool *sched.Pool, opts Options, C, A, B *Tiled) (*Stats, error) {
	return MulTiledCtx(context.Background(), pool, opts, C, A, B)
}

// MulTiledCtx is MulTiled with cooperative cancellation and the same
// panic-to-error boundary as GEMMCtx. On cancellation or failure the
// tiled C must be considered corrupt: unlike GEMMCtx there is no
// private packed copy, so partial quadrant products may already have
// accumulated into it.
func MulTiledCtx(ctx context.Context, pool *sched.Pool, opts Options, C, A, B *Tiled) (stats *Stats, err error) {
	// Same observability prologue as GEMMCtx: capture the tracer once,
	// record the metrics and whole-call span after the recover boundary
	// has settled the (stats, err) pair.
	tCall := time.Now()
	tr := obs.Cur()
	var lane int32
	if tr != nil {
		lane = tr.NewLane()
	}
	defer func() {
		if tr != nil {
			tr.LaneSpan(lane, obs.KindGEMM, tCall, time.Since(tCall), gemmSpanArg(stats))
		}
		recordCallMetrics(opts.Metrics, stats, err, time.Since(tCall))
	}()
	defer func() {
		if r := recover(); r != nil {
			stats, err = nil, recoveredError(r)
		}
	}()
	o := opts.withDefaults()
	if A.Curve != C.Curve || B.Curve != C.Curve {
		return nil, fmt.Errorf("core: curve mismatch")
	}
	if A.D != C.D || B.D != C.D {
		return nil, fmt.Errorf("core: depth mismatch")
	}
	if C.TR != A.TR || A.TC != B.TR || B.TC != C.TC {
		return nil, fmt.Errorf("core: tile shapes do not conform: C %dx%d, A %dx%d, B %dx%d",
			C.TR, C.TC, A.TR, A.TC, B.TR, B.TC)
	}
	if pool == nil {
		p := sched.NewPool(0)
		defer p.Close()
		pool = p
	} else if pool.Closed() {
		return nil, sched.ErrPoolClosed
	}
	kern, skern, kname, err := resolveKernel(o, C.TR, A.TC, C.TC)
	if err != nil {
		return nil, err
	}
	if o.Alg == AlgAuto {
		sel := o
		sel.Curve = C.Curve
		o.Alg = selectAlg(sel, C.PaddedRows(), A.PaddedCols(), C.PaddedCols())
	}
	alg, serial, est, notes, err := admit(o, pool.Workers(),
		C.PaddedRows(), A.PaddedCols(), C.PaddedCols(), C.TR, A.TC, C.TC, false)
	if err != nil {
		return nil, err
	}
	e := &exec{kern: kern, skern: skern, serialCutoff: o.SerialCutoff, fastCutoff: o.FastCutoff, ewMin: ewParMin,
		tr: tr, lane: lane}
	if serial {
		e.serialCutoff = 1 << 30
	}
	stacks := pool.Workers()
	if serial {
		stacks = 1
	}
	ar := acquireArena(alg, 1<<C.D, 1<<C.D, 1<<C.D, C.TR, A.TC, C.TC, e.fastCutoff, stacks)
	defer releaseArena(ar)
	e.ar = ar
	if tr != nil && ar != nil {
		tr.LaneInstant(lane, obs.KindArena, ar.bytes())
	}
	stats = &Stats{Depth: C.D, TileM: C.TR, TileK: A.TC, TileN: C.TC,
		PaddedM: C.PaddedRows(), PaddedK: A.PaddedCols(), PaddedN: C.PaddedCols(),
		Kernel: kname, Blocks: 1, Alg: alg, Serial: serial, Degraded: notes,
		EstimatedBytes: est, ArenaBytes: ar.bytes()}
	c0 := startCall(pool, tCall)
	t0 := time.Now()
	var work, span float64
	err = e.phase(ctx, obs.KindCompute, "recmat.compute", func() error {
		cm, am, bm := C.Mat(), A.Mat(), B.Mat()
		var rerr error
		work, span, rerr = pool.RunCtx(ctx, func(c *sched.Ctx) { e.mul(c, alg, cm, am, bm) })
		return rerr
	})
	stats.Compute = time.Since(t0)
	stats.Work, stats.Span = work, span
	if ar != nil {
		stats.AllocBytes = 8 * ar.fallbackElems.Load()
	}
	if err != nil {
		return nil, err
	}
	finishStats(stats, pool, c0)
	return stats, nil
}

// WorkSpan computes, without executing anything, the analytic work and
// span (in flops) of one algorithm on a 2^d grid of t×t tiles with the
// given parallel-structure assumptions — the idealized counterpart of
// the runtime accounting, used by the parallelism experiment.
func WorkSpan(alg Alg, d uint, t int) (work, span float64) {
	leafFlops := 2 * float64(t) * float64(t) * float64(t)
	addFlops := func(tiles int) float64 {
		e := float64(tiles) * float64(tiles) * float64(t) * float64(t)
		return e
	}
	var rec func(tiles int) (w, s float64)
	switch alg {
	case Standard:
		rec = func(tiles int) (float64, float64) {
			if tiles == 1 {
				return leafFlops, leafFlops
			}
			w, s := rec(tiles / 2)
			return 8 * w, 2 * s // two parallel rounds of four
		}
	case Standard8:
		rec = func(tiles int) (float64, float64) {
			if tiles == 1 {
				return leafFlops, leafFlops
			}
			w, s := rec(tiles / 2)
			a := addFlops(tiles / 2)
			return 8*w + 8*a, s + 2*a // eight parallel products, then parallel post-add pairs
		}
	case Strassen:
		rec = func(tiles int) (float64, float64) {
			if tiles == 1 {
				return leafFlops, leafFlops
			}
			w, s := rec(tiles / 2)
			a := addFlops(tiles / 2)
			// 10 pre-additions plus 12 accumulate passes in the
			// post-additions (the paper's 18-addition count is for the
			// assignment form; the accumulate form C += Σ±P costs one
			// pass per term).
			return 7*w + 22*a, s + 5*a // parallel pre (1 deep), mults, post (4 deep)
		}
	case Winograd:
		rec = func(tiles int) (float64, float64) {
			if tiles == 1 {
				return leafFlops, leafFlops
			}
			w, s := rec(tiles / 2)
			a := addFlops(tiles / 2)
			// 8 pre-addition passes (two 3-deep chains plus two single
			// subtractions) and 11 post passes in the accumulate form;
			// the paper's 15-addition count is for the assignment form.
			return 7*w + 19*a, s + 14*a // 3-deep pre chain, mults, 11 sequential post adds
		}
	case StrassenLowMem:
		rec = func(tiles int) (float64, float64) {
			if tiles == 1 {
				return leafFlops, leafFlops
			}
			w, _ := rec(tiles / 2)
			a := addFlops(tiles / 2)
			// Entirely sequential: span equals work.
			total := 7*w + 29*a
			return total, total
		}
	default:
		tb := tableOf(alg)
		if tb == nil {
			panic("core: invalid algorithm")
		}
		if tb.M != 2 || tb.K != 2 || tb.N != 2 {
			// On the square power-of-two grid this function models, a
			// rectangular table hands the whole recursion to its base.
			return WorkSpan(tb.Base, d, t)
		}
		// Generic ⟨2,2,2⟩ table: R products; one element-wise pass per
		// term beyond the first of each multi-term U/V row (the fused
		// first pair costs one pass), one accumulate pass per W term.
		// Schedule aux rows cost one fused pass per term beyond the
		// first, materialized once per level; scheduled U/V/W rows then
		// reference them like any block. The engine accounts the DFS
		// first-touch copy of a W aux as a move, not an add, so the
		// count below is exact on both parallel policies.
		var passes, preDepth, postDepth int
		for _, aux := range [][][]tableTerm{tb.AuxU, tb.AuxV} {
			for _, row := range aux {
				// Aux chains are dependent; their passes serialize.
				passes += len(row) - 1
				preDepth += len(row) - 1
			}
		}
		for r := 0; r < tb.R; r++ {
			for _, row := range [][]tableTerm{tb.U[r], tb.V[r]} {
				if p := len(row) - 1; p > 0 {
					passes += p
					if p > preDepth {
						preDepth = p
					}
				}
			}
		}
		for _, row := range tb.AuxW {
			passes += len(row) - 1
			postDepth += len(row) - 1
		}
		for _, row := range tb.W {
			passes += len(row)
			if len(row) > postDepth {
				postDepth = len(row)
			}
		}
		rec = func(tiles int) (float64, float64) {
			if tiles == 1 {
				return leafFlops, leafFlops
			}
			w, s := rec(tiles / 2)
			a := addFlops(tiles / 2)
			return float64(tb.R)*w + float64(passes)*a, s + float64(preDepth+postDepth)*a
		}
	}
	if !bits.IsPow2(1 << d) {
		panic("unreachable")
	}
	return rec(1 << d)
}
