package core

import (
	"repro/internal/layout"
	"repro/internal/sched"
)

// strassenLowMem is the space-conserving sequential variant Section 5 of
// the paper describes: "If we were interested only in sequential
// computation, and wished to conserve space, we would intersperse
// recursive calls with pre- and post-additions." Instead of materializing
// all ten pre-addition temporaries and seven product temporaries at
// once, it allocates one S-shaped, one T-shaped, and one P-shaped
// scratch per level and processes the seven products one after another,
// accumulating each into the destination quadrants as soon as it is
// ready.
//
// There is no parallelism in this code ("of course, there is no
// parallelism in such a code"), and its leaf products read from scratch
// buffers that are reused immediately — which is why the paper observes
// that it behaves more like the standard algorithm with respect to
// layouts (recursive layouts help it by 10–20%). The ablation benchmark
// at the repository root reproduces that comparison.
func (e *exec) strassenLowMem(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if C.tiles <= e.fastCutoff {
		e.std(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)

	// The variant shares the run's arena: one S-, T-, and P-shaped
	// scratch per level (its signature footprint) carved from the single
	// sequential stack and released on return. S and T are fully
	// overwritten before each use; P is explicitly zeroed.
	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	s := e.newTemp(c, a11)
	t := e.newTemp(c, b11)
	p := e.newTemp(c, c11)

	// P1 = (A11+A22)·(B11+B22) → C11, C22
	matEW3(s, a11, a22, vAdd)
	matEW3(t, b11, b22, vAdd)
	matZero(p)
	e.strassenLowMem(c, p, s, t)
	matEW2(c11, p, vAcc)
	matEW2(c22, p, vAcc)
	// P2 = (A21+A22)·B11 → C21, −C22
	matEW3(s, a21, a22, vAdd)
	matZero(p)
	e.strassenLowMem(c, p, s, b11)
	matEW2(c21, p, vAcc)
	matEW2(c22, p, vDec)
	// P3 = A11·(B12−B22) → C12, C22
	matEW3(t, b12, b22, vSub)
	matZero(p)
	e.strassenLowMem(c, p, a11, t)
	matEW2(c12, p, vAcc)
	matEW2(c22, p, vAcc)
	// P4 = A22·(B21−B11) → C11, C21
	matEW3(t, b21, b11, vSub)
	matZero(p)
	e.strassenLowMem(c, p, a22, t)
	matEW2(c11, p, vAcc)
	matEW2(c21, p, vAcc)
	// P5 = (A11+A12)·B22 → −C11, C12
	matEW3(s, a11, a12, vAdd)
	matZero(p)
	e.strassenLowMem(c, p, s, b22)
	matEW2(c11, p, vDec)
	matEW2(c12, p, vAcc)
	// P6 = (A21−A11)·(B11+B12) → C22
	matEW3(s, a21, a11, vSub)
	matEW3(t, b11, b12, vAdd)
	matZero(p)
	e.strassenLowMem(c, p, s, t)
	matEW2(c22, p, vAcc)
	// P7 = (A12−A22)·(B21+B22) → C11
	matEW3(s, a12, a22, vSub)
	matEW3(t, b21, b22, vAdd)
	matZero(p)
	e.strassenLowMem(c, p, s, t)
	matEW2(c11, p, vAcc)

	// 10 pre-addition passes, 7 zero-fills, 12 accumulate passes.
	for i := 0; i < 29; i++ {
		accountAdd(c, c11)
	}
}
