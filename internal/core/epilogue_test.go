package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// TestUnpackAccumulateDifferential pins the fused epilogue against its
// decomposed form: dst += α·unpack(t) must equal Unpack into a scratch
// followed by an explicit scaled accumulate, bit for bit (same values,
// same order within each column), across curves, tile fringes, and the
// α values the driver specializes.
func TestUnpackAccumulateDifferential(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(21))
	for _, cv := range layout.RecursiveCurves {
		for _, dims := range [][4]int{
			{16, 16, 4, 4},  // exact fit
			{15, 13, 4, 4},  // fringe in both dims
			{10, 20, 3, 5},  // rectangular tiles
			{1, 1, 4, 4},    // single element
			{33, 17, 8, 16}, // asymmetric
		} {
			rows, cols, tr, tc := dims[0], dims[1], dims[2], dims[3]
			d := uint(0)
			for (tr<<d) < rows || (tc<<d) < cols {
				d++
			}
			src := matrix.Random(rows, cols, rng)
			tl := NewTiled(cv, d, tr, tc, rows, cols)
			if err := tl.Pack(context.Background(), pool, src, false, 1); err != nil {
				t.Fatal(err)
			}
			for _, alpha := range []float64{0, 1, 0.5, -2.25} {
				dst0 := matrix.Random(rows, cols, rng)

				got := dst0.Clone()
				if err := tl.UnpackAccumulate(context.Background(), pool, got, alpha); err != nil {
					t.Fatal(err)
				}

				scratch := matrix.New(rows, cols)
				if err := tl.Unpack(context.Background(), pool, scratch); err != nil {
					t.Fatal(err)
				}
				want := dst0.Clone()
				for j := 0; j < cols; j++ {
					for i := 0; i < rows; i++ {
						want.Set(i, j, want.At(i, j)+alpha*scratch.At(i, j))
					}
				}
				if !matrix.Equal(got, want, 0) {
					t.Errorf("%v %v alpha=%g: fused epilogue diverges (max diff %g)",
						cv, dims, alpha, matrix.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

// TestGEMMFusedEpilogueBetaSweep is the acceptance differential for the
// fused epilogue: every curve (canonical included) × every trans
// combination × β ∈ {0, 1, 0.5} against RefGEMM, on a shape with
// padding fringes in all three dimensions.
func TestGEMMFusedEpilogueBetaSweep(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(22))
	m, k, n := 33, 29, 37
	for _, cv := range mulCurves {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				for _, beta := range []float64{0, 1, 0.5} {
					A := matrix.Random(m, k, rng)
					if ta {
						A = matrix.Random(k, m, rng)
					}
					B := matrix.Random(k, n, rng)
					if tb {
						B = matrix.Random(n, k, rng)
					}
					C := matrix.Random(m, n, rng)
					want := C.Clone()
					matrix.RefGEMM(ta, tb, 0.75, A, B, beta, want)

					got := C.Clone()
					opts := Options{Curve: cv, Alg: Standard, Tile: testTile}
					if _, err := GEMM(pool, opts, ta, tb, 0.75, A, B, beta, got); err != nil {
						t.Fatalf("%v ta=%v tb=%v beta=%g: %v", cv, ta, tb, beta, err)
					}
					if !matrix.Equal(got, want, tol(m, k, n)) {
						t.Errorf("%v ta=%v tb=%v beta=%g: max diff %g",
							cv, ta, tb, beta, matrix.MaxAbsDiff(got, want))
					}
				}
			}
		}
	}
}

// TestPackTransposeOfMatchesDirectPack: deriving the transposed operand
// inside the layout must produce exactly the buffer a direct transposed
// Pack of the source would.
func TestPackTransposeOfMatchesDirectPack(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(23))
	for _, cv := range layout.RecursiveCurves {
		for _, dims := range [][4]int{
			{16, 16, 4, 4},
			{15, 13, 4, 3}, // fringes, rectangular tiles
			{9, 14, 3, 4},
		} {
			rows, cols, tr, tc := dims[0], dims[1], dims[2], dims[3]
			d := uint(0)
			for (tr<<d) < rows || (tc<<d) < cols {
				d++
			}
			src := matrix.Random(rows, cols, rng)
			direct := NewTiled(cv, d, tr, tc, rows, cols)
			if err := direct.Pack(context.Background(), pool, src, false, 1); err != nil {
				t.Fatal(err)
			}

			// The transpose, packed two ways: re-reading the source with
			// trans=true, and deriving in-layout from the direct pack.
			viaSrc := NewTiled(cv, d, tc, tr, cols, rows)
			if err := viaSrc.Pack(context.Background(), pool, src, true, 1); err != nil {
				t.Fatal(err)
			}
			derived := NewTiled(cv, d, tc, tr, cols, rows)
			if err := derived.PackTransposeOf(context.Background(), pool, direct); err != nil {
				t.Fatal(err)
			}
			for i := range derived.Data {
				if derived.Data[i] != viaSrc.Data[i] {
					t.Fatalf("%v %v: PackTransposeOf differs from direct pack at %d", cv, dims, i)
				}
			}
		}
	}
}

// TestPackTransposeOfValidation rejects mismatched grids.
func TestPackTransposeOfValidation(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	src := NewTiled(layout.ZMorton, 2, 4, 3, 16, 12)
	if err := NewTiled(layout.Hilbert, 2, 3, 4, 12, 16).PackTransposeOf(context.Background(), pool, src); err == nil {
		t.Error("curve mismatch not rejected")
	}
	if err := NewTiled(layout.ZMorton, 3, 3, 4, 12, 16).PackTransposeOf(context.Background(), pool, src); err == nil {
		t.Error("depth mismatch not rejected")
	}
	if err := NewTiled(layout.ZMorton, 2, 4, 3, 16, 12).PackTransposeOf(context.Background(), pool, src); err == nil {
		t.Error("unmirrored tile shape not rejected")
	}
}

// TestGEMMSymmetricFoldsSecondPack: when both operand slots view the
// same storage with opposite trans flags (SYRK's diagonal GEMM), the
// driver must derive the second pack in-layout (PackReused) and still
// match the reference.
func TestGEMMSymmetricFoldsSecondPack(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(24))
	n, k := 40, 24
	for _, cv := range layout.RecursiveCurves {
		for _, trans := range []bool{false, true} {
			A := matrix.Random(n, k, rng)
			if trans {
				A = matrix.Random(k, n, rng)
			}
			C := matrix.Random(n, n, rng)
			want := C.Clone()
			matrix.RefGEMM(trans, !trans, 1.5, A, A, 0.5, want)

			got := C.Clone()
			opts := Options{Curve: cv, Alg: Standard, Tile: testTile}
			stats, err := GEMM(pool, opts, trans, !trans, 1.5, A, A, 0.5, got)
			if err != nil {
				t.Fatalf("%v trans=%v: %v", cv, trans, err)
			}
			if stats.PackReused == 0 {
				t.Errorf("%v trans=%v: symmetric second pack not folded (PackReused=0)", cv, trans)
			}
			if !matrix.Equal(got, want, tol(n, k, n)) {
				t.Errorf("%v trans=%v: max diff %g", cv, trans, matrix.MaxAbsDiff(got, want))
			}
		}
	}
}

// TestScaleColsMatchesScale: the parallel β pass must agree exactly
// with the serial Scale, including on strided views.
func TestScaleColsMatchesScale(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(25))
	base := matrix.Random(40, 40, rng)
	va := base.View(3, 5, 30, 20)
	vb := base.Clone().View(3, 5, 30, 20)
	if err := scaleCols(pool, va, 0.375); err != nil {
		t.Fatal(err)
	}
	vb.Scale(0.375)
	if !matrix.Equal(va, vb, 0) {
		t.Error("parallel scaleCols diverges from serial Scale")
	}
}
