package core

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/leaf"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Alg identifies one of the recursive multiplication algorithms of
// Section 2 of the paper.
type Alg uint8

const (
	// Standard is the O(n³) algorithm in its accumulate form: two
	// rounds of four independent quadrant products per level, with no
	// temporary storage. Leaf products read and write the original
	// (converted) matrices — the property Section 5.1 uses to explain
	// its memory behavior.
	Standard Alg = iota
	// Standard8 is the O(n³) algorithm exactly as written in
	// Figure 1(a): all eight quadrant products spawned at once into
	// quadrant-sized temporaries P1..P8, followed by post-additions.
	// It trades temporary storage for a shorter critical path.
	Standard8
	// Strassen is Strassen's algorithm (Figure 1(b)): 7 recursive
	// products, 18 additions/subtractions.
	Strassen
	// Winograd is Winograd's variant (Figure 1(c)): 7 recursive
	// products, 15 additions/subtractions — the minimum possible for
	// quadrant-based recursion — at the cost of common-subexpression
	// chains with worse algorithmic locality.
	Winograd
	// StrassenLowMem is the space-conserving sequential Strassen variant
	// Section 5 mentions: pre- and post-additions interspersed with the
	// recursive calls, reusing three scratch quadrants per level. It
	// exposes no parallelism.
	StrassenLowMem
	numAlgs
)

var algNames = [numAlgs]string{"standard", "standard8", "strassen", "winograd", "strassen-lowmem"}

func (a Alg) String() string {
	if int(a) < len(algNames) {
		return algNames[a]
	}
	if tb := tableOf(a); tb != nil {
		return tb.Name
	}
	if a == AlgAuto {
		return "auto"
	}
	return fmt.Sprintf("Alg(%d)", uint8(a))
}

// Algs lists the algorithms in paper order, followed by the
// table-driven ⟨m,k,n⟩ family in registration order. Command-line
// tools derive their -alg help text from it (via AlgNames), so a newly
// registered table shows up everywhere without touching the tools.
var Algs = append([]Alg{Standard, Standard8, Strassen, Winograd, StrassenLowMem}, tableAlgs...)

// AlgNames returns the accepted algorithm names in Algs order plus
// "auto" — the single source for every CLI's -alg enumeration.
func AlgNames() []string {
	names := make([]string, len(Algs), len(Algs)+1)
	for i, a := range Algs {
		names[i] = a.String()
	}
	return append(names, "auto")
}

// ParseAlg resolves an algorithm name; "auto" selects per-shape
// auto-selection (AlgAuto).
func ParseAlg(s string) (Alg, error) {
	if s == "auto" {
		return AlgAuto, nil
	}
	for _, a := range Algs {
		if s == a.String() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (valid: %s)", s, joinNames())
}

func joinNames() string {
	out := ""
	for i, n := range AlgNames() {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// exec carries the per-call execution parameters through the recursion.
type exec struct {
	kern leaf.Kernel
	// skern, when non-nil, is the same kernel in scratch-aware form; the
	// leaf call then routes its packing buffers through the executing
	// worker's local slot, so steady-state leaves allocate nothing.
	skern leaf.ScratchKernel
	// serialCutoff: at or below this many tiles per side the recursion
	// stops spawning tasks and runs in-frame. 1 disables all spawning.
	serialCutoff int
	// fastCutoff: at or below this many tiles per side the fast
	// algorithms switch to the standard recursion. 1 recurses the fast
	// algorithm all the way to single tiles, as the paper does.
	fastCutoff int
	// ar is the run's pre-reserved scratch arena; nil means every
	// temporary heap-allocates (the probe path, or an over-budget
	// reservation).
	ar *arena
	// ewMin: element-wise passes over at least this many elements are
	// split across the pool (exec.ew2/ew3); 0 disables the splitting.
	ewMin int
	// tr is the tracer captured at driver-call entry (nil when tracing
	// is off) and lane is the call's caller-side trace track; both are
	// used only by the driver-phase spans, never by the recursion.
	tr   *obs.Tracer
	lane int32
}

// ewParMin is the default exec.ewMin: below half a megabyte the
// chunking overhead (closures, task headers, steal traffic) outweighs a
// memory-bound stream's cost.
const ewParMin = 1 << 16

// ewChunks is the fan-out of one parallelized element-wise pass.
func ewChunks(workers, n int) int {
	chunks := workers * 2
	if chunks > n {
		chunks = n
	}
	return chunks
}

// ew2 is matEW2 with pool-parallel chunking: a large pass at a level
// whose parent still spawns (tiles·2 above the serial cutoff) is split
// into ranged chunks executed through c.Parallel, so the top-level
// addition streams — O(n²) work on the critical path — no longer run
// single-threaded per node. Small passes, serial(-degraded) runs, and
// frames not bound to a pool worker take the plain streaming path.
// Chunks honor cancellation through the scheduler's between-task check.
// Accounting stays with the caller (accountAdd), identical to the
// serial form.
func (e *exec) ew2(c *sched.Ctx, dst, a Mat, f func(dst, a []float64)) {
	checkEW(dst, a)
	if !e.par(dst.tiles*2) || e.ewMin <= 0 || dst.elems() < e.ewMin ||
		c.Workers() < 2 || c.WorkerID() < 0 {
		if dst.tiledStore() {
			ew2Tiles(dst, a, resolveTileMap(dst, a), 0, dst.tiles*dst.tiles, f)
		} else {
			ew2Cols(dst, a, 0, dst.cols(), f)
		}
		return
	}
	if dst.tiledStore() {
		m := resolveTileMap(dst, a)
		nt := dst.tiles * dst.tiles
		chunks := ewChunks(c.Workers(), nt)
		fns := make([]func(*sched.Ctx), chunks)
		for i := 0; i < chunks; i++ {
			lo, hi := nt*i/chunks, nt*(i+1)/chunks
			fns[i] = func(*sched.Ctx) { ew2Tiles(dst, a, m, lo, hi, f) }
		}
		c.Parallel(fns...)
		return
	}
	cols := dst.cols()
	chunks := ewChunks(c.Workers(), cols)
	fns := make([]func(*sched.Ctx), chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := cols*i/chunks, cols*(i+1)/chunks
		fns[i] = func(*sched.Ctx) { ew2Cols(dst, a, lo, hi, f) }
	}
	c.Parallel(fns...)
}

// ew3 is the three-operand counterpart of ew2.
func (e *exec) ew3(c *sched.Ctx, dst, a, b Mat, f func(dst, a, b []float64)) {
	checkEW(dst, a, b)
	if !e.par(dst.tiles*2) || e.ewMin <= 0 || dst.elems() < e.ewMin ||
		c.Workers() < 2 || c.WorkerID() < 0 {
		if dst.tiledStore() {
			ew3Tiles(dst, a, b, resolveTileMap(dst, a), resolveTileMap(dst, b),
				0, dst.tiles*dst.tiles, f)
		} else {
			ew3Cols(dst, a, b, 0, dst.cols(), f)
		}
		return
	}
	if dst.tiledStore() {
		ma, mb := resolveTileMap(dst, a), resolveTileMap(dst, b)
		nt := dst.tiles * dst.tiles
		chunks := ewChunks(c.Workers(), nt)
		fns := make([]func(*sched.Ctx), chunks)
		for i := 0; i < chunks; i++ {
			lo, hi := nt*i/chunks, nt*(i+1)/chunks
			fns[i] = func(*sched.Ctx) { ew3Tiles(dst, a, b, ma, mb, lo, hi, f) }
		}
		c.Parallel(fns...)
		return
	}
	cols := dst.cols()
	chunks := ewChunks(c.Workers(), cols)
	fns := make([]func(*sched.Ctx), chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := cols*i/chunks, cols*(i+1)/chunks
		fns[i] = func(*sched.Ctx) { ew3Cols(dst, a, b, lo, hi, f) }
	}
	c.Parallel(fns...)
}

// leafMul runs the leaf kernel on a single tile trio and accounts its
// flops toward the work/span instrumentation. The fault-injection point
// costs one atomic load when injection is off — negligible against the
// 2mnk flops of the kernel.
func (e *exec) leafMul(c *sched.Ctx, C, A, B Mat) {
	faultinject.Point("core.leaf")
	m, n, k := C.tr, C.tc, A.tc
	// The tracepoint costs one atomic load when tracing is off; the
	// span's arg carries the leaf's flop count.
	tr := obs.Cur()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if e.skern != nil {
		e.skern(leaf.ScratchAt(c.WorkerSlot()), m, n, k,
			A.data, A.leafLD(), B.data, B.leafLD(), C.data, C.leafLD())
	} else {
		e.kern(m, n, k, A.data, A.leafLD(), B.data, B.leafLD(), C.data, C.leafLD())
	}
	c.Account(2 * float64(m) * float64(n) * float64(k))
	if tr != nil {
		tr.Span(c.WorkerID(), obs.KindLeaf, t0, time.Since(t0),
			2*int64(m)*int64(n)*int64(k))
	}
}

// accountAdd records the work of one quadrant-sized element-wise pass.
func accountAdd(c *sched.Ctx, m Mat) {
	c.Account(float64(m.elems()))
}

// mul dispatches C += A·B to the requested algorithm.
func (e *exec) mul(c *sched.Ctx, alg Alg, C, A, B Mat) {
	switch alg {
	case Standard:
		e.std(c, C, A, B)
	case Standard8:
		e.std8(c, C, A, B)
	case Strassen:
		e.strassen(c, C, A, B)
	case Winograd:
		e.winograd(c, C, A, B)
	case StrassenLowMem:
		e.strassenLowMem(c, C, A, B)
	default:
		if tb := tableOf(alg); tb != nil {
			e.tableMul(c, tb, C, A, B)
			return
		}
		panic("core: invalid algorithm")
	}
}

// par reports whether this level should spawn parallel tasks.
func (e *exec) par(tiles int) bool {
	return tiles > e.serialCutoff
}

// The recursive algorithms poll c.Cancelled() at every level (one
// atomic load), so a cancelled run abandons its subtree within roughly
// one leaf multiplication — the per-level check is what bounds the
// cancellation latency inside the serial-cutoff region, where the
// scheduler's between-task and spawn-point checks never fire. The
// multi-pass addition stages poll between passes (ewCancelled) for the
// same reason: near the root a single quadrant pass touches O(n²)
// elements, which would otherwise dominate the abort latency.

// ewCancelled is the between-passes poll of the addition stages. The
// partially accumulated state it can leave behind is safe: on a
// cancelled run the driver never unpacks the working copy into the
// caller's C (GEMMCtx), or documents C as corrupt (MulTiled).
func ewCancelled(c *sched.Ctx) bool { return c.Cancelled() }

// std is the accumulate form of the standard algorithm: two rounds of
// four independent quadrant products. Within a round the four products
// write disjoint quadrants of C, so they run in parallel; the rounds are
// separated by a sync because both rounds write every C quadrant.
func (e *exec) std(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)
	if e.par(C.tiles) {
		c.Parallel(
			func(c *sched.Ctx) { e.std(c, c11, a11, b11) },
			func(c *sched.Ctx) { e.std(c, c12, a11, b12) },
			func(c *sched.Ctx) { e.std(c, c21, a21, b11) },
			func(c *sched.Ctx) { e.std(c, c22, a21, b12) },
		)
		c.Parallel(
			func(c *sched.Ctx) { e.std(c, c11, a12, b21) },
			func(c *sched.Ctx) { e.std(c, c12, a12, b22) },
			func(c *sched.Ctx) { e.std(c, c21, a22, b21) },
			func(c *sched.Ctx) { e.std(c, c22, a22, b22) },
		)
		return
	}
	e.std(c, c11, a11, b11)
	e.std(c, c12, a11, b12)
	e.std(c, c21, a21, b11)
	e.std(c, c22, a21, b12)
	e.std(c, c11, a12, b21)
	e.std(c, c12, a12, b22)
	e.std(c, c21, a22, b21)
	e.std(c, c22, a22, b22)
}

// std8 is the Figure 1(a) form: eight products into temporaries P1..P8
// spawned together, then four parallel post-addition pairs. The critical
// path recurrence is T∞(s) = T∞(s/2) + O(adds), which is what gives the
// standard algorithm its O(lg² n) critical path in the paper.
func (e *exec) std8(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if !e.par(C.tiles) {
		// The serial region lives in its own closure-free function:
		// escape analysis would otherwise heap-allocate the temp array
		// of every frame just because the (untaken) parallel branch
		// captures it. par is monotone down the recursion, so the
		// serial variant never needs to spawn.
		e.std8Serial(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)
	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	var p [8]Mat
	for i := range p {
		// Near the root each temp is a quarter of C; poll so a cancel
		// arriving mid-allocation doesn't wait out the whole series.
		if c.Cancelled() {
			return
		}
		p[i] = e.newTemp(c, c11)
	}
	// Arena memory is dirty; each product zeroes its destination
	// inside its own task (a parallel memset for free) before the
	// accumulate recursion.
	c.Parallel(
		func(c *sched.Ctx) { matZero(p[0]); e.std8(c, p[0], a11, b11) },
		func(c *sched.Ctx) { matZero(p[1]); e.std8(c, p[1], a12, b21) },
		func(c *sched.Ctx) { matZero(p[2]); e.std8(c, p[2], a21, b11) },
		func(c *sched.Ctx) { matZero(p[3]); e.std8(c, p[3], a22, b21) },
		func(c *sched.Ctx) { matZero(p[4]); e.std8(c, p[4], a11, b12) },
		func(c *sched.Ctx) { matZero(p[5]); e.std8(c, p[5], a12, b22) },
		func(c *sched.Ctx) { matZero(p[6]); e.std8(c, p[6], a21, b12) },
		func(c *sched.Ctx) { matZero(p[7]); e.std8(c, p[7], a22, b22) },
	)
	c.Parallel(
		func(c *sched.Ctx) {
			e.ew2(c, c11, p[0], vAcc)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c11, p[1], vAcc)
			accountAdd(c, c11)
			accountAdd(c, c11)
		},
		func(c *sched.Ctx) {
			e.ew2(c, c21, p[2], vAcc)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c21, p[3], vAcc)
			accountAdd(c, c21)
			accountAdd(c, c21)
		},
		func(c *sched.Ctx) {
			e.ew2(c, c12, p[4], vAcc)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c12, p[5], vAcc)
			accountAdd(c, c12)
			accountAdd(c, c12)
		},
		func(c *sched.Ctx) {
			e.ew2(c, c22, p[6], vAcc)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c22, p[7], vAcc)
			accountAdd(c, c22)
			accountAdd(c, c22)
		},
	)
}

// std8Serial is std8 below the serial cutoff: straight-line and
// closure-free, so the in-frame recursion allocates nothing at all.
func (e *exec) std8Serial(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)
	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	var p [8]Mat
	for i := range p {
		if c.Cancelled() {
			return
		}
		p[i] = e.newTemp(c, c11)
	}
	matZero(p[0])
	e.std8Serial(c, p[0], a11, b11)
	matZero(p[1])
	e.std8Serial(c, p[1], a12, b21)
	matZero(p[2])
	e.std8Serial(c, p[2], a21, b11)
	matZero(p[3])
	e.std8Serial(c, p[3], a22, b21)
	matZero(p[4])
	e.std8Serial(c, p[4], a11, b12)
	matZero(p[5])
	e.std8Serial(c, p[5], a12, b22)
	matZero(p[6])
	e.std8Serial(c, p[6], a21, b12)
	matZero(p[7])
	e.std8Serial(c, p[7], a22, b22)
	if ewCancelled(c) {
		return
	}
	matEW2(c11, p[0], vAcc)
	matEW2(c11, p[1], vAcc)
	matEW2(c21, p[2], vAcc)
	matEW2(c21, p[3], vAcc)
	if ewCancelled(c) {
		return
	}
	matEW2(c12, p[4], vAcc)
	matEW2(c12, p[5], vAcc)
	matEW2(c22, p[6], vAcc)
	matEW2(c22, p[7], vAcc)
	for i := 0; i < 8; i++ {
		accountAdd(c, c11)
	}
}

// strassen implements Figure 1(b). Note: the classical identities
// require S3 = A11 + A12 with C11 = P1 + P4 − P5 + P7 (the transcription
// of the paper we reproduce from prints S3 with a minus sign, which is
// inconsistent with its own post-additions; the algebra and the tests
// pin the classical form).
func (e *exec) strassen(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if C.tiles <= e.fastCutoff {
		e.std(c, C, A, B)
		return
	}
	if !e.par(C.tiles) {
		// See std8: the serial region lives in a closure-free function so
		// that escape analysis does not heap-allocate the temp descriptors
		// of every frame; par is monotone down the recursion.
		e.strassenSerial(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)

	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	// The S/T pre-addition operands are fully overwritten by their matEW3
	// pass, so dirty arena memory is fine; the P products accumulate and
	// are zeroed just before their recursion.
	s1, s2, s3, s4, s5 := e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11)
	if c.Cancelled() {
		return
	}
	t1, t2, t3, t4, t5 := e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11)
	var p [7]Mat
	for i := range p {
		p[i] = e.newTemp(c, c11)
	}
	if c.Cancelled() {
		return
	}
	c.Parallel(
		func(c *sched.Ctx) { e.ew3(c, s1, a11, a22, vAdd); accountAdd(c, s1) },
		func(c *sched.Ctx) { e.ew3(c, s2, a21, a22, vAdd); accountAdd(c, s2) },
		func(c *sched.Ctx) { e.ew3(c, s3, a11, a12, vAdd); accountAdd(c, s3) },
		func(c *sched.Ctx) { e.ew3(c, s4, a21, a11, vSub); accountAdd(c, s4) },
		func(c *sched.Ctx) { e.ew3(c, s5, a12, a22, vSub); accountAdd(c, s5) },
		func(c *sched.Ctx) { e.ew3(c, t1, b11, b22, vAdd); accountAdd(c, t1) },
		func(c *sched.Ctx) { e.ew3(c, t2, b12, b22, vSub); accountAdd(c, t2) },
		func(c *sched.Ctx) { e.ew3(c, t3, b21, b11, vSub); accountAdd(c, t3) },
		func(c *sched.Ctx) { e.ew3(c, t4, b11, b12, vAdd); accountAdd(c, t4) },
		func(c *sched.Ctx) { e.ew3(c, t5, b21, b22, vAdd); accountAdd(c, t5) },
	)
	c.Parallel(
		func(c *sched.Ctx) { matZero(p[0]); e.strassen(c, p[0], s1, t1) },
		func(c *sched.Ctx) { matZero(p[1]); e.strassen(c, p[1], s2, b11) },
		func(c *sched.Ctx) { matZero(p[2]); e.strassen(c, p[2], a11, t2) },
		func(c *sched.Ctx) { matZero(p[3]); e.strassen(c, p[3], a22, t3) },
		func(c *sched.Ctx) { matZero(p[4]); e.strassen(c, p[4], s3, b22) },
		func(c *sched.Ctx) { matZero(p[5]); e.strassen(c, p[5], s4, t4) },
		func(c *sched.Ctx) { matZero(p[6]); e.strassen(c, p[6], s5, t5) },
	)
	c.Parallel(
		func(c *sched.Ctx) { // C11 += P1 + P4 − P5 + P7
			e.ew2(c, c11, p[0], vAcc)
			accountAdd(c, c11)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c11, p[3], vAcc)
			accountAdd(c, c11)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c11, p[4], vDec)
			accountAdd(c, c11)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c11, p[6], vAcc)
			accountAdd(c, c11)
		},
		func(c *sched.Ctx) { // C21 += P2 + P4
			e.ew2(c, c21, p[1], vAcc)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c21, p[3], vAcc)
			accountAdd(c, c21)
			accountAdd(c, c21)
		},
		func(c *sched.Ctx) { // C12 += P3 + P5
			e.ew2(c, c12, p[2], vAcc)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c12, p[4], vAcc)
			accountAdd(c, c12)
			accountAdd(c, c12)
		},
		func(c *sched.Ctx) { // C22 += P1 + P3 − P2 + P6
			e.ew2(c, c22, p[0], vAcc)
			accountAdd(c, c22)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c22, p[2], vAcc)
			accountAdd(c, c22)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c22, p[1], vDec)
			accountAdd(c, c22)
			if ewCancelled(c) {
				return
			}
			e.ew2(c, c22, p[5], vAcc)
			accountAdd(c, c22)
		},
	)
}

// strassenSerial is the closure-free serial region of strassen:
// straight-line single-stream passes and zero heap allocations below the
// serial cutoff.
func (e *exec) strassenSerial(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if C.tiles <= e.fastCutoff {
		e.std(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)

	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	s1, s2, s3, s4, s5 := e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11)
	if c.Cancelled() {
		return
	}
	t1, t2, t3, t4, t5 := e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11)
	var p [7]Mat
	for i := range p {
		p[i] = e.newTemp(c, c11)
	}
	if c.Cancelled() {
		return
	}
	matEW3(s1, a11, a22, vAdd)
	matEW3(s2, a21, a22, vAdd)
	matEW3(s3, a11, a12, vAdd)
	matEW3(s4, a21, a11, vSub)
	matEW3(s5, a12, a22, vSub)
	if ewCancelled(c) {
		return
	}
	matEW3(t1, b11, b22, vAdd)
	matEW3(t2, b12, b22, vSub)
	matEW3(t3, b21, b11, vSub)
	matEW3(t4, b11, b12, vAdd)
	matEW3(t5, b21, b22, vAdd)
	for i := 0; i < 10; i++ {
		accountAdd(c, s1)
	}
	if c.Cancelled() {
		return
	}
	matZero(p[0])
	e.strassenSerial(c, p[0], s1, t1)
	matZero(p[1])
	e.strassenSerial(c, p[1], s2, b11)
	matZero(p[2])
	e.strassenSerial(c, p[2], a11, t2)
	matZero(p[3])
	e.strassenSerial(c, p[3], a22, t3)
	matZero(p[4])
	e.strassenSerial(c, p[4], s3, b22)
	matZero(p[5])
	e.strassenSerial(c, p[5], s4, t4)
	matZero(p[6])
	e.strassenSerial(c, p[6], s5, t5)
	if ewCancelled(c) {
		return
	}
	matEW2(c11, p[0], vAcc) // C11 += P1 + P4 − P5 + P7
	matEW2(c11, p[3], vAcc)
	matEW2(c11, p[4], vDec)
	matEW2(c11, p[6], vAcc)
	matEW2(c21, p[1], vAcc) // C21 += P2 + P4
	matEW2(c21, p[3], vAcc)
	if ewCancelled(c) {
		return
	}
	matEW2(c12, p[2], vAcc) // C12 += P3 + P5
	matEW2(c12, p[4], vAcc)
	matEW2(c22, p[0], vAcc) // C22 += P1 + P3 − P2 + P6
	matEW2(c22, p[2], vAcc)
	matEW2(c22, p[1], vDec)
	matEW2(c22, p[5], vAcc)
	for i := 0; i < 12; i++ {
		accountAdd(c, c11)
	}
}

// winograd implements Figure 1(c): seven products with common
// subexpressions S2 = S1 − A11, S4 = A12 − S2, T2 = B22 − T1,
// T4 = B21 − T2, and the U-chain of post-additions. The shared chains
// force dependencies among the pre-additions (grouped into four
// independent chains) and among the post-additions.
func (e *exec) winograd(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if C.tiles <= e.fastCutoff {
		e.std(c, C, A, B)
		return
	}
	if !e.par(C.tiles) {
		// See std8: the serial region lives in a closure-free function so
		// that escape analysis does not heap-allocate the temp descriptors
		// of every frame; par is monotone down the recursion.
		e.winogradSerial(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)

	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	s1, s2, s3, s4 := e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11)
	if c.Cancelled() {
		return
	}
	t1, t2, t3, t4 := e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11)
	var p [7]Mat
	for i := range p {
		if c.Cancelled() {
			return
		}
		p[i] = e.newTemp(c, c11)
	}
	c.Parallel(
		func(c *sched.Ctx) { // chain S1 → S2 → S4
			e.ew3(c, s1, a21, a22, vAdd)
			if ewCancelled(c) {
				return
			}
			e.ew3(c, s2, s1, a11, vSub)
			e.ew3(c, s4, a12, s2, vSub)
			for i := 0; i < 3; i++ {
				accountAdd(c, s1)
			}
		},
		func(c *sched.Ctx) { e.ew3(c, s3, a11, a21, vSub); accountAdd(c, s3) },
		func(c *sched.Ctx) { // chain T1 → T2 → T4
			e.ew3(c, t1, b12, b11, vSub)
			if ewCancelled(c) {
				return
			}
			e.ew3(c, t2, b22, t1, vSub)
			e.ew3(c, t4, b21, t2, vSub)
			for i := 0; i < 3; i++ {
				accountAdd(c, t1)
			}
		},
		func(c *sched.Ctx) { e.ew3(c, t3, b22, b12, vSub); accountAdd(c, t3) },
	)
	c.Parallel(
		func(c *sched.Ctx) { matZero(p[0]); e.winograd(c, p[0], a11, b11) },
		func(c *sched.Ctx) { matZero(p[1]); e.winograd(c, p[1], a12, b21) },
		func(c *sched.Ctx) { matZero(p[2]); e.winograd(c, p[2], s1, t1) },
		func(c *sched.Ctx) { matZero(p[3]); e.winograd(c, p[3], s2, t2) },
		func(c *sched.Ctx) { matZero(p[4]); e.winograd(c, p[4], s3, t3) },
		func(c *sched.Ctx) { matZero(p[5]); e.winograd(c, p[5], s4, b22) },
		func(c *sched.Ctx) { matZero(p[6]); e.winograd(c, p[6], a22, t4) },
	)
	// Post-additions (U-chain). U2 and U3 are genuinely shared, so this
	// stage is sequential apart from the independent C11 pair — the
	// worse algorithmic locality the paper attributes to Winograd. The
	// individual passes still spread across the pool through ew2/ew3 when
	// large enough. Near the root each pass touches O(n²) elements, so
	// poll for cancellation between passes. U2 is fully overwritten by
	// its first pass, so dirty arena memory is fine.
	u2 := e.newTemp(c, c11)
	if ewCancelled(c) {
		return
	}
	e.ew3(c, u2, p[0], p[3], vAdd) // U2 = P1 + P4
	accountAdd(c, c11)
	if ewCancelled(c) {
		return
	}
	u6 := p[3]                   // reuse P4's storage
	e.ew3(c, u6, u2, p[2], vAdd) // U6 = U2 + P3
	accountAdd(c, c11)
	if ewCancelled(c) {
		return
	}
	e.ew2(c, u2, p[4], vAcc) // U3 = U2 + P5 (in place)
	accountAdd(c, c11)
	if ewCancelled(c) {
		return
	}
	e.ew2(c, c11, p[0], vAcc) // C11 += P1 + P2
	e.ew2(c, c11, p[1], vAcc)
	accountAdd(c, c11)
	accountAdd(c, c11)
	if ewCancelled(c) {
		return
	}
	e.ew2(c, c21, u2, vAcc) // C21 += U3 + P7
	e.ew2(c, c21, p[6], vAcc)
	accountAdd(c, c11)
	accountAdd(c, c11)
	if ewCancelled(c) {
		return
	}
	e.ew2(c, c22, u2, vAcc) // C22 += U3 + P3
	e.ew2(c, c22, p[2], vAcc)
	accountAdd(c, c11)
	accountAdd(c, c11)
	if ewCancelled(c) {
		return
	}
	e.ew2(c, c12, u6, vAcc) // C12 += U6 + P6
	e.ew2(c, c12, p[5], vAcc)
	accountAdd(c, c11)
	accountAdd(c, c11)
}

// winogradSerial is the closure-free serial region of winograd:
// straight-line single-stream passes and zero heap allocations below the
// serial cutoff.
func (e *exec) winogradSerial(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if C.tiles <= e.fastCutoff {
		e.std(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)

	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	s1, s2, s3, s4 := e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11), e.newTemp(c, a11)
	if c.Cancelled() {
		return
	}
	t1, t2, t3, t4 := e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11), e.newTemp(c, b11)
	var p [7]Mat
	for i := range p {
		p[i] = e.newTemp(c, c11)
	}
	if c.Cancelled() {
		return
	}
	matEW3(s1, a21, a22, vAdd) // chain S1 → S2 → S4
	matEW3(s2, s1, a11, vSub)
	matEW3(s4, a12, s2, vSub)
	matEW3(s3, a11, a21, vSub)
	if ewCancelled(c) {
		return
	}
	matEW3(t1, b12, b11, vSub) // chain T1 → T2 → T4
	matEW3(t2, b22, t1, vSub)
	matEW3(t4, b21, t2, vSub)
	matEW3(t3, b22, b12, vSub)
	for i := 0; i < 8; i++ {
		accountAdd(c, s1)
	}
	if c.Cancelled() {
		return
	}
	matZero(p[0])
	e.winogradSerial(c, p[0], a11, b11)
	matZero(p[1])
	e.winogradSerial(c, p[1], a12, b21)
	matZero(p[2])
	e.winogradSerial(c, p[2], s1, t1)
	matZero(p[3])
	e.winogradSerial(c, p[3], s2, t2)
	matZero(p[4])
	e.winogradSerial(c, p[4], s3, t3)
	matZero(p[5])
	e.winogradSerial(c, p[5], s4, b22)
	matZero(p[6])
	e.winogradSerial(c, p[6], a22, t4)
	if ewCancelled(c) {
		return
	}
	// U-chain, straight line. U2 is fully overwritten by its first pass,
	// so dirty arena memory is fine.
	u2 := e.newTemp(c, c11)
	matEW3(u2, p[0], p[3], vAdd) // U2 = P1 + P4
	u6 := p[3]                   // reuse P4's storage
	matEW3(u6, u2, p[2], vAdd)   // U6 = U2 + P3
	matEW2(u2, p[4], vAcc)       // U3 = U2 + P5 (in place)
	if ewCancelled(c) {
		return
	}
	matEW2(c11, p[0], vAcc) // C11 += P1 + P2
	matEW2(c11, p[1], vAcc)
	matEW2(c21, u2, vAcc) // C21 += U3 + P7
	matEW2(c21, p[6], vAcc)
	if ewCancelled(c) {
		return
	}
	matEW2(c22, u2, vAcc) // C22 += U3 + P3
	matEW2(c22, p[2], vAcc)
	matEW2(c12, u6, vAcc) // C12 += U6 + P6
	matEW2(c12, p[5], vAcc)
	for i := 0; i < 11; i++ {
		accountAdd(c, c11)
	}
}
