package core

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/leaf"
	"repro/internal/sched"
)

// Alg identifies one of the recursive multiplication algorithms of
// Section 2 of the paper.
type Alg uint8

const (
	// Standard is the O(n³) algorithm in its accumulate form: two
	// rounds of four independent quadrant products per level, with no
	// temporary storage. Leaf products read and write the original
	// (converted) matrices — the property Section 5.1 uses to explain
	// its memory behavior.
	Standard Alg = iota
	// Standard8 is the O(n³) algorithm exactly as written in
	// Figure 1(a): all eight quadrant products spawned at once into
	// quadrant-sized temporaries P1..P8, followed by post-additions.
	// It trades temporary storage for a shorter critical path.
	Standard8
	// Strassen is Strassen's algorithm (Figure 1(b)): 7 recursive
	// products, 18 additions/subtractions.
	Strassen
	// Winograd is Winograd's variant (Figure 1(c)): 7 recursive
	// products, 15 additions/subtractions — the minimum possible for
	// quadrant-based recursion — at the cost of common-subexpression
	// chains with worse algorithmic locality.
	Winograd
	// StrassenLowMem is the space-conserving sequential Strassen variant
	// Section 5 mentions: pre- and post-additions interspersed with the
	// recursive calls, reusing three scratch quadrants per level. It
	// exposes no parallelism.
	StrassenLowMem
	numAlgs
)

var algNames = [numAlgs]string{"standard", "standard8", "strassen", "winograd", "strassen-lowmem"}

func (a Alg) String() string {
	if int(a) < len(algNames) {
		return algNames[a]
	}
	return fmt.Sprintf("Alg(%d)", uint8(a))
}

// Algs lists the algorithms in paper order.
var Algs = []Alg{Standard, Standard8, Strassen, Winograd, StrassenLowMem}

// ParseAlg resolves an algorithm name.
func ParseAlg(s string) (Alg, error) {
	for i, n := range algNames {
		if s == n {
			return Alg(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// exec carries the per-call execution parameters through the recursion.
type exec struct {
	kern leaf.Kernel
	// skern, when non-nil, is the same kernel in scratch-aware form; the
	// leaf call then routes its packing buffers through the executing
	// worker's local slot, so steady-state leaves allocate nothing.
	skern leaf.ScratchKernel
	// serialCutoff: at or below this many tiles per side the recursion
	// stops spawning tasks and runs in-frame. 1 disables all spawning.
	serialCutoff int
	// fastCutoff: at or below this many tiles per side the fast
	// algorithms switch to the standard recursion. 1 recurses the fast
	// algorithm all the way to single tiles, as the paper does.
	fastCutoff int
}

// leafMul runs the leaf kernel on a single tile trio and accounts its
// flops toward the work/span instrumentation. The fault-injection point
// costs one atomic load when injection is off — negligible against the
// 2mnk flops of the kernel.
func (e *exec) leafMul(c *sched.Ctx, C, A, B Mat) {
	faultinject.Point("core.leaf")
	m, n, k := C.tr, C.tc, A.tc
	if e.skern != nil {
		e.skern(leaf.ScratchAt(c.WorkerSlot()), m, n, k,
			A.data, A.leafLD(), B.data, B.leafLD(), C.data, C.leafLD())
	} else {
		e.kern(m, n, k, A.data, A.leafLD(), B.data, B.leafLD(), C.data, C.leafLD())
	}
	c.Account(2 * float64(m) * float64(n) * float64(k))
}

// accountAdd records the work of one quadrant-sized element-wise pass.
func accountAdd(c *sched.Ctx, m Mat) {
	c.Account(float64(m.elems()))
}

// mul dispatches C += A·B to the requested algorithm.
func (e *exec) mul(c *sched.Ctx, alg Alg, C, A, B Mat) {
	switch alg {
	case Standard:
		e.std(c, C, A, B)
	case Standard8:
		e.std8(c, C, A, B)
	case Strassen:
		e.strassen(c, C, A, B)
	case Winograd:
		e.winograd(c, C, A, B)
	case StrassenLowMem:
		e.strassenLowMem(c, C, A, B)
	default:
		panic("core: invalid algorithm")
	}
}

// par reports whether this level should spawn parallel tasks.
func (e *exec) par(tiles int) bool {
	return tiles > e.serialCutoff
}

// The recursive algorithms poll c.Cancelled() at every level (one
// atomic load), so a cancelled run abandons its subtree within roughly
// one leaf multiplication — the per-level check is what bounds the
// cancellation latency inside the serial-cutoff region, where the
// scheduler's between-task and spawn-point checks never fire. The
// multi-pass addition stages poll between passes (ewCancelled) for the
// same reason: near the root a single quadrant pass touches O(n²)
// elements, which would otherwise dominate the abort latency.

// ewCancelled is the between-passes poll of the addition stages. The
// partially accumulated state it can leave behind is safe: on a
// cancelled run the driver never unpacks the working copy into the
// caller's C (GEMMCtx), or documents C as corrupt (MulTiled).
func ewCancelled(c *sched.Ctx) bool { return c.Cancelled() }

// std is the accumulate form of the standard algorithm: two rounds of
// four independent quadrant products. Within a round the four products
// write disjoint quadrants of C, so they run in parallel; the rounds are
// separated by a sync because both rounds write every C quadrant.
func (e *exec) std(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)
	if e.par(C.tiles) {
		c.Parallel(
			func(c *sched.Ctx) { e.std(c, c11, a11, b11) },
			func(c *sched.Ctx) { e.std(c, c12, a11, b12) },
			func(c *sched.Ctx) { e.std(c, c21, a21, b11) },
			func(c *sched.Ctx) { e.std(c, c22, a21, b12) },
		)
		c.Parallel(
			func(c *sched.Ctx) { e.std(c, c11, a12, b21) },
			func(c *sched.Ctx) { e.std(c, c12, a12, b22) },
			func(c *sched.Ctx) { e.std(c, c21, a22, b21) },
			func(c *sched.Ctx) { e.std(c, c22, a22, b22) },
		)
		return
	}
	e.std(c, c11, a11, b11)
	e.std(c, c12, a11, b12)
	e.std(c, c21, a21, b11)
	e.std(c, c22, a21, b12)
	e.std(c, c11, a12, b21)
	e.std(c, c12, a12, b22)
	e.std(c, c21, a22, b21)
	e.std(c, c22, a22, b22)
}

// std8 is the Figure 1(a) form: eight products into temporaries P1..P8
// spawned together, then four parallel post-addition pairs. The critical
// path recurrence is T∞(s) = T∞(s/2) + O(adds), which is what gives the
// standard algorithm its O(lg² n) critical path in the paper.
func (e *exec) std8(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)
	var p [8]Mat
	for i := range p {
		// Near the root each temp is a quarter of C; poll so a cancel
		// arriving mid-allocation doesn't wait out the whole series.
		if c.Cancelled() {
			return
		}
		p[i] = newTemp(c11)
	}
	mults := []func(*sched.Ctx){
		func(c *sched.Ctx) { e.std8(c, p[0], a11, b11) },
		func(c *sched.Ctx) { e.std8(c, p[1], a12, b21) },
		func(c *sched.Ctx) { e.std8(c, p[2], a21, b11) },
		func(c *sched.Ctx) { e.std8(c, p[3], a22, b21) },
		func(c *sched.Ctx) { e.std8(c, p[4], a11, b12) },
		func(c *sched.Ctx) { e.std8(c, p[5], a12, b22) },
		func(c *sched.Ctx) { e.std8(c, p[6], a21, b12) },
		func(c *sched.Ctx) { e.std8(c, p[7], a22, b22) },
	}
	post := []func(*sched.Ctx){
		func(c *sched.Ctx) {
			matEW2(c11, p[0], vAcc)
			if ewCancelled(c) {
				return
			}
			matEW2(c11, p[1], vAcc)
			accountAdd(c, c11)
			accountAdd(c, c11)
		},
		func(c *sched.Ctx) {
			matEW2(c21, p[2], vAcc)
			if ewCancelled(c) {
				return
			}
			matEW2(c21, p[3], vAcc)
			accountAdd(c, c21)
			accountAdd(c, c21)
		},
		func(c *sched.Ctx) {
			matEW2(c12, p[4], vAcc)
			if ewCancelled(c) {
				return
			}
			matEW2(c12, p[5], vAcc)
			accountAdd(c, c12)
			accountAdd(c, c12)
		},
		func(c *sched.Ctx) {
			matEW2(c22, p[6], vAcc)
			if ewCancelled(c) {
				return
			}
			matEW2(c22, p[7], vAcc)
			accountAdd(c, c22)
			accountAdd(c, c22)
		},
	}
	if e.par(C.tiles) {
		c.Parallel(mults...)
		c.Parallel(post...)
		return
	}
	for _, f := range mults {
		f(c)
	}
	for _, f := range post {
		f(c)
	}
}

// strassen implements Figure 1(b). Note: the classical identities
// require S3 = A11 + A12 with C11 = P1 + P4 − P5 + P7 (the transcription
// of the paper we reproduce from prints S3 with a minus sign, which is
// inconsistent with its own post-additions; the algebra and the tests
// pin the classical form).
func (e *exec) strassen(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if C.tiles <= e.fastCutoff {
		e.std(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)

	s1, s2, s3, s4, s5 := newTemp(a11), newTemp(a11), newTemp(a11), newTemp(a11), newTemp(a11)
	if c.Cancelled() {
		return
	}
	t1, t2, t3, t4, t5 := newTemp(b11), newTemp(b11), newTemp(b11), newTemp(b11), newTemp(b11)
	pre := []func(*sched.Ctx){
		func(c *sched.Ctx) { matEW3(s1, a11, a22, vAdd); accountAdd(c, s1) },
		func(c *sched.Ctx) { matEW3(s2, a21, a22, vAdd); accountAdd(c, s2) },
		func(c *sched.Ctx) { matEW3(s3, a11, a12, vAdd); accountAdd(c, s3) },
		func(c *sched.Ctx) { matEW3(s4, a21, a11, vSub); accountAdd(c, s4) },
		func(c *sched.Ctx) { matEW3(s5, a12, a22, vSub); accountAdd(c, s5) },
		func(c *sched.Ctx) { matEW3(t1, b11, b22, vAdd); accountAdd(c, t1) },
		func(c *sched.Ctx) { matEW3(t2, b12, b22, vSub); accountAdd(c, t2) },
		func(c *sched.Ctx) { matEW3(t3, b21, b11, vSub); accountAdd(c, t3) },
		func(c *sched.Ctx) { matEW3(t4, b11, b12, vAdd); accountAdd(c, t4) },
		func(c *sched.Ctx) { matEW3(t5, b21, b22, vAdd); accountAdd(c, t5) },
	}
	var p [7]Mat
	for i := range p {
		p[i] = newTemp(c11)
	}
	if c.Cancelled() {
		return
	}
	mults := []func(*sched.Ctx){
		func(c *sched.Ctx) { e.strassen(c, p[0], s1, t1) },
		func(c *sched.Ctx) { e.strassen(c, p[1], s2, b11) },
		func(c *sched.Ctx) { e.strassen(c, p[2], a11, t2) },
		func(c *sched.Ctx) { e.strassen(c, p[3], a22, t3) },
		func(c *sched.Ctx) { e.strassen(c, p[4], s3, b22) },
		func(c *sched.Ctx) { e.strassen(c, p[5], s4, t4) },
		func(c *sched.Ctx) { e.strassen(c, p[6], s5, t5) },
	}
	post := []func(*sched.Ctx){
		func(c *sched.Ctx) { // C11 += P1 + P4 − P5 + P7
			for i, step := range []func(){
				func() { matEW2(c11, p[0], vAcc) },
				func() { matEW2(c11, p[3], vAcc) },
				func() { matEW2(c11, p[4], vDec) },
				func() { matEW2(c11, p[6], vAcc) },
			} {
				if i > 0 && ewCancelled(c) {
					return
				}
				step()
				accountAdd(c, c11)
			}
		},
		func(c *sched.Ctx) { // C21 += P2 + P4
			matEW2(c21, p[1], vAcc)
			if ewCancelled(c) {
				return
			}
			matEW2(c21, p[3], vAcc)
			accountAdd(c, c21)
			accountAdd(c, c21)
		},
		func(c *sched.Ctx) { // C12 += P3 + P5
			matEW2(c12, p[2], vAcc)
			if ewCancelled(c) {
				return
			}
			matEW2(c12, p[4], vAcc)
			accountAdd(c, c12)
			accountAdd(c, c12)
		},
		func(c *sched.Ctx) { // C22 += P1 + P3 − P2 + P6
			for i, step := range []func(){
				func() { matEW2(c22, p[0], vAcc) },
				func() { matEW2(c22, p[2], vAcc) },
				func() { matEW2(c22, p[1], vDec) },
				func() { matEW2(c22, p[5], vAcc) },
			} {
				if i > 0 && ewCancelled(c) {
					return
				}
				step()
				accountAdd(c, c22)
			}
		},
	}
	if e.par(C.tiles) {
		c.Parallel(pre...)
		c.Parallel(mults...)
		c.Parallel(post...)
		return
	}
	for _, f := range pre {
		f(c)
	}
	for _, f := range mults {
		f(c)
	}
	for _, f := range post {
		f(c)
	}
}

// winograd implements Figure 1(c): seven products with common
// subexpressions S2 = S1 − A11, S4 = A12 − S2, T2 = B22 − T1,
// T4 = B21 − T2, and the U-chain of post-additions. The shared chains
// force dependencies among the pre-additions (grouped into four
// independent chains) and among the post-additions.
func (e *exec) winograd(c *sched.Ctx, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	if C.tiles == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if C.tiles <= e.fastCutoff {
		e.std(c, C, A, B)
		return
	}
	c11, c12, c21, c22 := C.quad(layout.QuadNW), C.quad(layout.QuadNE), C.quad(layout.QuadSW), C.quad(layout.QuadSE)
	a11, a12, a21, a22 := A.quad(layout.QuadNW), A.quad(layout.QuadNE), A.quad(layout.QuadSW), A.quad(layout.QuadSE)
	b11, b12, b21, b22 := B.quad(layout.QuadNW), B.quad(layout.QuadNE), B.quad(layout.QuadSW), B.quad(layout.QuadSE)

	s1, s2, s3, s4 := newTemp(a11), newTemp(a11), newTemp(a11), newTemp(a11)
	if c.Cancelled() {
		return
	}
	t1, t2, t3, t4 := newTemp(b11), newTemp(b11), newTemp(b11), newTemp(b11)
	pre := []func(*sched.Ctx){
		func(c *sched.Ctx) { // chain S1 → S2 → S4
			matEW3(s1, a21, a22, vAdd)
			if ewCancelled(c) {
				return
			}
			matEW3(s2, s1, a11, vSub)
			matEW3(s4, a12, s2, vSub)
			for i := 0; i < 3; i++ {
				accountAdd(c, s1)
			}
		},
		func(c *sched.Ctx) { matEW3(s3, a11, a21, vSub); accountAdd(c, s3) },
		func(c *sched.Ctx) { // chain T1 → T2 → T4
			matEW3(t1, b12, b11, vSub)
			if ewCancelled(c) {
				return
			}
			matEW3(t2, b22, t1, vSub)
			matEW3(t4, b21, t2, vSub)
			for i := 0; i < 3; i++ {
				accountAdd(c, t1)
			}
		},
		func(c *sched.Ctx) { matEW3(t3, b22, b12, vSub); accountAdd(c, t3) },
	}
	var p [7]Mat
	for i := range p {
		if c.Cancelled() {
			return
		}
		p[i] = newTemp(c11)
	}
	mults := []func(*sched.Ctx){
		func(c *sched.Ctx) { e.winograd(c, p[0], a11, b11) },
		func(c *sched.Ctx) { e.winograd(c, p[1], a12, b21) },
		func(c *sched.Ctx) { e.winograd(c, p[2], s1, t1) },
		func(c *sched.Ctx) { e.winograd(c, p[3], s2, t2) },
		func(c *sched.Ctx) { e.winograd(c, p[4], s3, t3) },
		func(c *sched.Ctx) { e.winograd(c, p[5], s4, b22) },
		func(c *sched.Ctx) { e.winograd(c, p[6], a22, t4) },
	}
	if e.par(C.tiles) {
		c.Parallel(pre...)
		c.Parallel(mults...)
	} else {
		for _, f := range pre {
			f(c)
		}
		for _, f := range mults {
			f(c)
		}
	}
	// Post-additions (U-chain). U2 and U3 are genuinely shared, so this
	// stage is sequential apart from the independent C11 pair — the
	// worse algorithmic locality the paper attributes to Winograd. Near
	// the root each pass touches O(n²) elements, so poll for
	// cancellation between passes.
	u2 := newTemp(c11)
	var u6 Mat
	for i, step := range []func(){
		func() { matEW3(u2, p[0], p[3], vAdd) }, // U2 = P1 + P4
		func() {
			u6 = p[3]                  // reuse P4's storage
			matEW3(u6, u2, p[2], vAdd) // U6 = U2 + P3
		},
		func() { matEW2(u2, p[4], vAcc) },  // U3 = U2 + P5 (in place)
		func() { matEW2(c11, p[0], vAcc) }, // C11 += P1 + P2
		func() { matEW2(c11, p[1], vAcc) },
		func() { matEW2(c21, u2, vAcc) }, // C21 += U3 + P7
		func() { matEW2(c21, p[6], vAcc) },
		func() { matEW2(c22, u2, vAcc) }, // C22 += U3 + P3
		func() { matEW2(c22, p[2], vAcc) },
		func() { matEW2(c12, u6, vAcc) }, // C12 += U6 + P6
		func() { matEW2(c12, p[5], vAcc) },
	} {
		if i > 0 && ewCancelled(c) {
			return
		}
		step()
		accountAdd(c, c11)
	}
}
