package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sched"
)

// tileCoordCache memoizes the inverse curve walk SInverse(s, d) for
// every tile of a (curve, depth) grid: Pack and Unpack previously
// re-evaluated the bit-interleaving per tile inside their chunk loops,
// three times per GEMM call (A, B, C operand packs) plus once per
// unpack. The table is computed once per (curve, depth) for the life of
// the process and shared lock-free; each entry packs (ti, tj) as
// ti<<16 | tj (tile coordinates fit 16 bits for any depth ≤ 16).
// Depths beyond maxCoordDepth (a 1024×1024 tile grid, beyond any
// realistic tiling choice) fall back to the direct per-tile walk.
const maxCoordDepth = 10

var tileCoordCache [8][maxCoordDepth + 1]atomic.Pointer[[]uint32]

// tileCoords returns the memoized coordinate table for a (curve, depth)
// grid, or nil when the grid is out of cache range.
func tileCoords(cv layout.Curve, d uint) []uint32 {
	if int(cv) >= len(tileCoordCache) || d > maxCoordDepth {
		return nil
	}
	slot := &tileCoordCache[cv][d]
	if p := slot.Load(); p != nil {
		return *p
	}
	side := 1 << d
	t := make([]uint32, side*side)
	for s := range t {
		ti, tj := cv.SInverse(uint64(s), d)
		t[s] = ti<<16 | tj
	}
	if slot.CompareAndSwap(nil, &t) {
		return t
	}
	return *slot.Load()
}

// Tiled is a matrix stored in a recursive layout: a 2^D × 2^D grid of
// TR × TC column-major tiles, tiles ordered along Curve (equation (3) of
// the paper). Rows and Cols are the logical (pre-padding) extents; the
// remaining elements are explicit zero padding on which the arithmetic
// runs blindly, as Section 4 prescribes.
type Tiled struct {
	Curve      layout.Curve
	D          uint
	TR, TC     int
	Rows, Cols int
	Data       []float64
}

// NewTiled allocates a zeroed tiled matrix covering rows × cols.
func NewTiled(curve layout.Curve, d uint, tr, tc, rows, cols int) *Tiled {
	side := 1 << d
	if tr*side < rows || tc*side < cols {
		panic(fmt.Sprintf("core: tiled %d×(%dx%d) cannot cover %dx%d", side, tr, tc, rows, cols))
	}
	return &Tiled{
		Curve: curve, D: d, TR: tr, TC: tc, Rows: rows, Cols: cols,
		Data: make([]float64, side*side*tr*tc),
	}
}

// PaddedRows and PaddedCols return the padded extents.
func (t *Tiled) PaddedRows() int { return t.TR << t.D }
func (t *Tiled) PaddedCols() int { return t.TC << t.D }

// Mat returns the whole-matrix quadrant descriptor in the reference
// orientation.
func (t *Tiled) Mat() Mat {
	return Mat{
		data:  t.Data,
		tiles: 1 << t.D,
		tr:    t.TR,
		tc:    t.TC,
		curve: t.Curve,
	}
}

// At returns logical element (i, j), evaluating the layout function of
// equation (3): tile coordinates through the curve's S function, tile
// offset through the canonical column-major layout. It is intended for
// tests and spot checks, not hot paths — the recursion never calls it.
func (t *Tiled) At(i, j int) float64 {
	s := t.Curve.S(uint32(i/t.TR), uint32(j/t.TC), t.D)
	return t.Data[int(s)*t.TR*t.TC+(j%t.TC)*t.TR+(i%t.TR)]
}

// parallelRanges splits [0, n) into roughly equal chunks for pool-wide
// data-parallel loops.
func parallelRanges(n, chunks int) [][2]int {
	if chunks < 1 {
		chunks = 1
	}
	if chunks > n {
		chunks = n
	}
	rs := make([][2]int, 0, chunks)
	for c := 0; c < chunks; c++ {
		lo := n * c / chunks
		hi := n * (c + 1) / chunks
		if lo < hi {
			rs = append(rs, [2]int{lo, hi})
		}
	}
	return rs
}

// runChunks executes f over the ranges in parallel on the pool,
// honoring ctx: a cancelled context stops chunks that have not started
// (each chunk is one task, so cancellation latency is bounded by one
// chunk) and surfaces the context error. Panics inside f on the pool
// are returned as a *sched.TaskError; the single-chunk fast path runs
// on the caller's goroutine, where a panic propagates raw to the
// public-API recover boundary.
//
// kind labels each chunk's span on its worker's trace track when a
// tracer is active. The single-chunk fast path emits nothing — it runs
// on the caller's goroutine, which has no worker track.
func runChunks(ctx context.Context, pool *sched.Pool, n int, kind obs.Kind, f func(lo, hi int)) error {
	// The single-chunk fast path never touches the pool, so check the
	// closed and cancelled states explicitly to keep the error contract
	// uniform across problem sizes.
	if pool.Closed() {
		return sched.ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: not started: %w", context.Cause(ctx))
	}
	// At least 32 chunks regardless of worker count: each chunk is one
	// task and tasks are the cancellation granularity, so small chunks
	// bound the abort latency even on a single worker.
	chunks := pool.Workers() * 4
	if chunks < 32 {
		chunks = 32
	}
	rs := parallelRanges(n, chunks)
	if len(rs) == 1 {
		f(rs[0][0], rs[0][1])
		return nil
	}
	fns := make([]func(*sched.Ctx), len(rs))
	for i, r := range rs {
		r := r
		fns[i] = func(c *sched.Ctx) {
			tr := obs.Cur()
			if tr == nil {
				f(r[0], r[1])
				return
			}
			t0 := time.Now()
			f(r[0], r[1])
			tr.Span(c.WorkerID(), kind, t0, time.Since(t0), int64(r[1]-r[0]))
		}
	}
	_, _, err := pool.RunCtx(ctx, func(c *sched.Ctx) { c.Parallel(fns...) })
	return err
}

// Pack converts op(src), scaled by alpha, from column-major into the
// tiled layout, inserting explicit zero padding. The remapping works
// tile-by-tile and is parallelized over tiles across the pool, as
// Section 4 describes ("the remapping of the individual tiles is again
// amenable to parallel execution"). Any required transposition is folded
// into this step, so the multiplication core needs no transposed
// variants.
func (t *Tiled) Pack(ctx context.Context, pool *sched.Pool, src *matrix.Dense, trans bool, alpha float64) error {
	srows, scols := src.Rows, src.Cols
	if trans {
		srows, scols = scols, srows
	}
	if srows != t.Rows || scols != t.Cols {
		return fmt.Errorf("core: pack %dx%d into tiled %dx%d", srows, scols, t.Rows, t.Cols)
	}
	side := 1 << t.D
	coords := tileCoords(t.Curve, t.D)
	return runChunks(ctx, pool, side*side, obs.KindPack, func(lo, hi int) {
		t.packTiles(src, trans, alpha, coords, lo, hi)
	})
}

// packTiles packs tiles [lo, hi) of the curve walk — the serial body
// Pack parallelizes over the pool. It is also the conversion primitive
// of the batched wave driver, whose item tasks already execute on pool
// workers and therefore must not re-enter pool.RunCtx.
func (t *Tiled) packTiles(src *matrix.Dense, trans bool, alpha float64, coords []uint32, lo, hi int) {
	ts := t.TR * t.TC
	for s := lo; s < hi; s++ {
		var ti, tj uint32
		if coords != nil {
			pc := coords[s]
			ti, tj = pc>>16, pc&0xffff
		} else {
			ti, tj = t.Curve.SInverse(uint64(s), t.D)
		}
		base := s * ts
		i0, j0 := int(ti)*t.TR, int(tj)*t.TC
		for jj := 0; jj < t.TC; jj++ {
			dcol := t.Data[base+jj*t.TR : base+jj*t.TR+t.TR]
			gj := j0 + jj
			if gj >= t.Cols {
				vZero(dcol)
				continue
			}
			vr := t.Rows - i0
			if vr > t.TR {
				vr = t.TR
			}
			if vr <= 0 {
				vZero(dcol)
				continue
			}
			switch {
			case trans:
				// Logical (i, gj) = src(gj, i): strided row read.
				for ii := 0; ii < vr; ii++ {
					dcol[ii] = alpha * src.Data[(i0+ii)*src.Stride+gj]
				}
			case alpha == 1:
				// The fused C epilogue packs operands unscaled, so
				// the common case is a straight copy.
				copy(dcol[:vr], src.Data[gj*src.Stride+i0:gj*src.Stride+i0+vr])
			default:
				scol := src.Data[gj*src.Stride+i0:]
				for ii := 0; ii < vr; ii++ {
					dcol[ii] = alpha * scol[ii]
				}
			}
			for ii := vr; ii < t.TR; ii++ {
				dcol[ii] = 0
			}
		}
	}
}

// packSerial is Pack run entirely on the calling goroutine — same
// validation, same per-element arithmetic, no pool involvement. The
// per-tile loop body is shared with Pack (packTiles), so the two forms
// are bit-exact by construction.
func (t *Tiled) packSerial(src *matrix.Dense, trans bool, alpha float64) error {
	srows, scols := src.Rows, src.Cols
	if trans {
		srows, scols = scols, srows
	}
	if srows != t.Rows || scols != t.Cols {
		return fmt.Errorf("core: pack %dx%d into tiled %dx%d", srows, scols, t.Rows, t.Cols)
	}
	side := 1 << t.D
	t.packTiles(src, trans, alpha, tileCoords(t.Curve, t.D), 0, side*side)
	return nil
}

// Unpack copies the logical region back out to a column-major matrix,
// discarding padding. Parallelized over tiles like Pack.
func (t *Tiled) Unpack(ctx context.Context, pool *sched.Pool, dst *matrix.Dense) error {
	if dst.Rows != t.Rows || dst.Cols != t.Cols {
		return fmt.Errorf("core: unpack tiled %dx%d into %dx%d", t.Rows, t.Cols, dst.Rows, dst.Cols)
	}
	side := 1 << t.D
	ts := t.TR * t.TC
	coords := tileCoords(t.Curve, t.D)
	return runChunks(ctx, pool, side*side, obs.KindUnpack, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			var ti, tj uint32
			if coords != nil {
				pc := coords[s]
				ti, tj = pc>>16, pc&0xffff
			} else {
				ti, tj = t.Curve.SInverse(uint64(s), t.D)
			}
			base := s * ts
			i0, j0 := int(ti)*t.TR, int(tj)*t.TC
			if i0 >= t.Rows || j0 >= t.Cols {
				continue
			}
			vr := t.Rows - i0
			if vr > t.TR {
				vr = t.TR
			}
			vc := t.Cols - j0
			if vc > t.TC {
				vc = t.TC
			}
			for jj := 0; jj < vc; jj++ {
				copy(dst.Data[(j0+jj)*dst.Stride+i0:(j0+jj)*dst.Stride+i0+vr],
					t.Data[base+jj*t.TR:base+jj*t.TR+vr])
			}
		}
	})
}

// UnpackAccumulate folds the C epilogue of a block multiplication into
// the conversion walk: dst += alpha · (logical region of t), discarding
// padding. With the product accumulated into a zero-filled tiled buffer,
// this replaces the old pack-C / compute / unpack-C round-trip — C is
// read and written exactly once, alpha is applied for free during the
// stream, and dst stays untouched (β-scaled) until the block's compute
// has fully succeeded. Parallelized over tiles like Unpack.
func (t *Tiled) UnpackAccumulate(ctx context.Context, pool *sched.Pool, dst *matrix.Dense, alpha float64) error {
	if dst.Rows != t.Rows || dst.Cols != t.Cols {
		return fmt.Errorf("core: unpack tiled %dx%d into %dx%d", t.Rows, t.Cols, dst.Rows, dst.Cols)
	}
	side := 1 << t.D
	coords := tileCoords(t.Curve, t.D)
	return runChunks(ctx, pool, side*side, obs.KindUnpack, func(lo, hi int) {
		t.unpackAccumulateTiles(dst, alpha, coords, lo, hi)
	})
}

// unpackAccumulateTiles accumulates tiles [lo, hi) of the curve walk
// into dst — the serial body UnpackAccumulate parallelizes over the
// pool, shared with the batched wave driver (see packTiles).
func (t *Tiled) unpackAccumulateTiles(dst *matrix.Dense, alpha float64, coords []uint32, lo, hi int) {
	ts := t.TR * t.TC
	for s := lo; s < hi; s++ {
		var ti, tj uint32
		if coords != nil {
			pc := coords[s]
			ti, tj = pc>>16, pc&0xffff
		} else {
			ti, tj = t.Curve.SInverse(uint64(s), t.D)
		}
		base := s * ts
		i0, j0 := int(ti)*t.TR, int(tj)*t.TC
		if i0 >= t.Rows || j0 >= t.Cols {
			continue
		}
		vr := t.Rows - i0
		if vr > t.TR {
			vr = t.TR
		}
		vc := t.Cols - j0
		if vc > t.TC {
			vc = t.TC
		}
		for jj := 0; jj < vc; jj++ {
			dcol := dst.Data[(j0+jj)*dst.Stride+i0 : (j0+jj)*dst.Stride+i0+vr]
			scol := t.Data[base+jj*t.TR : base+jj*t.TR+vr]
			if alpha == 1 {
				for ii := range dcol {
					dcol[ii] += scol[ii]
				}
			} else {
				for ii := range dcol {
					dcol[ii] += alpha * scol[ii]
				}
			}
		}
	}
}

// unpackAccumulateSerial is UnpackAccumulate on the calling goroutine —
// the epilogue primitive of the batched wave driver (see packSerial).
func (t *Tiled) unpackAccumulateSerial(dst *matrix.Dense, alpha float64) error {
	if dst.Rows != t.Rows || dst.Cols != t.Cols {
		return fmt.Errorf("core: unpack tiled %dx%d into %dx%d", t.Rows, t.Cols, dst.Rows, dst.Cols)
	}
	side := 1 << t.D
	t.unpackAccumulateTiles(dst, alpha, tileCoords(t.Curve, t.D), 0, side*side)
	return nil
}

// PackTransposeOf fills t with the transpose of an already-packed tiled
// matrix, entirely within the recursive layout: destination tile (i, j)
// is the element-wise transpose of source tile (j, i), located through
// the curve's forward S function. This is how one packed operand serves
// both slots of a symmetric product (SYRK's α·A·Aᵀ): the second pack
// never re-reads the strided column-major source. Both matrices must
// share curve, depth, and mirrored tile shapes (t is TC×TR tiles where
// src is TR×TC).
func (t *Tiled) PackTransposeOf(ctx context.Context, pool *sched.Pool, src *Tiled) error {
	if t.Curve != src.Curve || t.D != src.D {
		return fmt.Errorf("core: transpose pack across grids (curve %v/%v, depth %d/%d)",
			t.Curve, src.Curve, t.D, src.D)
	}
	if t.TR != src.TC || t.TC != src.TR || t.Rows != src.Cols || t.Cols != src.Rows {
		return fmt.Errorf("core: transpose pack %dx%d (%dx%d tiles) from %dx%d (%dx%d tiles)",
			t.Rows, t.Cols, t.TR, t.TC, src.Rows, src.Cols, src.TR, src.TC)
	}
	side := 1 << t.D
	dts, sts := t.TR*t.TC, src.TR*src.TC
	coords := tileCoords(t.Curve, t.D)
	return runChunks(ctx, pool, side*side, obs.KindPack, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			var ti, tj uint32
			if coords != nil {
				pc := coords[s]
				ti, tj = pc>>16, pc&0xffff
			} else {
				ti, tj = t.Curve.SInverse(uint64(s), t.D)
			}
			dst := t.Data[s*dts : s*dts+dts]
			sbase := int(t.Curve.S(tj, ti, t.D)) * sts
			// dst tile is TR×TC column-major; its (r, c) element is the
			// source tile's (c, r) element, src leading dimension src.TR.
			for c := 0; c < t.TC; c++ {
				scol := src.Data[sbase+c : sbase+sts]
				for r := 0; r < t.TR; r++ {
					dst[c*t.TR+r] = scol[r*src.TR]
				}
			}
		}
	})
}

// zeroFill clears a contiguous buffer in parallel across the pool — the
// "zero" half of the fused epilogue's zero+accumulate C discipline, and
// the scrub for dirty recycled buffers.
func zeroFill(ctx context.Context, pool *sched.Pool, data []float64) error {
	return runChunks(ctx, pool, len(data), obs.KindZero, func(lo, hi int) {
		vZero(data[lo:hi])
	})
}

// scaleCols scales dst's columns by alpha in parallel across the pool —
// the β·C pass of GEMM, previously a serial full-matrix walk on the
// caller's goroutine. It runs under a background context: β scaling is
// the atomicity anchor of the failure contract ("C holds the β-scaled
// inputs"), so a cancellation must not leave it half-applied; the pass
// is one bounded memory sweep, within the documented abort latency.
func scaleCols(pool *sched.Pool, dst *matrix.Dense, alpha float64) error {
	if alpha == 1 {
		return nil
	}
	return runChunks(context.Background(), pool, dst.Cols, obs.KindScale, func(lo, hi int) {
		dst.ScaleCols(alpha, lo, hi)
	})
}

// packPadded copies op(src)·alpha into a zeroed padded column-major
// matrix — the conversion step for the canonical-layout (L_C) runs,
// which still need padding so that the identical recursive control
// structure applies. Parallelized over destination columns.
func packPadded(ctx context.Context, pool *sched.Pool, dst, src *matrix.Dense, trans bool, alpha float64) error {
	srows, scols := src.Rows, src.Cols
	if trans {
		srows, scols = scols, srows
	}
	if srows > dst.Rows || scols > dst.Cols {
		return fmt.Errorf("core: packPadded destination %dx%d too small for %dx%d", dst.Rows, dst.Cols, srows, scols)
	}
	return runChunks(ctx, pool, dst.Cols, obs.KindPack, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dcol := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			if j >= scols {
				vZero(dcol)
				continue
			}
			switch {
			case trans:
				for i := 0; i < srows; i++ {
					dcol[i] = alpha * src.Data[i*src.Stride+j]
				}
			case alpha == 1:
				copy(dcol[:srows], src.Data[j*src.Stride:j*src.Stride+srows])
			default:
				scol := src.Data[j*src.Stride:]
				for i := 0; i < srows; i++ {
					dcol[i] = alpha * scol[i]
				}
			}
			for i := srows; i < dst.Rows; i++ {
				dcol[i] = 0
			}
		}
	})
}

// unpackPaddedAccumulate is UnpackAccumulate's canonical-layout twin:
// dst += alpha · (logical region of the padded matrix src).
func unpackPaddedAccumulate(ctx context.Context, pool *sched.Pool, dst, src *matrix.Dense, alpha float64) error {
	return runChunks(ctx, pool, dst.Cols, obs.KindUnpack, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dcol := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			scol := src.Data[j*src.Stride : j*src.Stride+dst.Rows]
			if alpha == 1 {
				for i := range dcol {
					dcol[i] += scol[i]
				}
			} else {
				for i := range dcol {
					dcol[i] += alpha * scol[i]
				}
			}
		}
	})
}
