package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tile"
)

// TestAlgTables is the Brent-equation gate: every registered coefficient
// table must be an exact bilinear algorithm for its ⟨M,K,N⟩ shape. The
// `make algtable-check` target runs exactly this test.
func TestAlgTables(t *testing.T) {
	if err := VerifyTables(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tb := range Tables() {
		if seen[tb.Name] {
			t.Errorf("duplicate table name %q", tb.Name)
		}
		seen[tb.Name] = true
		if tb.R >= tb.M*tb.K*tb.N && tb.Name != "classical-2x1x2" {
			t.Errorf("table %s: rank %d does not beat classical %d",
				tb.Name, tb.R, tb.M*tb.K*tb.N)
		}
	}
	for _, want := range []string{
		"winograd-2x2x2", "strassen-2x2x2", "fast-3x2x3", "fast-4x2x4", "laderman-3x3x3",
	} {
		if !seen[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

// tableAlgList returns the registered table algorithm ids.
func tableAlgList() []Alg {
	return append([]Alg(nil), tableAlgs...)
}

// TestTableGEMMDifferential drives every table algorithm against the
// naive reference over rectangular shapes, fringe sizes, and β values
// on every layout. The shapes include dimensions aligned to the table
// grids (so the mixed-radix geometry engages on canonical storage) and
// deliberately misaligned fringes that force padding.
func TestTableGEMMDifferential(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(99))
	shapes := [][3]int{
		{48, 32, 48},  // 3·2·3-aligned with testTile
		{96, 64, 96},  // two table levels
		{108, 72, 96}, // laderman-friendly m, rectangular
		{61, 35, 77},  // fringe everywhere
		{128, 16, 90}, // flat: small k
		{24, 120, 24}, // deep: large k
	}
	for _, alg := range tableAlgList() {
		for _, cv := range mulCurves {
			for _, sh := range shapes {
				for _, beta := range []float64{0, 1, -0.5} {
					m, k, n := sh[0], sh[1], sh[2]
					A := matrix.Random(m, k, rng)
					B := matrix.Random(k, n, rng)
					C := matrix.Random(m, n, rng)
					want := C.Clone()
					matrix.RefGEMM(false, false, 1.5, A, B, beta, want)

					got := C.Clone()
					opts := Options{Curve: cv, Alg: alg, Tile: testTile}
					if _, err := GEMM(pool, opts, false, false, 1.5, A, B, beta, got); err != nil {
						t.Fatalf("%v/%v %v beta=%g: %v", alg, cv, sh, beta, err)
					}
					if !matrix.Equal(got, want, tol(m, k, n)) {
						t.Errorf("%v/%v %v beta=%g: max diff %g",
							alg, cv, sh, beta, matrix.MaxAbsDiff(got, want))
					}
				}
			}
		}
	}
}

// TestTableResidualGrowth bounds the numerical error of each table
// algorithm relative to the naive sum. Fast bilinear algorithms trade
// a few digits for flops; the factor below is generous for one or two
// recursion levels yet catches a wrong table immediately (a single
// sign error produces O(1) relative error, ~1e10 beyond this bound).
func TestTableResidualGrowth(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(4))
	m, k, n := 96, 96, 96
	A := matrix.Random(m, k, rng)
	B := matrix.Random(k, n, rng)
	want := matrix.New(m, n)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)
	var wantNorm float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if v := math.Abs(want.At(i, j)); v > wantNorm {
				wantNorm = v
			}
		}
	}
	for _, alg := range tableAlgList() {
		C := matrix.New(m, n)
		if _, err := GEMM(pool, Options{Alg: alg, Tile: testTile}, false, false, 1, A, B, 0, C); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		rel := matrix.MaxAbsDiff(C, want) / wantNorm
		// ~50·k·ε leaves an order of magnitude of slack over the
		// observed growth at this size while staying ~8 orders below
		// any table error.
		if bound := 50 * float64(k) * 2.2e-16; rel > bound {
			t.Errorf("%v: relative residual %g exceeds bound %g", alg, rel, bound)
		}
	}
}

// TestChooseTableGeom checks the mixed-radix geometry chooser: grids
// must be M^l·2^d with every tile inside [TMin, TMax], and the serving
// shape the daemon auto-selects for must admit a laderman geometry.
func TestChooseTableGeom(t *testing.T) {
	cfg := tile.DefaultConfig
	lad := tableOf(TableLaderman333)
	g, ok := chooseTableGeom(lad, cfg, 1296, 864, 1296)
	if !ok {
		t.Fatal("no laderman geometry for 1296x864x1296")
	}
	pm, pk, pn := 1, 1, 1
	for i := 0; i < g.l; i++ {
		pm, pk, pn = pm*lad.M, pk*lad.K, pn*lad.N
	}
	pm, pk, pn = pm<<g.d, pk<<g.d, pn<<g.d
	if g.gm != pm || g.gk != pk || g.gn != pn {
		t.Fatalf("grid %dx%dx%d is not M^l·2^d = %dx%dx%d (l=%d d=%d)",
			g.gm, g.gk, g.gn, pm, pk, pn, g.l, g.d)
	}
	for _, tl := range []int{g.tm, g.tk, g.tn} {
		if tl < cfg.TMin || tl > cfg.TMax {
			t.Fatalf("tile %d outside [%d, %d]", tl, cfg.TMin, cfg.TMax)
		}
	}
	// A shape no table level fits (tiles would land outside the range
	// for every l ≥ 1) must report ok=false.
	if _, ok := chooseTableGeom(lad, cfg, 20, 20, 20); ok {
		t.Error("expected no geometry for a 20x20x20 problem at default tiles")
	}
}

// TestSelectAlg pins the AlgAuto policy: explicit algorithms pass
// through, small problems stay on Standard, recursive-curve storage
// never picks a rectangular table, and the rectangular serving shape
// resolves to a rectangular table on canonical storage.
func TestSelectAlg(t *testing.T) {
	cfg := tile.DefaultConfig
	base := Options{Alg: AlgAuto, Tile: cfg, Curve: layout.ColMajor}

	explicit := base
	explicit.Alg = Strassen
	if got := selectAlg(explicit, 4096, 4096, 4096); got != Strassen {
		t.Errorf("explicit alg: got %v, want Strassen", got)
	}
	if got := selectAlg(base, 100, 100, 100); got != Standard {
		t.Errorf("small problem: got %v, want Standard", got)
	}
	curved := base
	curved.Curve = layout.ZMorton
	if got := selectAlg(curved, 1296, 864, 1296); tableOf(got) != nil && tableOf(got).M != 2 {
		t.Errorf("curve storage picked rectangular table %v", got)
	}
	got := selectAlg(base, 1296, 864, 1296)
	tb := tableOf(got)
	if tb == nil || tb.M == 2 && tb.K == 2 && tb.N == 2 {
		t.Errorf("1296x864x1296: got %v, want a rectangular table algorithm", got)
	}
}
