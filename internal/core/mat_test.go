package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func TestMatQuadPanicsOnLeaf(t *testing.T) {
	m := Mat{data: make([]float64, 4), tiles: 1, tr: 2, tc: 2, curve: layout.ZMorton}
	defer func() {
		if recover() == nil {
			t.Fatal("quad on a leaf Mat should panic")
		}
	}()
	m.quad(layout.QuadNW)
}

func TestMatDensePanicsOnTiled(t *testing.T) {
	m := Mat{data: make([]float64, 4), tiles: 1, tr: 2, tc: 2, curve: layout.ZMorton}
	defer func() {
		if recover() == nil {
			t.Fatal("dense view of tiled Mat should panic")
		}
	}()
	m.dense()
}

func TestMatGeometryMismatchPanics(t *testing.T) {
	a := Mat{data: make([]float64, 16), tiles: 2, tr: 2, tc: 2, curve: layout.ZMorton}
	b := Mat{data: make([]float64, 36), tiles: 2, tr: 3, tc: 3, curve: layout.ZMorton}
	defer func() {
		if recover() == nil {
			t.Fatal("geometry mismatch should panic")
		}
	}()
	matEW2(a, b, vAcc)
}

func TestMatMixedStoragePanics(t *testing.T) {
	tiled := Mat{data: make([]float64, 16), tiles: 2, tr: 2, tc: 2, curve: layout.ZMorton}
	canon := Mat{data: make([]float64, 16), tiles: 2, tr: 2, tc: 2, ld: 4, curve: layout.ColMajor}
	defer func() {
		if recover() == nil {
			t.Fatal("mixed storage should panic")
		}
	}()
	matEW2(tiled, canon, vAcc)
}

func TestTileIndexMapCrossCurvePanics(t *testing.T) {
	a := Mat{tiles: 2, tr: 2, tc: 2, curve: layout.ZMorton}
	b := Mat{tiles: 2, tr: 2, tc: 2, curve: layout.Hilbert}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-curve tile map should panic")
		}
	}()
	tileIndexMap(a, b)
}

func TestNewTempCanonicalHalvesLD(t *testing.T) {
	// Section 5.1: temporaries of the fast algorithms are contiguous,
	// so their leading dimension equals the quadrant extent, not n.
	parent := Mat{data: make([]float64, 64*64), tiles: 4, tr: 16, tc: 16, ld: 64, curve: layout.ColMajor}
	q := parent.quad(layout.QuadNW)
	tmp := newTemp(q)
	if tmp.ld != 32 {
		t.Fatalf("temp ld = %d, want 32 (quadrant rows)", tmp.ld)
	}
	if q.ld != 64 {
		t.Fatalf("quadrant view ld = %d, want parent's 64", q.ld)
	}
}

func TestNewTempTiledReferenceOrientation(t *testing.T) {
	m := Mat{data: make([]float64, 64), tiles: 4, tr: 1, tc: 1, curve: layout.Hilbert, orient: layout.OrientAT}
	tmp := newTemp(m)
	if tmp.orient != layout.OrientID {
		t.Fatalf("temp orientation = %d, want reference", tmp.orient)
	}
	if len(tmp.data) != m.elems() {
		t.Fatalf("temp size = %d, want %d", len(tmp.data), m.elems())
	}
}

func TestIntegerExactness(t *testing.T) {
	// With small integer inputs every algorithm's arithmetic is exact in
	// float64 (no rounding anywhere), so all algorithms must agree bit
	// for bit — a sharp test that no path drops or duplicates a term.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(99))
	n := 48
	A, B := matrix.New(n, n), matrix.New(n, n)
	for i := range A.Data {
		A.Data[i] = float64(rng.Intn(7) - 3)
		B.Data[i] = float64(rng.Intn(7) - 3)
	}
	want := matrix.New(n, n)
	matrix.RefMulAdd(want, A, B)
	for _, alg := range Algs {
		for _, cv := range mulCurves {
			C := matrix.New(n, n)
			opts := Options{Curve: cv, Alg: alg, Tile: testTile}
			if _, err := GEMM(pool, opts, false, false, 1, A, B, 0, C); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(C, want, 0) {
				t.Errorf("%v/%v: integer product not exact (max diff %g)",
					alg, cv, matrix.MaxAbsDiff(C, want))
			}
		}
	}
}

func TestNaNPropagates(t *testing.T) {
	// Failure injection: a NaN in the input must surface in the output,
	// never be silently dropped by a padding or layout bug.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(5))
	n := 24
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	A.Set(7, 11, math.NaN())
	for _, alg := range Algs {
		for _, cv := range []layout.Curve{layout.ColMajor, layout.Hilbert} {
			C := matrix.New(n, n)
			opts := Options{Curve: cv, Alg: alg, Tile: testTile}
			if _, err := GEMM(pool, opts, false, false, 1, A, B, 0, C); err != nil {
				t.Fatal(err)
			}
			if !C.HasNaN() {
				t.Errorf("%v/%v: NaN vanished", alg, cv)
			}
		}
	}
}

func TestFastAlgorithmAccuracy(t *testing.T) {
	// The fast algorithms lose accuracy relative to the standard sum,
	// but on well-scaled random inputs the error must stay within a few
	// orders of magnitude of machine epsilon times k (Higham's bounds
	// are polynomial in n; this is a sanity band, not a tight bound).
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(6))
	n := 96
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := matrix.New(n, n)
	matrix.RefMulAdd(want, A, B)
	for _, alg := range []Alg{Strassen, Winograd} {
		C := matrix.New(n, n)
		opts := Options{Curve: layout.ZMorton, Alg: alg, Tile: testTile}
		if _, err := GEMM(pool, opts, false, false, 1, A, B, 0, C); err != nil {
			t.Fatal(err)
		}
		diff := matrix.MaxAbsDiff(C, want)
		if diff > 1e-11 {
			t.Errorf("%v: error %g too large", alg, diff)
		}
		if diff == 0 {
			// Astronomically unlikely for real Strassen arithmetic on
			// random floats; zero would suggest the standard path ran.
			t.Errorf("%v: suspiciously exact result", alg)
		}
	}
}

func TestStrassenWinogradAgree(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(7))
	n := 64
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	cs := matrix.New(n, n)
	cw := matrix.New(n, n)
	if _, err := GEMM(pool, Options{Curve: layout.GrayMorton, Alg: Strassen, Tile: testTile},
		false, false, 1, A, B, 0, cs); err != nil {
		t.Fatal(err)
	}
	if _, err := GEMM(pool, Options{Curve: layout.GrayMorton, Alg: Winograd, Tile: testTile},
		false, false, 1, A, B, 0, cw); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(cs, cw, 1e-11) {
		t.Fatalf("Strassen and Winograd disagree: %g", matrix.MaxAbsDiff(cs, cw))
	}
}

func TestPermCacheStability(t *testing.T) {
	// Memoized permutations must be identical across lookups (and safe
	// to share); mutating a cached slice would corrupt later additions.
	a := permFor(layout.Hilbert, 0, 2, 3)
	b := permFor(layout.Hilbert, 0, 2, 3)
	if &a[0] != &b[0] {
		t.Fatal("perm cache did not memoize")
	}
	want := layout.Hilbert.Perm(0, 2, 3)
	for i := range a {
		if a[i] != want[i] {
			t.Fatal("cached perm differs from fresh computation")
		}
	}
}

func TestLog2Tiles(t *testing.T) {
	cases := map[int]uint{1: 0, 2: 1, 4: 2, 64: 6, 1024: 10}
	for in, want := range cases {
		if got := log2tiles(in); got != want {
			t.Errorf("log2tiles(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestParseAlg(t *testing.T) {
	for _, a := range Algs {
		got, err := ParseAlg(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlg(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlg("coppersmith"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestVectorKernels(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	dst := make([]float64, 3)
	vAdd(dst, a, b)
	if dst[2] != 33 {
		t.Fatal("vAdd wrong")
	}
	vSub(dst, b, a)
	if dst[0] != 9 {
		t.Fatal("vSub wrong")
	}
	vAcc(dst, a)
	if dst[1] != 20 {
		t.Fatal("vAcc wrong")
	}
	vDec(dst, a)
	if dst[1] != 18 {
		t.Fatal("vDec wrong")
	}
	vCopy(dst, b)
	if dst[0] != 10 {
		t.Fatal("vCopy wrong")
	}
	vZero(dst)
	if dst[0] != 0 || dst[2] != 0 {
		t.Fatal("vZero wrong")
	}
}
