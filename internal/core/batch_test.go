package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// TestGEMMBatchMatchesSingleCalls: the batched wave must be bit-exact
// against N independent GEMMCtx calls — not merely within tolerance.
// The wave reuses the per-call tiling and the per-element pack/compute/
// unpack arithmetic, so every item's accumulation order is identical to
// its single-call twin regardless of how the wave schedules items.
func TestGEMMBatchMatchesSingleCalls(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(81))
	// Shapes stay below the wide/lean split threshold (short·α with the
	// test tile's α=4): the batch path multiplies each item as a single
	// block, so only unsplit shapes are bit-exact against GEMMCtx.
	shapes := [][3]int{{40, 24, 56}, {64, 64, 64}, {64, 48, 17}}
	algs := []Alg{Standard, TableWinograd222}
	for _, cv := range layout.RecursiveCurves {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				for bi, beta := range []float64{0, 1, 0.5} {
					opts := Options{Curve: cv, Alg: algs[bi%len(algs)], Tile: testTile}
					items := make([]BatchItem, len(shapes))
					want := make([]*matrix.Dense, len(shapes))
					for i, s := range shapes {
						m, k, n := s[0], s[1], s[2]
						ar, ac := m, k
						if ta {
							ar, ac = k, m
						}
						br, bc := k, n
						if tb {
							br, bc = n, k
						}
						A := matrix.Random(ar, ac, rng)
						B := matrix.Random(br, bc, rng)
						C := matrix.Random(m, n, rng)
						want[i] = C.Clone()
						if _, err := GEMMCtx(context.Background(), pool, opts, ta, tb, -1.25, A, B, beta, want[i]); err != nil {
							t.Fatalf("%v ta=%v tb=%v beta=%g item %d: single call: %v", cv, ta, tb, beta, i, err)
						}
						items[i] = BatchItem{TransA: ta, TransB: tb, Alpha: -1.25, A: A, B: B, Beta: beta, C: C}
					}
					bs, errs, err := GEMMBatch(context.Background(), pool, opts, items)
					if err != nil {
						t.Fatalf("%v ta=%v tb=%v beta=%g: GEMMBatch: %v", cv, ta, tb, beta, err)
					}
					if bs.Items != len(shapes) || bs.Completed != len(shapes) {
						t.Fatalf("%v: Items=%d Completed=%d, want %d/%d", cv, bs.Items, bs.Completed, len(shapes), len(shapes))
					}
					for i := range items {
						if errs[i] != nil {
							t.Fatalf("%v ta=%v tb=%v beta=%g item %d: %v", cv, ta, tb, beta, i, errs[i])
						}
						if !matrix.Equal(items[i].C, want[i], 0) {
							t.Errorf("%v ta=%v tb=%v beta=%g item %d: not bit-exact, max diff %g",
								cv, ta, tb, beta, i, matrix.MaxAbsDiff(items[i].C, want[i]))
						}
					}
				}
			}
		}
	}
}

// TestGEMMPrepackedBatchMatchesLooped: a batch of raw right-hand sides
// against one shared plan must be bit-exact against the looped
// equivalent (PrepackConforming + GEMMPrepacked per item) — the wave's
// in-task B pack chooses the same conforming tile width and the
// k-segment accumulation runs in the same order.
func TestGEMMPrepackedBatchMatchesLooped(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(82))
	n := 96
	A := matrix.Random(n, n, rng)
	opts := Options{Curve: layout.Hilbert, Alg: Standard, PartnerDim: 32}
	pa, err := Prepack(context.Background(), pool, opts, A, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Release()

	widths := []int{17, 24, 32, 1, 24}
	for _, tb := range []bool{false, true} {
		for _, beta := range []float64{0, 0.5} {
			items := make([]PrepackedBatchItem, len(widths))
			want := make([]*matrix.Dense, len(widths))
			for i, w := range widths {
				br, bc := n, w
				if tb {
					br, bc = w, n
				}
				B := matrix.Random(br, bc, rng)
				C := matrix.Random(n, w, rng)
				want[i] = C.Clone()
				pb, err := PrepackConforming(context.Background(), pool, opts, B, tb, pa)
				if err != nil {
					t.Fatalf("tb=%v item %d: PrepackConforming: %v", tb, i, err)
				}
				if _, err := GEMMPrepacked(context.Background(), pool, opts, 0.75, pa, pb, beta, want[i]); err != nil {
					t.Fatalf("tb=%v item %d: GEMMPrepacked: %v", tb, i, err)
				}
				pb.Release()
				items[i] = PrepackedBatchItem{TransB: tb, Alpha: 0.75, B: B, Beta: beta, C: C}
			}
			bs, errs, err := GEMMPrepackedBatch(context.Background(), pool, opts, pa, items)
			if err != nil {
				t.Fatalf("tb=%v beta=%g: GEMMPrepackedBatch: %v", tb, beta, err)
			}
			if bs.Completed != len(widths) {
				t.Fatalf("tb=%v beta=%g: Completed=%d, want %d", tb, beta, bs.Completed, len(widths))
			}
			for i := range items {
				if errs[i] != nil {
					t.Fatalf("tb=%v beta=%g item %d: %v", tb, beta, i, errs[i])
				}
				if !matrix.Equal(items[i].C, want[i], 0) {
					t.Errorf("tb=%v beta=%g item %d (n=%d): not bit-exact, max diff %g",
						tb, beta, i, widths[i], matrix.MaxAbsDiff(items[i].C, want[i]))
				}
			}
			// The shared plan is packed once and served every item: the
			// wave reuses one A-side operand per product.
			if bs.PackReused == 0 {
				t.Errorf("tb=%v beta=%g: PackReused = 0, want > 0", tb, beta)
			}
		}
	}
}

// TestGEMMBatchStrided: the equal-shape strided form must agree with
// the reference per item, and reject buffers that cannot hold the batch.
func TestGEMMBatchStrided(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(83))
	m, k, n, count := 24, 16, 20, 6
	lda, ldb, ldc := m+1, k+2, m
	sa, sb, sc := lda*k+3, ldb*n, ldc*n
	a := make([]float64, count*sa)
	b := make([]float64, count*sb)
	cbuf := make([]float64, count*sc)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for i := range cbuf {
		cbuf[i] = rng.NormFloat64()
	}
	want := make([]*matrix.Dense, count)
	for i := 0; i < count; i++ {
		want[i] = matrix.FromSlice(cbuf[i*sc:], m, n, ldc).Clone()
		matrix.RefGEMM(false, false, 2, matrix.FromSlice(a[i*sa:], m, k, lda),
			matrix.FromSlice(b[i*sb:], k, n, ldb), 0.5, want[i])
	}
	opts := Options{Curve: layout.ZMorton, Alg: Standard, Tile: testTile}
	bs, errs, err := GEMMBatchStrided(context.Background(), pool, opts, false, false,
		m, k, n, 2, a, lda, sa, b, ldb, sb, 0.5, cbuf, ldc, sc, count)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Completed != count {
		t.Fatalf("Completed = %d, want %d", bs.Completed, count)
	}
	for i := 0; i < count; i++ {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		got := matrix.FromSlice(cbuf[i*sc:], m, n, ldc)
		if !matrix.Equal(got, want[i], tol(m, k, n)) {
			t.Errorf("item %d: max diff %g", i, matrix.MaxAbsDiff(got, want[i]))
		}
	}
	if _, _, err := GEMMBatchStrided(context.Background(), pool, opts, false, false,
		m, k, n, 2, a, lda, sa, b, ldb, sb, 0.5, cbuf[:count*sc-1], ldc, sc, count); !errors.Is(err, ErrDimension) {
		t.Fatalf("short C buffer: err = %v, want ErrDimension", err)
	}
	if _, _, err := GEMMBatchStrided(context.Background(), pool, opts, false, false,
		m, k, n, 2, a, lda, lda*(k-1)+m-1, b, ldb, sb, 0.5, cbuf, ldc, sc, count); !errors.Is(err, ErrDimension) {
		t.Fatalf("overlapping A stride: err = %v, want ErrDimension", err)
	}
}

// TestGEMMBatchPerItemIsolation: a member that fails validation or
// arrives with an expired context is dropped from the wave with a typed
// error and an untouched (or exactly β-scaled) C, while its siblings
// complete normally.
func TestGEMMBatchPerItemIsolation(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(84))
	opts := Options{Curve: layout.Hilbert, Alg: Standard, Tile: testTile}
	n := 48
	mk := func() BatchItem {
		return BatchItem{Alpha: 1, Beta: 0.5,
			A: matrix.Random(n, n, rng), B: matrix.Random(n, n, rng), C: matrix.Random(n, n, rng)}
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	items := []BatchItem{mk(), mk(), mk(), mk()}
	items[1].B = matrix.Random(n+1, n, rng) // inner dimensions disagree
	items[2].Ctx = cancelled
	before2 := items[2].C.Clone()
	want := make([]*matrix.Dense, len(items))
	for i := range items {
		if i == 1 || i == 2 {
			continue
		}
		want[i] = items[i].C.Clone()
		matrix.RefGEMM(false, false, 1, items[i].A, items[i].B, 0.5, want[i])
	}

	bs, errs, err := GEMMBatch(context.Background(), pool, opts, items)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Items != 3 || bs.Completed != 2 {
		t.Fatalf("Items=%d Completed=%d, want 3/2", bs.Items, bs.Completed)
	}
	if !errors.Is(errs[1], ErrDimension) {
		t.Fatalf("invalid item: err = %v, want ErrDimension", errs[1])
	}
	if !errors.Is(errs[2], context.Canceled) {
		t.Fatalf("cancelled item: err = %v, want context.Canceled", errs[2])
	}
	// "Not started" contract: the expired member's C is untouched — not
	// even β-scaled.
	if !matrix.Equal(items[2].C, before2, 0) {
		t.Fatal("cancelled member's C was modified")
	}
	for _, i := range []int{0, 3} {
		if errs[i] != nil {
			t.Fatalf("sibling %d: %v", i, errs[i])
		}
		if !matrix.Equal(items[i].C, want[i], tol(n, n, n)) {
			t.Errorf("sibling %d: max diff %g", i, matrix.MaxAbsDiff(items[i].C, want[i]))
		}
	}
}

// TestGEMMBatchDeadlineMidWave: a member whose context expires while
// the wave is running is dropped with a typed error and a C that is
// either untouched or exactly β-scaled — never a partial product —
// while members with live contexts are unaffected.
func TestGEMMBatchDeadlineMidWave(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(85))
	opts := Options{Curve: layout.ZMorton, Alg: Standard, Tile: testTile}
	n := 64
	const count = 16
	ictx, cancel := context.WithCancel(context.Background())
	items := make([]BatchItem, count)
	before := make([]*matrix.Dense, count)
	want := make([]*matrix.Dense, count)
	for i := range items {
		items[i] = BatchItem{Alpha: 1, Beta: 0.5,
			A: matrix.Random(n, n, rng), B: matrix.Random(n, n, rng), C: matrix.Random(n, n, rng)}
		before[i] = items[i].C.Clone()
		want[i] = items[i].C.Clone()
		matrix.RefGEMM(false, false, 1, items[i].A, items[i].B, 0.5, want[i])
		if i%2 == 1 {
			items[i].Ctx = ictx
		}
	}
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	_, errs, err := GEMMBatch(context.Background(), pool, opts, items)
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if errs[i] == nil {
			if !matrix.Equal(items[i].C, want[i], tol(n, n, n)) {
				t.Errorf("item %d: completed but wrong, max diff %g", i, matrix.MaxAbsDiff(items[i].C, want[i]))
			}
			continue
		}
		if i%2 == 0 {
			t.Fatalf("item %d has no deadline but failed: %v", i, errs[i])
		}
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, errs[i])
		}
		scaled := before[i].Clone()
		scaled.Scale(0.5)
		if !matrix.Equal(items[i].C, before[i], 0) && !matrix.Equal(items[i].C, scaled, 0) {
			t.Errorf("item %d: dropped member's C is neither untouched nor exactly β-scaled", i)
		}
	}
}

// TestGEMMBatchWaveCancel: cancelling the wave context drops every
// unfinished member with a typed error naming the cause; no C ends in a
// partial state.
func TestGEMMBatchWaveCancel(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(86))
	opts := Options{Curve: layout.Hilbert, Alg: Standard, Tile: testTile}
	n := 64
	const count = 24
	items := make([]BatchItem, count)
	for i := range items {
		items[i] = BatchItem{Alpha: 1, Beta: 1,
			A: matrix.Random(n, n, rng), B: matrix.Random(n, n, rng), C: matrix.New(n, n)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Microsecond)
		cancel()
	}()
	_, errs, err := GEMMBatch(ctx, pool, opts, items)
	if err != nil {
		// The whole wave may be rejected if cancellation wins the race to
		// the entry check; that is a valid outcome of this schedule.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		return
	}
	okCount := 0
	for i := range items {
		if errs[i] == nil {
			okCount++
			continue
		}
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, errs[i])
		}
	}
	t.Logf("wave cancel: %d/%d items completed before the cut", okCount, count)
}

// TestStressBatchFaultInjection: under injected panics, allocation
// failures, and delays, a wave must never let a panic escape, and every
// member must end in exactly one of the contract states — completed and
// numerically correct, or failed with an error that unwraps to the
// injected fault (or to the wave-abort wrapper naming it). A failed
// member's C must be untouched or exactly β-scaled (β=1 here, so:
// unchanged) — never a partial product.
func TestStressBatchFaultInjection(t *testing.T) {
	if !faultinject.Enabled() {
		faultinject.Configure(faultinject.Config{
			PanicProb: 0.02, AllocProb: 0.02, DelayProb: 0.01,
			Delay: 50 * time.Microsecond, Seed: 19,
		})
		defer faultinject.Disable()
	}
	pool := sched.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(87))
	n := 48
	const count = 6
	opts := Options{Curve: layout.ZMorton, Alg: Strassen, Tile: testTile, FastCutoff: 1}
	zero := matrix.New(n, n)
	A := make([]*matrix.Dense, count)
	B := make([]*matrix.Dense, count)
	want := make([]*matrix.Dense, count)
	for i := 0; i < count; i++ {
		A[i] = matrix.Random(n, n, rng)
		B[i] = matrix.Random(n, n, rng)
		want[i] = matrix.New(n, n)
		matrix.RefGEMM(false, false, 1, A[i], B[i], 0, want[i])
	}
	for iter := 0; iter < 30; iter++ {
		items := make([]BatchItem, count)
		for i := range items {
			items[i] = BatchItem{Alpha: 1, Beta: 1, A: A[i], B: B[i], C: matrix.New(n, n)}
		}
		_, errs, err := GEMMBatch(context.Background(), pool, opts, items)
		if err != nil {
			var fault *faultinject.Fault
			if !errors.As(err, &fault) {
				t.Fatalf("iter %d: wave error does not unwrap to injected fault: %v", iter, err)
			}
			for i := range items {
				if !matrix.Equal(items[i].C, zero, 0) {
					t.Fatalf("iter %d: wave rejected but item %d's C was touched", iter, i)
				}
			}
			continue
		}
		for i := range items {
			if errs[i] == nil {
				if !matrix.Equal(items[i].C, want[i], tol(n, n, n)) {
					t.Fatalf("iter %d item %d: successful member under faults is wrong (max diff %g)",
						iter, i, matrix.MaxAbsDiff(items[i].C, want[i]))
				}
				continue
			}
			var fault *faultinject.Fault
			if !errors.As(errs[i], &fault) {
				t.Fatalf("iter %d item %d: error does not unwrap to injected fault: %v", iter, i, errs[i])
			}
			// β=1: a dropped member's C must be exactly its input (zero).
			if !matrix.Equal(items[i].C, zero, 0) {
				t.Fatalf("iter %d item %d: failed member's C holds a partial product", iter, i)
			}
		}
	}
}

// TestBatchZeroAllocPerItem: at n=512-class shapes a steady-state wave
// performs no allocations per item — doubling the wave size must not
// change the allocation count. The absolute count is wave-level
// bookkeeping (slices, stats, runner closures) whose number does not
// depend on the item count; it plateaus by a handful of items (tiny
// waves land in smaller slice size classes), so the comparison is run
// past the plateau.
func TestBatchZeroAllocPerItem(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime bookkeeping allocations")
	}
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(88))
	n := 512
	opts := Options{Curve: layout.ZMorton, Alg: Standard}
	const big = 16
	A := make([]*matrix.Dense, big)
	B := make([]*matrix.Dense, big)
	C := make([]*matrix.Dense, big)
	for i := 0; i < big; i++ {
		A[i] = matrix.Random(n, n, rng)
		B[i] = matrix.Random(n, n, rng)
		C[i] = matrix.New(n, n)
	}
	run := func(count int) float64 {
		items := make([]BatchItem, count)
		for i := range items {
			items[i] = BatchItem{Alpha: 1, Beta: 0, A: A[i], B: B[i], C: C[i]}
		}
		// Warm the buffer pool once so the measured runs are steady-state.
		if _, errs, err := GEMMBatch(context.Background(), pool, opts, items); err != nil {
			t.Fatal(err)
		} else {
			for i, e := range errs {
				if e != nil {
					t.Fatalf("item %d: %v", i, e)
				}
			}
		}
		return testing.AllocsPerRun(1, func() {
			if _, _, err := GEMMBatch(context.Background(), pool, opts, items); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := run(big / 2)
	large := run(big)
	perItem := (large - small) / float64(big/2)
	t.Logf("allocs: wave of %d = %.0f, wave of %d = %.0f (%.2f per extra item)",
		big/2, small, big, large, perItem)
	if perItem != 0 {
		t.Errorf("per-item allocations = %.2f, want 0 (wave of %d: %.0f allocs, wave of %d: %.0f)",
			perItem, big/2, small, big, large)
	}
}
