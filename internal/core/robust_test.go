package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func refProduct(n int, A, B *matrix.Dense) *matrix.Dense {
	want := matrix.New(n, n)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)
	return want
}

func TestNonFiniteScalarsRejected(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	A := matrix.Identity(8)
	C := matrix.New(8, 8)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := GEMM(pool, Options{}, false, false, bad, A, A, 0, C); !errors.Is(err, ErrNonFinite) {
			t.Errorf("alpha=%v: err = %v, want ErrNonFinite", bad, err)
		}
		if _, err := GEMM(pool, Options{}, false, false, 1, A, A, bad, C); !errors.Is(err, ErrNonFinite) {
			t.Errorf("beta=%v: err = %v, want ErrNonFinite", bad, err)
		}
	}
}

func TestForceTileOverflowRejected(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	A := matrix.Identity(8)
	C := matrix.New(8, 8)
	// An absurd forced tile must yield ErrDimension, not an attempt to
	// allocate a 2^31-sided padded matrix.
	if _, err := GEMM(pool, Options{ForceTile: 1 << 31}, false, false, 1, A, A, 0, C); !errors.Is(err, ErrDimension) {
		t.Fatalf("ForceTile=1<<31: err = %v, want ErrDimension", err)
	}
}

func TestGEMMCtxOnClosedPool(t *testing.T) {
	pool := sched.NewPool(1)
	pool.Close()
	A := matrix.Identity(8)
	C := matrix.New(8, 8)
	if _, err := GEMM(pool, Options{}, false, false, 1, A, A, 0, C); !errors.Is(err, sched.ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestMemBudgetDegradesAndStaysCorrect(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(7))
	n := 128
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := refProduct(n, A, B)

	// With this budget the parallel Strassen footprint (~1.9 MiB at
	// 128³, ForceTile 16, 2 workers) exceeds the budget but the serial
	// low-memory rung (~0.5 MiB) fits.
	opts := Options{Curve: layout.ZMorton, Alg: Strassen, ForceTile: 16, MemBudget: 600_000}
	C := matrix.New(n, n)
	stats, err := GEMM(pool, opts, false, false, 1, A, B, 0, C)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Alg != StrassenLowMem || !stats.Serial {
		t.Fatalf("degraded to %v (serial=%v), want StrassenLowMem (serial)", stats.Alg, stats.Serial)
	}
	if len(stats.Degraded) == 0 {
		t.Fatal("degradation not recorded in Stats.Degraded")
	}
	if stats.EstimatedBytes <= 0 || stats.EstimatedBytes > opts.MemBudget {
		t.Fatalf("EstimatedBytes = %d, want in (0, %d]", stats.EstimatedBytes, opts.MemBudget)
	}
	if !matrix.Equal(C, want, 1e-10) {
		t.Fatalf("degraded multiply wrong (max diff %g)", matrix.MaxAbsDiff(C, want))
	}
}

func TestMemBudgetUnlimitedByDefault(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(8))
	n := 64
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	C := matrix.New(n, n)
	stats, err := GEMM(pool, Options{Curve: layout.ZMorton, Alg: Strassen, ForceTile: 16}, false, false, 1, A, B, 0, C)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Alg != Strassen || stats.Serial || len(stats.Degraded) != 0 {
		t.Fatalf("no-budget run degraded: alg=%v serial=%v notes=%v", stats.Alg, stats.Serial, stats.Degraded)
	}
}

func TestMemBudgetRejectsWhenNothingFits(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	A := matrix.Identity(128)
	C := matrix.New(128, 128)
	// Even the temporary-free serial standard rung needs the three
	// packed operands (~400 KiB); a 1 KB budget admits nothing.
	_, err := GEMM(pool, Options{Curve: layout.ZMorton, Alg: Strassen, ForceTile: 16, MemBudget: 1000},
		false, false, 1, A, A, 0, C)
	if !errors.Is(err, ErrMemBudget) {
		t.Fatalf("err = %v, want ErrMemBudget", err)
	}
	// Admission control fires before C is scaled or touched.
	for i, v := range C.Data {
		if v != 0 {
			t.Fatalf("C modified at %d despite admission rejection", i)
		}
	}
}

func TestResidualProbeDegradesToStandard(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(9))
	n := 64
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := refProduct(n, A, B)

	// A bound far below any realistic Strassen residual forces the
	// probe to degrade.
	opts := Options{Curve: layout.ZMorton, Alg: Strassen, ForceTile: 16, MaxResidualGrowth: 1e-9}
	C := matrix.New(n, n)
	stats, err := GEMM(pool, opts, false, false, 1, A, B, 0, C)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Alg != Standard {
		t.Fatalf("alg = %v, want Standard after probe degradation", stats.Alg)
	}
	if len(stats.Degraded) == 0 {
		t.Fatal("probe degradation not recorded")
	}
	if !matrix.Equal(C, want, 1e-10) {
		t.Fatalf("degraded multiply wrong (max diff %g)", matrix.MaxAbsDiff(C, want))
	}
}

func TestResidualProbeAllowsFastAlgorithm(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(10))
	n := 64
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	opts := Options{Curve: layout.ZMorton, Alg: Strassen, ForceTile: 16, MaxResidualGrowth: 1e12}
	C := matrix.New(n, n)
	stats, err := GEMM(pool, opts, false, false, 1, A, B, 0, C)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Alg != Strassen || len(stats.Degraded) != 0 {
		t.Fatalf("generous bound still degraded: alg=%v notes=%v", stats.Alg, stats.Degraded)
	}
}

func TestGEMMCtxPreCancelled(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	A := matrix.Identity(16)
	C := matrix.New(16, 16)
	for i := range C.Data {
		C.Data[i] = 7
	}
	_, err := GEMMCtx(ctx, pool, Options{}, false, false, 1, A, A, 2, C)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Rejected before admission: C (including its beta scaling) is
	// untouched.
	for i, v := range C.Data {
		if v != 7 {
			t.Fatalf("C modified at %d by pre-cancelled call", i)
		}
	}
}

func TestCancelMidRunLeavesCScaledOrComplete(t *testing.T) {
	// The atomicity contract: after a cancelled run C holds exactly the
	// beta-scaled input (zeros here) or, if compute won the race, the
	// complete product — never a partial block.
	pool := sched.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(11))
	n := 256
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := refProduct(n, A, B)
	zeros := matrix.New(n, n)

	for _, delay := range []time.Duration{0, 200 * time.Microsecond, 2 * time.Millisecond} {
		C := matrix.New(n, n)
		for i := range C.Data {
			C.Data[i] = 7
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		// ForceTile keeps this a single block, so the contract reduces
		// to: C is all zeros (beta-scaled), all sevens (pre-admission),
		// or the complete product.
		_, err := GEMMCtx(ctx, pool, Options{Curve: layout.Hilbert, Alg: Winograd, ForceTile: 32}, false, false, 1, A, B, 0, C)
		cancel()
		switch {
		case err == nil:
			if !matrix.Equal(C, want, 1e-10) {
				t.Fatalf("delay %v: successful run wrong (max diff %g)", delay, matrix.MaxAbsDiff(C, want))
			}
		case errors.Is(err, context.Canceled):
			if !matrix.Equal(C, zeros, 0) {
				// Cancelled before beta scaling: C must be untouched.
				allSeven := true
				for _, v := range C.Data {
					if v != 7 {
						allSeven = false
						break
					}
				}
				if !allSeven {
					t.Fatalf("delay %v: cancelled run left partial state in C", delay)
				}
			}
		default:
			t.Fatalf("delay %v: unexpected error %v", delay, err)
		}
	}
}

func TestCancellationLatencyBounded(t *testing.T) {
	// A cancelled context must abort the compute within the promised
	// bound (roughly one leaf kernel; the acceptance bound is 250 ms).
	pool := sched.NewPool(0)
	defer pool.Close()
	rng := rand.New(rand.NewSource(12))
	n := 1024
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	C := matrix.New(n, n)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := GEMMCtx(ctx, pool, Options{Curve: layout.ZMorton, Alg: Strassen}, false, false, 1, A, B, 0, C)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the compute get going
	t0 := time.Now()
	cancel()
	select {
	case err := <-errc:
		if lat := time.Since(t0); err != nil && lat > 250*time.Millisecond {
			t.Fatalf("cancellation took %v, want <= 250ms", lat)
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled GEMM never returned")
	}
}

func TestCancellationStorm(t *testing.T) {
	// Repeated cancellations at varied points must never corrupt a
	// successful run, leak an inconsistent pool, or panic.
	pool := sched.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(13))
	n := 128
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := refProduct(n, A, B)
	for i := 0; i < 12; i++ {
		C := matrix.New(n, n)
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(i%5) * 300 * time.Microsecond)
		_, err := GEMMCtx(ctx, pool, Options{Curve: layout.ZMorton, Alg: Standard8}, false, false, 1, A, B, 0, C)
		cancel()
		if err == nil && !matrix.Equal(C, want, 1e-10) {
			t.Fatalf("iter %d: uncancelled run wrong", i)
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iter %d: unexpected error %v", i, err)
		}
	}
	// Pool must still run clean work.
	C := matrix.New(n, n)
	if _, err := GEMM(pool, Options{}, false, false, 1, A, B, 0, C); err != nil {
		t.Fatalf("pool broken after storm: %v", err)
	}
	if !matrix.Equal(C, want, 1e-10) {
		t.Fatal("post-storm run wrong")
	}
}

// stressFaults enables fault injection for a TestStress* function,
// honoring an externally supplied RECMAT_FAULTS configuration (the
// `make stress` path) and otherwise installing a deterministic default.
// The returned func restores the disabled state.
func stressFaults() func() {
	if faultinject.Enabled() {
		return func() {}
	}
	// Low per-hook probabilities: a multiplication crosses hundreds of
	// hook sites, so these rates produce a healthy mix of failed and
	// clean runs (both branches of the stress assertions matter).
	faultinject.Configure(faultinject.Config{
		PanicProb: 0.002,
		AllocProb: 0.005,
		DelayProb: 0.005,
		Delay:     50 * time.Microsecond,
		Seed:      7,
	})
	return faultinject.Disable
}

func TestStressGEMMFaultInjection(t *testing.T) {
	defer stressFaults()()
	pool := sched.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(14))
	n := 96
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := refProduct(n, A, B)

	failures := 0
	for i := 0; i < 30; i++ {
		C := matrix.New(n, n)
		algs := []Alg{Standard, Strassen, Winograd, TableWinograd222, TableFast323, TableLaderman333}
		opts := Options{Curve: layout.ZMorton, Alg: algs[i%len(algs)], ForceTile: 16}
		stats, err := GEMM(pool, opts, false, false, 1, A, B, 0, C)
		if err == nil {
			if stats == nil {
				t.Fatal("nil stats on success")
			}
			// Delay faults may have fired, but a successful return must
			// still be numerically correct.
			if !matrix.Equal(C, want, 1e-10) {
				t.Fatalf("iter %d: successful run under faults is wrong (max diff %g)",
					i, matrix.MaxAbsDiff(C, want))
			}
			continue
		}
		failures++
		// Every injected failure must surface as a typed, inspectable
		// error: the *Fault panic value stays reachable through the
		// TaskError aggregation.
		var fault *faultinject.Fault
		if !errors.As(err, &fault) {
			t.Fatalf("iter %d: error %v does not unwrap to *faultinject.Fault", i, err)
		}
	}
	t.Logf("fault stress: %d/30 runs failed (injected)", failures)

	// The pool survives everything the storm threw at it.
	faultinject.Disable()
	C := matrix.New(n, n)
	if _, err := GEMM(pool, Options{}, false, false, 1, A, B, 0, C); err != nil {
		t.Fatalf("pool broken after fault stress: %v", err)
	}
	if !matrix.Equal(C, want, 1e-10) {
		t.Fatal("post-stress run wrong")
	}
}

func TestStressMulTiledFaultInjection(t *testing.T) {
	defer stressFaults()()
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(15))
	n := 64
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)

	// Every stage — Pack, the multiplication, anything on the pool —
	// may fail under injection, but always with an error that unwraps
	// to the injected *Fault, never an escaping panic.
	mustBeInjected := func(i int, stage string, err error) {
		t.Helper()
		var fault *faultinject.Fault
		if !errors.As(err, &fault) {
			t.Fatalf("iter %d: %s error does not unwrap to *faultinject.Fault: %v", i, stage, err)
		}
	}
	for i := 0; i < 20; i++ {
		ta := NewTiled(layout.Hilbert, 2, 16, 16, n, n)
		tb := NewTiled(layout.Hilbert, 2, 16, 16, n, n)
		tc := NewTiled(layout.Hilbert, 2, 16, 16, n, n)
		if err := ta.Pack(context.Background(), pool, A, false, 1); err != nil {
			mustBeInjected(i, "pack A", err)
			continue
		}
		if err := tb.Pack(context.Background(), pool, B, false, 1); err != nil {
			mustBeInjected(i, "pack B", err)
			continue
		}
		if _, err := MulTiled(pool, Options{Alg: Strassen}, tc, ta, tb); err != nil {
			mustBeInjected(i, "MulTiled", err)
		}
	}
}
