package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(1))
	for _, cv := range layout.RecursiveCurves {
		for _, dims := range [][4]int{
			{16, 16, 4, 4},  // exact
			{15, 13, 4, 4},  // padding both dims
			{10, 20, 3, 5},  // rectangular tiles
			{1, 1, 4, 4},    // single element
			{33, 17, 8, 16}, // asymmetric
		} {
			rows, cols, tr, tc := dims[0], dims[1], dims[2], dims[3]
			d := uint(0)
			for (tr<<d) < rows || (tc<<d) < cols {
				d++
			}
			src := matrix.Random(rows, cols, rng)
			tl := NewTiled(cv, d, tr, tc, rows, cols)
			tl.Pack(context.Background(), pool, src, false, 1)
			dst := matrix.New(rows, cols)
			tl.Unpack(context.Background(), pool, dst)
			if !matrix.Equal(dst, src, 0) {
				t.Errorf("%v %v: pack/unpack round trip failed", cv, dims)
			}
		}
	}
}

func TestPackAtMatchesLayoutFunction(t *testing.T) {
	// Tiled.At must agree with direct evaluation of equation (3), and
	// Pack must place every element where At expects it.
	pool := sched.NewPool(1)
	defer pool.Close()
	for _, cv := range layout.RecursiveCurves {
		rows, cols, tr, tc := 12, 10, 3, 4
		d := uint(2)
		src := matrix.Sequential(rows, cols)
		tl := NewTiled(cv, d, tr, tc, rows, cols)
		tl.Pack(context.Background(), pool, src, false, 1)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tl.At(i, j) != src.At(i, j) {
					t.Fatalf("%v: At(%d,%d) = %g, want %g", cv, i, j, tl.At(i, j), src.At(i, j))
				}
			}
		}
	}
}

func TestPackTransposeAndScale(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(2))
	src := matrix.Random(9, 14, rng)
	tl := NewTiled(layout.ZMorton, 2, 4, 3, 14, 9) // holds srcᵀ
	tl.Pack(context.Background(), pool, src, true, -2)
	for i := 0; i < 14; i++ {
		for j := 0; j < 9; j++ {
			if tl.At(i, j) != -2*src.At(j, i) {
				t.Fatalf("transposed pack wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestPackZeroPadding(t *testing.T) {
	// Every element outside the logical region must be exactly zero
	// (the algorithms blindly compute on the padding).
	pool := sched.NewPool(1)
	defer pool.Close()
	rows, cols := 5, 6
	tl := NewTiled(layout.Hilbert, 2, 2, 2, rows, cols)
	src := matrix.Random(rows, cols, rand.New(rand.NewSource(3)))
	// Poison the buffer first to catch unwritten padding.
	for i := range tl.Data {
		tl.Data[i] = 99
	}
	tl.Pack(context.Background(), pool, src, false, 1)
	side := 1 << tl.D
	for ti := 0; ti < side; ti++ {
		for tj := 0; tj < side; tj++ {
			s := int(tl.Curve.S(uint32(ti), uint32(tj), tl.D))
			for jj := 0; jj < tl.TC; jj++ {
				for ii := 0; ii < tl.TR; ii++ {
					gi, gj := ti*tl.TR+ii, tj*tl.TC+jj
					v := tl.Data[s*tl.TR*tl.TC+jj*tl.TR+ii]
					if gi >= rows || gj >= cols {
						if v != 0 {
							t.Fatalf("padding at (%d,%d) = %g, want 0", gi, gj, v)
						}
					} else if v != src.At(gi, gj) {
						t.Fatalf("element (%d,%d) = %g, want %g", gi, gj, v, src.At(gi, gj))
					}
				}
			}
		}
	}
}

func TestQuadDescentContiguity(t *testing.T) {
	// Descending the Mat quadrant tree must visit the same storage the
	// layout function assigns: the NW quadrant's first tile is the tile
	// whose S-number equals the quadrant's base position.
	for _, cv := range layout.RecursiveCurves {
		tl := NewTiled(cv, 3, 2, 2, 16, 16)
		// Stamp each tile with its own index.
		ts := tl.TR * tl.TC
		for s := 0; s < 64; s++ {
			for e := 0; e < ts; e++ {
				tl.Data[s*ts+e] = float64(s)
			}
		}
		m := tl.Mat()
		// Walk to the tile at tile-coordinates (5, 6) via quadrants.
		ti, tj := 5, 6
		cur := m
		for cur.tiles > 1 {
			half := cur.tiles / 2
			qi, qj := 0, 0
			if ti >= half {
				qi = 1
				ti -= half
			}
			if tj >= half {
				qj = 1
				tj -= half
			}
			cur = cur.quad(qi<<1 | qj)
		}
		want := float64(cv.S(5, 6, 3))
		if cur.data[0] != want {
			t.Errorf("%v: descent reached tile %g, S says %g", cv, cur.data[0], want)
		}
	}
}

func TestQuadDescentCanonical(t *testing.T) {
	// For canonical storage the descent is offset arithmetic.
	d := matrix.Sequential(16, 16)
	m := Mat{data: d.Data, tiles: 4, tr: 4, tc: 4, ld: 16, curve: layout.ColMajor}
	se := m.quad(layout.QuadSE).quad(layout.QuadNW)
	// SE quadrant starts at (8,8); its NW sub-quadrant is the tile at
	// (8,8) of the original.
	if se.data[0] != d.At(8, 8) {
		t.Fatalf("canonical descent wrong: got %g want %g", se.data[0], d.At(8, 8))
	}
	if se.leafLD() != 16 {
		t.Fatalf("canonical leaf leading dimension = %d, want 16", se.leafLD())
	}
}

func TestMatEWOrientationAlignment(t *testing.T) {
	// Adding two quadrants with different orientations must combine
	// geometrically corresponding tiles (the Section 4 pre-addition
	// issue). Build a Gray-Morton matrix, take NW (orient 0) and NE
	// (orient 1) quadrants, add them into a temp, and check element-wise
	// against the dense equivalent.
	pool := sched.NewPool(1)
	defer pool.Close()
	rng := rand.New(rand.NewSource(4))
	for _, cv := range []layout.Curve{layout.GrayMorton, layout.Hilbert} {
		src := matrix.Random(16, 16, rng)
		tl := NewTiled(cv, 3, 2, 2, 16, 16)
		tl.Pack(context.Background(), pool, src, false, 1)
		m := tl.Mat()
		nw, ne := m.quad(layout.QuadNW), m.quad(layout.QuadNE)
		if cv.Orientations() > 1 && nw.orient == ne.orient {
			t.Fatalf("%v: expected differing quadrant orientations", cv)
		}
		tmp := newTemp(nw)
		matEW3(tmp, nw, ne, vAdd)
		// Reconstruct: tmp is an 8x8 tiled quadrant in OrientID; read it
		// back tile by tile via the oriented S function.
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				s := int(cv.SOriented(tmp.orient, uint32(i/2), uint32(j/2), 2))
				got := tmp.data[s*4+(j%2)*2+i%2]
				want := src.At(i, j) + src.At(i, j+8)
				if got != want {
					t.Fatalf("%v: (%d,%d) = %g, want %g", cv, i, j, got, want)
				}
			}
		}
	}
}

func TestTileIndexMapGrayMatchesPerm(t *testing.T) {
	// The half-step shortcut must agree with the generic permutation.
	a := Mat{tiles: 8, tr: 2, tc: 2, curve: layout.GrayMorton, orient: 0}
	b := a
	b.orient = 1
	idx := tileIndexMap(a, b)
	perm := layout.GrayMorton.Perm(0, 1, 3)
	for s := 0; s < 64; s++ {
		if idx(s) != int(perm[s]) {
			t.Fatalf("gray shortcut disagrees with Perm at %d: %d vs %d", s, idx(s), perm[s])
		}
	}
}

func TestMulTiledMatchesGEMM(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(5))
	n := 32
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := matrix.New(n, n)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)

	for _, cv := range layout.RecursiveCurves {
		ta := NewTiled(cv, 3, 4, 4, n, n)
		ta.Pack(context.Background(), pool, A, false, 1)
		tb := NewTiled(cv, 3, 4, 4, n, n)
		tb.Pack(context.Background(), pool, B, false, 1)
		tc := NewTiled(cv, 3, 4, 4, n, n)
		if _, err := MulTiled(pool, Options{Alg: Winograd}, tc, ta, tb); err != nil {
			t.Fatal(err)
		}
		got := matrix.New(n, n)
		tc.Unpack(context.Background(), pool, got)
		if !matrix.Equal(got, want, 1e-11) {
			t.Errorf("%v: MulTiled wrong (max diff %g)", cv, matrix.MaxAbsDiff(got, want))
		}
	}
}

func TestMulTiledValidation(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	a := NewTiled(layout.ZMorton, 2, 4, 4, 16, 16)
	b := NewTiled(layout.Hilbert, 2, 4, 4, 16, 16)
	c := NewTiled(layout.ZMorton, 2, 4, 4, 16, 16)
	if _, err := MulTiled(pool, Options{}, c, a, b); err == nil {
		t.Error("curve mismatch not rejected")
	}
	b2 := NewTiled(layout.ZMorton, 3, 4, 4, 32, 32)
	if _, err := MulTiled(pool, Options{}, c, a, b2); err == nil {
		t.Error("depth mismatch not rejected")
	}
	b3 := NewTiled(layout.ZMorton, 2, 5, 4, 20, 16)
	if _, err := MulTiled(pool, Options{}, c, a, b3); err == nil {
		t.Error("tile conformance not checked")
	}
}

func TestPackParallelMatchesSerial(t *testing.T) {
	big := sched.NewPool(4)
	defer big.Close()
	one := sched.NewPool(1)
	defer one.Close()
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(60), 1+rng.Intn(60)
		tr, tc := 1+rng.Intn(6), 1+rng.Intn(6)
		d := uint(0)
		for (tr<<d) < rows || (tc<<d) < cols {
			d++
		}
		cv := layout.RecursiveCurves[rng.Intn(len(layout.RecursiveCurves))]
		src := matrix.Random(rows, cols, rng)
		t1 := NewTiled(cv, d, tr, tc, rows, cols)
		t1.Pack(context.Background(), big, src, false, 1)
		t2 := NewTiled(cv, d, tr, tc, rows, cols)
		t2.Pack(context.Background(), one, src, false, 1)
		for i := range t1.Data {
			if t1.Data[i] != t2.Data[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNewTiledTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized tiled allocation should panic")
		}
	}()
	NewTiled(layout.ZMorton, 1, 2, 2, 100, 100)
}
