package core

import (
	"context"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// TestGEMMPrepackedMatchesRef: a prepacked multiplication must agree
// with the reference for every recursive curve, trans fold, and β —
// squat operands prepacked independently.
func TestGEMMPrepackedMatchesRef(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(31))
	m, k, n := 40, 24, 56
	for _, cv := range layout.RecursiveCurves {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				for _, beta := range []float64{0, 1, 0.5} {
					A := matrix.Random(m, k, rng)
					if ta {
						A = matrix.Random(k, m, rng)
					}
					B := matrix.Random(k, n, rng)
					if tb {
						B = matrix.Random(n, k, rng)
					}
					opts := Options{Curve: cv, Alg: Standard, Tile: testTile}
					pa, err := Prepack(context.Background(), pool, opts, A, ta)
					if err != nil {
						t.Fatalf("%v: Prepack A: %v", cv, err)
					}
					pb, err := Prepack(context.Background(), pool, opts, B, tb)
					if err != nil {
						t.Fatalf("%v: Prepack B: %v", cv, err)
					}

					C := matrix.Random(m, n, rng)
					want := C.Clone()
					matrix.RefGEMM(ta, tb, -1.25, A, B, beta, want)
					got := C.Clone()
					if _, err := GEMMPrepacked(context.Background(), pool, opts, -1.25, pa, pb, beta, got); err != nil {
						t.Fatalf("%v ta=%v tb=%v beta=%g: %v", cv, ta, tb, beta, err)
					}
					if !matrix.Equal(got, want, tol(m, k, n)) {
						t.Errorf("%v ta=%v tb=%v beta=%g: max diff %g",
							cv, ta, tb, beta, matrix.MaxAbsDiff(got, want))
					}
					pa.Release()
					pb.Release()
				}
			}
		}
	}
}

// TestGEMMPrepackedServingShape: the north-star pattern — one squat
// prepacked A, a lean streaming B packed conforming to it — must
// conform by construction and match a fresh GEMM of the same operands.
// (Independent Prepacks of these shapes need NOT conform: the default
// config's micro-alignment preference picks depth 1 for 96×24 but
// depth 2 for 96×96, which is exactly why PrepackConforming exists.)
func TestGEMMPrepackedServingShape(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(32))
	n, b := 96, 24
	A := matrix.Random(n, n, rng)
	opts := Options{Curve: layout.Hilbert, Alg: Standard}
	pa, err := Prepack(context.Background(), pool, opts, A, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Release()
	for stream := 0; stream < 3; stream++ {
		B := matrix.Random(n, b, rng)
		pb, err := PrepackConforming(context.Background(), pool, opts, B, false, pa)
		if err != nil {
			t.Fatalf("stream %d: %v", stream, err)
		}
		want := matrix.New(n, b)
		matrix.RefGEMM(false, false, 1, A, B, 0, want)
		got := matrix.New(n, b)
		stats, err := GEMMPrepacked(context.Background(), pool, opts, 1, pa, pb, 0, got)
		pb.Release()
		if err != nil {
			t.Fatalf("stream %d: %v", stream, err)
		}
		if !matrix.Equal(got, want, tol(n, n, b)) {
			t.Errorf("stream %d: max diff %g", stream, matrix.MaxAbsDiff(got, want))
		}
		// The conversion the plans absorbed must not be charged to the
		// call: ConvertBytes counts only the C epilogue.
		if wantBytes := 8 * int64((pa.TR<<pa.D)*(pb.TC<<pb.D)); stats.ConvertBytes != wantBytes {
			t.Errorf("stream %d: ConvertBytes = %d, want %d (C epilogue only)",
				stream, stats.ConvertBytes, wantBytes)
		}
		if stats.PackReused != 2 {
			t.Errorf("stream %d: PackReused = %d, want 2", stream, stats.PackReused)
		}
	}
}

// TestPrepackPartnerDim: a plan prepacked with the PartnerDim hint
// splits into squat blocks sized for its future skinny partners, so a
// conforming stream pads its free dimension not at all — the geometry
// the serving benchmark depends on.
func TestPrepackPartnerDim(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(37))
	n, b := 256, 32
	A := matrix.Random(n, n, rng)
	opts := Options{Curve: layout.ZMorton, Alg: Standard}
	paOpts := opts
	paOpts.PartnerDim = b
	pa, err := Prepack(context.Background(), pool, paOpts, A, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Release()
	if len(pa.RSegs) < 2 {
		t.Fatalf("PartnerDim=%d plan did not split %dx%d (segments: %d)", b, n, n, len(pa.RSegs))
	}
	B := matrix.Random(n, b, rng)
	pb, err := PrepackConforming(context.Background(), pool, opts, B, false, pa)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Release()
	if padded := pb.TC << pb.D; padded != b {
		t.Errorf("conforming stream pads its free dimension to %d, want %d (no padding)", padded, b)
	}
	want := matrix.New(n, b)
	matrix.RefGEMM(false, false, 1, A, B, 0, want)
	got := matrix.New(n, b)
	if _, err := GEMMPrepacked(context.Background(), pool, opts, 1, pa, pb, 0, got); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want, tol(n, n, b)) {
		t.Errorf("max diff %g", matrix.MaxAbsDiff(got, want))
	}
}

// TestPrepackedTransposedGram: deriving the second operand with
// Transposed must conform by construction — including across wide/lean
// segment splits — and compute the Gram products correctly.
func TestPrepackedTransposedGram(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(33))
	for _, cv := range []layout.Curve{layout.ZMorton, layout.GrayMorton} {
		for _, dims := range [][2]int{
			{30, 30},  // squat: single segment
			{20, 150}, // lean source: k splits, exercising the accumulation loop
			{150, 20}, // wide source: m and n split, exercising the block grid
		} {
			r, c := dims[0], dims[1]
			A := matrix.Random(r, c, rng)
			opts := Options{Curve: cv, Alg: Standard, Tile: testTile}
			pa, err := Prepack(context.Background(), pool, opts, A, false)
			if err != nil {
				t.Fatalf("%v %v: %v", cv, dims, err)
			}
			pat, err := pa.Transposed(context.Background(), pool)
			if err != nil {
				t.Fatalf("%v %v: Transposed: %v", cv, dims, err)
			}
			if len(pa.RSegs) != len(pat.CSegs) || len(pa.CSegs) != len(pat.RSegs) {
				t.Fatalf("%v %v: Transposed segment mismatch", cv, dims)
			}

			// C = A·Aᵀ + 0.5·C, the SYRK shape served by one conversion.
			C := matrix.Random(r, r, rng)
			want := C.Clone()
			matrix.RefGEMM(false, true, 1, A, A, 0.5, want)
			got := C.Clone()
			stats, err := GEMMPrepacked(context.Background(), pool, opts, 1, pa, pat, 0.5, got)
			if err != nil {
				t.Fatalf("%v %v: %v", cv, dims, err)
			}
			if !matrix.Equal(got, want, tol(r, c, r)) {
				t.Errorf("%v %v: max diff %g", cv, dims, matrix.MaxAbsDiff(got, want))
			}
			wantProducts := len(pa.RSegs) * len(pat.CSegs) * len(pa.CSegs)
			if stats.Blocks != wantProducts || stats.PackReused != 2*wantProducts {
				t.Errorf("%v %v: Blocks=%d PackReused=%d, want %d and %d",
					cv, dims, stats.Blocks, stats.PackReused, wantProducts, 2*wantProducts)
			}
			pa.Release()
			pat.Release()
		}
	}
}

// TestPrepackValidation covers the rejection paths: canonical layouts,
// non-conforming plans, released plans, and shape mismatches.
func TestPrepackValidation(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	rng := rand.New(rand.NewSource(34))
	if _, err := Prepack(context.Background(), pool, Options{Curve: layout.ColMajor}, matrix.Random(8, 8, rng), false); err == nil {
		t.Error("ColMajor Prepack not rejected")
	}

	opts := Options{Curve: layout.ZMorton, Alg: Standard}
	// A wide operand's split inner tiling cannot conform with an
	// independently prepacked squat operand.
	wide := matrix.Random(400, 50, rng)
	squat := matrix.Random(50, 50, rng)
	pw, err := Prepack(context.Background(), pool, opts, wide, false)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Prepack(context.Background(), pool, opts, squat, false)
	if err != nil {
		t.Fatal(err)
	}
	C := matrix.New(400, 50)
	if _, err := GEMMPrepacked(context.Background(), pool, opts, 1, pw, ps, 0, C); err == nil {
		t.Error("non-conforming plans not rejected")
	}

	// Curve mismatch.
	ph, err := Prepack(context.Background(), pool, Options{Curve: layout.Hilbert}, squat, false)
	if err != nil {
		t.Fatal(err)
	}
	C2 := matrix.New(50, 50)
	if _, err := GEMMPrepacked(context.Background(), pool, opts, 1, ps, ph, 0, C2); err == nil {
		t.Error("curve mismatch not rejected")
	}

	// Wrong C shape.
	pa, _ := Prepack(context.Background(), pool, opts, squat, false)
	if _, err := GEMMPrepacked(context.Background(), pool, opts, 1, pa, ps, 0, matrix.New(50, 49)); err == nil {
		t.Error("C shape mismatch not rejected")
	}

	// PrepackConforming: inner-dimension mismatch and released target.
	if _, err := PrepackConforming(context.Background(), pool, opts, matrix.Random(49, 10, rng), false, ps); err == nil {
		t.Error("PrepackConforming with wrong inner dimension not rejected")
	}
	// The wide plan splits k into several row segments; a conforming
	// operand adopts them and multiplies cleanly despite the split.
	pc, err := PrepackConforming(context.Background(), pool, opts, matrix.Random(50, 12, rng), false, pw)
	if err != nil {
		t.Errorf("PrepackConforming against split plan: %v", err)
	} else {
		if _, err := GEMMPrepacked(context.Background(), pool, opts, 1, pw, pc, 0, matrix.New(400, 12)); err != nil {
			t.Errorf("GEMMPrepacked with conforming plan: %v", err)
		}
		pc.Release()
	}

	// Released plan.
	pa.Release()
	if _, err := GEMMPrepacked(context.Background(), pool, opts, 1, pa, ps, 0, C2); err == nil {
		t.Error("released plan not rejected")
	}
	if _, err := pa.Transposed(context.Background(), pool); err == nil {
		t.Error("Transposed of released plan not rejected")
	}
	pw.Release()
	if _, err := PrepackConforming(context.Background(), pool, opts, matrix.Random(50, 10, rng), false, pw); err == nil {
		t.Error("PrepackConforming against released plan not rejected")
	}
	ps.Release()
	ph.Release()
}

// TestPrepackedSteadyStateAllocBytes pins the recycling acceptance
// criterion: once warm, a repeated prepacked multiplication allocates a
// negligible, bounded number of bytes per call — the packed buffers,
// the C tile, and the arena all come from pools. Measured as allocated
// bytes (not object counts: small fixed-size control structures like
// the returned Stats are fine; re-allocating megabyte buffers is not).
// GC is disabled during the measurement so sync.Pool eviction cannot
// produce a false failure.
func TestPrepackedSteadyStateAllocBytes(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts by design; steady state unreachable")
	}
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(35))
	n := 256
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	C := matrix.New(n, n)
	opts := Options{Curve: layout.ZMorton, Alg: Standard, KernelName: "packed8x4"}
	pa, err := Prepack(context.Background(), pool, opts, A, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Release()
	pb, err := Prepack(context.Background(), pool, opts, B, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Release()

	call := func() *Stats {
		stats, err := GEMMPrepacked(context.Background(), pool, opts, 1, pa, pb, 0, C)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	// Warm the buffer pool, arena pool, and coordinate caches.
	call()
	call()

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const runs = 5
	var misses int
	for i := 0; i < runs; i++ {
		misses += call().PoolMisses
	}
	runtime.ReadMemStats(&after)
	perCall := int64(after.TotalAlloc-before.TotalAlloc) / runs

	if misses != 0 {
		t.Errorf("steady state: %d tiled-buffer pool misses, want 0", misses)
	}
	// The C tile alone is 8·256² = 512 KiB; re-allocating any packed
	// buffer per call would blow far past this bound.
	if perCall > 64<<10 {
		t.Errorf("steady state allocates %d bytes/call, want < 64KiB", perCall)
	}
}

// TestGEMMSteadyStatePoolHits: the per-call GEMM path (not just the
// prepacked one) must also reuse its packed buffers once warm.
func TestGEMMSteadyStatePoolHits(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts by design; steady state unreachable")
	}
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(36))
	n := 128
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	C := matrix.New(n, n)
	opts := Options{Curve: layout.Hilbert, Alg: Standard, KernelName: "packed8x4"}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var stats *Stats
	var err error
	for i := 0; i < 3; i++ {
		if stats, err = GEMM(pool, opts, false, false, 1, A, B, 0, C); err != nil {
			t.Fatal(err)
		}
	}
	if stats.PoolMisses != 0 {
		t.Errorf("steady-state GEMM: %d pool misses (%d hits), want 0 misses",
			stats.PoolMisses, stats.PoolHits)
	}
	if stats.PoolHits == 0 {
		t.Error("steady-state GEMM: no pool hits recorded")
	}
}
