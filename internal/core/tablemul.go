package core

import (
	"repro/internal/sched"
)

// This file is the generic recursive engine behind every table-driven
// ⟨m,k,n⟩ algorithm (table.go). One level of recursion is: split the
// three operands' tile grids M×K / K×N / M×N ways, materialize the U/V
// block combinations (through the same pool-parallel element-wise
// streams the hand-coded algorithms use), recurse into the R products,
// and scatter them into C along W.
//
// Parallelism follows Benson–Ballard's BFS/DFS hybrid as a per-level
// policy decided at run time from the pool's starvation gauge
// (sched.Ctx.IdleWorkers):
//
//   - BFS: allocate scratch for all R products and spawn them together
//     (the shape of the hand-coded strassen/winograd) — maximum breadth
//     to feed idle workers, at R·|C|/(M·N) + … scratch per level.
//   - DFS: run the products one after another through a single reused
//     S/T/P scratch trio with the post-additions interspersed (the
//     shape of strassenLowMem) — minimum footprint when the pool is
//     already saturated and more breadth would feed no one.
//
// The policy re-decides at every level and every DFS child, so breadth
// reappears as soon as workers go hungry. Arena reservations assume
// BFS at every level (the maximum); DFS uses strictly less.

// tableGrid extracts the three grid extents of a conforming block trio:
// A is gm×gk tiles, B is gk×gn, C is gm×gn.
func tableGrid(C, A Mat) (gm, gk, gn int) {
	return C.tiles, A.gridC(), C.gridC()
}

// tableMul computes C += A·B by tb, choosing the per-level parallel
// policy. The recursion descends the table while the grid divides
// by ⟨M,K,N⟩; the driver's geometry (mixed-radix M^l·2^d grids on
// canonical storage, plain 2^d on the recursive layouts) guarantees
// that when it stops the remaining grid is a square power of two, which
// is handed to tb.Base. ⟨2,2,2⟩ tables are self-similar on the
// power-of-two grid and keep descending to FastCutoff, mirroring the
// hand-coded fast algorithms.
func (e *exec) tableMul(c *sched.Ctx, tb *Table, C, A, B Mat) {
	if c.Cancelled() {
		return
	}
	gm, gk, gn := tableGrid(C, A)
	if gm == 1 && gk == 1 && gn == 1 {
		e.leafMul(c, C, A, B)
		return
	}
	if tb.M == 2 && tb.K == 2 && tb.N == 2 {
		if gm <= e.fastCutoff {
			e.mul(c, tb.Base, C, A, B)
			return
		}
	} else {
		// A rectangular table never descends on tiled storage (the
		// curves' 2^d grids don't divide by odd factors), and on
		// canonical storage it stops when the table levels are exhausted
		// and the grid has collapsed to a square power of two.
		if C.tiledStore() || (gm == gk && gk == gn && gm&(gm-1) == 0) {
			e.mul(c, tb.Base, C, A, B)
			return
		}
		if gm%tb.M != 0 || gk%tb.K != 0 || gn%tb.N != 0 {
			panic("core: table recursion on non-divisible grid")
		}
	}
	t := gm
	if gk > t {
		t = gk
	}
	if gn > t {
		t = gn
	}
	if e.par(t) && c.IdleWorkers() > 0 {
		e.tableBFS(c, tb, C, A, B)
		return
	}
	e.tableDFS(c, tb, C, A, B)
}

// needsTemp reports whether a U/V row requires a materialized scratch
// block; a bare +1 singleton aliases the operand block directly.
func needsTemp(row []tableTerm) bool {
	return len(row) > 1 || row[0].c != 1
}

// materialize computes dst = Σ row over blocks. The first pair of
// terms fuses into one three-operand pass when the signs allow (every
// registered table's rows do); remaining terms accumulate.
func (e *exec) materialize(c *sched.Ctx, dst Mat, row []tableTerm, blocks []Mat) {
	i := 0
	if len(row) >= 2 {
		a, b := blocks[row[0].idx], blocks[row[1].idx]
		switch {
		case row[0].c == 1 && row[1].c == 1:
			e.ew3(c, dst, a, b, vAdd)
			i = 2
		case row[0].c == 1 && row[1].c == -1:
			e.ew3(c, dst, a, b, vSub)
			i = 2
		case row[0].c == -1 && row[1].c == 1:
			e.ew3(c, dst, b, a, vSub)
			i = 2
		}
	}
	if i == 0 {
		if row[0].c == 1 {
			e.ew2(c, dst, blocks[row[0].idx], vCopy)
		} else {
			e.ew2(c, dst, blocks[row[0].idx], vNeg)
		}
		i = 1
	}
	accountAdd(c, dst)
	for ; i < len(row); i++ {
		if ewCancelled(c) {
			return
		}
		if row[i].c == 1 {
			e.ew2(c, dst, blocks[row[i].idx], vAcc)
		} else {
			e.ew2(c, dst, blocks[row[i].idx], vDec)
		}
		accountAdd(c, dst)
	}
}

// splitBlocks fills the three operand block arrays for one table level.
func splitBlocks(tb *Table, C, A, B Mat, ab, bb, cb []Mat) {
	for i := 0; i < tb.M; i++ {
		for j := 0; j < tb.K; j++ {
			ab[i*tb.K+j] = A.subGrid(i, j, tb.M, tb.K)
		}
	}
	for j := 0; j < tb.K; j++ {
		for l := 0; l < tb.N; l++ {
			bb[j*tb.N+l] = B.subGrid(j, l, tb.K, tb.N)
		}
	}
	for i := 0; i < tb.M; i++ {
		for l := 0; l < tb.N; l++ {
			cb[i*tb.N+l] = C.subGrid(i, l, tb.M, tb.N)
		}
	}
}

// materializeAux fills the schedule's aux operand blocks (entries of
// blocks beyond base) in definition order; each aux row may reference
// base blocks and earlier aux. The calls are sequential — schedule
// rows form dependency chains — but every pass still spreads across
// the pool through ew2/ew3.
func (e *exec) materializeAux(c *sched.Ctx, aux [][]tableTerm, base int, blocks []Mat) {
	for j, row := range aux {
		if ewCancelled(c) {
			return
		}
		e.materialize(c, blocks[base+j], row, blocks)
	}
}

// tableBFS is the breadth-first level: scratch for every product, the
// pre-additions spawned together, all R recursive products spawned
// together, then the per-C-block post-addition chains (disjoint
// destinations) spawned together. Schedule aux blocks are materialized
// once per level, before the per-product rows that reference them.
func (e *exec) tableBFS(c *sched.Ctx, tb *Table, C, A, B Mat) {
	ab := make([]Mat, tb.M*tb.K+len(tb.AuxU))
	bb := make([]Mat, tb.K*tb.N+len(tb.AuxV))
	cb := make([]Mat, tb.M*tb.N)
	splitBlocks(tb, C, A, B, ab, bb, cb)

	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	for j := range tb.AuxU {
		ab[tb.M*tb.K+j] = e.newTemp(c, ab[0])
	}
	for j := range tb.AuxV {
		bb[tb.K*tb.N+j] = e.newTemp(c, bb[0])
	}
	e.materializeAux(c, tb.AuxU, tb.M*tb.K, ab)
	e.materializeAux(c, tb.AuxV, tb.K*tb.N, bb)
	if c.Cancelled() {
		return
	}
	aop := make([]Mat, tb.R)
	bop := make([]Mat, tb.R)
	p := make([]Mat, tb.R)
	pre := make([]func(*sched.Ctx), 0, tb.R)
	for r := 0; r < tb.R; r++ {
		if c.Cancelled() {
			return
		}
		r := r
		na, nb := needsTemp(tb.U[r]), needsTemp(tb.V[r])
		if na {
			aop[r] = e.newTemp(c, ab[0])
		} else {
			aop[r] = ab[tb.U[r][0].idx]
		}
		if nb {
			bop[r] = e.newTemp(c, bb[0])
		} else {
			bop[r] = bb[tb.V[r][0].idx]
		}
		p[r] = e.newTemp(c, cb[0])
		if na || nb {
			pre = append(pre, func(c *sched.Ctx) {
				if na {
					e.materialize(c, aop[r], tb.U[r], ab)
				}
				if nb {
					e.materialize(c, bop[r], tb.V[r], bb)
				}
			})
		}
	}
	c.Parallel(pre...)
	if c.Cancelled() {
		return
	}
	prod := make([]func(*sched.Ctx), tb.R)
	for r := 0; r < tb.R; r++ {
		r := r
		// Arena memory is dirty; each product zeroes its destination
		// inside its own task (a parallel memset for free).
		prod[r] = func(c *sched.Ctx) {
			matZero(p[r])
			e.tableMul(c, tb, p[r], aop[r], bop[r])
		}
	}
	c.Parallel(prod...)
	if c.Cancelled() {
		return
	}
	if len(tb.AuxW) > 0 {
		// The shared post-addition chains (Winograd's U2/U3): with every
		// product live, each aux is one fused pass over its sources.
		pext := make([]Mat, tb.R+len(tb.AuxW))
		copy(pext, p)
		for j := range tb.AuxW {
			pext[tb.R+j] = e.newTemp(c, cb[0])
		}
		e.materializeAux(c, tb.AuxW, tb.R, pext)
		if c.Cancelled() {
			return
		}
		p = pext
	}
	post := make([]func(*sched.Ctx), 0, tb.M*tb.N)
	for t := range tb.W {
		if len(tb.W[t]) == 0 {
			continue
		}
		t := t
		post = append(post, func(c *sched.Ctx) {
			dst := cb[t]
			for _, term := range tb.W[t] {
				if ewCancelled(c) {
					return
				}
				if term.c == 1 {
					e.ew2(c, dst, p[term.idx], vAcc)
				} else {
					e.ew2(c, dst, p[term.idx], vDec)
				}
				accountAdd(c, dst)
			}
		})
	}
	c.Parallel(post...)
}

// tableDFS is the depth-first level: one reused S/T/P scratch trio, the
// R products run in order with their post-additions interspersed — the
// table generalization of strassenLowMem. Unlike that algorithm it is
// not irrevocably serial: each child re-enters tableMul, which flips
// back to BFS the moment the pool reports hungry workers, and the
// element-wise passes still spread through ew2/ew3 when large enough.
// The frame itself is closure-free so escape analysis keeps the block
// descriptors on the stack below the serial cutoff.
func (e *exec) tableDFS(c *sched.Ctx, tb *Table, C, A, B Mat) {
	var abuf, bbuf, cbuf [tableMaxBlocks]Mat // base blocks + schedule aux; register enforces the bound
	ab := abuf[:tb.M*tb.K+len(tb.AuxU)]
	bb := bbuf[:tb.K*tb.N+len(tb.AuxV)]
	cb := cbuf[:tb.M*tb.N]
	splitBlocks(tb, C, A, B, ab, bb, cb)

	st, top := e.ar.mark(c)
	defer e.ar.release(st, top)
	for j := range tb.AuxU {
		ab[tb.M*tb.K+j] = e.newTemp(c, ab[0])
	}
	for j := range tb.AuxV {
		bb[tb.K*tb.N+j] = e.newTemp(c, bb[0])
	}
	// W-aux accumulators collect their product terms as the products
	// stream past the one P buffer; the first touch overwrites the
	// dirty arena block (a move, not an accounted add) and later terms
	// accumulate, so the add count matches the BFS fused passes.
	var wauxBuf [tableMaxWAux]Mat
	var touchedBuf [tableMaxWAux]bool
	waux := wauxBuf[:len(tb.AuxW)]
	touched := touchedBuf[:len(tb.AuxW)]
	for j := range waux {
		waux[j] = e.newTemp(c, cb[0])
	}
	var sa, sb Mat
	if tb.preA > 0 {
		sa = e.newTemp(c, ab[0])
	}
	if tb.preB > 0 {
		sb = e.newTemp(c, bb[0])
	}
	p := e.newTemp(c, cb[0])
	if c.Cancelled() {
		return
	}
	e.materializeAux(c, tb.AuxU, tb.M*tb.K, ab)
	e.materializeAux(c, tb.AuxV, tb.K*tb.N, bb)
	for r := 0; r < tb.R; r++ {
		if c.Cancelled() {
			return
		}
		aop, bop := sa, sb
		if needsTemp(tb.U[r]) {
			e.materialize(c, sa, tb.U[r], ab)
		} else {
			aop = ab[tb.U[r][0].idx]
		}
		if needsTemp(tb.V[r]) {
			e.materialize(c, sb, tb.V[r], bb)
		} else {
			bop = bb[tb.V[r][0].idx]
		}
		if ewCancelled(c) {
			return
		}
		matZero(p)
		e.tableMul(c, tb, p, aop, bop)
		// Scatter the product into its destinations immediately (W
		// transposed), so the one P buffer is free for the next product.
		for _, term := range tb.WT[r] {
			if ewCancelled(c) {
				return
			}
			e.tableScatter(c, p, term, cb, waux, touched, tb.M*tb.N)
		}
	}
	// Resolve the W-aux chains: every aux is complete once all R
	// products have streamed past (earlier aux feeding later ones
	// resolve first, in definition order), so each flows on to its C
	// rows and downstream aux.
	for j := range tb.AuxW {
		for _, term := range tb.auxWScatter[j] {
			if ewCancelled(c) {
				return
			}
			e.tableScatter(c, waux[j], term, cb, waux, touched, tb.M*tb.N)
		}
	}
}

// tableScatter adds src into one scatter target: a real C block
// (always accumulated — C carries the caller's data) or a W-aux
// accumulator, whose first touch overwrites the dirty arena block.
// The overwrite is data movement rather than arithmetic, so only
// accumulating passes account an add — keeping the accounted work
// identical between the BFS and DFS evaluations of the same schedule.
func (e *exec) tableScatter(c *sched.Ctx, src Mat, term tableTerm, cb, waux []Mat, touched []bool, mn int) {
	if term.idx < mn {
		if term.c == 1 {
			e.ew2(c, cb[term.idx], src, vAcc)
		} else {
			e.ew2(c, cb[term.idx], src, vDec)
		}
		accountAdd(c, cb[term.idx])
		return
	}
	j := term.idx - mn
	if !touched[j] {
		touched[j] = true
		if term.c == 1 {
			e.ew2(c, waux[j], src, vCopy)
		} else {
			e.ew2(c, waux[j], src, vNeg)
		}
		return
	}
	if term.c == 1 {
		e.ew2(c, waux[j], src, vAcc)
	} else {
		e.ew2(c, waux[j], src, vDec)
	}
	accountAdd(c, waux[j])
}
