package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/leaf"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func fillRand(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Float64() - 0.5
	}
}

// serialExec builds an exec that never spawns, suitable for driving
// e.mul directly on an unbound Ctx.
func serialExec(t *testing.T, kernel string, ar *arena) *exec {
	t.Helper()
	impl, err := leaf.GetImpl(kernel)
	if err != nil {
		t.Fatal(err)
	}
	return &exec{kern: impl.Kern, skern: impl.Scratch,
		serialCutoff: 1 << 30, fastCutoff: 1, ar: ar, ewMin: ewParMin}
}

func TestArenaStackElemsSanity(t *testing.T) {
	if got := arenaStackElems(Standard, 16, 16, 16, 8, 8, 8, 1); got != 0 {
		t.Fatalf("Standard needs %d temp elems, want 0", got)
	}
	// One Strassen level on a 2×2 grid of t×t tiles: 5+5 operand
	// temporaries and 7 products, each a single tile.
	if got, want := arenaStackElems(Strassen, 2, 2, 2, 4, 4, 4, 1), int64(17*16); got != want {
		t.Fatalf("Strassen(2): %d, want %d", got, want)
	}
	// The per-path need grows with depth and shrinks with fastCutoff.
	deep := arenaStackElems(Winograd, 16, 16, 16, 8, 8, 8, 1)
	shallow := arenaStackElems(Winograd, 16, 16, 16, 8, 8, 8, 4)
	if deep <= shallow || shallow <= 0 {
		t.Fatalf("Winograd: deep=%d shallow=%d", deep, shallow)
	}
	// The low-memory variant is by far the smallest fast-algorithm
	// footprint — the property its ladder rung exists for.
	if lm, st := arenaStackElems(StrassenLowMem, 16, 16, 16, 8, 8, 8, 1), arenaStackElems(Strassen, 16, 16, 16, 8, 8, 8, 1); lm*3 >= st {
		t.Fatalf("lowmem %d not well below strassen %d", lm, st)
	}
	// The admission estimate and the reservation share this function;
	// acquireArena must reserve exactly stacks × per-path.
	per := arenaStackElems(Strassen, 8, 8, 8, 16, 16, 16, 1)
	ar := acquireArena(Strassen, 8, 8, 8, 16, 16, 16, 1, 3)
	if ar == nil {
		t.Fatal("acquireArena declined a modest reservation")
	}
	defer releaseArena(ar)
	if ar.bytes() != 8*per*3 {
		t.Fatalf("arena bytes %d, want %d", ar.bytes(), 8*per*3)
	}
}

// TestArenaZeroSteadyStateAllocs pins the tentpole property: after one
// warm-up call (testing.AllocsPerRun's built-in first call populates
// the permutation caches and the worker-slot kernel scratch), a serial
// Strassen or Winograd multiplication at n=512 performs zero heap
// allocations — every temporary is served by the arena.
func TestArenaZeroSteadyStateAllocs(t *testing.T) {
	const n, ts = 512, 64
	const d = 3
	for _, cv := range []layout.Curve{layout.ZMorton, layout.GrayMorton, layout.Hilbert} {
		for _, alg := range []Alg{Strassen, Winograd} {
			rng := rand.New(rand.NewSource(9))
			ta := NewTiled(cv, d, ts, ts, n, n)
			tb := NewTiled(cv, d, ts, ts, n, n)
			tc := NewTiled(cv, d, ts, ts, n, n)
			fillRand(ta.Data, rng)
			fillRand(tb.Data, rng)
			ar := acquireArena(alg, 1<<d, 1<<d, 1<<d, ts, ts, ts, 1, 1)
			if ar == nil {
				t.Fatalf("%v/%v: no arena", alg, cv)
			}
			e := serialExec(t, "packed8x4", ar)
			c := &sched.Ctx{} // reused: worker-slot scratch persists across runs
			cm, am, bm := tc.Mat(), ta.Mat(), tb.Mat()
			allocs := testing.AllocsPerRun(2, func() {
				e.mul(c, alg, cm, am, bm)
			})
			if fb := ar.fallbackAllocs.Load(); fb != 0 {
				t.Errorf("%v/%v: %d arena fallbacks, want 0", alg, cv, fb)
			}
			releaseArena(ar)
			if allocs != 0 {
				t.Errorf("%v/%v: %.0f allocs/run, want 0", alg, cv, allocs)
			}
		}
	}
}

// TestArenaFallbackHeapAndCorrect starves the arena: with a workspace
// far too small for even one temporary, every newTemp falls back to the
// heap, the fallback counters record it, and the result is unchanged —
// the arena is an optimization, never a correctness boundary.
func TestArenaFallbackHeapAndCorrect(t *testing.T) {
	const n, ts = 64, 8
	const d = 3
	rng := rand.New(rand.NewSource(11))
	ta := NewTiled(layout.ZMorton, d, ts, ts, n, n)
	tb := NewTiled(layout.ZMorton, d, ts, ts, n, n)
	fillRand(ta.Data, rng)
	fillRand(tb.Data, rng)
	for _, alg := range []Alg{Standard8, Strassen, Winograd, StrassenLowMem} {
		want := NewTiled(layout.ZMorton, d, ts, ts, n, n)
		e1 := serialExec(t, "unrolled4", nil)
		e1.mul(&sched.Ctx{}, alg, want.Mat(), ta.Mat(), tb.Mat())

		got := NewTiled(layout.ZMorton, d, ts, ts, n, n)
		tiny := &arena{buf: make([]float64, 16), stacks: []arenaStack{{top: 0, limit: 16}}}
		e2 := serialExec(t, "unrolled4", tiny)
		e2.mul(&sched.Ctx{}, alg, got.Mat(), ta.Mat(), tb.Mat())

		if tiny.fallbackAllocs.Load() == 0 || tiny.fallbackElems.Load() == 0 {
			t.Fatalf("%v: starved arena recorded no fallbacks", alg)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%v: heap-fallback result diverges at %d: %g vs %g",
					alg, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestRangedEWMatchesSpec pins the devirtualized ranged element-wise
// cores — including the Gray-Morton two-segment rotation split and the
// Hilbert permutation loop — against the closure specification
// (tileIndexMap), across awkward chunk boundaries that straddle the
// rotation wrap point.
func TestRangedEWMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, cv := range []layout.Curve{layout.ZMorton, layout.GrayMorton, layout.Hilbert} {
		for _, tiles := range []int{1, 2, 8} {
			no := cv.Orientations()
			for from := 0; from < no; from++ {
				for to := 0; to < no; to++ {
					mk := func(o int) Mat {
						m := Mat{tiles: tiles, tr: 4, tc: 4, curve: cv, orient: layout.Orient(o)}
						m.data = make([]float64, m.elems())
						fillRand(m.data, rng)
						return m
					}
					dst, a, b := mk(from), mk(to), mk((from+to)%no)
					nt := tiles * tiles
					tsz := dst.tileElems()

					// Reference: the closure spec, tile by tile.
					want2 := append([]float64(nil), dst.data...)
					fa := tileIndexMap(dst, a)
					at := func(f func(int) int, s int) int {
						if f == nil {
							return s
						}
						return f(s)
					}
					for s := 0; s < nt; s++ {
						sa := at(fa, s)
						vAcc(want2[s*tsz:(s+1)*tsz], a.data[sa*tsz:(sa+1)*tsz])
					}
					// Candidate: ranged core over uneven chunks.
					got := Mat{data: append([]float64(nil), dst.data...),
						tiles: tiles, tr: 4, tc: 4, curve: cv, orient: layout.Orient(from)}
					ma := resolveTileMap(dst, a)
					for lo := 0; lo < nt; {
						hi := lo + 1 + rng.Intn(3)
						if hi > nt {
							hi = nt
						}
						ew2Tiles(got, a, ma, lo, hi, vAcc)
						lo = hi
					}
					for i := range want2 {
						if got.data[i] != want2[i] {
							t.Fatalf("%v tiles=%d %d→%d: ew2Tiles diverges at %d", cv, tiles, from, to, i)
						}
					}

					// Same for the three-operand core.
					want3 := append([]float64(nil), dst.data...)
					fb := tileIndexMap(dst, b)
					for s := 0; s < nt; s++ {
						sa, sb := at(fa, s), at(fb, s)
						vAdd(want3[s*tsz:(s+1)*tsz], a.data[sa*tsz:(sa+1)*tsz], b.data[sb*tsz:(sb+1)*tsz])
					}
					got3 := Mat{data: append([]float64(nil), dst.data...),
						tiles: tiles, tr: 4, tc: 4, curve: cv, orient: layout.Orient(from)}
					mb := resolveTileMap(dst, b)
					for lo := 0; lo < nt; {
						hi := lo + 1 + rng.Intn(3)
						if hi > nt {
							hi = nt
						}
						ew3Tiles(got3, a, b, ma, mb, lo, hi, vAdd)
						lo = hi
					}
					for i := range want3 {
						if got3.data[i] != want3[i] {
							t.Fatalf("%v tiles=%d %d→%d: ew3Tiles diverges at %d", cv, tiles, from, to, i)
						}
					}
				}
			}
		}
	}
}

// TestEWParallelStreamsMatchSerial forces the pool-parallel element-wise
// path (ewMin=1 splits every pass, serialCutoff=1 spawns at every
// level) and checks the result against the plain serial execution, over
// the orientation-resolving curves. Under `go test -race` this also
// exercises the claim that chunked streams and per-worker arena stacks
// never race.
func TestEWParallelStreamsMatchSerial(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	const n, ts = 128, 16
	const d = 3
	rng := rand.New(rand.NewSource(17))
	for _, cv := range []layout.Curve{layout.GrayMorton, layout.Hilbert} {
		for _, alg := range []Alg{Standard8, Strassen, Winograd} {
			ta := NewTiled(cv, d, ts, ts, n, n)
			tb := NewTiled(cv, d, ts, ts, n, n)
			fillRand(ta.Data, rng)
			fillRand(tb.Data, rng)

			want := NewTiled(cv, d, ts, ts, n, n)
			es := serialExec(t, "unrolled4", nil)
			es.mul(&sched.Ctx{}, alg, want.Mat(), ta.Mat(), tb.Mat())

			got := NewTiled(cv, d, ts, ts, n, n)
			ar := acquireArena(alg, 1<<d, 1<<d, 1<<d, ts, ts, ts, 1, pool.Workers())
			impl, err := leaf.GetImpl("unrolled4")
			if err != nil {
				t.Fatal(err)
			}
			ep := &exec{kern: impl.Kern, skern: impl.Scratch,
				serialCutoff: 1, fastCutoff: 1, ar: ar, ewMin: 1}
			cm, am, bm := got.Mat(), ta.Mat(), tb.Mat()
			if _, _, err := pool.Run(func(c *sched.Ctx) { ep.mul(c, alg, cm, am, bm) }); err != nil {
				t.Fatalf("%v/%v: %v", alg, cv, err)
			}
			releaseArena(ar)
			da := matrix.FromSlice(want.Data, len(want.Data), 1, len(want.Data))
			db := matrix.FromSlice(got.Data, len(got.Data), 1, len(got.Data))
			if !matrix.Equal(da, db, 1e-9) {
				t.Fatalf("%v/%v: parallel streams diverge (max diff %g)",
					alg, cv, matrix.MaxAbsDiff(da, db))
			}
		}
	}
}

// TestTileCoordsMatchesSInverse pins the memoized Pack/Unpack
// coordinate table against the direct curve walk.
func TestTileCoordsMatchesSInverse(t *testing.T) {
	for _, cv := range []layout.Curve{layout.UMorton, layout.XMorton, layout.ZMorton, layout.GrayMorton, layout.Hilbert} {
		for _, d := range []uint{0, 1, 3, 5} {
			coords := tileCoords(cv, d)
			if coords == nil {
				t.Fatalf("%v d=%d: no table", cv, d)
			}
			side := 1 << d
			if len(coords) != side*side {
				t.Fatalf("%v d=%d: table has %d entries", cv, d, len(coords))
			}
			for s := range coords {
				ti, tj := cv.SInverse(uint64(s), d)
				if got := coords[s]; got != ti<<16|tj {
					t.Fatalf("%v d=%d s=%d: table (%d,%d), SInverse (%d,%d)",
						cv, d, s, got>>16, got&0xffff, ti, tj)
				}
			}
			// Memoized: the second lookup returns the identical table.
			again := tileCoords(cv, d)
			if &again[0] != &coords[0] {
				t.Fatalf("%v d=%d: table not memoized", cv, d)
			}
		}
	}
	if tileCoords(layout.ZMorton, maxCoordDepth+1) != nil {
		t.Fatal("out-of-range depth should decline the cache")
	}
}

// TestStressArenaBudgetLadder runs multiplications under fault
// injection (including the "core.arena" reservation hook) with a
// MemBudget that forces ladder decisions: every outcome must be a
// correct result, an ErrMemBudget rejection, or an injected fault
// surfaced as a typed error — never a panic and never a wrong answer.
func TestStressArenaBudgetLadder(t *testing.T) {
	defer stressFaults()()
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(19))
	n := 96
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	want := refProduct(n, A, B)

	budgets := []int64{1 << 10, 500_000, 1 << 22, 0}
	for i := 0; i < 24; i++ {
		C := matrix.New(n, n)
		opts := Options{Curve: layout.GrayMorton, Alg: []Alg{Strassen, Winograd}[i%2],
			ForceTile: 16, MemBudget: budgets[i%len(budgets)]}
		stats, err := GEMM(pool, opts, false, false, 1, A, B, 0, C)
		if err == nil {
			if !matrix.Equal(C, want, 1e-10) {
				t.Fatalf("iter %d: successful run is wrong (max diff %g)", i, matrix.MaxAbsDiff(C, want))
			}
			if stats.AllocBytes < 0 || stats.ArenaBytes < 0 {
				t.Fatalf("iter %d: negative byte accounting", i)
			}
			continue
		}
		var fault *faultinject.Fault
		if !errors.Is(err, ErrMemBudget) && !errors.As(err, &fault) {
			t.Fatalf("iter %d: error is neither ErrMemBudget nor *Fault: %v", i, err)
		}
	}
}
