package core

import (
	"repro/internal/layout"
	"repro/internal/tile"
)

// This file chooses the recursion geometry for the table-driven
// ⟨m,k,n⟩ algorithms and resolves the AlgAuto per-shape selection.
//
// A rectangular table divides the three tile grids by M, K, N per
// level, so its natural geometry is mixed-radix: gm = M^l·2^d,
// gk = K^l·2^d, gn = N^l·2^d — l table levels, then d levels of the
// square power-of-two base algorithm. The chooser enumerates (l, d)
// pairs whose tile sizes land in the configured range and scores each
// by a padded-flop model; the same model prices the ⟨2,2,2⟩ family so
// AlgAuto can compare candidates on equal footing. The model is the
// standard fast-algorithm recurrence: the leaves do
// 2·R^l·7^d·tm·tk·tn flops (R products per table level, 7 per
// Strassen-family level below), with a mild efficiency penalty for
// tiles below the sweet spot — exactly the padding-vs-flop-ratio
// trade the paper's Section 5 measures for the quadrant algorithms.

// tableGeom is one chosen mixed-radix geometry.
type tableGeom struct {
	l          int  // table levels
	d          uint // power-of-two levels below
	gm, gk, gn int  // grid extents: M^l·2^d etc.
	tm, tk, tn int  // tile sizes
	cost       float64
}

const maxGeomDim = int64(1) << 31

// geomCost scores a candidate: modeled leaf flops over a leaf-
// efficiency factor that ramps linearly below the sweet tile size.
func geomCost(products float64, tm, tk, tn, sweet int) float64 {
	flops := 2 * products * float64(tm) * float64(tk) * float64(tn)
	t := tm
	if tk < t {
		t = tk
	}
	if tn < t {
		t = tn
	}
	eff := 1.0
	if sweet > 0 && t < sweet {
		eff = float64(t) / float64(sweet)
	}
	return flops / eff
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// chooseTableGeom picks the best mixed-radix geometry (l ≥ 1) for tb on
// an m×k×n block, or ok=false when no candidate keeps every tile inside
// [TMin, TMax] — the caller then falls back to the square power-of-two
// geometry, where the engine hands the whole grid to tb.Base.
func chooseTableGeom(tb *Table, cfg tile.Config, m, k, n int) (tableGeom, bool) {
	var best tableGeom
	ok := false
	rl := float64(tb.R)
	gm0, gk0, gn0 := tb.M, tb.K, tb.N
	for l := 1; l <= 8; l++ {
		if gm0 > m && gk0 > k && gn0 > n {
			break
		}
		p7 := rl
		gm, gk, gn := gm0, gk0, gn0
		for d := uint(0); d <= 20; d++ {
			if int64(gm) > int64(m)*2 && int64(gk) > int64(k)*2 && int64(gn) > int64(n)*2 {
				break
			}
			tm, tk, tn := ceilDiv(m, gm), ceilDiv(k, gk), ceilDiv(n, gn)
			inRange := func(t int) bool { return t >= cfg.TMin && t <= cfg.TMax }
			if inRange(tm) && inRange(tk) && inRange(tn) &&
				int64(gm)*int64(tm) < maxGeomDim && int64(gk)*int64(tk) < maxGeomDim &&
				int64(gn)*int64(tn) < maxGeomDim {
				c := geomCost(p7, tm, tk, tn, cfg.TSweet)
				if !ok || c < best.cost {
					best = tableGeom{l: l, d: d, gm: gm, gk: gk, gn: gn, tm: tm, tk: tk, tn: tn, cost: c}
					ok = true
				}
			}
			gm, gk, gn = gm*2, gk*2, gn*2
			p7 *= 7
		}
		gm0, gk0, gn0 = gm0*tb.M, gk0*tb.K, gn0*tb.N
		rl *= float64(tb.R)
	}
	return best, ok
}

// fastSquareCost prices the ⟨2,2,2⟩ family (Winograd on the square
// power-of-two geometry) on an m×k×n block with the same model
// chooseTableGeom uses, so AlgAuto compares like against like.
func fastSquareCost(cfg tile.Config, m, k, n int) float64 {
	best := -1.0
	p7 := 1.0
	for d := uint(0); d <= 24; d++ {
		g := 1 << d
		tm, tk, tn := ceilDiv(m, g), ceilDiv(k, g), ceilDiv(n, g)
		if tm <= cfg.TMax && tk <= cfg.TMax && tn <= cfg.TMax {
			c := geomCost(p7, tm, tk, tn, cfg.TSweet)
			if best < 0 || c < best {
				best = c
			}
		}
		if tm == 1 && tk == 1 && tn == 1 {
			break
		}
		p7 *= 7
	}
	return best
}

// selectAlg resolves AlgAuto for an m×k×n multiplication: Standard for
// small problems (recursion overhead and padding dominate any flop
// savings), otherwise the cheapest of Winograd and the rectangular
// table algorithms under the shared cost model. Rectangular tables are
// candidates only on canonical storage with free tile choice — on the
// recursive curves the quad-based grids hand them straight to their
// base, so they can never beat it. A table must undercut Winograd by a
// clear margin to be chosen: the model ignores constant-factor
// overheads of the generic engine, so near-ties go to the hand-tuned
// code.
// ResolveAlg is the exported form of the AlgAuto resolution for callers
// that must know the algorithm before the engine runs — the serving
// layer keys its plan cache and request coalescing on the resolved
// choice. It applies the same option defaults the driver would, so it
// answers exactly what a GEMM with these options on this shape will
// run (before any admission-control degradation).
func ResolveAlg(o Options, m, k, n int) Alg {
	return selectAlg((&o).withDefaults(), m, k, n)
}

func selectAlg(o Options, m, k, n int) Alg {
	if o.Alg != AlgAuto {
		return o.Alg
	}
	small := 4 * o.Tile.TSweet
	if m < small || k < small || n < small {
		return Standard
	}
	best := Winograd
	bestCost := fastSquareCost(o.Tile, m, k, n)
	if o.Curve == layout.ColMajor && o.ForceTile == 0 {
		for i, tb := range tableRegistry {
			if tb.M == 2 && tb.K == 2 && tb.N == 2 {
				continue
			}
			if g, ok := chooseTableGeom(tb, o.Tile, m, k, n); ok && g.cost < bestCost*0.97 {
				best, bestCost = tableAlgBase+Alg(i), g.cost
			}
		}
	}
	return best
}
