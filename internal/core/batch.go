package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/layout"
	"repro/internal/leaf"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/tile"
)

// This file implements the batched GEMM path: many small/skinny
// multiplications scheduled as ONE task wave over the work-stealing
// pool, instead of N independent driver calls. A per-call driver pays
// root-task injection, β-scaling, admission, arena reservation, and the
// pack/compute/unpack phase structure per multiplication; for the
// serving shape (thousands of items far below the serial cutoff) that
// overhead, not flops, bounds throughput. The wave pays admission and
// the arena reservation once, then lets min(items, workers) runner
// tasks pull items off a shared atomic counter — conversions run
// serially inside each item (an item task already executes on a pool
// worker, so it must never re-enter pool.RunCtx), and the items
// themselves are the parallelism.
//
// Per-item contract (identical to GEMMCtx, per member): an item that
// fails validation leaves its C untouched; once an item starts, its C
// is β-scaled up front, and on cancellation or panic it holds exactly
// the β-scaled inputs plus fully-unpacked completed block products —
// never a partial product. One member's failure never poisons its wave
// siblings: each item runs under its own recover, with its own error
// slot, honoring its own context at phase boundaries.

// BatchItem is one member of a GEMMBatch wave. Items may differ in
// shape, scalars, and transposition; the Cs of distinct items must not
// alias each other (they are written concurrently).
type BatchItem struct {
	TransA, TransB bool
	Alpha          float64
	A, B           *matrix.Dense
	Beta           float64
	C              *matrix.Dense
	// Ctx, when non-nil, cancels this item alone: an expired member is
	// dropped from the wave (typed error in its slot), not the wave
	// from the member. It is honored at item phase boundaries — an
	// item already inside its compute finishes that product first.
	// nil means the item lives exactly as long as the wave context.
	Ctx context.Context
	// TraceID, when non-zero, attributes this item's execution to a
	// request: the item's wave-item span carries it as its arg, and the
	// exporter links it to the matching request lane with flow events.
	TraceID int64
}

// PrepackedBatchItem is one member of a GEMMPrepackedBatch wave: a raw
// right-hand side multiplied against the wave's shared prepacked A
// plan. B's conversion into the plan-conforming layout is fused into
// the wave task itself (the "per-item B/C packing" of the batched
// serving design), so no per-item PrepackConforming call — and no
// per-item plan allocation — is needed.
type PrepackedBatchItem struct {
	TransB bool
	Alpha  float64
	B      *matrix.Dense
	Beta   float64
	C      *matrix.Dense
	Ctx    context.Context
	// TraceID attributes this item to a request, as in BatchItem.
	TraceID int64
}

// BatchStats extends Stats with wave-level accounting. The embedded
// Stats fields aggregate over the whole wave (ConvertBytes, Blocks,
// pool and scheduler counters); geometry fields describe the largest
// item admitted.
type BatchStats struct {
	Stats
	// Items counts the members scheduled into the wave (validation
	// rejects are excluded); Completed counts members that ran to
	// completion.
	Items, Completed int
}

// itemGeom is one item's chosen tiling and leaf kernel plus logical
// dimensions. The kernel is resolved per geometry, not once per wave:
// a heterogeneous wave must give each item the same kernel its
// single-call twin would pick, or the differential bit-exactness
// guarantee breaks on the items whose tile shape differs from the
// largest member's.
type itemGeom struct {
	d          uint
	tm, tk, tn int
	m, k, n    int
	kern       leaf.Kernel
	skern      leaf.ScratchKernel
	kname      string
}

// packedElems returns the item's packed-buffer footprint in elements:
// the three wave-owned tiled buffers a concurrently-executing item
// holds (op(A), op(B), product).
func (g itemGeom) packedElems() int64 {
	ss := int64(1) << (2 * g.d)
	return ss * (int64(g.tm)*int64(g.tk) + int64(g.tk)*int64(g.tn) + int64(g.tm)*int64(g.tn))
}

// waveWS is one runner task's buffer workspace: value Tiled headers
// over recycled pool buffers, plus the runner's private exec copy (so
// the per-item kernel can be swapped in without racing the other
// runners). Buffers persist across the items a runner executes — they
// are acquired on first use, regrown only when an item needs a larger
// size class, and returned to the pool once when the runner drains.
// Steady-state waves therefore perform zero allocations per item. bs
// is the prepacked wave's per-k-segment packed-B set.
type waveWS struct {
	e          exec
	ta, tb, tc Tiled
	bs         []Tiled
	stats      Stats
}

// waveExec carries one wave through its runner tasks.
type waveExec struct {
	e     *exec
	alg   Alg
	curve layout.Curve
	wctx  context.Context
	next  atomic.Int64
	errs  []error
	done  []bool
	ws    []waveWS
	// runItem executes one item on the calling runner; it must record
	// either errs[i] or done[i].
	runItem func(c *sched.Ctx, i int, ws *waveWS)
}

// run is the runner-task body: pull item indices off the shared counter
// until the wave is drained or cancelled. Items are claimed exactly
// once, so errs/done writes are race-free by construction.
func (wx *waveExec) run(c *sched.Ctx, r int) {
	ws := &wx.ws[r]
	ws.e = *wx.e
	defer wx.releaseWS(ws)
	for {
		if c.Cancelled() {
			return
		}
		i := int(wx.next.Add(1)) - 1
		if i >= len(wx.errs) {
			return
		}
		if wx.errs[i] != nil { // validation reject: never scheduled
			continue
		}
		wx.runOne(c, i, ws)
	}
}

// runOne wraps one item in its own recover boundary: a panic anywhere
// in the item's conversions or compute (including an aggregated
// *sched.TaskError re-raised from its nested parallel products) lands
// in the item's error slot and the runner moves on to the next item.
func (wx *waveExec) runOne(c *sched.Ctx, i int, ws *waveWS) {
	defer func() {
		if r := recover(); r != nil {
			wx.errs[i] = recoveredError(r)
		}
	}()
	wx.runItem(c, i, ws)
}

// releaseWS returns the runner's buffers to the recycling pool, once,
// when the runner drains (panic paths included via run's defer).
func (wx *waveExec) releaseWS(ws *waveWS) {
	putBuf(ws.tc.Data)
	ws.tc.Data = nil
	putBuf(ws.tb.Data)
	ws.tb.Data = nil
	putBuf(ws.ta.Data)
	ws.ta.Data = nil
	for j := range ws.bs {
		putBuf(ws.bs[j].Data)
		ws.bs[j].Data = nil
	}
}

// itemCtx resolves an item's cancellation scope.
func (wx *waveExec) itemCtx(ictx context.Context) context.Context {
	if ictx == nil {
		return wx.wctx
	}
	return ictx
}

// waveCause names why the wave's scheduler state is cancelled: the wave
// context's cause when it fired, otherwise the pool is closing.
func (wx *waveExec) waveCause() error {
	if err := context.Cause(wx.wctx); err != nil {
		return err
	}
	return sched.ErrPoolClosed
}

// notStarted and cancelledItem build the typed per-item errors.
func notStartedErr(i int, cause error) error {
	return fmt.Errorf("core: batch item %d not started: %w", i, cause)
}

func cancelledErr(i int, cause error) error {
	return fmt.Errorf("core: batch item %d cancelled: %w", i, cause)
}

// reshape rewrites a workspace Tiled's header for the next item while
// leaving Data alone — assigning a fresh struct literal would clobber
// the persisted buffer and defeat the cross-item reuse.
func (t *Tiled) reshape(curve layout.Curve, d uint, tr, tc, rows, cols int) {
	t.Curve, t.D, t.TR, t.TC, t.Rows, t.Cols = curve, d, tr, tc, rows, cols
}

// acquireInto sizes a workspace Tiled's buffer to exactly n elements,
// reusing the runner's existing buffer when its capacity suffices (the
// steady-state path — no pool traffic, no allocation) and recycling
// through the buffer pool only on growth.
func acquireInto(t *Tiled, stats *Stats, n int) {
	if cap(t.Data) >= n {
		t.Data = t.Data[:n]
		return
	}
	putBuf(t.Data)
	b, hit := getBuf(n)
	notePool(stats, hit)
	t.Data = b
}

// batchItemGeom validates one GEMMBatch item and chooses its tiling.
// Items multiply as single blocks (no Figure-3 wide/lean splitting):
// the batch path targets small and serving shapes, where splitting
// never triggers; an extreme-aspect item still computes correctly, it
// just pads more than a per-call GEMM would.
func batchItemGeom(o Options, it *BatchItem) (itemGeom, error) {
	if it.A == nil || it.B == nil || it.C == nil {
		return itemGeom{}, fmt.Errorf("core: batch item with nil operand")
	}
	if !isFinite(it.Alpha) || !isFinite(it.Beta) {
		return itemGeom{}, fmt.Errorf("%w: alpha=%v, beta=%v", ErrNonFinite, it.Alpha, it.Beta)
	}
	m, k := it.A.Rows, it.A.Cols
	if it.TransA {
		m, k = k, m
	}
	kb, n := it.B.Rows, it.B.Cols
	if it.TransB {
		kb, n = n, kb
	}
	if kb != k {
		return itemGeom{}, fmt.Errorf("%w: inner dimensions disagree: op(A) is %dx%d, op(B) is %dx%d", ErrDimension, m, k, kb, n)
	}
	if it.C.Rows != m || it.C.Cols != n {
		return itemGeom{}, fmt.Errorf("%w: C is %dx%d, want %dx%d", ErrDimension, it.C.Rows, it.C.Cols, m, n)
	}
	g := itemGeom{m: m, k: k, n: n}
	if m == 0 || k == 0 || n == 0 {
		return g, nil
	}
	var err error
	if g.d, g.tm, g.tk, g.tn, err = choose(o, m, k, n); err != nil {
		return itemGeom{}, err
	}
	if g.kern, g.skern, g.kname, err = resolveKernel(o, g.tm, g.tk, g.tn); err != nil {
		return itemGeom{}, err
	}
	return g, nil
}

// GEMMBatch computes C_i ← α_i·op(A_i)·op(B_i) + β_i·C_i for every item
// in one task wave over the pool: one admission/MemBudget charge for
// the wave (the packed-buffer term multiplied by the number of
// concurrently-executing items), one arena reservation sized by the
// largest item's depth-first path, per-item packing fused into the wave
// tasks, and the degradation ladder applied wave-wide.
//
// The returned errs has one slot per item (nil = success); err is
// non-nil only when the wave itself could not be scheduled (bad
// arguments, closed pool, admission rejection) — in that case no item
// ran and every C is untouched. A recursive layout is required; the
// canonical layouts have per-call conversion the batch path exists to
// avoid.
//
// When the wave has at least as many items as workers, items run
// serially inside (the wave itself saturates the pool, and suppressing
// nested spawns makes steady-state waves allocation-free per item);
// smaller waves of larger items keep nested parallelism.
func GEMMBatch(ctx context.Context, pool *sched.Pool, opts Options, items []BatchItem) (bs *BatchStats, errs []error, err error) {
	t0 := time.Now()
	tr := obs.Cur()
	var lane int32
	if tr != nil {
		lane = tr.NewLane()
	}
	defer func() {
		if tr != nil {
			tr.LaneSpan(lane, obs.KindGEMM, t0, time.Since(t0), 0)
		}
		recordBatchMetrics(opts.Metrics, bs, errs, err, time.Since(t0))
	}()
	defer func() {
		if r := recover(); r != nil {
			bs, errs, err = nil, nil, recoveredError(r)
		}
	}()
	o := opts.withDefaults()
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("core: GEMMBatch of zero items")
	}
	if o.Curve == layout.ColMajor || o.Curve == layout.RowMajor {
		return nil, nil, fmt.Errorf("core: GEMMBatch requires a recursive layout, got %v", o.Curve)
	}
	if pool == nil {
		p := sched.NewPool(0)
		defer p.Close()
		pool = p
	} else if pool.Closed() {
		return nil, nil, sched.ErrPoolClosed
	}
	if ctx.Err() != nil {
		return nil, nil, fmt.Errorf("core: GEMMBatch not started: %w", context.Cause(ctx))
	}

	errs = make([]error, len(items))
	geoms := make([]itemGeom, len(items))
	live := 0
	var maxG itemGeom
	var perPacked int64
	for i := range items {
		// Identical consecutive shapes (the common homogeneous batch)
		// reuse the previous item's tiling without re-running choose.
		if i > 0 && errs[i-1] == nil && items[i].A != nil && items[i-1].A != nil &&
			items[i].TransA == items[i-1].TransA && items[i].TransB == items[i-1].TransB &&
			items[i].A.Rows == items[i-1].A.Rows && items[i].A.Cols == items[i-1].A.Cols &&
			items[i].B.Rows == items[i-1].B.Rows && items[i].B.Cols == items[i-1].B.Cols &&
			items[i].C != nil && items[i-1].C != nil &&
			items[i].C.Rows == items[i-1].C.Rows && items[i].C.Cols == items[i-1].C.Cols &&
			isFinite(items[i].Alpha) && isFinite(items[i].Beta) {
			geoms[i] = geoms[i-1]
		} else {
			g, gerr := batchItemGeom(o, &items[i])
			if gerr != nil {
				errs[i] = gerr
				continue
			}
			geoms[i] = g
		}
		g := geoms[i]
		live++
		if p := g.packedElems(); p > perPacked {
			perPacked = p
		}
		if int64(g.tm)*int64(g.tn)<<(2*g.d) > int64(maxG.tm)*int64(maxG.tn)<<(2*maxG.d) {
			maxG = g
		}
	}
	if live == 0 || maxG.tm == 0 {
		// Nothing to schedule: every item failed validation or is empty.
		bs = &BatchStats{Items: live, Completed: live}
		for i := range items {
			if errs[i] == nil {
				items[i].C.Scale(items[i].Beta)
			}
		}
		return bs, errs, nil
	}

	scratchPer := 0
	arenaPer := func(alg Alg) int64 {
		var per int64
		for i := range geoms {
			if errs[i] != nil || geoms[i].tm == 0 {
				continue
			}
			g := geoms[i]
			if v := arenaStackElems(alg, 1<<g.d, 1<<g.d, 1<<g.d, g.tm, g.tk, g.tn, o.FastCutoff); v > per {
				per = v
			}
		}
		return per
	}
	for i := range geoms {
		if errs[i] != nil {
			continue
		}
		g := geoms[i]
		if s := g.tm*g.tk + g.tk*g.tn; s > scratchPer {
			scratchPer = s
		}
	}
	if o.Alg == AlgAuto {
		// The wave shares one algorithm (mixed waves would defeat the
		// arena sizing); resolve from the largest member's padded shape.
		o.Alg = selectAlg(o, maxG.tm<<maxG.d, maxG.tk<<maxG.d, maxG.tn<<maxG.d)
	}
	alg, serial, est, notes, err := admitWave(o, pool.Workers(), live, perPacked, scratchPer, arenaPer)
	if err != nil {
		return nil, nil, err
	}

	e := &exec{kern: maxG.kern, skern: maxG.skern, serialCutoff: o.SerialCutoff, fastCutoff: o.FastCutoff, ewMin: ewParMin,
		tr: tr, lane: lane}
	runners := live
	if w := pool.Workers(); runners > w {
		runners = w
	}
	stacks := pool.Workers()
	if serial {
		runners, stacks = 1, 1
		e.serialCutoff = 1 << 30
	} else if live >= pool.Workers() {
		// The wave saturates the pool by itself; nested spawns inside
		// items would only add task overhead and per-spawn closures.
		e.serialCutoff = 1 << 30
	}
	ar := acquireArenaElems(arenaPer(alg), stacks)
	defer releaseArena(ar)
	e.ar = ar
	if tr != nil {
		for range notes {
			tr.LaneInstant(lane, obs.KindDegrade, 0)
		}
		if ar != nil {
			tr.LaneInstant(lane, obs.KindArena, ar.bytes())
		}
	}

	wx := &waveExec{e: e, alg: alg, curve: o.Curve, wctx: ctx, errs: errs,
		done: make([]bool, len(items)), ws: make([]waveWS, runners)}
	wx.runItem = func(c *sched.Ctx, i int, ws *waveWS) {
		wx.runBatchItem(c, &items[i], geoms[i], i, ws)
	}

	bs = &BatchStats{Items: live}
	bs.Stats = Stats{Depth: maxG.d, TileM: maxG.tm, TileK: maxG.tk, TileN: maxG.tn,
		PaddedM: maxG.tm << maxG.d, PaddedK: maxG.tk << maxG.d, PaddedN: maxG.tn << maxG.d,
		Kernel: maxG.kname, Alg: alg, Serial: serial, Degraded: notes,
		EstimatedBytes: est, ArenaBytes: ar.bytes()}
	c0 := startCall(pool, t0)
	runWave(ctx, pool, wx, runners, bs)
	if ar != nil {
		bs.AllocBytes = 8 * ar.fallbackElems.Load()
	}
	finishStats(&bs.Stats, pool, c0)
	return bs, errs, nil
}

// runBatchItem executes one GEMMBatch member: β-scale, serial pack of
// both operands into recycled buffers, nested-parallel product, serial
// fused epilogue.
func (wx *waveExec) runBatchItem(c *sched.Ctx, it *BatchItem, g itemGeom, i int, ws *waveWS) {
	if tr := ws.e.tr; tr != nil {
		its := time.Now()
		defer func() {
			tr.Span(c.WorkerID(), obs.KindWaveItem, its, time.Since(its), it.TraceID)
		}()
	}
	ictx := wx.itemCtx(it.Ctx)
	if c.Cancelled() {
		wx.errs[i] = notStartedErr(i, wx.waveCause())
		return
	}
	if ierr := ictx.Err(); ierr != nil {
		wx.errs[i] = notStartedErr(i, context.Cause(ictx))
		return
	}
	// β up front: the item's atomicity anchor. Serial is fine — the
	// wave's parallelism is across items.
	it.C.Scale(it.Beta)
	if it.Alpha == 0 || g.m == 0 || g.n == 0 || g.k == 0 {
		wx.done[i] = true
		return
	}
	ss := 1 << (2 * g.d)
	ws.ta.reshape(wx.curve, g.d, g.tm, g.tk, g.m, g.k)
	acquireInto(&ws.ta, &ws.stats, ss*g.tm*g.tk)
	if err := ws.ta.packSerial(it.A, it.TransA, 1); err != nil {
		wx.errs[i] = err
		return
	}
	ws.tb.reshape(wx.curve, g.d, g.tk, g.tn, g.k, g.n)
	acquireInto(&ws.tb, &ws.stats, ss*g.tk*g.tn)
	if err := ws.tb.packSerial(it.B, it.TransB, 1); err != nil {
		wx.errs[i] = err
		return
	}
	ws.tc.reshape(wx.curve, g.d, g.tm, g.tn, g.m, g.n)
	acquireInto(&ws.tc, &ws.stats, ss*g.tm*g.tn)
	vZero(ws.tc.Data)
	ws.stats.ConvertBytes += 8 * int64(len(ws.ta.Data)+len(ws.tb.Data))
	if ierr := ictx.Err(); ierr != nil {
		wx.errs[i] = cancelledErr(i, context.Cause(ictx))
		return
	}
	if c.Cancelled() {
		wx.errs[i] = cancelledErr(i, wx.waveCause())
		return
	}
	ws.e.kern, ws.e.skern = g.kern, g.skern
	ws.e.mul(c, wx.alg, ws.tc.Mat(), ws.ta.Mat(), ws.tb.Mat())
	if c.Cancelled() {
		// The product may be partial — drop it; C stays exactly
		// β-scaled (the per-item atomicity contract).
		wx.errs[i] = cancelledErr(i, wx.waveCause())
		return
	}
	if ierr := ictx.Err(); ierr != nil {
		// Expired member: dropped from the wave before its epilogue,
		// leaving its C β-scaled; siblings are unaffected.
		wx.errs[i] = cancelledErr(i, context.Cause(ictx))
		return
	}
	ws.tc.unpackAccumulateSerial(it.C, it.Alpha)
	ws.stats.ConvertBytes += 8 * int64(len(ws.tc.Data))
	ws.stats.Blocks++
	wx.done[i] = true
}

// runWave submits the wave as one root task: the root spawns the runner
// tasks, which drain the shared item counter. Wave-level failures
// (outer-context cancellation, a fault injected into a runner task's
// frame outside any item's recover) are attributed only to items with
// no recorded outcome — completed members keep their results, errored
// members keep their own causes.
func runWave(ctx context.Context, pool *sched.Pool, wx *waveExec, runners int, bs *BatchStats) {
	t1 := time.Now()
	fns := make([]func(*sched.Ctx), runners)
	for r := 0; r < runners; r++ {
		r := r
		fns[r] = func(c *sched.Ctx) { wx.run(c, r) }
	}
	work, span, rerr := pool.RunCtx(ctx, func(c *sched.Ctx) { c.Parallel(fns...) })
	bs.Compute = time.Since(t1)
	bs.Work, bs.Span = work, span
	for i := range wx.errs {
		if wx.done[i] {
			bs.Completed++
			continue
		}
		if wx.errs[i] == nil {
			if rerr != nil {
				wx.errs[i] = fmt.Errorf("core: batch item %d aborted: %w", i, rerr)
			} else {
				wx.errs[i] = fmt.Errorf("core: batch item %d aborted before it ran", i)
			}
		}
	}
	for r := range wx.ws {
		s := &wx.ws[r].stats
		bs.ConvertBytes += s.ConvertBytes
		bs.Blocks += s.Blocks
		bs.PoolHits += s.PoolHits
		bs.PoolMisses += s.PoolMisses
		bs.PackReused += s.PackReused
	}
}

// GEMMPrepackedBatch computes C_i ← α_i·(plan A)·op(B_i) + β_i·C_i for
// every item in one wave: the shared A plan is packed once (at Prepack
// time), each item's B is packed into the plan-conforming geometry
// inside its wave task, and the product accumulates through the same
// pooled-tile fused epilogue GEMMPrepacked uses. Admission runs once
// for the wave with resident plan semantics — only the wave-owned
// per-item buffers (packed B, product tile) are charged, multiplied by
// the number of concurrently-executing items.
//
// Conformance per item: op(B_i) must have pa.Cols rows; the free
// dimension may vary per item (each gets its own tile width, chosen
// exactly as PrepackConforming would for an unsplit free dimension).
// Error semantics match GEMMBatch: errs per item, err only for
// wave-level scheduling failures.
func GEMMPrepackedBatch(ctx context.Context, pool *sched.Pool, opts Options, pa *Prepacked, items []PrepackedBatchItem) (bs *BatchStats, errs []error, err error) {
	t0 := time.Now()
	tr := obs.Cur()
	var lane int32
	if tr != nil {
		lane = tr.NewLane()
	}
	defer func() {
		if tr != nil {
			tr.LaneSpan(lane, obs.KindGEMM, t0, time.Since(t0), 0)
		}
		recordBatchMetrics(opts.Metrics, bs, errs, err, time.Since(t0))
	}()
	defer func() {
		if r := recover(); r != nil {
			bs, errs, err = nil, nil, recoveredError(r)
		}
	}()
	o := opts.withDefaults()
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("core: GEMMPrepackedBatch of zero items")
	}
	if pa == nil || pa.released {
		return nil, nil, fmt.Errorf("core: GEMMPrepackedBatch with nil or released plan")
	}
	if pool == nil {
		p := sched.NewPool(0)
		defer p.Close()
		pool = p
	} else if pool.Closed() {
		return nil, nil, sched.ErrPoolClosed
	}
	if ctx.Err() != nil {
		return nil, nil, fmt.Errorf("core: GEMMPrepackedBatch not started: %w", context.Cause(ctx))
	}

	d, tm, tk := pa.D, pa.TR, pa.TC
	nks := len(pa.CSegs)
	errs = make([]error, len(items))
	geoms := make([]itemGeom, len(items))
	live, maxTn := 0, 0
	var perPacked int64
	for i := range items {
		it := &items[i]
		if it.B == nil || it.C == nil {
			errs[i] = fmt.Errorf("core: batch item with nil operand")
			continue
		}
		if !isFinite(it.Alpha) || !isFinite(it.Beta) {
			errs[i] = fmt.Errorf("%w: alpha=%v, beta=%v", ErrNonFinite, it.Alpha, it.Beta)
			continue
		}
		kb, n := it.B.Rows, it.B.Cols
		if it.TransB {
			kb, n = n, kb
		}
		if kb != pa.Cols {
			errs[i] = fmt.Errorf("%w: op(B) has %d rows, plan's inner dimension is %d", ErrDimension, kb, pa.Cols)
			continue
		}
		if it.C.Rows != pa.Rows || it.C.Cols != n {
			errs[i] = fmt.Errorf("core: C is %dx%d, want %dx%d", it.C.Rows, it.C.Cols, pa.Rows, n)
			continue
		}
		if n == 0 {
			geoms[i] = itemGeom{d: d, tm: tm, tk: tk, m: pa.Rows, k: pa.Cols}
			live++
			continue
		}
		// The conforming free-dimension tile, chosen exactly as
		// PrepackConforming does for an unsplit free dimension: ceil
		// division by the grid side, micro-rounded when the extra
		// padding stays within the configured slack.
		tn := (n + (1 << d) - 1) >> d
		if mu := o.Tile.MicroN; mu > 0 && tn%mu != 0 {
			rounded := tn + mu - tn%mu
			if float64(rounded<<d) <= float64(n)*(1+o.Tile.PadSlack) {
				tn = rounded
			}
		}
		if _, _, _, derr := paddedDims(d, tm, tk, tn); derr != nil {
			errs[i] = derr
			continue
		}
		g := itemGeom{d: d, tm: tm, tk: tk, tn: tn, m: pa.Rows, k: pa.Cols, n: n}
		// Per-tile-width kernel, as GEMMPrepacked would resolve for a
		// conforming plan of this width (bit-exactness vs the looped
		// form); consecutive same-width items reuse the lookup.
		if i > 0 && errs[i-1] == nil && geoms[i-1].tn == tn && geoms[i-1].kname != "" {
			g.kern, g.skern, g.kname = geoms[i-1].kern, geoms[i-1].skern, geoms[i-1].kname
		} else if g.kern, g.skern, g.kname, err = resolveKernel(o, tm, tk, tn); err != nil {
			errs[i], err = err, nil
			continue
		}
		geoms[i] = g
		live++
		if tn > maxTn {
			maxTn = tn
		}
		ss := int64(1) << (2 * d)
		if p := ss * int64(tn) * (int64(tk)*int64(nks) + int64(tm)); p > perPacked {
			perPacked = p
		}
	}
	if live == 0 || maxTn == 0 {
		bs = &BatchStats{Items: live, Completed: live}
		for i := range items {
			if errs[i] == nil {
				items[i].C.Scale(items[i].Beta)
			}
		}
		return bs, errs, nil
	}

	kern, skern, kname, err := resolveKernel(o, tm, tk, maxTn)
	if err != nil {
		return nil, nil, err
	}
	arenaPer := func(alg Alg) int64 {
		return arenaStackElems(alg, 1<<d, 1<<d, 1<<d, tm, tk, maxTn, o.FastCutoff)
	}
	if o.Alg == AlgAuto {
		sel := o
		sel.Curve = pa.Curve
		o.Alg = selectAlg(sel, pa.Rows, pa.Cols, maxTn<<d)
	}
	alg, serial, est, notes, err := admitWave(o, pool.Workers(), live, perPacked, tm*tk+tk*maxTn, arenaPer)
	if err != nil {
		return nil, nil, err
	}

	e := &exec{kern: kern, skern: skern, serialCutoff: o.SerialCutoff, fastCutoff: o.FastCutoff, ewMin: ewParMin,
		tr: tr, lane: lane}
	runners := live
	if w := pool.Workers(); runners > w {
		runners = w
	}
	stacks := pool.Workers()
	if serial {
		runners, stacks = 1, 1
		e.serialCutoff = 1 << 30
	} else if live >= pool.Workers() {
		e.serialCutoff = 1 << 30
	}
	ar := acquireArenaElems(arenaPer(alg), stacks)
	defer releaseArena(ar)
	e.ar = ar
	if tr != nil {
		for range notes {
			tr.LaneInstant(lane, obs.KindDegrade, 0)
		}
		if ar != nil {
			tr.LaneInstant(lane, obs.KindArena, ar.bytes())
		}
	}

	wx := &waveExec{e: e, alg: alg, curve: pa.Curve, wctx: ctx, errs: errs,
		done: make([]bool, len(items)), ws: make([]waveWS, runners)}
	for r := range wx.ws {
		wx.ws[r].bs = make([]Tiled, nks)
	}
	wx.runItem = func(c *sched.Ctx, i int, ws *waveWS) {
		wx.runPrepackedItem(c, pa, &items[i], geoms[i], i, ws)
	}

	bs = &BatchStats{Items: live}
	bs.Stats = Stats{Depth: d, TileM: tm, TileK: tk, TileN: maxTn,
		PaddedM: tm << d, PaddedK: tk << d, PaddedN: maxTn << d,
		Kernel: kname, Alg: alg, Serial: serial, Degraded: notes,
		EstimatedBytes: est, ArenaBytes: ar.bytes()}
	c0 := startCall(pool, t0)
	runWave(ctx, pool, wx, runners, bs)
	if ar != nil {
		bs.AllocBytes = 8 * ar.fallbackElems.Load()
	}
	finishStats(&bs.Stats, pool, c0)
	return bs, errs, nil
}

// runPrepackedItem executes one GEMMPrepackedBatch member: β-scale,
// serial pack of the conforming right-hand side (one tile set per plan
// k-segment), one pooled product tile per plan row-segment accumulated
// over the k-segments, serial fused epilogue per output block — the
// wave-task form of GEMMPrepacked's prepackedBlock loop.
func (wx *waveExec) runPrepackedItem(c *sched.Ctx, pa *Prepacked, it *PrepackedBatchItem, g itemGeom, i int, ws *waveWS) {
	if tr := ws.e.tr; tr != nil {
		its := time.Now()
		defer func() {
			tr.Span(c.WorkerID(), obs.KindWaveItem, its, time.Since(its), it.TraceID)
		}()
	}
	ictx := wx.itemCtx(it.Ctx)
	if c.Cancelled() {
		wx.errs[i] = notStartedErr(i, wx.waveCause())
		return
	}
	if ierr := ictx.Err(); ierr != nil {
		wx.errs[i] = notStartedErr(i, context.Cause(ictx))
		return
	}
	it.C.Scale(it.Beta)
	if it.Alpha == 0 || g.n == 0 {
		wx.done[i] = true
		return
	}
	ws.e.kern, ws.e.skern = g.kern, g.skern
	ss := 1 << (2 * g.d)
	for s := range pa.CSegs {
		ks := pa.CSegs[s]
		ws.bs[s].reshape(pa.Curve, g.d, g.tk, g.tn, ks.Len, g.n)
		acquireInto(&ws.bs[s], &ws.stats, ss*g.tk*g.tn)
		bv := opView(it.B, it.TransB, ks, tile.Seg{Off: 0, Len: g.n})
		if err := ws.bs[s].packSerial(bv, it.TransB, 1); err != nil {
			wx.errs[i] = err
			return
		}
		ws.stats.ConvertBytes += 8 * int64(len(ws.bs[s].Data))
	}
	ws.tc.reshape(pa.Curve, g.d, g.tm, g.tn, 0, 0)
	acquireInto(&ws.tc, &ws.stats, ss*g.tm*g.tn)
	for bi, sm := range pa.RSegs {
		if ierr := ictx.Err(); ierr != nil {
			wx.errs[i] = cancelledErr(i, context.Cause(ictx))
			return
		}
		if c.Cancelled() {
			wx.errs[i] = cancelledErr(i, wx.waveCause())
			return
		}
		ws.tc.Rows, ws.tc.Cols = sm.Len, g.n
		vZero(ws.tc.Data)
		cm := ws.tc.Mat()
		for ki := range pa.CSegs {
			if c.Cancelled() {
				wx.errs[i] = cancelledErr(i, wx.waveCause())
				return
			}
			ws.e.mul(c, wx.alg, cm, pa.Block(bi, ki).Mat(), ws.bs[ki].Mat())
			ws.stats.PackReused++
			ws.stats.Blocks++
		}
		if c.Cancelled() {
			wx.errs[i] = cancelledErr(i, wx.waveCause())
			return
		}
		if ierr := ictx.Err(); ierr != nil {
			wx.errs[i] = cancelledErr(i, context.Cause(ictx))
			return
		}
		Cv := it.C.View(sm.Off, 0, sm.Len, g.n)
		ws.tc.unpackAccumulateSerial(Cv, it.Alpha)
		ws.stats.ConvertBytes += 8 * int64(len(ws.tc.Data))
	}
	wx.done[i] = true
}

// GEMMBatchStrided is the equal-shape form: count items laid out at
// fixed strides in three flat buffers, the dominant strided-batch
// calling convention of inference serving. Item i multiplies the m×k
// (k×m when transA) column-major matrix at a[i·strideA] with leading
// dimension lda, and so on for B and C; alpha and beta are shared.
// Views are built without copying and the batch runs through GEMMBatch.
func GEMMBatchStrided(ctx context.Context, pool *sched.Pool, opts Options, transA, transB bool,
	m, k, n int, alpha float64, a []float64, lda, strideA int, b []float64, ldb, strideB int,
	beta float64, cbuf []float64, ldc, strideC int, count int) (*BatchStats, []error, error) {

	if count <= 0 {
		return nil, nil, fmt.Errorf("core: GEMMBatchStrided of %d items", count)
	}
	if m < 0 || k < 0 || n < 0 {
		return nil, nil, fmt.Errorf("%w: %dx%dx%d", ErrDimension, m, k, n)
	}
	ar, ac := m, k
	if transA {
		ar, ac = k, m
	}
	br, bc := k, n
	if transB {
		br, bc = n, k
	}
	if err := checkStrided("A", a, ar, ac, lda, strideA, count); err != nil {
		return nil, nil, err
	}
	if err := checkStrided("B", b, br, bc, ldb, strideB, count); err != nil {
		return nil, nil, err
	}
	if err := checkStrided("C", cbuf, m, n, ldc, strideC, count); err != nil {
		return nil, nil, err
	}
	items := make([]BatchItem, count)
	for i := range items {
		items[i] = BatchItem{
			TransA: transA, TransB: transB, Alpha: alpha, Beta: beta,
			A: matrix.FromSlice(a[i*strideA:], ar, ac, lda),
			B: matrix.FromSlice(b[i*strideB:], br, bc, ldb),
			C: matrix.FromSlice(cbuf[i*strideC:], m, n, ldc),
		}
	}
	return GEMMBatch(ctx, pool, opts, items)
}

// checkStrided validates one strided-batch operand buffer: the leading
// dimension must cover the rows, the stride must separate items by at
// least one full matrix, and the last item must fit the buffer.
func checkStrided(name string, buf []float64, rows, cols, ld, stride, count int) error {
	if rows == 0 || cols == 0 {
		return nil
	}
	if ld < rows {
		return fmt.Errorf("%w: %s leading dimension %d < rows %d", ErrDimension, name, ld, rows)
	}
	foot := ld*(cols-1) + rows
	if stride < foot {
		return fmt.Errorf("%w: %s stride %d < item footprint %d", ErrDimension, name, stride, foot)
	}
	if need := (count-1)*stride + foot; need > len(buf) {
		return fmt.Errorf("%w: %s buffer holds %d elements, %d items at stride %d need %d",
			ErrDimension, name, len(buf), count, stride, need)
	}
	return nil
}

// recordBatchMetrics aggregates one finished wave into the registry:
// the wave counts as one gemm_call (recordCallMetrics), plus the
// batch-path counters — waves, items, per-item failures, and the wave
// size histogram that shows how much per-call overhead was amortized.
func recordBatchMetrics(m *obs.Registry, bs *BatchStats, errs []error, err error, wall time.Duration) {
	if m == nil {
		return
	}
	m.Counter(metricBatchCalls).Inc()
	var stats *Stats
	if bs != nil {
		stats = &bs.Stats
		m.Counter(metricBatchItems).Add(int64(bs.Items))
		m.Histogram(metricBatchSize, obs.BatchBuckets).Observe(float64(bs.Items))
	}
	var nerr int64
	for _, e := range errs {
		if e != nil {
			nerr++
		}
	}
	if nerr > 0 {
		m.Counter(metricBatchErrors).Add(nerr)
	}
	recordCallMetrics(m, stats, err, wall)
}
