package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/tile"
)

// This file implements prepacked operand plans: the third layer of the
// amortized-conversion design. Section 4's accounting charges the
// column-major ⇄ recursive-layout conversion to every call; a Prepacked
// plan pays it once and serves arbitrarily many multiplications — the
// serving pattern (fixed weights, streaming right-hand sides) where the
// conversion of the large reused operand would otherwise dominate the
// small per-call flop count. Benson & Ballard (SPAA 2015) amortize
// operand packing the same way across repeated fast multiplications.

// Prepacked is an operand converted to a recursive layout once, for use
// in many GEMMPrepacked calls. It stores the operand's wide/lean
// segment decomposition (Figure 3) and one Tiled per segment pair, all
// blocks sharing a single (curve, depth, tile-shape) geometry so that
// any two conforming plans can multiply without re-packing.
//
// A plan is immutable after creation and safe for concurrent use; it
// stays valid until Release returns its buffers to the recycling pool.
type Prepacked struct {
	// Curve, D, TR, TC are the shared geometry of every block: tiles
	// are TR×TC on a 2^D × 2^D grid ordered along Curve.
	Curve  layout.Curve
	D      uint
	TR, TC int
	// Rows and Cols are the logical extents of op(src) — transposition
	// requested at Prepack time is already folded into the layout.
	Rows, Cols int
	// RSegs and CSegs are the wide/lean segment decompositions of the
	// row and column dimensions; blocks[i*len(CSegs)+j] covers
	// (RSegs[i], CSegs[j]).
	RSegs, CSegs []tile.Seg
	blocks       []*Tiled
	released     bool
}

// choosePlan determines the shared (depth, tile-shape) geometry of a
// plan covering row/column segments of at most r×c — the two-dimensional
// analogue of choose. One Pick over the maximum segment lengths gives
// every block the same geometry, which is what makes two independently
// prepacked operands able to conform.
func choosePlan(o Options, r, c int) (d uint, tr, tc int, err error) {
	if o.ForceTile > 0 {
		t := o.ForceTile
		for _, dim := range []int{r, c} {
			need := uint(0)
			for need < 62 && (t<<need) < dim {
				need++
			}
			if (t << need) < dim {
				return 0, 0, 0, fmt.Errorf("%w: ForceTile=%d cannot cover %dx%d", ErrDimension, t, r, c)
			}
			if need > d {
				d = need
			}
		}
		tr, tc = t, t
	} else {
		ch := o.Tile.Pick(r, c)
		d, tr, tc = ch.D, ch.Tiles[0], ch.Tiles[1]
	}
	if _, _, _, err := paddedDims(d, tr, tc, tc); err != nil {
		return 0, 0, 0, err
	}
	return d, tr, tc, nil
}

// Prepack converts op(src) into a recursive-layout plan: segments from
// the same wide/lean decomposition GEMM would apply, one packed Tiled
// per segment pair, the requested transposition folded into the pack.
// Options select the curve, tile configuration, and splitting behavior;
// algorithm and kernel choices are deferred to GEMMPrepacked. The
// canonical layouts are rejected — they have no conversion to amortize.
//
// Two independently prepacked plans conform only when tile selection
// lands on the same inner-dimension geometry for both; for a streaming
// second operand use PrepackConforming, which adopts the first plan's
// geometry by construction.
func Prepack(ctx context.Context, pool *sched.Pool, opts Options, src *matrix.Dense, trans bool) (p *Prepacked, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, recoveredError(r)
		}
	}()
	o := opts.withDefaults()
	r, c, err := prepackShape(o, src, trans)
	if err != nil {
		return nil, err
	}
	rs := []tile.Seg{{Off: 0, Len: r}}
	cs := []tile.Seg{{Off: 0, Len: c}}
	if !o.DisableSplit && o.ForceTile == 0 {
		if o.PartnerDim > 0 {
			// Serving plans know their partners' free dimension: split
			// exactly as a direct GEMM of that shape would, then bias
			// the segment length down to a power-of-two multiple of
			// TSweet so every block tiles at the sweet size with a
			// power-of-two grid — the grid granularity is what a skinny
			// conforming partner must pad its free dimension to.
			short := r
			if c < short {
				short = c
			}
			if o.PartnerDim < short {
				short = o.PartnerDim
			}
			if short < o.Tile.TMin {
				short = o.Tile.TMin
			}
			maxLen := int(float64(short) * o.Tile.Alpha())
			if ts := o.Tile.TSweet; ts > 0 && maxLen >= ts {
				g := ts
				for g*2 <= maxLen {
					g *= 2
				}
				maxLen = g
			}
			rs, cs = tile.SplitDim(r, maxLen), tile.SplitDim(c, maxLen)
		} else {
			// The operand's own decomposition, with the unknown third
			// GEMM dimension taken as the row extent (a squat peer);
			// conformance with the partner plan is validated at multiply
			// time.
			rs, cs, _ = o.Tile.SplitDims(r, c, r)
		}
	}
	d, tr, tc, err := choosePlan(o, maxSegLen(rs), maxSegLen(cs))
	if err != nil {
		return nil, err
	}
	return packPlan(ctx, pool, o.Curve, d, tr, tc, rs, cs, src, trans)
}

// PrepackConforming packs op(src) as the right-hand operand of a plan
// that already fixed the inner dimension's geometry: depth, row tiling,
// and row segments are taken from like (like's columns are the shared
// k dimension), so GEMMPrepacked(…, like, result, …) conforms by
// construction. This is the entry point for the serving pattern — the
// big fixed operand is Prepacked once, each streaming right-hand side
// is PrepackConforming'd against it.
func PrepackConforming(ctx context.Context, pool *sched.Pool, opts Options, src *matrix.Dense, trans bool, like *Prepacked) (p *Prepacked, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, recoveredError(r)
		}
	}()
	if like == nil || like.released {
		return nil, fmt.Errorf("core: PrepackConforming against a nil or released plan")
	}
	o := opts.withDefaults()
	o.Curve = like.Curve
	r, c, err := prepackShape(o, src, trans)
	if err != nil {
		return nil, err
	}
	if r != like.Cols {
		return nil, fmt.Errorf("%w: operand has %d rows, plan's inner dimension is %d", ErrDimension, r, like.Cols)
	}
	rs := like.CSegs
	cs := []tile.Seg{{Off: 0, Len: c}}
	// The free (column) dimension splits independently of conformance;
	// keep lean operands whole, cut genuinely wide ones like SplitDim
	// would.
	if !o.DisableSplit && o.ForceTile == 0 {
		short := maxSegLen(rs)
		if c < short {
			short = c
		}
		if short < o.Tile.TMin {
			short = o.Tile.TMin
		}
		cs = tile.SplitDim(c, int(float64(short)*o.Tile.Alpha()))
	}
	d, tr := like.D, like.TC
	tc := (maxSegLen(cs) + (1 << d) - 1) >> d
	// The inherited depth can leave a skinny free dimension with tiles
	// too narrow for the register-blocked kernels. Rounding the tile
	// width up to the micro-kernel's column block trades zero padding
	// for full-speed leaves — but only when the extra padding stays
	// within the configured slack; a deep grid would otherwise multiply
	// the rounding by 2^d and swamp the kernel win with padded flops.
	if mu := o.Tile.MicroN; mu > 0 && tc%mu != 0 {
		rounded := tc + mu - tc%mu
		if float64(rounded<<d) <= float64(maxSegLen(cs))*(1+o.Tile.PadSlack) {
			tc = rounded
		}
	}
	if _, _, _, err := paddedDims(d, tr, tc, tc); err != nil {
		return nil, err
	}
	return packPlan(ctx, pool, o.Curve, d, tr, tc, rs, cs, src, trans)
}

// prepackShape validates the common Prepack preconditions and returns
// the logical op(src) extents.
func prepackShape(o Options, src *matrix.Dense, trans bool) (r, c int, err error) {
	if o.Curve == layout.ColMajor || o.Curve == layout.RowMajor {
		return 0, 0, fmt.Errorf("core: Prepack requires a recursive layout, got %v", o.Curve)
	}
	r, c = src.Rows, src.Cols
	if trans {
		r, c = c, r
	}
	if r == 0 || c == 0 {
		return 0, 0, fmt.Errorf("%w: Prepack of empty %dx%d operand", ErrDimension, r, c)
	}
	return r, c, nil
}

func maxSegLen(segs []tile.Seg) int {
	m := 0
	for _, s := range segs {
		if s.Len > m {
			m = s.Len
		}
	}
	return m
}

// packPlan builds and fills a plan over fixed geometry and segments.
func packPlan(ctx context.Context, pool *sched.Pool, cv layout.Curve, d uint, tr, tc int,
	rs, cs []tile.Seg, src *matrix.Dense, trans bool) (p *Prepacked, err error) {

	if pool == nil {
		tp := sched.NewPool(0)
		defer tp.Close()
		pool = tp
	} else if pool.Closed() {
		return nil, sched.ErrPoolClosed
	}
	p = &Prepacked{Curve: cv, D: d, TR: tr, TC: tc, Rows: segsLen(rs), Cols: segsLen(cs),
		RSegs: rs, CSegs: cs, blocks: make([]*Tiled, len(rs)*len(cs))}
	defer func() {
		if err != nil {
			p.Release()
			p = nil
		}
	}()
	for i, sr := range rs {
		for j, sc := range cs {
			t := acquireTiled(nil, cv, d, tr, tc, sr.Len, sc.Len)
			p.blocks[i*len(cs)+j] = t
			sv := opView(src, trans, sr, sc)
			if err = t.Pack(ctx, pool, sv, trans, 1); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// segsLen returns the total extent a segment decomposition covers.
func segsLen(segs []tile.Seg) int {
	n := 0
	for _, s := range segs {
		n += s.Len
	}
	return n
}

// Block returns the packed Tiled covering (RSegs[i], CSegs[j]).
func (p *Prepacked) Block(i, j int) *Tiled { return p.blocks[i*len(p.CSegs)+j] }

// Bytes returns the total packed storage the plan holds.
func (p *Prepacked) Bytes() int64 {
	var n int64
	for _, b := range p.blocks {
		if b != nil {
			n += 8 * int64(len(b.Data))
		}
	}
	return n
}

// Release returns the plan's buffers to the recycling pool. The plan
// must not be used afterwards; Release is not safe to call concurrently
// with multiplications using the plan.
func (p *Prepacked) Release() {
	if p == nil || p.released {
		return
	}
	p.released = true
	for i, b := range p.blocks {
		releaseTiled(b)
		p.blocks[i] = nil
	}
}

// Transposed derives the plan of op(src)ᵀ entirely inside the recursive
// layout: block (i, j) of the result is the in-layout transpose of
// block (j, i), built with PackTransposeOf — the column-major source is
// never re-read. One Prepack plus one Transposed is how a symmetric
// product (SYRK's α·A·Aᵀ) serves both operand slots from a single
// conversion pass.
func (p *Prepacked) Transposed(ctx context.Context, pool *sched.Pool) (q *Prepacked, err error) {
	defer func() {
		if r := recover(); r != nil {
			q, err = nil, recoveredError(r)
		}
	}()
	if p.released {
		return nil, fmt.Errorf("core: Transposed of a released plan")
	}
	if pool == nil {
		tp := sched.NewPool(0)
		defer tp.Close()
		pool = tp
	} else if pool.Closed() {
		return nil, sched.ErrPoolClosed
	}
	q = &Prepacked{Curve: p.Curve, D: p.D, TR: p.TC, TC: p.TR, Rows: p.Cols, Cols: p.Rows,
		RSegs: p.CSegs, CSegs: p.RSegs, blocks: make([]*Tiled, len(p.blocks))}
	defer func() {
		if err != nil {
			q.Release()
			q = nil
		}
	}()
	for i, sr := range q.RSegs {
		for j, sc := range q.CSegs {
			t := acquireTiled(nil, q.Curve, q.D, q.TR, q.TC, sr.Len, sc.Len)
			q.blocks[i*len(q.CSegs)+j] = t
			if err = t.PackTransposeOf(ctx, pool, p.Block(j, i)); err != nil {
				return nil, err
			}
		}
	}
	return q, nil
}

// segsEqual reports whether two segment decompositions coincide.
func segsEqual(a, b []tile.Seg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GEMMPrepacked computes C ← α·A·B + β·C where A and B are prepacked
// plans (any transposition was folded at Prepack time). The operand
// conversion is gone from the call: per block, the driver zero-fills a
// pooled tiled C, accumulates the plan blocks' products into it, and
// folds α plus the accumulate into the unpack — so a steady-state call
// reports Stats.ConvertIn ≈ 0 (only the C zero-fill), ConvertBytes
// counting only the C epilogue, and PackReused counting every operand
// the plans served.
//
// The plans must conform: same curve and depth, pa's column tiling and
// segments equal to pb's row tiling and segments. Plans created by one
// Prepack call and its Transposed always conform; independently
// prepacked operands conform when tile selection lands on the same
// depth for the shared dimension (the default configuration's preferred
// tile size makes this the common case), and the call validates before
// touching C. Options select algorithm, kernel, and cutoffs; layout and
// tile options are ignored in favor of the plans' geometry, and
// MaxResidualGrowth is not applied (the probe needs column-major
// operands).
//
// The failure contract matches GEMMCtx: on error or cancellation C
// holds the β-scaled input plus fully completed block products only.
func GEMMPrepacked(ctx context.Context, pool *sched.Pool, opts Options, alpha float64,
	pa, pb *Prepacked, beta float64, C *matrix.Dense) (stats *Stats, err error) {

	// Same observability prologue as GEMMCtx: the tracer is captured
	// once per call, and the metrics defer is declared before the
	// recover boundary so it sees the final (stats, err) pair.
	t0 := time.Now()
	tr := obs.Cur()
	var lane int32
	if tr != nil {
		lane = tr.NewLane()
		if opts.TraceID != 0 {
			tr.LaneInstant(lane, obs.KindWaveItem, opts.TraceID)
		}
	}
	defer func() {
		if tr != nil {
			tr.LaneSpan(lane, obs.KindGEMM, t0, time.Since(t0), gemmSpanArg(stats))
		}
		recordCallMetrics(opts.Metrics, stats, err, time.Since(t0))
	}()
	defer func() {
		if r := recover(); r != nil {
			stats, err = nil, recoveredError(r)
		}
	}()
	o := opts.withDefaults()
	if pa == nil || pb == nil {
		return nil, fmt.Errorf("core: GEMMPrepacked with nil plan")
	}
	if pa.released || pb.released {
		return nil, fmt.Errorf("core: GEMMPrepacked with released plan")
	}
	if !isFinite(alpha) || !isFinite(beta) {
		return nil, fmt.Errorf("%w: alpha=%v, beta=%v", ErrNonFinite, alpha, beta)
	}
	if pa.Curve != pb.Curve {
		return nil, fmt.Errorf("core: plans disagree on layout: %v vs %v", pa.Curve, pb.Curve)
	}
	if pa.Cols != pb.Rows {
		return nil, fmt.Errorf("core: inner dimensions disagree: A plan is %dx%d, B plan is %dx%d",
			pa.Rows, pa.Cols, pb.Rows, pb.Cols)
	}
	if pa.D != pb.D || pa.TC != pb.TR {
		return nil, fmt.Errorf("core: plans do not conform on the inner dimension: "+
			"A packs k with %d-wide tiles at depth %d, B with %d-tall tiles at depth %d "+
			"(prepack the lean operand with DisableSplit, or derive one plan from the other with Transposed)",
			pa.TC, pa.D, pb.TR, pb.D)
	}
	if !segsEqual(pa.CSegs, pb.RSegs) {
		return nil, fmt.Errorf("core: plans split the inner dimension differently (%d vs %d segments); "+
			"prepack the lean operand with DisableSplit so the shared dimension stays in one segment",
			len(pa.CSegs), len(pb.RSegs))
	}
	if C.Rows != pa.Rows || C.Cols != pb.Cols {
		return nil, fmt.Errorf("core: C is %dx%d, want %dx%d", C.Rows, C.Cols, pa.Rows, pb.Cols)
	}
	if pool == nil {
		tp := sched.NewPool(0)
		defer tp.Close()
		pool = tp
	} else if pool.Closed() {
		return nil, sched.ErrPoolClosed
	}
	if ctx.Err() != nil {
		return nil, fmt.Errorf("core: GEMMPrepacked not started: %w", context.Cause(ctx))
	}

	d, tm, tk, tn := pa.D, pa.TR, pa.TC, pb.TC
	mp, kp, np, err := paddedDims(d, tm, tk, tn)
	if err != nil {
		return nil, err
	}
	kern, skern, kname, err := resolveKernel(o, tm, tk, tn)
	if err != nil {
		return nil, err
	}
	if o.Alg == AlgAuto {
		// Plans are always curve storage, so the rectangular tables are
		// never candidates here; the resolution picks Winograd or
		// Standard from the plan shape.
		sel := o
		sel.Curve = pa.Curve
		o.Alg = selectAlg(sel, pa.Rows, pa.Cols, pb.Cols)
	}
	// Admission with resident=true: the plans' packed operands were
	// allocated once, outside this call, and are charged to the plan —
	// only the pooled C tile and the arena count against the budget.
	alg, serial, est, notes, err := admit(o, pool.Workers(), mp, kp, np, tm, tk, tn, true)
	if err != nil {
		return nil, err
	}
	e := &exec{kern: kern, skern: skern, serialCutoff: o.SerialCutoff, fastCutoff: o.FastCutoff, ewMin: ewParMin,
		tr: tr, lane: lane}
	if serial {
		e.serialCutoff = 1 << 30
	}
	stacks := pool.Workers()
	if serial {
		stacks = 1
	}
	ar := acquireArena(alg, 1<<d, 1<<d, 1<<d, tm, tk, tn, e.fastCutoff, stacks)
	defer releaseArena(ar)
	e.ar = ar
	if tr != nil {
		for range notes {
			tr.LaneInstant(lane, obs.KindDegrade, 0)
		}
		if ar != nil {
			tr.LaneInstant(lane, obs.KindArena, ar.bytes())
		}
	}
	c0 := startCall(pool, t0)

	stats = &Stats{Depth: d, TileM: tm, TileK: tk, TileN: tn,
		PaddedM: mp, PaddedK: kp, PaddedN: np,
		Kernel: kname, Alg: alg, Serial: serial, Degraded: notes,
		EstimatedBytes: est, ArenaBytes: ar.bytes()}

	if C.Rows*C.Cols >= ewParMin && pool.Workers() > 1 {
		if serr := scaleCols(pool, C, beta); serr != nil {
			return nil, fmt.Errorf("core: GEMMPrepacked beta scale: %w", serr)
		}
	} else {
		C.Scale(beta)
	}
	if alpha == 0 {
		return stats, nil
	}

	total := len(pa.RSegs) * len(pb.CSegs) * len(pa.CSegs)
	for i, sm := range pa.RSegs {
		for j, sn := range pb.CSegs {
			if err := prepackedBlock(ctx, pool, e, stats, alg, alpha, pa, pb, i, j, sm, sn, C); err != nil {
				return nil, fmt.Errorf("core: GEMMPrepacked failed after %d of %d products: %w", stats.Blocks, total, err)
			}
		}
	}
	if ar != nil {
		stats.AllocBytes = 8 * ar.fallbackElems.Load()
	}
	finishStats(stats, pool, c0)
	return stats, nil
}

// prepackedBlock accumulates the (i, j) output block: a pooled tiled C
// is zero-filled, every k-segment product of the plans accumulates into
// it in the packed domain, and one fused epilogue folds α·result into
// Cv. Deferred release is safe: RunCtx and runChunks drain their tasks
// before returning, even on cancellation.
func prepackedBlock(ctx context.Context, pool *sched.Pool, e *exec, stats *Stats, alg Alg, alpha float64,
	pa, pb *Prepacked, i, j int, sm, sn tile.Seg, C *matrix.Dense) error {

	Cv := C.View(sm.Off, sn.Off, sm.Len, sn.Len)
	var tc *Tiled
	defer func() { releaseTiled(tc) }()
	t0 := time.Now()
	err := e.phase(ctx, obs.KindConvertIn, "recmat.convert-in", func() error {
		tc = acquireTiled(stats, pa.Curve, pa.D, pa.TR, pb.TC, sm.Len, sn.Len)
		return zeroFill(ctx, pool, tc.Data)
	})
	stats.ConvertIn += time.Since(t0)
	if err != nil {
		return err
	}

	cm := tc.Mat()
	for ki := range pa.CSegs {
		if ctx.Err() != nil {
			return fmt.Errorf("core: cancelled: %w", context.Cause(ctx))
		}
		am, bm := pa.Block(i, ki).Mat(), pb.Block(ki, j).Mat()
		t1 := time.Now()
		var work, span float64
		err := e.phase(ctx, obs.KindCompute, "recmat.compute", func() error {
			var rerr error
			work, span, rerr = pool.RunCtx(ctx, func(c *sched.Ctx) { e.mul(c, alg, cm, am, bm) })
			return rerr
		})
		stats.Compute += time.Since(t1)
		stats.Work += work
		if span > stats.Span {
			stats.Span = span
		}
		if err != nil {
			// Cv untouched: still exactly the β-scaled input.
			return err
		}
		stats.PackReused += 2
		stats.Blocks++
	}

	t2 := time.Now()
	err = e.phase(ctx, obs.KindConvertOut, "recmat.convert-out", func() error {
		// Background context: the epilogue must complete once started (the
		// β-scaled-or-complete atomicity contract).
		return tc.UnpackAccumulate(context.Background(), pool, Cv, alpha)
	})
	stats.ConvertOut += time.Since(t2)
	if err != nil {
		return err
	}
	stats.ConvertBytes += 8 * int64(len(tc.Data))
	return nil
}
