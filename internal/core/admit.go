package core

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// This file implements admission control and graceful degradation: the
// driver estimates the memory footprint of a block multiplication
// before allocating anything and, when a budget or numerical-error
// bound is exceeded, walks a degradation ladder toward cheaper, safer
// configurations instead of failing — recording every decision in
// Stats.Degraded. Only when even the smallest rung would bust the
// budget does the call fail, with ErrMemBudget, before any allocation.

// rung is one step of the degradation ladder: an algorithm plus a
// serial flag (serial execution caps the live temporaries at one
// depth-first path and drops the per-worker kernel scratch to a single
// worker's worth).
type rung struct {
	alg    Alg
	serial bool
}

// ladderFor returns the degradation ladder for a requested algorithm,
// most-capable rung first. The fast algorithms degrade through the
// paper's space-conserving sequential Strassen variant (three reused
// scratch quadrants per level) before giving up their sub-cubic flop
// count; the final rung is always the standard accumulate recursion,
// which needs no temporaries at all, run serially.
func ladderFor(a Alg) []rung {
	switch a {
	case Strassen, Winograd:
		return []rung{{a, false}, {StrassenLowMem, true}, {Standard, false}, {Standard, true}}
	case Standard8:
		return []rung{{Standard8, false}, {Standard, false}, {Standard, true}}
	case StrassenLowMem:
		// Already serial and space-conserving; the only cheaper rung is
		// the temporary-free standard recursion.
		return []rung{{StrassenLowMem, true}, {Standard, true}}
	default:
		if tableOf(a) != nil {
			// Table-driven algorithms degrade like the hand-coded fast
			// pair. (On a mixed-radix table grid only the first rung can
			// run; the driver reverts to the square geometry before
			// accepting a lower one.)
			return []rung{{a, false}, {StrassenLowMem, true}, {Standard, false}, {Standard, true}}
		}
		return []rung{{Standard, false}, {Standard, true}}
	}
}

// estimateBytes predicts the footprint of one block multiplication:
// the three packed operands, the scratch-arena reservation for the
// algorithm's temporaries, and the per-worker leaf packing scratch.
// The temporary term is no longer an estimate: it is exactly the
// workspace the driver reserves up front — arenaStackElems (one
// depth-first path's geometric series) times the number of arena
// stacks (one per worker, or one when serial). Admission therefore
// accounts the arena with one reservation, and a configuration that
// admits will not heap-allocate temporaries in steady state.
//
// A buffer recycled from the pool is exactly as resident as a fresh
// one, so pool hits are charged at full size. Only operands owned by a
// *Prepacked* plan are exempt (resident=true): the plan allocated them
// once, outside this call, and they stay live regardless of admission's
// verdict — charging them again would double-count and make a budget
// that admitted the prepack reject the multiplications it was built for.
func estimateBytes(alg Alg, workers, mp, kp, np, tm, tk, tn, fastCutoff int, serial, resident bool) int64 {
	ab := int64(mp) * int64(kp)
	bb := int64(kp) * int64(np)
	cb := int64(mp) * int64(np)
	packed := ab + bb + cb
	if resident {
		packed = cb
	}
	stacks := int64(workers)
	if serial {
		stacks = 1
	}
	temps := arenaStackElems(alg, mp/tm, kp/tk, np/tn, tm, tk, tn, fastCutoff) * stacks
	w := int64(workers)
	if serial {
		w = 1
	}
	scratch := w * int64(tm*tk+tk*tn)
	return 8 * (packed + temps + scratch)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// admit applies the memory budget: it returns the first rung of the
// requested algorithm's ladder whose estimated footprint fits
// o.MemBudget (the requested configuration when no budget is set),
// along with the estimate and a human-readable note per degradation.
// When no rung fits, it returns ErrMemBudget — admission control
// rejects the call before any allocation.
func admit(o Options, workers, mp, kp, np, tm, tk, tn int, resident bool) (Alg, bool, int64, []string, error) {
	ladder := ladderFor(o.Alg)
	requested := ladder[0]
	est := estimateBytes(requested.alg, workers, mp, kp, np, tm, tk, tn, o.FastCutoff, requested.serial, resident)
	if o.MemBudget <= 0 || est <= o.MemBudget {
		return requested.alg, requested.serial, est, nil, nil
	}
	var notes []string
	prev, prevEst := requested, est
	for _, r := range ladder[1:] {
		e := estimateBytes(r.alg, workers, mp, kp, np, tm, tk, tn, o.FastCutoff, r.serial, resident)
		notes = append(notes, fmt.Sprintf("mem-budget: %v%s estimated %s > budget %s; degraded to %v%s (estimated %s)",
			prev.alg, serialTag(prev.serial), fmtBytes(prevEst), fmtBytes(o.MemBudget),
			r.alg, serialTag(r.serial), fmtBytes(e)))
		if e <= o.MemBudget {
			return r.alg, r.serial, e, notes, nil
		}
		prev, prevEst = r, e
	}
	return 0, false, est, nil, fmt.Errorf("%w: smallest ladder rung (%v%s) estimated %s for %dx%dx%d still exceeds budget %s",
		ErrMemBudget, prev.alg, serialTag(prev.serial), fmtBytes(prevEst), mp, kp, np, fmtBytes(o.MemBudget))
}

// estimateWaveBytes is estimateBytes for a batched wave: the packed
// term is the largest member's wave-owned buffers multiplied by the
// number of members that can execute concurrently (min(items, workers);
// one when serial — a serial wave runs its members strictly in turn).
// The arena term is supplied per algorithm because the wave's
// reservation is the maximum single-item depth-first path over possibly
// heterogeneous member geometries, which only the caller can compute.
func estimateWaveBytes(alg Alg, workers, inflight int, perPacked int64, scratchPer int, arenaPer func(Alg) int64, serial bool) int64 {
	inf := int64(minInt(inflight, workers))
	stacks := int64(workers)
	w := int64(workers)
	if serial {
		inf, stacks, w = 1, 1, 1
	}
	return 8 * (perPacked*inf + arenaPer(alg)*stacks + w*int64(scratchPer))
}

// admitWave is admission control for a batched wave: one MemBudget
// charge for the whole batch, walking the same degradation ladder as
// admit — the entire wave degrades together (mixed-algorithm waves
// would defeat the shared arena sizing). When no rung fits even with
// members serialized, the wave is rejected with ErrMemBudget before any
// allocation, leaving every member's C untouched.
func admitWave(o Options, workers, inflight int, perPacked int64, scratchPer int, arenaPer func(Alg) int64) (Alg, bool, int64, []string, error) {
	ladder := ladderFor(o.Alg)
	requested := ladder[0]
	est := estimateWaveBytes(requested.alg, workers, inflight, perPacked, scratchPer, arenaPer, requested.serial)
	if o.MemBudget <= 0 || est <= o.MemBudget {
		return requested.alg, requested.serial, est, nil, nil
	}
	var notes []string
	prev, prevEst := requested, est
	for _, r := range ladder[1:] {
		e := estimateWaveBytes(r.alg, workers, inflight, perPacked, scratchPer, arenaPer, r.serial)
		notes = append(notes, fmt.Sprintf("mem-budget: wave of %d: %v%s estimated %s > budget %s; degraded to %v%s (estimated %s)",
			inflight, prev.alg, serialTag(prev.serial), fmtBytes(prevEst), fmtBytes(o.MemBudget),
			r.alg, serialTag(r.serial), fmtBytes(e)))
		if e <= o.MemBudget {
			return r.alg, r.serial, e, notes, nil
		}
		prev, prevEst = r, e
	}
	return 0, false, est, nil, fmt.Errorf("%w: smallest ladder rung (%v%s) estimated %s for a wave of %d items still exceeds budget %s",
		ErrMemBudget, prev.alg, serialTag(prev.serial), fmtBytes(prevEst), inflight, fmtBytes(o.MemBudget))
}

func serialTag(serial bool) string {
	if serial {
		return " (serial)"
	}
	return ""
}

// isFastAlg reports whether alg trades numerical stability for flops
// (the Strassen-like algorithms Benson & Ballard analyze): the
// hand-coded fast pair, their low-memory variant, and every table with
// rank below its partition volume.
func isFastAlg(a Alg) bool {
	if tb := tableOf(a); tb != nil {
		return tb.R < tb.M*tb.K*tb.N
	}
	return a == Strassen || a == Winograd || a == StrassenLowMem
}

// probeSize is the edge of the probe block used by the residual-growth
// check: big enough for three levels of fast recursion to manifest
// their error growth, small enough (2·32³ ≈ 65K flops per run) to be
// negligible next to the real multiplication.
const probeSize = 32

// probeResidualGrowth runs the chosen fast algorithm and the naive
// reference over a small probe block sampled from the top-left corner
// of op(A) and op(B), and returns the max-norm residual in units of the
// standard algorithm's error floor (machine epsilon × inner dimension ×
// |A|∞·|B|∞ of the probe). A value near 1 means the fast algorithm is
// behaving like the standard one on this data; Strassen-like error
// growth shows up as values of 10–100+. Returns 0 (never degrade) when
// the probe is degenerate (zero operands).
func probeResidualGrowth(e *exec, alg Alg, transA, transB bool, Av, Bv *matrix.Dense) float64 {
	// Probe grids: 4×4×4 quadrant recursion for the square algorithms,
	// ⟨2M,2K,2N⟩ for a rectangular table — one table level over the
	// square handoff, so the table's own products produce part of the
	// measured error. Tile sizes fill probeSize as far as the grid
	// divides it; the probe region shrinks to the grid-aligned extent
	// and the rest of the probeSize square stays zero on both sides of
	// the comparison.
	gm, gk, gn := 4, 4, 4
	if tb := tableOf(alg); tb != nil && !(tb.M == 2 && tb.K == 2 && tb.N == 2) {
		gm, gk, gn = 2*tb.M, 2*tb.K, 2*tb.N
	}
	tm, tk, tn := probeSize/gm, probeSize/gk, probeSize/gn
	pm, pk := opShape(Av, transA)
	pk2, pn := opShape(Bv, transB)
	if pk2 < pk {
		pk = pk2
	}
	pm, pk, pn = minInt(pm, gm*tm), minInt(pk, gk*tk), minInt(pn, gn*tn)
	pa, amax := sampleProbe(Av, transA, pm, pk)
	pb, bmax := sampleProbe(Bv, transB, pk, pn)
	scale := 2.220446049250313e-16 * float64(pk) * amax * bmax
	if scale == 0 {
		return 0
	}
	fast := matrix.New(probeSize, probeSize)
	ref := matrix.New(probeSize, probeSize)
	mk := func(x *matrix.Dense, gr, gc, tr, tc int) Mat {
		mt := Mat{data: x.Data, tiles: gr, tr: tr, tc: tc,
			ld: x.Stride, curve: layout.ColMajor}
		if gc != gr {
			mt.tilesc = gc
		}
		return mt
	}
	// Serial execution on an unbound Ctx: the recursion never spawns
	// (serialCutoff ≥ tiles) so no pool is needed, and the probe runs
	// with the same leaf kernel the real multiplication will use.
	pe := &exec{kern: e.kern, skern: e.skern, serialCutoff: 1 << 30, fastCutoff: 1}
	pe.mul(&sched.Ctx{}, alg, mk(fast, gm, gn, tm, tn), mk(pa, gm, gk, tm, tk), mk(pb, gk, gn, tk, tn))
	matrix.RefGEMM(false, false, 1, pa, pb, 0, ref)
	return matrix.MaxAbsDiff(fast, ref) / scale
}

func opShape(x *matrix.Dense, trans bool) (rows, cols int) {
	if trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sampleProbe copies the top-left rows×cols corner of op(src) into a
// zero-padded probeSize×probeSize matrix and returns it with the
// sample's max absolute value.
func sampleProbe(src *matrix.Dense, trans bool, rows, cols int) (*matrix.Dense, float64) {
	dst := matrix.New(probeSize, probeSize)
	var amax float64
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			var v float64
			if trans {
				v = src.Data[i*src.Stride+j]
			} else {
				v = src.Data[j*src.Stride+i]
			}
			dst.Data[j*dst.Stride+i] = v
			if v < 0 {
				v = -v
			}
			if v > amax {
				amax = v
			}
		}
	}
	return dst, amax
}
