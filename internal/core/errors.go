package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/sched"
)

// Sentinel errors of the multiplication driver. They classify every
// way a GEMM call can fail *as an error*; panics escaping the
// recursion are converted into *sched.TaskError at the public entry
// points, so no public API panics or returns garbage. Test with
// errors.Is.
var (
	// ErrNonFinite marks a NaN or infinite alpha/beta scalar. Blindly
	// scaling with a non-finite factor would silently poison C, so the
	// call is rejected up front.
	ErrNonFinite = errors.New("core: non-finite scalar")
	// ErrDimension marks a dimension or tiling request whose padded
	// extent would overflow or is absurdly large — the call is rejected
	// before any allocation happens.
	ErrDimension = errors.New("core: dimension out of range")
	// ErrMemBudget is returned when even the smallest-footprint rung of
	// the degradation ladder exceeds Options.MemBudget.
	ErrMemBudget = errors.New("core: memory budget exceeded")
)

// recoveredError converts a value recovered at a public API boundary
// into a typed error. Scheduler aggregates pass through unchanged (the
// worker-side stacks are already captured); a raw panic — e.g. from a
// conversion helper running outside the pool — is wrapped with the
// stack at the boundary.
func recoveredError(r any) error {
	switch e := r.(type) {
	case *sched.TaskError:
		return e
	case *sched.PanicError:
		return &sched.TaskError{Panics: []*sched.PanicError{e}}
	default:
		return &sched.TaskError{Panics: []*sched.PanicError{{Value: r, Stack: debug.Stack()}}}
	}
}

// paddedDims validates and computes the padded extents tm<<d, tk<<d,
// tn<<d of one block multiplication, rejecting tilings whose extents or
// operand footprints would overflow or exceed any plausible in-memory
// matrix. The bounds are generous (2^30 elements per side, 2^34
// elements per operand ≈ 128 GiB) — anything larger is a corrupted or
// adversarial request, not a workload.
func paddedDims(d uint, tm, tk, tn int) (mp, kp, np int, err error) {
	const (
		maxSide  = 1 << 30
		maxElems = int64(1) << 34
	)
	if tm <= 0 || tk <= 0 || tn <= 0 || d > 30 {
		return 0, 0, 0, fmt.Errorf("%w: tiling %dx%dx%d at depth %d", ErrDimension, tm, tk, tn, d)
	}
	for _, t := range [3]int{tm, tk, tn} {
		if t > maxSide>>d {
			return 0, 0, 0, fmt.Errorf("%w: padded extent %d<<%d overflows", ErrDimension, t, d)
		}
	}
	mp, kp, np = tm<<d, tk<<d, tn<<d
	if int64(mp)*int64(kp) > maxElems || int64(kp)*int64(np) > maxElems || int64(mp)*int64(np) > maxElems {
		return 0, 0, 0, fmt.Errorf("%w: padded operands %dx%d, %dx%d, %dx%d exceed %d elements",
			ErrDimension, mp, kp, kp, np, mp, np, maxElems)
	}
	return mp, kp, np, nil
}

// isFinite reports whether x is neither NaN nor ±Inf without importing
// math on the hot path (x-x is 0 for finite values, NaN otherwise).
func isFinite(x float64) bool { return x-x == 0 }
