// Package core implements the paper's central contribution: the three
// recursive matrix multiplication algorithms (standard, Strassen,
// Winograd — Section 2) executing over the recursive array layouts of
// Section 3, with the address computation embedded implicitly in the
// recursive control structure as described in Section 4.
//
// A matrix participating in a multiplication is either
//
//   - tiled: stored as a 2^d × 2^d grid of t_R × t_C column-major tiles,
//     the tiles ordered along one of the five recursive curves
//     (equation (3) of the paper); or
//   - canonical: an ordinary column-major array with a leading
//     dimension, padded to the same 2^d tile grid so that the identical
//     control structure runs over both (the L_C baseline of Section 5).
//
// The recursion never evaluates the S function per element: a quadrant
// descriptor (Mat) carries the base offset and, for the multi-orientation
// curves, the orientation; descending to a child quadrant is one table
// lookup and one offset addition. Tiles only acquire addresses when the
// recursion bottoms out, exactly as Section 4 prescribes.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/matrix"
)

// Mat describes one square sub-grid of tiles at some level of the
// recursion: either a contiguous run of recursively-ordered tiles or a
// strided view of a canonical (column-major) array. All three matrices
// of a multiplication share the same tiles-per-side count at every
// level, so quadrant descent stays in lock step.
type Mat struct {
	data  []float64
	tiles int // grid rows in tiles at this level
	// tilesc is the grid column count when it differs from tiles — the
	// rectangular grids of the table-driven ⟨m,k,n⟩ algorithms on
	// canonical storage. Zero means square (== tiles), so every
	// pre-existing constructor and literal keeps its meaning; read it
	// through gridC. Tiled (recursive-curve) storage is always square.
	tilesc int
	tr     int // tile rows
	tc     int // tile columns
	// ld is the leading dimension for canonical storage; ld == 0 marks
	// tiled (recursive) storage, where each tile is contiguous with
	// leading dimension tr.
	ld     int
	curve  layout.Curve
	orient layout.Orient
}

// tiledStore reports whether the Mat uses recursive tile storage.
func (m Mat) tiledStore() bool { return m.ld == 0 }

// gridC is the grid column count (tilesc, defaulting to square).
func (m Mat) gridC() int {
	if m.tilesc != 0 {
		return m.tilesc
	}
	return m.tiles
}

// rows and cols return the (padded) element extent of this sub-matrix.
func (m Mat) rows() int { return m.tiles * m.tr }
func (m Mat) cols() int { return m.gridC() * m.tc }

// tileElems is the storage footprint of one tile.
func (m Mat) tileElems() int { return m.tr * m.tc }

// elems is the total number of elements covered by this sub-matrix.
func (m Mat) elems() int { return m.tiles * m.gridC() * m.tileElems() }

// quad returns the descriptor of geometric quadrant q (layout.QuadNW..
// layout.QuadSE). For tiled storage this is the implicit address
// computation of Section 4: the child at curve position p occupies the
// p-th quarter of the parent's contiguous range, in the orientation
// given by the curve's descent table. For canonical storage it is plain
// row/column offset arithmetic with an unchanged leading dimension.
func (m Mat) quad(q int) Mat {
	if m.tiles < 2 {
		panic("core: quad on leaf Mat")
	}
	half := m.tiles / 2
	c := m
	c.tiles = half
	if m.tiledStore() {
		p := m.curve.PosOf(m.orient, q)
		sz := half * half * m.tileElems()
		c.data = m.data[p*sz:]
		c.orient = m.curve.ChildOrient(m.orient, p)
		return c
	}
	off := (q >> 1 & 1) * half * m.tr
	off += (q & 1) * half * m.tc * m.ld
	c.data = m.data[off:]
	return c
}

// subGrid returns block (i, j) of the pr×pc partition of this
// sub-matrix's tile grid — the ⟨m,k,n⟩ generalization of quad. Tiled
// storage only supports the quadrant split (the curves are quad-based);
// the table engine hands rectangular partitions to canonical storage,
// where the split is plain offset arithmetic. Both grid extents must
// divide evenly (the driver's geometry guarantees it).
func (m Mat) subGrid(i, j, pr, pc int) Mat {
	if m.tiledStore() {
		if pr != 2 || pc != 2 {
			panic("core: non-quadrant subGrid on tiled storage")
		}
		return m.quad(i*2 + j)
	}
	rt, ct := m.tiles/pr, m.gridC()/pc
	c := m
	c.tiles, c.tilesc = rt, ct
	if ct == rt {
		// Normalize square results to the zero (square) encoding so the
		// quadrant-based algorithms can take over below a table handoff.
		c.tilesc = 0
	}
	c.data = m.data[i*rt*m.tr+j*ct*m.tc*m.ld:]
	return c
}

// leafLD returns the leading dimension to hand the leaf kernel: the
// enclosing array's for canonical storage (the memory-system behavior
// the paper studies), the tile's own row count for recursive storage.
func (m Mat) leafLD() int {
	if m.tiledStore() {
		return m.tr
	}
	return m.ld
}

// dense wraps a canonical Mat as a matrix.Dense view.
func (m Mat) dense() *matrix.Dense {
	if m.tiledStore() {
		panic("core: dense view of tiled Mat")
	}
	return matrix.FromSlice(m.data, m.rows(), m.cols(), m.ld)
}

// permCache memoizes orientation permutations per (curve, from, to,
// depth); see layout.Perm. Depth here is lg(tiles). A flat array of
// atomic pointers rather than a sync.Map: map lookups box the struct
// key into an interface, which allocates on every hot-path query —
// unacceptable now that the steady state is pinned at zero allocations.
const maxPermDepth = 12

var permCache [8][4][4][maxPermDepth + 1]atomic.Pointer[[]int32]

func permFor(c layout.Curve, from, to layout.Orient, d uint) []int32 {
	if int(c) >= len(permCache) || from > 3 || to > 3 || d > maxPermDepth {
		// Off the cacheable grid (absurd depth): compute directly.
		return c.Perm(from, to, d)
	}
	slot := &permCache[c][from][to][d]
	if p := slot.Load(); p != nil {
		return *p
	}
	p := c.Perm(from, to, d)
	if slot.CompareAndSwap(nil, &p) {
		return p
	}
	return *slot.Load()
}

// log2tiles returns lg(tiles) for a power-of-two tile count.
func log2tiles(tiles int) uint {
	var d uint
	for t := tiles; t > 1; t >>= 1 {
		d++
	}
	return d
}

// tileMap describes how a tile position s in the destination's ordering
// maps to the corresponding position in a source's ordering — the
// concrete, devirtualized form of the old per-tile closure, so the hot
// tile loops of matEW2/matEW3 make no indirect calls.
//
// For Gray-Morton's two orientations the paper's half-step symmetry
// applies: the mapping is a rotation by half the tile count, so the pre-
// and post-additions run as two contiguous half-streams (tmRotate). For
// Hilbert the mapping is a memoized permutation array ("global mapping
// arrays" in Section 4, tmPerm); the loop-control cost is one indexed
// load per tile.
type tileMap struct {
	mode uint8
	half int     // tmRotate: rotation distance (= tiles²/2)
	perm []int32 // tmPerm: memoized permutation
}

const (
	tmIdent uint8 = iota
	tmRotate
	tmPerm
)

// resolveTileMap computes the dst→src tile mapping for two tiled Mats
// of equal geometry on the same curve.
func resolveTileMap(dst, src Mat) tileMap {
	if dst.curve != src.curve {
		panic("core: tile map across curves")
	}
	if dst.orient == src.orient {
		return tileMap{mode: tmIdent}
	}
	if dst.curve == layout.GrayMorton {
		half := dst.tiles * dst.tiles / 2
		if half == 0 {
			// A single tile: the half-rotation is the identity.
			return tileMap{mode: tmIdent}
		}
		return tileMap{mode: tmRotate, half: half}
	}
	return tileMap{mode: tmPerm,
		perm: permFor(dst.curve, dst.orient, src.orient, log2tiles(dst.tiles))}
}

// at maps one destination tile position to its source position. This is
// a direct (devirtualized) call; the streaming cores below avoid even
// this per-tile switch on the common paths.
func (m tileMap) at(s, total int) int {
	switch m.mode {
	case tmIdent:
		return s
	case tmRotate:
		s += m.half
		if s >= total {
			s -= total
		}
		return s
	default:
		return int(m.perm[s])
	}
}

// tileIndexMap is the closure form of resolveTileMap, retained as the
// executable specification the inlined loops are tested against (nil
// when the orderings coincide). Hot paths use resolveTileMap and the
// ranged cores instead.
func tileIndexMap(dst, src Mat) func(int) int {
	m := resolveTileMap(dst, src)
	if m.mode == tmIdent {
		return nil
	}
	total := dst.tiles * dst.tiles
	return func(s int) int { return m.at(s, total) }
}

// checkGeom panics unless the Mats have identical tile geometry.
func checkGeom(ms ...Mat) {
	for _, m := range ms[1:] {
		if m.tiles != ms[0].tiles || m.gridC() != ms[0].gridC() ||
			m.tr != ms[0].tr || m.tc != ms[0].tc {
			panic(fmt.Sprintf("core: geometry mismatch %dx%dx(%dx%d) vs %dx%dx(%dx%d)",
				ms[0].tiles, ms[0].gridC(), ms[0].tr, ms[0].tc,
				m.tiles, m.gridC(), m.tr, m.tc))
		}
	}
}

// vAdd / vSub / vAcc / vDec are the streaming element kernels.
func vAdd(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func vSub(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

func vAcc(dst, a []float64) {
	for i := range dst {
		dst[i] += a[i]
	}
}

func vDec(dst, a []float64) {
	for i := range dst {
		dst[i] -= a[i]
	}
}

func vCopy(dst, a []float64) {
	copy(dst, a)
}

func vNeg(dst, a []float64) {
	for i := range a {
		dst[i] = -a[i]
	}
}

func vZero(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// matZero clears a sub-matrix.
func matZero(dst Mat) {
	if dst.tiledStore() {
		vZero(dst.data[:dst.elems()])
		return
	}
	dst.dense().Zero()
}

// ew2Tiles applies a two-operand kernel over destination tiles [lo, hi)
// of two tiled Mats, with the source resolved through m. The ranged
// form is what the pool-parallel element-wise passes chunk over. The
// identity case is one contiguous stream; the Gray-Morton rotation is
// at most two contiguous segments (the half-step symmetry inlined as
// direct arithmetic); only the Hilbert permutation pays a per-tile
// indexed load — and none of them makes an indirect call in the loop.
func ew2Tiles(dst, a Mat, m tileMap, lo, hi int, f func(dst, a []float64)) {
	ts := dst.tileElems()
	switch m.mode {
	case tmIdent:
		f(dst.data[lo*ts:hi*ts], a.data[lo*ts:hi*ts])
	case tmRotate:
		total := dst.tiles * dst.tiles
		mid := total - m.half // where s+half wraps
		if cut := min(hi, mid); lo < cut {
			f(dst.data[lo*ts:cut*ts], a.data[(lo+m.half)*ts:(cut+m.half)*ts])
		}
		if cut := max(lo, mid); cut < hi {
			off := m.half - total
			f(dst.data[cut*ts:hi*ts], a.data[(cut+off)*ts:(hi+off)*ts])
		}
	default:
		for s := lo; s < hi; s++ {
			sa := int(m.perm[s])
			f(dst.data[s*ts:s*ts+ts], a.data[sa*ts:sa*ts+ts])
		}
	}
}

// ew3Tiles is the three-operand counterpart of ew2Tiles, with each
// source resolved through its own map.
func ew3Tiles(dst, a, b Mat, ma, mb tileMap, lo, hi int, f func(dst, a, b []float64)) {
	ts := dst.tileElems()
	if ma.mode == tmIdent && mb.mode == tmIdent {
		f(dst.data[lo*ts:hi*ts], a.data[lo*ts:hi*ts], b.data[lo*ts:hi*ts])
		return
	}
	total := dst.tiles * dst.tiles
	if ma.mode != tmPerm && mb.mode != tmPerm {
		// Rotations (and identities) only. Both rotations are by the
		// same half (same curve, same tile count), so a single split at
		// the wrap point leaves pieces where every operand is one
		// contiguous stream at a constant offset.
		mid := total / 2
		seg := func(lo, hi int) {
			if lo >= hi {
				return
			}
			offA, offB := 0, 0
			if ma.mode == tmRotate {
				offA = ma.half
				if lo >= mid {
					offA -= total
				}
			}
			if mb.mode == tmRotate {
				offB = mb.half
				if lo >= mid {
					offB -= total
				}
			}
			f(dst.data[lo*ts:hi*ts],
				a.data[(lo+offA)*ts:(hi+offA)*ts],
				b.data[(lo+offB)*ts:(hi+offB)*ts])
		}
		seg(lo, min(hi, mid))
		seg(max(lo, mid), hi)
		return
	}
	for s := lo; s < hi; s++ {
		sa := ma.at(s, total)
		sb := mb.at(s, total)
		f(dst.data[s*ts:s*ts+ts], a.data[sa*ts:sa*ts+ts], b.data[sb*ts:sb*ts+ts])
	}
}

// ew2Cols and ew3Cols are the ranged cores for canonical storage,
// walking columns [lo, hi).
func ew2Cols(dst, a Mat, lo, hi int, f func(dst, a []float64)) {
	rows := dst.rows()
	for j := lo; j < hi; j++ {
		f(dst.data[j*dst.ld:j*dst.ld+rows], a.data[j*a.ld:j*a.ld+rows])
	}
}

func ew3Cols(dst, a, b Mat, lo, hi int, f func(dst, a, b []float64)) {
	rows := dst.rows()
	for j := lo; j < hi; j++ {
		f(dst.data[j*dst.ld:j*dst.ld+rows],
			a.data[j*a.ld:j*a.ld+rows],
			b.data[j*b.ld:j*b.ld+rows])
	}
}

// checkEW validates an element-wise operand set: equal geometry, no
// mixed storage.
func checkEW(ms ...Mat) {
	checkGeom(ms...)
	for _, m := range ms[1:] {
		if m.tiledStore() != ms[0].tiledStore() {
			panic("core: mixed storage in element-wise op")
		}
	}
}

// matEW2 applies a two-operand element-wise kernel (dst, a) over equal
// geometry, e.g. dst += a, on the calling goroutine. Orientation
// mismatches between tiled operands are resolved through resolveTileMap;
// when the orientations coincide the whole region is one contiguous
// stream and f runs once over it — the "streaming through the memory
// hierarchy" case Section 4 highlights. Canonical operands are walked
// column-by-column. The pool-parallel form is exec.ew2.
func matEW2(dst, a Mat, f func(dst, a []float64)) {
	checkEW(dst, a)
	if dst.tiledStore() {
		ew2Tiles(dst, a, resolveTileMap(dst, a), 0, dst.tiles*dst.tiles, f)
		return
	}
	ew2Cols(dst, a, 0, dst.cols(), f)
}

// matEW3 applies a three-operand element-wise kernel (dst, a, b) over
// equal geometry, e.g. dst = a + b.
func matEW3(dst, a, b Mat, f func(dst, a, b []float64)) {
	checkEW(dst, a, b)
	if dst.tiledStore() {
		ew3Tiles(dst, a, b, resolveTileMap(dst, a), resolveTileMap(dst, b),
			0, dst.tiles*dst.tiles, f)
		return
	}
	ew3Cols(dst, a, b, 0, dst.cols(), f)
}

// newTemp allocates a scratch Mat with the same geometry as proto. For
// tiled storage the temp adopts the reference orientation, which is
// always legal because every element-wise op resolves orientation
// differences explicitly. For canonical storage the temp is contiguous,
// so its leading dimension equals its row count — the leading-dimension
// halving that Section 5.1 identifies as the reason the fast algorithms
// are robust on canonical layouts.
func newTemp(proto Mat) Mat {
	faultinject.Alloc("core.newTemp")
	t := proto
	t.data = make([]float64, proto.elems())
	if proto.tiledStore() {
		t.orient = layout.OrientID
	} else {
		t.ld = proto.rows()
	}
	return t
}
