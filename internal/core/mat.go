// Package core implements the paper's central contribution: the three
// recursive matrix multiplication algorithms (standard, Strassen,
// Winograd — Section 2) executing over the recursive array layouts of
// Section 3, with the address computation embedded implicitly in the
// recursive control structure as described in Section 4.
//
// A matrix participating in a multiplication is either
//
//   - tiled: stored as a 2^d × 2^d grid of t_R × t_C column-major tiles,
//     the tiles ordered along one of the five recursive curves
//     (equation (3) of the paper); or
//   - canonical: an ordinary column-major array with a leading
//     dimension, padded to the same 2^d tile grid so that the identical
//     control structure runs over both (the L_C baseline of Section 5).
//
// The recursion never evaluates the S function per element: a quadrant
// descriptor (Mat) carries the base offset and, for the multi-orientation
// curves, the orientation; descending to a child quadrant is one table
// lookup and one offset addition. Tiles only acquire addresses when the
// recursion bottoms out, exactly as Section 4 prescribes.
package core

import (
	"fmt"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/matrix"
)

// Mat describes one square sub-grid of tiles at some level of the
// recursion: either a contiguous run of recursively-ordered tiles or a
// strided view of a canonical (column-major) array. All three matrices
// of a multiplication share the same tiles-per-side count at every
// level, so quadrant descent stays in lock step.
type Mat struct {
	data  []float64
	tiles int // tiles per side at this level (power of two)
	tr    int // tile rows
	tc    int // tile columns
	// ld is the leading dimension for canonical storage; ld == 0 marks
	// tiled (recursive) storage, where each tile is contiguous with
	// leading dimension tr.
	ld     int
	curve  layout.Curve
	orient layout.Orient
}

// tiledStore reports whether the Mat uses recursive tile storage.
func (m Mat) tiledStore() bool { return m.ld == 0 }

// rows and cols return the (padded) element extent of this sub-matrix.
func (m Mat) rows() int { return m.tiles * m.tr }
func (m Mat) cols() int { return m.tiles * m.tc }

// tileElems is the storage footprint of one tile.
func (m Mat) tileElems() int { return m.tr * m.tc }

// elems is the total number of elements covered by this sub-matrix.
func (m Mat) elems() int { return m.tiles * m.tiles * m.tileElems() }

// quad returns the descriptor of geometric quadrant q (layout.QuadNW..
// layout.QuadSE). For tiled storage this is the implicit address
// computation of Section 4: the child at curve position p occupies the
// p-th quarter of the parent's contiguous range, in the orientation
// given by the curve's descent table. For canonical storage it is plain
// row/column offset arithmetic with an unchanged leading dimension.
func (m Mat) quad(q int) Mat {
	if m.tiles < 2 {
		panic("core: quad on leaf Mat")
	}
	half := m.tiles / 2
	c := m
	c.tiles = half
	if m.tiledStore() {
		p := m.curve.PosOf(m.orient, q)
		sz := half * half * m.tileElems()
		c.data = m.data[p*sz:]
		c.orient = m.curve.ChildOrient(m.orient, p)
		return c
	}
	off := (q >> 1 & 1) * half * m.tr
	off += (q & 1) * half * m.tc * m.ld
	c.data = m.data[off:]
	return c
}

// leafLD returns the leading dimension to hand the leaf kernel: the
// enclosing array's for canonical storage (the memory-system behavior
// the paper studies), the tile's own row count for recursive storage.
func (m Mat) leafLD() int {
	if m.tiledStore() {
		return m.tr
	}
	return m.ld
}

// dense wraps a canonical Mat as a matrix.Dense view.
func (m Mat) dense() *matrix.Dense {
	if m.tiledStore() {
		panic("core: dense view of tiled Mat")
	}
	return matrix.FromSlice(m.data, m.rows(), m.cols(), m.ld)
}

// permCache memoizes orientation permutations per (curve, from, to,
// depth); see layout.Perm. Depth here is lg(tiles).
var permCache sync.Map

type permKey struct {
	c        layout.Curve
	from, to layout.Orient
	d        uint
}

func permFor(c layout.Curve, from, to layout.Orient, d uint) []int32 {
	key := permKey{c, from, to, d}
	if v, ok := permCache.Load(key); ok {
		return v.([]int32)
	}
	p := c.Perm(from, to, d)
	actual, _ := permCache.LoadOrStore(key, p)
	return actual.([]int32)
}

// log2tiles returns lg(tiles) for a power-of-two tile count.
func log2tiles(tiles int) uint {
	var d uint
	for t := tiles; t > 1; t >>= 1 {
		d++
	}
	return d
}

// tileIndexMap returns a function mapping a tile position s in dst's
// ordering to the corresponding tile position in src's ordering, or nil
// when the orderings coincide (the streaming fast path of Section 4).
//
// For Gray-Morton's two orientations the paper's half-step symmetry
// applies: the mapping is a rotation by half the tile count, so the pre-
// and post-additions run as two contiguous half-streams. For Hilbert the
// mapping is a memoized permutation array ("global mapping arrays" in
// Section 4); the added loop-control cost is one indexed load per tile.
func tileIndexMap(dst, src Mat) func(int) int {
	if dst.curve != src.curve {
		panic("core: tile map across curves")
	}
	if dst.orient == src.orient {
		return nil
	}
	if dst.curve == layout.GrayMorton {
		half := dst.tiles * dst.tiles / 2
		total := dst.tiles * dst.tiles
		return func(s int) int { return (s + half) % total }
	}
	perm := permFor(dst.curve, dst.orient, src.orient, log2tiles(dst.tiles))
	return func(s int) int { return int(perm[s]) }
}

// checkGeom panics unless the Mats have identical tile geometry.
func checkGeom(ms ...Mat) {
	for _, m := range ms[1:] {
		if m.tiles != ms[0].tiles || m.tr != ms[0].tr || m.tc != ms[0].tc {
			panic(fmt.Sprintf("core: geometry mismatch %dx(%dx%d) vs %dx(%dx%d)",
				ms[0].tiles, ms[0].tr, ms[0].tc, m.tiles, m.tr, m.tc))
		}
	}
}

// vAdd / vSub / vAcc / vDec are the streaming element kernels.
func vAdd(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func vSub(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

func vAcc(dst, a []float64) {
	for i := range dst {
		dst[i] += a[i]
	}
}

func vDec(dst, a []float64) {
	for i := range dst {
		dst[i] -= a[i]
	}
}

func vCopy(dst, a []float64) {
	copy(dst, a)
}

func vZero(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// matZero clears a sub-matrix.
func matZero(dst Mat) {
	if dst.tiledStore() {
		vZero(dst.data[:dst.elems()])
		return
	}
	dst.dense().Zero()
}

// matEW2 applies a two-operand element-wise kernel (dst, a) over equal
// geometry, e.g. dst += a. Orientation mismatches between tiled operands
// are resolved through tileIndexMap; when the orientations coincide the
// whole region is one contiguous stream and f runs once over it — the
// "streaming through the memory hierarchy" case Section 4 highlights.
// Canonical operands are walked column-by-column.
func matEW2(dst, a Mat, f func(dst, a []float64)) {
	checkGeom(dst, a)
	if dst.tiledStore() != a.tiledStore() {
		panic("core: mixed storage in element-wise op")
	}
	if dst.tiledStore() {
		idx := tileIndexMap(dst, a)
		if idx == nil {
			f(dst.data[:dst.elems()], a.data[:a.elems()])
			return
		}
		ts := dst.tileElems()
		nt := dst.tiles * dst.tiles
		for s := 0; s < nt; s++ {
			sa := idx(s)
			f(dst.data[s*ts:(s+1)*ts], a.data[sa*ts:sa*ts+ts])
		}
		return
	}
	rows, cols := dst.rows(), dst.cols()
	for j := 0; j < cols; j++ {
		f(dst.data[j*dst.ld:j*dst.ld+rows], a.data[j*a.ld:j*a.ld+rows])
	}
}

// matEW3 applies a three-operand element-wise kernel (dst, a, b) over
// equal geometry, e.g. dst = a + b.
func matEW3(dst, a, b Mat, f func(dst, a, b []float64)) {
	checkGeom(dst, a, b)
	if dst.tiledStore() != a.tiledStore() || dst.tiledStore() != b.tiledStore() {
		panic("core: mixed storage in element-wise op")
	}
	if dst.tiledStore() {
		ia := tileIndexMap(dst, a)
		ib := tileIndexMap(dst, b)
		if ia == nil && ib == nil {
			f(dst.data[:dst.elems()], a.data[:a.elems()], b.data[:b.elems()])
			return
		}
		ts := dst.tileElems()
		nt := dst.tiles * dst.tiles
		for s := 0; s < nt; s++ {
			sa, sb := s, s
			if ia != nil {
				sa = ia(s)
			}
			if ib != nil {
				sb = ib(s)
			}
			f(dst.data[s*ts:(s+1)*ts], a.data[sa*ts:sa*ts+ts], b.data[sb*ts:sb*ts+ts])
		}
		return
	}
	rows, cols := dst.rows(), dst.cols()
	for j := 0; j < cols; j++ {
		f(dst.data[j*dst.ld:j*dst.ld+rows],
			a.data[j*a.ld:j*a.ld+rows],
			b.data[j*b.ld:j*b.ld+rows])
	}
}

// newTemp allocates a scratch Mat with the same geometry as proto. For
// tiled storage the temp adopts the reference orientation, which is
// always legal because every element-wise op resolves orientation
// differences explicitly. For canonical storage the temp is contiguous,
// so its leading dimension equals its row count — the leading-dimension
// halving that Section 5.1 identifies as the reason the fast algorithms
// are robust on canonical layouts.
func newTemp(proto Mat) Mat {
	faultinject.Alloc("core.newTemp")
	t := proto
	t.data = make([]float64, proto.elems())
	if proto.tiledStore() {
		t.orient = layout.OrientID
	} else {
		t.ld = proto.rows()
	}
	return t
}
