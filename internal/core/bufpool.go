package core

import (
	"sync"

	"repro/internal/layout"
	"repro/internal/matrix"
)

// This file implements the size-classed recycling pool for the packed
// operand buffers — the tiled (and padded canonical) copies a block
// multiplication materializes on every call. Section 4's honest
// accounting counts the conversion *time*; before this pool the driver
// also paid the conversion *allocation* in full per call: three fresh
// buffers (~32 MB each at n=2048) whose make() zeroing, page faults,
// and eventual collection dominate the conversion cost for repeated
// multiplications. Buffers are recycled through sync.Pool instances
// keyed by power-of-two element-count classes, extending the PR-3
// AllocsPerRun discipline from the recursion's temporaries (the scratch
// arena) to the packed operands: steady-state repeated GEMM of a fixed
// shape allocates nothing.
//
// Memory accounting: a pooled buffer is exactly as resident as a fresh
// one, so estimateBytes charges acquired buffers at full size whether
// they hit or miss the pool; only operands owned by a *Prepacked* plan
// (allocated once, outside the call) are exempt (the resident flag).

// bufMinClass is the smallest pooled class: 1<<12 = 4096 elements
// (32 KiB). Smaller buffers are cheap to allocate and would crowd the
// pool with fragments.
const bufMinClass = 12

// bufMaxClass caps pooling at 1<<30 elements (8 GiB); anything larger
// falls through to plain allocation.
const bufMaxClass = 30

var bufPools [bufMaxClass + 1]sync.Pool

// bufClass returns the pool class for n elements: the smallest power of
// two ≥ max(n, 1<<bufMinClass), expressed as its exponent.
func bufClass(n int) int {
	c := bufMinClass
	for (1 << c) < n {
		c++
	}
	return c
}

// getBuf returns a dirty []float64 of length n, recycled when a buffer
// of n's size class is pooled. The second result reports a pool hit.
// Callers must fully overwrite the contents (Pack does) or zero them
// (the fused C epilogue does) before reading.
func getBuf(n int) ([]float64, bool) {
	if n == 0 {
		return nil, false
	}
	c := bufClass(n)
	if c > bufMaxClass {
		return make([]float64, n), false
	}
	if p, _ := bufPools[c].Get().(*[]float64); p != nil {
		return (*p)[:n], true
	}
	return make([]float64, n, 1<<c), false
}

// putBuf returns a buffer to its size-class pool. Only buffers whose
// capacity is exactly a pooled class are accepted (everything getBuf
// hands out qualifies); foreign slices are left to the collector.
func putBuf(b []float64) {
	if b == nil {
		return
	}
	b = b[:cap(b)]
	c := bufClass(len(b))
	if c < bufMinClass || c > bufMaxClass || len(b) != 1<<c {
		return
	}
	bufPools[c].Put(&b)
}

// notePool records a pool outcome in the call's Stats (nil-safe).
func notePool(stats *Stats, hit bool) {
	if stats == nil {
		return
	}
	if hit {
		stats.PoolHits++
	} else {
		stats.PoolMisses++
	}
}

// acquireTiled builds a tiled matrix over a recycled buffer. The
// contents are dirty; Pack overwrites every element (padding included),
// and the fused epilogue zero-fills, so no caller observes stale data.
func acquireTiled(stats *Stats, curve layout.Curve, d uint, tr, tc, rows, cols int) *Tiled {
	side := 1 << d
	b, hit := getBuf(side * side * tr * tc)
	notePool(stats, hit)
	return &Tiled{Curve: curve, D: d, TR: tr, TC: tc, Rows: rows, Cols: cols, Data: b}
}

// releaseTiled returns a tiled matrix's buffer to the pool. The Tiled
// must not be used afterwards.
func releaseTiled(t *Tiled) {
	if t != nil {
		putBuf(t.Data)
		t.Data = nil
	}
}

// acquirePadded builds a contiguous rows×cols column-major matrix over
// a recycled (dirty) buffer — the canonical-layout counterpart of
// acquireTiled, used for the padded L_C operands.
func acquirePadded(stats *Stats, rows, cols int) *matrix.Dense {
	b, hit := getBuf(rows * cols)
	notePool(stats, hit)
	s := rows
	if s == 0 {
		s = 1
	}
	return &matrix.Dense{Rows: rows, Cols: cols, Stride: s, Data: b}
}

// releasePadded returns a padded canonical buffer to the pool.
func releasePadded(m *matrix.Dense) {
	if m != nil {
		putBuf(m.Data)
		m.Data = nil
	}
}
