package core

import (
	"context"
	rtrace "runtime/trace"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// This file is the driver's side of the observability contract: phase
// spans on the per-call tracer lane, runtime/trace regions for go tool
// trace, per-call scheduler-delta stats, and the cross-call metrics the
// registry aggregates. Everything here follows the package obs overhead
// discipline — with no tracer installed and no registry configured,
// these helpers reduce to a nil check and a couple of clock reads that
// the driver was already paying for its Stats timers.

// The whole-call gemm span carries the resolved algorithm (offset by
// one so a failed call's zero arg stays "no metadata"); the formatter
// turns the id back into the algorithm name in the Chrome export.
func init() {
	obs.SetArgFormatter(obs.KindGEMM, func(v int64) string {
		return Alg(v - 1).String()
	})
}

// gemmSpanArg encodes the algorithm a finished call actually ran for
// its trace span; zero (suppressed) when the call failed before one
// was resolved.
func gemmSpanArg(stats *Stats) int64 {
	if stats == nil {
		return 0
	}
	return int64(stats.Alg) + 1
}

// phase wraps one driver phase (convert-in, compute, convert-out) in a
// runtime/trace region and, when the call captured a tracer at entry, a
// span on the call's lane. The region and span close on error paths
// too, so a cancelled phase still leaves a well-formed trace.
func (e *exec) phase(ctx context.Context, k obs.Kind, name string, f func() error) error {
	defer rtrace.StartRegion(ctx, name).End()
	if e.tr == nil {
		return f()
	}
	t0 := time.Now()
	err := f()
	e.tr.LaneSpan(e.lane, k, t0, time.Since(t0), 0)
	return err
}

// callStart bundles what finishStats needs from the top of a driver
// call: the wall clock plus the pool's scheduler and busy counters.
type callStart struct {
	t0    time.Time
	sched sched.PoolStats
	busy  int64
}

func startCall(pool *sched.Pool, t0 time.Time) callStart {
	return callStart{t0: t0, sched: pool.Stats(), busy: pool.BusyNanos()}
}

// finishStats fills the per-call scheduler fields of Stats from the
// pool-counter deltas over the call. The counters are pool-global, so
// under concurrent callers the deltas apportion approximately (each
// call sees some of its neighbors' traffic); they are clamped at zero,
// and Utilization — busy worker-nanoseconds over workers × wall — is
// clamped into [0, 1].
func finishStats(s *Stats, pool *sched.Pool, c0 callStart) {
	c1 := pool.Stats()
	s.Spawns = max64(0, c1.Spawns-c0.sched.Spawns)
	s.Steals = max64(0, c1.Steals-c0.sched.Steals)
	s.Inline = max64(0, c1.Inline-c0.sched.Inline)
	wall := time.Since(c0.t0).Nanoseconds()
	if w := pool.Workers(); w > 0 && wall > 0 {
		u := float64(pool.BusyNanos()-c0.busy) / (float64(w) * float64(wall))
		if u > 1 {
			u = 1
		}
		if u < 0 {
			u = 0
		}
		s.Utilization = u
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Metric names recorded per driver call when Options.Metrics is set.
// Counters are cumulative across calls; histograms use the package obs
// preset bucket bounds.
const (
	metricGEMMCalls          = "gemm_calls"
	metricGEMMErrors         = "gemm_errors"
	metricDegradations       = "degradations"
	metricPoolHits           = "pool_hits"
	metricPoolMisses         = "pool_misses"
	metricPackReused         = "pack_reused"
	metricConvertBytes       = "convert_bytes"
	metricArenaFallbackBytes = "arena_fallback_bytes"
	metricSchedSpawns        = "sched_spawns"
	metricSchedSteals        = "sched_steals"
	metricSchedInline        = "sched_inline"
	metricConvertInSeconds   = "convert_in_seconds"
	metricComputeSeconds     = "compute_seconds"
	metricConvertOutSeconds  = "convert_out_seconds"
	metricTotalSeconds       = "total_seconds"
	metricGFLOPS             = "gflops"
	metricUtilization        = "worker_utilization"
	// The batched wave driver records one gemm_batch_calls per wave,
	// gemm_batch_items per member scheduled into it, and the wave size
	// in the batch_size histogram — the engine-side view of how much
	// per-call overhead the batch path amortized.
	metricBatchCalls  = "gemm_batch_calls"
	metricBatchItems  = "gemm_batch_items"
	metricBatchSize   = "batch_size"
	metricBatchErrors = "gemm_batch_item_errors"
	// metricKernelCallsPrefix labels calls by the leaf kernel that
	// actually ran (e.g. kernel_calls_avx2) — with runtime CPU dispatch
	// and autotuning in front of the kernels, traces and scrapes must
	// show which implementation executed, not which was requested.
	metricKernelCallsPrefix = "kernel_calls_"
	// metricAlgSelectedPrefix labels calls by the algorithm that
	// actually ran (e.g. alg_selected_laderman-3x3x3). With AlgAuto and
	// the admission ladder both able to move a call off the requested
	// algorithm, scrapes need the resolved choice to see what the
	// selection policy is doing in production.
	metricAlgSelectedPrefix = "alg_selected_"
)

// recordCallMetrics aggregates one finished driver call into the
// registry. Called from a defer declared before the recover boundary,
// so it sees the final stats/err pair even when the call panicked its
// way out.
func recordCallMetrics(m *obs.Registry, stats *Stats, err error, wall time.Duration) {
	if m == nil {
		return
	}
	m.Counter(metricGEMMCalls).Inc()
	if err != nil {
		m.Counter(metricGEMMErrors).Inc()
		return
	}
	if stats == nil {
		return
	}
	if stats.Kernel != "" {
		m.Counter(metricKernelCallsPrefix + stats.Kernel).Inc()
	}
	m.Counter(metricAlgSelectedPrefix + stats.Alg.String()).Inc()
	m.Counter(metricDegradations).Add(int64(len(stats.Degraded)))
	m.Counter(metricPoolHits).Add(int64(stats.PoolHits))
	m.Counter(metricPoolMisses).Add(int64(stats.PoolMisses))
	m.Counter(metricPackReused).Add(int64(stats.PackReused))
	m.Counter(metricConvertBytes).Add(stats.ConvertBytes)
	m.Counter(metricArenaFallbackBytes).Add(stats.AllocBytes)
	m.Counter(metricSchedSpawns).Add(stats.Spawns)
	m.Counter(metricSchedSteals).Add(stats.Steals)
	m.Counter(metricSchedInline).Add(stats.Inline)
	m.Histogram(metricConvertInSeconds, obs.SecondsBuckets).Observe(stats.ConvertIn.Seconds())
	m.Histogram(metricComputeSeconds, obs.SecondsBuckets).Observe(stats.Compute.Seconds())
	m.Histogram(metricConvertOutSeconds, obs.SecondsBuckets).Observe(stats.ConvertOut.Seconds())
	m.Histogram(metricTotalSeconds, obs.SecondsBuckets).Observe(wall.Seconds())
	if s := stats.Compute.Seconds(); s > 0 && stats.Work > 0 {
		m.Histogram(metricGFLOPS, obs.GFLOPSBuckets).Observe(stats.Work / s / 1e9)
	}
	if stats.Utilization > 0 {
		m.Histogram(metricUtilization, obs.RatioBuckets).Observe(stats.Utilization)
	}
}
