package core

import "fmt"

// This file defines the coefficient-table representation of bilinear
// ⟨m,k,n⟩ fast multiplication algorithms (Benson–Ballard, "A Framework
// for Practical Parallel Fast Matrix Multiplication"). A rank-R
// algorithm over an m×k / k×n / m×n block partition is three sparse
// matrices U (R×mk), V (R×kn), W (mn×R): each of the R recursive
// products is P_r = (Σ_ij U[r][ij]·A_ij)·(Σ_jl V[r][jl]·B_jl), and each
// C block is C_il += Σ_r W[il][r]·P_r. Strassen and Winograd are the
// two classical ⟨2,2,2⟩ rank-7 points of this family; the table form
// lets one generic engine (tablemul.go) run every member, so adding an
// algorithm is adding data, not code.
//
// Correctness of a table is equivalent to the Brent equations — the
// triple-product identity
//
//	Σ_r U[r][(i1,j1)]·V[r][(j2,l1)]·W[(i2,l2)][r]
//	  = δ(i1=i2)·δ(j1=j2)·δ(l1=l2)
//
// checked in exact integer arithmetic by Verify (TestAlgTables and
// `make algtable-check` run it over every registered table, so a
// typo'd coefficient fails CI loudly instead of corrupting results).

// tableTerm is one nonzero coefficient of a U/V/W row. For U rows idx
// addresses A block (i,j) as i*K+j, for V rows B block (j,l) as j*N+l,
// for W rows it is the product index r. The engine requires c ∈ {-1,+1}
// (register rejects anything else); every known practical table uses
// unit coefficients, and the restriction keeps the element-wise passes
// on the existing vAdd/vSub/vAcc/vDec streams.
type tableTerm struct {
	idx int
	c   int
}

// Table is one bilinear ⟨M,K,N⟩ rank-R algorithm.
type Table struct {
	Name    string
	M, K, N int // base partition: A splits M×K, B splits K×N, C splits M×N
	R       int // rank: recursive products per level

	U [][]tableTerm // R rows over A blocks
	V [][]tableTerm // R rows over B blocks
	W [][]tableTerm // M·N rows over products

	// AuxU/AuxV/AuxW carry an optional evaluation schedule — the common
	// subexpressions a hand-tuned implementation would name, which the
	// raw bilinear form expands away. AuxU[j] defines virtual A block
	// M·K+j as a ±1 combination of base A blocks and strictly earlier
	// aux; U rows may reference both. AuxV is the same over B. AuxW[j]
	// defines virtual product R+j from products and earlier W aux; W
	// rows may reference it. A schedule changes the engine's pass count,
	// never the algebra: Verify expands it and checks the Brent
	// equations on the underlying bilinear form. Without one, the
	// engine re-derives every operand combination per product — exactly
	// the add traffic Winograd's variant exists to avoid.
	AuxU, AuxV, AuxW [][]tableTerm

	// WT is W transposed — per product r, the destinations it feeds
	// (C rows, and W-aux accumulators as M·N+j) — precomputed at
	// registration for the depth-first engine, which scatters each
	// product as soon as it completes. auxWScatter[j] lists where the
	// completed W aux j flows: C rows and strictly later aux.
	WT          [][]tableTerm
	auxWScatter [][]tableTerm

	// Base is the algorithm the engine hands the recursion to once the
	// table levels are exhausted (the remaining grid is a square power
	// of two by construction). ⟨2,2,2⟩ tables use Standard, mirroring
	// the hand-coded fast algorithms' FastCutoff switch; rectangular
	// tables use Winograd so the power-of-two region stays fast.
	Base Alg

	// preA/preB count the products whose A/B operand needs a scratch
	// block (multi-term or negated rows); arena sizing uses them.
	preA, preB int
}

// tableMaxBlocks and tableMaxWAux bound the per-side operand counts
// (base blocks plus schedule aux) so the depth-first engine can keep
// its block descriptors in fixed stack buffers; register enforces them.
const (
	tableMaxBlocks = 16
	tableMaxWAux   = 8
)

// tableAlgBase is the Alg id of the first table-driven algorithm; the
// hand-coded algorithms keep their historical ids below it.
const tableAlgBase = numAlgs

// AlgAuto is the per-shape auto-selection sentinel: the driver resolves
// it to a concrete algorithm from the operand shape before admission
// (see selectAlg). It is deliberately far from the real ids so the zero
// Options value keeps meaning Standard.
const AlgAuto Alg = 0xFF

// tableRegistry holds the table-driven algorithms in registration
// order; tableRegistry[i] has Alg id tableAlgBase+i.
var tableRegistry []*Table

// tableOf returns the table behind a table-driven Alg id, or nil.
func tableOf(a Alg) *Table {
	i := int(a) - int(tableAlgBase)
	if i >= 0 && i < len(tableRegistry) {
		return tableRegistry[i]
	}
	return nil
}

// register validates invariants that the engine relies on (index
// ranges, unit coefficients), precomputes WT and the scratch counts,
// and assigns the next Alg id. Algebraic correctness is Verify's job.
func register(tb *Table) Alg {
	if len(tb.U) != tb.R || len(tb.V) != tb.R || len(tb.W) != tb.M*tb.N {
		panic("core: table " + tb.Name + ": U/V/W shape mismatch")
	}
	check := func(rows [][]tableTerm, n int) {
		for _, row := range rows {
			for _, t := range row {
				if t.idx < 0 || t.idx >= n {
					panic("core: table " + tb.Name + ": term index out of range")
				}
				if t.c != 1 && t.c != -1 {
					panic("core: table " + tb.Name + ": non-unit coefficient")
				}
			}
		}
	}
	// Schedule rows must be non-empty, reference only strictly earlier
	// aux (so in-order materialization is well defined), and keep the
	// extended operand sets inside the engine's fixed DFS buffers.
	checkAux := func(aux [][]tableTerm, base int, side string) {
		for j, row := range aux {
			if len(row) == 0 {
				panic("core: table " + tb.Name + ": empty " + side + " schedule row")
			}
			check([][]tableTerm{row}, base+j)
		}
	}
	checkAux(tb.AuxU, tb.M*tb.K, "AuxU")
	checkAux(tb.AuxV, tb.K*tb.N, "AuxV")
	checkAux(tb.AuxW, tb.R, "AuxW")
	if tb.M*tb.K+len(tb.AuxU) > tableMaxBlocks || tb.K*tb.N+len(tb.AuxV) > tableMaxBlocks ||
		tb.M*tb.N > tableMaxBlocks || len(tb.AuxW) > tableMaxWAux {
		panic("core: table " + tb.Name + ": operand set exceeds the DFS engine's fixed buffers")
	}
	check(tb.U, tb.M*tb.K+len(tb.AuxU))
	check(tb.V, tb.K*tb.N+len(tb.AuxV))
	check(tb.W, tb.R+len(tb.AuxW))
	tb.WT = make([][]tableTerm, tb.R)
	tb.auxWScatter = make([][]tableTerm, len(tb.AuxW))
	scatter := func(src tableTerm, target int) {
		if src.idx < tb.R {
			tb.WT[src.idx] = append(tb.WT[src.idx], tableTerm{target, src.c})
		} else {
			tb.auxWScatter[src.idx-tb.R] = append(tb.auxWScatter[src.idx-tb.R], tableTerm{target, src.c})
		}
	}
	for t, row := range tb.W {
		for _, term := range row {
			scatter(term, t)
		}
	}
	for j, row := range tb.AuxW {
		for _, term := range row {
			scatter(term, tb.M*tb.N+j)
		}
	}
	for r := 0; r < tb.R; r++ {
		if len(tb.U[r]) > 1 || tb.U[r][0].c != 1 {
			tb.preA++
		}
		if len(tb.V[r]) > 1 || tb.V[r][0].c != 1 {
			tb.preB++
		}
	}
	tableRegistry = append(tableRegistry, tb)
	return tableAlgBase + Alg(len(tableRegistry)-1)
}

// densifyExpanded turns sparse rows over an extended operand set
// (base blocks plus schedule aux) into dense coefficient vectors over
// the base blocks alone, substituting each aux definition — register
// guarantees aux rows reference only strictly earlier aux, so one
// in-order pass resolves every chain.
func densifyExpanded(rows, aux [][]tableTerm, base int) [][]int64 {
	auxD := make([][]int64, len(aux))
	expand := func(row []tableTerm) []int64 {
		d := make([]int64, base)
		for _, t := range row {
			if t.idx < base {
				d[t.idx] += int64(t.c)
				continue
			}
			for i, c := range auxD[t.idx-base] {
				d[i] += int64(t.c) * c
			}
		}
		return d
	}
	for j, row := range aux {
		auxD[j] = expand(row)
	}
	out := make([][]int64, len(rows))
	for i, row := range rows {
		out[i] = expand(row)
	}
	return out
}

// Verify checks the Brent equations for tb in exact integer
// arithmetic; a nil error proves the table computes C = A·B. Any
// evaluation schedule is expanded first, so Verify proves the form the
// engine actually evaluates, CSE and all.
func (tb *Table) Verify() error {
	u := densifyExpanded(tb.U, tb.AuxU, tb.M*tb.K)
	v := densifyExpanded(tb.V, tb.AuxV, tb.K*tb.N)
	w := densifyExpanded(tb.W, tb.AuxW, tb.R)
	for i1 := 0; i1 < tb.M; i1++ {
		for j1 := 0; j1 < tb.K; j1++ {
			for j2 := 0; j2 < tb.K; j2++ {
				for l1 := 0; l1 < tb.N; l1++ {
					for i2 := 0; i2 < tb.M; i2++ {
						for l2 := 0; l2 < tb.N; l2++ {
							var sum int64
							for r := 0; r < tb.R; r++ {
								sum += u[r][i1*tb.K+j1] * v[r][j2*tb.N+l1] * w[i2*tb.N+l2][r]
							}
							var want int64
							if i1 == i2 && j1 == j2 && l1 == l2 {
								want = 1
							}
							if sum != want {
								return fmt.Errorf("core: table %s: Brent equation (i1=%d j1=%d j2=%d l1=%d i2=%d l2=%d) = %d, want %d",
									tb.Name, i1, j1, j2, l1, i2, l2, sum, want)
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// VerifyTables checks every registered table; `make algtable-check`
// and TestAlgTables gate on it.
func VerifyTables() error {
	for _, tb := range tableRegistry {
		if err := tb.Verify(); err != nil {
			return err
		}
	}
	return nil
}

// Tables lists the registered table algorithms in id order (for the
// dynamic -alg help text and the verifier).
func Tables() []*Table {
	return append([]*Table(nil), tableRegistry...)
}

// --- table constructors ---------------------------------------------

// strassen222Table is Strassen's rank-7 ⟨2,2,2⟩ in its classical form
// (the same identities algorithms.go's hand-coded strassen pins).
// Block ids: A/B/C (i,j) -> i*2+j, so 0=11, 1=12, 2=21, 3=22.
func strassen222Table() *Table {
	return &Table{
		Name: "strassen-2x2x2", M: 2, K: 2, N: 2, R: 7, Base: Standard,
		U: [][]tableTerm{
			{{0, 1}, {3, 1}},  // P1: A11+A22
			{{2, 1}, {3, 1}},  // P2: A21+A22
			{{0, 1}},          // P3: A11
			{{3, 1}},          // P4: A22
			{{0, 1}, {1, 1}},  // P5: A11+A12
			{{2, 1}, {0, -1}}, // P6: A21−A11
			{{1, 1}, {3, -1}}, // P7: A12−A22
		},
		V: [][]tableTerm{
			{{0, 1}, {3, 1}},  // P1: B11+B22
			{{0, 1}},          // P2: B11
			{{1, 1}, {3, -1}}, // P3: B12−B22
			{{2, 1}, {0, -1}}, // P4: B21−B11
			{{3, 1}},          // P5: B22
			{{0, 1}, {1, 1}},  // P6: B11+B12
			{{2, 1}, {3, 1}},  // P7: B21+B22
		},
		W: [][]tableTerm{
			{{0, 1}, {3, 1}, {4, -1}, {6, 1}}, // C11 = P1+P4−P5+P7
			{{2, 1}, {4, 1}},                  // C12 = P3+P5
			{{1, 1}, {3, 1}},                  // C21 = P2+P4
			{{0, 1}, {2, 1}, {1, -1}, {5, 1}}, // C22 = P1+P3−P2+P6
		},
	}
}

// winograd222Table is Winograd's rank-7 variant — the same products
// the hand-coded winograd computes — carrying its defining evaluation
// schedule: the S/T pre-addition chains and the shared U-chain of
// post-additions. The schedule is what distinguishes Winograd from
// Strassen in practice (both are rank 7; Winograd's 15-addition
// schedule beats Strassen's 18), so the table keeps it rather than
// expanding every row back to the raw block sums.
// Aux A ids: 4=S1=A21+A22, 5=S2=S1−A11, 6=S3=A11−A21, 7=S4=A12−S2.
// Aux B ids: 4=T1=B12−B11, 5=T2=B22−T1, 6=T3=B22−B12, 7=T4=B21−T2.
// Aux products: 7=U2=P1+P4, 8=U3=U2+P5.
func winograd222Table() *Table {
	return &Table{
		Name: "winograd-2x2x2", M: 2, K: 2, N: 2, R: 7, Base: Standard,
		AuxU: [][]tableTerm{
			{{2, 1}, {3, 1}},  // S1 = A21+A22
			{{4, 1}, {0, -1}}, // S2 = S1−A11
			{{0, 1}, {2, -1}}, // S3 = A11−A21
			{{1, 1}, {5, -1}}, // S4 = A12−S2
		},
		U: [][]tableTerm{
			{{0, 1}}, // P1: A11
			{{1, 1}}, // P2: A12
			{{4, 1}}, // P3: S1
			{{5, 1}}, // P4: S2
			{{6, 1}}, // P5: S3
			{{7, 1}}, // P6: S4
			{{3, 1}}, // P7: A22
		},
		AuxV: [][]tableTerm{
			{{1, 1}, {0, -1}}, // T1 = B12−B11
			{{3, 1}, {4, -1}}, // T2 = B22−T1
			{{3, 1}, {1, -1}}, // T3 = B22−B12
			{{2, 1}, {5, -1}}, // T4 = B21−T2
		},
		V: [][]tableTerm{
			{{0, 1}}, // P1: B11
			{{2, 1}}, // P2: B21
			{{4, 1}}, // P3: T1
			{{5, 1}}, // P4: T2
			{{6, 1}}, // P5: T3
			{{3, 1}}, // P6: B22
			{{7, 1}}, // P7: T4
		},
		AuxW: [][]tableTerm{
			{{0, 1}, {3, 1}}, // U2 = P1+P4
			{{7, 1}, {4, 1}}, // U3 = U2+P5
		},
		W: [][]tableTerm{
			{{0, 1}, {1, 1}},         // C11 = P1+P2
			{{7, 1}, {2, 1}, {5, 1}}, // C12 = U2+P3+P6
			{{8, 1}, {6, 1}},         // C21 = U3+P7
			{{8, 1}, {2, 1}},         // C22 = U3+P3
		},
	}
}

// glue323Table builds the rank-17 ⟨3,2,3⟩ algorithm by gluing: the
// leading 2×2 of C is exactly A[0:2,0:2]·B[0:2,0:2] (K=2 is fully
// covered), so Strassen's seven products serve it, and the ten border
// products are classical. 17 < 18 = 3·2·3 keeps it a genuine fast
// algorithm for once-padded 3-adic rectangular shapes.
func glue323Table() *Table {
	const M, K, N = 3, 2, 3
	s := strassen222Table()
	tb := &Table{Name: "fast-3x2x3", M: M, K: K, N: N, Base: Winograd}
	// Embed Strassen: A indices coincide (both grids have K=2 columns);
	// B (j,l): j*2+l -> j*N+l; C (i,l): i*2+l -> i*N+l.
	remap := func(rows [][]tableTerm, cols, newCols int) [][]tableTerm {
		out := make([][]tableTerm, len(rows))
		for r, row := range rows {
			nr := make([]tableTerm, len(row))
			for i, t := range row {
				nr[i] = tableTerm{(t.idx / cols) * newCols, t.c}
				nr[i].idx += t.idx % cols
			}
			out[r] = nr
		}
		return out
	}
	tb.U = remap(s.U, 2, K)
	tb.V = remap(s.V, 2, N)
	// W terms are product ranks, not block positions — only the row
	// order changes with the wider C grid.
	tb.W = make([][]tableTerm, M*N)
	for i := 0; i < 2; i++ {
		for l := 0; l < 2; l++ {
			tb.W[i*N+l] = s.W[i*2+l]
		}
	}
	// Border: C(i,2) for i<2, C(2,l) for l<2, and C(2,2), classical.
	addProd := func(ai, aj, bj, bl, ci, cl int) {
		r := len(tb.U)
		tb.U = append(tb.U, []tableTerm{{ai*K + aj, 1}})
		tb.V = append(tb.V, []tableTerm{{bj*N + bl, 1}})
		tb.W[ci*N+cl] = append(tb.W[ci*N+cl], tableTerm{r, 1})
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < K; j++ {
			addProd(i, j, j, 2, i, 2) // C(i,2) += A(i,j)·B(j,2)
		}
	}
	for l := 0; l < 2; l++ {
		for j := 0; j < K; j++ {
			addProd(2, j, j, l, 2, l) // C(2,l) += A(2,j)·B(j,l)
		}
	}
	for j := 0; j < K; j++ {
		addProd(2, j, j, 2, 2, 2) // C(2,2) += A(2,j)·B(j,2)
	}
	tb.R = len(tb.U)
	return tb
}

// classical212Table is the trivial rank-4 ⟨2,1,2⟩ outer-product
// partition — the second tensor factor of fast-4x2x4.
func classical212Table() *Table {
	tb := &Table{Name: "classical-2x1x2", M: 2, K: 1, N: 2, R: 4, Base: Standard}
	for i := 0; i < 2; i++ {
		for l := 0; l < 2; l++ {
			tb.U = append(tb.U, []tableTerm{{i, 1}})
			tb.V = append(tb.V, []tableTerm{{l, 1}})
		}
	}
	tb.W = make([][]tableTerm, 4)
	for i := 0; i < 2; i++ {
		for l := 0; l < 2; l++ {
			tb.W[i*2+l] = []tableTerm{{i*2 + l, 1}}
		}
	}
	return tb
}

// tensorTable is the Kronecker product of two bilinear algorithms: a
// ⟨m1,k1,n1⟩ rank-R1 and ⟨m2,k2,n2⟩ rank-R2 compose into a
// ⟨m1m2,k1k2,n1n2⟩ rank-R1·R2 algorithm. fast-4x2x4 is
// winograd-2x2x2 ⊗ classical-2x1x2: rank 28 < 32.
// expandSchedule returns an aux-free table over the same bilinear
// form, with every schedule reference substituted back into base-block
// rows — the input to constructions (like tensorTable) whose index
// arithmetic reads base ids. Tables without a schedule pass through.
func (tb *Table) expandSchedule() *Table {
	if len(tb.AuxU)+len(tb.AuxV)+len(tb.AuxW) == 0 {
		return tb
	}
	sparsify := func(dense [][]int64) [][]tableTerm {
		rows := make([][]tableTerm, len(dense))
		for i, d := range dense {
			for idx, c := range d {
				if c != 0 {
					rows[i] = append(rows[i], tableTerm{idx, int(c)})
				}
			}
		}
		return rows
	}
	return &Table{
		Name: tb.Name, M: tb.M, K: tb.K, N: tb.N, R: tb.R, Base: tb.Base,
		U: sparsify(densifyExpanded(tb.U, tb.AuxU, tb.M*tb.K)),
		V: sparsify(densifyExpanded(tb.V, tb.AuxV, tb.K*tb.N)),
		W: sparsify(densifyExpanded(tb.W, tb.AuxW, tb.R)),
	}
}

func tensorTable(name string, x, y *Table, base Alg) *Table {
	// The cross-product index arithmetic below reads base-block ids,
	// so scheduled factors contribute their expanded form.
	x, y = x.expandSchedule(), y.expandSchedule()
	tb := &Table{
		Name: name,
		M:    x.M * y.M, K: x.K * y.K, N: x.N * y.N,
		R: x.R * y.R, Base: base,
	}
	// cross merges an outer-factor row with an inner-factor row: outer
	// block (ro,co) and inner block (ri,ci) compose into block
	// (ro*innerRows+ri, co*innerCols+ci) of the combined grid.
	cross := func(a, b []tableTerm, aCols, innerRows, innerCols, outCols int) []tableTerm {
		var out []tableTerm
		for _, ta := range a {
			for _, tb2 := range b {
				row := (ta.idx/aCols)*innerRows + tb2.idx/innerCols
				col := (ta.idx%aCols)*innerCols + tb2.idx%innerCols
				out = append(out, tableTerm{row*outCols + col, ta.c * tb2.c})
			}
		}
		return out
	}
	for r1 := 0; r1 < x.R; r1++ {
		for r2 := 0; r2 < y.R; r2++ {
			tb.U = append(tb.U, cross(x.U[r1], y.U[r2], x.K, y.M, y.K, tb.K))
			tb.V = append(tb.V, cross(x.V[r1], y.V[r2], x.N, y.K, y.N, tb.N))
		}
	}
	tb.W = make([][]tableTerm, tb.M*tb.N)
	for t1 := 0; t1 < x.M*x.N; t1++ {
		for t2 := 0; t2 < y.M*y.N; t2++ {
			i := (t1/x.N)*y.M + t2/y.N
			l := (t1%x.N)*y.N + t2%y.N
			var row []tableTerm
			for _, wa := range x.W[t1] {
				for _, wb := range y.W[t2] {
					row = append(row, tableTerm{wa.idx*y.R + wb.idx, wa.c * wb.c})
				}
			}
			tb.W[i*tb.N+l] = row
		}
	}
	return tb
}

// laderman333Table is a rank-23 ⟨3,3,3⟩ algorithm in the Laderman
// (1976) family: the 23 A-side factors are Laderman's, and the two
// B-side factors of the a22/a32 products plus the full W matrix were
// re-derived from the Brent equations by exact rational elimination
// (every coefficient lands in {−1,+1}; Verify proves the identity).
// 23 < 27 makes it the repo's fastest algorithm on 3-adic-friendly
// shapes, where Winograd must pad to the next power of two.
// Block ids: (i,j) -> i*3+j, zero-based.
func laderman333Table() *Table {
	return &Table{
		Name: "laderman-3x3x3", M: 3, K: 3, N: 3, R: 23, Base: Winograd,
		U: [][]tableTerm{
			{{0, 1}, {1, 1}, {2, 1}, {3, -1}, {4, -1}, {7, -1}, {8, -1}}, // m1
			{{0, 1}, {3, -1}},         // m2: a11−a21
			{{4, 1}},                  // m3: a22
			{{0, -1}, {3, 1}, {4, 1}}, // m4: −a11+a21+a22
			{{3, 1}, {4, 1}},          // m5: a21+a22
			{{0, 1}},                  // m6: a11
			{{0, -1}, {6, 1}, {7, 1}}, // m7: −a11+a31+a32
			{{0, -1}, {6, 1}},         // m8: −a11+a31
			{{6, 1}, {7, 1}},          // m9: a31+a32
			{{0, 1}, {1, 1}, {2, 1}, {4, -1}, {5, -1}, {6, -1}, {7, -1}}, // m10
			{{7, 1}},                  // m11: a32
			{{2, -1}, {7, 1}, {8, 1}}, // m12: −a13+a32+a33
			{{2, 1}, {8, -1}},         // m13: a13−a33
			{{2, 1}},                  // m14: a13
			{{7, 1}, {8, 1}},          // m15: a32+a33
			{{2, -1}, {4, 1}, {5, 1}}, // m16: −a13+a22+a23
			{{2, 1}, {5, -1}},         // m17: a13−a23
			{{4, 1}, {5, 1}},          // m18: a22+a23
			{{1, 1}},                  // m19: a12
			{{5, 1}},                  // m20: a23
			{{3, 1}},                  // m21: a21
			{{6, 1}},                  // m22: a31
			{{8, 1}},                  // m23: a33
		},
		V: [][]tableTerm{
			{{4, 1}},          // m1: b22
			{{1, -1}, {4, 1}}, // m2: −b12+b22
			{{0, -1}, {1, 1}, {3, 1}, {4, -1}, {5, -1}, {6, -1}, {8, 1}}, // m3
			{{0, 1}, {1, -1}, {4, 1}},                                    // m4: b11−b12+b22
			{{0, -1}, {1, 1}},                                            // m5: −b11+b12
			{{0, 1}},                                                     // m6: b11
			{{0, 1}, {2, -1}, {5, 1}},                                    // m7: b11−b13+b23
			{{2, 1}, {5, -1}},                                            // m8: b13−b23
			{{0, -1}, {2, 1}},                                            // m9: −b11+b13
			{{5, 1}},                                                     // m10: b23
			{{0, -1}, {2, 1}, {3, 1}, {4, -1}, {5, -1}, {6, -1}, {7, 1}}, // m11
			{{4, 1}, {6, 1}, {7, -1}},                                    // m12: b22+b31−b32
			{{4, 1}, {7, -1}},                                            // m13: b22−b32
			{{6, 1}},                                                     // m14: b31
			{{6, -1}, {7, 1}},                                            // m15: −b31+b32
			{{5, 1}, {6, 1}, {8, -1}},                                    // m16: b23+b31−b33
			{{5, 1}, {8, -1}},                                            // m17: b23−b33
			{{6, -1}, {8, 1}},                                            // m18: −b31+b33
			{{3, 1}},                                                     // m19: b21
			{{7, 1}},                                                     // m20: b32
			{{2, 1}},                                                     // m21: b13
			{{1, 1}},                                                     // m22: b12
			{{8, 1}},                                                     // m23: b33
		},
		W: [][]tableTerm{
			{{5, 1}, {13, 1}, {18, 1}},                                   // c11 = m6+m14+m19
			{{0, 1}, {3, 1}, {4, 1}, {5, 1}, {11, 1}, {13, 1}, {14, 1}},  // c12
			{{5, 1}, {6, 1}, {8, 1}, {9, 1}, {13, 1}, {15, 1}, {17, 1}},  // c13
			{{1, 1}, {2, 1}, {3, 1}, {5, 1}, {13, 1}, {15, 1}, {16, 1}},  // c21
			{{1, 1}, {3, 1}, {4, 1}, {5, 1}, {19, 1}},                    // c22
			{{13, 1}, {15, 1}, {16, 1}, {17, 1}, {20, 1}},                // c23
			{{5, 1}, {6, 1}, {7, 1}, {10, 1}, {11, 1}, {12, 1}, {13, 1}}, // c31
			{{11, 1}, {12, 1}, {13, 1}, {14, 1}, {21, 1}},                // c32
			{{5, 1}, {6, 1}, {7, 1}, {8, 1}, {22, 1}},                    // c33
		},
	}
}

// tableAlgs registers the built-in table family in one initializer so
// every other package-level var (Algs, the named ids below) depends on
// it explicitly — Go's init-order analysis then guarantees the registry
// is populated before anyone reads it.
var tableAlgs = func() []Alg {
	return []Alg{
		register(winograd222Table()),
		register(strassen222Table()),
		register(glue323Table()),
		register(tensorTable("fast-4x2x4", winograd222Table(), classical212Table(), Winograd)),
		register(laderman333Table()),
	}
}()

// The table-driven algorithm ids, in registration order. The names
// follow the ⟨m,k,n⟩ convention so the -alg help text reads as the
// algorithm family.
var (
	TableWinograd222 = tableAlgs[0]
	TableStrassen222 = tableAlgs[1]
	TableFast323     = tableAlgs[2]
	TableFast424     = tableAlgs[3]
	TableLaderman333 = tableAlgs[4]
)
