package leaf

import (
	"os"
	"sort"
)

// Runtime CPU dispatch for the hardware micro-kernels.
//
// Each GOARCH with assembly kernels (currently amd64 with AVX2/FMA and
// arm64 with NEON) provides two hooks behind the `!noasm` build tag:
//
//   - archFeatures() — the SIMD capabilities the CPU and OS actually
//     support, probed once at startup (CPUID + XGETBV on amd64, the
//     auxv HWCAP vector on linux/arm64). Purely informational: it is
//     reported through Features regardless of whether the kernels are
//     enabled, so benchmark records always describe the hardware.
//   - archSIMD() — the micro-kernel families the probe unlocked, as
//     registry entries. A family plugs into the same packedMul driver
//     as the pure-Go kernels, so it inherits the packed-panel format,
//     the contiguous-tile fast path, and the scalar fringe handling
//     for m%MR / n%NR edges.
//
// Other GOARCHes, and any build with `-tags noasm`, compile the stub
// hooks in simd_noasm.go instead: no features, no kernels, pure Go
// everywhere. Setting RECMAT_NOSIMD (to any non-empty value) is the
// runtime equivalent: the assembly kernels are left out of the registry
// and the autotuner candidates, so every selection path — explicit
// KernelName, Calibrate, Auto — resolves to pure Go.

// simdImpl is one architecture-specific kernel implementation surfaced
// by archSIMD: the registry name, the micro-kernel family, and the CPU
// features it requires (informational, shown in docs and benches).
type simdImpl struct {
	name     string
	mk       *microImpl
	features string
}

// simdNames lists the assembly kernels registered on this host, sorted.
// Empty when the CPU lacks the features, under `-tags noasm`, on other
// GOARCHes, or with RECMAT_NOSIMD set.
var simdNames []string

func init() {
	if os.Getenv("RECMAT_NOSIMD") != "" {
		return
	}
	for _, si := range archSIMD() {
		kern, skern := kernelPair(si.mk)
		kernels[si.name] = Impl{Name: si.name, Kern: kern, Scratch: skern}
		simdNames = append(simdNames, si.name)
		candidates = append(candidates, si.name)
	}
	sort.Strings(simdNames)
}

// Features reports the SIMD capabilities detected on the host CPU, in
// sorted order. It describes the hardware, not the configuration: the
// list is unaffected by RECMAT_NOSIMD (use SIMDNames to see what is
// actually runnable). Empty on GOARCHes without a probe and under
// `-tags noasm` (the probe itself needs assembly).
func Features() []string {
	fs := append([]string(nil), archFeatures()...)
	sort.Strings(fs)
	return fs
}

// SIMDNames returns the names of the assembly kernels registered on
// this host, in sorted order — the subset of Names() that dispatches to
// hardware micro-kernels. Empty when none are available or when
// RECMAT_NOSIMD disabled them.
func SIMDNames() []string {
	return append([]string(nil), simdNames...)
}
