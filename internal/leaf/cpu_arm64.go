//go:build arm64 && !noasm

package leaf

import (
	"encoding/binary"
	"os"
	"runtime"
)

// NEON (AdvSIMD) is architecturally mandatory for the AArch64
// application profile and the Go runtime already assumes FP/SIMD state,
// so this probe is close to a formality; on linux it still consults the
// kernel's capability word (auxiliary vector AT_HWCAP, bit 1 = ASIMD)
// through /proc/self/auxv — stdlib-only — instead of assuming. Other
// arm64 OSes (darwin) expose no auxv and AdvSIMD is baseline there.
var cpuASIMD = detectASIMD()

func detectASIMD() bool {
	if runtime.GOOS != "linux" {
		return true
	}
	buf, err := os.ReadFile("/proc/self/auxv")
	if err != nil {
		// auxv unreadable (restricted procfs): fall back to the
		// architectural guarantee.
		return true
	}
	const atHWCAP, hwcapASIMD = 16, 1 << 1
	for i := 0; i+16 <= len(buf); i += 16 {
		if binary.LittleEndian.Uint64(buf[i:]) == atHWCAP {
			return binary.LittleEndian.Uint64(buf[i+8:])&hwcapASIMD != 0
		}
	}
	return true
}

// archFeatures reports the probed SIMD capabilities of this CPU.
func archFeatures() []string {
	if cpuASIMD {
		return []string{"asimd"}
	}
	return nil
}

// archSIMD returns the assembly kernel families this CPU can run.
func archSIMD() []simdImpl {
	if !cpuASIMD {
		return nil
	}
	return []simdImpl{{name: "neon", mk: microNEON, features: "asimd"}}
}
