package leaf

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestPackedFastPathMatchesPackedPath pins the two code paths of the
// packed kernels against each other: contiguous operands (lda==m,
// ldb==k, the recursive-tile fast path that skips packing) must produce
// exactly what strided operands (the canonical-view path that packs both
// panels) produce, for shapes on and off the MR/NR grid.
func TestPackedFastPathMatchesPackedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{4, 4, 4}, {8, 4, 8}, {16, 16, 16}, {32, 32, 32},
		{5, 5, 5}, {7, 3, 9}, {9, 6, 2}, {12, 11, 10},
		{1, 1, 1}, {8, 8, 1}, {1, 8, 8}, {33, 29, 31},
	}
	for _, name := range []string{"packed4x4", "packed8x4"} {
		k, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			m, n, kk := sh[0], sh[1], sh[2]
			// Contiguous operands: fast path.
			A := matrix.Random(m, kk, rng)
			B := matrix.Random(kk, n, rng)
			C0 := matrix.Random(m, n, rng)
			fast := C0.Clone()
			k(m, n, kk, A.Data, A.Stride, B.Data, B.Stride, fast.Data, fast.Stride)
			// The same operands embedded in larger matrices: packed path.
			bigA := matrix.Random(m+3, kk+2, rng)
			bigB := matrix.Random(kk+5, n+1, rng)
			av, bv := bigA.View(2, 1, m, kk), bigB.View(3, 0, kk, n)
			av.CopyFrom(A)
			bv.CopyFrom(B)
			slow := C0.Clone()
			k(m, n, kk, av.Data, av.Stride, bv.Data, bv.Stride, slow.Data, slow.Stride)
			if !matrix.Equal(fast, slow, 0) {
				t.Errorf("%s: fast path and packed path disagree at %dx%dx%d (max diff %g)",
					name, m, n, kk, matrix.MaxAbsDiff(fast, slow))
			}
			// And both must match the reference.
			want := C0.Clone()
			matrix.RefMulAdd(want, A, B)
			if !matrix.Equal(fast, want, 1e-12*float64(kk+1)) {
				t.Errorf("%s: wrong result at %dx%dx%d (max diff %g)",
					name, m, n, kk, matrix.MaxAbsDiff(fast, want))
			}
		}
	}
}

// TestPackedKernelsAllocFree verifies the steady-state allocation claim:
// after one warm-up call, the packed kernels allocate nothing, on both
// the pooled plain-Kernel path and the explicit Scratch path.
func TestPackedKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 48 // off the MR/NR grid on purpose, and strided to force packing
	big := matrix.Random(80, 80, rng)
	A, B := big.View(0, 0, n, n), big.View(16, 16, n, n)
	C := matrix.Random(n, n, rng)
	for _, name := range []string{"packed4x4", "packed8x4"} {
		kern, _ := Get(name)
		// The pooled path keeps its scratch in a sync.Pool, which any GC
		// may legitimately empty between the warm-up call and the
		// measurement (and the race detector plus neighboring packages
		// make that likely under `go test -race ./...`). Re-warm and
		// retry a few times: a real leak fails every attempt, a pool
		// eviction only the unlucky ones.
		avg := 1.0
		for attempt := 0; attempt < 5 && avg >= 1; attempt++ {
			kern(n, n, n, A.Data, A.Stride, B.Data, B.Stride, C.Data, C.Stride)
			avg = testing.AllocsPerRun(20, func() {
				kern(n, n, n, A.Data, A.Stride, B.Data, B.Stride, C.Data, C.Stride)
			})
		}
		if avg >= 1 {
			t.Errorf("%s (pooled): %.1f allocs/op in steady state, want 0", name, avg)
		}
	}
	var s Scratch
	impl, _ := GetImpl("packed8x4")
	impl.Scratch(&s, n, n, n, A.Data, A.Stride, B.Data, B.Stride, C.Data, C.Stride)
	avg := testing.AllocsPerRun(20, func() {
		impl.Scratch(&s, n, n, n, A.Data, A.Stride, B.Data, B.Stride, C.Data, C.Stride)
	})
	if avg != 0 {
		t.Errorf("packed8x4 (scratch): %.1f allocs/op in steady state, want 0", avg)
	}
}

// TestScratchAt pins the lazy per-slot scratch installation.
func TestScratchAt(t *testing.T) {
	var slot any
	s1 := ScratchAt(&slot)
	if s1 == nil {
		t.Fatal("ScratchAt returned nil")
	}
	if s2 := ScratchAt(&slot); s2 != s1 {
		t.Error("ScratchAt did not reuse the installed Scratch")
	}
}

// benchLeaf times kernel k on contiguous square leaves of side n — the
// exact call the recursive algorithms make on recursive-layout tiles.
func benchLeaf(b *testing.B, kern Kernel, n int, strided bool) {
	rng := rand.New(rand.NewSource(1))
	lda := n
	var A, B, C *matrix.Dense
	if strided {
		// Leaves of a canonical-layout run: views into a larger array.
		big := matrix.Random(4*n, 4*n, rng)
		A, B, C = big.View(0, 0, n, n), big.View(n, n, n, n), big.View(2*n, 2*n, n, n)
		lda = big.Stride
	} else {
		A, B, C = matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.New(n, n)
	}
	_ = lda
	b.SetBytes(int64(8 * n * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kern(n, n, n, A.Data, A.Stride, B.Data, B.Stride, C.Data, C.Stride)
	}
}

// BenchmarkKernelTile benchmarks every registered kernel at the default
// tile sizes on contiguous leaves (the recursive-layout case, lda == m)
// and strided leaves (the canonical case, lda >> m). The acceptance bar
// for this PR: packed ≥ 1.5× unrolled4 on contiguous square leaves.
func BenchmarkKernelTile(b *testing.B) {
	for _, n := range []int{32, 64} {
		for _, name := range Names() {
			if name == "naive" {
				continue
			}
			kern, _ := Get(name)
			b.Run(benchName(name, n, "contig"), func(b *testing.B) { benchLeaf(b, kern, n, false) })
			b.Run(benchName(name, n, "strided"), func(b *testing.B) { benchLeaf(b, kern, n, true) })
		}
	}
}

func benchName(kernel string, n int, variant string) string {
	return kernel + "/n" + itoa(n) + "/" + variant
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
