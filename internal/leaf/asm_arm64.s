//go:build arm64 && !noasm

#include "textflag.h"

// The NEON 4×4 micro-kernels. Register plan (both variants):
//
//	V0..V7   the 4×4 C block: column j rows 0-1 in V(2j), rows 2-3 in
//	         V(2j+1). Loaded before the k loop, stored once after.
//	V16, V17 the 4 A values of the current k step.
//	V20..V23 the 4 B values of the current k step, broadcast pairwise.
//
// Eight independent FMLA chains cover the FMA latency of every AArch64
// core with two 128-bit FP pipes.

// func micro4x4ppNEON(kc int, pa, pb []float64, c []float64, ldc int)
//
// Packed panels: A and B each advance 4 doubles per k step.
TEXT ·micro4x4ppNEON(SB), NOSPLIT, $0-88
	MOVD kc+0(FP), R0
	MOVD pa_base+8(FP), R1
	MOVD pb_base+32(FP), R2
	MOVD c_base+56(FP), R3
	MOVD ldc+80(FP), R4
	LSL  $3, R4, R4          // ldc in bytes
	ADD  R4, R3, R5          // column 1
	ADD  R4, R5, R6          // column 2
	ADD  R4, R6, R7          // column 3

	VLD1 (R3), [V0.D2, V1.D2]
	VLD1 (R5), [V2.D2, V3.D2]
	VLD1 (R6), [V4.D2, V5.D2]
	VLD1 (R7), [V6.D2, V7.D2]

	CBZ R0, pp_done

pp_loop:
	VLD1.P 32(R1), [V16.D2, V17.D2]
	VLD1.P 32(R2), [V18.D2, V19.D2]
	VDUP   V18.D[0], V20.D2
	VDUP   V18.D[1], V21.D2
	VDUP   V19.D[0], V22.D2
	VDUP   V19.D[1], V23.D2
	VFMLA  V20.D2, V16.D2, V0.D2
	VFMLA  V20.D2, V17.D2, V1.D2
	VFMLA  V21.D2, V16.D2, V2.D2
	VFMLA  V21.D2, V17.D2, V3.D2
	VFMLA  V22.D2, V16.D2, V4.D2
	VFMLA  V22.D2, V17.D2, V5.D2
	VFMLA  V23.D2, V16.D2, V6.D2
	VFMLA  V23.D2, V17.D2, V7.D2
	SUBS   $1, R0, R0
	BNE    pp_loop

pp_done:
	VST1 [V0.D2, V1.D2], (R3)
	VST1 [V2.D2, V3.D2], (R5)
	VST1 [V4.D2, V5.D2], (R6)
	VST1 [V6.D2, V7.D2], (R7)
	RET

// func micro4x4ddNEON(kc int, a []float64, lda int, b0, b1, b2, b3 []float64, c []float64, ldc int)
//
// Direct contiguous tiles: A advances lda doubles per k step (the 4
// loaded values are still contiguous), each B column pointer one double.
TEXT ·micro4x4ddNEON(SB), NOSPLIT, $0-168
	MOVD kc+0(FP), R0
	MOVD a_base+8(FP), R1
	MOVD lda+32(FP), R2
	LSL  $3, R2, R2          // A column stride in bytes
	MOVD b0_base+40(FP), R8
	MOVD b1_base+64(FP), R9
	MOVD b2_base+88(FP), R10
	MOVD b3_base+112(FP), R11
	MOVD c_base+136(FP), R3
	MOVD ldc+160(FP), R4
	LSL  $3, R4, R4          // ldc in bytes
	ADD  R4, R3, R5          // column 1
	ADD  R4, R5, R6          // column 2
	ADD  R4, R6, R7          // column 3

	VLD1 (R3), [V0.D2, V1.D2]
	VLD1 (R5), [V2.D2, V3.D2]
	VLD1 (R6), [V4.D2, V5.D2]
	VLD1 (R7), [V6.D2, V7.D2]

	CBZ R0, dd_done

dd_loop:
	VLD1  (R1), [V16.D2, V17.D2]
	ADD   R2, R1, R1
	FMOVD (R8), F20
	FMOVD (R9), F21
	FMOVD (R10), F22
	FMOVD (R11), F23
	ADD   $8, R8, R8
	ADD   $8, R9, R9
	ADD   $8, R10, R10
	ADD   $8, R11, R11
	VDUP  V20.D[0], V20.D2
	VDUP  V21.D[0], V21.D2
	VDUP  V22.D[0], V22.D2
	VDUP  V23.D[0], V23.D2
	VFMLA V20.D2, V16.D2, V0.D2
	VFMLA V20.D2, V17.D2, V1.D2
	VFMLA V21.D2, V16.D2, V2.D2
	VFMLA V21.D2, V17.D2, V3.D2
	VFMLA V22.D2, V16.D2, V4.D2
	VFMLA V22.D2, V17.D2, V5.D2
	VFMLA V23.D2, V16.D2, V6.D2
	VFMLA V23.D2, V17.D2, V7.D2
	SUBS  $1, R0, R0
	BNE   dd_loop

dd_done:
	VST1 [V0.D2, V1.D2], (R3)
	VST1 [V2.D2, V3.D2], (R5)
	VST1 [V4.D2, V5.D2], (R6)
	VST1 [V6.D2, V7.D2], (R7)
	RET
