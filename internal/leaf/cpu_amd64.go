//go:build amd64 && !noasm

package leaf

// CPU-feature detection for the amd64 assembly kernels, stdlib-only:
// the CPUID and XGETBV instructions are issued directly from
// cpuid_amd64.s. The AVX2/FMA kernel needs all of
//
//   - FMA  (CPUID.1:ECX bit 12) — the VFMADD231PD instruction,
//   - AVX  (CPUID.1:ECX bit 28) — the VEX 256-bit encoding,
//   - AVX2 (CPUID.7.0:EBX bit 5) — 256-bit VBROADCASTSD from memory,
//   - OSXSAVE (CPUID.1:ECX bit 27) plus XCR0 bits 1–2 — the OS saves
//     and restores the XMM/YMM halves of the vector state across
//     context switches. Without this check, an OS that never enabled
//     AVX state would corrupt registers mid-computation.

// cpuid executes CPUID with the given leaf and sub-leaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// cpuAVX2FMA is probed once at package init.
var cpuAVX2FMA = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// archFeatures reports the probed SIMD capabilities of this CPU.
func archFeatures() []string {
	if cpuAVX2FMA {
		return []string{"avx2", "fma"}
	}
	return nil
}

// archSIMD returns the assembly kernel families this CPU can run.
func archSIMD() []simdImpl {
	if !cpuAVX2FMA {
		return nil
	}
	return []simdImpl{{name: "avx2", mk: microAVX2, features: "avx2+fma"}}
}
