//go:build noasm || (!amd64 && !arm64)

package leaf

// Pure-Go fallback: GOARCHes without assembly kernels, and any build
// with `-tags noasm`, register no hardware kernels and report no CPU
// features (the feature probe itself is assembly). Every selection
// path then resolves to the pure-Go kernels.

func archFeatures() []string { return nil }

func archSIMD() []simdImpl { return nil }
