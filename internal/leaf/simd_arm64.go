//go:build arm64 && !noasm

package leaf

// The NEON micro-kernel family: a 4×4 block of C held in eight 2-double
// vector registers (two per column) while streaming through k with
// FMLA. Like the AVX2 family, both variants load the C block up front,
// accumulate in registers, and store once at the end. MR is 4 (not 8):
// AArch64 FMLA operates on 128-bit vectors, so a 4×4 block already
// yields eight independent accumulator chains — the same chain count
// the 8×4 AVX2 kernel needs 256-bit registers for.
var microNEON = &microImpl{mr: 4, pp: micro4x4ppNEON, dd: micro4x4ddNEON}

// micro4x4ppNEON is micro4x4pp in NEON assembly: packed panels, each k
// step reading 4+4 contiguous doubles.
//
//go:noescape
func micro4x4ppNEON(kc int, pa, pb []float64, c []float64, ldc int)

// micro4x4ddNEON is micro4x4dd in NEON assembly: contiguous tiles read
// in place, A advancing by lda doubles per k step and the four B
// columns by one.
//
//go:noescape
func micro4x4ddNEON(kc int, a []float64, lda int, b0, b1, b2, b3 []float64, c []float64, ldc int)
