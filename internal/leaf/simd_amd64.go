//go:build amd64 && !noasm

package leaf

// The AVX2/FMA micro-kernel family: an 8×4 block of C held in eight YMM
// accumulators (two 4-double registers per column) while streaming
// through k with VFMADD231PD. Both variants load the C block up front,
// accumulate into registers, and store once at the end — one rounding
// reordering versus the pure-Go kernels (C joins the sum first instead
// of last), well inside the differential-fuzz tolerance. The half-height
// direct fringe reuses the pure-Go 4×4 kernel: fringes are rare by
// construction (tile selection is biased to multiples of MicroM/MicroN)
// and not worth a second assembly body.
var microAVX2 = &microImpl{mr: 8, pp: micro8x4ppAVX2, dd: micro8x4ddAVX2, dd4: micro4x4dd}

// micro8x4ppAVX2 is micro8x4pp in AVX2/FMA assembly: packed panels, so
// each k step reads 8+4 contiguous doubles (two YMM loads of A, four
// broadcast loads of B). kc must be ≥ 0; c must expose a full 8×4 block.
//
//go:noescape
func micro8x4ppAVX2(kc int, pa, pb []float64, c []float64, ldc int)

// micro8x4ddAVX2 is micro8x4dd in AVX2/FMA assembly: contiguous tiles
// read in place, A advancing by lda doubles per k step and the four B
// columns by one.
//
//go:noescape
func micro8x4ddAVX2(kc int, a []float64, lda int, b0, b1, b2, b3 []float64, c []float64, ldc int)
