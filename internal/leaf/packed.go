package leaf

import "sync"

// The packed kernels fix NR = 4 B columns per micro-tile; MR is 4 or 8 A
// rows depending on the variant. Tile sizes that are multiples of these
// avoid the scalar fringe path entirely (tile.Config can be told to
// prefer such sizes; see Config.MicroM/MicroN).
const (
	// MicroM is the largest A-row count of any packed micro-kernel.
	MicroM = 8
	// MicroN is the B-column count of the packed micro-kernels.
	MicroN = 4
)

// ScratchKernel is a kernel that uses caller-provided scratch storage for
// its packing buffers instead of managing its own. The recursive driver
// calls this form with a per-worker Scratch so that steady-state leaf
// multiplication performs no allocation at all.
type ScratchKernel func(s *Scratch, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int)

// microImpl describes one register-blocked micro-kernel family: the
// MR-row block height plus the two storage-variant inner loops the
// packing driver dispatches to. The pure-Go families (microGo4/microGo8)
// and the architecture-specific assembly families (simd_*.go) all plug
// into the same packedMul/directMul driver, so every kernel shares one
// packing, fringe, and fast-path policy.
type microImpl struct {
	mr int
	// pp: C[0:mr,0:4] += Apanel·Bpanel on packed panels (pack.go format).
	pp func(kc int, pa, pb []float64, c []float64, ldc int)
	// dd: C[0:mr,0:4] += A·B reading contiguous tiles in place; a is
	// positioned at the block's first row with column stride lda, b0..b3
	// are the four B columns.
	dd func(kc int, a []float64, lda int, b0, b1, b2, b3 []float64, c []float64, ldc int)
	// dd4, when non-nil, is a half-height (4-row) direct kernel used for
	// the m%mr fringe that still fits a 4×4 micro-tile (mr == 8 only).
	dd4 func(kc int, a []float64, lda int, b0, b1, b2, b3 []float64, c []float64, ldc int)
}

// The pure-Go micro-kernel families behind packed4x4 and packed8x4.
var (
	microGo4 = &microImpl{mr: 4, pp: micro4x4pp, dd: micro4x4dd}
	microGo8 = &microImpl{mr: 8, pp: micro8x4pp, dd: micro8x4dd, dd4: micro4x4dd}
)

// packedMul is the shared body of the packed kernels: C += A·B through
// MR×4 register-blocked micro-tiles of the mk family.
//
// Fast path: when both operands are contiguous column-major tiles
// (lda == m and ldb == k) — precisely what the recursive layouts produce
// at every leaf — packing is skipped and the micro-kernels read the tiles
// in place. Otherwise (canonical layouts, where a leaf is a strided view
// into the full matrix) both operands are packed once into s, after which
// every k step of the inner loop is contiguous.
func packedMul(s *Scratch, mk *microImpl, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	const nr = MicroN
	mr := mk.mr
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	if lda == m && ldb == k {
		directMul(mk, m, n, k, a, b, c, ldc)
		return
	}
	mp := (m + mr - 1) / mr * mr
	np := (n + nr - 1) / nr * nr
	s.pa = grow(s.pa, mp*k)
	packA(mr, m, k, a, lda, s.pa)
	s.pb = grow(s.pb, np*k)
	packB(nr, k, n, b, ldb, s.pb)
	for j0 := 0; j0 < n; j0 += nr {
		pbp := s.pb[(j0/nr)*nr*k:]
		ncur := min(nr, n-j0)
		for i0 := 0; i0 < m; i0 += mr {
			pap := s.pa[(i0/mr)*mr*k:]
			mcur := min(mr, m-i0)
			cc := c[j0*ldc+i0:]
			if mcur == mr && ncur == nr {
				mk.pp(k, pap, pbp, cc, ldc)
			} else {
				microEdge(mcur, ncur, k, pap, mr, pbp, nr, 1, cc, ldc)
			}
		}
	}
}

// directMul runs the micro-kernels in place on contiguous tiles
// (lda == m, ldb == k) — no packing, no scratch.
func directMul(mk *microImpl, m, n, k int, a, b, c []float64, ldc int) {
	const nr = MicroN
	mr := mk.mr
	j0 := 0
	for ; j0+nr <= n; j0 += nr {
		b0 := b[j0*k : j0*k+k]
		b1 := b[(j0+1)*k : (j0+1)*k+k]
		b2 := b[(j0+2)*k : (j0+2)*k+k]
		b3 := b[(j0+3)*k : (j0+3)*k+k]
		i0 := 0
		for ; i0+mr <= m; i0 += mr {
			mk.dd(k, a[i0:], m, b0, b1, b2, b3, c[j0*ldc+i0:], ldc)
		}
		if mk.dd4 != nil && i0+4 <= m { // mr×4 fringe that still fits a 4×4 micro-tile
			mk.dd4(k, a[i0:], m, b0, b1, b2, b3, c[j0*ldc+i0:], ldc)
			i0 += 4
		}
		if i0 < m {
			microEdge(m-i0, nr, k, a[i0:], m, b[j0*k:], 1, k, c[j0*ldc+i0:], ldc)
		}
	}
	if j0 < n {
		microEdge(m, n-j0, k, a, m, b[j0*k:], 1, k, c[j0*ldc:], ldc)
	}
}

// scratchPool backs the plain-Kernel adapters below. sync.Pool keeps one
// Scratch per P in steady state, so repeated calls through the plain
// Kernel interface are also allocation-free after warm-up; the recursive
// driver bypasses this pool entirely via the ScratchKernel form.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// kernelPair builds the plain-Kernel (pooled scratch) and ScratchKernel
// forms of the packedMul driver over one micro-kernel family.
func kernelPair(mk *microImpl) (Kernel, ScratchKernel) {
	kern := func(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
		s := scratchPool.Get().(*Scratch)
		packedMul(s, mk, m, n, k, a, lda, b, ldb, c, ldc)
		scratchPool.Put(s)
	}
	skern := func(s *Scratch, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
		packedMul(s, mk, m, n, k, a, lda, b, ldb, c, ldc)
	}
	return kern, skern
}

// PackedScratch4x4 is the 4×4 packed kernel in ScratchKernel form.
func PackedScratch4x4(s *Scratch, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	packedMul(s, microGo4, m, n, k, a, lda, b, ldb, c, ldc)
}

// PackedScratch8x4 is the 8×4 packed kernel in ScratchKernel form.
func PackedScratch8x4(s *Scratch, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	packedMul(s, microGo8, m, n, k, a, lda, b, ldb, c, ldc)
}

// Packed4x4 is the packed-panel kernel with a 4×4 register block,
// self-managing its scratch through a pool.
func Packed4x4(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	s := scratchPool.Get().(*Scratch)
	packedMul(s, microGo4, m, n, k, a, lda, b, ldb, c, ldc)
	scratchPool.Put(s)
}

// Packed8x4 is the packed-panel kernel with an 8×4 register block,
// self-managing its scratch through a pool.
func Packed8x4(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	s := scratchPool.Get().(*Scratch)
	packedMul(s, microGo8, m, n, k, a, lda, b, ldb, c, ldc)
	scratchPool.Put(s)
}

// ScratchAt returns the Scratch stored in slot, installing a fresh one on
// first use. slot is typically the executing worker's local slot
// (sched.Ctx.WorkerSlot), making the packed kernels allocation-free in
// steady state without any locking.
func ScratchAt(slot *any) *Scratch {
	if s, ok := (*slot).(*Scratch); ok {
		return s
	}
	s := new(Scratch)
	*slot = s
	return s
}
