package leaf

import "sync"

// The packed kernels fix NR = 4 B columns per micro-tile; MR is 4 or 8 A
// rows depending on the variant. Tile sizes that are multiples of these
// avoid the scalar fringe path entirely (tile.Config can be told to
// prefer such sizes; see Config.MicroM/MicroN).
const (
	// MicroM is the largest A-row count of any packed micro-kernel.
	MicroM = 8
	// MicroN is the B-column count of the packed micro-kernels.
	MicroN = 4
)

// ScratchKernel is a kernel that uses caller-provided scratch storage for
// its packing buffers instead of managing its own. The recursive driver
// calls this form with a per-worker Scratch so that steady-state leaf
// multiplication performs no allocation at all.
type ScratchKernel func(s *Scratch, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int)

// packedMul is the shared body of the packed kernels: C += A·B through
// MR×4 register-blocked micro-tiles.
//
// Fast path: when both operands are contiguous column-major tiles
// (lda == m and ldb == k) — precisely what the recursive layouts produce
// at every leaf — packing is skipped and the micro-kernels read the tiles
// in place. Otherwise (canonical layouts, where a leaf is a strided view
// into the full matrix) both operands are packed once into s, after which
// every k step of the inner loop is contiguous.
func packedMul(s *Scratch, mr int, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	const nr = MicroN
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	if lda == m && ldb == k {
		directMul(mr, m, n, k, a, b, c, ldc)
		return
	}
	mp := (m + mr - 1) / mr * mr
	np := (n + nr - 1) / nr * nr
	s.pa = grow(s.pa, mp*k)
	packA(mr, m, k, a, lda, s.pa)
	s.pb = grow(s.pb, np*k)
	packB(nr, k, n, b, ldb, s.pb)
	for j0 := 0; j0 < n; j0 += nr {
		pbp := s.pb[(j0/nr)*nr*k:]
		ncur := min(nr, n-j0)
		for i0 := 0; i0 < m; i0 += mr {
			pap := s.pa[(i0/mr)*mr*k:]
			mcur := min(mr, m-i0)
			cc := c[j0*ldc+i0:]
			switch {
			case mcur == mr && ncur == nr && mr == 8:
				micro8x4pp(k, pap, pbp, cc, ldc)
			case mcur == mr && ncur == nr:
				micro4x4pp(k, pap, pbp, cc, ldc)
			default:
				microEdge(mcur, ncur, k, pap, mr, pbp, nr, 1, cc, ldc)
			}
		}
	}
}

// directMul runs the micro-kernels in place on contiguous tiles
// (lda == m, ldb == k) — no packing, no scratch.
func directMul(mr, m, n, k int, a, b, c []float64, ldc int) {
	const nr = MicroN
	j0 := 0
	for ; j0+nr <= n; j0 += nr {
		b0 := b[j0*k : j0*k+k]
		b1 := b[(j0+1)*k : (j0+1)*k+k]
		b2 := b[(j0+2)*k : (j0+2)*k+k]
		b3 := b[(j0+3)*k : (j0+3)*k+k]
		i0 := 0
		if mr == 8 {
			for ; i0+8 <= m; i0 += 8 {
				micro8x4dd(k, a[i0:], m, b0, b1, b2, b3, c[j0*ldc+i0:], ldc)
			}
		} else {
			for ; i0+4 <= m; i0 += 4 {
				micro4x4dd(k, a[i0:], m, b0, b1, b2, b3, c[j0*ldc+i0:], ldc)
			}
		}
		if i0+4 <= m { // 8×4 fringe that still fits a 4×4 micro-tile
			micro4x4dd(k, a[i0:], m, b0, b1, b2, b3, c[j0*ldc+i0:], ldc)
			i0 += 4
		}
		if i0 < m {
			microEdge(m-i0, nr, k, a[i0:], m, b[j0*k:], 1, k, c[j0*ldc+i0:], ldc)
		}
	}
	if j0 < n {
		microEdge(m, n-j0, k, a, m, b[j0*k:], 1, k, c[j0*ldc:], ldc)
	}
}

// scratchPool backs the plain-Kernel adapters below. sync.Pool keeps one
// Scratch per P in steady state, so repeated calls through the plain
// Kernel interface are also allocation-free after warm-up; the recursive
// driver bypasses this pool entirely via the ScratchKernel form.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// PackedScratch4x4 is the 4×4 packed kernel in ScratchKernel form.
func PackedScratch4x4(s *Scratch, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	packedMul(s, 4, m, n, k, a, lda, b, ldb, c, ldc)
}

// PackedScratch8x4 is the 8×4 packed kernel in ScratchKernel form.
func PackedScratch8x4(s *Scratch, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	packedMul(s, 8, m, n, k, a, lda, b, ldb, c, ldc)
}

// Packed4x4 is the packed-panel kernel with a 4×4 register block,
// self-managing its scratch through a pool.
func Packed4x4(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	s := scratchPool.Get().(*Scratch)
	packedMul(s, 4, m, n, k, a, lda, b, ldb, c, ldc)
	scratchPool.Put(s)
}

// Packed8x4 is the packed-panel kernel with an 8×4 register block,
// self-managing its scratch through a pool.
func Packed8x4(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	s := scratchPool.Get().(*Scratch)
	packedMul(s, 8, m, n, k, a, lda, b, ldb, c, ldc)
	scratchPool.Put(s)
}

// ScratchAt returns the Scratch stored in slot, installing a fresh one on
// first use. slot is typically the executing worker's local slot
// (sched.Ctx.WorkerSlot), making the packed kernels allocation-free in
// steady state without any locking.
func ScratchAt(slot *any) *Scratch {
	if s, ok := (*slot).(*Scratch); ok {
		return s
	}
	s := new(Scratch)
	*slot = s
	return s
}
