package leaf

import (
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"repro/internal/matrix"
)

// TestSIMDRegistration pins the dispatch wiring: every assembly kernel
// the probe unlocked is resolvable through the registry, distinct from
// the pure-Go set, and present among the autotuner candidates (so
// Calibrate actually races it).
func TestSIMDRegistration(t *testing.T) {
	pure := map[string]bool{"naive": true, "unrolled4": true, "axpy": true,
		"blocked": true, "packed4x4": true, "packed8x4": true}
	for _, name := range SIMDNames() {
		if pure[name] {
			t.Errorf("SIMD kernel %q collides with a pure-Go kernel name", name)
		}
		if _, err := GetImpl(name); err != nil {
			t.Errorf("SIMD kernel %q not resolvable: %v", name, err)
		}
		found := false
		for _, c := range candidates {
			if c == name {
				found = true
			}
		}
		if !found {
			t.Errorf("SIMD kernel %q missing from autotuner candidates %v", name, candidates)
		}
	}
	if (runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64") &&
		len(archFeatures()) > 0 && len(SIMDNames()) == 0 {
		t.Errorf("features %v detected but no SIMD kernel registered", Features())
	}
}

// TestSIMDFringes differentially checks the assembly kernels on shapes
// chosen to hit every fringe path: m%MR and n%NR remainders, half-height
// (4-row) direct fringes, single rows/columns, and k values that leave
// the micro-loop after 0 or 1 iterations — on both contiguous tiles
// (the direct path) and strided views (the packed-panel path).
func TestSIMDFringes(t *testing.T) {
	if len(SIMDNames()) == 0 {
		t.Skip("no SIMD kernels on this host")
	}
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{8, 4, 8}, {16, 8, 16}, // on-grid
		{9, 5, 7}, {15, 7, 9}, {23, 9, 31}, // off both grids
		{12, 4, 8}, {20, 8, 4}, // 4-row direct fringe of the 8-row kernel
		{1, 1, 1}, {1, 17, 3}, {33, 1, 29}, // degenerate rows/cols
		{7, 3, 1}, {5, 5, 2}, // tiny k
	}
	for _, name := range SIMDNames() {
		kern, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			m, n, k := sh[0], sh[1], sh[2]
			A := matrix.Random(m, k, rng)
			B := matrix.Random(k, n, rng)
			for _, strided := range []bool{false, true} {
				av, bv := A, B
				if strided {
					bigA := matrix.Random(m+5, k+3, rng)
					bigB := matrix.Random(k+2, n+7, rng)
					av, bv = bigA.View(1, 2, m, k), bigB.View(0, 3, k, n)
					av.CopyFrom(A)
					bv.CopyFrom(B)
				}
				C := matrix.Random(m, n, rng)
				want := C.Clone()
				matrix.RefMulAdd(want, A, B)
				kern(m, n, k, av.Data, av.Stride, bv.Data, bv.Stride, C.Data, C.Stride)
				if !matrix.Equal(C, want, 1e-12*float64(k+1)) {
					t.Errorf("%s wrong at %dx%dx%d strided=%v (max diff %g)",
						name, m, n, k, strided, matrix.MaxAbsDiff(C, want))
				}
			}
		}
	}
}

// TestNoSIMDEnv verifies the RECMAT_NOSIMD escape hatch end to end in a
// child process (registration happens at package init, so the env var
// must be set before the process starts): with it set, no assembly
// kernel is registered, lookup of the asm names fails, and Calibrate
// resolves to a pure-Go kernel.
func TestNoSIMDEnv(t *testing.T) {
	if os.Getenv("RECMAT_LEAF_NOSIMD_CHILD") == "1" {
		if n := SIMDNames(); len(n) != 0 {
			t.Fatalf("RECMAT_NOSIMD set but SIMD kernels registered: %v", n)
		}
		for _, name := range []string{"avx2", "neon"} {
			if _, err := Get(name); err == nil {
				t.Errorf("RECMAT_NOSIMD set but kernel %q still resolvable", name)
			}
		}
		pure := map[string]bool{"naive": true, "unrolled4": true, "axpy": true,
			"blocked": true, "packed4x4": true, "packed8x4": true}
		if got := Calibrate(64, 64, 64); !pure[got] {
			t.Errorf("Calibrate under RECMAT_NOSIMD selected %q, want a pure-Go kernel", got)
		}
		return
	}
	if len(SIMDNames()) == 0 {
		t.Skip("no SIMD kernels on this host; the escape hatch is a no-op")
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestNoSIMDEnv$", "-test.v")
	cmd.Env = append(os.Environ(), "RECMAT_NOSIMD=1", "RECMAT_LEAF_NOSIMD_CHILD=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process under RECMAT_NOSIMD failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "PASS") {
		t.Fatalf("child process did not pass:\n%s", out)
	}
}

// TestFeaturesSorted pins the Features contract: sorted, stable across
// calls, and safe to mutate the returned slice.
func TestFeaturesSorted(t *testing.T) {
	fs := Features()
	for i := 1; i < len(fs); i++ {
		if fs[i-1] >= fs[i] {
			t.Errorf("Features() not sorted: %q before %q", fs[i-1], fs[i])
		}
	}
	if len(fs) > 0 {
		fs[0] = "clobbered"
		if Features()[0] == "clobbered" {
			t.Error("Features() returned shared backing storage")
		}
	}
}

// BenchmarkKernels512 is the acceptance benchmark for the hardware
// kernels: every registered kernel (naive excluded — it would dominate
// the run for no information) on a contiguous 512³ leaf multiply, with
// GFLOPS reported. The SIMD step function shows up here as the asm
// kernel clearing ≥ 2× the best pure-Go kernel.
func BenchmarkKernels512(b *testing.B) {
	const n = 512
	for _, name := range Names() {
		if name == "naive" {
			continue
		}
		kern, _ := Get(name)
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			A := matrix.Random(n, n, rng)
			B := matrix.Random(n, n, rng)
			C := matrix.New(n, n)
			flops := 2 * float64(n) * float64(n) * float64(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kern(n, n, n, A.Data, A.Stride, B.Data, B.Stride, C.Data, C.Stride)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}
