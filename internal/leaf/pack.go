package leaf

// Packing turns the column-major operands of a leaf call into the panel
// formats the register-blocked micro-kernels consume:
//
//   - A (m×k, leading dimension lda) becomes ⌈m/MR⌉ row panels. Panel pi
//     holds rows [pi·MR, pi·MR+MR) of every column, interleaved so that
//     the micro-kernel reads MR consecutive elements per k step:
//     panel[p*MR+r] = A[pi*MR+r, p]. Rows past m are zero padding.
//   - B (k×n, leading dimension ldb) becomes ⌈n/NR⌉ column panels with
//     panel[p*NR+c] = B[p, pj*NR+c], columns past n zero padded.
//
// After packing, every k step of the micro-kernel touches exactly MR+NR
// contiguous doubles, independent of the original leading dimensions —
// this is what turns the memory-bound strided A walk of Unrolled4 into a
// streaming access pattern. When an operand is already a contiguous
// recursive-layout tile (lda == m, ldb == k) the packed kernels skip this
// step entirely; see packedMul.

// Scratch holds the per-worker packing buffers of the packed kernels.
// Buffers grow on demand and are retained across calls, so a worker that
// multiplies same-sized leaves (the steady state of the recursive
// algorithms) never allocates after its first leaf call. The zero value
// is ready to use.
type Scratch struct {
	pa []float64 // A packed into MR row panels
	pb []float64 // B packed into NR column panels
}

// grow returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are overwritten by the caller.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// packA packs A (m×k, column-major, leading dimension lda) into MR row
// panels in dst, zero-padding the last panel past row m. dst must hold
// ⌈m/mr⌉·mr·k elements.
func packA(mr, m, k int, a []float64, lda int, dst []float64) {
	for i0 := 0; i0 < m; i0 += mr {
		rows := mr
		if m-i0 < mr {
			rows = m - i0
		}
		panel := dst[(i0/mr)*mr*k:]
		for p := 0; p < k; p++ {
			src := a[p*lda+i0 : p*lda+i0+rows]
			d := panel[p*mr : p*mr+mr]
			copy(d, src)
			for r := rows; r < mr; r++ {
				d[r] = 0
			}
		}
	}
}

// packB packs B (k×n, column-major, leading dimension ldb) into NR
// column panels in dst, zero-padding the last panel past column n. dst
// must hold ⌈n/nr⌉·nr·k elements. The source is read column-by-column
// (unit stride); the interleaved writes stay within one resident panel.
func packB(nr, k, n int, b []float64, ldb int, dst []float64) {
	for j0 := 0; j0 < n; j0 += nr {
		cols := n - j0
		if cols > nr {
			cols = nr
		}
		panel := dst[(j0/nr)*nr*k:]
		for c := 0; c < cols; c++ {
			src := b[(j0+c)*ldb : (j0+c)*ldb+k]
			for p := 0; p < k; p++ {
				panel[p*nr+c] = src[p]
			}
		}
		if cols < nr {
			for p := 0; p < k; p++ {
				for c := cols; c < nr; c++ {
					panel[p*nr+c] = 0
				}
			}
		}
	}
}
