package leaf

import "math"

// Register-blocked micro-kernels. Each computes an MR×NR block of
// C += A·B holding the full block in scalar accumulators while streaming
// through k, the BLIS-style inner loop the packed kernels are built on.
// The (*[N]float64) slice-to-array-pointer conversions concentrate the
// bounds checking into one check per k step, letting the element loads
// compile to constant-offset, check-free instructions.
//
// Two storage variants exist per block shape:
//
//   - pp ("packed"): A and B are panel-packed (pack.go), so each k step
//     reads MR+NR contiguous doubles regardless of the original leading
//     dimensions. This is the path for canonical (large-ld) operands.
//   - dd ("direct"): A and B are contiguous column-major tiles
//     (lda == m, ldb == k) and are read in place with no packing — the
//     tiles the recursive layouts exist to create.
//
// microEdge handles the m%MR / n%NR fringe for both variants through
// explicit strides.

// micro4x4pp: C[0:4,0:4] += Apanel·Bpanel, panels packed at interleave 4.
func micro4x4pp(kc int, pa, pb []float64, c []float64, ldc int) {
	var c00, c10, c20, c30 float64
	var c01, c11, c21, c31 float64
	var c02, c12, c22, c32 float64
	var c03, c13, c23, c33 float64
	for p := 0; p < kc; p++ {
		aa := (*[4]float64)(pa[4*p:])
		bb := (*[4]float64)(pb[4*p:])
		a0, a1, a2, a3 := aa[0], aa[1], aa[2], aa[3]
		b0, b1, b2, b3 := bb[0], bb[1], bb[2], bb[3]
		c00 = math.FMA(a0, b0, c00)
		c10 = math.FMA(a1, b0, c10)
		c20 = math.FMA(a2, b0, c20)
		c30 = math.FMA(a3, b0, c30)
		c01 = math.FMA(a0, b1, c01)
		c11 = math.FMA(a1, b1, c11)
		c21 = math.FMA(a2, b1, c21)
		c31 = math.FMA(a3, b1, c31)
		c02 = math.FMA(a0, b2, c02)
		c12 = math.FMA(a1, b2, c12)
		c22 = math.FMA(a2, b2, c22)
		c32 = math.FMA(a3, b2, c32)
		c03 = math.FMA(a0, b3, c03)
		c13 = math.FMA(a1, b3, c13)
		c23 = math.FMA(a2, b3, c23)
		c33 = math.FMA(a3, b3, c33)
	}
	cc := (*[4]float64)(c[0*ldc:])
	cc[0] += c00
	cc[1] += c10
	cc[2] += c20
	cc[3] += c30
	cc = (*[4]float64)(c[1*ldc:])
	cc[0] += c01
	cc[1] += c11
	cc[2] += c21
	cc[3] += c31
	cc = (*[4]float64)(c[2*ldc:])
	cc[0] += c02
	cc[1] += c12
	cc[2] += c22
	cc[3] += c32
	cc = (*[4]float64)(c[3*ldc:])
	cc[0] += c03
	cc[1] += c13
	cc[2] += c23
	cc[3] += c33
}

// micro8x4pp: C[0:8,0:4] += Apanel·Bpanel, A packed at interleave 8.
// Thirty-two live accumulators exceed the register file on amd64, so this
// variant trades spills for halved loop overhead per FMA; the autotuner
// decides whether that trade wins on the host.
func micro8x4pp(kc int, pa, pb []float64, c []float64, ldc int) {
	var c00, c10, c20, c30, c40, c50, c60, c70 float64
	var c01, c11, c21, c31, c41, c51, c61, c71 float64
	var c02, c12, c22, c32, c42, c52, c62, c72 float64
	var c03, c13, c23, c33, c43, c53, c63, c73 float64
	for p := 0; p < kc; p++ {
		aa := (*[8]float64)(pa[8*p:])
		bb := (*[4]float64)(pb[4*p:])
		b0, b1, b2, b3 := bb[0], bb[1], bb[2], bb[3]
		a := aa[0]
		c00 = math.FMA(a, b0, c00)
		c01 = math.FMA(a, b1, c01)
		c02 = math.FMA(a, b2, c02)
		c03 = math.FMA(a, b3, c03)
		a = aa[1]
		c10 = math.FMA(a, b0, c10)
		c11 = math.FMA(a, b1, c11)
		c12 = math.FMA(a, b2, c12)
		c13 = math.FMA(a, b3, c13)
		a = aa[2]
		c20 = math.FMA(a, b0, c20)
		c21 = math.FMA(a, b1, c21)
		c22 = math.FMA(a, b2, c22)
		c23 = math.FMA(a, b3, c23)
		a = aa[3]
		c30 = math.FMA(a, b0, c30)
		c31 = math.FMA(a, b1, c31)
		c32 = math.FMA(a, b2, c32)
		c33 = math.FMA(a, b3, c33)
		a = aa[4]
		c40 = math.FMA(a, b0, c40)
		c41 = math.FMA(a, b1, c41)
		c42 = math.FMA(a, b2, c42)
		c43 = math.FMA(a, b3, c43)
		a = aa[5]
		c50 = math.FMA(a, b0, c50)
		c51 = math.FMA(a, b1, c51)
		c52 = math.FMA(a, b2, c52)
		c53 = math.FMA(a, b3, c53)
		a = aa[6]
		c60 = math.FMA(a, b0, c60)
		c61 = math.FMA(a, b1, c61)
		c62 = math.FMA(a, b2, c62)
		c63 = math.FMA(a, b3, c63)
		a = aa[7]
		c70 = math.FMA(a, b0, c70)
		c71 = math.FMA(a, b1, c71)
		c72 = math.FMA(a, b2, c72)
		c73 = math.FMA(a, b3, c73)
	}
	cc := (*[8]float64)(c[0*ldc:])
	cc[0] += c00
	cc[1] += c10
	cc[2] += c20
	cc[3] += c30
	cc[4] += c40
	cc[5] += c50
	cc[6] += c60
	cc[7] += c70
	cc = (*[8]float64)(c[1*ldc:])
	cc[0] += c01
	cc[1] += c11
	cc[2] += c21
	cc[3] += c31
	cc[4] += c41
	cc[5] += c51
	cc[6] += c61
	cc[7] += c71
	cc = (*[8]float64)(c[2*ldc:])
	cc[0] += c02
	cc[1] += c12
	cc[2] += c22
	cc[3] += c32
	cc[4] += c42
	cc[5] += c52
	cc[6] += c62
	cc[7] += c72
	cc = (*[8]float64)(c[3*ldc:])
	cc[0] += c03
	cc[1] += c13
	cc[2] += c23
	cc[3] += c33
	cc[4] += c43
	cc[5] += c53
	cc[6] += c63
	cc[7] += c73
}

// micro4x4dd: C[0:4,0:4] += A·B on contiguous column-major tiles read in
// place: a is positioned at the block's first row with column stride lda,
// b0..b3 are the four B columns (length ≥ kc).
func micro4x4dd(kc int, a []float64, lda int, b0, b1, b2, b3 []float64, c []float64, ldc int) {
	var c00, c10, c20, c30 float64
	var c01, c11, c21, c31 float64
	var c02, c12, c22, c32 float64
	var c03, c13, c23, c33 float64
	b0, b1, b2, b3 = b0[:kc], b1[:kc], b2[:kc], b3[:kc]
	ao := 0
	for p := 0; p < kc; p++ {
		aa := (*[4]float64)(a[ao:])
		a0, a1, a2, a3 := aa[0], aa[1], aa[2], aa[3]
		v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
		c00 = math.FMA(a0, v0, c00)
		c10 = math.FMA(a1, v0, c10)
		c20 = math.FMA(a2, v0, c20)
		c30 = math.FMA(a3, v0, c30)
		c01 = math.FMA(a0, v1, c01)
		c11 = math.FMA(a1, v1, c11)
		c21 = math.FMA(a2, v1, c21)
		c31 = math.FMA(a3, v1, c31)
		c02 = math.FMA(a0, v2, c02)
		c12 = math.FMA(a1, v2, c12)
		c22 = math.FMA(a2, v2, c22)
		c32 = math.FMA(a3, v2, c32)
		c03 = math.FMA(a0, v3, c03)
		c13 = math.FMA(a1, v3, c13)
		c23 = math.FMA(a2, v3, c23)
		c33 = math.FMA(a3, v3, c33)
		ao += lda
	}
	cc := (*[4]float64)(c[0*ldc:])
	cc[0] += c00
	cc[1] += c10
	cc[2] += c20
	cc[3] += c30
	cc = (*[4]float64)(c[1*ldc:])
	cc[0] += c01
	cc[1] += c11
	cc[2] += c21
	cc[3] += c31
	cc = (*[4]float64)(c[2*ldc:])
	cc[0] += c02
	cc[1] += c12
	cc[2] += c22
	cc[3] += c32
	cc = (*[4]float64)(c[3*ldc:])
	cc[0] += c03
	cc[1] += c13
	cc[2] += c23
	cc[3] += c33
}

// micro8x4dd is the 8×4 direct variant; see micro8x4pp for the register
// pressure trade-off.
func micro8x4dd(kc int, a []float64, lda int, b0, b1, b2, b3 []float64, c []float64, ldc int) {
	var c00, c10, c20, c30, c40, c50, c60, c70 float64
	var c01, c11, c21, c31, c41, c51, c61, c71 float64
	var c02, c12, c22, c32, c42, c52, c62, c72 float64
	var c03, c13, c23, c33, c43, c53, c63, c73 float64
	b0, b1, b2, b3 = b0[:kc], b1[:kc], b2[:kc], b3[:kc]
	ao := 0
	for p := 0; p < kc; p++ {
		aa := (*[8]float64)(a[ao:])
		v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
		av := aa[0]
		c00 = math.FMA(av, v0, c00)
		c01 = math.FMA(av, v1, c01)
		c02 = math.FMA(av, v2, c02)
		c03 = math.FMA(av, v3, c03)
		av = aa[1]
		c10 = math.FMA(av, v0, c10)
		c11 = math.FMA(av, v1, c11)
		c12 = math.FMA(av, v2, c12)
		c13 = math.FMA(av, v3, c13)
		av = aa[2]
		c20 = math.FMA(av, v0, c20)
		c21 = math.FMA(av, v1, c21)
		c22 = math.FMA(av, v2, c22)
		c23 = math.FMA(av, v3, c23)
		av = aa[3]
		c30 = math.FMA(av, v0, c30)
		c31 = math.FMA(av, v1, c31)
		c32 = math.FMA(av, v2, c32)
		c33 = math.FMA(av, v3, c33)
		av = aa[4]
		c40 = math.FMA(av, v0, c40)
		c41 = math.FMA(av, v1, c41)
		c42 = math.FMA(av, v2, c42)
		c43 = math.FMA(av, v3, c43)
		av = aa[5]
		c50 = math.FMA(av, v0, c50)
		c51 = math.FMA(av, v1, c51)
		c52 = math.FMA(av, v2, c52)
		c53 = math.FMA(av, v3, c53)
		av = aa[6]
		c60 = math.FMA(av, v0, c60)
		c61 = math.FMA(av, v1, c61)
		c62 = math.FMA(av, v2, c62)
		c63 = math.FMA(av, v3, c63)
		av = aa[7]
		c70 = math.FMA(av, v0, c70)
		c71 = math.FMA(av, v1, c71)
		c72 = math.FMA(av, v2, c72)
		c73 = math.FMA(av, v3, c73)
		ao += lda
	}
	cc := (*[8]float64)(c[0*ldc:])
	cc[0] += c00
	cc[1] += c10
	cc[2] += c20
	cc[3] += c30
	cc[4] += c40
	cc[5] += c50
	cc[6] += c60
	cc[7] += c70
	cc = (*[8]float64)(c[1*ldc:])
	cc[0] += c01
	cc[1] += c11
	cc[2] += c21
	cc[3] += c31
	cc[4] += c41
	cc[5] += c51
	cc[6] += c61
	cc[7] += c71
	cc = (*[8]float64)(c[2*ldc:])
	cc[0] += c02
	cc[1] += c12
	cc[2] += c22
	cc[3] += c32
	cc[4] += c42
	cc[5] += c52
	cc[6] += c62
	cc[7] += c72
	cc = (*[8]float64)(c[3*ldc:])
	cc[0] += c03
	cc[1] += c13
	cc[2] += c23
	cc[3] += c33
	cc[4] += c43
	cc[5] += c53
	cc[6] += c63
	cc[7] += c73
}

// microEdge computes the mr×nr fringe block C += A·B with explicit
// strides: A(r,p) = a[p*as+r], B(p,c) = b[p*bs+c*be], C(r,c) =
// c[c*ldc+r]. It serves every fringe case of both storage variants —
// packed panels (as=MR, bs=NR, be=1, zero padding makes over-reads
// harmless) and direct tiles (as=lda, bs=1, be=ldb, bounds exact).
func microEdge(mr, nr, kc int, a []float64, as int, b []float64, bs, be int, c []float64, ldc int) {
	for cj := 0; cj < nr; cj++ {
		for ri := 0; ri < mr; ri++ {
			var sum float64
			ao, bo := ri, cj*be
			for p := 0; p < kc; p++ {
				sum = math.FMA(a[ao], b[bo], sum)
				ao += as
				bo += bs
			}
			c[cj*ldc+ri] += sum
		}
	}
}
