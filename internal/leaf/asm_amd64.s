//go:build amd64 && !noasm

#include "textflag.h"

// The AVX2/FMA 8×4 micro-kernels. Register plan (both variants):
//
//	Y0..Y7   the 8×4 C block: column j rows 0-3 in Y(2j), rows 4-7 in
//	         Y(2j+1). Loaded before the k loop, stored once after — the
//	         accumulate (C += A·B) contract with no separate epilogue add.
//	Y8, Y9   the 8 A values of the current k step.
//	Y10..Y13 the 4 B values of the current k step, broadcast.
//
// Eight independent FMA chains keep both FMA pipes saturated (latency 4,
// throughput 2/cycle needs ≥ 8 in flight). The k loop is not unrolled:
// 6 loads + 8 FMAs per step already bound the loop on the FMA ports.

// func micro8x4ppAVX2(kc int, pa, pb []float64, c []float64, ldc int)
//
// Packed panels: A advances 8 doubles and B 4 doubles per k step.
TEXT ·micro8x4ppAVX2(SB), NOSPLIT, $0-88
	MOVQ kc+0(FP), CX
	MOVQ pa_base+8(FP), SI
	MOVQ pb_base+32(FP), DX
	MOVQ c_base+56(FP), DI
	MOVQ ldc+80(FP), R8
	SHLQ $3, R8              // ldc in bytes
	LEAQ (R8)(R8*2), R9      // 3·ldc in bytes

	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (DI)(R8*1), Y2
	VMOVUPD 32(DI)(R8*1), Y3
	VMOVUPD (DI)(R8*2), Y4
	VMOVUPD 32(DI)(R8*2), Y5
	VMOVUPD (DI)(R9*1), Y6
	VMOVUPD 32(DI)(R9*1), Y7

	TESTQ CX, CX
	JLE   pp_done

pp_loop:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DX), Y10
	VBROADCASTSD 8(DX), Y11
	VBROADCASTSD 16(DX), Y12
	VBROADCASTSD 24(DX), Y13
	VFMADD231PD  Y10, Y8, Y0
	VFMADD231PD  Y10, Y9, Y1
	VFMADD231PD  Y11, Y8, Y2
	VFMADD231PD  Y11, Y9, Y3
	VFMADD231PD  Y12, Y8, Y4
	VFMADD231PD  Y12, Y9, Y5
	VFMADD231PD  Y13, Y8, Y6
	VFMADD231PD  Y13, Y9, Y7
	ADDQ         $64, SI
	ADDQ         $32, DX
	DECQ         CX
	JNZ          pp_loop

pp_done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (DI)(R8*1)
	VMOVUPD Y3, 32(DI)(R8*1)
	VMOVUPD Y4, (DI)(R8*2)
	VMOVUPD Y5, 32(DI)(R8*2)
	VMOVUPD Y6, (DI)(R9*1)
	VMOVUPD Y7, 32(DI)(R9*1)
	VZEROUPPER
	RET

// func micro8x4ddAVX2(kc int, a []float64, lda int, b0, b1, b2, b3 []float64, c []float64, ldc int)
//
// Direct contiguous tiles: A advances lda doubles per k step (the 8
// loaded values are still contiguous), each B column pointer one double.
TEXT ·micro8x4ddAVX2(SB), NOSPLIT, $0-168
	MOVQ kc+0(FP), CX
	MOVQ a_base+8(FP), SI
	MOVQ lda+32(FP), AX
	SHLQ $3, AX              // A column stride in bytes
	MOVQ b0_base+40(FP), R10
	MOVQ b1_base+64(FP), R11
	MOVQ b2_base+88(FP), R12
	MOVQ b3_base+112(FP), R13
	MOVQ c_base+136(FP), DI
	MOVQ ldc+160(FP), R8
	SHLQ $3, R8              // ldc in bytes
	LEAQ (R8)(R8*2), R9      // 3·ldc in bytes

	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (DI)(R8*1), Y2
	VMOVUPD 32(DI)(R8*1), Y3
	VMOVUPD (DI)(R8*2), Y4
	VMOVUPD 32(DI)(R8*2), Y5
	VMOVUPD (DI)(R9*1), Y6
	VMOVUPD 32(DI)(R9*1), Y7

	TESTQ CX, CX
	JLE   dd_done

dd_loop:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (R10), Y10
	VBROADCASTSD (R11), Y11
	VBROADCASTSD (R12), Y12
	VBROADCASTSD (R13), Y13
	VFMADD231PD  Y10, Y8, Y0
	VFMADD231PD  Y10, Y9, Y1
	VFMADD231PD  Y11, Y8, Y2
	VFMADD231PD  Y11, Y9, Y3
	VFMADD231PD  Y12, Y8, Y4
	VFMADD231PD  Y12, Y9, Y5
	VFMADD231PD  Y13, Y8, Y6
	VFMADD231PD  Y13, Y9, Y7
	ADDQ         AX, SI
	ADDQ         $8, R10
	ADDQ         $8, R11
	ADDQ         $8, R12
	ADDQ         $8, R13
	DECQ         CX
	JNZ          dd_loop

dd_done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (DI)(R8*1)
	VMOVUPD Y3, 32(DI)(R8*1)
	VMOVUPD Y4, (DI)(R8*2)
	VMOVUPD Y5, 32(DI)(R8*2)
	VMOVUPD Y6, (DI)(R9*1)
	VMOVUPD Y7, 32(DI)(R9*1)
	VZEROUPPER
	RET
