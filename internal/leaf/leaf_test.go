package leaf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// runKernel applies a kernel to matrix.Dense operands.
func runKernel(k Kernel, C, A, B *matrix.Dense) {
	k(C.Rows, C.Cols, A.Cols, A.Data, A.Stride, B.Data, B.Stride, C.Data, C.Stride)
}

func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {4, 4, 4}, {5, 7, 3}, {8, 8, 8},
		{16, 16, 16}, {17, 19, 23}, {32, 1, 32}, {1, 32, 1}, {33, 31, 29},
	}
	for name := range kernels {
		k, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			m, n, kk := sh[0], sh[1], sh[2]
			A := matrix.Random(m, kk, rng)
			B := matrix.Random(kk, n, rng)
			C := matrix.Random(m, n, rng)
			want := C.Clone()
			matrix.RefMulAdd(want, A, B)
			runKernel(k, C, A, B)
			if !matrix.Equal(C, want, 1e-12) {
				t.Errorf("%s: wrong result for %dx%dx%d (max diff %g)",
					name, m, n, kk, matrix.MaxAbsDiff(C, want))
			}
		}
	}
}

func TestKernelsAccumulate(t *testing.T) {
	// Kernels must compute C += A·B, not C = A·B.
	rng := rand.New(rand.NewSource(2))
	A := matrix.Random(8, 8, rng)
	B := matrix.Random(8, 8, rng)
	for name, impl := range kernels {
		k := impl.Kern
		C := matrix.Random(8, 8, rng)
		want := C.Clone()
		matrix.RefMulAdd(want, A, B)
		runKernel(k, C, A, B)
		if !matrix.Equal(C, want, 1e-12) {
			t.Errorf("%s does not accumulate into C", name)
		}
	}
}

func TestKernelsOnStridedViews(t *testing.T) {
	// The canonical-layout leaf case: tiles are views into a big matrix
	// with leading dimension much larger than the tile.
	rng := rand.New(rand.NewSource(3))
	big := matrix.Random(64, 64, rng)
	A := big.View(3, 5, 12, 9)
	B := big.View(20, 17, 9, 10)
	for name, impl := range kernels {
		k := impl.Kern
		C := matrix.Random(12, 10, rng)
		want := C.Clone()
		matrix.RefMulAdd(want, A, B)
		runKernel(k, C, A, B)
		if !matrix.Equal(C, want, 1e-12) {
			t.Errorf("%s wrong on strided views", name)
		}
	}
}

func TestKernelsZeroDims(t *testing.T) {
	for name, impl := range kernels {
		k := impl.Kern
		// m, n, or k of zero must be a no-op and must not panic.
		c := []float64{42}
		k(0, 0, 0, nil, 1, nil, 1, c, 1)
		k(1, 1, 0, nil, 1, nil, 1, c, 1)
		if c[0] != 42 {
			t.Errorf("%s modified C with k=0", name)
		}
	}
}

func TestKernelsAgreePropertyBased(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, kk := 1+rng.Intn(24), 1+rng.Intn(24), 1+rng.Intn(24)
		A := matrix.Random(m, kk, rng)
		B := matrix.Random(kk, n, rng)
		C0 := matrix.Random(m, n, rng)
		var prev *matrix.Dense
		for _, name := range Names() {
			k, _ := Get(name)
			C := C0.Clone()
			runKernel(k, C, A, B)
			if prev != nil && !matrix.Equal(C, prev, 1e-12) {
				return false
			}
			prev = C
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("sgemm"); err == nil {
		t.Fatal("Get on unknown kernel should error")
	}
}

func TestNamesRegistered(t *testing.T) {
	for _, n := range Names() {
		if _, err := Get(n); err != nil {
			t.Errorf("Names() lists unregistered kernel %q", n)
		}
	}
	if len(Names()) != len(kernels) {
		t.Errorf("Names() has %d entries, registry has %d", len(Names()), len(kernels))
	}
}

func benchKernel(b *testing.B, k Kernel, n int) {
	rng := rand.New(rand.NewSource(1))
	A := matrix.Random(n, n, rng)
	B := matrix.Random(n, n, rng)
	C := matrix.New(n, n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runKernel(k, C, A, B)
	}
}

func BenchmarkKernels64(b *testing.B) {
	for _, name := range Names() {
		k, _ := Get(name)
		b.Run(name, func(b *testing.B) { benchKernel(b, k, 64) })
	}
}
