package leaf

import (
	"math/rand"
	"sync"
	"time"
)

// The runtime autotuner. The paper ran a single fixed leaf kernel (the
// four-way-unrolled C routine); which kernel is fastest here depends on
// the host CPU and the leaf shape, so the driver instead benchmarks the
// candidate kernels once per leaf shape at first use and remembers the
// winner. The measurement multiplies contiguous tiles — the case the
// recursive layouts produce — so the selection favors the configuration
// the layouts are designed to create.

// candidates are the kernels the autotuner measures, cheapest-to-probe
// subset of the registry: Naive is excluded (never competitive, and
// probing it at large tiles is pure waste). The assembly kernels the
// CPU supports are appended at init (simd.go), so the autotuner always
// races pure Go against whatever the hardware offers.
var candidates = []string{"unrolled4", "axpy", "blocked", "packed4x4", "packed8x4"}

// calReps is the number of timed repetitions per candidate; the minimum
// is kept, which rejects scheduler noise.
const calReps = 3

// calCap bounds the probed dimensions so that calibration stays in the
// millisecond range even when a caller forces degenerate whole-matrix
// tiles; relative kernel speed is stable above the cap.
const calCap = 128

type tuneKey struct{ m, n, k int }

var (
	tuneMu    sync.Mutex
	tuneCache = map[tuneKey]string{}
)

// Calibrate benchmarks the candidate kernels on an m×n×k leaf
// multiplication over contiguous operands and returns the name of the
// fastest. Results are memoized per shape; the first call for a shape
// costs a few milliseconds, subsequent calls are a map lookup.
func Calibrate(m, n, k int) string {
	if m > calCap {
		m = calCap
	}
	if n > calCap {
		n = calCap
	}
	if k > calCap {
		k = calCap
	}
	if m < 1 {
		m = 1
	}
	if n < 1 {
		n = 1
	}
	if k < 1 {
		k = 1
	}
	key := tuneKey{m, n, k}
	tuneMu.Lock()
	defer tuneMu.Unlock()
	if name, ok := tuneCache[key]; ok {
		return name
	}
	name := measure(m, n, k)
	tuneCache[key] = name
	return name
}

// Auto returns the autotuned implementation for an m×n×k leaf shape.
func Auto(m, n, k int) Impl {
	impl, _ := GetImpl(Calibrate(m, n, k))
	return impl
}

// measure times each candidate and returns the winner's name.
func measure(m, n, k int) string {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	bestName := candidates[0]
	bestTime := time.Duration(1<<63 - 1)
	for _, name := range candidates {
		impl, err := GetImpl(name)
		if err != nil {
			continue
		}
		impl.Kern(m, n, k, a, m, b, k, c, m) // warm up (and fault in scratch)
		elapsed := time.Duration(1<<63 - 1)
		for r := 0; r < calReps; r++ {
			t0 := time.Now()
			impl.Kern(m, n, k, a, m, b, k, c, m)
			if d := time.Since(t0); d < elapsed {
				elapsed = d
			}
		}
		if elapsed < bestTime {
			bestTime, bestName = elapsed, name
		}
	}
	return bestName
}

// ResetCalibration clears the memoized autotuner selections (tests).
func ResetCalibration() {
	tuneMu.Lock()
	tuneCache = map[tuneKey]string{}
	tuneMu.Unlock()
}
