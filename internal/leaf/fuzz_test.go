package leaf

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzKernelsVsNaive differentially checks every registered kernel
// against Naive on arbitrary shapes, contiguous and strided. The seed
// corpus pins the cases that have bitten register-blocked kernels
// before: zero dimensions, single elements, shapes off the 8×4 and 4×4
// micro-tile grids, and extreme aspect ratios. `go test` runs the seeds;
// `go test -fuzz FuzzKernelsVsNaive` explores further.
func FuzzKernelsVsNaive(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), false)
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), false)
	f.Add(int64(3), uint8(0), uint8(5), uint8(3), true)
	f.Add(int64(4), uint8(4), uint8(4), uint8(4), false)
	f.Add(int64(5), uint8(8), uint8(4), uint8(8), false)
	f.Add(int64(6), uint8(7), uint8(9), uint8(5), true) // off both micro grids
	f.Add(int64(7), uint8(12), uint8(11), uint8(10), false)
	f.Add(int64(8), uint8(33), uint8(31), uint8(29), true)
	f.Add(int64(9), uint8(1), uint8(40), uint8(2), true) // lean
	f.Add(int64(10), uint8(40), uint8(1), uint8(47), false) // wide
	// Regression: k=0 with m%4 != 0 made Blocked4x4 slice an empty A at
	// a nonzero offset (found by this fuzzer).
	f.Add(int64(11), uint8(21), uint8(16), uint8(0), false)
	f.Fuzz(func(t *testing.T, seed int64, mu, nu, ku uint8, strided bool) {
		m, n, k := int(mu%48), int(nu%48), int(ku%48)
		lda, ldb, ldc := m, k, m
		if strided {
			lda, ldb, ldc = m+3, k+5, m+2
		}
		rng := rand.New(rand.NewSource(seed))
		fill := func(len int) []float64 {
			s := make([]float64, len)
			for i := range s {
				s[i] = rng.Float64()*2 - 1
			}
			return s
		}
		a, b, c0 := fill(lda*k), fill(ldb*n), fill(ldc*n)
		want := append([]float64(nil), c0...)
		Naive(m, n, k, a, lda, b, ldb, want, ldc)
		tol := 1e-12 * float64(k+1)
		// Registry-driven: every registered kernel is checked against the
		// reference, with exactly one exception — the reference itself.
		// The count assertion fails loudly if a future registration path
		// somehow skips a kernel, so new assembly kernels cannot dodge
		// differential coverage by accident.
		checked := 0
		for _, name := range Names() {
			if name == "naive" {
				continue
			}
			kern, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			got := append([]float64(nil), c0...)
			kern(m, n, k, a, lda, b, ldb, got, ldc)
			for i := range got {
				if d := math.Abs(got[i] - want[i]); d > tol {
					t.Fatalf("%s disagrees with naive at %dx%dx%d (lda=%d ldb=%d ldc=%d): elem %d off by %g",
						name, m, n, k, lda, ldb, ldc, i, d)
				}
			}
			checked++
		}
		if checked != len(Names())-1 {
			t.Fatalf("differentially checked %d kernels, registry has %d (naive excluded): a registered kernel was silently skipped",
				checked, len(Names())-1)
		}
	})
}

// TestNamesSorted pins the deterministic ordering contract of Names —
// sorted and duplicate-free — and that the registry contains the
// pure-Go baseline set plus every assembly kernel the host unlocked
// (SIMDNames), without hardcoding the per-architecture names.
func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not strictly sorted: %q before %q", names[i-1], names[i])
		}
	}
	want := map[string]bool{
		"naive": true, "unrolled4": true, "axpy": true,
		"blocked": true, "packed4x4": true, "packed8x4": true,
	}
	for _, n := range SIMDNames() {
		want[n] = true
	}
	for _, n := range names {
		delete(want, n)
	}
	for n := range want {
		t.Errorf("Names() missing %q", n)
	}
}

// TestCalibrateMemoizes pins the autotuner contract: a legal kernel
// name, stable across calls for the same shape, and consistent with
// Auto.
func TestCalibrateMemoizes(t *testing.T) {
	ResetCalibration()
	n1 := Calibrate(32, 32, 32)
	if _, err := Get(n1); err != nil {
		t.Fatalf("Calibrate returned unknown kernel %q", n1)
	}
	if n2 := Calibrate(32, 32, 32); n2 != n1 {
		t.Errorf("Calibrate not memoized: %q then %q", n1, n2)
	}
	if impl := Auto(32, 32, 32); impl.Name != n1 {
		t.Errorf("Auto = %q, Calibrate = %q", impl.Name, n1)
	}
	// Shapes beyond the calibration cap share the capped entry.
	big := Calibrate(1<<20, 1<<20, 1<<20)
	if capd := Calibrate(128, 128, 128); big != capd {
		t.Errorf("capped shape %q differs from cap %q", big, capd)
	}
}
