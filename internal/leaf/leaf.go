// Package leaf provides the leaf-level matrix multiplication kernels that
// run when the recursive algorithms of the paper reach a t_R × t_C tile.
//
// The paper's experimental setup (Section 5) could not link the vendor
// dgemm under Cilk and instead used "a C version of a 6-loop tiled matrix
// multiplication routine with the innermost accumulation loop unrolled
// four-way". This package reproduces that kernel (Unrolled4) together
// with a deliberately naive kernel and a register-blocked kernel that
// stands in for the vendor BLAS in the Figure 7 experiment (see DESIGN.md
// for the substitution rationale).
//
// Every kernel computes C += A·B on column-major operands with explicit
// leading dimensions, so the same kernel serves both the canonical
// layouts (where a leaf tile is a view into the full matrix with leading
// dimension n) and the recursive layouts (where a leaf tile is contiguous
// with leading dimension t_R). This distinction — leading dimension n
// versus t_R — is exactly the memory-system effect the paper studies.
package leaf

import (
	"fmt"
	"sort"
)

// Kernel computes C += A·B, where A is m×k with leading dimension lda,
// B is k×n with leading dimension ldb, and C is m×n with leading
// dimension ldc, all column-major.
type Kernel func(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int)

// Naive is the textbook i-j-k triple loop with no unrolling and
// element-at-a-time addressing. It anchors the slow end of the Figure 7
// kernel-quality comparison.
func Naive(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := c[j*ldc+i]
			for p := 0; p < k; p++ {
				sum += a[p*lda+i] * b[j*ldb+p]
			}
			c[j*ldc+i] = sum
		}
	}
}

// Unrolled4 is the paper's leaf kernel: the innermost accumulation (k)
// loop is unrolled four-way. Loop order is j-i-k so that the unrolled
// accumulation runs down a row of A and a column of B; column-major A
// makes the A accesses strided, exactly as in the original C routine.
func Unrolled4(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		bcol := b[j*ldb : j*ldb+k]
		ccol := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+4 <= k; p += 4 {
				s0 += a[p*lda+i] * bcol[p]
				s1 += a[(p+1)*lda+i] * bcol[p+1]
				s2 += a[(p+2)*lda+i] * bcol[p+2]
				s3 += a[(p+3)*lda+i] * bcol[p+3]
			}
			for ; p < k; p++ {
				s0 += a[p*lda+i] * bcol[p]
			}
			ccol[i] += (s0 + s1) + (s2 + s3)
		}
	}
}

// Axpy is a column-oriented j-k-i kernel: for each column of C it
// accumulates scaled columns of A. On column-major data every inner-loop
// access is unit-stride, which is the idiom native BLAS implementations
// of the era used for the unblocked case.
func Axpy(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		ccol := c[j*ldc : j*ldc+m]
		for p := 0; p < k; p++ {
			bpj := b[j*ldb+p]
			if bpj == 0 {
				continue
			}
			acol := a[p*lda : p*lda+m]
			for i := range ccol {
				ccol[i] += acol[i] * bpj
			}
		}
	}
}

// Blocked4x4 is a register-blocked kernel holding a 4×4 sub-block of C in
// scalars while streaming through k. It is the fastest pure-Go kernel in
// this package and stands in for the vendor-supplied native dgemm in the
// Figure 7 reproduction.
func Blocked4x4(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if k <= 0 {
		// k = 0 is a no-op, and the fringe hand-off below would slice
		// into the (empty) A at a nonzero row offset.
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := b[j*ldb:]
		b1 := b[(j+1)*ldb:]
		b2 := b[(j+2)*ldb:]
		b3 := b[(j+3)*ldb:]
		c0 := c[j*ldc:]
		c1 := c[(j+1)*ldc:]
		c2 := c[(j+2)*ldc:]
		c3 := c[(j+3)*ldc:]
		i := 0
		for ; i+4 <= m; i += 4 {
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			for p := 0; p < k; p++ {
				ap := a[p*lda+i:]
				a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
				v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
				c00 += a0 * v0
				c10 += a1 * v0
				c20 += a2 * v0
				c30 += a3 * v0
				c01 += a0 * v1
				c11 += a1 * v1
				c21 += a2 * v1
				c31 += a3 * v1
				c02 += a0 * v2
				c12 += a1 * v2
				c22 += a2 * v2
				c32 += a3 * v2
				c03 += a0 * v3
				c13 += a1 * v3
				c23 += a2 * v3
				c33 += a3 * v3
			}
			c0[i] += c00
			c0[i+1] += c10
			c0[i+2] += c20
			c0[i+3] += c30
			c1[i] += c01
			c1[i+1] += c11
			c1[i+2] += c21
			c1[i+3] += c31
			c2[i] += c02
			c2[i+1] += c12
			c2[i+2] += c22
			c2[i+3] += c32
			c3[i] += c03
			c3[i+1] += c13
			c3[i+2] += c23
			c3[i+3] += c33
		}
		if i < m {
			Axpy(m-i, 4, k, a[i:], lda, b[j*ldb:], ldb, c[j*ldc+i:], ldc)
		}
	}
	if j < n {
		Axpy(m, n-j, k, a, lda, b[j*ldb:], ldb, c[j*ldc:], ldc)
	}
}

// Impl is one registered kernel implementation. Kern is always usable
// through the plain Kernel interface; Scratch, when non-nil, is the same
// kernel taking caller-provided packing buffers so the recursive driver
// can hand it per-worker scratch (see ScratchKernel).
type Impl struct {
	Name    string
	Kern    Kernel
	Scratch ScratchKernel
}

// kernels is the registry of named kernels used by the command-line
// tools, the autotuner, and the Figure 7 experiment. The pure-Go
// kernels below are always present; the architecture-specific assembly
// kernels ("avx2" on amd64, "neon" on arm64) are added at init by
// simd.go when the CPU supports them and RECMAT_NOSIMD is unset.
var kernels = map[string]Impl{
	"naive":     {Name: "naive", Kern: Naive},
	"unrolled4": {Name: "unrolled4", Kern: Unrolled4},
	"axpy":      {Name: "axpy", Kern: Axpy},
	"blocked":   {Name: "blocked", Kern: Blocked4x4},
	"packed4x4": {Name: "packed4x4", Kern: Packed4x4, Scratch: PackedScratch4x4},
	"packed8x4": {Name: "packed8x4", Kern: Packed8x4, Scratch: PackedScratch8x4},
}

// Names returns the registered kernel names in deterministic (sorted)
// order.
func Names() []string {
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the kernel registered under name.
func Get(name string) (Kernel, error) {
	impl, err := GetImpl(name)
	if err != nil {
		return nil, err
	}
	return impl.Kern, nil
}

// GetImpl returns the full implementation record registered under name.
func GetImpl(name string) (Impl, error) {
	impl, ok := kernels[name]
	if !ok {
		return Impl{}, fmt.Errorf("leaf: unknown kernel %q", name)
	}
	return impl, nil
}

// Default is the kernel the paper's experiments use unless overridden:
// the four-way-unrolled routine. The driver's default is the autotuned
// selection (see Auto); Default remains the fixed-kernel baseline.
// There is deliberately no fixed "best" kernel any more (the old
// `Best = Blocked4x4` predated the packed and assembly kernels and had
// gone stale): callers that want the fastest kernel for a shape resolve
// it through Auto/Calibrate, which measures on the actual host.
var Default Kernel = Unrolled4
