// Package tile implements the tile-size selection, padding, and
// wide/lean-matrix decomposition logic of Section 4 of the paper.
//
// The recursive layouts require (equation (2)) that the padded matrix be
// a 2^d × 2^d grid of t_R × t_C tiles with every tile size drawn from an
// architecture-dependent range [Tmin, Tmax]: tiles must not be so small
// that recursion overhead dominates, nor so large that a tile trio
// overflows the cache. For a matrix multiplication the three dimensions
// (m, k, n) must share the same depth d.
//
// Matrices whose aspect ratio exceeds α = Tmax/Tmin (called wide or lean
// in the paper) admit no such tiling; they are cut into squat submatrices
// first (Figure 3), and the product is reconstructed from submatrix
// products.
package tile

import (
	"fmt"

	"repro/internal/bits"
)

// Config carries the architecture-dependent tile-size range of Section 4
// plus a preferred tile size used to break ties among equally-padded
// choices (the Figure 4 experiment shows a broad performance plateau; the
// sweet spot on the paper's machine was 16–32).
type Config struct {
	TMin, TMax int
	// TSweet is the preferred tile size; among depth choices whose
	// padded volume is within PadSlack of the minimum, the one whose
	// largest tile is closest to TSweet wins.
	TSweet int
	// PadSlack is the tolerated relative increase in padded volume when
	// preferring a sweeter tile size (e.g. 0.05 = 5%).
	PadSlack float64
	// MicroM and MicroN, when positive, express a register-blocked leaf
	// kernel's micro-tile shape: among the near-tie candidates (within
	// PadSlack of the minimum padded volume), choices whose first-dim
	// tile is a multiple of MicroM and last-dim tile a multiple of
	// MicroN are preferred, before the TSweet distance is compared. A
	// micro-aligned tile never enters the kernel's scalar fringe path.
	// Zero values (the default) leave selection exactly as before.
	MicroM, MicroN int
}

// DefaultConfig mirrors the paper's effective choices: tiles between 16
// and 64 elements on a side, preferring 32.
var DefaultConfig = Config{TMin: 16, TMax: 64, TSweet: 32, PadSlack: 0.05}

// Alpha returns α = Tmax/Tmin, the squatness bound of Section 4.
func (c Config) Alpha() float64 {
	return float64(c.TMax) / float64(c.TMin)
}

// Classify reports the paper's aspect-ratio class for an m×n matrix:
// "wide" when m/n > α, "lean" when m/n < 1/α, "squat" otherwise.
func (c Config) Classify(m, n int) string {
	r := float64(m) / float64(n)
	a := c.Alpha()
	switch {
	case r > a:
		return "wide"
	case r < 1/a:
		return "lean"
	default:
		return "squat"
	}
}

// Choice is the result of tile selection: a common depth d and, for each
// requested dimension, the tile size and padded extent (tile << d).
type Choice struct {
	D      uint  // recursion depth: 2^d tiles per side
	Tiles  []int // tile size per dimension
	Padded []int // padded extent per dimension: Tiles[i] << D
	// Strict reports whether every tile size lies in [TMin, TMax] as
	// equation (2) demands. When false, the fallback that permits
	// undersized tiles was used (tiny or extreme-aspect inputs).
	Strict bool
}

// maxDepth bounds the search; 2^26 tiles per side is far beyond any
// in-memory matrix.
const maxDepth = 26

// Pick selects a common depth d and per-dimension tile sizes for the
// given dimensions (two for a layout conversion, three for a matrix
// multiplication). It minimizes the padded volume, breaking near-ties
// (within PadSlack) in favor of tile sizes near TSweet. Pick always
// succeeds: if no depth satisfies the strict [TMin, TMax] constraint, it
// relaxes the lower bound (Strict=false in the result).
//
// Note that squatness (aspect ratio ≤ α) is necessary but not sufficient
// for a strict choice to exist: each dimension admits depths in a real
// interval of width lg α, and the integer depths inside those intervals
// may fail to intersect even when the intervals overlap (for example,
// dimensions 439 and 1062 under the default range). The paper's footnote
// 2 proves only the necessary direction; the fallback covers the gap.
func (c Config) Pick(dims ...int) Choice {
	if len(dims) == 0 {
		panic("tile: Pick with no dimensions")
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tile: non-positive dimension %d", d))
		}
	}
	best := c.pick(dims, true)
	if best.D == maxDepth+1 { // no strict choice exists
		best = c.pick(dims, false)
		best.Strict = false
	} else {
		best.Strict = true
	}
	return best
}

// pick searches depths 0..maxDepth. When strict, a tile size below TMin
// is rejected unless d == 0 (whole matrix as one tile).
func (c Config) pick(dims []int, strict bool) Choice {
	type cand struct {
		d     uint
		tiles []int
		vol   float64
		maxT  int
	}
	var cands []cand
	for d := uint(0); d <= maxDepth; d++ {
		side := 1 << d
		tiles := make([]int, len(dims))
		vol := 1.0
		maxT := 0
		ok := true
		for i, dim := range dims {
			t := bits.CeilDiv(dim, side)
			if t > c.TMax || (strict && d > 0 && t < c.TMin) {
				ok = false
				break
			}
			tiles[i] = t
			vol *= float64(t * side)
			if t > maxT {
				maxT = t
			}
		}
		if ok {
			cands = append(cands, cand{d, tiles, vol, maxT})
		}
		// Once every dimension yields a single-element tile there is no
		// point searching deeper.
		if side >= dims[0] {
			all := true
			for _, dim := range dims {
				if side < dim {
					all = false
				}
			}
			if all && d > 0 {
				break
			}
		}
	}
	if len(cands) == 0 {
		return Choice{D: maxDepth + 1}
	}
	minVol := cands[0].vol
	for _, cd := range cands[1:] {
		if cd.vol < minVol {
			minVol = cd.vol
		}
	}
	// The first Pick dimension is the kernel's m (rows of C), the last
	// its n (columns of C); a candidate is micro-aligned when both are
	// multiples of the configured micro-tile shape.
	aligned := func(tiles []int) bool {
		if c.MicroM > 0 && tiles[0]%c.MicroM != 0 {
			return false
		}
		if c.MicroN > 0 && tiles[len(tiles)-1]%c.MicroN != 0 {
			return false
		}
		return true
	}
	bestIdx := -1
	bestDist := 1 << 30
	bestAligned := false
	for i, cd := range cands {
		if cd.vol > minVol*(1+c.PadSlack) {
			continue
		}
		al := aligned(cd.tiles)
		dist := cd.maxT - c.TSweet
		if dist < 0 {
			dist = -dist
		}
		var better bool
		switch {
		case bestIdx < 0:
			better = true
		case al != bestAligned:
			better = al
		default:
			better = dist < bestDist
		}
		if better {
			bestIdx, bestDist, bestAligned = i, dist, al
		}
	}
	ch := cands[bestIdx]
	padded := make([]int, len(dims))
	for i, t := range ch.tiles {
		padded[i] = t << ch.d
	}
	return Choice{D: ch.d, Tiles: ch.tiles, Padded: padded}
}

// Seg is one segment of a split dimension.
type Seg struct {
	Off, Len int
}

// SplitDim cuts a dimension of the given length into the fewest
// near-equal segments of length at most maxLen.
func SplitDim(length, maxLen int) []Seg {
	if length <= maxLen {
		return []Seg{{0, length}}
	}
	parts := bits.CeilDiv(length, maxLen)
	segs := make([]Seg, 0, parts)
	off := 0
	for p := 0; p < parts; p++ {
		// Distribute the remainder so segments differ by at most 1.
		l := length / parts
		if p < length%parts {
			l++
		}
		segs = append(segs, Seg{off, l})
		off += l
	}
	return segs
}

// SplitDims decomposes a multiplication with dimensions (m, k, n) into
// segments per dimension such that each sub-multiplication is squat
// enough for Pick to satisfy the strict tile constraint (Figure 3 of the
// paper). The products over the k segments accumulate into the same C
// blocks; the (m, n) block grid is embarrassingly parallel.
func (c Config) SplitDims(m, k, n int) (ms, ks, ns []Seg) {
	short := m
	if k < short {
		short = k
	}
	if n < short {
		short = n
	}
	if short < c.TMin {
		short = c.TMin
	}
	maxLen := int(float64(short) * c.Alpha())
	return SplitDim(m, maxLen), SplitDim(k, maxLen), SplitDim(n, maxLen)
}
