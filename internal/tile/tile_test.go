package tile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPickExactPowerOfTwo(t *testing.T) {
	// n = 1024 with the default range admits zero-padding choices; the
	// sweet-spot tie break should pick tile 32 (closest to TSweet).
	ch := DefaultConfig.Pick(1024, 1024, 1024)
	if !ch.Strict {
		t.Fatal("1024 should satisfy the strict constraint")
	}
	for i, p := range ch.Padded {
		if p != 1024 {
			t.Fatalf("padding introduced for dim %d: %d", i, p)
		}
	}
	if ch.Tiles[0] != 32 {
		t.Errorf("tile = %d, want the sweet spot 32", ch.Tiles[0])
	}
}

func TestPickPaddingBound(t *testing.T) {
	// Section 4: with tiles in [Tmin, Tmax], pad ratio is at most 1/Tmin.
	cfg := DefaultConfig
	for _, n := range []int{500, 777, 1000, 1025, 1200, 1500, 2047} {
		ch := cfg.Pick(n, n, n)
		if !ch.Strict {
			t.Errorf("n=%d: expected strict choice", n)
			continue
		}
		for _, p := range ch.Padded {
			ratio := float64(p-n) / float64(n)
			if ratio > 1.0/float64(cfg.TMin) {
				t.Errorf("n=%d: pad ratio %.4f exceeds 1/Tmin", n, ratio)
			}
			if p < n {
				t.Errorf("n=%d: padded %d < n", n, p)
			}
		}
	}
}

func TestPickTilesInRange(t *testing.T) {
	cfg := DefaultConfig
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 64 + rng.Intn(2000)
		k := 64 + rng.Intn(2000)
		n := 64 + rng.Intn(2000)
		// Note: squatness (ratio ≤ α) is necessary but NOT sufficient
		// for a strict common depth — the per-dimension integer depth
		// windows may fail to intersect (e.g. dims 439 and 1062 with
		// the default range). So we only assert that when Pick reports
		// Strict, the tiles really are in range, and that the fallback
		// never overflows TMax.
		ch := cfg.Pick(m, k, n)
		for _, tl := range ch.Tiles {
			if tl > cfg.TMax {
				return false
			}
			if ch.Strict && ch.D > 0 && tl < cfg.TMin {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPickPaperCounterexample(t *testing.T) {
	// The paper's footnote 2 example: m=1024, n=256, Tmin=17, Tmax=32
	// admits no strict common tiling (aspect ratio 4 > α ≈ 1.88).
	cfg := Config{TMin: 17, TMax: 32, TSweet: 24, PadSlack: 0.05}
	ch := cfg.Pick(1024, 256)
	if ch.Strict {
		t.Fatalf("strict choice found (d=%d tiles=%v) where the paper proves none exists", ch.D, ch.Tiles)
	}
	// The fallback must still produce a usable (if padded) tiling.
	if ch.Padded[0] < 1024 || ch.Padded[1] < 256 {
		t.Fatal("fallback under-covers the matrix")
	}
}

func TestPickSmallMatrixSingleTile(t *testing.T) {
	ch := DefaultConfig.Pick(8, 8, 8)
	if ch.D != 0 || ch.Tiles[0] != 8 {
		t.Fatalf("small matrix should be one tile, got d=%d tiles=%v", ch.D, ch.Tiles)
	}
}

func TestPickAlwaysCovers(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1 + rng.Intn(5000), 1 + rng.Intn(5000), 1 + rng.Intn(5000)}
		ch := DefaultConfig.Pick(dims...)
		for i := range dims {
			if ch.Padded[i] < dims[i] || ch.Tiles[i]<<ch.D != ch.Padded[i] {
				return false
			}
			if ch.Tiles[i] > DefaultConfig.TMax {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClassify(t *testing.T) {
	cfg := DefaultConfig // α = 4
	cases := []struct {
		m, n int
		want string
	}{
		{1024, 1024, "squat"},
		{1024, 256, "squat"}, // ratio exactly 4 = α
		{1025, 256, "wide"},
		{256, 1025, "lean"},
		{100, 10000, "lean"},
	}
	for _, c := range cases {
		if got := cfg.Classify(c.m, c.n); got != c.want {
			t.Errorf("Classify(%d,%d) = %q, want %q", c.m, c.n, got, c.want)
		}
	}
}

func TestSplitDim(t *testing.T) {
	segs := SplitDim(10, 3)
	// 10 into pieces of ≤3: four near-equal segments.
	if len(segs) != 4 {
		t.Fatalf("got %d segments: %v", len(segs), segs)
	}
	total, off := 0, 0
	for _, s := range segs {
		if s.Off != off {
			t.Fatalf("segments not contiguous: %v", segs)
		}
		if s.Len > 3 || s.Len < 2 {
			t.Fatalf("segment length %d not near-equal: %v", s.Len, segs)
		}
		total += s.Len
		off += s.Len
	}
	if total != 10 {
		t.Fatalf("segments cover %d, want 10", total)
	}
}

func TestSplitDimNoSplit(t *testing.T) {
	segs := SplitDim(5, 10)
	if len(segs) != 1 || segs[0] != (Seg{0, 5}) {
		t.Fatalf("unexpected split: %v", segs)
	}
}

func TestSplitDimsMakesSquat(t *testing.T) {
	cfg := DefaultConfig
	cases := [][3]int{
		{4096, 256, 256},  // wide A
		{256, 4096, 256},  // lean A, wide B
		{256, 256, 4096},  // lean B
		{8192, 128, 8192}, // outer-product-ish
		{100, 100, 100},   // already squat: no splitting
	}
	for _, c := range cases {
		ms, ks, ns := cfg.SplitDims(c[0], c[1], c[2])
		for _, sm := range ms {
			for _, sk := range ks {
				for _, sn := range ns {
					ch := cfg.Pick(sm.Len, sk.Len, sn.Len)
					if !ch.Strict && sm.Len >= cfg.TMin && sk.Len >= cfg.TMin && sn.Len >= cfg.TMin {
						t.Errorf("dims (%d,%d,%d) split (%d,%d,%d) still not strictly tileable",
							c[0], c[1], c[2], sm.Len, sk.Len, sn.Len)
					}
				}
			}
		}
	}
	// The squat case must not split at all.
	ms, ks, ns := cfg.SplitDims(100, 100, 100)
	if len(ms) != 1 || len(ks) != 1 || len(ns) != 1 {
		t.Error("squat dims should not be split")
	}
}

func TestSplitDimsCoverage(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6000), 1+rng.Intn(6000), 1+rng.Intn(6000)
		ms, ks, ns := DefaultConfig.SplitDims(m, k, n)
		cover := func(segs []Seg, dim int) bool {
			off := 0
			for _, s := range segs {
				if s.Off != off || s.Len <= 0 {
					return false
				}
				off += s.Len
			}
			return off == dim
		}
		return cover(ms, m) && cover(ks, k) && cover(ns, n)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAlpha(t *testing.T) {
	if DefaultConfig.Alpha() != 4 {
		t.Fatalf("default α = %g, want 4", DefaultConfig.Alpha())
	}
}

func TestPickMicroAlignmentTieBreak(t *testing.T) {
	// 448 = 56·2³ = 28·2⁴: both tilings pad to exactly 448, so they tie
	// on volume. Plain TSweet distance prefers 28 (|28−32| < |56−32|),
	// but 28 is not a multiple of the 8×4 micro-tile while 56 is.
	plain := DefaultConfig
	ch := plain.Pick(448, 448, 448)
	if ch.Tiles[0] != 28 {
		t.Fatalf("baseline pick for 448 = %d, want 28 (test premise)", ch.Tiles[0])
	}
	micro := DefaultConfig
	micro.MicroM, micro.MicroN = 8, 4
	ch = micro.Pick(448, 448, 448)
	if ch.Tiles[0] != 56 || ch.Tiles[2] != 56 {
		t.Errorf("micro-aware pick for 448 = %v, want tiles of 56", ch.Tiles)
	}
	if !ch.Strict {
		t.Error("micro-aware pick lost strictness")
	}
	// When no aligned candidate exists the tie-break must fall back to
	// TSweet distance unchanged: 176 = 44·2² = 22·2³, neither a multiple
	// of 8.
	ch = micro.Pick(176, 176, 176)
	if ch.Tiles[0] != 22 {
		t.Errorf("pick for 176 with no aligned candidate = %v, want 22", ch.Tiles)
	}
}
