package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	// 100 observations uniform in (0, 1]: every quantile lands in the
	// first bucket and interpolates from 0.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := r.Snapshot()
	if q := s.Quantile("lat", 0.5); math.Abs(q-0.5) > 1e-9 {
		t.Fatalf("p50 of uniform(0,1] = %g, want 0.5", q)
	}
	if q := s.Quantile("lat", 1); math.Abs(q-1) > 1e-9 {
		t.Fatalf("p100 = %g, want 1", q)
	}
	// Add 100 observations at 3: p75 should now be inside (2,4].
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	s = r.Snapshot()
	q := s.Quantile("lat", 0.75)
	if q <= 2 || q > 4 {
		t.Fatalf("p75 = %g, want in (2,4]", q)
	}
	// Overflow rank clamps to the last bound.
	h.Observe(100)
	s = r.Snapshot()
	if q := s.Quantile("lat", 1); q != 8 {
		t.Fatalf("overflow quantile = %g, want last bound 8", q)
	}
	// Unknown name and empty histogram are 0.
	if q := s.Quantile("nope", 0.9); q != 0 {
		t.Fatalf("unknown histogram quantile = %g, want 0", q)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", SecondsBuckets)
	h.Observe(0.002)
	h.Observe(0.002)
	prev := r.Snapshot().Histograms["lat"]
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(0.5)
	d := r.Snapshot().Histograms["lat"].Sub(prev)
	if d.Count != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count)
	}
	if q := d.Quantile(0.5); q <= 0.3 || q > 1 {
		t.Fatalf("delta p50 = %g, want in (0.3, 1] (only the 0.5s are in the window)", q)
	}
	// Mismatched shapes fall back to h.
	odd := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{0, 0}}
	if got := d.Sub(odd); got.Count != d.Count {
		t.Fatalf("mismatched Sub should return receiver unchanged")
	}
}

func TestOpenMetricsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total_served").Add(7)
	r.Gauge("queue_depth").Set(3)
	h := r.Histogram("request_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.004)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE requests_total_served counter",
		"requests_total_served_total 7",
		"# TYPE queue_depth gauge",
		"queue_depth 3",
		"# TYPE request_seconds histogram",
		`request_seconds_bucket{le="0.01"} 1`,
		`request_seconds_bucket{le="0.1"} 2`,
		`request_seconds_bucket{le="1"} 2`,
		`request_seconds_bucket{le="+Inf"} 3`,
		"request_seconds_count 3",
		"# EOF",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	st, err := LintOpenMetrics(buf.Bytes())
	if err != nil {
		t.Fatalf("LintOpenMetrics rejected our own exposition: %v\n%s", err, text)
	}
	if st.Families != 3 || st.Histograms != 1 {
		t.Fatalf("lint stats = %+v, want 3 families / 1 histogram", st)
	}
}

func TestLintOpenMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"missing EOF":      "# TYPE a counter\na_total 1\n",
		"no TYPE":          "a_total 1\n# EOF\n",
		"bad counter name": "# TYPE a counter\na 1\n# EOF\n",
		"non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n# EOF\n",
		"no inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n# EOF\n",
		"inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n# EOF\n",
		"bad value": "# TYPE a gauge\na xyz\n# EOF\n",
	}
	for name, text := range cases {
		if _, err := LintOpenMetrics([]byte(text)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", name, text)
		}
	}
}

func TestLedgerRing(t *testing.T) {
	r := NewLedgerRing(4)
	for i := 1; i <= 6; i++ {
		r.Record(Ledger{Trace: int64(i), Outcome: "ok"})
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
	got := r.Recent(0)
	if len(got) != 4 {
		t.Fatalf("Recent(0) returned %d ledgers, want 4", len(got))
	}
	for i, want := range []int64{6, 5, 4, 3} {
		if got[i].Trace != want {
			t.Fatalf("Recent[%d].Trace = %d, want %d (newest first)", i, got[i].Trace, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].Trace != 6 {
		t.Fatalf("Recent(2) = %+v, want traces [6 5]", got)
	}
}

func TestRequestLaneFlowExport(t *testing.T) {
	tr := NewTracer(2, 64)
	serialA, serialB := NextTraceSerial(), NextTraceSerial()
	t0 := tr.start

	// Two request lanes, one shared wave: both requests' wave items run
	// on worker tracks carrying the requests' serials as args.
	laneA, laneB := tr.NewRequestLane(), tr.NewRequestLane()
	tr.LaneSpan(laneA, KindRequest, t0, 10*time.Millisecond, serialA)
	tr.LaneSpan(laneB, KindRequest, t0.Add(time.Millisecond), 9*time.Millisecond, serialB)
	tr.Span(0, KindWaveItem, t0.Add(2*time.Millisecond), 3*time.Millisecond, serialA)
	tr.Span(1, KindWaveItem, t0.Add(2*time.Millisecond), 3*time.Millisecond, serialB)
	// An unmatched wave item (owner's request span lost to wraparound)
	// must not emit a dangling flow.
	tr.Span(0, KindWaveItem, t0.Add(6*time.Millisecond), time.Millisecond, 999999)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	sum, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace with flows failed validation: %v\n%s", err, buf.String())
	}
	if sum.Flows != 4 {
		t.Fatalf("Flows = %d, want 4 (2 starts + 2 finishes)", sum.Flows)
	}
	if sum.FlowLinks != 2 {
		t.Fatalf("FlowLinks = %d, want 2 linked requests", sum.FlowLinks)
	}
	if sum.RequestTracks != 2 {
		t.Fatalf("RequestTracks = %d, want 2", sum.RequestTracks)
	}
	if sum.ByName["request"] != 2 || sum.ByName["wave-item"] != 3 {
		t.Fatalf("ByName = %v, want 2 request spans and 3 wave items", sum.ByName)
	}
	// The request lanes must be named "request N" in the metadata.
	var raw struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	reqLanes := 0
	for _, e := range raw.TraceEvents {
		if e.Ph == "M" && strings.HasPrefix(e.Args.Name, "request ") {
			reqLanes++
		}
	}
	if reqLanes != 2 {
		t.Fatalf("found %d request-lane name records, want 2", reqLanes)
	}
}

func TestFlowValidationCatchesDangling(t *testing.T) {
	trace := `{"traceEvents":[
		{"name":"a","ph":"X","tid":1,"ts":0,"dur":5},
		{"name":"req-flow","ph":"s","tid":1,"ts":0,"id":7}
	]}`
	if _, err := ValidateChromeTrace([]byte(trace)); err == nil {
		t.Fatal("validator accepted a flow start with no finish")
	}
	trace = `{"traceEvents":[
		{"name":"a","ph":"X","tid":1,"ts":0,"dur":5},
		{"name":"req-flow","ph":"f","bp":"e","tid":1,"ts":1,"id":7}
	]}`
	if _, err := ValidateChromeTrace([]byte(trace)); err == nil {
		t.Fatal("validator accepted a flow finish with no start")
	}
}

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	reg.Counter("requests").Add(3)
	reg.Histogram("request_seconds", SecondsBuckets).Observe(0.01)
	ring := NewLedgerRing(8)
	ring.Record(Ledger{ID: "req-1", Trace: 42, Tenant: "t0", Outcome: "ok", TotalNS: 1000})

	fr, err := NewFlightRecorder(FlightConfig{
		SpoolDir:    dir,
		Ring:        ring,
		Metrics:     reg,
		MinInterval: time.Hour,
		MaxBundles:  2,
	})
	if err != nil {
		t.Fatalf("NewFlightRecorder: %v", err)
	}
	defer fr.Close()
	if !fr.Armed() {
		t.Fatal("recorder failed to arm its tracer")
	}
	// Record something into the armed window so trace.json has content.
	cur := Cur()
	if cur == nil {
		t.Fatal("armed tracer is not the current tracer")
	}
	lane := cur.NewRequestLane()
	cur.LaneSpan(lane, KindRequest, time.Now(), time.Millisecond, 42)

	name, err := fr.Dump("slo-burn", false)
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	// Second automatic dump inside MinInterval is suppressed...
	if _, err := fr.Dump("slo-burn", false); err != ErrDumpSuppressed {
		t.Fatalf("second dump err = %v, want ErrDumpSuppressed", err)
	}
	if fr.Suppressed() != 1 {
		t.Fatalf("Suppressed = %d, want 1", fr.Suppressed())
	}
	// ...but a forced (manual) dump is not.
	if _, err := fr.Dump("manual", true); err != nil {
		t.Fatalf("forced dump: %v", err)
	}
	if fr.Dumps() != 2 {
		t.Fatalf("Dumps = %d, want 2", fr.Dumps())
	}

	// The bundle is complete: trace slice, metrics, ledgers, goroutines.
	bundle := filepath.Join(dir, name)
	for _, f := range []string{"trace.json", "metrics.json", "ledgers.json", "goroutines.txt", "meta.json"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}
	traceData, err := os.ReadFile(filepath.Join(bundle, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(traceData); err != nil {
		t.Fatalf("bundle trace.json invalid: %v", err)
	}
	var leds []Ledger
	data, _ := os.ReadFile(filepath.Join(bundle, "ledgers.json"))
	if err := json.Unmarshal(data, &leds); err != nil {
		t.Fatalf("ledgers.json: %v", err)
	}
	if len(leds) != 1 || leds[0].ID != "req-1" {
		t.Fatalf("ledgers.json = %+v, want the one recorded ledger", leds)
	}
	var snap Snapshot
	data, _ = os.ReadFile(filepath.Join(bundle, "metrics.json"))
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if snap.Counters["requests"] != 3 {
		t.Fatalf("metrics.json counters = %v, want requests=3", snap.Counters)
	}

	// Retention: a third forced dump prunes the oldest beyond MaxBundles.
	if _, err := fr.Dump("manual", true); err != nil {
		t.Fatal(err)
	}
	if got := len(fr.List()); got != 2 {
		t.Fatalf("spool holds %d bundles after prune, want 2", got)
	}
}
