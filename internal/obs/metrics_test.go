package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter(name) did not return the existing handle")
	}
	if r.Counter("y") == c {
		t.Fatal("distinct names share one counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 4, 5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Bucket i counts observations <= Bounds[i]; the last is overflow.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-12) > 1e-12 {
		t.Fatalf("Sum = %g, want 12", s.Sum)
	}
	if math.Abs(s.Mean()-2.4) > 1e-12 {
		t.Fatalf("Mean() = %g, want 2.4", s.Mean())
	}
	// Re-fetching with different bounds keeps the original histogram.
	if r.Histogram("lat", []float64{9}) != h {
		t.Fatal("Histogram(name) did not return the existing handle")
	}
	if got := len(r.Snapshot().Histograms["lat"].Bounds); got != 3 {
		t.Fatalf("bounds rewritten on re-fetch: len = %d, want 3", got)
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	if m := (HistogramSnapshot{}).Mean(); m != 0 {
		t.Fatalf("empty Mean() = %g, want 0", m)
	}
}

// TestStressMetricsConcurrent updates one registry from many
// goroutines while snapshotting concurrently; run under -race this
// pins the lock-free update paths, and the final snapshot must show
// every update exactly once.
func TestStressMetricsConcurrent(t *testing.T) {
	const goroutines, iters = 8, 5000
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("calls")
			h := r.Histogram("v", SecondsBuckets)
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(1e-3)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-snapDone

	s := r.Snapshot()
	if got := s.Counters["calls"]; got != goroutines*iters {
		t.Fatalf("calls = %d, want %d", got, goroutines*iters)
	}
	h := s.Histograms["v"]
	if h.Count != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, goroutines*iters)
	}
	if want := 1e-3 * goroutines * iters; math.Abs(h.Sum-want) > 1e-6*want {
		t.Fatalf("histogram sum = %g, want %g (CAS loop lost updates)", h.Sum, want)
	}
}

func TestPublishDuplicateName(t *testing.T) {
	r := NewRegistry()
	const name = "recmat_test_metrics_publish"
	if err := r.Publish(name); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry().Publish(name); err == nil {
		t.Fatal("publishing a taken expvar name did not error")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Inc()
	g.Add(4)
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("Value() = %d, want 4", got)
	}
	g.Set(-2)
	if got := g.Value(); got != -2 {
		t.Fatalf("Value() after Set = %d, want -2", got)
	}
	if r.Gauge("depth") != g {
		t.Fatal("Gauge(name) did not return the existing handle")
	}
	s := r.Snapshot()
	if s.Gauges["depth"] != -2 {
		t.Fatalf("snapshot gauge = %d, want -2", s.Gauges["depth"])
	}
}

func TestStressSnapshotRaceSafetyUnderLoad(t *testing.T) {
	// The serving daemon scrapes Snapshot while request goroutines move
	// counters, gauges, and histograms — the access pattern of a live
	// /metricz endpoint under traffic. Run with -race to prove Snapshot
	// never tears; assert only invariants that hold mid-burst.
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	for s := 0; s < 2; s++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				// Each worker's inc is paired with a dec, so a torn read
				// could at most see every worker mid-request. (Histogram
				// bucket/total pairs may legitimately be one update
				// apart mid-burst, so no invariant is asserted there.)
				if g, ok := snap.Gauges["queue_depth"]; ok && (g < 0 || g > workers) {
					t.Errorf("queue_depth gauge out of range mid-burst: %d", g)
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := r.Gauge("queue_depth")
			a := r.Gauge("tenant_active")
			c := r.Counter("requests_shed")
			h := r.Histogram("request_seconds", SecondsBuckets)
			for i := 0; i < iters; i++ {
				g.Inc()
				a.Set(int64(w))
				c.Inc()
				h.Observe(float64(i%100) * 1e-4)
				g.Dec()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	s := r.Snapshot()
	if got := s.Counters["requests_shed"]; got != workers*iters {
		t.Fatalf("requests_shed = %d, want %d", got, workers*iters)
	}
	if got := s.Gauges["queue_depth"]; got != 0 {
		t.Fatalf("queue_depth settled at %d, want 0", got)
	}
	if got := s.Histograms["request_seconds"].Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
