package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter(name) did not return the existing handle")
	}
	if r.Counter("y") == c {
		t.Fatal("distinct names share one counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 4, 5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Bucket i counts observations <= Bounds[i]; the last is overflow.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-12) > 1e-12 {
		t.Fatalf("Sum = %g, want 12", s.Sum)
	}
	if math.Abs(s.Mean()-2.4) > 1e-12 {
		t.Fatalf("Mean() = %g, want 2.4", s.Mean())
	}
	// Re-fetching with different bounds keeps the original histogram.
	if r.Histogram("lat", []float64{9}) != h {
		t.Fatal("Histogram(name) did not return the existing handle")
	}
	if got := len(r.Snapshot().Histograms["lat"].Bounds); got != 3 {
		t.Fatalf("bounds rewritten on re-fetch: len = %d, want 3", got)
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	if m := (HistogramSnapshot{}).Mean(); m != 0 {
		t.Fatalf("empty Mean() = %g, want 0", m)
	}
}

// TestStressMetricsConcurrent updates one registry from many
// goroutines while snapshotting concurrently; run under -race this
// pins the lock-free update paths, and the final snapshot must show
// every update exactly once.
func TestStressMetricsConcurrent(t *testing.T) {
	const goroutines, iters = 8, 5000
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("calls")
			h := r.Histogram("v", SecondsBuckets)
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(1e-3)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-snapDone

	s := r.Snapshot()
	if got := s.Counters["calls"]; got != goroutines*iters {
		t.Fatalf("calls = %d, want %d", got, goroutines*iters)
	}
	h := s.Histograms["v"]
	if h.Count != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, goroutines*iters)
	}
	if want := 1e-3 * goroutines * iters; math.Abs(h.Sum-want) > 1e-6*want {
		t.Fatalf("histogram sum = %g, want %g (CAS loop lost updates)", h.Sum, want)
	}
}

func TestPublishDuplicateName(t *testing.T) {
	r := NewRegistry()
	const name = "recmat_test_metrics_publish"
	if err := r.Publish(name); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry().Publish(name); err == nil {
		t.Fatal("publishing a taken expvar name did not error")
	}
}
