package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the SLO flight recorder: an always-armed, low-overhead
// tracer window plus the recent-request ledger ring, snapshotted to
// disk as an evidence bundle the moment a burn-rate monitor (or an
// operator via /debug/flightz) asks for one. The point is that tail
// diagnostics are only useful if the evidence from *before* the
// trigger still exists — so the tracer and ledger ring run
// continuously with bounded memory, and a dump is just an atomic
// materialization of what is already in RAM.

// ErrDumpSuppressed marks a Dump call rate-limited by MinInterval.
var ErrDumpSuppressed = errors.New("obs: flight dump suppressed by rate limit")

// FlightConfig configures a FlightRecorder.
type FlightConfig struct {
	// SpoolDir is where bundles are written; created if missing.
	SpoolDir string
	// Ring is the request-ledger ring included in bundles (optional).
	Ring *LedgerRing
	// Metrics is the registry snapshotted into bundles (optional).
	Metrics *Registry
	// TracerWorkers sizes the armed tracer (engine worker count).
	TracerWorkers int
	// TracerRing is the per-ring event capacity of the armed tracer;
	// <= 0 selects a small window (4096 events/ring) so the always-on
	// recorder stays a fraction of DefaultRingCap's footprint.
	TracerRing int
	// MinInterval rate-limits automatic dumps; <= 0 means 1 minute.
	MinInterval time.Duration
	// MaxBundles prunes the oldest spool bundles beyond this count;
	// <= 0 keeps 8.
	MaxBundles int
	// LedgerTail caps how many recent ledgers a bundle includes;
	// <= 0 includes the whole ring.
	LedgerTail int
}

// FlightRecorder owns the armed tracer window and writes dump bundles.
// Create with NewFlightRecorder, release the tracer slot with Close.
type FlightRecorder struct {
	cfg        FlightConfig
	tracer     *Tracer // nil when the global tracer slot was taken
	mu         sync.Mutex
	lastDump   time.Time
	seq        atomic.Int64
	dumps      atomic.Int64
	suppressed atomic.Int64
}

// NewFlightRecorder arms a recorder: it allocates a small tracer and
// installs it in the process-global slot. If another tracer is already
// active (an explicit EnableTracing run), the recorder still works —
// bundles just omit the trace slice — since stealing the slot from an
// operator-requested trace would be worse.
func NewFlightRecorder(cfg FlightConfig) (*FlightRecorder, error) {
	if cfg.SpoolDir == "" {
		return nil, errors.New("obs: FlightConfig.SpoolDir is required")
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating spool dir: %w", err)
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.TracerRing <= 0 {
		cfg.TracerRing = 1 << 12
	}
	f := &FlightRecorder{cfg: cfg}
	t := NewTracer(cfg.TracerWorkers, cfg.TracerRing)
	if Install(t) == nil {
		f.tracer = t
	}
	return f, nil
}

// Close releases the armed tracer's global slot.
func (f *FlightRecorder) Close() {
	if f.tracer != nil {
		Uninstall(f.tracer)
	}
}

// Armed reports whether the recorder owns the active tracer window.
func (f *FlightRecorder) Armed() bool { return f.tracer != nil }

// Dumps returns how many bundles were written; Suppressed how many
// automatic dump requests the rate limit swallowed.
func (f *FlightRecorder) Dumps() int64      { return f.dumps.Load() }
func (f *FlightRecorder) Suppressed() int64 { return f.suppressed.Load() }

// Dump writes one evidence bundle and returns its directory name.
// Automatic callers (force=false) are rate-limited to one bundle per
// MinInterval — a sustained burn produces one bundle, not a spool
// flood; suppressed calls return ErrDumpSuppressed. Manual triggers
// (force=true) bypass the limit. The bundle is staged in a temp dir
// and renamed into place, so a reader never sees a half-written one.
func (f *FlightRecorder) Dump(reason string, force bool) (string, error) {
	f.mu.Lock()
	now := time.Now()
	if !force && f.lastDump.After(now.Add(-f.cfg.MinInterval)) {
		f.mu.Unlock()
		f.suppressed.Add(1)
		return "", ErrDumpSuppressed
	}
	f.lastDump = now
	seq := f.seq.Add(1)
	f.mu.Unlock()

	name := fmt.Sprintf("flight-%s-%03d-%s", now.UTC().Format("20060102T150405Z"), seq, sanitizeReason(reason))
	tmp, err := os.MkdirTemp(f.cfg.SpoolDir, ".tmp-"+name+"-")
	if err != nil {
		return "", fmt.Errorf("obs: staging bundle: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	if f.tracer != nil {
		if err := writeFileWith(filepath.Join(tmp, "trace.json"), f.tracer.Export); err != nil {
			return "", err
		}
	}
	if f.cfg.Metrics != nil {
		if err := writeJSON(filepath.Join(tmp, "metrics.json"), f.cfg.Metrics.Snapshot()); err != nil {
			return "", err
		}
	}
	if f.cfg.Ring != nil {
		if err := writeJSON(filepath.Join(tmp, "ledgers.json"), f.cfg.Ring.Recent(f.cfg.LedgerTail)); err != nil {
			return "", err
		}
	}
	if err := writeFileWith(filepath.Join(tmp, "goroutines.txt"), func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 1)
	}); err != nil {
		return "", err
	}
	meta := map[string]any{
		"reason": reason,
		"time":   now.UTC().Format(time.RFC3339Nano),
		"seq":    seq,
		"forced": force,
		"armed":  f.tracer != nil,
	}
	if f.tracer != nil {
		meta["trace_drops"] = f.tracer.Drops()
	}
	if f.cfg.Ring != nil {
		meta["ledgers_total"] = f.cfg.Ring.Total()
	}
	if err := writeJSON(filepath.Join(tmp, "meta.json"), meta); err != nil {
		return "", err
	}

	final := filepath.Join(f.cfg.SpoolDir, name)
	if err := os.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("obs: publishing bundle: %w", err)
	}
	f.dumps.Add(1)
	f.prune()
	return name, nil
}

// List returns the spool's bundle names, oldest first (the timestamped
// names sort chronologically).
func (f *FlightRecorder) List() []string {
	ents, err := os.ReadDir(f.cfg.SpoolDir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && len(e.Name()) > 7 && e.Name()[:7] == "flight-" {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// prune removes the oldest bundles beyond MaxBundles.
func (f *FlightRecorder) prune() {
	names := f.List()
	for len(names) > f.cfg.MaxBundles {
		os.RemoveAll(filepath.Join(f.cfg.SpoolDir, names[0]))
		names = names[1:]
	}
}

func sanitizeReason(r string) string {
	if r == "" {
		return "manual"
	}
	b := []byte(r)
	for i, c := range b {
		ok := c == '-' || c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	if len(b) > 32 {
		b = b[:32]
	}
	return string(b)
}

func writeJSON(path string, v any) error {
	return writeFileWith(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(v)
	})
}

func writeFileWith(path string, fill func(io.Writer) error) error {
	fd, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating %s: %w", filepath.Base(path), err)
	}
	if err := fill(fd); err != nil {
		fd.Close()
		return fmt.Errorf("obs: writing %s: %w", filepath.Base(path), err)
	}
	return fd.Close()
}
