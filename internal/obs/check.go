package obs

import (
	"encoding/json"
	"fmt"
)

// This file validates Chrome Trace Event JSON the way Perfetto's
// importer would: parseable JSON, known phase codes, per-track
// monotonic timestamps, properly nested complete ('X') events, and
// balanced B/E pairs. It is shared by the exporter's tests, the
// obs-gate acceptance test, and cmd/tracecheck (the trace-smoke
// target), so the format contract lives in exactly one place.

// TraceSummary describes a validated trace.
type TraceSummary struct {
	// Events is the total event count, metadata included.
	Events int
	// Spans counts complete ('X') events, Instants counts 'i' events,
	// Meta counts metadata ('M') records.
	Spans, Instants, Meta int
	// Flows counts flow events ('s'/'t'/'f'); FlowLinks is the number
	// of distinct flow ids carrying both a start and a finish — for
	// request traces, the number of requests linked to wave items.
	Flows, FlowLinks int
	// Tracks is the number of distinct tids carrying spans or instants;
	// RequestTracks is how many of them are request lanes (tracks whose
	// thread_name metadata names them "request N").
	Tracks, RequestTracks int
	// ByName counts spans and instants per event name (the -stats view).
	ByName map[string]int
	// Dropped echoes otherData.droppedEvents when present.
	Dropped int64
}

type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Tid  int64   `json:"tid"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	ID   int64   `json:"id"`
	Args struct {
		Name string `json:"name"`
	} `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	OtherData   struct {
		DroppedEvents int64 `json:"droppedEvents"`
	} `json:"otherData"`
}

// ValidateChromeTrace checks that data is a loadable Chrome Trace
// Event JSON object and that its timeline is well formed: timestamps
// non-decreasing per track, X spans nested (no span extends past the
// span enclosing it), and B/E events balanced per track. It returns a
// summary of what the trace contains.
func ValidateChromeTrace(data []byte) (TraceSummary, error) {
	var sum TraceSummary
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return sum, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return sum, fmt.Errorf("obs: trace has no events")
	}
	sum.Dropped = tr.OtherData.DroppedEvents
	sum.ByName = map[string]int{}

	lastTS := map[int64]float64{}
	// stacks holds, per track, the end timestamps of the open X spans.
	stacks := map[int64][]float64{}
	beDepth := map[int64]int{}
	tracks := map[int64]bool{}
	// flowStarts/flowEnds record, per flow id, how many start ('s') and
	// finish ('f') endpoints were seen; a valid trace pairs every id.
	flowStarts := map[int64]int{}
	flowEnds := map[int64]int{}
	requestTids := map[int64]bool{}
	for i, e := range tr.TraceEvents {
		sum.Events++
		if e.Name == "" {
			return sum, fmt.Errorf("obs: event %d has no name", i)
		}
		switch e.Ph {
		case "M":
			sum.Meta++
			if e.Name == "thread_name" && len(e.Args.Name) > len("request") && e.Args.Name[:len("request")+1] == "request " {
				requestTids[e.Tid] = true
			}
			continue
		case "s", "t", "f":
			sum.Flows++
			if e.ID == 0 {
				return sum, fmt.Errorf("obs: flow event %d (%s) has no id", i, e.Name)
			}
			switch e.Ph {
			case "s":
				flowStarts[e.ID]++
			case "f":
				flowEnds[e.ID]++
			}
			continue
		case "X", "i", "I", "B", "E":
		default:
			return sum, fmt.Errorf("obs: event %d (%s) has unsupported phase %q", i, e.Name, e.Ph)
		}
		sum.ByName[e.Name]++
		tracks[e.Tid] = true
		if prev, ok := lastTS[e.Tid]; ok && e.TS < prev {
			return sum, fmt.Errorf("obs: tid %d timestamps regress at event %d (%s): %.3f after %.3f",
				e.Tid, i, e.Name, e.TS, prev)
		}
		lastTS[e.Tid] = e.TS
		switch e.Ph {
		case "X":
			sum.Spans++
			if e.Dur < 0 {
				return sum, fmt.Errorf("obs: event %d (%s) has negative duration", i, e.Name)
			}
			st := stacks[e.Tid]
			for len(st) > 0 && st[len(st)-1] <= e.TS {
				st = st[:len(st)-1]
			}
			end := e.TS + e.Dur
			// The 1e-6 µs slack absorbs float rounding of the ns → µs
			// conversion; real overlaps are orders of magnitude larger.
			if len(st) > 0 && end > st[len(st)-1]+1e-6 {
				return sum, fmt.Errorf("obs: tid %d span %q [%.3f, %.3f] overlaps its enclosing span ending at %.3f",
					e.Tid, e.Name, e.TS, end, st[len(st)-1])
			}
			stacks[e.Tid] = append(st, end)
		case "i", "I":
			sum.Instants++
		case "B":
			beDepth[e.Tid]++
		case "E":
			beDepth[e.Tid]--
			if beDepth[e.Tid] < 0 {
				return sum, fmt.Errorf("obs: tid %d has an E event with no matching B at event %d", e.Tid, i)
			}
		}
	}
	for tid, d := range beDepth {
		if d != 0 {
			return sum, fmt.Errorf("obs: tid %d has %d unclosed B events", tid, d)
		}
	}
	for id, n := range flowStarts {
		if flowEnds[id] == 0 {
			return sum, fmt.Errorf("obs: flow id %d has %d start(s) but no finish", id, n)
		}
		sum.FlowLinks++
	}
	for id, n := range flowEnds {
		if flowStarts[id] == 0 {
			return sum, fmt.Errorf("obs: flow id %d has %d finish(es) but no start", id, n)
		}
	}
	sum.Tracks = len(tracks)
	for tid := range tracks {
		if requestTids[tid] {
			sum.RequestTracks++
		}
	}
	return sum, nil
}
