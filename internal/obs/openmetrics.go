package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders a registry Snapshot in the OpenMetrics text
// exposition format (the Prometheus scrape format), so recmatd's
// /metricz is consumable by standard scrapers with zero dependencies:
// counters as <name>_total, gauges as levels, histograms as cumulative
// <name>_bucket{le="..."} series with _sum/_count, each family with
// # TYPE/# HELP metadata and the exposition terminated by # EOF. The
// matching LintOpenMetrics parser is the conformance check shared by
// unit tests and the Makefile omcheck target.

// omName sanitizes a registry metric name into a legal OpenMetrics
// metric name ([a-zA-Z_:][a-zA-Z0-9_:]*).
func omName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// omFloat formats a sample value; OpenMetrics uses Go-style shortest
// float text with +Inf spelled exactly so.
func omFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics writes the snapshot in OpenMetrics text format.
// Families are sorted by name so the exposition is deterministic.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)

	cnames := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		fam := omName(n)
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam)
		fmt.Fprintf(bw, "# HELP %s Cumulative count of %s events.\n", fam, n)
		fmt.Fprintf(bw, "%s_total %d\n", fam, s.Counters[n])
	}

	gnames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		fam := omName(n)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(bw, "# HELP %s Current level of %s.\n", fam, n)
		fmt.Fprintf(bw, "%s %d\n", fam, s.Gauges[n])
	}

	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		fam := omName(n)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		fmt.Fprintf(bw, "# HELP %s Distribution of %s observations.\n", fam, n)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", fam, omFloat(b), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", fam, omFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", fam, h.Count)
	}

	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

// OMStats summarizes a linted exposition.
type OMStats struct {
	Families   int
	Samples    int
	Histograms int
}

var omNameOK = func(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// LintOpenMetrics validates data against the OpenMetrics text format
// contract this package emits: # TYPE metadata before a family's
// samples, legal metric names, parseable sample values, counter
// samples suffixed _total, histogram families with monotone cumulative
// buckets whose +Inf bucket equals _count, and a terminal # EOF. It is
// deliberately a strict subset of the spec — enough for a scraper to
// ingest the exposition — and returns what it saw.
func LintOpenMetrics(data []byte) (OMStats, error) {
	var st OMStats
	types := map[string]string{} // family → type
	// histogram family accumulation for the cumulative-bucket check
	lastBucketCum := map[string]int64{}
	lastBucketLe := map[string]float64{}
	infBucket := map[string]int64{}
	histCount := map[string]int64{}
	sawEOF := false

	sc := bufio.NewScanner(bytes.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return st, fmt.Errorf("obs: line %d: content after # EOF", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "EOF" {
				sawEOF = true
				continue
			}
			if len(fields) >= 4 && fields[1] == "TYPE" {
				fam, typ := fields[2], fields[3]
				if !omNameOK(fam) {
					return st, fmt.Errorf("obs: line %d: illegal family name %q", lineNo, fam)
				}
				if _, dup := types[fam]; dup {
					return st, fmt.Errorf("obs: line %d: duplicate # TYPE for %q", lineNo, fam)
				}
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return st, fmt.Errorf("obs: line %d: unsupported type %q", lineNo, typ)
				}
				types[fam] = typ
				st.Families++
				if typ == "histogram" {
					st.Histograms++
				}
			}
			// # HELP and other comments pass through.
			continue
		}
		// Sample line: name[{labels}] value
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return st, fmt.Errorf("obs: line %d: malformed labels", lineNo)
			}
			name, labels = line[:i], line[i+1:j]
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return st, fmt.Errorf("obs: line %d: sample has no value", lineNo)
		}
		name = fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !omNameOK(name) {
			return st, fmt.Errorf("obs: line %d: illegal metric name %q", lineNo, name)
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return st, fmt.Errorf("obs: line %d: unparseable value %q", lineNo, fields[1])
		}
		// Resolve the sample to its family and check the suffix contract.
		fam, suffix := name, ""
		for _, s := range [...]string{"_total", "_bucket", "_sum", "_count", "_created"} {
			if strings.HasSuffix(name, s) {
				if f := strings.TrimSuffix(name, s); types[f] != "" {
					fam, suffix = f, s
					break
				}
			}
		}
		typ, known := types[fam]
		if !known {
			return st, fmt.Errorf("obs: line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		switch typ {
		case "counter":
			if suffix != "_total" && suffix != "_created" {
				return st, fmt.Errorf("obs: line %d: counter sample %q must end in _total", lineNo, name)
			}
			if val < 0 {
				return st, fmt.Errorf("obs: line %d: counter %q is negative", lineNo, name)
			}
		case "gauge":
			if suffix != "" {
				return st, fmt.Errorf("obs: line %d: gauge sample %q has unexpected suffix", lineNo, name)
			}
		case "histogram":
			switch suffix {
			case "_bucket":
				le := ""
				for _, kv := range strings.Split(labels, ",") {
					if k, v, ok := strings.Cut(kv, "="); ok && k == "le" {
						le = strings.Trim(v, `"`)
					}
				}
				if le == "" {
					return st, fmt.Errorf("obs: line %d: histogram bucket %q has no le label", lineNo, name)
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return st, fmt.Errorf("obs: line %d: unparseable le %q", lineNo, le)
					}
				}
				if prev, ok := lastBucketLe[fam]; ok && bound <= prev {
					return st, fmt.Errorf("obs: line %d: %s buckets not in increasing le order", lineNo, fam)
				}
				if int64(val) < lastBucketCum[fam] {
					return st, fmt.Errorf("obs: line %d: %s bucket counts not cumulative", lineNo, fam)
				}
				lastBucketLe[fam] = bound
				lastBucketCum[fam] = int64(val)
				if math.IsInf(bound, 1) {
					infBucket[fam] = int64(val)
				}
			case "_sum":
			case "_count":
				histCount[fam] = int64(val)
			default:
				return st, fmt.Errorf("obs: line %d: unexpected histogram sample %q", lineNo, name)
			}
		}
		st.Samples++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("obs: scanning exposition: %w", err)
	}
	if !sawEOF {
		return st, fmt.Errorf("obs: exposition missing terminal # EOF")
	}
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		inf, ok := infBucket[fam]
		if !ok {
			return st, fmt.Errorf("obs: histogram %s has no +Inf bucket", fam)
		}
		if cnt, ok := histCount[fam]; ok && cnt != inf {
			return st, fmt.Errorf("obs: histogram %s +Inf bucket %d != count %d", fam, inf, cnt)
		}
	}
	return st, nil
}
