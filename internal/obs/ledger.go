package obs

import (
	"sync"
	"time"
)

// This file is the per-request attribution ledger: where one served
// request's latency went, phase by phase. The serving layer fills one
// Ledger per request (success or failure) and records it into a
// process-global ring, so that at SLO-violation time the flight
// recorder can dump the recent-request history alongside the trace
// window — the request-scoped analogue of the driver's Stats.

// ReqPhase indexes a request's phase ledger. Phases are disjoint
// wall-clock intervals of one request's life; whatever the six named
// phases don't cover (handler overhead, response write) shows up as
// Total minus the phase sum.
type ReqPhase int

const (
	// PhaseQueue is admission-queue wait (or, for a coalesced leader,
	// its admission acquire).
	PhaseQueue ReqPhase = iota
	// PhaseGather is the coalesce window: joining a group until the
	// wave's engine call launched.
	PhaseGather
	// PhasePack is operand materialization and layout conversion.
	// Batched waves fuse packing into the engine call, so coalesced
	// ledgers report it as 0 and account it under PhaseCompute.
	PhasePack
	// PhaseCompute is the engine's compute phase. For a coalesced
	// member this is the *shared wave's* compute wall — every member
	// of one wave reports the same value.
	PhaseCompute
	// PhaseUnpack is result conversion back to column-major (0 for
	// batched waves, fused like PhasePack).
	PhaseUnpack
	// PhaseSerialize is response encoding.
	PhaseSerialize
	// NumReqPhases sizes per-phase arrays.
	NumReqPhases
)

var reqPhaseNames = [NumReqPhases]string{
	PhaseQueue:     "queue",
	PhaseGather:    "gather",
	PhasePack:      "pack",
	PhaseCompute:   "compute",
	PhaseUnpack:    "unpack",
	PhaseSerialize: "serialize",
}

// String returns the phase's wire name (used in timing JSON,
// Server-Timing headers, and histogram names).
func (p ReqPhase) String() string {
	if p < 0 || p >= NumReqPhases {
		return "invalid"
	}
	return reqPhaseNames[p]
}

// ReqPhaseNames returns the wire names of all phases in index order.
func ReqPhaseNames() []string {
	out := make([]string, NumReqPhases)
	for i := range out {
		out[i] = reqPhaseNames[i]
	}
	return out
}

// Ledger is one request's attribution record: identity, what ran, how
// it ended, and where the time went.
type Ledger struct {
	// ID is the request's correlation id (inbound X-Request-Id /
	// traceparent trace-id, or server-generated).
	ID string `json:"id"`
	// Trace is the request's trace serial — the arg of its KindRequest
	// span and of the KindWaveItem events it rode, so a dumped ledger
	// can be joined against the dumped trace slice.
	Trace  int64  `json:"trace"`
	Tenant string `json:"tenant"`
	Alg    string `json:"alg,omitempty"`
	M      int    `json:"m"`
	K      int    `json:"k"`
	N      int    `json:"n"`
	// Coalesced marks requests that shared a batched engine call;
	// BatchSize is the wave size they rode in.
	Coalesced bool `json:"coalesced,omitempty"`
	BatchSize int  `json:"batch_size,omitempty"`
	// Outcome is "ok" or the typed error kind the request failed with.
	Outcome string    `json:"outcome"`
	Start   time.Time `json:"start"`
	TotalNS int64     `json:"total_ns"`
	// PhaseNS is indexed by ReqPhase.
	PhaseNS [NumReqPhases]int64 `json:"phase_ns"`
}

// PhaseMap renders the phase ledger as a name → ns map (the dump and
// timing-JSON shape).
func (l *Ledger) PhaseMap() map[string]int64 {
	m := make(map[string]int64, NumReqPhases)
	for p := ReqPhase(0); p < NumReqPhases; p++ {
		m[reqPhaseNames[p]] = l.PhaseNS[p]
	}
	return m
}

// LedgerRing is a fixed-capacity ring of recent request ledgers. It is
// mutex-based rather than lock-free: one Record per request is cold
// next to the request's own work, and the obs-gate bounds its cost.
type LedgerRing struct {
	mu    sync.Mutex
	buf   []Ledger
	pos   int   // next write index
	n     int   // live entries, ≤ len(buf)
	total int64 // records ever
}

// DefaultLedgerCap is the ring capacity NewLedgerRing uses when
// capacity <= 0.
const DefaultLedgerCap = 256

// NewLedgerRing returns a ring holding the most recent capacity
// ledgers.
func NewLedgerRing(capacity int) *LedgerRing {
	if capacity <= 0 {
		capacity = DefaultLedgerCap
	}
	return &LedgerRing{buf: make([]Ledger, capacity)}
}

// Record appends one ledger, overwriting the oldest when full.
func (r *LedgerRing) Record(l Ledger) {
	r.mu.Lock()
	r.buf[r.pos] = l
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// Recent returns up to max ledgers, newest first; max <= 0 returns
// everything live.
func (r *LedgerRing) Recent(max int) []Ledger {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]Ledger, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[((r.pos-1-i)%len(r.buf)+len(r.buf))%len(r.buf)]
	}
	return out
}

// Total returns the number of ledgers ever recorded.
func (r *LedgerRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
