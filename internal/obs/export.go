package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file turns a Tracer's rings into Chrome Trace Event JSON — the
// JSON Array/Object format Perfetto and chrome://tracing load. Spans
// become complete ('X') events, instants become 'i' events, and each
// track gets a thread_name metadata ('M') record. Ring order is span
// *completion* order (a span is recorded when it ends), so the
// exporter sorts by (tid, ts, -dur) to restore the start-ordered,
// outermost-first sequence the viewers and the nesting validator
// expect.

// event is one decoded ring entry, or a flow endpoint synthesized at
// export time (flow != 0).
type event struct {
	tid  int64
	kind Kind
	ts   int64 // ns
	dur  int64 // ns; durInstant marks an instant, durFlow a flow event
	arg  int64
	flow int8 // 0: ring event; flowStart / flowFinish: synthetic
}

// durFlow sorts synthetic flow endpoints after the span and instant
// events sharing their timestamp (the sort puts longer durations
// first), so a flow binds to the slice already open at its ts.
const durFlow = int64(-2)

const (
	flowStart  = int8(1)
	flowFinish = int8(2)
)

// flowName is the shared name of every request→wave-item flow event;
// Chrome binds flow endpoints by (cat, name, id), with id carrying the
// request's trace serial.
const flowName = "req-flow"

// events decodes every live ring slot, discarding slots that were
// never written or that decode as garbage (a torn read from a
// wraparound collision: wrong kind range or negative timestamp).
func (t *Tracer) events() []event {
	var out []event
	for ri := range t.rings {
		r := &t.rings[ri]
		p := r.pos.Load()
		n := uint64(len(r.buf))
		if p < n {
			n = p
		}
		for i := p - n; i < p; i++ {
			s := &r.buf[i&uint64(len(r.buf)-1)]
			meta := s.meta.Load()
			k := Kind(meta & 0xff)
			if meta == 0 || k == 0 || k >= numKinds {
				continue
			}
			ts, dur := s.ts.Load(), s.dur.Load()
			if ts < 0 || dur < durInstant {
				continue
			}
			out = append(out, event{tid: meta >> 8, kind: k, ts: ts, dur: dur, arg: s.arg.Load()})
		}
	}
	return out
}

// Export writes the recorded events as Chrome Trace Event JSON. Call
// it after Uninstall, once traced work has quiesced; exporting while
// events are still being recorded is memory-safe (slot reads are
// atomic) but yields an arbitrary cut of the stream.
// flowEvents synthesizes Chrome flow endpoints for every trace serial
// that appears both as a KindRequest span arg and as a KindWaveItem
// arg: a flow start ("s") anchored at the request span's start on the
// request lane, and a flow finish ("f") at each matching wave item.
// Serials seen on only one side emit nothing, keeping the trace valid
// when a request's wave items fell out of a wrapped ring.
func flowEvents(evs []event) []event {
	reqAt := map[int64]event{}
	for _, e := range evs {
		if e.kind == KindRequest && e.dur != durInstant && e.arg != 0 {
			reqAt[e.arg] = e
		}
	}
	if len(reqAt) == 0 {
		return nil
	}
	var flows []event
	started := map[int64]bool{}
	for _, e := range evs {
		if e.kind != KindWaveItem || e.arg == 0 {
			continue
		}
		req, ok := reqAt[e.arg]
		if !ok {
			continue
		}
		if !started[e.arg] {
			started[e.arg] = true
			flows = append(flows, event{tid: req.tid, ts: req.ts, dur: durFlow, arg: e.arg, flow: flowStart})
		}
		flows = append(flows, event{tid: e.tid, ts: e.ts, dur: durFlow, arg: e.arg, flow: flowFinish})
	}
	return flows
}

func (t *Tracer) Export(w io.Writer) error {
	evs := t.events()
	evs = append(evs, flowEvents(evs)...)
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.dur > b.dur // longer span first: parents precede children
	})

	type jsonEvent struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		S    string         `json:"s,omitempty"`
		ID   int64          `json:"id,omitempty"`
		BP   string         `json:"bp,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}
	out := struct {
		TraceEvents     []jsonEvent    `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"droppedEvents": t.Drops()},
	}

	// One thread_name metadata record per observed track.
	seen := map[int64]bool{}
	for _, e := range evs {
		if seen[e.tid] {
			continue
		}
		seen[e.tid] = true
		name := fmt.Sprintf("worker %d", e.tid)
		switch {
		case e.tid >= reqLaneBase:
			name = fmt.Sprintf("request %d", e.tid-reqLaneBase)
		case e.tid >= laneBase:
			name = fmt.Sprintf("call %d", e.tid-laneBase)
		}
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: e.tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range evs {
		if e.flow != 0 {
			je := jsonEvent{
				Name: flowName, Cat: "recmat", Pid: 1, Tid: e.tid,
				TS: float64(e.ts) / 1e3, ID: e.arg,
			}
			if e.flow == flowStart {
				je.Ph = "s"
			} else {
				je.Ph, je.BP = "f", "e"
			}
			out.TraceEvents = append(out.TraceEvents, je)
			continue
		}
		je := jsonEvent{
			Name: e.kind.String(), Cat: "recmat", Pid: 1, Tid: e.tid,
			TS: float64(e.ts) / 1e3,
		}
		if e.dur == durInstant {
			je.Ph, je.S = "i", "t"
		} else {
			je.Ph = "X"
			je.Dur = float64(e.dur) / 1e3
		}
		if e.arg != 0 {
			if f := argFormatters[e.kind]; f != nil {
				je.Args = map[string]any{"v": f(e.arg)}
			} else {
				je.Args = map[string]any{"v": e.arg}
			}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
