package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics leg of the observability layer: cumulative
// counters and fixed-bucket histograms aggregated across Engine calls.
// Everything is updated with atomics and read with Snapshot, so a
// serving process can scrape a live engine without stopping it, and
// Publish exposes the whole registry through expvar (i.e. over HTTP
// via /debug/vars) for free.

// Counter is a cumulative, race-safe int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a race-safe int64 level metric: unlike a Counter it moves in
// both directions and reads as the current level, not a cumulative
// total. The serving layer uses gauges for queue depth and active
// tenant counts — quantities a scrape wants as-of-now values.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Bucket i counts
// observations ≤ Bounds[i]; the final implicit bucket counts overflow.
// Observe is lock-free: bucket counts and the total are atomic adds,
// and the float64 sum is a CAS loop.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Default bucket bounds for the driver's metrics.
var (
	// SecondsBuckets spans 100µs .. ~100s in half-decade steps.
	SecondsBuckets = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 100}
	// GFLOPSBuckets spans sub-1 to beyond any single-node double-precision rate.
	GFLOPSBuckets = []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	// RatioBuckets covers [0, 1] quantities like worker utilization.
	RatioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	// BatchBuckets covers wave/coalesce sizes in powers of two: a
	// request batched alone lands in the first bucket, the admission
	// queue's worth of coalesced members in the middle ones.
	BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// Registry holds named counters and histograms. The zero value is not
// usable; create with NewRegistry. Metric creation takes a mutex;
// updates through the returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (which must be sorted ascending) on first use; an
// existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram. Counts has
// len(Bounds)+1 entries; the last is the overflow bucket.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts by linear interpolation inside the bucket holding the target
// rank, the standard Prometheus histogram_quantile estimate. The first
// bucket interpolates from 0, and ranks landing in the overflow bucket
// return the last bound (the estimate is clamped to the observable
// range). An empty histogram returns 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, b := range h.Bounds {
		prev := cum
		cum += h.Counts[i]
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if h.Counts[i] == 0 {
				return b
			}
			frac := (rank - float64(prev)) / float64(h.Counts[i])
			if frac < 0 {
				frac = 0
			}
			return lo + (b-lo)*frac
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Sub returns the histogram delta h − prev: the observations recorded
// between prev's snapshot and h's. Mismatched bounds (a histogram
// recreated with a different shape) yield h unchanged, and counters
// that regressed clamp to zero rather than going negative.
func (h HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Bounds) != len(h.Bounds) || len(prev.Counts) != len(h.Counts) {
		return h
	}
	d := HistogramSnapshot{
		Count:  h.Count - prev.Count,
		Sum:    h.Sum - prev.Sum,
		Bounds: h.Bounds,
		Counts: make([]int64, len(h.Counts)),
	}
	if d.Count < 0 {
		d.Count = 0
	}
	for i := range h.Counts {
		if c := h.Counts[i] - prev.Counts[i]; c > 0 {
			d.Counts[i] = c
		}
	}
	return d
}

// Snapshot is a point-in-time copy of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Quantile estimates the q-quantile of the named histogram, or 0 when
// the snapshot has no histogram of that name.
func (s Snapshot) Quantile(name string, q float64) float64 {
	return s.Histograms[name].Quantile(q)
}

// Snapshot copies every metric. It is safe to call concurrently with
// updates; each individual value is read atomically, though values
// observed mid-burst may be one update apart from each other.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Publish exposes the registry under the given expvar name (visible at
// /debug/vars when the process serves HTTP). expvar names are global
// and permanent, so publishing an already-used name returns an error
// instead of panicking the process.
func (r *Registry) Publish(name string) (err error) {
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("obs: expvar name %q is already published", name)
		}
	}()
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}
