package obs

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	if got := KindLeaf.String(); got != "leaf" {
		t.Fatalf("KindLeaf.String() = %q, want %q", got, "leaf")
	}
	if got := Kind(0).String(); got != "invalid" {
		t.Fatalf("Kind(0).String() = %q, want %q", got, "invalid")
	}
	if got := numKinds.String(); got != "invalid" {
		t.Fatalf("numKinds.String() = %q, want %q", got, "invalid")
	}
	for k := KindTask; k < numKinds; k++ {
		if k.String() == "" || k.String() == "invalid" {
			t.Fatalf("Kind(%d) has no name", k)
		}
	}
}

func TestInstallUninstall(t *testing.T) {
	if Cur() != nil {
		t.Fatal("a tracer is already installed at test start")
	}
	if err := Install(nil); err == nil {
		t.Fatal("Install(nil) succeeded")
	}
	tr := NewTracer(2, 64)
	if err := Install(tr); err != nil {
		t.Fatal(err)
	}
	if Cur() != tr {
		t.Fatal("Cur() does not return the installed tracer")
	}
	if err := Install(NewTracer(1, 64)); err == nil {
		t.Fatal("second Install succeeded while a tracer was active")
	}
	// Uninstalling a tracer that is not current must be a no-op.
	Uninstall(NewTracer(1, 64))
	if Cur() != tr {
		t.Fatal("Uninstall of a foreign tracer displaced the active one")
	}
	Uninstall(tr)
	if Cur() != nil {
		t.Fatal("Cur() non-nil after Uninstall")
	}
}

// TestWraparoundDropsOldest pins the overflow contract: when a ring
// fills, recording keeps going (never blocks, never allocates), the
// oldest events are overwritten, Drops() counts the loss, and the
// export both validates and reports the drop count.
func TestWraparoundDropsOldest(t *testing.T) {
	const ringCap, total = 8, 20
	tr := NewTracer(1, ringCap)
	base := tr.start
	for i := 0; i < total; i++ {
		tr.Span(0, KindLeaf, base.Add(time.Duration(i)*time.Millisecond), time.Microsecond, int64(i+1))
	}
	if got := tr.Drops(); got != total-ringCap {
		t.Fatalf("Drops() = %d, want %d", got, total-ringCap)
	}
	evs := tr.events()
	if len(evs) != ringCap {
		t.Fatalf("decoded %d events, want the newest %d", len(evs), ringCap)
	}
	for i, e := range evs {
		// args were 1..total; survivors must be the newest ringCap.
		if want := int64(total - ringCap + i + 1); e.arg != want {
			t.Fatalf("survivor %d has arg %d, want %d (oldest not dropped first)", i, e.arg, want)
		}
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("export after wraparound invalid: %v", err)
	}
	if sum.Spans != ringCap || sum.Dropped != total-ringCap {
		t.Fatalf("summary spans=%d dropped=%d, want %d/%d", sum.Spans, sum.Dropped, ringCap, total-ringCap)
	}
}

// TestExportNestedValid records spans in completion order (children
// finish before their parents) across worker tracks and caller lanes
// and checks the exporter restores a well-nested, monotonic timeline.
func TestExportNestedValid(t *testing.T) {
	tr := NewTracer(2, 256)
	base := tr.start

	// Worker 0: a leaf inside a task — leaf recorded first, as at runtime.
	tr.Span(0, KindLeaf, base.Add(10*time.Millisecond), 20*time.Millisecond, 4096)
	tr.Span(0, KindTask, base, 100*time.Millisecond, 0)
	tr.Instant(0, KindSteal, 1)
	// Worker 1: a lone task.
	tr.Span(1, KindTask, base.Add(time.Millisecond), 5*time.Millisecond, 0)
	// A caller lane: phases inside the call span, plus a degrade marker.
	lane := tr.NewLane()
	tr.LaneSpan(lane, KindConvertIn, base.Add(time.Millisecond), 30*time.Millisecond, 0)
	tr.LaneSpan(lane, KindGEMM, base, 200*time.Millisecond, 0)
	tr.LaneInstant(lane, KindDegrade, 0)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, buf.String())
	}
	if sum.Spans != 5 || sum.Instants != 2 {
		t.Fatalf("spans=%d instants=%d, want 5/2", sum.Spans, sum.Instants)
	}
	if sum.Tracks != 3 {
		t.Fatalf("tracks = %d, want 3 (two workers + one lane)", sum.Tracks)
	}
	if sum.Meta != 3 {
		t.Fatalf("thread_name records = %d, want one per track", sum.Meta)
	}
	if sum.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", sum.Dropped)
	}
}

func TestUnboundAndOversizedWorkers(t *testing.T) {
	tr := NewTracer(2, 16)
	// A negative worker id (a Ctx not bound to any pool worker) records
	// nothing and is not a drop.
	tr.Span(-1, KindLeaf, tr.start, time.Millisecond, 1)
	tr.Instant(-1, KindSteal, 0)
	if n := len(tr.events()); n != 0 {
		t.Fatalf("unbound-worker events recorded: %d", n)
	}
	if tr.Drops() != 0 {
		t.Fatalf("unbound-worker events counted as drops: %d", tr.Drops())
	}
	// A worker id beyond the tracer's size (another pool's worker) folds
	// onto a configured ring and keeps its own tid.
	tr.Span(7, KindLeaf, tr.start, time.Millisecond, 1)
	evs := tr.events()
	if len(evs) != 1 || evs[0].tid != 7 {
		t.Fatalf("oversized worker id: events=%v, want one event with tid 7", evs)
	}
}

// TestStressTracerConcurrent hammers one tracer from many goroutines
// while another goroutine exports — tiny rings force constant
// wraparound collisions. Run under -race this pins the all-atomic slot
// discipline; the final export must still validate.
func TestStressTracerConcurrent(t *testing.T) {
	const workers, iters = 4, 2000
	tr := NewTracer(workers, 64) // tiny rings: constant wraparound
	stop := make(chan struct{})
	exporterDone := make(chan struct{})
	go func() {
		defer close(exporterDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.Export(io.Discard)
			_ = tr.Drops()
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			lane := tr.NewLane()
			for i := 0; i < iters; i++ {
				t0 := time.Now()
				tr.Span(w, KindLeaf, t0, time.Nanosecond, int64(i))
				tr.Instant(w, KindSpawn, 0)
				tr.LaneInstant(lane, KindArena, 64)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	<-exporterDone

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("post-stress export invalid: %v", err)
	}
	if tr.Drops() == 0 {
		t.Fatal("tiny rings under heavy load recorded zero drops — wraparound untested")
	}
}
