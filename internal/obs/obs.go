// Package obs is the zero-dependency observability layer of the
// library: an event tracer, a metrics registry, and the glue the
// driver and scheduler use to label profiles. It exists because the
// paper's Cilk critique is at bottom an argument about runtime
// instrumentation — work, span, and steal behavior were what let the
// authors explain their speedup curves — and because one-shot Report
// snapshots cannot show a timeline or aggregate across calls.
//
// # The tracer
//
// A Tracer records timestamped spans (scheduler tasks, leaf-kernel
// runs, pack/unpack chunks, driver phases) and instants (steals,
// spawns, arena reservations and heap fallbacks, degradation
// decisions) into per-worker ring buffers, and exports them as Chrome
// Trace Event JSON loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing, one track per worker plus one per concurrent
// driver call.
//
// Overhead discipline: exactly one process-wide tracer can be active
// (Install/Uninstall on an atomic pointer), and every tracepoint in
// the hot paths is written as
//
//	if t := obs.Cur(); t != nil { ... }
//
// so the disabled cost is one atomic load and a branch — no
// allocation, no time.Now() call, nothing the compiler must keep
// alive. The enabled cost is two time.Now() calls and a handful of
// atomic stores into a pre-allocated ring.
//
// Ring buffers never block and never allocate after NewTracer: when a
// ring wraps, the oldest events are overwritten and counted in
// Drops(). Slot fields are written and read with atomics, so a thief
// and an exporter (or two workers colliding on one ring after a
// wraparound race) can never produce a torn read that trips the race
// detector; at worst a wrapped slot decodes as one bogus event, which
// the exporter's validity filter discards.
package obs

import (
	"errors"
	"sync/atomic"
	"time"
)

// Kind enumerates the traced operations. Values start at 1 so that an
// unwritten ring slot (meta == 0) is distinguishable from any event.
type Kind uint8

const (
	// KindTask is a top-level scheduler task frame on a worker.
	KindTask Kind = 1 + iota
	// KindNested is a task frame run on top of another (the inline
	// first child of a Parallel, or help-first/stolen work executed
	// inside a suspended frame's sync loop).
	KindNested
	// KindLeaf is one leaf-kernel multiplication.
	KindLeaf
	// KindPack is one operand-packing chunk (column-major → layout).
	KindPack
	// KindUnpack is one unpack/epilogue chunk (layout → column-major).
	KindUnpack
	// KindZero is one zero-fill chunk (the C-tile scrub).
	KindZero
	// KindScale is one β-scaling chunk over C's columns.
	KindScale
	// KindConvertIn is a driver call's whole convert-in phase.
	KindConvertIn
	// KindCompute is a driver call's whole compute phase.
	KindCompute
	// KindConvertOut is a driver call's whole convert-out phase.
	KindConvertOut
	// KindGEMM is one whole driver call.
	KindGEMM
	// KindSpawn marks a task pushed to a deque (instant).
	KindSpawn
	// KindSteal marks a successful steal; arg is the victim (instant).
	KindSteal
	// KindArena marks an arena reservation; arg is bytes (instant).
	KindArena
	// KindArenaFallback marks a temporary that missed the arena and
	// fell back to the heap; arg is bytes (instant).
	KindArenaFallback
	// KindDegrade marks one graceful-degradation decision (instant).
	KindDegrade
	// KindRequest is one whole served request on a request lane; its
	// arg is the request's trace serial, the join key flow events use
	// to link the request to the wave items it rode.
	KindRequest
	// KindQueueWait is a request's admission-queue wait phase.
	KindQueueWait
	// KindGather is a coalesced request's wave-gathering phase: the
	// window between joining a coalesce group and the wave launching.
	KindGather
	// KindSerialize is a request's response-serialization phase.
	KindSerialize
	// KindWaveItem is one request's slice of a batched engine call,
	// recorded on the worker track that executed it; arg is the
	// owning request's trace serial (0 for unattributed items).
	KindWaveItem
	numKinds
)

// kindNames are the Chrome trace event names, indexed by Kind.
var kindNames = [numKinds]string{
	KindTask:          "task",
	KindNested:        "task-nested",
	KindLeaf:          "leaf",
	KindPack:          "pack",
	KindUnpack:        "unpack",
	KindZero:          "zero-fill",
	KindScale:         "beta-scale",
	KindConvertIn:     "convert-in",
	KindCompute:       "compute",
	KindConvertOut:    "convert-out",
	KindGEMM:          "gemm",
	KindSpawn:         "spawn",
	KindSteal:         "steal",
	KindArena:         "arena-reserve",
	KindArenaFallback: "arena-fallback",
	KindDegrade:       "degrade",
	KindRequest:       "request",
	KindQueueWait:     "queue-wait",
	KindGather:        "coalesce-gather",
	KindSerialize:     "serialize",
	KindWaveItem:      "wave-item",
}

// String returns the event name used in the Chrome trace.
func (k Kind) String() string {
	if k == 0 || k >= numKinds {
		return "invalid"
	}
	return kindNames[k]
}

// argFormatters optionally renders a kind's int64 span arg as a string
// in the Chrome export (e.g. the gemm span's algorithm id → its name).
// Registered at init time by the packages that own the encoding, read
// only at export time.
var argFormatters [numKinds]func(int64) string

// SetArgFormatter installs the export-time renderer for k's span arg.
// Call from an init function; installing formatters after tracing has
// started races with export.
func SetArgFormatter(k Kind, f func(int64) string) {
	if k > 0 && k < numKinds {
		argFormatters[k] = f
	}
}

// durInstant is the Dur sentinel marking an instant event.
const durInstant = int64(-1)

// laneBase offsets caller-lane tids away from worker ids so that each
// concurrent driver call renders as its own well-nested track.
const laneBase = 1000

// reqLaneBase offsets request-lane tids above caller lanes: a served
// request gets its own track carrying the KindRequest span and its
// phase children, distinct from the engine-call lane the request's
// compute ran on.
const reqLaneBase = 1 << 20

// slot is one ring entry. Every field is atomic: claims are made with
// a fetch-add on the ring's pos, so two writers can collide on a slot
// only after a full wraparound inside one write's window — the atomics
// make that collision (and a concurrent export) a stale read instead
// of a data race.
type slot struct {
	ts   atomic.Int64 // span start / instant time, ns since Tracer start
	dur  atomic.Int64 // span duration ns, or durInstant
	arg  atomic.Int64 // kind-specific payload (bytes, flops, victim id)
	meta atomic.Int64 // tid<<8 | kind; 0 = never written
}

// ring is one single-producer-in-steady-state event buffer. pos counts
// every claim ever made; pos beyond len(buf) means the oldest events
// were overwritten.
type ring struct {
	pos atomic.Uint64
	// Pad the hot counter away from the neighboring ring's, so two
	// workers' claims do not false-share one cache line.
	_   [56]byte
	buf []slot
}

func (r *ring) put(ts, dur, arg int64, tid int32, k Kind) {
	i := r.pos.Add(1) - 1
	s := &r.buf[i&uint64(len(r.buf)-1)]
	s.ts.Store(ts)
	s.dur.Store(dur)
	s.arg.Store(arg)
	s.meta.Store(int64(tid)<<8 | int64(k))
}

func (r *ring) drops() int64 {
	p := r.pos.Load()
	if n := uint64(len(r.buf)); p > n {
		return int64(p - n)
	}
	return 0
}

// DefaultRingCap is the per-ring capacity NewTracer uses when cap <= 0:
// 16384 events × 32 bytes = 512 KiB per worker.
const DefaultRingCap = 1 << 14

// Tracer records events into per-worker rings plus one shared ring for
// caller-side (driver-phase) events. Create with NewTracer, activate
// with Install, and read back with Export after Uninstall.
type Tracer struct {
	start   time.Time
	rings   []ring // rings[0]: caller lanes; rings[1+i]: worker i
	laneSeq atomic.Int64
	reqSeq  atomic.Int64
}

// NewTracer allocates a tracer for a pool of the given size. perRing
// is the per-ring event capacity, rounded up to a power of two;
// <= 0 selects DefaultRingCap. All memory is allocated here — the
// recording paths never allocate.
func NewTracer(workers, perRing int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	if perRing <= 0 {
		perRing = DefaultRingCap
	}
	capPow := 1
	for capPow < perRing {
		capPow <<= 1
	}
	t := &Tracer{start: time.Now(), rings: make([]ring, workers+1)}
	for i := range t.rings {
		t.rings[i].buf = make([]slot, capPow)
	}
	return t
}

// current is the process-wide active tracer; nil means disabled. One
// atomic load of this pointer is the entire disabled-path cost of
// every tracepoint.
var current atomic.Pointer[Tracer]

// Cur returns the active tracer, or nil when tracing is disabled.
func Cur() *Tracer { return current.Load() }

// Install activates t. Only one tracer can be active per process; a
// second Install fails until Uninstall releases the slot.
func Install(t *Tracer) error {
	if t == nil {
		return errors.New("obs: Install(nil)")
	}
	if !current.CompareAndSwap(nil, t) {
		return errors.New("obs: a tracer is already installed")
	}
	return nil
}

// Uninstall deactivates t if it is the active tracer. In-flight
// tracepoints that already loaded t may still record into its rings;
// Export is therefore only complete once the work being traced has
// quiesced (the Engine guarantees this by exporting after its calls
// return).
func Uninstall(t *Tracer) { current.CompareAndSwap(t, nil) }

// ringFor maps a worker id to its ring. Workers beyond the tracer's
// size (another pool's workers emitting while this tracer is active)
// fold onto the configured rings — safe because slot writes are
// atomic — and a negative id (a Ctx not bound to any worker) records
// nothing.
func (t *Tracer) ringFor(worker int) *ring {
	if worker < 0 || len(t.rings) < 2 {
		return nil
	}
	i := 1 + worker
	if i >= len(t.rings) {
		i = 1 + worker%(len(t.rings)-1)
	}
	return &t.rings[i]
}

// Span records a completed span on a worker's track. start/dur come
// from the caller's own clock reads, so the tracepoint pays exactly
// two time.Now() calls.
func (t *Tracer) Span(worker int, k Kind, start time.Time, dur time.Duration, arg int64) {
	r := t.ringFor(worker)
	if r == nil {
		return
	}
	r.put(int64(start.Sub(t.start)), int64(dur), arg, int32(worker), k)
}

// Instant records an instantaneous event on a worker's track.
func (t *Tracer) Instant(worker int, k Kind, arg int64) {
	r := t.ringFor(worker)
	if r == nil {
		return
	}
	r.put(int64(time.Since(t.start)), durInstant, arg, int32(worker), k)
}

// NewLane allocates a caller track. Each concurrent driver call gets
// its own lane so its phase spans nest properly instead of
// interleaving with another call's on a shared track.
func (t *Tracer) NewLane() int32 {
	return laneBase + int32(t.laneSeq.Add(1)) - 1
}

// NewRequestLane allocates a request track: one per served request,
// rendered as "request N" and carrying the KindRequest span plus its
// phase children. Request lanes share the caller ring with engine-call
// lanes; only the tid range differs.
func (t *Tracer) NewRequestLane() int32 {
	return reqLaneBase + int32(t.reqSeq.Add(1)) - 1
}

// LaneSpan records a completed span on a caller lane.
func (t *Tracer) LaneSpan(lane int32, k Kind, start time.Time, dur time.Duration, arg int64) {
	t.rings[0].put(int64(start.Sub(t.start)), int64(dur), arg, lane, k)
}

// LaneInstant records an instantaneous event on a caller lane.
func (t *Tracer) LaneInstant(lane int32, k Kind, arg int64) {
	t.rings[0].put(int64(time.Since(t.start)), durInstant, arg, lane, k)
}

// traceSerial allocates process-global request trace serials. The
// serial is the int64 join key written as the arg of a request's
// KindRequest span and of every KindWaveItem event attributed to it;
// it is process-global (not per-tracer) so a serial minted before a
// flight-recorder tracer was armed still correlates inside its window.
var traceSerial atomic.Int64

// NextTraceSerial returns a fresh non-zero request trace serial.
func NextTraceSerial() int64 { return traceSerial.Add(1) }

// Drops returns the number of events lost to ring wraparound. The
// rings overwrite the oldest events rather than blocking a worker, so
// a long traced run keeps its most recent window.
func (t *Tracer) Drops() int64 {
	var n int64
	for i := range t.rings {
		n += t.rings[i].drops()
	}
	return n
}
