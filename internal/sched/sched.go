// Package sched is the parallel runtime substrate standing in for the
// Cilk 5.2.1 system the paper used (Section 2 and the "critique of Cilk"
// in Section 5). It provides nested fork–join parallelism over a fixed
// pool of workers, each with its own work-stealing deque, plus the
// work/span ("critical path") accounting that Cilk's instrumentation
// provided and that the paper used to estimate available parallelism
// (≈40 processors' worth for the standard algorithm at n=1000, ≈23 for
// the fast algorithms).
//
// The scheduling discipline is help-first: a frame that reaches its sync
// point does not block — it executes tasks from its own deque and then
// steals from random victims until its children have completed. Steals
// take the oldest task (the largest unexplored subtree), spawns push the
// newest, matching the Cilk heuristic that stolen work is coarse.
//
// Like Cilk, the runtime propagates exceptions (panics) from spawned
// tasks to their sync point, and the same code runs unchanged on one
// worker for serial measurements. Unlike the original Cilk stand-in,
// failures are part of the contract: every panic recovered in a task is
// wrapped (with the worker-side stack) into a TaskError that Run
// returns as an ordinary error, and RunCtx supports cooperative
// cancellation — workers check the run's cancellation state between
// tasks and at every spawn point, so a cancelled run drains within a
// bounded latency instead of finishing its full task graph.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Pool is a fixed set of worker goroutines executing fork–join task
// graphs. A Pool is created with NewPool, used through Run, and released
// with Close.
type Pool struct {
	workers []*worker
	inject  chan *task
	done    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool

	// Runtime counters (the analogue of the Cilk instrumentation the
	// paper's critique discusses). Updated with atomics; read with
	// Stats.
	spawns atomic.Int64 // tasks pushed to a deque
	steals atomic.Int64 // tasks taken from another worker's deque
	inline atomic.Int64 // first-child frames run inline at the spawn site

	// idle counts workers that have spun through a full backoff round
	// without finding work — in the main loop's deep-idle select or a
	// help-first sync loop's sleep phase. It is a saturation signal, not
	// an exact census: the table engine's BFS/DFS policy reads it to
	// decide whether spawning more breadth would feed anyone.
	idle atomic.Int32
}

// IdleWorkers reports how many workers are currently starved for work
// (see the idle counter). Zero means the pool looks saturated.
func (p *Pool) IdleWorkers() int { return int(p.idle.Load()) }

// PoolStats is a snapshot of the pool's scheduling counters.
type PoolStats struct {
	// Spawns counts tasks made available for stealing (deque pushes).
	Spawns int64
	// Steals counts tasks executed by a worker other than the one that
	// spawned them. Steals/Spawns is the migration rate; Cilk's
	// work-first principle predicts it stays small when parallelism
	// greatly exceeds the worker count.
	Steals int64
	// Inline counts frames executed directly at their spawn site.
	Inline int64
}

// Stats returns a snapshot of the scheduling counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Spawns: p.spawns.Load(), Steals: p.steals.Load(), Inline: p.inline.Load()}
}

// ResetStats zeroes the scheduling counters.
func (p *Pool) ResetStats() {
	p.spawns.Store(0)
	p.steals.Store(0)
	p.inline.Store(0)
}

// task is one spawned unit of work. ctx is bound to the executing worker
// at run time. Tasks are recycled through taskPool: a fine-grained run
// spawns one task per quadrant product, and without recycling the task
// headers alone dominate the scheduler's allocation profile (see
// BenchmarkParallelSpawn).
type task struct {
	fn   func(*Ctx)
	join *join
	ctx  *Ctx
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

// newTask draws a recycled task from the pool. The task is returned to
// the pool by the worker that runs it, so callers must not retain it
// past the hand-off to a deque or the inject channel.
func newTask(fn func(*Ctx), j *join, ctx *Ctx) *task {
	t := taskPool.Get().(*task)
	t.fn, t.join, t.ctx = fn, j, ctx
	return t
}

// join is the synchronization point of one Parallel call or one root
// Run. A root join carries a completion channel (donec) closed by the
// worker that retires the last child, so the caller blocks on a channel
// instead of burning a busy-polling waiter goroutine; Parallel joins
// leave donec nil and sync through the help-first loop, which is itself
// a worker.
type join struct {
	pending atomic.Int64
	donec   chan struct{}
	panicMu sync.Mutex
	panics  []*PanicError
}

// recordPanic files one recovered panic. A re-raised TaskError (the
// aggregate a Parallel sync point throws upward) is flattened so every
// leaf panic keeps its original worker-side stack and sibling panics
// are never collapsed to the first one.
func (j *join) recordPanic(v any, stack []byte) {
	j.panicMu.Lock()
	switch e := v.(type) {
	case *TaskError:
		j.panics = append(j.panics, e.Panics...)
	case *PanicError:
		j.panics = append(j.panics, e)
	default:
		j.panics = append(j.panics, &PanicError{Value: v, Stack: stack})
	}
	j.panicMu.Unlock()
}

// finish retires one child; the last one out closes the completion
// channel (root joins only).
func (j *join) finish() {
	if j.pending.Add(-1) == 0 && j.donec != nil {
		close(j.donec)
	}
}

// taskErr converts the recorded panics into an error, or nil. Only call
// after pending has reached zero (no more writers).
func (j *join) taskErr() error {
	if len(j.panics) == 0 {
		return nil
	}
	return &TaskError{Panics: j.panics}
}

// runState is shared by every frame of one Run/RunCtx invocation. It is
// the cancellation generation of that run: workers consult it before
// executing each task and algorithms poll it at recursion and spawn
// points through Ctx.Cancelled.
type runState struct {
	cancelled atomic.Bool
	// done is ctx.Done() of the run's context (nil for Background), so
	// workers observe cancellation without waiting for the Run caller to
	// notice it first.
	done <-chan struct{}
	// pool backs the pool-closed check: closing the pool cancels every
	// in-flight run, which is what lets Close be called while runs are
	// still executing (the daemon drain path) without wedging anyone.
	pool *Pool
}

func (rs *runState) isCancelled() bool {
	if rs == nil {
		return false
	}
	if rs.cancelled.Load() {
		return true
	}
	if rs.pool != nil && rs.pool.closed.Load() {
		rs.cancelled.Store(true)
		return true
	}
	if rs.done != nil {
		select {
		case <-rs.done:
			rs.cancelled.Store(true)
			return true
		default:
		}
	}
	return false
}

type worker struct {
	pool *Pool
	id   int
	mu   sync.Mutex
	dq   []*task // owner pushes/pops at the tail; thieves steal the head
	seed uint64
	// slot is worker-local storage handed out through Ctx.WorkerSlot;
	// only the owning worker touches it, so no locking.
	slot any
	// busy accumulates the wall time this worker spent executing
	// top-level task frames — the achieved-parallelism counterpart of
	// the theoretical Work/Span accounting. Written by the owner, read
	// by Pool.BusyNanos, hence atomic.
	busy atomic.Int64
	// depth counts nested run() frames on this worker's goroutine
	// (help-first sync loops and inline children re-enter run inside a
	// suspended frame). Only the owning goroutine touches it; busy time
	// is charged only at depth 1, where the interval already covers
	// everything executed on top of it — charging nested frames too
	// would double-count.
	depth int
}

// Ctx is the execution context of one task frame. It carries the
// work/span accumulators of the critical-path instrumentation; the
// algorithms report their leaf work through Account, and Parallel folds
// children's totals into the parent (sum for work, max for span).
type Ctx struct {
	w    *worker
	pool *Pool
	rs   *runState
	// Work is the total work (in caller-chosen units, e.g. flops)
	// accounted in this frame and its completed children.
	Work float64
	// Span is the critical-path length of this frame in the same units.
	Span float64
	// slot backs WorkerSlot for a Ctx that is not bound to a worker.
	slot any
}

// NewPool creates a pool with the given number of workers. Workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		inject: make(chan *task, 64),
		done:   make(chan struct{}),
	}
	p.workers = make([]*worker, workers)
	for i := range p.workers {
		p.workers[i] = &worker{pool: p, id: i, seed: uint64(i)*0x9E3779B97F4A7C15 + 1}
	}
	p.wg.Add(workers)
	for _, w := range p.workers {
		// Label each worker goroutine so CPU profiles and runtime
		// traces attribute samples to "recmat_worker: <id>" instead of
		// an anonymous goroutine soup. The label is applied once per
		// worker lifetime — zero per-task cost.
		go func(w *worker) {
			pprof.Do(context.Background(),
				pprof.Labels("recmat_worker", strconv.Itoa(w.id)),
				func(context.Context) { w.loop() })
		}(w)
	}
	return p
}

// BusyNanos returns the cumulative wall time, in nanoseconds, the
// pool's workers have spent executing task frames. The difference of
// two readings divided by (workers × elapsed wall time) is the pool's
// achieved utilization over that window — the measured complement of
// the Work/Span parallelism estimate. Time is charged when a top-level
// frame retires, so a reading taken mid-task does not include that
// task's partial time.
func (p *Pool) BusyNanos() int64 {
	var n int64
	for _, w := range p.workers {
		n += w.busy.Load()
	}
	return n
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.workers) }

// Close shuts the pool down. It is idempotent and safe to call
// concurrently: every caller blocks until the workers have exited.
// Close may also be called while runs are in flight (a serving
// process's drain path closes the pool with requests still executing):
// closing cancels every in-flight run — workers retire the remaining
// tasks without executing them, exactly as a cancelled context would —
// and those runs' Run/RunCtx calls return an error wrapping
// ErrPoolClosed instead of wedging.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.done)
	}
	p.wg.Wait()
	// Root tasks parked in the injection queue after the workers exited
	// would strand their callers on the completion channel; retire them.
	p.drainInject()
}

// drainInject retires any tasks parked in the injection queue without
// executing them. Only called on the close path — workers at exit,
// Close after the workers are gone, and RunCtx callers observing
// closure — when every run on this pool already reports cancelled, so
// retiring (not running) is the correct disposal.
func (p *Pool) drainInject() {
	for {
		select {
		case t := <-p.inject:
			j := t.join
			t.fn, t.join, t.ctx = nil, nil, nil
			taskPool.Put(t)
			j.finish()
		default:
			return
		}
	}
}

// Closed reports whether the pool has been closed.
func (p *Pool) Closed() bool { return p.closed.Load() }

// Run executes fn on the pool and blocks until it (and everything it
// spawned) completes. It returns the accounted work and span of the
// run. Panics in any task are recovered on the worker, aggregated, and
// returned as a *TaskError; a closed pool yields ErrPoolClosed. Run
// never panics and never re-raises task panics.
func (p *Pool) Run(fn func(*Ctx)) (work, span float64, err error) {
	return p.RunCtx(context.Background(), fn)
}

// RunCtx is Run with cooperative cancellation. When ctx is cancelled,
// the run's cancellation state flips: queued tasks of this run are
// retired without executing, spawn points stop spawning, and
// instrumented algorithms observe Ctx.Cancelled at their recursion
// points — so RunCtx returns within a bounded latency (roughly one leaf
// task) instead of finishing the full task graph. The returned error
// wraps ctx's cause (errors.Is(err, ctx.Err()) holds) joined with any
// panics that occurred before the abort. Work and span reflect only
// what actually executed.
//
// The caller blocks on the root join's completion channel; no waiter
// goroutine is spawned, so nothing outlives a panicking or cancelled
// run.
func (p *Pool) RunCtx(ctx context.Context, fn func(*Ctx)) (work, span float64, err error) {
	if p.closed.Load() {
		return 0, 0, ErrPoolClosed
	}
	if cerr := ctx.Err(); cerr != nil {
		return 0, 0, fmt.Errorf("sched: run not started: %w", context.Cause(ctx))
	}
	rs := &runState{done: ctx.Done(), pool: p}
	j := &join{donec: make(chan struct{})}
	j.pending.Store(1)
	c := &Ctx{pool: p, rs: rs}
	t := newTask(fn, j, c)
	select {
	case p.inject <- t:
	case <-p.done:
		t.fn, t.join, t.ctx = nil, nil, nil
		taskPool.Put(t)
		return 0, 0, ErrPoolClosed
	case <-ctx.Done():
		t.fn, t.join, t.ctx = nil, nil, nil
		taskPool.Put(t)
		return 0, 0, fmt.Errorf("sched: run not started: %w", context.Cause(ctx))
	}
	select {
	case <-j.donec:
	case <-ctx.Done():
		rs.cancelled.Store(true)
		// Cooperative abort: workers retire the remaining tasks of this
		// run without executing them, so this drains quickly.
		<-j.donec
	case <-p.done:
		// The pool is closing under this run. Workers drain their own
		// deques on the way out; drain the injection queue here too in
		// case our root task never left it (Close's own drain may
		// already have run by the time the task was injected).
		rs.cancelled.Store(true)
		p.drainInject()
		<-j.donec
	}
	work, span = c.Work, c.Span
	terr := j.taskErr()
	if rs.cancelled.Load() {
		cause := context.Cause(ctx)
		if cause == nil {
			// Not the context: the pool was closed out from under the
			// run (the drain path). Type the abort accordingly.
			return work, span, errors.Join(fmt.Errorf("sched: run aborted: %w", ErrPoolClosed), terr)
		}
		cancelErr := fmt.Errorf("sched: run cancelled: %w", cause)
		return work, span, errors.Join(cancelErr, terr)
	}
	return work, span, terr
}

// push adds a task to the owner's end of the deque.
func (w *worker) push(t *task) {
	w.mu.Lock()
	w.dq = append(w.dq, t)
	w.mu.Unlock()
	w.pool.spawns.Add(1)
	if tr := obs.Cur(); tr != nil {
		tr.Instant(w.id, obs.KindSpawn, 0)
	}
}

// pop removes the most recently pushed task (LIFO), or nil.
func (w *worker) pop() *task {
	w.mu.Lock()
	n := len(w.dq)
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	t := w.dq[n-1]
	w.dq[n-1] = nil
	w.dq = w.dq[:n-1]
	w.mu.Unlock()
	return t
}

// stealFrom removes the oldest task (FIFO) from v's deque, or nil.
func (w *worker) stealFrom(v *worker) *task {
	v.mu.Lock()
	if len(v.dq) == 0 {
		v.mu.Unlock()
		return nil
	}
	t := v.dq[0]
	v.dq[0] = nil
	v.dq = v.dq[1:]
	v.mu.Unlock()
	return t
}

// nextVictim is a xorshift step over the worker's private seed.
func (w *worker) nextVictim() *worker {
	w.seed ^= w.seed << 13
	w.seed ^= w.seed >> 7
	w.seed ^= w.seed << 17
	return w.pool.workers[w.seed%uint64(len(w.pool.workers))]
}

// findTask looks for runnable work: own deque first, then a round of
// random steals, then the injection queue.
func (w *worker) findTask() *task {
	if t := w.pop(); t != nil {
		return t
	}
	for try := 0; try < 2*len(w.pool.workers); try++ {
		v := w.nextVictim()
		if v != w {
			if t := w.stealFrom(v); t != nil {
				w.pool.steals.Add(1)
				if tr := obs.Cur(); tr != nil {
					tr.Instant(w.id, obs.KindSteal, int64(v.id))
				}
				return t
			}
		}
	}
	select {
	case t := <-w.pool.inject:
		return t
	default:
		return nil
	}
}

// run executes one task, binding its context to this worker, recording
// panics (with the worker-side stack) into the task's join, and
// signalling completion. Tasks belonging to a cancelled run are retired
// without executing — the between-tasks cancellation check that bounds
// a cancelled run's drain latency. The task header is recycled before
// the join is released: once pending drops the parent may return, but
// the task pointer itself is no longer referenced by anyone (it has
// already left every deque).
func (w *worker) run(t *task) {
	t.ctx.w = w
	j := t.join
	if !t.ctx.rs.isCancelled() {
		// Busy accounting and tracing share the frame's clock reads.
		// Only the owning goroutine touches depth: nested run frames
		// (inline children, help-first sync work) execute inside this
		// one, so charging busy time at depth 1 alone covers them.
		w.depth++
		tr := obs.Cur()
		timed := w.depth == 1 || tr != nil
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					j.recordPanic(r, debug.Stack())
				}
			}()
			faultinject.Point("sched.task")
			t.fn(t.ctx)
		}()
		if timed {
			d := time.Since(t0)
			if w.depth == 1 {
				w.busy.Add(int64(d))
			}
			if tr != nil {
				k := obs.KindTask
				if w.depth > 1 {
					k = obs.KindNested
				}
				tr.Span(w.id, k, t0, d, 0)
			}
		}
		w.depth--
	}
	t.fn, t.join, t.ctx = nil, nil, nil
	taskPool.Put(t)
	j.finish()
}

// loop is the worker main loop: execute available work, back off when
// idle, exit when the pool closes. On the way out the worker retires
// whatever is left in its own deque and the injection queue — the pool
// is closed, so every run is cancelled and w.run skips execution — so
// no join is left pending and no Run caller wedges on its completion
// channel.
func (w *worker) loop() {
	defer w.pool.wg.Done()
	idle := 0
	// markIdle tracks the threshold crossing into (and back out of) the
	// deep-idle state so the pool's starvation counter stays balanced.
	defer func() {
		if idle >= idleThreshold {
			w.pool.idle.Add(-1)
		}
	}()
	for {
		select {
		case <-w.pool.done:
			w.drainOwn()
			w.pool.drainInject()
			return
		default:
		}
		if t := w.findTask(); t != nil {
			if idle >= idleThreshold {
				w.pool.idle.Add(-1)
			}
			idle = 0
			w.run(t)
			continue
		}
		idle++
		if idle < idleThreshold {
			runtime.Gosched()
		} else {
			if idle == idleThreshold {
				w.pool.idle.Add(1)
			}
			select {
			case <-w.pool.done:
				w.drainOwn()
				w.pool.drainInject()
				return
			case t := <-w.pool.inject:
				w.pool.idle.Add(-1)
				idle = 0
				w.run(t)
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// idleThreshold is how many empty findTask rounds move a worker into
// the deep-idle state (and onto the pool's starvation counter);
// syncIdleThreshold is the same crossing for a help-first sync loop.
const (
	idleThreshold     = 64
	syncIdleThreshold = 256
)

// drainOwn retires the worker's remaining queued tasks through the
// ordinary run path, which skips execution because the pool's closure
// has cancelled their runs. Tasks pushed by frames still executing on
// other workers go to those workers' own deques, so per-worker
// self-drain covers everything.
func (w *worker) drainOwn() {
	for {
		t := w.pop()
		if t == nil {
			return
		}
		w.run(t)
	}
}

// WorkerSlot returns a pointer to the executing worker's local storage
// slot. The slot belongs to the worker, not the frame: successive tasks
// on the same worker see the same slot, and no other worker touches it,
// so callers can cache per-worker scratch state (e.g. leaf packing
// buffers) in it without locking. The pointer is only valid while the
// current task is running — don't retain it across a Parallel call,
// which may resume on a different set of stack frames. Outside a worker
// (a Ctx not yet bound to one), a frame-local slot is returned so the
// call is always safe.
func (c *Ctx) WorkerSlot() *any {
	if c.w == nil {
		return &c.slot
	}
	return &c.w.slot
}

// WorkerID returns the executing worker's index in [0, Workers()), or
// -1 for a Ctx not bound to a pool worker. A frame never migrates
// workers — the help-first discipline keeps a suspended frame on the
// goroutine of the worker that started it, which also runs any stolen
// tasks to completion on top of it — so the value is stable for the
// lifetime of one task frame. This is the hand-off the core scratch
// arena uses to give each worker a private LIFO stack of temporaries.
func (c *Ctx) WorkerID() int {
	if c.w == nil {
		return -1
	}
	return c.w.id
}

// Workers returns the size of the pool this frame runs on, or 1 for a
// Ctx not bound to a pool (serial execution).
func (c *Ctx) Workers() int {
	if c.pool == nil {
		return 1
	}
	return len(c.pool.workers)
}

// IdleWorkers returns the pool's starvation gauge (Pool.IdleWorkers),
// or 0 for a Ctx not bound to a pool.
func (c *Ctx) IdleWorkers() int {
	if c.pool == nil {
		return 0
	}
	return c.pool.IdleWorkers()
}

// Account adds w units of serial work to the frame: both the work and
// the span grow, since work inside a frame is sequential.
func (c *Ctx) Account(w float64) {
	c.Work += w
	c.Span += w
}

// Cancelled reports whether the enclosing run has been cancelled. It is
// a cheap poll (one atomic load, plus a non-blocking channel check the
// first time cancellation is observed) intended for algorithms to call
// at every recursion level, which bounds a cancelled run's latency to
// roughly one leaf task. A Ctx outside any run is never cancelled.
func (c *Ctx) Cancelled() bool { return c.rs.isCancelled() }

// Parallel runs the given functions as parallel children of this frame
// and returns when all of them have completed (the spawn/sync idiom of
// Cilk). The first function runs inline on the current worker; the rest
// are pushed onto its deque where idle workers can steal them. If any
// children panicked, Parallel re-raises a single aggregated *TaskError
// after all of them finish; the panic propagates to the enclosing sync
// point, where it is flattened into that join's aggregate, so every
// sibling panic (with its worker-side stack) survives to the root.
// Children's work sums into this frame; the maximum child span extends
// this frame's span.
//
// Parallel is also a spawn-point cancellation check: on a cancelled run
// it returns immediately without spawning or running anything.
func (c *Ctx) Parallel(fns ...func(*Ctx)) {
	if len(fns) == 0 || c.Cancelled() {
		return
	}
	j := &join{}
	j.pending.Store(int64(len(fns)))
	children := make([]*Ctx, len(fns))
	for i := len(fns) - 1; i >= 1; i-- {
		children[i] = &Ctx{pool: c.pool, rs: c.rs}
		c.w.push(newTask(fns[i], j, children[i]))
	}
	// Run the first child inline through the same panic-capturing path.
	children[0] = &Ctx{pool: c.pool, rs: c.rs}
	inline := newTask(fns[0], j, children[0])
	c.pool.inline.Add(1)
	c.w.run(inline)

	// Help-first sync: execute anything runnable until children finish.
	// A worker that reaches the sleep phase is starved — it counts on
	// the pool's idle gauge like a deep-idle main loop, so the table
	// engine's BFS/DFS policy sees saturation loss inside syncs too.
	idle := 0
	for j.pending.Load() != 0 {
		if t := c.w.findTask(); t != nil {
			if idle >= syncIdleThreshold {
				c.pool.idle.Add(-1)
			}
			idle = 0
			c.w.run(t)
			continue
		}
		idle++
		if idle < syncIdleThreshold {
			runtime.Gosched()
		} else {
			if idle == syncIdleThreshold {
				c.pool.idle.Add(1)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	if idle >= syncIdleThreshold {
		c.pool.idle.Add(-1)
	}

	var maxSpan float64
	for _, ch := range children {
		c.Work += ch.Work
		if ch.Span > maxSpan {
			maxSpan = ch.Span
		}
	}
	c.Span += maxSpan
	if err := j.taskErr(); err != nil {
		panic(err)
	}
}

// Serial runs fn as a child frame without exposing any parallelism; its
// work and span both accumulate into the current frame. It exists so
// that instrumented code can delimit frames uniformly.
func (c *Ctx) Serial(fn func(*Ctx)) {
	child := &Ctx{pool: c.pool, w: c.w, rs: c.rs}
	fn(child)
	c.Work += child.Work
	c.Span += child.Span
}

// Parallelism returns work/span, guarding against a zero span.
func Parallelism(work, span float64) float64 {
	if span <= 0 {
		return 0
	}
	return work / span
}

// String implements fmt.Stringer for debugging.
func (p *Pool) String() string {
	return fmt.Sprintf("sched.Pool{workers: %d}", len(p.workers))
}
