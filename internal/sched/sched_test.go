package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestRunExecutes(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Bool
	p.Run(func(c *Ctx) { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("root task did not run")
	}
}

func TestParallelRunsAll(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	p.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), 16)
		for i := range fns {
			fns[i] = func(c *Ctx) { count.Add(1) }
		}
		c.Parallel(fns...)
	})
	if count.Load() != 16 {
		t.Fatalf("ran %d of 16 children", count.Load())
	}
}

func TestNestedParallel(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	var spawn func(depth int) func(*Ctx)
	spawn = func(depth int) func(*Ctx) {
		return func(c *Ctx) {
			if depth == 0 {
				count.Add(1)
				return
			}
			c.Parallel(spawn(depth-1), spawn(depth-1), spawn(depth-1), spawn(depth-1))
		}
	}
	p.Run(spawn(5))
	if count.Load() != 1024 {
		t.Fatalf("ran %d of 1024 leaves", count.Load())
	}
}

func TestParallelSyncsBeforeReturn(t *testing.T) {
	// Everything spawned must be complete when Parallel returns.
	p := NewPool(4)
	defer p.Close()
	p.Run(func(c *Ctx) {
		for iter := 0; iter < 50; iter++ {
			var done [8]atomic.Bool
			fns := make([]func(*Ctx), 8)
			for i := range fns {
				i := i
				fns[i] = func(c *Ctx) {
					time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
					done[i].Store(true)
				}
			}
			c.Parallel(fns...)
			for i := range done {
				if !done[i].Load() {
					t.Errorf("iter %d: child %d incomplete at sync", iter, i)
				}
			}
		}
	})
}

func TestActualParallelismOccurs(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	p := NewPool(2)
	defer p.Close()
	// Two children that must overlap in time: each waits for the other
	// to have started. With real parallelism this completes; a serial
	// scheduler would deadlock (we bound it with a timeout).
	var aStarted, bStarted atomic.Bool
	doneCh := make(chan struct{})
	go func() {
		p.Run(func(c *Ctx) {
			c.Parallel(
				func(c *Ctx) {
					aStarted.Store(true)
					for !bStarted.Load() {
						runtime.Gosched()
					}
				},
				func(c *Ctx) {
					bStarted.Store(true)
					for !aStarted.Load() {
						runtime.Gosched()
					}
				},
			)
		})
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("children did not run concurrently on 2 workers")
	}
}

func TestSerialPoolCorrectness(t *testing.T) {
	// The same nested task graph must complete on one worker.
	p := NewPool(1)
	defer p.Close()
	var count atomic.Int64
	var spawn func(depth int) func(*Ctx)
	spawn = func(depth int) func(*Ctx) {
		return func(c *Ctx) {
			if depth == 0 {
				count.Add(1)
				return
			}
			c.Parallel(spawn(depth-1), spawn(depth-1))
		}
	}
	p.Run(spawn(8))
	if count.Load() != 256 {
		t.Fatalf("ran %d of 256 leaves", count.Load())
	}
}

func TestPanicPropagation(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	_, _, err := p.Run(func(c *Ctx) {
		c.Parallel(
			func(c *Ctx) {},
			func(c *Ctx) { panic("boom") },
			func(c *Ctx) {},
		)
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("Run returned %v, want *TaskError", err)
	}
	if len(te.Panics) != 1 || te.Panics[0].Value != "boom" {
		t.Fatalf("panics = %v, want one with value boom", te.Panics)
	}
	if len(te.Panics[0].Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

func TestPanicInNestedChild(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	_, _, err := p.Run(func(c *Ctx) {
		c.Parallel(func(c *Ctx) {
			c.Parallel(func(c *Ctx) {
				c.Parallel(func(c *Ctx) { panic("deep") })
			})
		})
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("Run returned %v, want *TaskError", err)
	}
	if len(te.Panics) != 1 || te.Panics[0].Value != "deep" {
		t.Fatalf("panics = %v, want one with value deep", te.Panics)
	}
}

func TestAllSiblingPanicsAggregated(t *testing.T) {
	// Every panicking sibling must be reported, not just the first.
	p := NewPool(4)
	defer p.Close()
	_, _, err := p.Run(func(c *Ctx) {
		c.Parallel(
			func(c *Ctx) { panic("one") },
			func(c *Ctx) {},
			func(c *Ctx) { panic("two") },
			func(c *Ctx) { panic("three") },
		)
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("Run returned %v, want *TaskError", err)
	}
	if len(te.Panics) != 3 {
		t.Fatalf("got %d panics, want 3: %v", len(te.Panics), te)
	}
	seen := map[any]bool{}
	for _, pe := range te.Panics {
		seen[pe.Value] = true
		if len(pe.Stack) == 0 {
			t.Errorf("panic %v missing stack", pe.Value)
		}
	}
	for _, want := range []string{"one", "two", "three"} {
		if !seen[want] {
			t.Errorf("panic %q not aggregated", want)
		}
	}
}

func TestPanicErrorUnwrapsErrorValue(t *testing.T) {
	// A task that panics with an error value must stay reachable through
	// errors.Is/errors.As on the returned aggregate.
	p := NewPool(2)
	defer p.Close()
	sentinel := errors.New("sentinel failure")
	_, _, err := p.Run(func(c *Ctx) {
		c.Parallel(func(c *Ctx) { panic(sentinel) })
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is cannot reach panic value through %v", err)
	}
}

func TestPoolSurvivesPanic(t *testing.T) {
	// After a failed run, the pool must still execute new work.
	p := NewPool(2)
	defer p.Close()
	if _, _, err := p.Run(func(c *Ctx) { panic("first") }); err == nil {
		t.Fatal("panicking run reported no error")
	}
	var ok atomic.Bool
	if _, _, err := p.Run(func(c *Ctx) { ok.Store(true) }); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
	if !ok.Load() {
		t.Fatal("pool unusable after panic")
	}
}

func TestNoGoroutineLeakAfterRuns(t *testing.T) {
	// Neither normal nor panicking runs may leave goroutines behind (the
	// busy-poll waiter of the old implementation showed up here).
	p := NewPool(4)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p.Run(func(c *Ctx) {
			c.Parallel(func(c *Ctx) {}, func(c *Ctx) { panic("x") })
		})
	}
	// Workers are still parked; only transient goroutines would leak.
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d across runs", before, after)
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before-4+2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestWorkSpanAccounting(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	// Frame: 10 units serial, then 4 parallel children of 5 units each,
	// then 3 units serial. Work = 10+20+3 = 33; span = 10+5+3 = 18.
	work, span, _ := p.Run(func(c *Ctx) {
		c.Account(10)
		ch := func(c *Ctx) { c.Account(5) }
		c.Parallel(ch, ch, ch, ch)
		c.Account(3)
	})
	if work != 33 {
		t.Errorf("work = %g, want 33", work)
	}
	if span != 18 {
		t.Errorf("span = %g, want 18", span)
	}
}

func TestWorkSpanNested(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Balanced binary recursion, depth 3, 1 unit per leaf:
	// work = 8, span = 1 (all serial segments are at leaves).
	var spawn func(depth int) func(*Ctx)
	spawn = func(depth int) func(*Ctx) {
		return func(c *Ctx) {
			if depth == 0 {
				c.Account(1)
				return
			}
			c.Parallel(spawn(depth-1), spawn(depth-1))
		}
	}
	work, span, _ := p.Run(spawn(3))
	if work != 8 || span != 1 {
		t.Errorf("work,span = %g,%g; want 8,1", work, span)
	}
	if Parallelism(work, span) != 8 {
		t.Errorf("parallelism = %g, want 8", Parallelism(work, span))
	}
}

func TestSerialFrame(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	work, span, _ := p.Run(func(c *Ctx) {
		c.Serial(func(c *Ctx) { c.Account(4) })
		c.Serial(func(c *Ctx) { c.Account(6) })
	})
	if work != 10 || span != 10 {
		t.Errorf("work,span = %g,%g; want 10,10", work, span)
	}
}

func TestParallelismGuard(t *testing.T) {
	if Parallelism(10, 0) != 0 {
		t.Fatal("zero span should yield zero parallelism")
	}
}

func TestWorkersCount(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	q := NewPool(0)
	defer q.Close()
	if q.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Workers() = %d", q.Workers())
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic or hang
}

func TestCloseConcurrentIdempotent(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	if !p.Closed() {
		t.Fatal("pool not closed after concurrent Close")
	}
}

func TestRunAfterCloseRejected(t *testing.T) {
	p := NewPool(1)
	p.Close()
	var ran atomic.Bool
	_, _, err := p.Run(func(c *Ctx) { ran.Store(true) })
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Run on closed pool returned %v, want ErrPoolClosed", err)
	}
	if ran.Load() {
		t.Fatal("task ran on closed pool")
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	_, _, err := p.RunCtx(ctx, func(c *Ctx) { ran.Store(true) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunCtx returned %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("task ran despite pre-cancelled context")
	}
}

func TestRunCtxCancelMidRun(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var after atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, _, err := p.RunCtx(ctx, func(c *Ctx) {
			fns := make([]func(*Ctx), 64)
			for i := range fns {
				i := i
				fns[i] = func(c *Ctx) {
					if i == 0 {
						close(started)
						<-ctx.Done()
						return
					}
					// Tasks injected after cancellation must be skipped;
					// count the ones that still run.
					time.Sleep(time.Millisecond)
					if ctx.Err() != nil && !c.Cancelled() {
						after.Add(1)
					}
				}
			}
			c.Parallel(fns...)
		})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled RunCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return")
	}
	if after.Load() != 0 {
		t.Fatalf("%d tasks observed cancellation without Cancelled()", after.Load())
	}
	// The pool stays usable after a cancelled run.
	var ok atomic.Bool
	if _, _, err := p.Run(func(c *Ctx) { ok.Store(true) }); err != nil || !ok.Load() {
		t.Fatalf("pool unusable after cancelled run: %v", err)
	}
}

func TestCancelledRunReportsPanics(t *testing.T) {
	// A run that both panics and is cancelled must surface both: the
	// context error via errors.Is and the panics via errors.As.
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err := p.RunCtx(ctx, func(c *Ctx) {
		c.Parallel(func(c *Ctx) {
			cancel()
			panic("mid-cancel boom")
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled inside", err)
	}
	var te *TaskError
	if !errors.As(err, &te) || len(te.Panics) != 1 {
		t.Fatalf("err = %v, want wrapped *TaskError with the panic", err)
	}
}

func TestManySequentialRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for i := 0; i < 100; i++ {
		p.Run(func(c *Ctx) {
			c.Parallel(
				func(c *Ctx) { total.Add(1) },
				func(c *Ctx) { total.Add(1) },
			)
		})
	}
	if total.Load() != 200 {
		t.Fatalf("total = %d, want 200", total.Load())
	}
}

func TestLoadDistribution(t *testing.T) {
	// With enough coarse tasks, more than one worker must participate.
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	p := NewPool(2)
	defer p.Close()
	var perWorker [2]atomic.Int64
	p.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), 32)
		for i := range fns {
			fns[i] = func(c *Ctx) {
				perWorker[c.w.id].Add(1)
				busy := time.Now()
				for time.Since(busy) < 2*time.Millisecond {
				}
			}
		}
		c.Parallel(fns...)
	})
	if perWorker[0].Load() == 0 || perWorker[1].Load() == 0 {
		t.Errorf("work not stolen: distribution %d/%d", perWorker[0].Load(), perWorker[1].Load())
	}
}

func BenchmarkSpawnSyncOverhead(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	b.ResetTimer()
	p.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			c.Parallel(func(c *Ctx) {}, func(c *Ctx) {})
		}
	})
}

func TestPoolStats(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Run(func(c *Ctx) {
		c.Parallel(
			func(c *Ctx) {},
			func(c *Ctx) {},
			func(c *Ctx) {},
		)
	})
	st := p.Stats()
	// Three children: one inline, two pushed.
	if st.Inline != 1 || st.Spawns != 2 {
		t.Fatalf("stats = %+v, want 1 inline / 2 spawns", st)
	}
	if st.Steals < 0 || st.Steals > st.Spawns {
		t.Fatalf("steals %d out of range", st.Steals)
	}
	p.ResetStats()
	if st := p.Stats(); st.Spawns != 0 || st.Inline != 0 || st.Steals != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestStealsOccurUnderLoad(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	p := NewPool(2)
	defer p.Close()
	p.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), 64)
		for i := range fns {
			fns[i] = func(c *Ctx) {
				busy := time.Now()
				for time.Since(busy) < time.Millisecond {
				}
			}
		}
		c.Parallel(fns...)
	})
	if p.Stats().Steals == 0 {
		t.Error("no steals under 64 coarse tasks on 2 workers")
	}
}

func TestWorkerSlotPersistsAcrossTasks(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	// With one worker every task runs on the same worker, so a value
	// stored in the slot by one task must be visible to the next.
	p.Run(func(c *Ctx) {
		*c.WorkerSlot() = 42
	})
	p.Run(func(c *Ctx) {
		if v, ok := (*c.WorkerSlot()).(int); !ok || v != 42 {
			t.Errorf("worker slot = %v, want 42", *c.WorkerSlot())
		}
		c.Parallel(func(c *Ctx) {
			if v, ok := (*c.WorkerSlot()).(int); !ok || v != 42 {
				t.Errorf("worker slot in child = %v, want 42", *c.WorkerSlot())
			}
		})
	})
}

func TestWorkerSlotUnboundCtx(t *testing.T) {
	var c Ctx // never bound to a worker
	*c.WorkerSlot() = "x"
	if v, ok := (*c.WorkerSlot()).(string); !ok || v != "x" {
		t.Errorf("unbound slot = %v, want %q", *c.WorkerSlot(), "x")
	}
}

func TestWorkerIDAndWorkers(t *testing.T) {
	var unbound Ctx
	if id := unbound.WorkerID(); id != -1 {
		t.Errorf("unbound WorkerID = %d, want -1", id)
	}
	if w := unbound.Workers(); w != 1 {
		t.Errorf("unbound Workers = %d, want 1", w)
	}
	p := NewPool(3)
	defer p.Close()
	p.Run(func(c *Ctx) {
		if w := c.Workers(); w != 3 {
			t.Errorf("Workers = %d, want 3", w)
		}
		id := c.WorkerID()
		if id < 0 || id >= 3 {
			t.Errorf("WorkerID = %d, want in [0, 3)", id)
		}
		// Help-first scheduling: a frame never migrates, so the ID is
		// stable across nested spawns within the same frame.
		c.Parallel(func(c *Ctx) {
			if cid := c.WorkerID(); cid < 0 || cid >= 3 {
				t.Errorf("child WorkerID = %d, want in [0, 3)", cid)
			}
		})
		if again := c.WorkerID(); again != id {
			t.Errorf("WorkerID changed %d → %d within a frame", id, again)
		}
	})
}

// BenchmarkParallelSpawn guards the task-recycling pool: its allocs/op
// is the scheduler's per-spawn allocation budget (join + child contexts
// + closure bookkeeping; the task headers themselves are pooled).
func BenchmarkParallelSpawn(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	p.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			c.Parallel(
				func(c *Ctx) {},
				func(c *Ctx) {},
				func(c *Ctx) {},
				func(c *Ctx) {},
			)
		}
	})
}

func TestStressPoolFaultInjection(t *testing.T) {
	// Under probabilistic task faults the pool must never let a panic
	// escape Run, must report every injected fault as a typed error,
	// and must stay fully usable afterwards.
	if !faultinject.Enabled() {
		faultinject.Configure(faultinject.Config{
			PanicProb: 0.01, DelayProb: 0.01, Delay: 20 * time.Microsecond, Seed: 11,
		})
		defer faultinject.Disable()
	}
	p := NewPool(4)
	defer p.Close()
	var spawn func(depth int) func(*Ctx)
	spawn = func(depth int) func(*Ctx) {
		return func(c *Ctx) {
			if depth == 0 {
				return
			}
			c.Parallel(spawn(depth-1), spawn(depth-1), spawn(depth-1))
		}
	}
	failures := 0
	for i := 0; i < 50; i++ {
		if _, _, err := p.Run(spawn(4)); err != nil {
			failures++
			var fault *faultinject.Fault
			if !errors.As(err, &fault) {
				t.Fatalf("iter %d: error %v does not unwrap to injected fault", i, err)
			}
		}
	}
	t.Logf("pool fault stress: %d/50 runs failed (injected)", failures)
	faultinject.Disable()
	var ok atomic.Bool
	if _, _, err := p.Run(func(c *Ctx) { ok.Store(true) }); err != nil || !ok.Load() {
		t.Fatalf("pool unusable after fault stress: %v", err)
	}
}

func TestCloseDuringRunCtxAbortsTyped(t *testing.T) {
	// The daemon drain path closes the pool while requests may still be
	// executing. Closing must behave like a cancellation: the in-flight
	// run returns promptly with an error wrapping ErrPoolClosed (or
	// completes cleanly if it won the race), and nothing wedges.
	for i := 0; i < 10; i++ {
		p := NewPool(4)
		started := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			_, _, err := p.RunCtx(context.Background(), func(c *Ctx) {
				fns := make([]func(*Ctx), 128)
				for j := range fns {
					j := j
					fns[j] = func(c *Ctx) {
						if j == 0 {
							close(started)
						}
						time.Sleep(100 * time.Microsecond)
					}
				}
				c.Parallel(fns...)
			})
			done <- err
		}()
		<-started
		p.Close()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, ErrPoolClosed) {
				t.Fatalf("iter %d: close-during-run returned %v, want nil or ErrPoolClosed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: run wedged after Close", i)
		}
	}
}

func TestCloseDuringRunCtxNoGoroutineLeak(t *testing.T) {
	// Extends PR 2's completion-channel test to the drain path: a pool
	// closed mid-run must release its workers and leave no goroutine
	// behind — neither the run's caller nor a worker parked on a join.
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		p := NewPool(3)
		started := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.RunCtx(context.Background(), func(c *Ctx) {
				fns := make([]func(*Ctx), 64)
				for j := range fns {
					j := j
					fns[j] = func(c *Ctx) {
						if j == 0 {
							close(started)
						}
						time.Sleep(200 * time.Microsecond)
					}
				}
				c.Parallel(fns...)
			})
		}()
		<-started
		p.Close()
	}
	wg.Wait()
	// Workers exit asynchronously after Close returns their wg; settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked across close-during-run cycles: %d -> %d", before, g)
	}
}
