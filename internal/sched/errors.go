package sched

import (
	"errors"
	"fmt"
	"strings"
)

// ErrPoolClosed is returned by Run/RunCtx on a pool that has been
// closed. It is a sentinel: test with errors.Is.
var ErrPoolClosed = errors.New("sched: pool is closed")

// PanicError is one recovered task panic. The stack is captured with
// debug.Stack() on the worker that recovered the panic, so it shows the
// frames of the failing task, not of the caller that observes the error.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted goroutine stack at the recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	if len(e.Stack) == 0 {
		return fmt.Sprintf("sched: task panicked: %v", e.Value)
	}
	return fmt.Sprintf("sched: task panicked: %v\n%s", e.Value, e.Stack)
}

// Unwrap exposes a panic value that is itself an error, so errors.Is and
// errors.As reach through an injected or propagated error value.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// TaskError aggregates every panic recovered during one run or at one
// sync point — not just the first. It unwraps to the individual
// PanicErrors in errors.Join style, so errors.Is/As traverse all of
// them.
type TaskError struct {
	Panics []*PanicError
}

func (e *TaskError) Error() string {
	switch len(e.Panics) {
	case 0:
		return "sched: task error with no recorded panics"
	case 1:
		return e.Panics[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sched: %d tasks panicked:", len(e.Panics))
	for i, p := range e.Panics {
		fmt.Fprintf(&b, "\n[task panic %d/%d] %s", i+1, len(e.Panics), p.Error())
	}
	return b.String()
}

// Unwrap returns the individual panics as errors (errors.Join-style
// multi-error unwrapping).
func (e *TaskError) Unwrap() []error {
	errs := make([]error, len(e.Panics))
	for i, p := range e.Panics {
		errs[i] = p
	}
	return errs
}
