package quadtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range [][2]int{{1, 1}, {4, 4}, {7, 5}, {16, 16}, {33, 9}} {
		d := matrix.Random(sh[0], sh[1], rng)
		q := FromDense(d)
		back := q.ToDense()
		if !matrix.Equal(back, d, 0) {
			t.Errorf("%v: round trip failed", sh)
		}
	}
}

func TestAtMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := matrix.Random(13, 21, rng)
	q := FromDense(d)
	for i := 0; i < 13; i++ {
		for j := 0; j < 21; j++ {
			if q.At(i, j) != d.At(i, j) {
				t.Fatalf("At(%d,%d) = %g, want %g", i, j, q.At(i, j), d.At(i, j))
			}
		}
	}
}

func TestAtBounds(t *testing.T) {
	q := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At should panic")
		}
	}()
	q.At(3, 0)
}

func TestZeroElision(t *testing.T) {
	// The zero matrix is a nil root; a sparse matrix uses few nodes.
	z := FromDense(matrix.New(16, 16))
	if z.Nodes() != 0 {
		t.Fatalf("zero matrix has %d nodes", z.Nodes())
	}
	d := matrix.New(16, 16)
	d.Set(5, 9, 1)
	q := FromDense(d)
	// One path from root to leaf: 4 internal nodes + 1 leaf.
	if q.Nodes() != 5 {
		t.Fatalf("single-element matrix has %d nodes, want 5", q.Nodes())
	}
	dense := FromDense(matrix.Sequential(16, 16))
	if dense.Nodes() <= 256 {
		t.Fatalf("dense matrix has only %d nodes", dense.Nodes())
	}
}

func TestAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := matrix.Random(10, 14, rng)
	b := matrix.Random(10, 14, rng)
	sum := Add(FromDense(a), FromDense(b)).ToDense()
	want := matrix.New(10, 14)
	matrix.Add(want, a, b)
	if !matrix.Equal(sum, want, 0) {
		t.Fatal("quadtree add wrong")
	}
}

func TestAddCancellationElides(t *testing.T) {
	d := matrix.Sequential(8, 8)
	neg := d.Clone()
	neg.Scale(-1)
	z := Add(FromDense(d), FromDense(neg))
	if z.Nodes() != 0 {
		t.Fatalf("x + (-x) left %d nodes", z.Nodes())
	}
}

func TestMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := [][3]int{{4, 4, 4}, {8, 8, 8}, {5, 7, 3}, {16, 2, 11}, {1, 9, 1}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		A := matrix.Random(m, k, rng)
		B := matrix.Random(k, n, rng)
		got := Mul(FromDense(A), FromDense(B)).ToDense()
		want := matrix.New(m, n)
		matrix.RefMulAdd(want, A, B)
		if !matrix.Equal(got, want, 1e-12) {
			t.Errorf("%v: quadtree mul wrong (max diff %g)", sh, matrix.MaxAbsDiff(got, want))
		}
	}
}

func TestMulAnnihilatesZeros(t *testing.T) {
	// Multiplying by a matrix with a zero quadrant must skip work: the
	// result has no nodes under the annihilated region.
	a := matrix.New(8, 8)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, 1) // only the NW quadrant of A is non-zero
		}
	}
	b := matrix.Sequential(8, 8)
	got := Mul(FromDense(a), FromDense(b))
	want := matrix.New(8, 8)
	matrix.RefMulAdd(want, a, b)
	if !matrix.Equal(got.ToDense(), want, 1e-12) {
		t.Fatal("sparse mul wrong")
	}
	// Rows 4-7 of the result are zero; they must not be materialized.
	full := Mul(FromDense(matrix.Sequential(8, 8)), FromDense(b))
	if got.Nodes() >= full.Nodes() {
		t.Errorf("sparse product has %d nodes, dense has %d — no elision benefit",
			got.Nodes(), full.Nodes())
	}
}

func TestMixedExtents(t *testing.T) {
	// Operands whose padded extents differ must still conform.
	rng := rand.New(rand.NewSource(5))
	A := matrix.Random(3, 2, rng) // extent 4
	B := matrix.Random(2, 9, rng) // extent 16
	got := Mul(FromDense(A), FromDense(B)).ToDense()
	want := matrix.New(3, 9)
	matrix.RefMulAdd(want, A, B)
	if !matrix.Equal(got, want, 1e-12) {
		t.Fatal("mixed-extent mul wrong")
	}
	sum := Add(FromDense(matrix.Random(3, 9, rng)), FromDense(matrix.New(3, 9)))
	if sum.Rows() != 3 || sum.Cols() != 9 {
		t.Fatal("mixed-extent add shape wrong")
	}
}

func TestShapeErrors(t *testing.T) {
	for name, f := range map[string]func(){
		"add": func() { Add(New(2, 2), New(3, 2)) },
		"mul": func() { Mul(New(2, 3), New(2, 3)) },
		"new": func() { New(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape error did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMulProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		A := matrix.Random(m, k, rng)
		B := matrix.Random(k, n, rng)
		// Sparsify to exercise the elision paths.
		for idx := range A.Data {
			if rng.Intn(3) == 0 {
				A.Data[idx] = 0
			}
		}
		got := Mul(FromDense(A), FromDense(B)).ToDense()
		want := matrix.New(m, n)
		matrix.RefMulAdd(want, A, B)
		return matrix.Equal(got, want, 1e-12)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQuadtreeMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	A := FromDense(matrix.Random(64, 64, rng))
	B := FromDense(matrix.Random(64, 64, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(A, B)
	}
}

func BenchmarkQuadtreeFromDense256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := matrix.Random(256, 256, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromDense(d)
	}
}
