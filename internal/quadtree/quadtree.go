// Package quadtree implements the Frens–Wise representation the paper
// argues against (Sections 1, 4, 6): a matrix as an element-level
// quadtree with physically represented internal nodes, where empty
// (all-zero) subtrees are elided so that the algebra is "directed around
// zeroes (as additive identities and multiplicative annihilators)".
//
// The paper's position is that carrying the recursion to single elements
// wastes an order of magnitude of performance compared to stopping at
// cache-sized tiles; this package exists as the honest baseline for that
// comparison (BenchmarkAblationQuadtreeBaseline at the repository root)
// and as the sparse-friendly variant the elision scheme is actually good
// for.
package quadtree

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/matrix"
)

// node is one quadtree node. Exactly one of the two forms is active:
// a leaf (size 1) holds a value; an internal node holds four children in
// NW, NE, SW, SE order, any of which may be nil to denote an all-zero
// subtree.
type node struct {
	val  float64
	kids *[4]*node
}

// Matrix is an element-level quadtree over a padded 2^k × 2^k index
// space covering a logical rows × cols matrix. A nil root denotes the
// zero matrix.
type Matrix struct {
	rows, cols int
	size       int // padded extent, power of two
	root       *node
}

// New returns the zero matrix of the given logical shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("quadtree: bad shape %dx%d", rows, cols))
	}
	ext := rows
	if cols > ext {
		ext = cols
	}
	return &Matrix{rows: rows, cols: cols, size: bits.NextPow2(ext)}
}

// Rows and Cols return the logical shape.
func (m *Matrix) Rows() int { return m.rows }
func (m *Matrix) Cols() int { return m.cols }

// FromDense builds a quadtree from a column-major matrix, eliding zero
// subtrees.
func FromDense(d *matrix.Dense) *Matrix {
	m := New(d.Rows, d.Cols)
	m.root = build(d, 0, 0, m.size)
	return m
}

func build(d *matrix.Dense, i0, j0, size int) *node {
	if i0 >= d.Rows || j0 >= d.Cols {
		return nil
	}
	if size == 1 {
		v := d.At(i0, j0)
		if v == 0 {
			return nil
		}
		return &node{val: v}
	}
	h := size / 2
	kids := [4]*node{
		build(d, i0, j0, h),
		build(d, i0, j0+h, h),
		build(d, i0+h, j0, h),
		build(d, i0+h, j0+h, h),
	}
	if kids[0] == nil && kids[1] == nil && kids[2] == nil && kids[3] == nil {
		return nil
	}
	return &node{kids: &kids}
}

// ToDense materializes the quadtree as a column-major matrix.
func (m *Matrix) ToDense() *matrix.Dense {
	d := matrix.New(m.rows, m.cols)
	m.walk(m.root, 0, 0, m.size, func(i, j int, v float64) {
		if i < m.rows && j < m.cols {
			d.Set(i, j, v)
		}
	})
	return d
}

func (m *Matrix) walk(n *node, i0, j0, size int, f func(i, j int, v float64)) {
	if n == nil {
		return
	}
	if size == 1 {
		f(i0, j0, n.val)
		return
	}
	h := size / 2
	m.walk(n.kids[0], i0, j0, h, f)
	m.walk(n.kids[1], i0, j0+h, h, f)
	m.walk(n.kids[2], i0+h, j0, h, f)
	m.walk(n.kids[3], i0+h, j0+h, h, f)
}

// At returns logical element (i, j), walking the tree from the root —
// the O(lg n) per-element addressing cost that motivates the paper's
// "dope vector" question.
func (m *Matrix) At(i, j int) float64 {
	if i < 0 || j < 0 || i >= m.rows || j >= m.cols {
		panic(fmt.Sprintf("quadtree: At(%d,%d) outside %dx%d", i, j, m.rows, m.cols))
	}
	n := m.root
	size := m.size
	for n != nil && size > 1 {
		h := size / 2
		q := 0
		if i >= h {
			q |= 2
			i -= h
		}
		if j >= h {
			q |= 1
			j -= h
		}
		n = n.kids[q]
		size = h
	}
	if n == nil {
		return 0
	}
	return n.val
}

// Nodes counts physically represented nodes — the storage overhead of
// maintaining the internal tree, which the tiled layouts avoid entirely.
func (m *Matrix) Nodes() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.kids == nil {
			return 1
		}
		return 1 + count(n.kids[0]) + count(n.kids[1]) + count(n.kids[2]) + count(n.kids[3])
	}
	return count(m.root)
}

// grown returns the root embedded (as the NW subtree of successive
// parents) in a padded extent of at least size, so that operands with
// different padded extents conform. Trees are immutable after
// construction, so subtree sharing is safe.
func (m *Matrix) grown(size int) *node {
	r, s := m.root, m.size
	for s < size {
		if r != nil {
			r = &node{kids: &[4]*node{r, nil, nil, nil}}
		}
		s *= 2
	}
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Add returns a + b. Zero subtrees are additive identities: the shared
// subtree of the other operand is reused without copying, which is the
// pay-off of the Frens–Wise flags for sparse patches.
func Add(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("quadtree: add %dx%d + %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	size := maxInt(a.size, b.size)
	return &Matrix{rows: a.rows, cols: a.cols, size: size, root: addNode(a.grown(size), b.grown(size), size)}
}

func addNode(x, y *node, size int) *node {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	if size == 1 {
		v := x.val + y.val
		if v == 0 {
			return nil
		}
		return &node{val: v}
	}
	h := size / 2
	kids := [4]*node{
		addNode(x.kids[0], y.kids[0], h),
		addNode(x.kids[1], y.kids[1], h),
		addNode(x.kids[2], y.kids[2], h),
		addNode(x.kids[3], y.kids[3], h),
	}
	if kids[0] == nil && kids[1] == nil && kids[2] == nil && kids[3] == nil {
		return nil
	}
	return &node{kids: &kids}
}

// Mul returns a·b with the standard eight-product recursion carried to
// single elements, zero subtrees acting as multiplicative annihilators.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("quadtree: mul %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	size := maxInt(a.size, b.size)
	return &Matrix{rows: a.rows, cols: b.cols, size: size, root: mulNode(a.grown(size), b.grown(size), size)}
}

func mulNode(x, y *node, size int) *node {
	if x == nil || y == nil {
		return nil // multiplicative annihilator: skip the whole subtree
	}
	if size == 1 {
		v := x.val * y.val
		if v == 0 {
			return nil
		}
		return &node{val: v}
	}
	h := size / 2
	// C_q = A_q1·B_1q' + A_q2·B_2q' via the elision-aware add.
	mm := func(p, q *node) *node { return mulNode(p, q, h) }
	kids := [4]*node{
		addNode(mm(x.kids[0], y.kids[0]), mm(x.kids[1], y.kids[2]), h),
		addNode(mm(x.kids[0], y.kids[1]), mm(x.kids[1], y.kids[3]), h),
		addNode(mm(x.kids[2], y.kids[0]), mm(x.kids[3], y.kids[2]), h),
		addNode(mm(x.kids[2], y.kids[1]), mm(x.kids[3], y.kids[3]), h),
	}
	if kids[0] == nil && kids[1] == nil && kids[2] == nil && kids[3] == nil {
		return nil
	}
	return &node{kids: &kids}
}
