package blas3

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// LU is the result of an LU factorization with partial pivoting:
// P·A = L·U, with L unit lower triangular and U upper triangular, both
// packed into LU (L's unit diagonal is implicit). Piv records the row
// interchanges: row i was swapped with row Piv[i] at step i.
type LU struct {
	LU  *matrix.Dense
	Piv []int
}

// Factor computes the LU factorization of A with partial pivoting using
// the recursive right-looking algorithm: factor the left block column,
// apply its pivots, solve the U12 block with TRSM, update the trailing
// matrix with GEMM (over the configured recursive layout), and recurse.
// This is the LAPACK getrf structure on top of the paper's multiply —
// together with Cholesky it demonstrates that recursive layouts carry a
// full dense solver stack, the direction the paper's related-work
// section (Gustavson) points to.
func Factor(pool *sched.Pool, o core.Options, A *matrix.Dense) (*LU, error) {
	if A.Rows != A.Cols {
		return nil, fmt.Errorf("blas3: LU needs a square matrix, got %dx%d", A.Rows, A.Cols)
	}
	n := A.Rows
	f := &LU{LU: A.Clone(), Piv: make([]int, n)}
	for i := range f.Piv {
		f.Piv[i] = i
	}
	if err := luRec(pool, o, f.LU, f.Piv, 0); err != nil {
		return nil, err
	}
	return f, nil
}

// luRec factors the square trailing block of a starting at column off,
// where a is the full working matrix (row swaps must apply to full
// rows). piv is indexed in full-matrix coordinates.
func luRec(pool *sched.Pool, o core.Options, a *matrix.Dense, piv []int, off int) error {
	n := a.Rows - off
	if n <= baseSize {
		return luBase(a, piv, off)
	}
	h := n / 2
	// Factor the left block column (the first h columns of the trailing
	// matrix) with the blocked base-case algorithm applied recursively:
	// treat columns [off, off+h) over rows [off, a.Rows).
	if err := luPanel(pool, o, a, piv, off, h); err != nil {
		return err
	}
	// A12 ← L11⁻¹·A12 (unit lower TRSM on the pivoted block).
	a11 := a.View(off, off, h, h)
	a12 := a.View(off, off+h, h, a.Cols-off-h)
	trsmUnitLower(a11, a12)
	// A22 ← A22 − A21·A12 via the recursive-layout GEMM.
	a21 := a.View(off+h, off, a.Rows-off-h, h)
	a22 := a.View(off+h, off+h, a.Rows-off-h, a.Cols-off-h)
	if err := gemm(pool, o, false, false, -1, a21, a12, 1, a22); err != nil {
		return err
	}
	return luRec(pool, o, a, piv, off+h)
}

// luPanel factors a tall panel of width w starting at (off, off) with
// partial pivoting, swapping full rows of a.
func luPanel(pool *sched.Pool, o core.Options, a *matrix.Dense, piv []int, off, w int) error {
	if w <= baseSize {
		return luPanelBase(a, piv, off, w)
	}
	h := w / 2
	if err := luPanel(pool, o, a, piv, off, h); err != nil {
		return err
	}
	// Right half of the panel: solve the top block, update the bottom.
	a11 := a.View(off, off, h, h)
	a12 := a.View(off, off+h, h, w-h)
	trsmUnitLower(a11, a12)
	a21 := a.View(off+h, off, a.Rows-off-h, h)
	a22 := a.View(off+h, off+h, a.Rows-off-h, w-h)
	if err := gemm(pool, o, false, false, -1, a21, a12, 1, a22); err != nil {
		return err
	}
	// Factor the bottom-right sub-panel (rows off+h.., cols off+h..off+w).
	return luPanelShifted(a, piv, off+h, w-h)
}

// luPanelShifted runs the unblocked panel factorization for the
// sub-panel whose diagonal starts at (off, off) and has width w.
func luPanelShifted(a *matrix.Dense, piv []int, off, w int) error {
	return luPanelBase(a, piv, off, w)
}

// luPanelBase is the unblocked right-looking panel factorization with
// partial pivoting over rows [off, a.Rows), columns [off, off+w).
func luPanelBase(a *matrix.Dense, piv []int, off, w int) error {
	rows := a.Rows
	for k := off; k < off+w; k++ {
		// Pivot search in column k.
		p := k
		best := math.Abs(a.At(k, k))
		for i := k + 1; i < rows; i++ {
			if v := math.Abs(a.At(i, k)); v > best {
				best, p = v, i
			}
		}
		if best == 0 {
			return fmt.Errorf("blas3: LU is singular at column %d", k)
		}
		if p != k {
			swapRows(a, k, p)
			piv[k] = p
		}
		d := a.At(k, k)
		for i := k + 1; i < rows; i++ {
			l := a.At(i, k) / d
			a.Set(i, k, l)
			for j := k + 1; j < off+w; j++ {
				a.Set(i, j, a.At(i, j)-l*a.At(k, j))
			}
		}
	}
	return nil
}

// luBase factors the whole trailing matrix unblocked (terminal case).
func luBase(a *matrix.Dense, piv []int, off int) error {
	n := a.Rows - off
	for k := off; k < off+n; k++ {
		p := k
		best := math.Abs(a.At(k, k))
		for i := k + 1; i < a.Rows; i++ {
			if v := math.Abs(a.At(i, k)); v > best {
				best, p = v, i
			}
		}
		if best == 0 {
			return fmt.Errorf("blas3: LU is singular at column %d", k)
		}
		if p != k {
			swapRows(a, k, p)
			piv[k] = p
		}
		d := a.At(k, k)
		for i := k + 1; i < a.Rows; i++ {
			l := a.At(i, k) / d
			a.Set(i, k, l)
			for j := k + 1; j < a.Cols; j++ {
				a.Set(i, j, a.At(i, j)-l*a.At(k, j))
			}
		}
	}
	return nil
}

// swapRows exchanges two full rows.
func swapRows(a *matrix.Dense, r1, r2 int) {
	for j := 0; j < a.Cols; j++ {
		v := a.At(r1, j)
		a.Set(r1, j, a.At(r2, j))
		a.Set(r2, j, v)
	}
}

// trsmUnitLower solves L·X = B in place where L is *unit* lower
// triangular (diagonal implicitly 1, strictly-lower part stored).
func trsmUnitLower(L, B *matrix.Dense) {
	n := L.Rows
	for col := 0; col < B.Cols; col++ {
		for i := 0; i < n; i++ {
			s := B.At(i, col)
			for k := 0; k < i; k++ {
				s -= L.At(i, k) * B.At(k, col)
			}
			B.Set(i, col, s)
		}
	}
}

// Solve solves A·X = B using the factorization; B is overwritten with X.
func (f *LU) Solve(pool *sched.Pool, o core.Options, B *matrix.Dense) error {
	if B.Rows != f.LU.Rows {
		return fmt.Errorf("blas3: LU solve dimension %d vs %d", B.Rows, f.LU.Rows)
	}
	// Apply the pivots: B ← P·B.
	for i := 0; i < len(f.Piv); i++ {
		if f.Piv[i] != i {
			swapRows(B, i, f.Piv[i])
		}
	}
	// Forward solve with unit L, then backward with U (recursive TRSM
	// would need the unit-diagonal variant; at solve sizes the direct
	// substitutions are GEMM-free and fast enough).
	trsmUnitLower(f.LU, B)
	n := f.LU.Rows
	for col := 0; col < B.Cols; col++ {
		for i := n - 1; i >= 0; i-- {
			s := B.At(i, col)
			for k := i + 1; k < n; k++ {
				s -= f.LU.At(i, k) * B.At(k, col)
			}
			B.Set(i, col, s/f.LU.At(i, i))
		}
	}
	return nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := 1.0
	for i := 0; i < f.LU.Rows; i++ {
		d *= f.LU.At(i, i)
		if f.Piv[i] != i {
			d = -d
		}
	}
	return d
}
