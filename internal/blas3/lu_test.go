package blas3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// applyPiv returns P·A for the factorization's pivot sequence.
func applyPiv(f *LU, A *matrix.Dense) *matrix.Dense {
	p := A.Clone()
	for i := 0; i < len(f.Piv); i++ {
		if f.Piv[i] != i {
			swapRows(p, i, f.Piv[i])
		}
	}
	return p
}

// reconstruct computes L·U from the packed factorization.
func reconstruct(f *LU) *matrix.Dense {
	n := f.LU.Rows
	L := matrix.Identity(n)
	U := matrix.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i > j {
				L.Set(i, j, f.LU.At(i, j))
			} else {
				U.Set(i, j, f.LU.At(i, j))
			}
		}
	}
	lu := matrix.New(n, n)
	matrix.RefMulAdd(lu, L, U)
	return lu
}

func TestLUFactorsPA(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 16, 64, 100, 200} {
		A := matrix.Random(n, n, rng)
		f, err := Factor(pool, testOpts, A)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		pa := applyPiv(f, A)
		lu := reconstruct(f)
		if diff := matrix.MaxAbsDiff(lu, pa); diff > 1e-10*float64(n) {
			t.Errorf("n=%d: ‖L·U − P·A‖ = %g", n, diff)
		}
	}
}

func TestLUSolve(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(2))
	n := 150
	A := matrix.Random(n, n, rng)
	for i := 0; i < n; i++ {
		A.Set(i, i, A.At(i, i)+4) // diagonally dominant-ish: well conditioned
	}
	B := matrix.Random(n, 5, rng)
	f, err := Factor(pool, testOpts, A)
	if err != nil {
		t.Fatal(err)
	}
	X := B.Clone()
	if err := f.Solve(pool, testOpts, X); err != nil {
		t.Fatal(err)
	}
	res := B.Clone()
	matrix.RefGEMM(false, false, -1, A, X, 1, res)
	if res.MaxAbs() > 1e-9 {
		t.Fatalf("solve residual %g", res.MaxAbs())
	}
}

func TestLUPivotingHandlesZeroPivot(t *testing.T) {
	// A matrix whose (0,0) entry is zero requires a row interchange.
	pool := sched.NewPool(1)
	defer pool.Close()
	A := matrix.New(3, 3)
	vals := [3][3]float64{{0, 1, 2}, {3, 4, 5}, {6, 7, 9}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			A.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(pool, testOpts, A)
	if err != nil {
		t.Fatal(err)
	}
	pa := applyPiv(f, A)
	if !matrix.Equal(reconstruct(f), pa, 1e-12) {
		t.Fatal("pivoted factorization wrong")
	}
	// det = -(0·…) compute directly: det of vals is 0*(4*9-5*7) - 1*(27-30) + 2*(21-24) = 3 - 6 = -3.
	if math.Abs(f.Det()-(-3)) > 1e-12 {
		t.Fatalf("det = %g, want -3", f.Det())
	}
}

func TestLUSingularRejected(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	// Exactly singular: a zero column stays exactly zero through every
	// elimination update (L⁻¹·0 = 0 and A22 −= A21·0), so the pivot
	// search finds an exact zero. (A merely rank-deficient float matrix
	// would leave rounding-sized pivots instead — the same behavior as
	// LAPACK's getrf.)
	rng := rand.New(rand.NewSource(3))
	A := matrix.Random(70, 70, rng)
	for i := 0; i < 70; i++ {
		A.Set(i, 41, 0)
	}
	if _, err := Factor(pool, testOpts, A); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestLUNonSquareRejected(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	if _, err := Factor(pool, testOpts, matrix.New(3, 4)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestLUDetIdentityAndScaling(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	f, err := Factor(pool, testOpts, matrix.Identity(80))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-1) > 1e-12 {
		t.Fatalf("det(I) = %g", f.Det())
	}
	A := matrix.Identity(80)
	A.Set(0, 0, 5)
	A.Set(33, 33, -2)
	f, err = Factor(pool, testOpts, A)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-10)) > 1e-10 {
		t.Fatalf("det = %g, want -10", f.Det())
	}
}

func TestLUPropertyRandom(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		A := matrix.Random(n, n, rng)
		f, err := Factor(pool, testOpts, A)
		if err != nil {
			return true // singular by chance: fine
		}
		return matrix.Equal(reconstruct(f), applyPiv(f, A), 1e-9*float64(n))
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLULayoutIndependence(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(4))
	A := matrix.Random(130, 130, rng)
	var ref *matrix.Dense
	for _, cv := range []layout.Curve{layout.ColMajor, layout.ZMorton, layout.Hilbert} {
		o := core.Options{Curve: cv, Alg: core.Strassen}
		f, err := Factor(pool, o, A)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = f.LU
		} else if !matrix.Equal(f.LU, ref, 1e-9) {
			t.Errorf("%v: LU differs across layouts by %g", cv, matrix.MaxAbsDiff(f.LU, ref))
		}
	}
}
