// Package blas3 layers the rest of the Level 3 BLAS — and the recursive
// Cholesky factorization — on top of the paper's fast parallel matrix
// multiplication, following the observation the paper cites from the
// ATLAS project ("all of these routines can be implemented efficiently
// given a fast matrix multiplication routine") and Gustavson's recursive
// variable blocking for dense linear algebra.
//
// Every routine here is a quadrant recursion whose heavy lifting is a
// GEMM call executed over the configured recursive layout; the recursion
// bottoms out on a small canonical block solved directly. This is
// exactly the structure the paper's Section 6 positions as future
// consumers of recursive layouts.
package blas3

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// baseSize is the block size at which the recursions switch to direct
// (non-recursive) computation: small enough that the direct kernels stay
// in cache, large enough that GEMM calls dominate.
const baseSize = 64

// gemm is the bridge to the recursive multiplication core.
func gemm(pool *sched.Pool, o core.Options, transA, transB bool, alpha float64,
	A, B *matrix.Dense, beta float64, C *matrix.Dense) error {
	_, err := core.GEMM(pool, o, transA, transB, alpha, A, B, beta, C)
	return err
}

// SYRK computes C ← α·A·Aᵀ + β·C (trans == false) or C ← α·Aᵀ·A + β·C
// (trans == true), exploiting symmetry: only the products above the
// block diagonal are computed with GEMM, and the mirror blocks are
// copied. C must be square and is fully updated (both triangles).
//
// The diagonal base case gemm(trans, !trans, α, A, A, β, C) presents
// both operand slots as the same storage with opposite trans flags; the
// core driver detects this and serves the second operand by transposing
// the first pack inside the layout (Stats.PackReused), so each diagonal
// block pays one conversion, not two. The off-diagonal GEMMs draw their
// packed buffers from the core's recycling pool, as do Cholesky's and
// LU's — repeated factorizations allocate their tiled buffers once.
func SYRK(pool *sched.Pool, o core.Options, trans bool, alpha float64, A *matrix.Dense, beta float64, C *matrix.Dense) error {
	n := A.Rows
	if trans {
		n = A.Cols
	}
	if C.Rows != n || C.Cols != n {
		return fmt.Errorf("blas3: SYRK C is %dx%d, want %dx%d", C.Rows, C.Cols, n, n)
	}
	return syrk(pool, o, trans, alpha, A, beta, C)
}

func syrk(pool *sched.Pool, o core.Options, trans bool, alpha float64, A *matrix.Dense, beta float64, C *matrix.Dense) error {
	n := C.Rows
	if n <= baseSize {
		return gemm(pool, o, trans, !trans, alpha, A, A, beta, C)
	}
	h := n / 2
	// Split the "long" dimension of A into the two halves that generate
	// the block rows/columns of C.
	var a1, a2 *matrix.Dense
	if trans {
		a1 = A.View(0, 0, A.Rows, h)
		a2 = A.View(0, h, A.Rows, n-h)
	} else {
		a1 = A.View(0, 0, h, A.Cols)
		a2 = A.View(h, 0, n-h, A.Cols)
	}
	c11 := C.View(0, 0, h, h)
	c12 := C.View(0, h, h, n-h)
	c21 := C.View(h, 0, n-h, h)
	c22 := C.View(h, h, n-h, n-h)
	if err := syrk(pool, o, trans, alpha, a1, beta, c11); err != nil {
		return err
	}
	if err := syrk(pool, o, trans, alpha, a2, beta, c22); err != nil {
		return err
	}
	// C21 = α·A2·A1ᵀ + β·C21 (or the trans analogue); C12 mirrors it.
	if err := gemm(pool, o, trans, !trans, alpha, a2, a1, beta, c21); err != nil {
		return err
	}
	for i := 0; i < c21.Rows; i++ {
		for j := 0; j < c21.Cols; j++ {
			c12.Set(j, i, c21.At(i, j))
		}
	}
	return nil
}

// TRSM solves op(L)·X = α·B for X in place (X overwrites B), where L is
// lower triangular when upper == false and upper triangular otherwise.
// This is the left-side variant (side == 'L' in BLAS terms).
func TRSM(pool *sched.Pool, o core.Options, upper, transL bool, alpha float64, L, B *matrix.Dense) error {
	if L.Rows != L.Cols {
		return fmt.Errorf("blas3: TRSM triangular factor is %dx%d", L.Rows, L.Cols)
	}
	if L.Rows != B.Rows {
		return fmt.Errorf("blas3: TRSM dimensions %d vs %d", L.Rows, B.Rows)
	}
	B.Scale(alpha)
	return trsm(pool, o, upper, transL, L, B)
}

// trsm solves op(L)·X = B in place. Effective orientation: a lower
// factor accessed transposed behaves like an upper factor and vice
// versa.
func trsm(pool *sched.Pool, o core.Options, upper, transL bool, L, B *matrix.Dense) error {
	n := L.Rows
	if n <= baseSize {
		trsmBase(upper, transL, L, B)
		return nil
	}
	h := n / 2
	l11 := L.View(0, 0, h, h)
	l22 := L.View(h, h, n-h, n-h)
	b1 := B.View(0, 0, h, B.Cols)
	b2 := B.View(h, 0, n-h, B.Cols)
	// The off-diagonal block of op(L): for lower L it is L21 (acting
	// B2 -= L21·X1); for upper L it is L12; transposition swaps roles.
	effUpper := upper != transL
	if !effUpper {
		// Forward substitution: X1 first, eliminate, then X2.
		if err := trsm(pool, o, upper, transL, l11, b1); err != nil {
			return err
		}
		off := L.View(h, 0, n-h, h) // L21
		if upper {
			off = L.View(0, h, h, n-h) // L12, used transposed
		}
		if err := gemm(pool, o, transL, false, -1, off, b1, 1, b2); err != nil {
			return err
		}
		return trsm(pool, o, upper, transL, l22, b2)
	}
	// Backward substitution: X2 first.
	if err := trsm(pool, o, upper, transL, l22, b2); err != nil {
		return err
	}
	off := L.View(0, h, h, n-h) // L12
	if !upper {
		off = L.View(h, 0, n-h, h) // L21, used transposed
	}
	if err := gemm(pool, o, transL, false, -1, off, b2, 1, b1); err != nil {
		return err
	}
	return trsm(pool, o, upper, transL, l11, b1)
}

// trsmBase is the direct substitution on a small block.
func trsmBase(upper, transL bool, L, B *matrix.Dense) {
	n := L.Rows
	at := func(i, j int) float64 {
		if transL {
			return L.At(j, i)
		}
		return L.At(i, j)
	}
	effUpper := upper != transL
	for col := 0; col < B.Cols; col++ {
		if !effUpper {
			for i := 0; i < n; i++ {
				s := B.At(i, col)
				for k := 0; k < i; k++ {
					s -= at(i, k) * B.At(k, col)
				}
				B.Set(i, col, s/at(i, i))
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				s := B.At(i, col)
				for k := i + 1; k < n; k++ {
					s -= at(i, k) * B.At(k, col)
				}
				B.Set(i, col, s/at(i, i))
			}
		}
	}
}

// TRMM computes B ← α·op(L)·B in place for a triangular L (left side).
func TRMM(pool *sched.Pool, o core.Options, upper, transL bool, alpha float64, L, B *matrix.Dense) error {
	if L.Rows != L.Cols {
		return fmt.Errorf("blas3: TRMM triangular factor is %dx%d", L.Rows, L.Cols)
	}
	if L.Rows != B.Rows {
		return fmt.Errorf("blas3: TRMM dimensions %d vs %d", L.Rows, B.Rows)
	}
	if err := trmm(pool, o, upper, transL, L, B); err != nil {
		return err
	}
	B.Scale(alpha)
	return nil
}

func trmm(pool *sched.Pool, o core.Options, upper, transL bool, L, B *matrix.Dense) error {
	n := L.Rows
	if n <= baseSize {
		trmmBase(upper, transL, L, B)
		return nil
	}
	h := n / 2
	l11 := L.View(0, 0, h, h)
	l22 := L.View(h, h, n-h, n-h)
	b1 := B.View(0, 0, h, B.Cols)
	b2 := B.View(h, 0, n-h, B.Cols)
	effUpper := upper != transL
	if !effUpper {
		// Row block 2 consumes row block 1's ORIGINAL values, so
		// compute B2 first: B2 = L22·B2 + L21·B1.
		if err := trmm(pool, o, upper, transL, l22, b2); err != nil {
			return err
		}
		off := L.View(h, 0, n-h, h)
		if upper {
			off = L.View(0, h, h, n-h)
		}
		if err := gemm(pool, o, transL, false, 1, off, b1, 1, b2); err != nil {
			return err
		}
		return trmm(pool, o, upper, transL, l11, b1)
	}
	// Effective upper: B1 = L11·B1 + L12·B2, compute B1 first.
	if err := trmm(pool, o, upper, transL, l11, b1); err != nil {
		return err
	}
	off := L.View(0, h, h, n-h)
	if !upper {
		off = L.View(h, 0, n-h, h)
	}
	if err := gemm(pool, o, transL, false, 1, off, b2, 1, b1); err != nil {
		return err
	}
	return trmm(pool, o, upper, transL, l22, b2)
}

func trmmBase(upper, transL bool, L, B *matrix.Dense) {
	n := L.Rows
	at := func(i, j int) float64 {
		if transL {
			return L.At(j, i)
		}
		return L.At(i, j)
	}
	effUpper := upper != transL
	for col := 0; col < B.Cols; col++ {
		if !effUpper {
			for i := n - 1; i >= 0; i-- {
				s := 0.0
				for k := 0; k <= i; k++ {
					s += at(i, k) * B.At(k, col)
				}
				B.Set(i, col, s)
			}
		} else {
			for i := 0; i < n; i++ {
				s := 0.0
				for k := i; k < n; k++ {
					s += at(i, k) * B.At(k, col)
				}
				B.Set(i, col, s)
			}
		}
	}
}

// Cholesky factors a symmetric positive-definite A (only the lower
// triangle is read) into L·Lᵀ, returning lower-triangular L. This is
// Gustavson's recursive blocking: L11 = chol(A11); L21 = A21·L11⁻ᵀ
// (TRSM); A22 ← A22 − L21·L21ᵀ (SYRK); recurse on A22. Every flop
// beyond the base case flows through the recursive-layout GEMM.
func Cholesky(pool *sched.Pool, o core.Options, A *matrix.Dense) (*matrix.Dense, error) {
	if A.Rows != A.Cols {
		return nil, fmt.Errorf("blas3: Cholesky needs square input, got %dx%d", A.Rows, A.Cols)
	}
	L := matrix.New(A.Rows, A.Cols)
	// Work on a copy of the lower triangle.
	for j := 0; j < A.Cols; j++ {
		for i := j; i < A.Rows; i++ {
			L.Set(i, j, A.At(i, j))
		}
	}
	if err := chol(pool, o, L); err != nil {
		return nil, err
	}
	// Zero the strict upper triangle (scratch space during recursion).
	for j := 1; j < L.Cols; j++ {
		for i := 0; i < j; i++ {
			L.Set(i, j, 0)
		}
	}
	return L, nil
}

func chol(pool *sched.Pool, o core.Options, A *matrix.Dense) error {
	n := A.Rows
	if n <= baseSize {
		return cholBase(A)
	}
	h := n / 2
	a11 := A.View(0, 0, h, h)
	a21 := A.View(h, 0, n-h, h)
	a22 := A.View(h, h, n-h, n-h)
	if err := chol(pool, o, a11); err != nil {
		return err
	}
	// L21 = A21·L11⁻ᵀ: solve X·L11ᵀ = A21, i.e. L11·Xᵀ = A21ᵀ. Using
	// the left-side TRSM on the transpose costs one transposition each
	// way; acceptable at quadrant granularity.
	a21t := a21.Transpose()
	if err := trsm(pool, o, false, false, a11, a21t); err != nil {
		return err
	}
	for i := 0; i < a21.Rows; i++ {
		for j := 0; j < a21.Cols; j++ {
			a21.Set(i, j, a21t.At(j, i))
		}
	}
	// A22 ← A22 − L21·L21ᵀ (lower triangle suffices, but SYRK updates
	// the full block; the upper scratch is zeroed at the end).
	if err := syrk(pool, o, false, -1, a21, 1, a22); err != nil {
		return err
	}
	return chol(pool, o, a22)
}

// cholBase is the direct Cholesky–Crout factorization of a small block.
func cholBase(A *matrix.Dense) error {
	n := A.Rows
	for j := 0; j < n; j++ {
		d := A.At(j, j)
		for k := 0; k < j; k++ {
			d -= A.At(j, k) * A.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("blas3: matrix not positive definite (pivot %d: %g)", j, d)
		}
		d = math.Sqrt(d)
		A.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := A.At(i, j)
			for k := 0; k < j; k++ {
				s -= A.At(i, k) * A.At(j, k)
			}
			A.Set(i, j, s/d)
		}
	}
	return nil
}
