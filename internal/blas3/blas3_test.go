package blas3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/matrix"
	"repro/internal/sched"
)

var testOpts = core.Options{Curve: layout.ZMorton, Alg: core.Standard}

// spd builds a well-conditioned symmetric positive-definite matrix
// AᵀA + n·I.
func spd(n int, rng *rand.Rand) *matrix.Dense {
	a := matrix.Random(n, n, rng)
	s := matrix.New(n, n)
	matrix.RefGEMM(true, false, 1, a, a, 0, s)
	for i := 0; i < n; i++ {
		s.Set(i, i, s.At(i, i)+float64(n))
	}
	return s
}

// lowerTri builds a well-conditioned lower-triangular matrix.
func lowerTri(n int, rng *rand.Rand) *matrix.Dense {
	l := matrix.New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l.Set(i, j, rng.Float64()-0.5)
		}
		l.Set(j, j, 2+rng.Float64())
	}
	return l
}

func TestSYRKMatchesReference(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(1))
	for _, trans := range []bool{false, true} {
		for _, n := range []int{5, 64, 100, 150} {
			k := 37
			var A *matrix.Dense
			if trans {
				A = matrix.Random(k, n, rng)
			} else {
				A = matrix.Random(n, k, rng)
			}
			C := matrix.Random(n, n, rng)
			// Symmetrize C so the mirrored copy is consistent with beta.
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					C.Set(j, i, C.At(i, j))
				}
			}
			want := C.Clone()
			matrix.RefGEMM(trans, !trans, 1.5, A, A, -0.5, want)
			if err := SYRK(pool, testOpts, trans, 1.5, A, -0.5, C); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(C, want, 1e-11) {
				t.Errorf("trans=%v n=%d: SYRK wrong (max diff %g)", trans, n, matrix.MaxAbsDiff(C, want))
			}
		}
	}
}

func TestSYRKResultSymmetric(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(2))
	A := matrix.Random(130, 40, rng)
	C := matrix.New(130, 130)
	if err := SYRK(pool, testOpts, false, 1, A, 0, C); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(C, C.Transpose(), 1e-12) {
		t.Fatal("SYRK result not symmetric")
	}
}

func TestTRSMSolves(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(3))
	for _, upper := range []bool{false, true} {
		for _, transL := range []bool{false, true} {
			for _, n := range []int{7, 64, 130, 200} {
				L := lowerTri(n, rng)
				if upper {
					L = L.Transpose()
				}
				B := matrix.Random(n, 23, rng)
				X := B.Clone()
				if err := TRSM(pool, testOpts, upper, transL, 2, L, X); err != nil {
					t.Fatal(err)
				}
				// Verify op(L)·X == 2·B.
				check := matrix.New(n, 23)
				matrix.RefGEMM(transL, false, 1, L, X, 0, check)
				want := B.Clone()
				want.Scale(2)
				if !matrix.Equal(check, want, 1e-9) {
					t.Errorf("upper=%v trans=%v n=%d: residual %g",
						upper, transL, n, matrix.MaxAbsDiff(check, want))
				}
			}
		}
	}
}

func TestTRMMMatchesReference(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(4))
	for _, upper := range []bool{false, true} {
		for _, transL := range []bool{false, true} {
			for _, n := range []int{9, 64, 140} {
				full := lowerTri(n, rng)
				if upper {
					full = full.Transpose()
				}
				B := matrix.Random(n, 17, rng)
				got := B.Clone()
				if err := TRMM(pool, testOpts, upper, transL, -1, full, got); err != nil {
					t.Fatal(err)
				}
				want := matrix.New(n, 17)
				matrix.RefGEMM(transL, false, -1, full, B, 0, want)
				if !matrix.Equal(got, want, 1e-10) {
					t.Errorf("upper=%v trans=%v n=%d: TRMM wrong (max diff %g)",
						upper, transL, n, matrix.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

func TestTRMMTRSMInverse(t *testing.T) {
	// TRSM must invert TRMM: X = L⁻¹·(L·B) == B.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(5))
	n := 150
	L := lowerTri(n, rng)
	B := matrix.Random(n, 11, rng)
	X := B.Clone()
	if err := TRMM(pool, testOpts, false, false, 1, L, X); err != nil {
		t.Fatal(err)
	}
	if err := TRSM(pool, testOpts, false, false, 1, L, X); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(X, B, 1e-10) {
		t.Fatalf("TRSM∘TRMM != id (max diff %g)", matrix.MaxAbsDiff(X, B))
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{4, 64, 100, 200} {
		A := spd(n, rng)
		L, err := Cholesky(pool, testOpts, A)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// L must be lower triangular with positive diagonal.
		for j := 0; j < n; j++ {
			if L.At(j, j) <= 0 {
				t.Fatalf("n=%d: non-positive diagonal at %d", n, j)
			}
			for i := 0; i < j; i++ {
				if L.At(i, j) != 0 {
					t.Fatalf("n=%d: upper triangle not zero at (%d,%d)", n, i, j)
				}
			}
		}
		// L·Lᵀ must reconstruct A.
		rec := matrix.New(n, n)
		matrix.RefGEMM(false, true, 1, L, L, 0, rec)
		if diff := matrix.MaxAbsDiff(rec, A); diff > 1e-9*float64(n) {
			t.Errorf("n=%d: ‖L·Lᵀ − A‖ = %g", n, diff)
		}
	}
}

func TestCholeskyOnlyReadsLowerTriangle(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	rng := rand.New(rand.NewSource(7))
	A := spd(96, rng)
	// Poison the strict upper triangle: the factorization must ignore it.
	for j := 1; j < 96; j++ {
		for i := 0; i < j; i++ {
			A.Set(i, j, math.NaN())
		}
	}
	L, err := Cholesky(pool, testOpts, A)
	if err != nil {
		t.Fatal(err)
	}
	if L.HasNaN() {
		t.Fatal("Cholesky read the upper triangle")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	A := matrix.Identity(80)
	A.Set(40, 40, -1)
	if _, err := Cholesky(pool, testOpts, A); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestCholeskySolveSystem(t *testing.T) {
	// End-to-end: solve A·x = b via Cholesky + two triangular solves.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(8))
	n := 150
	A := spd(n, rng)
	b := matrix.Random(n, 3, rng)
	L, err := Cholesky(pool, testOpts, A)
	if err != nil {
		t.Fatal(err)
	}
	x := b.Clone()
	if err := TRSM(pool, testOpts, false, false, 1, L, x); err != nil { // L·y = b
		t.Fatal(err)
	}
	if err := TRSM(pool, testOpts, false, true, 1, L, x); err != nil { // Lᵀ·x = y
		t.Fatal(err)
	}
	// Residual check: A·x ≈ b.
	res := b.Clone()
	matrix.RefGEMM(false, false, -1, A, x, 1, res)
	if res.MaxAbs() > 1e-8 {
		t.Fatalf("solve residual %g", res.MaxAbs())
	}
}

func TestShapeValidation(t *testing.T) {
	pool := sched.NewPool(1)
	defer pool.Close()
	if err := SYRK(pool, testOpts, false, 1, matrix.New(4, 2), 0, matrix.New(3, 3)); err == nil {
		t.Error("SYRK shape mismatch accepted")
	}
	if err := TRSM(pool, testOpts, false, false, 1, matrix.New(4, 3), matrix.New(4, 2)); err == nil {
		t.Error("TRSM non-square factor accepted")
	}
	if err := TRMM(pool, testOpts, false, false, 1, matrix.New(4, 4), matrix.New(5, 2)); err == nil {
		t.Error("TRMM dimension mismatch accepted")
	}
	if _, err := Cholesky(pool, testOpts, matrix.New(4, 5)); err == nil {
		t.Error("Cholesky non-square accepted")
	}
}

func TestLayoutIndependence(t *testing.T) {
	// The BLAS-3 layer must produce identical results over every layout
	// the multiply supports.
	pool := sched.NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(9))
	A := spd(130, rng)
	var ref *matrix.Dense
	for _, cv := range []layout.Curve{layout.ColMajor, layout.ZMorton, layout.GrayMorton, layout.Hilbert} {
		o := core.Options{Curve: cv, Alg: core.Strassen}
		L, err := Cholesky(pool, o, A)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = L
		} else if !matrix.Equal(L, ref, 1e-9) {
			t.Errorf("%v: Cholesky differs across layouts by %g", cv, matrix.MaxAbsDiff(L, ref))
		}
	}
}

func TestTRSMProperty(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		cols := 1 + rng.Intn(8)
		L := lowerTri(n, rng)
		B := matrix.Random(n, cols, rng)
		X := B.Clone()
		if err := TRSM(pool, testOpts, false, false, 1, L, X); err != nil {
			return false
		}
		check := matrix.New(n, cols)
		matrix.RefGEMM(false, false, 1, L, X, 0, check)
		return matrix.Equal(check, B, 1e-8)
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCholesky256(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	rng := rand.New(rand.NewSource(1))
	A := spd(256, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(pool, testOpts, A); err != nil {
			b.Fatal(err)
		}
	}
}
