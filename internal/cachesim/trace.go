package cachesim

import (
	"repro/internal/layout"
)

// MatrixAddr computes element byte addresses for one matrix under a
// layout: canonical column-major with a leading dimension, or the tiled
// recursive layout of equation (3).
type MatrixAddr struct {
	Base uint64
	// LD > 0 selects canonical column-major storage with this leading
	// dimension; LD == 0 selects tiled recursive storage.
	LD int
	// Tiled parameters (LD == 0).
	Curve  layout.Curve
	D      uint
	TR, TC int
}

// Addr returns the byte address of element (i, j).
func (m MatrixAddr) Addr(i, j int) uint64 {
	if m.LD > 0 {
		return m.Base + uint64(j*m.LD+i)*8
	}
	s := m.Curve.S(uint32(i/m.TR), uint32(j/m.TC), m.D)
	off := int(s)*m.TR*m.TC + (j%m.TC)*m.TR + i%m.TR
	return m.Base + uint64(off)*8
}

// Result summarizes one simulated run.
type Result struct {
	L1, L2, TLB Stats
	Accesses    uint64
}

// MatmulSim describes one simulated standard-algorithm matrix
// multiplication: n×n matrices of t×t tiles under a layout, executed by
// Procs processors that each own one top-level C quadrant subtree (the
// work division the parallel recursion produces).
type MatmulSim struct {
	N, T  int
	Curve layout.Curve // ColMajor = canonical baseline
	Procs int
	Cfg   Config
}

// pageAlign rounds a size up to a page boundary so the three matrices
// start on distinct pages, as separate allocations would.
func pageAlign(bytes uint64, page int) uint64 {
	p := uint64(page)
	return (bytes + p - 1) / p * p
}

// addresser builds the MatrixAddr for one operand at base.
func (ms MatmulSim) addresser(base uint64, d uint) MatrixAddr {
	if ms.Curve == layout.ColMajor || ms.Curve == layout.RowMajor {
		return MatrixAddr{Base: base, LD: ms.N}
	}
	return MatrixAddr{Base: base, Curve: ms.Curve, D: d, TR: ms.T, TC: ms.T}
}

// Run drives the full leaf-level address stream of the standard
// algorithm through a fresh simulated system and returns the aggregate
// statistics. The leaf order and the per-processor assignment follow
// the recursive control structure: tile products execute in Z-order of
// (ti, tj) with the k-tiles innermost, and the processor owning a
// product is the top-level quadrant of its C tile, so quadrant borders
// exhibit exactly the sharing the real parallel execution would.
func (ms MatmulSim) Run() Result {
	if ms.N%ms.T != 0 {
		panic("cachesim: N must be a multiple of T")
	}
	tiles := ms.N / ms.T
	d := uint(0)
	for 1<<d < tiles {
		d++
	}
	if 1<<d != tiles {
		panic("cachesim: N/T must be a power of two")
	}
	procs := ms.Procs
	if procs <= 0 {
		procs = 1
	}
	sys := NewSystem(procs, ms.Cfg)

	bytes := pageAlign(uint64(ms.N)*uint64(ms.N)*8, ms.Cfg.PageSize)
	a := ms.addresser(0x0, d)
	b := ms.addresser(bytes, d)
	c := ms.addresser(2*bytes, d)

	// Processor assignment: owner of the top-level C quadrant.
	owner := func(ti, tj int) int {
		if d == 0 || procs == 1 {
			return 0
		}
		q := (ti>>(d-1))<<1 | tj>>(d-1)
		return q % procs
	}

	var accesses uint64
	for s := 0; s < tiles*tiles; s++ {
		ti, tj := layout.ZMorton.SInverse(uint64(s), d)
		p := owner(int(ti), int(tj))
		i0, j0 := int(ti)*ms.T, int(tj)*ms.T
		for tk := 0; tk < tiles; tk++ {
			k0 := tk * ms.T
			// Leaf kernel access pattern (j, i, k) as in Unrolled4.
			for j := 0; j < ms.T; j++ {
				for i := 0; i < ms.T; i++ {
					for k := 0; k < ms.T; k++ {
						sys.Access(p, a.Addr(i0+i, k0+k), false)
						sys.Access(p, b.Addr(k0+k, j0+j), false)
						accesses += 2
					}
					sys.Access(p, c.Addr(i0+i, j0+j), false)
					sys.Access(p, c.Addr(i0+i, j0+j), true)
					accesses += 2
				}
			}
		}
	}
	l1, l2, tlb := sys.Totals()
	return Result{L1: l1, L2: l2, TLB: tlb, Accesses: accesses}
}

// LeafSim measures a single repeated leaf product — the Lam/Rothberg/
// Wolf self-interference scenario (Section 1): one t×t tile of a matrix
// with leading dimension ld, accessed repeatedly. For a contiguous tile
// (ld == t) there are no self-interference misses once the tile is
// resident; for a tile embedded in a large canonical matrix (ld == n)
// the tile's columns can conflict with each other in a direct-mapped
// cache, depending sensitively on n.
type LeafSim struct {
	T, LD   int
	Repeats int
	Cfg     Config
}

// Run returns the statistics of the repeated tile walk.
func (ls LeafSim) Run() Result {
	sys := NewSystem(1, ls.Cfg)
	m := MatrixAddr{Base: 0, LD: ls.LD}
	var accesses uint64
	for r := 0; r < ls.Repeats; r++ {
		for j := 0; j < ls.T; j++ {
			for i := 0; i < ls.T; i++ {
				sys.Access(0, m.Addr(i, j), false)
				accesses++
			}
		}
	}
	l1, l2, tlb := sys.Totals()
	return Result{L1: l1, L2: l2, TLB: tlb, Accesses: accesses}
}

// AdditionSim measures the streaming quadrant additions of the fast
// algorithms under a layout: dst = src1 + src2 over one quadrant. Under
// recursive layouts all three regions are contiguous streams; under the
// canonical layout each is a strided column walk of a (n/2)×(n/2)
// quadrant inside an n×n matrix.
type AdditionSim struct {
	N     int // full matrix extent
	T     int
	Curve layout.Curve
	Cfg   Config
}

// Run streams one NW-quadrant addition and returns the statistics.
func (as AdditionSim) Run() Result {
	tiles := as.N / as.T
	d := uint(0)
	for 1<<d < tiles {
		d++
	}
	sys := NewSystem(1, as.Cfg)
	bytes := pageAlign(uint64(as.N)*uint64(as.N)*8, as.Cfg.PageSize)
	ms := MatmulSim{N: as.N, T: as.T, Curve: as.Curve}
	a := ms.addresser(0, d)
	b := ms.addresser(bytes, d)
	c := ms.addresser(2*bytes, d)
	half := as.N / 2
	var accesses uint64
	for j := 0; j < half; j++ {
		for i := 0; i < half; i++ {
			sys.Access(0, a.Addr(i, j), false)
			sys.Access(0, b.Addr(i+half, j+half), false)
			sys.Access(0, c.Addr(i, j), true)
			accesses += 3
		}
	}
	l1, l2, tlb := sys.Totals()
	return Result{L1: l1, L2: l2, TLB: tlb, Accesses: accesses}
}

// RowWalkSim measures the dilation effect of Section 3 on the TLB: a
// row-major walk over a column-major matrix touches a new page every
// element once the column stride exceeds the page size, while the
// recursive layouts keep most row-neighbors within the same tile and
// page. This is the paper's "reducing the effectiveness of translation
// lookaside buffers (TLBs) for large matrix sizes".
type RowWalkSim struct {
	N     int
	T     int
	Curve layout.Curve
	Rows  int // how many leading rows to walk
	Cfg   Config
}

// Run walks the first Rows rows element by element and returns the
// statistics.
func (rw RowWalkSim) Run() Result {
	tiles := rw.N / rw.T
	d := uint(0)
	for 1<<d < tiles {
		d++
	}
	sys := NewSystem(1, rw.Cfg)
	ms := MatmulSim{N: rw.N, T: rw.T, Curve: rw.Curve}
	m := ms.addresser(0, d)
	var accesses uint64
	for i := 0; i < rw.Rows; i++ {
		for j := 0; j < rw.N; j++ {
			sys.Access(0, m.Addr(i, j), false)
			accesses++
		}
	}
	l1, l2, tlb := sys.Totals()
	return Result{L1: l1, L2: l2, TLB: tlb, Accesses: accesses}
}
