// Package cachesim is a software model of the memory system the paper's
// experiments ran on. The paper measures execution time on a real Sun
// Enterprise 3000 and *infers* memory-system causes — interference
// misses from canonical layouts, false sharing between processors
// writing the same cache block, TLB pressure from dilated access
// patterns (Sections 1, 3, 5). We cannot reproduce the hardware, so this
// package reproduces the causes directly: it simulates set-associative
// write-back caches, a TLB, and an invalidation-based coherence protocol
// with word-granularity false-sharing classification, driven by the
// exact address streams the layout functions generate.
//
// The default geometry mirrors the UltraSPARC I machine of Section 5:
// 16 KB direct-mapped L1 data cache with 32-byte blocks, 512 KB
// direct-mapped external cache with 64-byte blocks, and a 64-entry TLB
// over 8 KB pages.
package cachesim

import "fmt"

// Stats counts the events of one cache or TLB.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	// Invalidations counts coherence invalidations received; a subset
	// of them are classified as false sharing.
	Invalidations      uint64
	FalseInvalidations uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set access counter snapshot; the smallest value is
	// the least recently used way.
	lru uint64
}

// Cache is one level of a set-associative write-back, write-allocate
// cache with LRU replacement. Misses propagate to the next level when
// one is attached.
type Cache struct {
	Name      string
	sets      int
	ways      int
	blockBits uint
	lines     []line // sets × ways
	clock     uint64
	next      *Cache
	Stats     Stats
}

// NewCache builds a cache of the given total size, associativity, and
// block size (all in bytes; size and block must be powers of two).
func NewCache(name string, size, ways, block int, next *Cache) *Cache {
	if size <= 0 || ways <= 0 || block <= 0 || size%(ways*block) != 0 {
		panic(fmt.Sprintf("cachesim: bad geometry size=%d ways=%d block=%d", size, ways, block))
	}
	sets := size / (ways * block)
	if sets&(sets-1) != 0 || block&(block-1) != 0 {
		panic("cachesim: sets and block size must be powers of two")
	}
	bb := uint(0)
	for b := block; b > 1; b >>= 1 {
		bb++
	}
	return &Cache{
		Name:      name,
		sets:      sets,
		ways:      ways,
		blockBits: bb,
		lines:     make([]line, sets*ways),
		next:      next,
	}
}

// BlockBytes returns the cache's block size in bytes.
func (c *Cache) BlockBytes() int { return 1 << c.blockBits }

// set returns the slice of ways for an address's set.
func (c *Cache) set(block uint64) []line {
	s := int(block) & (c.sets - 1)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Access simulates one load or store of a byte address. It returns true
// on hit (at this level).
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	c.Stats.Accesses++
	block := addr >> c.blockBits
	ways := c.set(block)
	for i := range ways {
		if ways[i].valid && ways[i].tag == block {
			ways[i].lru = c.clock
			if write {
				ways[i].dirty = true
			}
			return true
		}
	}
	c.Stats.Misses++
	if c.next != nil {
		c.next.Access(addr, write)
	}
	// Choose a victim: invalid way first, else LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	if ways[victim].valid {
		c.Stats.Evictions++
		if ways[victim].dirty {
			c.Stats.Writebacks++
		}
	}
	ways[victim] = line{tag: block, valid: true, dirty: write, lru: c.clock}
	return false
}

// Invalidate drops a block if present, returning whether it was held.
func (c *Cache) Invalidate(block uint64) bool {
	ways := c.set(block)
	for i := range ways {
		if ways[i].valid && ways[i].tag == block {
			ways[i].valid = false
			return true
		}
	}
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.Stats = Stats{}
}

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement over fixed-size pages.
type TLB struct {
	entries  int
	pageBits uint
	pages    []line
	clock    uint64
	Stats    Stats
}

// NewTLB builds a TLB with the given entry count and page size in bytes
// (a power of two).
func NewTLB(entries, pageSize int) *TLB {
	if entries <= 0 || pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic("cachesim: bad TLB geometry")
	}
	pb := uint(0)
	for p := pageSize; p > 1; p >>= 1 {
		pb++
	}
	return &TLB{entries: entries, pageBits: pb, pages: make([]line, entries)}
}

// Access simulates one translation; returns true on hit.
func (t *TLB) Access(addr uint64) bool {
	t.clock++
	t.Stats.Accesses++
	page := addr >> t.pageBits
	victim := 0
	for i := range t.pages {
		if t.pages[i].valid && t.pages[i].tag == page {
			t.pages[i].lru = t.clock
			return true
		}
		if !t.pages[i].valid {
			victim = i
		} else if t.pages[victim].valid && t.pages[i].lru < t.pages[victim].lru {
			victim = i
		}
	}
	t.Stats.Misses++
	if t.pages[victim].valid {
		t.Stats.Evictions++
	}
	t.pages[victim] = line{tag: page, valid: true, lru: t.clock}
	return false
}

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	for i := range t.pages {
		t.pages[i] = line{}
	}
	t.clock = 0
	t.Stats = Stats{}
}
