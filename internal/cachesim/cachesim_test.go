package cachesim

import (
	"testing"

	"repro/internal/layout"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("L1", 1024, 2, 32, nil)
	if c.Access(0x100, false) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x100, false) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x11F, false) {
		t.Fatal("same-block access should hit")
	}
	if c.Access(0x120, false) {
		t.Fatal("next block should miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheDirectMappedConflict(t *testing.T) {
	// 1 KB direct-mapped, 32 B blocks → 32 sets; addresses 1 KB apart
	// conflict. Alternating between them must miss every time.
	c := NewCache("L1", 1024, 1, 32, nil)
	for i := 0; i < 10; i++ {
		c.Access(0x0, false)
		c.Access(0x400, false)
	}
	if c.Stats.Misses != 20 {
		t.Fatalf("conflict misses = %d, want 20", c.Stats.Misses)
	}
	// Two-way associativity eliminates the conflict.
	c2 := NewCache("L1", 1024, 2, 32, nil)
	for i := 0; i < 10; i++ {
		c2.Access(0x0, false)
		c2.Access(0x400, false)
	}
	if c2.Stats.Misses != 2 {
		t.Fatalf("2-way misses = %d, want 2", c2.Stats.Misses)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way: touch A, B, re-touch A, then C (evicts B, the LRU).
	c := NewCache("L1", 64, 2, 32, nil) // 1 set, 2 ways
	c.Access(0x000, false)              // A
	c.Access(0x100, false)              // B
	c.Access(0x000, false)              // A again
	c.Access(0x200, false)              // C evicts B
	if !c.Access(0x000, false) {
		t.Fatal("A should still be resident")
	}
	if c.Access(0x100, false) {
		t.Fatal("B should have been evicted")
	}
}

func TestCacheWritebackCounting(t *testing.T) {
	c := NewCache("L1", 64, 1, 32, nil) // 2 sets
	c.Access(0x00, true)                // dirty block in set 0
	c.Access(0x40, false)               // set 0 conflict evicts dirty block
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	c.Access(0x80, false) // clean eviction
	if c.Stats.Writebacks != 1 {
		t.Fatalf("clean eviction should not write back")
	}
	if c.Stats.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", c.Stats.Evictions)
	}
}

func TestCacheMissPropagatesToNextLevel(t *testing.T) {
	l2 := NewCache("L2", 4096, 1, 64, nil)
	l1 := NewCache("L1", 256, 1, 32, l2)
	l1.Access(0x0, false)
	if l2.Stats.Accesses != 1 {
		t.Fatal("L1 miss did not reach L2")
	}
	l1.Access(0x0, false) // L1 hit: L2 untouched
	if l2.Stats.Accesses != 1 {
		t.Fatal("L1 hit leaked to L2")
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(2, 1024)
	tlb.Access(0x0000)
	tlb.Access(0x0400)
	if !tlb.Access(0x0001) || !tlb.Access(0x0401) {
		t.Fatal("resident pages should hit")
	}
	tlb.Access(0x0800) // evicts LRU (page 0)
	if tlb.Access(0x0002) {
		t.Fatal("page 0 should have been evicted")
	}
	if tlb.Stats.Misses != 4 {
		t.Fatalf("TLB misses = %d, want 4", tlb.Stats.Misses)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"cache-bad-size":  func() { NewCache("x", 1000, 1, 32, nil) },
		"cache-bad-block": func() { NewCache("x", 1024, 1, 33, nil) },
		"tlb-bad-page":    func() { NewTLB(4, 1000) },
		"system-zero":     func() { NewSystem(0, Small) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFalseSharingDetection(t *testing.T) {
	sys := NewSystem(2, Small)
	// P0 and P1 touch different words of the same 32-byte block.
	sys.Access(0, 0x00, false) // P0 reads word 0
	sys.Access(1, 0x08, false) // P1 reads word 1
	sys.Access(0, 0x00, true)  // P0 writes word 0 → invalidates P1: false sharing
	p1 := sys.Procs[1].L1.Stats
	if p1.Invalidations != 1 || p1.FalseInvalidations != 1 {
		t.Fatalf("P1 stats = %+v, want 1 false invalidation", p1)
	}
	// Now true sharing: P1 reads the word P0 writes.
	sys.Reset()
	sys.Access(1, 0x00, false)
	sys.Access(0, 0x00, true)
	p1 = sys.Procs[1].L1.Stats
	if p1.Invalidations != 1 || p1.FalseInvalidations != 0 {
		t.Fatalf("P1 stats = %+v, want 1 true invalidation", p1)
	}
}

func TestInvalidationCausesRemiss(t *testing.T) {
	sys := NewSystem(2, Small)
	sys.Access(1, 0x00, false)
	sys.Access(0, 0x08, true) // invalidate P1
	sys.Access(1, 0x00, false)
	if sys.Procs[1].L1.Stats.Misses != 2 {
		t.Fatalf("P1 misses = %d, want 2 (cold + coherence)", sys.Procs[1].L1.Stats.Misses)
	}
}

func TestMatrixAddrCanonicalVsTiled(t *testing.T) {
	can := MatrixAddr{Base: 0, LD: 8}
	if can.Addr(3, 2) != (2*8+3)*8 {
		t.Fatal("canonical addressing wrong")
	}
	til := MatrixAddr{Base: 0, Curve: layout.ZMorton, D: 1, TR: 4, TC: 4}
	// Element (5, 1) is in tile (1, 0): Z position 2; offset (1,1) in tile.
	want := uint64(2*16+1*4+1) * 8
	if til.Addr(5, 1) != want {
		t.Fatalf("tiled addressing = %d, want %d", til.Addr(5, 1), want)
	}
}

func TestLeafSimContiguousVsStrided(t *testing.T) {
	// A 16×16 tile walked repeatedly: contiguous (ld=16) fits the small
	// L1 with no further misses; embedded at ld=512 (columns 4 KB apart
	// = exactly the L1 size) every column conflicts in a direct-mapped
	// cache, so misses keep accruing. This is the Lam et al. result the
	// paper builds on.
	cont := LeafSim{T: 16, LD: 16, Repeats: 10, Cfg: Small}.Run()
	strided := LeafSim{T: 16, LD: 512, Repeats: 10, Cfg: Small}.Run()
	if cont.L1.Misses > 16*16/4+8 {
		t.Fatalf("contiguous tile misses = %d, want ~cold only", cont.L1.Misses)
	}
	if strided.L1.Misses < 10*cont.L1.Misses {
		t.Fatalf("strided tile misses = %d, not dominated by self-interference (contiguous %d)",
			strided.L1.Misses, cont.L1.Misses)
	}
}

func TestMatmulSimLayoutsAgreeOnAccessCount(t *testing.T) {
	base := MatmulSim{N: 32, T: 8, Curve: layout.ColMajor, Procs: 1, Cfg: Small}.Run()
	rec := MatmulSim{N: 32, T: 8, Curve: layout.ZMorton, Procs: 1, Cfg: Small}.Run()
	if base.Accesses != rec.Accesses {
		t.Fatalf("access counts differ: %d vs %d", base.Accesses, rec.Accesses)
	}
	if base.Accesses == 0 || base.L1.Misses == 0 {
		t.Fatal("simulation produced no activity")
	}
}

func TestMatmulSimRecursiveReducesMisses(t *testing.T) {
	// The paper's central memory-system claim, in miss counts: at a
	// pathological power-of-two size, the recursive layout suffers
	// fewer L1 misses than the canonical one.
	can := MatmulSim{N: 128, T: 16, Curve: layout.ColMajor, Procs: 1, Cfg: Small}.Run()
	rec := MatmulSim{N: 128, T: 16, Curve: layout.ZMorton, Procs: 1, Cfg: Small}.Run()
	if rec.L1.Misses >= can.L1.Misses {
		t.Errorf("Z-Morton misses %d not below canonical %d", rec.L1.Misses, can.L1.Misses)
	}
}

func TestMatmulSimFalseSharing(t *testing.T) {
	// With 4 processors each owning a C quadrant, the canonical layout
	// shares cache blocks across the row boundary whenever the quadrant
	// height is not a multiple of the block's word count (N=60 → halves
	// of 30 rows, blocks of 4 words); the recursive layout keeps each
	// quadrant contiguous, so at most the single straddling block at a
	// quadrant seam can be falsely shared. Note that an aligned size
	// like N=64 shows no false sharing under either layout — alignment,
	// not layout, hides it there, which is exactly the size-sensitivity
	// the paper's Section 3 describes.
	can := MatmulSim{N: 60, T: 15, Curve: layout.ColMajor, Procs: 4, Cfg: Small}.Run()
	rec := MatmulSim{N: 60, T: 15, Curve: layout.ZMorton, Procs: 4, Cfg: Small}.Run()
	if can.L1.FalseInvalidations == 0 {
		t.Error("canonical layout shows no false sharing; expected some at quadrant borders")
	}
	if rec.L1.FalseInvalidations > can.L1.FalseInvalidations/4 {
		t.Errorf("recursive layout false invalidations %d not ≪ canonical %d",
			rec.L1.FalseInvalidations, can.L1.FalseInvalidations)
	}
}

func TestAdditionSimStreamsBetter(t *testing.T) {
	// Quadrant additions stream contiguously under recursive layouts;
	// under the canonical layout the quadrant is a strided walk. The
	// TLB (tiny in the Small config) should show the difference.
	can := AdditionSim{N: 128, T: 16, Curve: layout.ColMajor, Cfg: Small}.Run()
	rec := AdditionSim{N: 128, T: 16, Curve: layout.ZMorton, Cfg: Small}.Run()
	if rec.TLB.Misses > can.TLB.Misses {
		t.Errorf("recursive addition TLB misses %d exceed canonical %d", rec.TLB.Misses, can.TLB.Misses)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty stats should have zero miss rate")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Fatalf("miss rate = %g", s.MissRate())
	}
}

func TestSystemReset(t *testing.T) {
	sys := NewSystem(2, Small)
	sys.Access(0, 0x0, true)
	sys.Access(1, 0x0, false)
	sys.Reset()
	l1, _, tlb := sys.Totals()
	if l1.Accesses != 0 || tlb.Accesses != 0 {
		t.Fatal("reset did not clear stats")
	}
	if !func() bool { sys.Access(0, 0x0, false); return sys.Procs[0].L1.Stats.Misses == 1 }() {
		t.Fatal("reset did not clear contents")
	}
}

func BenchmarkSystemAccess(b *testing.B) {
	sys := NewSystem(1, UltraSPARC)
	for i := 0; i < b.N; i++ {
		sys.Access(0, uint64(i*64)&0xFFFFF, i&7 == 0)
	}
}

func TestRowWalkTLBDilation(t *testing.T) {
	// A row walk across a large column-major matrix touches one page per
	// element (column stride ≥ page size); the recursive layout keeps
	// row neighbors in the same tile, so TLB misses drop by orders of
	// magnitude. Small config: 1 KB pages, 16-entry TLB; n=512 columns
	// are 4 KB apart.
	can := RowWalkSim{N: 512, T: 16, Curve: layout.ColMajor, Rows: 4, Cfg: Small}.Run()
	rec := RowWalkSim{N: 512, T: 16, Curve: layout.ZMorton, Rows: 4, Cfg: Small}.Run()
	if can.TLB.Misses < uint64(4*512/2) {
		t.Fatalf("canonical row walk TLB misses = %d, expected near one per element", can.TLB.Misses)
	}
	if rec.TLB.Misses*8 > can.TLB.Misses {
		t.Fatalf("recursive TLB misses %d not ≪ canonical %d", rec.TLB.Misses, can.TLB.Misses)
	}
}
