package cachesim

import "fmt"

// Config describes one processor's memory hierarchy. The default mirrors
// the paper's UltraSPARC I nodes.
type Config struct {
	L1Size, L1Ways, L1Block int
	L2Size, L2Ways, L2Block int // L2Size == 0 disables the second level
	TLBEntries, PageSize    int
	// Coherence block size for false-sharing accounting; normally the
	// L1 block size.
	CoherenceBlock int
}

// UltraSPARC is the machine of Section 5: 16 KB direct-mapped L1 data
// cache with 32 B lines, 512 KB direct-mapped external cache with 64 B
// lines, 64-entry TLB over 8 KB pages.
var UltraSPARC = Config{
	L1Size: 16 << 10, L1Ways: 1, L1Block: 32,
	L2Size: 512 << 10, L2Ways: 1, L2Block: 64,
	TLBEntries: 64, PageSize: 8 << 10,
	CoherenceBlock: 32,
}

// Small is a scaled-down hierarchy for simulating small problem sizes in
// reasonable time while preserving the capacity ratios that produce the
// paper's interference effects.
var Small = Config{
	L1Size: 4 << 10, L1Ways: 1, L1Block: 32,
	L2Size: 64 << 10, L2Ways: 1, L2Block: 64,
	TLBEntries: 16, PageSize: 1 << 10,
	CoherenceBlock: 32,
}

// Proc is one simulated processor: private L1 (and optional L2) plus a
// private TLB.
type Proc struct {
	L1  *Cache
	L2  *Cache
	TLB *TLB
}

// sharer tracks, for one coherence block, which words each processor
// has touched since it last (re-)acquired the block, so that an
// invalidation can be classified as true or false sharing.
type sharer struct {
	present uint64            // bitmap of processors holding the block
	words   map[int]uint64    // proc -> bitmap of words touched
}

// System is a bus of processors with private caches kept coherent by a
// write-invalidate protocol. It classifies each invalidation as true
// sharing (the invalidated processor had touched the written word) or
// false sharing (it had only touched other words of the block) — the
// effect Section 3 blames canonical layouts for.
type System struct {
	Cfg   Config
	Procs []*Proc
	// coherence directory, at CoherenceBlock granularity
	dir       map[uint64]*sharer
	wordShift uint
	blockBits uint
}

// NewSystem builds a P-processor system with the given per-processor
// hierarchy.
func NewSystem(procs int, cfg Config) *System {
	if procs <= 0 {
		panic("cachesim: need at least one processor")
	}
	if procs > 64 {
		panic("cachesim: at most 64 processors")
	}
	if cfg.CoherenceBlock == 0 {
		cfg.CoherenceBlock = cfg.L1Block
	}
	s := &System{Cfg: cfg, dir: make(map[uint64]*sharer)}
	bb := uint(0)
	for b := cfg.CoherenceBlock; b > 1; b >>= 1 {
		bb++
	}
	s.blockBits = bb
	s.wordShift = 3 // 8-byte words
	for p := 0; p < procs; p++ {
		var l2 *Cache
		if cfg.L2Size > 0 {
			l2 = NewCache(fmt.Sprintf("P%d.L2", p), cfg.L2Size, cfg.L2Ways, cfg.L2Block, nil)
		}
		l1 := NewCache(fmt.Sprintf("P%d.L1", p), cfg.L1Size, cfg.L1Ways, cfg.L1Block, l2)
		s.Procs = append(s.Procs, &Proc{L1: l1, L2: l2, TLB: NewTLB(cfg.TLBEntries, cfg.PageSize)})
	}
	return s
}

// Access simulates one 8-byte load or store by processor p at byte
// address addr, updating caches, TLB, and the coherence directory.
func (s *System) Access(p int, addr uint64, write bool) {
	proc := s.Procs[p]
	proc.TLB.Access(addr)
	proc.L1.Access(addr, write)

	block := addr >> s.blockBits
	word := int(addr>>s.wordShift) & (1<<(s.blockBits-s.wordShift) - 1)
	sh := s.dir[block]
	if sh == nil {
		sh = &sharer{words: make(map[int]uint64)}
		s.dir[block] = sh
	}
	sh.present |= 1 << uint(p)
	sh.words[p] |= 1 << uint(word)

	if !write {
		return
	}
	// Write-invalidate: every other holder loses the block. If the
	// victim never touched the written word, the invalidation is false
	// sharing.
	for q := range s.Procs {
		if q == p || sh.present&(1<<uint(q)) == 0 {
			continue
		}
		victim := s.Procs[q]
		victim.L1.Invalidate(block << s.blockBits >> victim.L1.blockBits)
		if victim.L2 != nil {
			victim.L2.Invalidate(block << s.blockBits >> victim.L2.blockBits)
		}
		victim.L1.Stats.Invalidations++
		if sh.words[q]&(1<<uint(word)) == 0 {
			victim.L1.Stats.FalseInvalidations++
		}
		sh.present &^= 1 << uint(q)
		delete(sh.words, q)
	}
}

// Totals sums the per-processor statistics.
func (s *System) Totals() (l1, l2, tlb Stats) {
	for _, p := range s.Procs {
		l1 = addStats(l1, p.L1.Stats)
		if p.L2 != nil {
			l2 = addStats(l2, p.L2.Stats)
		}
		tlb = addStats(tlb, p.TLB.Stats)
	}
	return
}

func addStats(a, b Stats) Stats {
	a.Accesses += b.Accesses
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.Writebacks += b.Writebacks
	a.Invalidations += b.Invalidations
	a.FalseInvalidations += b.FalseInvalidations
	return a
}

// Reset clears all caches, TLBs, statistics, and the directory.
func (s *System) Reset() {
	for _, p := range s.Procs {
		p.L1.Reset()
		if p.L2 != nil {
			p.L2.Reset()
		}
		p.TLB.Reset()
	}
	s.dir = make(map[uint64]*sharer)
}
