package serve

import (
	"container/list"
	"fmt"
	"sync"

	recmat "repro"
	"repro/internal/obs"
)

// planCache is an LRU, byte-bounded, refcounted cache of prepacked
// operand plans keyed by operand identity. The refcounting is the
// robustness point: eviction removes an entry from the cache
// immediately (so its bytes stop counting and new requests rebuild),
// but the underlying Plan's buffers are returned to the recycling pool
// only when the last in-flight multiplication using it releases its
// reference — eviction never frees a plan mid-flight.
//
// Concurrent requests for the same missing key build once: the first
// acquirer inserts a pending entry and builds outside the lock; later
// acquirers block on the entry's ready channel. Build failures are not
// cached — the entry is removed so the next request retries.
type planCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*planEntry
	lru      *list.List // front = most recently used; values are *planEntry

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	gauge     *obs.Gauge // plan_cache_bytes
}

type planEntry struct {
	key   string
	elem  *list.Element
	ready chan struct{} // closed when plan/err is settled

	// All fields below are written before ready closes (happens-before
	// for waiters) or under the cache mutex.
	plan    *recmat.Plan
	bytes   int64
	err     error
	refs    int  // guarded by cache mu; includes the builder's ref
	evicted bool // removed from the cache; free on last release
	freed   bool // plan.Release has run (exactly-once guard)
}

// Plan returns the cached plan; only valid between a successful acquire
// and the matching release.
func (e *planEntry) Plan() *recmat.Plan { return e.plan }

func newPlanCache(maxBytes int64, reg *obs.Registry) *planCache {
	return &planCache{
		maxBytes:  maxBytes,
		entries:   map[string]*planEntry{},
		lru:       list.New(),
		hits:      reg.Counter("plan_cache_hits"),
		misses:    reg.Counter("plan_cache_misses"),
		evictions: reg.Counter("plan_cache_evictions"),
		gauge:     reg.Gauge("plan_cache_bytes"),
	}
}

// acquire returns the entry for key with one reference held, building
// the plan with build on a miss. The caller must release the entry
// when its multiplication has finished with the plan.
func (c *planCache) acquire(key string, build func() (*recmat.Plan, error)) (*planEntry, error) {
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		e.refs++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The build failed after we joined it; the builder already
			// removed the entry. Drop our reference and report.
			c.mu.Lock()
			e.refs--
			c.mu.Unlock()
			return nil, e.err
		}
		c.hits.Inc()
		return e, nil
	}
	e := &planEntry{key: key, refs: 1, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.misses.Inc()
	c.mu.Unlock()

	// The engine converts panics to errors at its API boundary, but a
	// plan builder that somehow panics anyway must not strand waiters
	// on the ready channel — settle the entry no matter what.
	plan, err := func() (p *recmat.Plan, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: plan build panicked: %v", r)
			}
		}()
		return build()
	}()

	c.mu.Lock()
	if err != nil {
		e.err = err
		if !e.evicted {
			delete(c.entries, key)
			c.lru.Remove(e.elem)
			e.evicted = true
		}
		e.refs--
		close(e.ready)
		c.mu.Unlock()
		return nil, err
	}
	e.plan, e.bytes = plan, plan.Bytes()
	close(e.ready)
	if e.evicted {
		// Evicted while still building (a burst of other keys pushed it
		// out): serve this caller, free on last release, account nothing.
		c.mu.Unlock()
		return e, nil
	}
	c.bytes += e.bytes
	toFree := c.evictOverLocked()
	c.gauge.Set(c.bytes)
	c.mu.Unlock()
	for _, p := range toFree {
		p.Release()
	}
	return e, nil
}

// release drops one reference; the last reference out of an evicted
// entry frees the plan's buffers.
func (c *planCache) release(e *planEntry) {
	c.mu.Lock()
	e.refs--
	var free *recmat.Plan
	if e.refs == 0 && e.evicted && e.plan != nil && !e.freed {
		e.freed = true
		free = e.plan
	}
	c.mu.Unlock()
	if free != nil {
		free.Release()
	}
}

// evictOverLocked evicts least-recently-used entries until the cache
// fits maxBytes, never evicting the most recent entry (the one just
// inserted — a cache that cannot hold even one plan would thrash every
// request). Returns the plans that can be freed right away (refs==0);
// in-use plans are freed by their final release.
func (c *planCache) evictOverLocked() []*recmat.Plan {
	var free []*recmat.Plan
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*planEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		e.evicted = true
		c.bytes -= e.bytes
		c.evictions.Inc()
		if e.refs == 0 && e.plan != nil && !e.freed {
			e.freed = true
			free = append(free, e.plan)
		}
	}
	return free
}

// close evicts everything, freeing plans with no in-flight references;
// the rest free when their last reference releases. Called on drain
// after in-flight requests have finished, so normally frees all.
func (c *planCache) close() {
	c.mu.Lock()
	var free []*recmat.Plan
	for key, e := range c.entries {
		delete(c.entries, key)
		e.evicted = true
		if e.refs == 0 && e.plan != nil && !e.freed {
			e.freed = true
			free = append(free, e.plan)
		}
	}
	c.lru.Init()
	c.bytes = 0
	c.gauge.Set(0)
	c.mu.Unlock()
	for _, p := range free {
		p.Release()
	}
}
