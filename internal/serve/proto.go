package serve

import (
	"errors"
	"fmt"
)

// This file is the wire protocol of recmatd: the JSON request/response
// shapes of POST /v1/gemm and the typed error taxonomy every failure
// maps onto. The protocol is deliberately synthetic-operand based —
// requests name operands by (name, seed, shape) and the daemon
// materializes them deterministically — so a load generator can drive
// realistic multi-tenant traffic without shipping megabytes of matrix
// data per call, while responses stay verifiable (CNorm is reproducible
// from the seeds alone).

// Request is the body of POST /v1/gemm: one C ← α·A·B + β·C operation.
// A is (M×K), B is (K×N), C is (M×N); all three are generated
// deterministically from their seeds, so two requests with equal specs
// describe the identical computation.
type Request struct {
	// Tenant identifies the caller for quota accounting; required.
	Tenant string `json:"tenant"`
	M      int    `json:"m"`
	K      int    `json:"k"`
	N      int    `json:"n"`
	// AName, when non-empty, marks A as a reusable named operand: the
	// daemon prepacks it once per (tenant, name, shape, seed, layout)
	// and serves later requests from the refcounted plan cache — the
	// serving pattern of fixed weights and streaming right-hand sides.
	AName string `json:"a_name,omitempty"`
	ASeed int64  `json:"a_seed"`
	BSeed int64  `json:"b_seed"`
	// CSeed, when non-zero, seeds a non-zero initial C so that β is
	// observable; zero starts from a zero C.
	CSeed int64 `json:"c_seed,omitempty"`
	// Alpha defaults to 1 when omitted (nil); Beta defaults to 0.
	Alpha *float64 `json:"alpha,omitempty"`
	Beta  float64  `json:"beta,omitempty"`
	// Alg and Layout name the algorithm and array layout. An empty or
	// "auto" Alg resolves per shape (Standard for small problems,
	// otherwise the cheapest fast algorithm under the engine's cost
	// model); Response.AlgRan reports the choice. An empty Layout means
	// column-major.
	Alg    string `json:"alg,omitempty"`
	Layout string `json:"layout,omitempty"`
	// DeadlineMS is the client's latency budget; the server caps it at
	// its configured maximum and applies its default when omitted.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ReturnData asks for the full C in the response; honored only up
	// to the server's MaxReturnElems (tests use it for exact checks).
	ReturnData bool `json:"return_data,omitempty"`
}

// Response is the success body of /v1/gemm.
type Response struct {
	Tenant string `json:"tenant"`
	M      int    `json:"m"`
	K      int    `json:"k"`
	N      int    `json:"n"`
	// AlgRan is the algorithm that actually executed — it differs from
	// the requested one when the degradation ladder stepped in under
	// the tenant's memory budget.
	AlgRan string `json:"alg_ran"`
	Kernel string `json:"kernel"`
	// Degraded lists the admission-ladder decisions taken for the call
	// (empty means the requested configuration ran unchanged) — the
	// degradation-rung reporting of Stats.Degraded on the wire.
	Degraded []string `json:"degraded,omitempty"`
	// PlanCached reports whether A was served from the plan cache.
	PlanCached bool `json:"plan_cached"`
	// Coalesced reports that this request shared a batched engine call
	// with at least one other queued request; BatchSize is the wave size
	// it rode in (1 for a batch-path request that ran alone).
	Coalesced bool `json:"coalesced,omitempty"`
	BatchSize int  `json:"batch_size,omitempty"`
	// QueueNS is the time the request waited in the admission queue;
	// ComputeNS and TotalNS are the engine's compute and end-to-end
	// times for the multiplication itself.
	QueueNS   int64 `json:"queue_ns"`
	ComputeNS int64 `json:"compute_ns"`
	TotalNS   int64 `json:"total_ns"`
	// CNorm is the entrywise 1-norm of the result (sum of |C_ij|) — a
	// cheap, order-independent digest a client can verify against a
	// locally computed reference.
	CNorm float64 `json:"c_norm"`
	// Data is C in column-major order, only when ReturnData was set and
	// M*N fits the server's echo cap.
	Data []float64 `json:"data,omitempty"`
	// RequestID echoes the request's correlation id (inbound
	// X-Request-Id or traceparent trace-id, else server-generated); the
	// same id names the request's lane in a trace and its ledger in a
	// flight-recorder bundle.
	RequestID string `json:"request_id,omitempty"`
	// Timing is the per-request latency attribution ledger.
	Timing *Timing `json:"timing,omitempty"`
}

// Timing is a response's phase attribution, in nanoseconds. Phases are
// disjoint: queue wait (admission), gather (the coalesce window),
// pack/compute/unpack (the engine call; batched waves fuse packing
// into compute and report pack and unpack as 0). Serialization is
// measured after the body is encoded, so it appears in the ledger,
// histograms, and flight dumps rather than here.
type Timing struct {
	QueueNS   int64 `json:"queue_ns,omitempty"`
	GatherNS  int64 `json:"gather_ns,omitempty"`
	PackNS    int64 `json:"pack_ns,omitempty"`
	ComputeNS int64 `json:"compute_ns,omitempty"`
	UnpackNS  int64 `json:"unpack_ns,omitempty"`
}

// Error kinds: the closed set of strings ErrorInfo.Kind can carry.
// Every failed request maps to exactly one.
const (
	KindBadRequest = "bad_request" // malformed body, bad dims/names, non-finite scalars
	KindTooLarge   = "too_large"   // can never fit the tenant quota, even idle
	KindQuota      = "quota"       // tenant concurrent-bytes quota exhausted right now
	KindShed       = "shed"        // admission queue full or queue wait exceeded
	KindDeadline   = "deadline"    // per-request deadline expired
	KindCanceled   = "canceled"    // client disconnected mid-request
	KindDraining   = "draining"    // server is shutting down
	KindInternal   = "internal"    // worker panic or other engine failure
)

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo is the typed error a failed request returns.
type ErrorInfo struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// RetryAfterMS mirrors the Retry-After header for retryable kinds
	// (shed, quota, draining); 0 means not retryable.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Sentinel errors of the serving layer, each the root of one error
// kind. Everything a handler can fail with is one of these, a recmat
// typed error, or a context error — reachable through errors.Is.
var (
	// ErrShed marks load shedding: the admission queue was full or the
	// bounded queue wait expired before a slot opened.
	ErrShed = errors.New("serve: overloaded, request shed")
	// ErrQuota marks a tenant whose concurrent-bytes quota cannot admit
	// the request right now (retryable once in-flight work completes).
	ErrQuota = errors.New("serve: tenant quota exceeded")
	// ErrTooLarge marks a request whose operand footprint exceeds the
	// whole tenant quota — it can never be admitted, so don't retry.
	ErrTooLarge = errors.New("serve: request exceeds tenant quota")
	// ErrDraining marks requests rejected or cancelled because the
	// server is shutting down.
	ErrDraining = errors.New("serve: draining")
)

func validate(req *Request, maxDim int) error {
	if req.Tenant == "" {
		return fmt.Errorf("tenant is required")
	}
	for _, d := range [3]struct {
		name string
		v    int
	}{{"m", req.M}, {"k", req.K}, {"n", req.N}} {
		if d.v < 1 || d.v > maxDim {
			return fmt.Errorf("%s=%d out of range [1, %d]", d.name, d.v, maxDim)
		}
	}
	return nil
}

// alpha returns the request's effective alpha (1 when omitted).
func (r *Request) alpha() float64 {
	if r.Alpha == nil {
		return 1
	}
	return *r.Alpha
}
