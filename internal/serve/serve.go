// Package serve is the overload-hardened GEMM-serving layer behind
// cmd/recmatd: a stdlib-only HTTP daemon multiplying matrices for many
// concurrent tenants on one recmat Engine. Robustness is the headline,
// not throughput — every request passes an admission ladder (tenant
// quota → global semaphore → bounded queue → shed), carries a
// propagated deadline (client disconnect, client budget, server cap,
// drain cancellation) into the engine's cooperative-cancellation
// machinery, and fails only with a typed error. Degradation under
// memory pressure rides Options.MemBudget, a refcounted LRU plan cache
// amortizes operand packing across requests without ever freeing a
// plan mid-flight, and SIGTERM drains gracefully: stop admitting,
// finish or cancel in-flight work within a budget, flush metrics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	recmat "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a production-shaped default.
type Config struct {
	// Workers sizes the engine's worker pool (0 = one per CPU).
	Workers int
	// MaxInflight bounds concurrently executing multiplications
	// (0 = 2× the worker count). Requests beyond it queue.
	MaxInflight int
	// QueueDepth bounds the admission queue (0 = 4× MaxInflight);
	// requests arriving with the queue full are shed with 429.
	QueueDepth int
	// MaxQueueWait bounds how long one request may sit in the queue
	// before being shed (0 = 500ms) — the wedge-proofing bound: no
	// request waits unboundedly for a slot.
	MaxQueueWait time.Duration
	// TenantQuotaBytes is each tenant's concurrent-bytes allowance
	// (0 = 256 MiB); the unused remainder becomes each request's
	// engine MemBudget.
	TenantQuotaBytes int64
	// DefaultDeadline applies when a request carries none (0 = 2s);
	// MaxDeadline caps what a request may ask for and doubles as the
	// server-side max-inflight-time (0 = 10s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DrainTimeout is the graceful phase of Drain: how long in-flight
	// requests get to finish before being cancelled (0 = 5s).
	DrainTimeout time.Duration
	// PlanCacheBytes bounds the prepacked-plan LRU (0 = 512 MiB,
	// negative disables caching).
	PlanCacheBytes int64
	// MaxBatch bounds how many queued requests hashing to the same
	// plan-cache entry may coalesce into one batched engine call
	// (0 = 8, negative disables coalescing). The batching window is the
	// admission queue wait itself — an idle server coalesces nothing.
	MaxBatch int
	// MaxDim bounds each of m, k, n (0 = 4096).
	MaxDim int
	// MaxReturnElems caps ReturnData echoes (0 = 4096 elements).
	MaxReturnElems int
	// Logf, when non-nil, receives operational log lines (startup,
	// drain progress, the final metrics flush).
	Logf func(format string, args ...any)

	// FlightSpoolDir, when non-empty, arms the SLO flight recorder: a
	// small always-on tracer window plus the request-ledger ring,
	// dumped as an evidence bundle to this directory on SLO violation
	// or manual trigger (/debug/flightz). Empty disables the recorder
	// (and leaves the process-global tracer slot free for explicit
	// EnableTracing runs).
	FlightSpoolDir string
	// FlightMinInterval rate-limits automatic dumps (0 = 1 minute).
	FlightMinInterval time.Duration
	// LedgerRing sizes the recent-request ledger ring (0 = 256).
	LedgerRing int
	// SLOObjective, when positive, starts the burn-rate monitor: the
	// request-latency quantile (SLOQuantile, default p99) is estimated
	// over a fast and a slow window, and when BOTH exceed the
	// objective the flight recorder dumps a bundle. Requires
	// FlightSpoolDir.
	SLOObjective time.Duration
	// SLOQuantile is the monitored quantile in (0, 1] (0 = 0.99).
	SLOQuantile float64
	// SLOFastWindow and SLOSlowWindow are the burn-rate windows
	// (0 = 10s and 60s); SLOPoll is the sampling period (0 = 1s).
	SLOFastWindow time.Duration
	SLOSlowWindow time.Duration
	SLOPoll       time.Duration
	// SLOMinSamples is the per-window sample floor below which no
	// violation fires (0 = 20) — an idle server's noise is not a burn.
	SLOMinSamples int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * c.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxInflight
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 500 * time.Millisecond
	}
	if c.TenantQuotaBytes == 0 {
		c.TenantQuotaBytes = 256 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.PlanCacheBytes == 0 {
		c.PlanCacheBytes = 512 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.MaxBatch < 0 {
		c.MaxBatch = 1 // below the coalescer's minimum: disabled
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 4096
	}
	if c.MaxReturnElems <= 0 {
		c.MaxReturnElems = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.FlightMinInterval <= 0 {
		c.FlightMinInterval = time.Minute
	}
	if c.LedgerRing <= 0 {
		c.LedgerRing = obs.DefaultLedgerCap
	}
	if c.SLOQuantile <= 0 || c.SLOQuantile > 1 {
		c.SLOQuantile = 0.99
	}
	if c.SLOFastWindow <= 0 {
		c.SLOFastWindow = 10 * time.Second
	}
	if c.SLOSlowWindow <= 0 {
		c.SLOSlowWindow = time.Minute
	}
	if c.SLOSlowWindow < c.SLOFastWindow {
		c.SLOSlowWindow = c.SLOFastWindow
	}
	if c.SLOPoll <= 0 {
		c.SLOPoll = time.Second
	}
	if c.SLOMinSamples <= 0 {
		c.SLOMinSamples = 20
	}
	return c
}

// Server is one recmatd instance: an engine, its admission machinery,
// and the HTTP handlers. Create with New, mount Handler, and Drain on
// shutdown.
type Server struct {
	cfg   Config
	eng   *recmat.Engine
	reg   *obs.Registry
	adm   *admission
	quo   *quotas
	plans *planCache
	co    *coalescer
	mux   *http.ServeMux

	// gate tracks in-flight requests and flips atomically to draining:
	// a plain WaitGroup would race Add against Wait on the drain path.
	gate inflightGate
	// drainCtx is cancelled (cause ErrDraining) when the graceful phase
	// of Drain gives up on stragglers; request contexts are linked to it.
	drainCtx    context.Context
	drainCancel context.CancelCauseFunc

	reqTotal   *obs.Counter
	reqOK      *obs.Counter
	reqSeconds *obs.Histogram

	// Request-scoped observability: the ledger ring is always on (its
	// cost is bounded by the obs-gate), the flight recorder and SLO
	// monitor only when configured.
	ledgers   *obs.LedgerRing
	phaseHist [obs.NumReqPhases]*obs.Histogram
	flight    *obs.FlightRecorder
	slo       *sloMonitor
}

// New builds a Server and its engine. The engine's metrics registry is
// shared with the serving layer, so one scrape shows engine and daemon
// metrics side by side.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	eng := recmat.NewEngine(cfg.Workers)
	reg := eng.Metrics()
	s := &Server{
		cfg:        cfg,
		eng:        eng,
		reg:        reg,
		adm:        newAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.MaxQueueWait, reg),
		quo:        newQuotas(cfg.TenantQuotaBytes, reg),
		plans:      newPlanCache(cfg.PlanCacheBytes, reg),
		reqTotal:   reg.Counter("requests_total"),
		reqOK:      reg.Counter("requests_ok"),
		reqSeconds: reg.Histogram("request_seconds", obs.SecondsBuckets),
		ledgers:    obs.NewLedgerRing(cfg.LedgerRing),
	}
	for p := obs.ReqPhase(0); p < obs.NumReqPhases; p++ {
		s.phaseHist[p] = reg.Histogram("req_phase_"+p.String()+"_seconds", obs.SecondsBuckets)
	}
	s.drainCtx, s.drainCancel = context.WithCancelCause(context.Background())
	s.co = newCoalescer(s, cfg.MaxBatch)
	if cfg.FlightSpoolDir != "" {
		fr, err := obs.NewFlightRecorder(obs.FlightConfig{
			SpoolDir:      cfg.FlightSpoolDir,
			Ring:          s.ledgers,
			Metrics:       reg,
			TracerWorkers: cfg.Workers,
			MinInterval:   cfg.FlightMinInterval,
		})
		if err != nil {
			cfg.Logf("recmatd: flight recorder disabled: %v", err)
		} else {
			s.flight = fr
			if !fr.Armed() {
				cfg.Logf("recmatd: flight recorder running without a trace window (tracer slot taken)")
			}
			if cfg.SLOObjective > 0 {
				s.slo = newSLOMonitor(s)
				s.slo.start()
			}
		}
	} else if cfg.SLOObjective > 0 {
		cfg.Logf("recmatd: SLO monitor requires FlightSpoolDir; disabled")
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/gemm", s.handleGEMM)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.HandleFunc("/debug/flightz", s.handleFlightz)
	s.mux.Handle("/debug/vars", expvar.Handler())
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the underlying engine (tests and benchmarks).
func (s *Server) Engine() *recmat.Engine { return s.eng }

// Metrics returns the shared engine+daemon metrics registry.
func (s *Server) Metrics() *recmat.Metrics { return s.reg }

// PublishExpvar publishes the metrics registry under the given expvar
// name (visible at /debug/vars). expvar names are process-global and
// permanent, so this can fail when the name is taken.
func (s *Server) PublishExpvar(name string) error { return s.reg.Publish(name) }

// FlightDumps reports how many flight bundles the SLO recorder has
// written (0 when no spool directory is configured). Benchmarks record
// it so a saturation sweep that tripped the burn-rate monitor is
// visible on the committed record.
func (s *Server) FlightDumps() int64 {
	if s.flight == nil {
		return 0
	}
	return s.flight.Dumps()
}

// inflightGate counts in-flight requests and coordinates the drain
// handshake without the WaitGroup Add-vs-Wait race: enter refuses new
// work once draining, and the last exit signals idle.
type inflightGate struct {
	mu       sync.Mutex
	n        int
	draining bool
	idle     chan struct{} // created by drain; closed when n hits 0
}

func (g *inflightGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

func (g *inflightGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	if g.draining && g.n == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
}

// drain flips the gate closed and returns a channel that closes when
// the last in-flight request exits (immediately if already idle).
func (g *inflightGate) drain() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	ch := make(chan struct{})
	if g.n == 0 {
		close(ch)
		return ch
	}
	g.idle = ch
	return ch
}

func (g *inflightGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

func (g *inflightGate) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Drain is the graceful-shutdown path: stop admitting requests, give
// in-flight work DrainTimeout to finish, then cancel stragglers
// through their linked contexts and wait again, bounded by ctx. After
// the floor is clear it flushes a final metrics snapshot through Logf,
// releases the plan cache, and closes the engine. Idempotent-enough
// for one caller; returns an error only if stragglers outlived every
// budget (which indicates a wedged request — the condition the soak
// suite asserts never happens).
func (s *Server) Drain(ctx context.Context) error {
	s.cfg.Logf("recmatd: draining (%d in flight)", s.gate.count())
	idle := s.gate.drain()
	graceful := time.NewTimer(s.cfg.DrainTimeout)
	defer graceful.Stop()
	select {
	case <-idle:
	case <-graceful.C:
		s.cfg.Logf("recmatd: drain budget %v expired with %d in flight; cancelling", s.cfg.DrainTimeout, s.gate.count())
		s.drainCancel(ErrDraining)
		// Cancelled engine runs abort within roughly one leaf-kernel
		// latency; anything still here after MaxDeadline is wedged.
		hard := time.NewTimer(s.cfg.MaxDeadline)
		defer hard.Stop()
		select {
		case <-idle:
		case <-hard.C:
			return fmt.Errorf("serve: drain: %d requests wedged past cancellation", s.gate.count())
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d requests in flight: %w", s.gate.count(), context.Cause(ctx))
		}
	case <-ctx.Done():
		s.drainCancel(ErrDraining)
		select {
		case <-idle:
		case <-time.After(s.cfg.MaxDeadline):
			return fmt.Errorf("serve: drain: %d requests wedged past cancellation", s.gate.count())
		}
	}
	if s.slo != nil {
		s.slo.stop()
	}
	if s.flight != nil {
		s.flight.Close()
	}
	if buf, err := json.Marshal(s.reg.Snapshot()); err == nil {
		s.cfg.Logf("recmatd: final metrics: %s", buf)
	}
	s.plans.close()
	s.eng.Close()
	s.cfg.Logf("recmatd: drained")
	return nil
}

// Close is Drain with a background context (tests, defer paths).
func (s *Server) Close() error { return s.Drain(context.Background()) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.gate.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetricz serves the registry snapshot. JSON stays the default
// (the format every existing client and test expects); the OpenMetrics
// text exposition is selected by a Prometheus-shaped Accept header or
// an explicit ?format= query, so standard scrapers work unconfigured.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if wantsOpenMetrics(r) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		s.reg.Snapshot().WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.reg.Snapshot())
}

func wantsOpenMetrics(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "openmetrics", "om", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "openmetrics") || strings.Contains(accept, "text/plain")
}

// handleFlightz exposes the flight recorder: GET reports its state and
// spool, GET ?bundle= fetches one bundle's files, POST triggers a dump
// immediately (bypassing the automatic-dump rate limit — an operator
// asking for evidence should get it).
func (s *Server) handleFlightz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.flight == nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]any{"enabled": false})
		return
	}
	switch r.Method {
	case http.MethodPost:
		name, err := s.flight.Dump("manual", true)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"bundle": name})
	case http.MethodGet:
		if name := r.URL.Query().Get("bundle"); name != "" {
			s.serveFlightBundle(w, name)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"enabled":    true,
			"armed":      s.flight.Armed(),
			"dumps":      s.flight.Dumps(),
			"suppressed": s.flight.Suppressed(),
			"bundles":    s.flight.List(),
		})
	default:
		w.Header().Set("Allow", "GET, POST")
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// serveFlightBundle returns one bundle as a JSON object keyed by file
// name: JSON members embedded raw, text members as strings. Path
// traversal is refused by construction (the name must match a listed
// bundle).
func (s *Server) serveFlightBundle(w http.ResponseWriter, name string) {
	ok := false
	for _, b := range s.flight.List() {
		if b == name {
			ok = true
			break
		}
	}
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]any{"error": "no such bundle"})
		return
	}
	dir := filepath.Join(s.cfg.FlightSpoolDir, name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
		return
	}
	out := map[string]any{"bundle": name}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, e.Name()))
		if rerr != nil {
			continue
		}
		if strings.HasSuffix(e.Name(), ".json") && json.Valid(data) {
			out[e.Name()] = json.RawMessage(data)
		} else {
			out[e.Name()] = string(data)
		}
	}
	json.NewEncoder(w).Encode(out)
}

// handleGEMM is the request path: decode → validate → drain gate →
// tenant quota → global admission → deadline assembly → compute →
// typed response. Every early exit is a typed error with the right
// status; every reservation is released on every path.
func (s *Server) handleGEMM(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, KindBadRequest, "POST required", 0)
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, KindBadRequest, "bad request body: "+err.Error(), 0)
		return
	}
	if err := validate(&req, s.cfg.MaxDim); err != nil {
		s.writeError(w, http.StatusBadRequest, KindBadRequest, err.Error(), 0)
		return
	}
	s.reqTotal.Inc()
	rs := s.startReq(r, &req)
	defer func() { s.reqSeconds.Observe(time.Since(rs.t0).Seconds()) }()

	if !s.gate.enter() {
		s.failReq(w, rs, ErrDraining)
		return
	}
	defer s.gate.exit()

	// Tenant quota: reserve the operand footprint, carry the unused
	// remainder of the quota into the engine as this call's MemBudget.
	budget, unreserve, err := s.quo.reserve(req.Tenant, operandBytes(req.M, req.K, req.N))
	if err != nil {
		s.failReq(w, rs, err)
		return
	}
	defer unreserve()

	// Coalescing path: plan-cacheable requests join (or lead) a wave
	// keyed by their plan-cache entry instead of taking their own
	// admission slot — the leader's queue wait is the batching window.
	// Deadlines are applied per member inside the wave. The wave fills
	// the member's ledger (gather, shared compute) before settling it.
	if lay, ok := s.co.eligible(&req); ok {
		resp, cerr := s.co.do(r.Context(), &req, budget, lay, rs)
		if cerr != nil {
			s.failReq(w, rs, cerr)
			return
		}
		s.okReq(w, rs, resp)
		return
	}

	// Global admission: slot, bounded queue, or shed. The raw request
	// context is used here so a client that disconnects while queued
	// frees its queue position without ever taking a slot.
	release, queueWait, err := s.adm.acquire(r.Context())
	if err != nil {
		s.failReq(w, rs, err)
		return
	}
	defer release()
	rs.phaseAt(obs.PhaseQueue, obs.KindQueueWait, time.Now().Add(-queueWait), queueWait)

	// Deadline propagation: client disconnect (r.Context) + drain
	// cancellation + min(client budget, server cap) all flow into one
	// context the engine polls cooperatively.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stopLink := context.AfterFunc(s.drainCtx, func() { cancel(ErrDraining) })
	defer stopLink()
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, tcancel := context.WithTimeout(ctx, deadline)
	defer tcancel()

	resp, err := s.compute(ctx, &req, budget, rs)
	if err != nil {
		s.failReq(w, rs, err)
		return
	}
	resp.QueueNS = queueWait.Nanoseconds()
	s.okReq(w, rs, resp)
}

// planKey is the operand-identity key of the plan cache: tenant, name,
// shape, seed, layout, the partner-width bucket the plan was split for,
// and the RESOLVED algorithm (never the "auto" sentinel — two requests
// whose auto choices differ must not share a plan, and two spellings of
// the same choice must). Everything that changes the packed bytes or
// the recursion that consumes them is in the key.
func planKey(req *Request, lay recmat.Layout, alg recmat.Algorithm) string {
	return req.Tenant + "/" + req.AName +
		"/" + strconv.Itoa(req.M) + "x" + strconv.Itoa(req.K) +
		"/s" + strconv.FormatInt(req.ASeed, 10) +
		"/" + lay.String() +
		"/p" + strconv.Itoa(partnerBucket(req.N)) +
		"/a=" + alg.String()
}

// resolveReqAlg parses a request's algorithm field ("" and "auto" both
// mean per-shape auto-selection) and resolves it against the request
// shape, so every downstream consumer — plan key, coalesce key, engine
// options — sees one concrete algorithm.
func resolveReqAlg(req *Request, lay recmat.Layout) (recmat.Algorithm, error) {
	alg := recmat.Auto
	if req.Alg != "" {
		a, err := recmat.ParseAlgorithm(req.Alg)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", recmat.ErrDimension, err)
		}
		alg = a
	}
	opts := &recmat.Options{Layout: lay, Algorithm: alg}
	return recmat.ResolveAlgorithm(opts, req.M, req.K, req.N), nil
}

// partnerBucket rounds the streamed right-hand width up to a power of
// two (min 16) so plans are shared across nearby widths instead of one
// plan per exact n.
func partnerBucket(n int) int {
	b := 16
	for b < n {
		b <<= 1
	}
	return b
}

// compute runs the multiplication: the plan-cache path for named
// recursive-layout operands (Prepack once, PrepackConforming the
// streamed B, GEMMPrepacked), the direct path otherwise. The tenant's
// budget rides Options.MemBudget on both paths. A panic anywhere in
// the request path (the engine converts its own, but the serving code
// and its fault hooks can panic too) becomes a typed internal error
// instead of escaping into net/http, which would tear down the
// connection untyped.
func (s *Server) compute(ctx context.Context, req *Request, budget int64, rs *reqState) (resp *Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("serve: compute panicked: %w", e)
			} else {
				err = fmt.Errorf("serve: compute panicked: %v", r)
			}
		}
	}()
	faultinject.Point("serve.compute")
	var lay recmat.Layout
	if req.Layout != "" {
		l, err := recmat.ParseLayout(req.Layout)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", recmat.ErrDimension, err)
		}
		lay = l
	}
	alg, err := resolveReqAlg(req, lay)
	if err != nil {
		return nil, err
	}
	opts := &recmat.Options{Layout: lay, Algorithm: alg, MemBudget: budget}
	if rs != nil {
		// The engine stamps this id on the call's trace lane, joining the
		// request lane to the driver spans it produced.
		opts.TraceID = rs.trace
	}

	B := seededMat(req.K, req.N, req.BSeed)
	var C *recmat.Matrix
	if req.CSeed != 0 {
		C = seededMat(req.M, req.N, req.CSeed)
	} else {
		C = zeroMat(req.M, req.N)
	}
	var A *recmat.Matrix
	defer func() {
		if r := recover(); r != nil {
			// A panicking engine may leave operand buffers in an unknown
			// state of sharing — poisoned buffers go to the GC, not the
			// pool. Re-raise for the outer recover to type the error.
			panic(r)
		}
		freeMat(A)
		freeMat(B)
		freeMat(C)
	}()

	var rep *recmat.Report
	cached := false
	tCall := time.Now()
	if req.AName != "" && lay != recmat.ColMajor && s.cfg.PlanCacheBytes > 0 {
		var ent *planEntry
		ent, err = s.plans.acquire(planKey(req, lay, alg), func() (*recmat.Plan, error) {
			pa := seededMat(req.M, req.K, req.ASeed)
			popts := *opts
			popts.PartnerDim = partnerBucket(req.N)
			p, perr := s.eng.Prepack(pa, false, &popts)
			if perr == nil {
				freeMat(pa) // the plan holds its own packed copy
			}
			return p, perr
		})
		if err != nil {
			return nil, err
		}
		defer s.plans.release(ent)
		cached = true
		var pb *recmat.Plan
		pb, err = s.eng.PrepackConforming(B, false, opts, ent.Plan())
		if err != nil {
			return nil, err
		}
		defer pb.Release()
		rep, err = s.eng.GEMMPrepackedOpts(ctx, opts, req.alpha(), ent.Plan(), pb, req.Beta, C)
	} else {
		A = seededMat(req.M, req.K, req.ASeed)
		rep, err = s.eng.DGEMMContext(ctx, false, false, req.alpha(), A, B, req.Beta, C, opts)
	}
	if err != nil {
		return nil, err
	}

	// Attribution: pack/unpack are the driver's layout-conversion
	// phases; the lane span covers the whole engine call so a trace
	// shows where the request's wall went even when conversion is free.
	rs.phase(obs.PhasePack, rep.ConvertIn)
	rs.phase(obs.PhaseCompute, rep.Compute)
	rs.phase(obs.PhaseUnpack, rep.ConvertOut)
	if rs != nil && rs.tr != nil {
		rs.tr.LaneSpan(rs.lane, obs.KindCompute, tCall, time.Since(tCall), 0)
	}

	resp = &Response{
		Tenant: req.Tenant, M: req.M, K: req.K, N: req.N,
		AlgRan:     rep.Alg.String(),
		Kernel:     rep.Kernel,
		Degraded:   rep.Degraded,
		PlanCached: cached,
		ComputeNS:  rep.Compute.Nanoseconds(),
		TotalNS:    rep.Total().Nanoseconds(),
		CNorm:      norm1(C),
	}
	if req.ReturnData && req.M*req.N <= s.cfg.MaxReturnElems {
		resp.Data = make([]float64, 0, req.M*req.N)
		for j := 0; j < C.Cols; j++ {
			resp.Data = append(resp.Data, C.Data[j*C.Stride:j*C.Stride+C.Rows]...)
		}
	}
	return resp, nil
}

// norm1 is the entrywise 1-norm of a column-major matrix. Four
// accumulators break the single add chain's latency dependence —
// this runs once per response, which at saturation is often enough
// to show up in profiles.
func norm1(m *recmat.Matrix) float64 {
	var s0, s1, s2, s3 float64
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		i := 0
		for ; i+4 <= len(col); i += 4 {
			s0 += math.Abs(col[i])
			s1 += math.Abs(col[i+1])
			s2 += math.Abs(col[i+2])
			s3 += math.Abs(col[i+3])
		}
		for ; i < len(col); i++ {
			s0 += math.Abs(col[i])
		}
	}
	return (s0 + s1) + (s2 + s3)
}

// classify maps an error to its wire kind, HTTP status, and retry hint
// — the single source of truth for the typed-error contract. Order
// matters: drain cancellation looks like a context error to the
// engine, so the serve sentinels are checked first.
func classify(err error) (kind string, status int, retryAfter time.Duration) {
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, recmat.ErrPoolClosed):
		return KindDraining, http.StatusServiceUnavailable, time.Second
	case errors.Is(err, ErrShed):
		return KindShed, http.StatusTooManyRequests, time.Second
	case errors.Is(err, ErrTooLarge):
		return KindTooLarge, http.StatusRequestEntityTooLarge, 0
	case errors.Is(err, ErrQuota):
		return KindQuota, http.StatusTooManyRequests, time.Second
	case errors.Is(err, recmat.ErrMemBudget):
		// The degradation ladder found no rung inside the tenant's
		// remaining quota; in-flight work completing may free budget.
		return KindQuota, http.StatusTooManyRequests, time.Second
	case errors.Is(err, recmat.ErrNonFinite), errors.Is(err, recmat.ErrDimension):
		return KindBadRequest, http.StatusBadRequest, 0
	case errors.Is(err, context.DeadlineExceeded):
		return KindDeadline, http.StatusGatewayTimeout, 0
	case errors.Is(err, context.Canceled):
		// 499 is nginx's "client closed request"; the client is gone,
		// so the status is for the access log, not the wire.
		return KindCanceled, 499, 0
	default:
		return KindInternal, http.StatusInternalServerError, 0
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, kind, msg string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: ErrorInfo{
		Kind:         kind,
		Message:      msg,
		RetryAfterMS: retryAfter.Milliseconds(),
	}})
}
