package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is the Go client for a recmatd daemon, with the retry policy
// the typed-error taxonomy implies: shed/quota/draining responses are
// retried with capped exponential backoff (honoring Retry-After),
// while bad-request, too-large, and deadline failures are returned
// immediately — retrying those only amplifies overload.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a dedicated client (no global timeout; the
	// per-call context bounds each attempt).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first (default 3;
	// negative disables retries entirely).
	MaxRetries int
	// Backoff is the initial retry delay (default 50ms), doubling per
	// attempt and capped at MaxBackoff (default 1s). A server
	// Retry-After overrides the computed delay when longer.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// APIError is a non-2xx daemon response surfaced as a Go error; the
// serving sentinels are reachable through errors.Is via its kind.
type APIError struct {
	Status int
	Info   ErrorInfo
}

func (e *APIError) Error() string {
	return fmt.Sprintf("recmatd: %s (%d): %s", e.Info.Kind, e.Status, e.Info.Message)
}

// Is maps wire kinds back onto the server-side sentinel errors, so
// client code can errors.Is(err, serve.ErrShed) across the HTTP hop.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrShed:
		return e.Info.Kind == KindShed
	case ErrQuota:
		return e.Info.Kind == KindQuota
	case ErrTooLarge:
		return e.Info.Kind == KindTooLarge
	case ErrDraining:
		return e.Info.Kind == KindDraining
	case context.DeadlineExceeded:
		return e.Info.Kind == KindDeadline
	}
	return false
}

// Retryable reports whether the failure is worth retrying: load was
// shed, quota was momentarily exhausted, or the server is draining
// (another replica, or the same one post-restart, may accept it).
func (e *APIError) Retryable() bool {
	switch e.Info.Kind {
	case KindShed, KindQuota, KindDraining:
		return true
	}
	return false
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Do submits one GEMM request, retrying retryable failures until ctx
// ends or the retry budget is spent. The returned error is either an
// *APIError (typed daemon rejection), a context error, or a transport
// error; never a silent nil-with-no-response.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.once(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var apiErr *APIError
		retryable := errors.As(err, &apiErr) && apiErr.Retryable()
		if !retryable || attempt >= maxRetries {
			return nil, lastErr
		}
		delay := backoff << attempt
		if delay > maxBackoff {
			delay = maxBackoff
		}
		if apiErr.Info.RetryAfterMS > 0 {
			if ra := time.Duration(apiErr.Info.RetryAfterMS) * time.Millisecond; ra > delay {
				delay = ra
			}
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("recmatd client: %w (last attempt: %v)", context.Cause(ctx), lastErr)
		}
	}
}

func (c *Client) once(ctx context.Context, req *Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/gemm", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		var eb ErrorBody
		if json.Unmarshal(raw, &eb) != nil || eb.Error.Kind == "" {
			eb.Error = ErrorInfo{Kind: KindInternal, Message: string(raw)}
		}
		return nil, &APIError{Status: hresp.StatusCode, Info: eb.Error}
	}
	var out Response
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("recmatd client: bad response body: %w", err)
	}
	return &out, nil
}
