package serve

import (
	"errors"
	"time"

	"repro/internal/obs"
)

// This file is the SLO burn-rate monitor: a background sampler over the
// request_seconds histogram that estimates the configured latency
// quantile over a fast and a slow window and, when BOTH exceed the
// objective, asks the flight recorder for an evidence bundle. Two
// windows is the standard burn-rate discipline — the fast window makes
// the alarm prompt, the slow window makes it ignore one bad second —
// and the sample floor keeps an idle server's noise from ever firing.

// sloSample is one timestamped cumulative snapshot of request_seconds.
type sloSample struct {
	t time.Time
	h obs.HistogramSnapshot
}

type sloMonitor struct {
	s       *Server
	stop_   chan struct{}
	done    chan struct{}
	samples []sloSample
}

func newSLOMonitor(s *Server) *sloMonitor {
	return &sloMonitor{
		s:     s,
		stop_: make(chan struct{}),
		done:  make(chan struct{}),
	}
}

func (m *sloMonitor) start() {
	go m.run()
}

func (m *sloMonitor) stop() {
	close(m.stop_)
	<-m.done
}

func (m *sloMonitor) run() {
	defer close(m.done)
	cfg := m.s.cfg
	tick := time.NewTicker(cfg.SLOPoll)
	defer tick.Stop()
	burns := m.s.reg.Counter("slo_burn_violations")
	p99 := m.s.reg.Gauge("slo_fast_quantile_us")
	for {
		select {
		case <-m.stop_:
			return
		case <-tick.C:
			m.poll(time.Now(), burns, p99)
		}
	}
}

// poll takes one cumulative snapshot, trims the ring to the slow
// window, and evaluates both windows against the objective.
func (m *sloMonitor) poll(now time.Time, burns *obs.Counter, fastGauge *obs.Gauge) {
	cfg := m.s.cfg
	cur := sloSample{t: now, h: m.s.reg.Snapshot().Histograms["request_seconds"]}
	m.samples = append(m.samples, cur)
	// Keep one sample strictly older than the slow window as its
	// baseline; everything older than that is dead weight.
	cut := 0
	for cut < len(m.samples)-1 && now.Sub(m.samples[cut+1].t) >= cfg.SLOSlowWindow {
		cut++
	}
	m.samples = m.samples[cut:]

	fastQ, fastN, fastOK := m.window(cur, cfg.SLOFastWindow)
	slowQ, slowN, slowOK := m.window(cur, cfg.SLOSlowWindow)
	if fastOK {
		fastGauge.Set(int64(fastQ * 1e6))
	}
	if !fastOK || !slowOK {
		return
	}
	if fastN < cfg.SLOMinSamples || slowN < cfg.SLOMinSamples {
		return
	}
	obj := cfg.SLOObjective.Seconds()
	if fastQ <= obj || slowQ <= obj {
		return
	}
	burns.Inc()
	if _, err := m.s.flight.Dump("slo-burn", false); err != nil && !errors.Is(err, obs.ErrDumpSuppressed) {
		cfg.Logf("recmatd: slo burn dump failed: %v", err)
	} else if err == nil {
		cfg.Logf("recmatd: slo burn: p%g %.1fms/%.1fms over %v/%v exceeds %v; flight bundle dumped",
			cfg.SLOQuantile*100, fastQ*1e3, slowQ*1e3, cfg.SLOFastWindow, cfg.SLOSlowWindow, cfg.SLOObjective)
	}
}

// window estimates the quantile of the observations recorded inside the
// trailing window of the given width: the delta between the current
// snapshot and the newest sample at least that old. Reports !ok until
// the ring covers the window.
func (m *sloMonitor) window(cur sloSample, width time.Duration) (q float64, n int64, ok bool) {
	var base *sloSample
	for i := range m.samples {
		if cur.t.Sub(m.samples[i].t) >= width {
			base = &m.samples[i]
		} else {
			break
		}
	}
	if base == nil {
		return 0, 0, false
	}
	d := cur.h.Sub(base.h)
	return d.Quantile(m.s.cfg.SLOQuantile), d.Count, true
}
