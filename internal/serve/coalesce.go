package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	recmat "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file implements request coalescing: queued requests that hash to
// the same plan-cache entry (same tenant, named operand, shape, seed,
// layout, partner bucket — and the same algorithm) are merged into ONE
// batched engine call instead of N. The batching window is the
// admission queue itself: the first request of a group (the leader)
// waits for an execution slot exactly as a single request would, and
// every compatible request that arrives while it waits joins the group
// instead of taking its own slot. Under load — when the queue is
// non-empty and coalescing pays — windows open naturally; on an idle
// server the leader's acquire returns immediately and the request runs
// alone, paying nothing.
//
// Deadlines and cancellation stay per-request: each member carries its
// own context (client disconnect + its own deadline) into its wave
// item, so an expired member is dropped from the wave, not the wave
// from the member. Drain cancels the wave itself through the server's
// drain context.

// cmember is one request riding a coalesced wave: its spec, the unused
// tenant-quota remainder it brought as engine budget, its request
// context, and the slot its handler blocks on until the wave settles
// it with a response or a typed error.
type cmember struct {
	req    *Request
	budget int64
	rctx   context.Context
	resp   *Response
	err    error
	done   chan struct{}
	// rs is the member's request-observability state; the wave fills its
	// ledger (queue, gather, the SHARED compute wall) and stamps its
	// trace serial on the member's wave item before settling. joined is
	// when the member entered the coalescer — the start of its gather
	// phase.
	rs     *reqState
	joined time.Time
}

// trace returns the member's trace serial (0 when untraced).
func (m *cmember) trace() int64 {
	if m.rs == nil {
		return 0
	}
	return m.rs.trace
}

// cwave is one open coalescing group: the members accumulated while the
// leader waits in the admission queue.
type cwave struct {
	members []*cmember
}

// coalescer tracks the open groups and the coalescing metrics.
type coalescer struct {
	s        *Server
	maxBatch int

	mu     sync.Mutex
	groups map[string]*cwave

	// coalesced counts requests that shared their wave with at least
	// one sibling; attempts counts every request that took the batched
	// path. rate publishes 100·coalesced/attempts — the share of
	// batch-path requests that actually amortized a call.
	coalesced *obs.Counter
	attempts  *obs.Counter
	rate      *obs.Gauge
	waveSize  *obs.Histogram
}

func newCoalescer(s *Server, maxBatch int) *coalescer {
	return &coalescer{
		s:         s,
		maxBatch:  maxBatch,
		groups:    map[string]*cwave{},
		coalesced: s.reg.Counter("requests_coalesced"),
		attempts:  s.reg.Counter("coalesce_attempts"),
		rate:      s.reg.Gauge("coalesce_rate_pct"),
		waveSize:  s.reg.Histogram("coalesce_batch_size", obs.BatchBuckets),
	}
}

// eligible reports whether a request can ride a coalesced wave, and the
// parsed layout when it can: a named (plan-cacheable) operand in a
// recursive layout, with the plan cache and coalescing enabled, and an
// algorithm that parses (so the wave-wide algorithm choice is sound).
// Ineligible requests fall through to the single-call path, which also
// owns reporting any parse errors.
func (co *coalescer) eligible(req *Request) (recmat.Layout, bool) {
	if co == nil || co.maxBatch < 2 {
		return 0, false
	}
	if req.AName == "" || co.s.cfg.PlanCacheBytes <= 0 || req.Layout == "" {
		return 0, false
	}
	lay, err := recmat.ParseLayout(req.Layout)
	if err != nil || lay == recmat.ColMajor || lay == recmat.RowMajor {
		return 0, false
	}
	if req.Alg != "" {
		if _, err := recmat.ParseAlgorithm(req.Alg); err != nil {
			return 0, false
		}
	}
	return lay, true
}

// coalesceKey is the wave-compatibility key: the plan-cache key, which
// already ends in the resolved algorithm — two requests spelling the
// same choice differently ("auto" resolving to winograd vs explicit
// "winograd") share a wave. Per-member knobs (n within the partner
// bucket, B and C seeds, scalars, deadline) stay out of the key.
func coalesceKey(req *Request, lay recmat.Layout, alg recmat.Algorithm) string {
	return planKey(req, lay, alg)
}

// do runs one request through the coalescing path and blocks until its
// wave settles it. The member's handler keeps its own gate entry and
// quota reservation; only the leader touches the admission queue.
func (co *coalescer) do(rctx context.Context, req *Request, budget int64, lay recmat.Layout, rs *reqState) (*Response, error) {
	m := &cmember{req: req, budget: budget, rctx: rctx, done: make(chan struct{}), rs: rs, joined: time.Now()}
	alg, err := resolveReqAlg(req, lay)
	if err != nil {
		return nil, err
	}
	key := coalesceKey(req, lay, alg)
	co.mu.Lock()
	if g := co.groups[key]; g != nil && len(g.members) < co.maxBatch {
		g.members = append(g.members, m)
		co.mu.Unlock()
		<-m.done
		return m.resp, m.err
	}
	// No open group (or the open one is full): this request leads. A
	// full group stays in flight on its own; the map slot passes to the
	// new group, so the old leader's delete-if-still-mine is a no-op.
	g := &cwave{members: []*cmember{m}}
	co.groups[key] = g
	co.mu.Unlock()
	co.lead(key, g, lay)
	<-m.done
	return m.resp, m.err
}

// lead is the leader's side: wait for an execution slot (the batching
// window), close the group, and execute the wave. Every member is
// settled on every path — including a panic anywhere in the leader's
// frame, which must not strand joiners on their done channels.
func (co *coalescer) lead(key string, g *cwave, lay recmat.Layout) {
	var members []*cmember
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: coalesced wave panicked: %v", r)
			co.mu.Lock()
			if co.groups[key] == g {
				delete(co.groups, key)
			}
			if members == nil {
				members = g.members
			}
			co.mu.Unlock()
			for _, m := range members {
				co.settle(m, nil, err)
			}
		}
	}()
	release, wait, err := co.s.adm.acquire(co.s.drainCtx)
	co.mu.Lock()
	if co.groups[key] == g {
		delete(co.groups, key)
	}
	members = g.members
	co.mu.Unlock()
	if err != nil {
		// Shed or draining: the whole group was refused admission; every
		// member reports the same typed cause.
		for _, m := range members {
			co.settle(m, nil, err)
		}
		return
	}
	defer release()
	if len(members) == 1 {
		co.solo(members[0], wait)
		return
	}
	co.executeWave(lay, members, wait)
}

// solo runs a group that stayed a group of one — the idle-server case,
// where the leader's acquire returned before anyone could join —
// through the same single-call compute path as a non-coalescable
// request. A wave of one would pay the batch bookkeeping (wave
// context, per-item plumbing, workspace setup) for nothing; this keeps
// the batched path strictly free when there is nothing to batch.
func (co *coalescer) solo(m *cmember, queueWait time.Duration) {
	s := co.s
	co.attempts.Inc()
	co.waveSize.Observe(1)
	if t := co.attempts.Value(); t > 0 {
		co.rate.Set(100 * co.coalesced.Value() / t)
	}
	// Same context geometry as the single-call handler: client
	// disconnect + drain + min(client deadline, server cap).
	ctx, cancel := context.WithCancelCause(m.rctx)
	defer cancel(nil)
	stopLink := context.AfterFunc(s.drainCtx, func() { cancel(ErrDraining) })
	defer stopLink()
	deadline := s.cfg.DefaultDeadline
	if m.req.DeadlineMS > 0 {
		deadline = time.Duration(m.req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	tctx, tcancel := context.WithTimeout(ctx, deadline)
	defer tcancel()
	m.rs.phaseAt(obs.PhaseQueue, obs.KindQueueWait, time.Now().Add(-queueWait), queueWait)
	resp, err := s.compute(tctx, m.req, m.budget, m.rs)
	if err != nil {
		co.settle(m, nil, err)
		return
	}
	resp.QueueNS = queueWait.Nanoseconds()
	co.settle(m, resp, nil)
}

// settle delivers one member's outcome exactly once.
func (co *coalescer) settle(m *cmember, resp *Response, err error) {
	select {
	case <-m.done:
		return // already settled
	default:
	}
	m.resp, m.err = resp, err
	close(m.done)
}

// executeWave materializes every member's operands, applies each
// member's own deadline, and runs ONE batched engine call against the
// shared cached plan. Wave-level failures (plan build, admission
// rejection inside the engine, drain) settle every member with the same
// typed cause; per-member failures (expiry, disconnect, a fault
// injected into one member's materialization) settle only that member.
func (co *coalescer) executeWave(lay recmat.Layout, members []*cmember, queueWait time.Duration) {
	req0 := members[0].req

	// Attribution: each member's gather phase runs from its join to the
	// wave's start. For a wave member the admission wait IS the batching
	// window (the leader queued on everyone's behalf), so gather subsumes
	// it and PhaseQueue stays 0 — phases remain disjoint. Response.QueueNS
	// still reports the shared admission wait below.
	waveStart := time.Now()
	for _, m := range members {
		m.rs.phaseAt(obs.PhaseGather, obs.KindGather, m.joined, waveStart.Sub(m.joined))
	}

	// The wave's own lifetime: detached from any single member (a
	// leader whose client disconnects must not abort its siblings),
	// cancelled only by drain.
	wctx, wcancel := context.WithCancelCause(context.Background())
	defer wcancel(nil)
	stopLink := context.AfterFunc(co.s.drainCtx, func() { wcancel(ErrDraining) })
	defer stopLink()

	alg, err := resolveReqAlg(req0, lay)
	if err != nil {
		co.settleAll(members, err)
		return
	}
	// One engine call, one MemBudget: the most constrained member's, so
	// no member's quota is overrun by the wave it happened to join.
	budget := members[0].budget
	for _, m := range members[1:] {
		if m.budget < budget {
			budget = m.budget
		}
	}
	opts := &recmat.Options{Layout: lay, Algorithm: alg, MemBudget: budget}

	ent, err := co.s.plans.acquire(planKey(req0, lay, alg), func() (*recmat.Plan, error) {
		pa := seededMat(req0.M, req0.K, req0.ASeed)
		popts := *opts
		popts.PartnerDim = partnerBucket(req0.N)
		p, perr := co.s.eng.Prepack(pa, false, &popts)
		if perr == nil {
			freeMat(pa) // the plan holds its own packed copy
		}
		return p, perr
	})
	if err != nil {
		co.settleAll(members, err)
		return
	}
	defer co.s.plans.release(ent)

	// Per-member materialization under its own recover: one member's
	// panic (the serve.compute fault hook fires here) settles that
	// member alone and keeps it out of the wave.
	items := make([]recmat.PrepackedGEMMBatchItem, 0, len(members))
	idx := make([]int, 0, len(members))
	Cs := make([]*recmat.Matrix, len(members))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			// Poisoned buffers go to the GC, not the pool; the leader's
			// recover settles the members.
			panic(r)
		}
		// Every member is settled (responses hold copies) before this
		// runs; the wave's operands can be recycled.
		for j := range items {
			freeMat(items[j].B)
		}
		for _, C := range Cs {
			freeMat(C)
		}
	}()
	for i, m := range members {
		func() {
			defer func() {
				if r := recover(); r != nil {
					co.settle(m, nil, fmt.Errorf("serve: compute panicked: %v", r))
				}
			}()
			faultinject.Point("serve.compute")
			B := seededMat(m.req.K, m.req.N, m.req.BSeed)
			var C *recmat.Matrix
			if m.req.CSeed != 0 {
				C = seededMat(m.req.M, m.req.N, m.req.CSeed)
			} else {
				C = zeroMat(m.req.M, m.req.N)
			}
			deadline := co.s.cfg.DefaultDeadline
			if m.req.DeadlineMS > 0 {
				deadline = time.Duration(m.req.DeadlineMS) * time.Millisecond
			}
			if deadline > co.s.cfg.MaxDeadline {
				deadline = co.s.cfg.MaxDeadline
			}
			ictx, icancel := context.WithTimeout(m.rctx, deadline)
			cancels = append(cancels, icancel)
			Cs[i] = C
			items = append(items, recmat.PrepackedGEMMBatchItem{
				Alpha: m.req.alpha(), Beta: m.req.Beta, B: B, C: C, Ctx: ictx,
				TraceID: m.trace(),
			})
			idx = append(idx, i)
		}()
	}

	size := len(members)
	co.attempts.Add(int64(size))
	if size > 1 {
		co.coalesced.Add(int64(size))
	}
	co.waveSize.Observe(float64(size))
	if t := co.attempts.Value(); t > 0 {
		co.rate.Set(100 * co.coalesced.Value() / t)
	}

	if len(items) > 0 {
		tCall := time.Now()
		bs, errs, werr := co.s.eng.GEMMPrepackedBatch(wctx, ent.Plan(), items, opts)
		wall := time.Since(tCall)
		if werr != nil {
			for _, i := range idx {
				co.settle(members[i], nil, werr)
			}
		} else {
			// Wave times are shared; report each member's share so
			// summed client-side compute time still means something.
			per := int64(1)
			if bs.Completed > 0 {
				per = int64(bs.Completed)
			}
			for j, i := range idx {
				m := members[i]
				if errs[j] != nil {
					co.settle(m, nil, errs[j])
					continue
				}
				// The ledger records the SHARED wave compute wall (every
				// member the same value — the wave is indivisible evidence),
				// unlike the response's amortized per-member share below.
				m.rs.phase(obs.PhaseCompute, bs.Compute)
				if m.rs != nil && m.rs.tr != nil {
					m.rs.tr.LaneSpan(m.rs.lane, obs.KindCompute, tCall, wall, 0)
				}
				resp := &Response{
					Tenant: m.req.Tenant, M: m.req.M, K: m.req.K, N: m.req.N,
					AlgRan:     bs.Alg.String(),
					Kernel:     bs.Kernel,
					Degraded:   bs.Degraded,
					PlanCached: true,
					Coalesced:  size > 1,
					BatchSize:  size,
					QueueNS:    queueWait.Nanoseconds(),
					ComputeNS:  bs.Compute.Nanoseconds() / per,
					TotalNS:    bs.Total().Nanoseconds() / per,
					CNorm:      norm1(Cs[i]),
				}
				if m.req.ReturnData && m.req.M*m.req.N <= co.s.cfg.MaxReturnElems {
					C := Cs[i]
					resp.Data = make([]float64, 0, m.req.M*m.req.N)
					for c := 0; c < C.Cols; c++ {
						resp.Data = append(resp.Data, C.Data[c*C.Stride:c*C.Stride+C.Rows]...)
					}
				}
				co.settle(m, resp, nil)
			}
		}
	}
	// Members that never made it into the wave (materialization panic)
	// were settled in place; this is the backstop for any stragglers.
	co.settleAll(members, fmt.Errorf("serve: coalesced member never executed"))
}

// settleAll settles every not-yet-settled member with err.
func (co *coalescer) settleAll(members []*cmember, err error) {
	for _, m := range members {
		co.settle(m, nil, err)
	}
}
