package serve

import (
	"math/bits"
	"sync"

	recmat "repro"
)

// Operand recycling for the request path. A saturated daemon
// materializes two or three small matrices per request from seeds and
// drops them the moment the response is built — at thousands of
// requests per second that is the dominant source of garbage on the
// serving box. Buffers are pooled in power-of-two element classes and
// wrapped as contiguous (Stride == Rows) matrices; anything larger
// than the top class, or any matrix the pool didn't produce, is left
// to the garbage collector.

const matPoolMaxClass = 22 // 4Mi elements (32 MiB per buffer)

var matPool [matPoolMaxClass + 1]sync.Pool

// getMatBuf returns a recycled (or fresh) buffer of exactly n elements
// with pooled capacity, or nil when n is above the pooled classes.
// Contents are unspecified — callers overwrite or zero it.
func getMatBuf(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if c > matPoolMaxClass {
		return nil
	}
	if v := matPool[c].Get(); v != nil {
		return v.([]float64)[:n]
	}
	return make([]float64, 1<<c)[:n]
}

// seededMat materializes an m×n operand from seed, recycling a pooled
// buffer when one fits. Values are identical to recmat.RandomSeeded.
func seededMat(m, n int, seed int64) *recmat.Matrix {
	buf := getMatBuf(m * n)
	if buf == nil {
		return recmat.RandomSeeded(m, n, seed)
	}
	recmat.SeedFill(buf, seed)
	return &recmat.Matrix{Rows: m, Cols: n, Stride: max(m, 1), Data: buf}
}

// zeroMat returns a zeroed m×n matrix, recycling a pooled buffer when
// one fits.
func zeroMat(m, n int) *recmat.Matrix {
	buf := getMatBuf(m * n)
	if buf == nil {
		return recmat.NewMatrix(m, n)
	}
	clear(buf)
	return &recmat.Matrix{Rows: m, Cols: n, Stride: max(m, 1), Data: buf}
}

// freeMat returns a matrix's buffer to the pool. Safe on nil and on
// matrices the pool didn't produce (views, oversized, odd strides) —
// those are simply left to the GC. The caller must not touch the
// matrix afterwards.
func freeMat(a *recmat.Matrix) {
	if a == nil || a.Stride != max(a.Rows, 1) || cap(a.Data) == 0 {
		return
	}
	c := bits.Len(uint(cap(a.Data))) - 1 // largest class fully backed
	if c > matPoolMaxClass || a.Rows*a.Cols > 1<<c {
		return
	}
	matPool[c].Put(a.Data[:1<<c])
}
