package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	recmat "repro"
	"repro/internal/faultinject"
)

// refGEMM computes the request's expected C column-major data and its
// entrywise 1-norm by brute force from the seeds.
func refGEMM(req *Request) ([]float64, float64) {
	A := recmat.RandomSeeded(req.M, req.K, req.ASeed)
	B := recmat.RandomSeeded(req.K, req.N, req.BSeed)
	var C *recmat.Matrix
	if req.CSeed != 0 {
		C = recmat.RandomSeeded(req.M, req.N, req.CSeed)
	} else {
		C = recmat.NewMatrix(req.M, req.N)
	}
	want := make([]float64, 0, req.M*req.N)
	var norm float64
	for j := 0; j < req.N; j++ {
		for i := 0; i < req.M; i++ {
			var dot float64
			for p := 0; p < req.K; p++ {
				dot += A.At(i, p) * B.At(p, j)
			}
			v := req.alpha()*dot + req.Beta*C.At(i, j)
			want = append(want, v)
			norm += math.Abs(v)
		}
	}
	return want, norm
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// batchReq builds one coalescable request: named operand, recursive
// layout, width inside one partner bucket.
func batchReq(i int) *Request {
	return &Request{
		Tenant: "acme", M: 96, K: 96, N: 17 + i%8,
		AName: "w", ASeed: 5, BSeed: int64(100 + i),
		Layout: "z", DeadlineMS: 5000, ReturnData: true,
	}
}

// TestCoalescingUnderConcurrency: with the single execution slot held,
// concurrent requests hashing to the same plan-cache entry pile into
// coalescing groups; releasing the slot runs them as batched engine
// calls. Every response must be bit-correct against a brute-force
// reference, carry the coalescing markers, and move the coalescing
// metrics.
func TestCoalescingUnderConcurrency(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, MaxInflight: 1, QueueDepth: 64, MaxQueueWait: 5 * time.Second})

	// Occupy the only execution slot so every request must queue — the
	// deterministic batching window.
	release, _, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	reqs := make([]*Request, n)
	resps := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		reqs[i] = batchReq(i)
		if i%3 == 0 {
			reqs[i].CSeed = int64(i + 1)
			reqs[i].Beta = 0.5
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.Do(context.Background(), reqs[i])
		}(i)
	}

	// 12 same-key requests against maxBatch=8 form exactly two groups:
	// one full wave of 8 (displaced from the map once full) and one of 4
	// still open, i.e. two leaders in the queue. Wait for that exact end
	// state — the queue gauge alone hits 2 before the last joiners have
	// arrived.
	lay, _ := recmat.ParseLayout("z")
	alg, _ := resolveReqAlg(reqs[0], lay)
	key := coalesceKey(reqs[0], lay, alg)
	waitFor(t, "both waves fully formed", func() bool {
		s.co.mu.Lock()
		open := s.co.groups[key]
		members := 0
		if open != nil {
			members = len(open.members)
		}
		s.co.mu.Unlock()
		return members == n-s.co.maxBatch && s.reg.Gauge("queue_depth").Value() == 2
	})
	release()
	wg.Wait()

	coalesced := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		resp := resps[i]
		if !resp.PlanCached {
			t.Errorf("request %d: not plan-cached", i)
		}
		if resp.Coalesced {
			coalesced++
			if resp.BatchSize < 2 {
				t.Errorf("request %d: coalesced with batch size %d", i, resp.BatchSize)
			}
		}
		want, norm := refGEMM(reqs[i])
		if len(resp.Data) != len(want) {
			t.Fatalf("request %d: data length %d, want %d", i, len(resp.Data), len(want))
		}
		for idx := range want {
			if math.Abs(resp.Data[idx]-want[idx]) > 1e-10 {
				t.Fatalf("request %d: C[%d] = %g, want %g", i, idx, resp.Data[idx], want[idx])
			}
		}
		if math.Abs(resp.CNorm-norm) > 1e-9*math.Max(norm, 1) {
			t.Fatalf("request %d: CNorm = %g, want %g", i, resp.CNorm, norm)
		}
	}
	if coalesced != n {
		t.Errorf("coalesced responses = %d, want %d (both waves had ≥2 members)", coalesced, n)
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters["requests_coalesced"] < int64(n) {
		t.Errorf("requests_coalesced = %d, want ≥ %d", snap.Counters["requests_coalesced"], n)
	}
	if h := snap.Histograms["coalesce_batch_size"]; h.Count < 2 {
		t.Errorf("coalesce_batch_size observations = %d, want ≥ 2", h.Count)
	}
	if snap.Gauges["coalesce_rate_pct"] == 0 {
		t.Error("coalesce_rate_pct gauge is zero after coalesced waves")
	}
	if snap.Counters["gemm_batch_calls"] == 0 {
		t.Error("engine recorded no batched calls")
	}
}

// TestCoalesceMemberCancelIsolation: a member whose client disconnects
// while its wave is queued is dropped from the wave with a typed error
// — and its siblings complete correctly. The expired member must not
// poison the wave.
func TestCoalesceMemberCancelIsolation(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, MaxInflight: 1, QueueDepth: 64, MaxQueueWait: 5 * time.Second})

	release, _, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	const doomed = 2
	reqs := make([]*Request, n)
	resps := make([]*Response, n)
	errs := make([]error, n)
	dctx, dcancel := context.WithCancel(context.Background())
	defer dcancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		reqs[i] = batchReq(i)
		ctx := context.Background()
		if i == doomed {
			ctx = dctx
		}
		wg.Add(1)
		go func(i int, ctx context.Context) {
			defer wg.Done()
			resps[i], errs[i] = c.Do(ctx, reqs[i])
		}(i, ctx)
	}

	lay, _ := recmat.ParseLayout("z")
	alg, _ := resolveReqAlg(reqs[0], lay)
	key := coalesceKey(reqs[0], lay, alg)
	waitFor(t, "the wave to gather all members", func() bool {
		s.co.mu.Lock()
		defer s.co.mu.Unlock()
		g := s.co.groups[key]
		return g != nil && len(g.members) == n
	})
	// Disconnect the doomed member's client, then let the wave run.
	dcancel()
	waitFor(t, "one wave leader queued", func() bool {
		return s.reg.Gauge("queue_depth").Value() == 1
	})
	release()
	wg.Wait()

	for i := 0; i < n; i++ {
		if i == doomed {
			if errs[i] == nil {
				t.Fatal("doomed member's request did not fail")
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("sibling %d poisoned by the cancelled member: %v", i, errs[i])
		}
		want, _ := refGEMM(reqs[i])
		for idx := range want {
			if math.Abs(resps[i].Data[idx]-want[idx]) > 1e-10 {
				t.Fatalf("sibling %d: C[%d] = %g, want %g", i, idx, resps[i].Data[idx], want[idx])
			}
		}
	}
}

// TestCoalesceFaultInjectionTyped: under injected panics and delays,
// every coalesced-path request either succeeds with a verifiable result
// or fails with a typed error — no hangs, no untyped 500s from escaped
// panics, and the server still drains cleanly (the cleanup asserts it).
func TestCoalesceFaultInjectionTyped(t *testing.T) {
	// The panic probability is per injection point, and the engine fires
	// one per leaf task — survival compounds, so keep it at chaos-soak
	// scale rather than anything that looks per-request.
	faultinject.Configure(faultinject.Config{PanicProb: 0.004, DelayProb: 0.05, Delay: time.Millisecond, Seed: 23})
	defer faultinject.Disable()
	_, c := newTestServer(t, Config{Workers: 2, MaxInflight: 2, QueueDepth: 64, MaxQueueWait: 5 * time.Second})

	const n = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, failed := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := batchReq(i)
			resp, err := c.Do(context.Background(), req)
			if err != nil {
				var apiErr *APIError
				if !errors.As(err, &apiErr) {
					t.Errorf("request %d: untyped failure: %v", i, err)
					return
				}
				switch apiErr.Info.Kind {
				case KindInternal, KindShed, KindQuota, KindDeadline, KindCanceled, KindDraining:
				default:
					t.Errorf("request %d: unexpected error kind %q: %v", i, apiErr.Info.Kind, err)
				}
				mu.Lock()
				failed++
				mu.Unlock()
				return
			}
			_, norm := refGEMM(req)
			if math.Abs(resp.CNorm-norm) > 1e-9*math.Max(norm, 1) {
				t.Errorf("request %d: CNorm = %g, want %g", i, resp.CNorm, norm)
			}
			mu.Lock()
			ok++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no request succeeded under fault injection")
	}
	t.Logf("fault injection: %d ok, %d typed failures", ok, failed)
}

// TestDrainDuringCoalesce: a drain that fires while a coalescing group
// is still gathering (its leader queued, no slot available) must settle
// every member with the typed draining error and complete — the
// drain-during-coalesce regression.
func TestDrainDuringCoalesce(t *testing.T) {
	s, c := newTestServer(t, Config{
		Workers: 2, MaxInflight: 1, QueueDepth: 64,
		MaxQueueWait: 10 * time.Second, DrainTimeout: 100 * time.Millisecond,
	})

	release, _, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	const n = 5
	errs := make([]error, n)
	var wg sync.WaitGroup
	reqs := make([]*Request, n)
	for i := 0; i < n; i++ {
		reqs[i] = batchReq(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do(context.Background(), reqs[i])
		}(i)
	}
	lay, _ := recmat.ParseLayout("z")
	alg, _ := resolveReqAlg(reqs[0], lay)
	key := coalesceKey(reqs[0], lay, alg)
	waitFor(t, "the wave to gather all members", func() bool {
		s.co.mu.Lock()
		defer s.co.mu.Unlock()
		g := s.co.groups[key]
		return g != nil && len(g.members) == n
	})

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			t.Fatalf("member %d succeeded during drain", i)
		}
		if !errors.Is(errs[i], ErrDraining) {
			t.Fatalf("member %d: error is not the typed draining kind: %v", i, errs[i])
		}
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain wedged with a coalescing group open")
	}
}
