package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// LoadGen is a closed-loop multi-tenant load generator for a recmatd
// daemon: each of Concurrency workers loops submit → wait → submit,
// so offered load self-regulates to the daemon's capacity while still
// overrunning it when Concurrency exceeds the admission limit — the
// regime the backpressure machinery exists for. Shapes, tenants, and
// seeds are drawn deterministically from Seed, so a soak run is
// reproducible.
type LoadGen struct {
	Client *Client
	// Tenants is the number of synthetic tenants (default 4); worker i
	// drives tenant "t<i mod Tenants>".
	Tenants int
	// Concurrency is the number of closed-loop workers (default 8).
	Concurrency int
	// MaxDim bounds generated m, k, n (default 256); dims are drawn
	// log-uniformly in [16, MaxDim] so small and large shapes both occur.
	MaxDim int
	// NamedFrac is the fraction of requests using a named (plan-cached)
	// A operand, drawn from NamedOperands distinct names per tenant
	// (defaults 0.5 and 4).
	NamedFrac     float64
	NamedOperands int
	// DeadlineMS is the per-request client deadline sent to the server
	// (default 2000).
	DeadlineMS int64
	// Seed makes the run reproducible (default 1).
	Seed int64
	// Workload selects the request mix: "" or "mixed" is the broad
	// log-uniform multi-tenant mix; "batch" is the coalescing workload —
	// every request names one of a few fixed small operands in a
	// recursive layout with a skinny right-hand side in a single partner
	// bucket, so concurrent requests hash to the same plan-cache entries
	// and the daemon's request coalescer can merge them into batched
	// engine calls.
	Workload string
	// OnResult, when non-nil, observes every completed attempt
	// (concurrently; must be goroutine-safe).
	OnResult func(Result)
}

// Result is one completed request from the generator's perspective.
type Result struct {
	Tenant  string
	M, K, N int
	Req     *Request // the full spec, for result-consistency checks
	Latency time.Duration
	Err     error // nil on success; *APIError, context, or transport error
	Resp    *Response
}

// Summary aggregates a load-generation run; Percentile and String make
// it directly usable by cmd/loadgen and the benchmark sweep.
type Summary struct {
	Duration time.Duration `json:"duration_seconds_ns"`
	Total    int           `json:"total"`
	OK       int           `json:"ok"`
	// Failure counts by error kind (shed, quota, deadline, ...);
	// transport/context failures count under "transport".
	Failed map[string]int `json:"failed,omitempty"`
	// Degraded counts successful responses that ran on a degradation
	// rung; PlanCached counts successes served from the plan cache;
	// Coalesced counts successes that shared a batched engine call with
	// at least one sibling request.
	Degraded   int `json:"degraded"`
	PlanCached int `json:"plan_cached"`
	Coalesced  int `json:"coalesced"`
	// Attribution is the per-phase latency breakdown aggregated from the
	// servers' Response.Timing objects (keyed by phase name), answering
	// "where did the run's latency go" server-side — queue vs gather vs
	// compute — independent of client-observed wall time.
	Attribution map[string]PhaseAttribution `json:"attribution,omitempty"`

	latencies []time.Duration            // successful requests only
	phases    map[string][]time.Duration // per-phase server-side durations
}

// PhaseAttribution aggregates one server-side phase across the run's
// successful responses. Share is this phase's fraction of all
// attributed time (the shares sum to 1 across phases).
type PhaseAttribution struct {
	MeanNS int64   `json:"mean_ns"`
	P99NS  int64   `json:"p99_ns"`
	Share  float64 `json:"share"`
}

// timingPhases flattens a response's timing object into named phases;
// zero phases are dropped (a non-coalesced request has no gather, a
// batched wave no pack/unpack).
func timingPhases(tm *Timing) map[string]int64 {
	if tm == nil {
		return nil
	}
	out := map[string]int64{}
	for _, p := range [...]struct {
		name string
		ns   int64
	}{
		{"queue", tm.QueueNS}, {"gather", tm.GatherNS}, {"pack", tm.PackNS},
		{"compute", tm.ComputeNS}, {"unpack", tm.UnpackNS},
	} {
		if p.ns > 0 {
			out[p.name] = p.ns
		}
	}
	return out
}

// finalizeAttribution folds the collected per-phase samples into the
// Attribution map. Called once, after the workers stop.
func (s *Summary) finalizeAttribution() {
	if len(s.phases) == 0 {
		return
	}
	var grand time.Duration
	sums := map[string]time.Duration{}
	for name, ds := range s.phases {
		for _, d := range ds {
			sums[name] += d
		}
		grand += sums[name]
	}
	s.Attribution = make(map[string]PhaseAttribution, len(s.phases))
	for name, ds := range s.phases {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var share float64
		if grand > 0 {
			share = float64(sums[name]) / float64(grand)
		}
		s.Attribution[name] = PhaseAttribution{
			MeanNS: int64(sums[name]) / int64(len(ds)),
			P99NS:  int64(ds[int(0.99*float64(len(ds)-1))]),
			Share:  share,
		}
	}
}

// QPS is successful requests per second over the run.
func (s *Summary) QPS() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.OK) / s.Duration.Seconds()
}

// ShedRate is the fraction of attempts rejected with the shed kind.
func (s *Summary) ShedRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Failed[KindShed]) / float64(s.Total)
}

// Percentile returns the p-th latency percentile (p in [0,100]) of
// successful requests, 0 if none.
func (s *Summary) Percentile(p float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
	idx := int(p / 100 * float64(len(s.latencies)-1))
	return s.latencies[idx]
}

// CoalesceRate is the fraction of successful requests that shared a
// batched engine call.
func (s *Summary) CoalesceRate() float64 {
	if s.OK == 0 {
		return 0
	}
	return float64(s.Coalesced) / float64(s.OK)
}

func (s *Summary) String() string {
	base := fmt.Sprintf("total=%d ok=%d failed=%v qps=%.1f shed=%.1f%% p50=%v p99=%v degraded=%d cached=%d coalesced=%d",
		s.Total, s.OK, s.Failed, s.QPS(), 100*s.ShedRate(),
		s.Percentile(50), s.Percentile(99), s.Degraded, s.PlanCached, s.Coalesced)
	if len(s.Attribution) > 0 {
		names := make([]string, 0, len(s.Attribution))
		for n := range s.Attribution {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return s.Attribution[names[i]].Share > s.Attribution[names[j]].Share })
		base += " attr["
		for i, n := range names {
			if i > 0 {
				base += " "
			}
			base += fmt.Sprintf("%s=%.0f%%", n, 100*s.Attribution[n].Share)
		}
		base += "]"
	}
	return base
}

// Run drives the daemon until ctx ends and returns the aggregate.
func (g *LoadGen) Run(ctx context.Context) *Summary {
	tenants := g.Tenants
	if tenants <= 0 {
		tenants = 4
	}
	conc := g.Concurrency
	if conc <= 0 {
		conc = 8
	}
	maxDim := g.MaxDim
	if maxDim <= 0 {
		maxDim = 256
	}
	namedFrac := g.NamedFrac
	if namedFrac == 0 {
		namedFrac = 0.5
	}
	namedOps := g.NamedOperands
	if namedOps <= 0 {
		namedOps = 4
	}
	deadlineMS := g.DeadlineMS
	if deadlineMS <= 0 {
		deadlineMS = 2000
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}

	sum := &Summary{Failed: map[string]int{}, phases: map[string][]time.Duration{}}
	var mu sync.Mutex
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			tenant := fmt.Sprintf("t%d", w%tenants)
			for ctx.Err() == nil {
				var req *Request
				if g.Workload == "batch" {
					req = g.genBatchRequest(rng, tenant, maxDim, deadlineMS)
				} else {
					req = g.genRequest(rng, tenant, maxDim, namedFrac, namedOps, deadlineMS)
				}
				rt0 := time.Now()
				resp, err := g.Client.Do(ctx, req)
				res := Result{
					Tenant: tenant, M: req.M, K: req.K, N: req.N, Req: req,
					Latency: time.Since(rt0), Err: err, Resp: resp,
				}
				if g.OnResult != nil {
					g.OnResult(res)
				}
				mu.Lock()
				sum.Total++
				if err == nil {
					sum.OK++
					sum.latencies = append(sum.latencies, res.Latency)
					if len(resp.Degraded) > 0 {
						sum.Degraded++
					}
					if resp.PlanCached {
						sum.PlanCached++
					}
					if resp.Coalesced {
						sum.Coalesced++
					}
					for name, ns := range timingPhases(resp.Timing) {
						sum.phases[name] = append(sum.phases[name], time.Duration(ns))
					}
				} else {
					sum.Failed[failKind(err)]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	sum.Duration = time.Since(t0)
	sum.finalizeAttribution()
	return sum
}

// genRequest draws one request: log-uniform dims, a mix of named
// (plan-cacheable) and anonymous operands, occasional β ≠ 0 and
// recursive layouts — broad enough to exercise every server path.
func (g *LoadGen) genRequest(rng *rand.Rand, tenant string, maxDim int, namedFrac float64, namedOps int, deadlineMS int64) *Request {
	logDim := func() int {
		lo, hi := 4.0, logBase2(maxDim) // dims in [16, maxDim]
		return 1 << int(lo+rng.Float64()*(hi-lo))
	}
	req := &Request{
		Tenant:     tenant,
		M:          logDim(),
		K:          logDim(),
		N:          logDim(),
		ASeed:      int64(rng.Intn(64) + 1),
		BSeed:      int64(rng.Intn(1 << 20)),
		DeadlineMS: deadlineMS,
	}
	if rng.Float64() < namedFrac {
		// Named operands repeat (few names, few seeds) so the plan cache
		// sees hits; the seed is derived from the name for determinism.
		id := rng.Intn(namedOps)
		req.AName = fmt.Sprintf("w%d", id)
		req.ASeed = int64(id + 1)
		req.Layout = "z" // recursive layout: the prepack-friendly path
	}
	if rng.Float64() < 0.25 {
		req.CSeed = int64(rng.Intn(1<<20) + 1)
		req.Beta = 0.5
	}
	return req
}

// genBatchRequest draws one coalescing-workload request: every request
// names one of two fixed square operands in the Z-Morton layout — 256×256,
// scaled down to the largest power of two within MaxDim (floor 32, so the
// skinny widths below always fit a daemon's accept limit) — with a
// right-hand side whose width stays inside one partner bucket
// (17..32 → bucket 32). Concurrent workers on the same tenant therefore
// hash to only two plan-cache keys, the shape the daemon's request
// coalescer merges into batched engine calls under queueing.
func (g *LoadGen) genBatchRequest(rng *rand.Rand, tenant string, maxDim int, deadlineMS int64) *Request {
	dim := 256
	for dim > 32 && dim > maxDim {
		dim >>= 1
	}
	id := rng.Intn(2)
	return &Request{
		Tenant:     tenant,
		M:          dim,
		K:          dim,
		N:          17 + rng.Intn(16), // one partner bucket: [17, 32]
		AName:      fmt.Sprintf("bw%d", id),
		ASeed:      int64(id + 1),
		BSeed:      int64(rng.Intn(1 << 20)),
		Layout:     "z",
		DeadlineMS: deadlineMS,
	}
}

func logBase2(n int) float64 {
	b := 0.0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// failKind maps an attempt error to a Summary.Failed key.
func failKind(err error) string {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Info.Kind
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return "context"
	}
	return "transport"
}
