package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file is the request-scoped observability spine of the daemon:
// correlation-ID extraction, the per-request phase ledger, request
// lanes in the active trace, the timing object and Server-Timing
// header on the wire, and the single finish path every request —
// success or typed failure — funnels through. The serving question the
// driver's per-call tracer cannot answer is "where did THIS request's
// p99 go, and which wave did it ride"; a reqState answers it.

// reqState carries one request's observability identity through the
// handler: its correlation id (wire-visible), its trace serial (the
// int64 join key inside the trace), the ledger being filled, and the
// request lane when a tracer is active.
type reqState struct {
	id    string
	trace int64
	t0    time.Time
	tr    *obs.Tracer
	lane  int32
	led   obs.Ledger
}

// requestID extracts the inbound correlation id: X-Request-Id wins,
// then the trace-id field of a W3C traceparent header, then a
// server-generated id from the trace serial. Oversized or empty ids
// are replaced rather than trusted.
func requestID(r *http.Request, serial int64) string {
	if id := strings.TrimSpace(r.Header.Get("X-Request-Id")); id != "" && len(id) <= 128 {
		return id
	}
	// traceparent: version "-" trace-id "-" parent-id "-" flags
	if tp := r.Header.Get("traceparent"); tp != "" {
		parts := strings.Split(tp, "-")
		if len(parts) >= 3 && len(parts[1]) == 32 && parts[1] != strings.Repeat("0", 32) {
			return parts[1]
		}
	}
	return fmt.Sprintf("req-%08x", serial)
}

// startReq mints one request's observability state. The trace serial
// is allocated unconditionally (it is one atomic add); the lane only
// when a tracer is active.
func (s *Server) startReq(r *http.Request, req *Request) *reqState {
	rs := &reqState{
		trace: obs.NextTraceSerial(),
		t0:    time.Now(),
		tr:    obs.Cur(),
	}
	rs.id = requestID(r, rs.trace)
	if rs.tr != nil {
		rs.lane = rs.tr.NewRequestLane()
	}
	rs.led = obs.Ledger{
		ID:     rs.id,
		Trace:  rs.trace,
		Tenant: req.Tenant,
		Alg:    req.Alg,
		M:      req.M, K: req.K, N: req.N,
		Start: rs.t0,
	}
	return rs
}

// phase records a phase duration into the ledger only (no lane span) —
// used when the phase's wall interval overlaps another lane child and
// a span would break the lane's nesting.
func (rs *reqState) phase(p obs.ReqPhase, d time.Duration) {
	if rs == nil || d < 0 {
		return
	}
	rs.led.PhaseNS[p] += d.Nanoseconds()
}

// phaseAt records a phase duration and draws it as a child span on the
// request lane. Callers must keep phaseAt intervals sequential per
// request (the handler is, naturally).
func (rs *reqState) phaseAt(p obs.ReqPhase, k obs.Kind, start time.Time, d time.Duration) {
	if rs == nil || d < 0 {
		return
	}
	rs.led.PhaseNS[p] += d.Nanoseconds()
	if rs.tr != nil {
		rs.tr.LaneSpan(rs.lane, k, start, d, 0)
	}
}

// finish closes the ledger with its outcome, records it into the ring
// and the phase histograms, and emits the whole-request span (arg =
// trace serial, the flow exporter's join key).
func (s *Server) finishReq(rs *reqState, outcome string) {
	if rs == nil {
		return
	}
	total := time.Since(rs.t0)
	rs.led.Outcome = outcome
	rs.led.TotalNS = total.Nanoseconds()
	s.ledgers.Record(rs.led)
	for p := obs.ReqPhase(0); p < obs.NumReqPhases; p++ {
		if ns := rs.led.PhaseNS[p]; ns > 0 {
			s.phaseHist[p].Observe(float64(ns) / 1e9)
		}
	}
	if rs.tr != nil {
		rs.tr.LaneSpan(rs.lane, obs.KindRequest, rs.t0, total, rs.trace)
	}
}

// timing renders the ledger's attribution as the response's "timing"
// object. SerializeNS is absent: the body is encoded exactly once, so
// the encode cost lands in the ledger and histograms instead of the
// body it would have to be known before producing.
func (rs *reqState) timing() *Timing {
	return &Timing{
		QueueNS:   rs.led.PhaseNS[obs.PhaseQueue],
		GatherNS:  rs.led.PhaseNS[obs.PhaseGather],
		PackNS:    rs.led.PhaseNS[obs.PhasePack],
		ComputeNS: rs.led.PhaseNS[obs.PhaseCompute],
		UnpackNS:  rs.led.PhaseNS[obs.PhaseUnpack],
	}
}

// serverTiming renders the pre-write phases as a Server-Timing header
// value (milliseconds, per the header's spec).
func (rs *reqState) serverTiming() string {
	var b strings.Builder
	for p := obs.ReqPhase(0); p < obs.PhaseSerialize; p++ {
		if ns := rs.led.PhaseNS[p]; ns > 0 {
			if b.Len() > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s;dur=%.3f", p.String(), float64(ns)/1e6)
		}
	}
	if b.Len() > 0 {
		b.WriteString(", ")
	}
	fmt.Fprintf(&b, "total;dur=%.3f", float64(time.Since(rs.t0).Nanoseconds())/1e6)
	return b.String()
}

// okReq writes a success response: correlation headers, Server-Timing,
// the timing object, one measured encode, and the ledger close.
func (s *Server) okReq(w http.ResponseWriter, rs *reqState, resp *Response) {
	s.reqOK.Inc()
	resp.RequestID = rs.id
	resp.Timing = rs.timing()
	rs.led.Coalesced = resp.Coalesced
	rs.led.BatchSize = resp.BatchSize
	if resp.AlgRan != "" {
		rs.led.Alg = resp.AlgRan
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", rs.id)
	w.Header().Set("Server-Timing", rs.serverTiming())
	ts := time.Now()
	buf, err := json.Marshal(resp)
	if err != nil {
		// Should be unreachable (the response is plain data); fail typed
		// rather than writing a half body.
		s.writeError(w, http.StatusInternalServerError, KindInternal, "encoding response: "+err.Error(), 0)
		s.finishReq(rs, KindInternal)
		return
	}
	w.Write(buf)
	w.Write([]byte("\n"))
	rs.phaseAt(obs.PhaseSerialize, obs.KindSerialize, ts, time.Since(ts))
	s.finishReq(rs, "ok")
}

// failReq writes a typed error and still closes a complete ledger —
// a cancelled or shed request gets the same attribution treatment as
// a success, which is exactly when attribution matters most.
func (s *Server) failReq(w http.ResponseWriter, rs *reqState, err error) {
	kind, status, retryAfter := classify(err)
	s.reg.Counter("requests_failed_" + kind).Inc()
	if rs != nil {
		w.Header().Set("X-Request-Id", rs.id)
		w.Header().Set("Server-Timing", rs.serverTiming())
	}
	s.writeError(w, status, kind, err.Error(), retryAfter)
	s.finishReq(rs, kind)
}
