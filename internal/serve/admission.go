package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// admission is the daemon's global concurrency gate: a semaphore of
// MaxInflight execution slots fronted by a bounded queue with a bounded
// wait. A request either takes a slot immediately, waits in the queue
// until a slot opens (up to maxWait), or is shed with ErrShed — the
// backpressure contract that keeps the process's memory and latency
// bounded under overload instead of letting goroutines pile up.
type admission struct {
	sem      chan struct{}
	maxQueue int
	maxWait  time.Duration

	queued    *obs.Gauge     // queue_depth: requests waiting right now
	shed      *obs.Counter   // requests_shed: queue-full + wait-expired rejections
	queueWait *obs.Histogram // queue_wait_seconds of admitted requests
}

func newAdmission(maxInflight, maxQueue int, maxWait time.Duration, reg *obs.Registry) *admission {
	return &admission{
		sem:       make(chan struct{}, maxInflight),
		maxQueue:  maxQueue,
		maxWait:   maxWait,
		queued:    reg.Gauge("queue_depth"),
		shed:      reg.Counter("requests_shed"),
		queueWait: reg.Histogram("queue_wait_seconds", obs.SecondsBuckets),
	}
}

// acquire takes one execution slot, waiting in the bounded queue if
// none is free. It returns the release function and the time spent
// queued. Shedding (queue full, wait expired) returns ErrShed; a
// context that ends first returns the context error, so a client that
// disconnects while queued does not consume a slot.
func (a *admission) acquire(ctx context.Context) (release func(), wait time.Duration, err error) {
	select {
	case a.sem <- struct{}{}:
		a.queueWait.Observe(0)
		return a.release, 0, nil
	default:
	}
	// Slow path: queue, bounded in both depth and wait. The depth check
	// is approximate under concurrency (gauge read then increment), but
	// errs by at most the number of racing requests — the bound that
	// matters (no unbounded pile-up) holds regardless.
	if int(a.queued.Value()) >= a.maxQueue {
		a.shed.Inc()
		return nil, 0, fmt.Errorf("%w: admission queue full (%d waiting)", ErrShed, a.maxQueue)
	}
	a.queued.Inc()
	defer a.queued.Dec()
	t0 := time.Now()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		wait = time.Since(t0)
		a.queueWait.Observe(wait.Seconds())
		return a.release, wait, nil
	case <-timer.C:
		a.shed.Inc()
		return nil, time.Since(t0), fmt.Errorf("%w: no slot within %v", ErrShed, a.maxWait)
	case <-ctx.Done():
		return nil, time.Since(t0), fmt.Errorf("serve: abandoned admission queue: %w", context.Cause(ctx))
	}
}

func (a *admission) release() { <-a.sem }
