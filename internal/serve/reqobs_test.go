package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	recmat "repro"
	"repro/internal/obs"
)

// postWithHeaders issues one /v1/gemm request with extra headers and
// returns the decoded response plus the raw *http.Response (headers).
func postWithHeaders(t *testing.T, c *Client, req *Request, hdr map[string]string) (*Response, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/gemm", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", hresp.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp, hresp
}

// TestRequestIDAndTiming: the correlation id round-trips (inbound
// X-Request-Id, W3C traceparent trace-id, or server-generated), the
// response carries the phase-attribution timing object, Server-Timing
// is set, and the ledger ring holds the request under the same id.
func TestRequestIDAndTiming(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	req := &Request{Tenant: "t", M: 16, K: 16, N: 16, ASeed: 1, BSeed: 2}

	resp, hresp := postWithHeaders(t, c, req, map[string]string{"X-Request-Id": "corr-abc"})
	if resp.RequestID != "corr-abc" {
		t.Fatalf("RequestID = %q, want corr-abc", resp.RequestID)
	}
	if hresp.Header.Get("X-Request-Id") != "corr-abc" {
		t.Fatalf("X-Request-Id header = %q", hresp.Header.Get("X-Request-Id"))
	}
	if st := hresp.Header.Get("Server-Timing"); !strings.Contains(st, "total;dur=") {
		t.Fatalf("Server-Timing = %q, want a total entry", st)
	}
	if resp.Timing == nil || resp.Timing.ComputeNS <= 0 {
		t.Fatalf("Timing = %+v, want compute_ns > 0", resp.Timing)
	}

	const tid = "0af7651916cd43dd8448eb211c80319c"
	resp, _ = postWithHeaders(t, c, req, map[string]string{
		"traceparent": "00-" + tid + "-b7ad6b7169203331-01",
	})
	if resp.RequestID != tid {
		t.Fatalf("RequestID = %q, want traceparent trace-id %s", resp.RequestID, tid)
	}

	resp, _ = postWithHeaders(t, c, req, nil)
	if !strings.HasPrefix(resp.RequestID, "req-") {
		t.Fatalf("RequestID = %q, want a generated req- id", resp.RequestID)
	}

	found := false
	for _, led := range s.ledgers.Recent(10) {
		if led.ID == "corr-abc" {
			found = true
			if led.Outcome != "ok" {
				t.Errorf("ledger outcome = %q, want ok", led.Outcome)
			}
			if led.PhaseNS[obs.PhaseCompute] <= 0 {
				t.Errorf("ledger compute = %d, want > 0", led.PhaseNS[obs.PhaseCompute])
			}
			if led.PhaseNS[obs.PhaseSerialize] <= 0 {
				t.Errorf("ledger serialize = %d, want > 0", led.PhaseNS[obs.PhaseSerialize])
			}
			if led.TotalNS <= 0 || led.Trace == 0 {
				t.Errorf("ledger total/trace = %d/%d, want both nonzero", led.TotalNS, led.Trace)
			}
		}
	}
	if !found {
		t.Fatal("no ledger recorded for corr-abc")
	}
}

// TestMetriczOpenMetrics: /metricz negotiates the OpenMetrics text
// exposition (Prometheus-shaped Accept or ?format=) and the output
// passes the lint, histograms with cumulative buckets included. The
// default stays JSON (TestHealthzAndMetricz holds that contract).
func TestMetriczOpenMetrics(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	if _, err := c.Do(context.Background(), &Request{Tenant: "t", M: 8, K: 8, N: 8, ASeed: 1, BSeed: 2}); err != nil {
		t.Fatal(err)
	}
	for _, sel := range []struct{ query, accept string }{
		{"?format=openmetrics", ""},
		{"", "application/openmetrics-text; version=1.0.0"},
		{"", "text/plain"},
	} {
		req, _ := http.NewRequest(http.MethodGet, c.BaseURL+"/metricz"+sel.query, nil)
		if sel.accept != "" {
			req.Header.Set("Accept", sel.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
			t.Fatalf("%+v: Content-Type = %q", sel, ct)
		}
		stats, err := obs.LintOpenMetrics(body)
		if err != nil {
			t.Fatalf("%+v: lint: %v", sel, err)
		}
		if stats.Histograms == 0 || stats.Families == 0 {
			t.Fatalf("%+v: stats = %+v, want histograms and families", sel, stats)
		}
		if !bytes.Contains(body, []byte(`request_seconds_bucket{le="+Inf"}`)) {
			t.Fatalf("%+v: exposition missing request_seconds +Inf bucket", sel)
		}
	}
}

// TestCoalescedWaveLedgersAndTrace is the tentpole's white-box check:
// four requests coalesced into ONE wave each get a complete ledger
// whose compute phase is the SHARED wave wall (identical across
// members), and the flight recorder's trace links each request lane to
// the wave items it rode (four flow links), validated by the same
// checker cmd/tracecheck uses.
func TestCoalescedWaveLedgersAndTrace(t *testing.T) {
	spool := t.TempDir()
	s, c := newTestServer(t, Config{
		Workers: 2, MaxInflight: 1, QueueDepth: 64, MaxQueueWait: 5 * time.Second,
		FlightSpoolDir: spool, FlightMinInterval: time.Hour,
	})
	if s.flight == nil || !s.flight.Armed() {
		t.Fatal("flight recorder not armed")
	}

	release, _, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	reqs := make([]*Request, n)
	resps := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		reqs[i] = batchReq(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.Do(context.Background(), reqs[i])
		}(i)
	}
	lay, _ := recmat.ParseLayout("z")
	alg, _ := resolveReqAlg(reqs[0], lay)
	key := coalesceKey(reqs[0], lay, alg)
	waitFor(t, "the wave to gather all members", func() bool {
		s.co.mu.Lock()
		defer s.co.mu.Unlock()
		g := s.co.groups[key]
		return g != nil && len(g.members) == n
	})
	release()
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if !resps[i].Coalesced || resps[i].BatchSize != n {
			t.Fatalf("request %d: coalesced=%v batch=%d, want coalesced wave of %d",
				i, resps[i].Coalesced, resps[i].BatchSize, n)
		}
		if resps[i].Timing == nil || resps[i].Timing.GatherNS <= 0 {
			t.Fatalf("request %d: timing = %+v, want gather_ns > 0", i, resps[i].Timing)
		}
	}

	// Ledgers: every member records the SHARED wave compute wall.
	var leds []obs.Ledger
	for _, led := range s.ledgers.Recent(16) {
		if led.Coalesced {
			leds = append(leds, led)
		}
	}
	if len(leds) != n {
		t.Fatalf("coalesced ledgers = %d, want %d", len(leds), n)
	}
	for _, led := range leds {
		if led.Outcome != "ok" || led.BatchSize != n {
			t.Fatalf("ledger %+v: want ok outcome, batch %d", led, n)
		}
		if led.PhaseNS[obs.PhaseCompute] <= 0 {
			t.Fatalf("ledger %s: compute = %d, want > 0", led.ID, led.PhaseNS[obs.PhaseCompute])
		}
		if led.PhaseNS[obs.PhaseCompute] != leds[0].PhaseNS[obs.PhaseCompute] {
			t.Fatalf("ledger %s: compute %d differs from sibling's %d — wave compute must be shared",
				led.ID, led.PhaseNS[obs.PhaseCompute], leds[0].PhaseNS[obs.PhaseCompute])
		}
		if led.PhaseNS[obs.PhaseGather] <= 0 {
			t.Fatalf("ledger %s: gather = %d, want > 0", led.ID, led.PhaseNS[obs.PhaseGather])
		}
	}

	// Trace: dump a bundle and validate the request→wave-item linkage.
	name, err := s.flight.Dump("test", true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(spool, name, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if sum.RequestTracks < n {
		t.Fatalf("request tracks = %d, want ≥ %d", sum.RequestTracks, n)
	}
	if sum.FlowLinks < n {
		t.Fatalf("flow links = %d, want ≥ %d (each request linked to its wave items)", sum.FlowLinks, n)
	}
	if sum.ByName["request"] < n || sum.ByName["wave-item"] < n {
		t.Fatalf("spans by name = %v, want ≥ %d request and wave-item spans", sum.ByName, n)
	}

	// /debug/flightz serves the bundle back with the trace embedded.
	fresp, err := http.Get(c.BaseURL + "/debug/flightz?bundle=" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var bundle map[string]json.RawMessage
	if err := json.NewDecoder(fresp.Body).Decode(&bundle); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"trace.json", "metrics.json", "ledgers.json", "meta.json"} {
		if _, okf := bundle[f]; !okf {
			t.Fatalf("flightz bundle missing %s (has %d members)", f, len(bundle))
		}
	}
}

// TestCoalescedCancelLedger: a member cancelled while its wave is
// queued still produces a COMPLETE ledger — typed outcome, gather
// phase, total — while its siblings' ledgers stay ok. Attribution must
// survive exactly the requests worth debugging.
func TestCoalescedCancelLedger(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, MaxInflight: 1, QueueDepth: 64, MaxQueueWait: 5 * time.Second})

	release, _, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	const doomed = 1
	reqs := make([]*Request, n)
	errs := make([]error, n)
	dctx, dcancel := context.WithCancel(context.Background())
	defer dcancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		reqs[i] = batchReq(i)
		ctx := context.Background()
		if i == doomed {
			ctx = dctx
		}
		wg.Add(1)
		go func(i int, ctx context.Context) {
			defer wg.Done()
			_, errs[i] = c.Do(ctx, reqs[i])
		}(i, ctx)
	}
	lay, _ := recmat.ParseLayout("z")
	alg, _ := resolveReqAlg(reqs[0], lay)
	key := coalesceKey(reqs[0], lay, alg)
	waitFor(t, "the wave to gather all members", func() bool {
		s.co.mu.Lock()
		defer s.co.mu.Unlock()
		g := s.co.groups[key]
		return g != nil && len(g.members) == n
	})
	dcancel()
	// The client-side cancel reaches the handler's r.Context()
	// asynchronously; hold the wave until the server has observed it so
	// the doomed item enters the wave already expired.
	waitFor(t, "the cancelled member's server context", func() bool {
		s.co.mu.Lock()
		defer s.co.mu.Unlock()
		g := s.co.groups[key]
		if g == nil {
			return true
		}
		for _, m := range g.members {
			if m.rctx.Err() != nil {
				return true
			}
		}
		return false
	})
	release()
	wg.Wait()

	if errs[doomed] == nil {
		t.Fatal("doomed member did not fail")
	}
	// The cancelled client never reads its response, so the settled error
	// reaches the server-side ledger, not the client. Find it there.
	okLeds, cancelLeds := 0, 0
	for _, led := range s.ledgers.Recent(16) {
		switch led.Outcome {
		case "ok":
			okLeds++
		case KindCanceled, KindDeadline:
			cancelLeds++
			if led.TotalNS <= 0 {
				t.Errorf("cancelled ledger %s: total = %d, want > 0", led.ID, led.TotalNS)
			}
			if led.PhaseNS[obs.PhaseGather] <= 0 {
				t.Errorf("cancelled ledger %s: gather = %d, want > 0 (it was in the wave)",
					led.ID, led.PhaseNS[obs.PhaseGather])
			}
			if led.Trace == 0 {
				t.Errorf("cancelled ledger %s: no trace serial", led.ID)
			}
		default:
			t.Errorf("unexpected ledger outcome %q", led.Outcome)
		}
	}
	if okLeds != n-1 || cancelLeds != 1 {
		t.Fatalf("ledgers: %d ok, %d cancelled; want %d ok, 1 cancelled", okLeds, cancelLeds, n-1)
	}
}

// TestSLOBurnDumpsOneBundle: an induced latency-objective violation
// fires the burn-rate monitor, which dumps EXACTLY one flight bundle —
// further violations inside the rate-limit interval are suppressed,
// not spooled.
func TestSLOBurnDumpsOneBundle(t *testing.T) {
	spool := t.TempDir()
	s, c := newTestServer(t, Config{
		Workers:        1,
		FlightSpoolDir: spool, FlightMinInterval: time.Hour,
		SLOObjective: time.Nanosecond, SLOQuantile: 0.5,
		SLOFastWindow: 50 * time.Millisecond, SLOSlowWindow: 100 * time.Millisecond,
		SLOPoll: 10 * time.Millisecond, SLOMinSamples: 3,
	})
	if s.slo == nil {
		t.Fatal("SLO monitor not started")
	}

	// Every request violates a 1ns objective; keep traffic flowing so
	// both windows stay populated past their floors.
	req := &Request{Tenant: "t", M: 8, K: 8, N: 8, ASeed: 1, BSeed: 2}
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.Dumps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no flight dump after 10s of SLO violations")
		}
		if _, err := c.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Keep violating: the monitor keeps firing but the rate limit must
	// suppress every further automatic dump.
	until := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(until) {
		if _, err := c.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.flight.Dumps(); got != 1 {
		t.Fatalf("dumps = %d, want exactly 1 (rate-limited)", got)
	}
	if s.flight.Suppressed() == 0 {
		t.Error("no suppressed dumps recorded while violations continued")
	}
	bundles := s.flight.List()
	if len(bundles) != 1 {
		t.Fatalf("spool holds %d bundles, want 1: %v", len(bundles), bundles)
	}
	for _, f := range []string{"trace.json", "metrics.json", "ledgers.json", "meta.json", "goroutines.txt"} {
		if _, err := os.Stat(filepath.Join(spool, bundles[0], f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	var leds []obs.Ledger
	data, err := os.ReadFile(filepath.Join(spool, bundles[0], "ledgers.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &leds); err != nil {
		t.Fatal(err)
	}
	if len(leds) == 0 {
		t.Fatal("bundle ledgers.json is empty")
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters["slo_burn_violations"] == 0 {
		t.Error("slo_burn_violations counter never moved")
	}
}
