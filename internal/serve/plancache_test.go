package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	recmat "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

func testBuild(eng *recmat.Engine, n int, seed int64) func() (*recmat.Plan, error) {
	return func() (*recmat.Plan, error) {
		A := recmat.Random(n, n, rand.New(rand.NewSource(seed)))
		return eng.Prepack(A, false, &recmat.Options{Layout: recmat.ZMorton})
	}
}

// TestPlanCacheEvictionDefersFree is the deterministic half of the
// refcounting contract: evict an entry while a caller still holds it,
// run the multiplication on the evicted plan, and verify the result is
// still correct — the eviction must not have freed the buffers out
// from under the in-flight GEMM.
func TestPlanCacheEvictionDefersFree(t *testing.T) {
	eng := recmat.NewEngine(2)
	defer eng.Close()
	reg := obs.NewRegistry()
	n := 64
	planBytes := int64(n*n) * 8
	// Budget below two plans: inserting the second evicts the first.
	pc := newPlanCache(planBytes*3/2, reg)
	defer pc.close()

	e1, err := pc.acquire("a", testBuild(eng, n, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.acquire("b", testBuild(eng, n, 2)); err != nil {
		t.Fatal(err)
	}
	pc.mu.Lock()
	evicted := e1.evicted
	freed := e1.freed
	pc.mu.Unlock()
	if !evicted {
		t.Fatal("entry a not evicted by inserting b over budget")
	}
	if freed {
		t.Fatal("entry a freed while a reference was still held")
	}

	// Multiply with the evicted-but-held plan and check the answer.
	B := recmat.Random(n, n, rand.New(rand.NewSource(3)))
	pb, err := eng.PrepackConforming(B, false, &recmat.Options{Layout: recmat.ZMorton}, e1.Plan())
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Release()
	C := recmat.NewMatrix(n, n)
	if _, err := eng.GEMMPrepackedOpts(context.Background(), &recmat.Options{Layout: recmat.ZMorton}, 1, e1.Plan(), pb, 0, C); err != nil {
		t.Fatal(err)
	}
	A := recmat.Random(n, n, rand.New(rand.NewSource(1)))
	ref := recmat.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var dot float64
			for p := 0; p < n; p++ {
				dot += A.At(i, p) * B.At(p, j)
			}
			ref.Set(i, j, dot)
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if d := C.At(i, j) - ref.At(i, j); d > 1e-9 || d < -1e-9 {
				t.Fatalf("evicted plan produced wrong C[%d,%d]: %g vs %g", i, j, C.At(i, j), ref.At(i, j))
			}
		}
	}

	// The release of the last reference frees exactly once.
	pc.release(e1)
	pc.mu.Lock()
	freed = e1.freed
	pc.mu.Unlock()
	if !freed {
		t.Fatal("last release of evicted entry did not free the plan")
	}
}

// TestPlanCacheBuildErrorNotCached verifies that a failed build is
// retried, not served, and that waiters joined to the failed build see
// the error.
func TestPlanCacheBuildErrorNotCached(t *testing.T) {
	eng := recmat.NewEngine(1)
	defer eng.Close()
	pc := newPlanCache(1<<20, obs.NewRegistry())
	defer pc.close()
	calls := 0
	failing := func() (*recmat.Plan, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient build failure")
		}
		return testBuild(eng, 16, 1)()
	}
	if _, err := pc.acquire("k", failing); err == nil {
		t.Fatal("first acquire did not surface the build error")
	}
	e, err := pc.acquire("k", failing)
	if err != nil {
		t.Fatalf("second acquire did not retry the build: %v", err)
	}
	pc.release(e)
	if calls != 2 {
		t.Fatalf("build called %d times, want 2", calls)
	}
}

// TestPlanCacheEvictionRace is the chaos half, run under -race: many
// goroutines acquire keys from a working set far larger than the cache
// budget (constant eviction), run real GEMMPrepacked multiplications on
// their plans with faultinject delays widening every window, and check
// their results. Any eviction freeing a plan mid-flight surfaces as a
// race report or a wrong product.
func TestPlanCacheEvictionRace(t *testing.T) {
	faultinject.Configure(faultinject.Config{DelayProb: 0.2, Delay: 200 * time.Microsecond, Seed: 42})
	defer faultinject.Disable()
	eng := recmat.NewEngine(2)
	defer eng.Close()
	reg := obs.NewRegistry()
	n := 32
	planBytes := int64(n*n) * 8
	pc := newPlanCache(planBytes*2, reg) // holds ~2 of the 8 keys
	defer pc.close()

	// Per-key reference norms, computed once serially.
	refNorm := make([]float64, 8)
	for k := range refNorm {
		A := recmat.Random(n, n, rand.New(rand.NewSource(int64(k+1))))
		B := recmat.Random(n, n, rand.New(rand.NewSource(int64(k+100))))
		var norm float64
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var dot float64
				for p := 0; p < n; p++ {
					dot += A.At(i, p) * B.At(p, j)
				}
				if dot < 0 {
					dot = -dot
				}
				norm += dot
			}
		}
		refNorm[k] = norm
	}

	const workers = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			opts := &recmat.Options{Layout: recmat.ZMorton}
			for it := 0; it < iters; it++ {
				k := rng.Intn(8)
				e, err := pc.acquire(fmt.Sprintf("k%d", k), testBuild(eng, n, int64(k+1)))
				if err != nil {
					errs <- fmt.Errorf("acquire k%d: %w", k, err)
					return
				}
				B := recmat.Random(n, n, rand.New(rand.NewSource(int64(k+100))))
				pb, err := eng.PrepackConforming(B, false, opts, e.Plan())
				if err != nil {
					pc.release(e)
					errs <- fmt.Errorf("conform k%d: %w", k, err)
					return
				}
				C := recmat.NewMatrix(n, n)
				_, err = eng.GEMMPrepackedOpts(context.Background(), opts, 1, e.Plan(), pb, 0, C)
				pb.Release()
				pc.release(e)
				if err != nil {
					errs <- fmt.Errorf("gemm k%d: %w", k, err)
					return
				}
				var norm float64
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						v := C.At(i, j)
						if v < 0 {
							v = -v
						}
						norm += v
					}
				}
				if d := norm - refNorm[k]; d > 1e-8*refNorm[k] || d < -1e-8*refNorm[k] {
					errs <- fmt.Errorf("k%d norm %g, want %g (plan freed mid-flight?)", k, norm, refNorm[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["plan_cache_evictions"] == 0 {
		t.Fatal("race test never evicted; shrink the cache budget")
	}
	// After close(), every plan must have been freed exactly once — a
	// leak here shows up as a nonzero gauge or lingering entries.
	pc.close()
	pc.mu.Lock()
	remaining := len(pc.entries)
	pc.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("%d entries remain after close", remaining)
	}
}
