package serve_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/serve"
)

// BenchmarkDaemonSaturation drives an in-process server to saturation
// with the mixed loadgen workload — the same setup as benchjson's
// serve-daemon record — for profiling the request path: each b.N
// iteration is one 2-second closed-loop window and reports QPS. Run
// with -cpuprofile to see where a saturated daemon's CPU goes.
func BenchmarkDaemonSaturation(b *testing.B) {
	s := serve.New(serve.Config{
		Workers:        runtime.GOMAXPROCS(0),
		MaxInflight:    2,
		QueueDepth:     4,
		MaxQueueWait:   20 * time.Millisecond,
		PlanCacheBytes: 64 << 20,
		MaxDim:         128,
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
		defer dcancel()
		if err := s.Drain(dctx); err != nil {
			b.Fatal(err)
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := &serve.LoadGen{
			Client:      &serve.Client{BaseURL: ts.URL, MaxRetries: -1},
			Tenants:     4,
			Concurrency: 16,
			MaxDim:      128,
			Seed:        1,
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		sum := gen.Run(ctx)
		cancel()
		b.ReportMetric(sum.QPS(), "qps")
	}
}
