package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestChaosSoak is the end-to-end overload-and-faults soak: a
// closed-loop multi-tenant load generator drives the daemon well past
// its admission limit while faultinject fires panics, delays, and
// allocation failures inside the engine. The run asserts the daemon's
// whole robustness contract at once:
//
//   - it sheds instead of wedging (every request completes or fails
//     within its deadline; the run never stalls),
//   - every failure is typed (a known error kind, never a bare 500
//     from a wedge or an untyped panic escaping the stack),
//   - results are consistent (identical request specs produce the
//     same C-norm, so no cross-request buffer corruption),
//   - drain leaves nothing behind (no goroutine leaks, no in-flight
//     stragglers, plan cache fully freed).
//
// The default duration keeps `go test ./...` fast; `make soak` sets
// RECMAT_SOAK=60s for the real chaos run.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	duration := 3 * time.Second
	if s := os.Getenv("RECMAT_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad RECMAT_SOAK %q: %v", s, err)
		}
		duration = d
	}

	before := runtime.NumGoroutine()

	faultinject.Configure(faultinject.Config{
		PanicProb: 0.002,
		AllocProb: 0.002,
		DelayProb: 0.01,
		Delay:     time.Millisecond,
		Seed:      2026,
	})
	defer faultinject.Disable()

	s := New(Config{
		Workers:          4,
		MaxInflight:      4,
		QueueDepth:       8,
		MaxQueueWait:     100 * time.Millisecond,
		TenantQuotaBytes: 8 << 20,
		DefaultDeadline:  5 * time.Second,
		MaxDeadline:      10 * time.Second,
		DrainTimeout:     5 * time.Second,
		PlanCacheBytes:   1 << 20, // tiny: constant eviction under load
		MaxDim:           256,
	})
	ts := httptest.NewServer(s.Handler())

	// C-norm consistency ledger: identical request specs must agree up
	// to the rounding variance of the degradation ladder (different
	// rungs run different algorithms for the same spec).
	type specKey struct {
		m, k, n      int
		aName        string
		aSeed, bSeed int64
		cSeed        int64
		beta         float64
		layout       string
	}
	norms := map[specKey]float64{}
	var normMu sync.Mutex
	var inconsistent []string

	gen := &LoadGen{
		Client:      &Client{BaseURL: ts.URL, MaxRetries: 1},
		Tenants:     4,
		Concurrency: 16, // 4× the admission limit: sustained overload
		MaxDim:      128,
		DeadlineMS:  4000,
		Seed:        7,
		Workload:    os.Getenv("RECMAT_SOAK_WORKLOAD"), // "batch" soaks the coalescing path

		OnResult: func(r Result) {
			if r.Err != nil || r.Resp == nil {
				return
			}
			key := specKey{
				m: r.Req.M, k: r.Req.K, n: r.Req.N,
				aName: r.Req.AName, aSeed: r.Req.ASeed, bSeed: r.Req.BSeed,
				cSeed: r.Req.CSeed, beta: r.Req.Beta, layout: r.Req.Layout,
			}
			normMu.Lock()
			defer normMu.Unlock()
			if prev, seen := norms[key]; seen {
				if math.Abs(r.Resp.CNorm-prev) > 1e-8*math.Abs(prev) {
					inconsistent = append(inconsistent, fmt.Sprintf(
						"%+v: CNorm %g vs %g", key, r.Resp.CNorm, prev))
				}
			} else {
				norms[key] = r.Resp.CNorm
			}
		},
	}

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	runDone := make(chan *Summary, 1)
	go func() { runDone <- gen.Run(ctx) }()

	var sum *Summary
	select {
	case sum = <-runDone:
	case <-time.After(duration + 2*time.Minute):
		t.Fatal("load generator wedged: workers did not return after the run deadline")
	}

	t.Logf("soak: %s", sum)
	if sum.Total == 0 {
		t.Fatal("soak made no requests")
	}
	if sum.OK == 0 {
		t.Fatal("soak had no successful requests")
	}
	// Every failure must be a typed kind. "transport" would mean the
	// HTTP layer broke (a wedged handler surfaces here as a client
	// timeout); "context" appears only when the run deadline truncates
	// in-flight calls, which the closed loop makes inevitable at the
	// very end — bound it instead of forbidding it.
	known := map[string]bool{
		KindShed: true, KindQuota: true, KindTooLarge: true,
		KindDeadline: true, KindDraining: true, KindInternal: true,
		KindCanceled: true, KindBadRequest: true, "context": true,
	}
	for kind, cnt := range sum.Failed {
		if !known[kind] {
			t.Errorf("untyped failure kind %q (%d occurrences)", kind, cnt)
		}
	}
	if c := sum.Failed["context"]; c > gen.Concurrency*(gen.Client.MaxRetries+1) {
		t.Errorf("%d context failures, more than the %d the run-end truncation can explain",
			c, gen.Concurrency*(gen.Client.MaxRetries+1))
	}
	if len(inconsistent) > 0 {
		t.Errorf("inconsistent results: %v", inconsistent)
	}

	// Drain: nothing may wedge past cancellation, and nothing may leak.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	ts.Close()
	if n := s.gate.count(); n != 0 {
		t.Fatalf("%d requests still in flight after drain", n)
	}
	s.plans.mu.Lock()
	remaining := len(s.plans.entries)
	s.plans.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("%d plan cache entries remain after drain", remaining)
	}

	// Goroutine-leak check: allow the httptest machinery a moment to
	// unwind, then require the count to settle near the baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after drain: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSoakResultConsistency replays one fixed request spec many times
// concurrently against a chaos-injected server and requires every
// successful response to agree on CNorm — the wire-level form of the
// β-scaled-or-complete atomicity contract (a partially written C, a
// recycled buffer, or a torn plan would change the norm).
func TestSoakResultConsistency(t *testing.T) {
	faultinject.Configure(faultinject.Config{
		PanicProb: 0.01,
		DelayProb: 0.05,
		Delay:     500 * time.Microsecond,
		Seed:      99,
	})
	defer faultinject.Disable()
	s := New(Config{Workers: 4, MaxInflight: 4, PlanCacheBytes: 64 << 10, DefaultDeadline: 30 * time.Second, MaxDeadline: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	c := &Client{BaseURL: ts.URL, MaxRetries: 2}

	req := &Request{
		Tenant: "fixed", M: 48, K: 48, N: 48,
		AName: "w0", ASeed: 5, BSeed: 6, CSeed: 7, Beta: 0.5,
		Layout: "z",
	}
	var mu sync.Mutex
	var want float64
	var got []float64
	var failures []string
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				resp, err := c.Do(context.Background(), req)
				mu.Lock()
				if err != nil {
					// Injected faults fail some attempts; those must be
					// typed, and the retry budget absorbs most of them.
					var apiErr *APIError
					if !errors.As(err, &apiErr) {
						failures = append(failures, fmt.Sprintf("untyped: %v", err))
					}
				} else {
					got = append(got, resp.CNorm)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("untyped failures: %v", failures)
	}
	if len(got) == 0 {
		t.Fatal("no successful repeats")
	}
	want = got[0]
	for i, n := range got {
		// The degradation ladder may legitimately run a different
		// algorithm on different attempts; the norms then differ only by
		// rounding. Anything larger means corruption.
		if math.Abs(n-want) > 1e-9*math.Abs(want) {
			t.Fatalf("repeat %d: CNorm %g differs from %g", i, n, want)
		}
	}
}
