package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	recmat "repro"
	"repro/internal/faultinject"
)

// newTestServer builds a Server plus an httptest front end and returns
// a client for it. The server is drained at test end.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, &Client{BaseURL: ts.URL, MaxRetries: -1}
}

// waitInflight polls until n requests have passed the drain gate.
func waitInflight(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests in flight after 5s", s.gate.count(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func postRaw(t *testing.T, c *Client, method, path, body string) (int, ErrorBody) {
	t.Helper()
	req, err := http.NewRequest(method, c.BaseURL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb ErrorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	return resp.StatusCode, eb
}

func TestValidationErrors(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, MaxDim: 64})
	cases := []struct {
		name       string
		method     string
		body       string
		wantStatus int
		wantKind   string
	}{
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed, KindBadRequest},
		{"bad json", http.MethodPost, "{nope", http.StatusBadRequest, KindBadRequest},
		{"unknown field", http.MethodPost, `{"tenant":"t","m":4,"k":4,"n":4,"zz":1}`, http.StatusBadRequest, KindBadRequest},
		{"missing tenant", http.MethodPost, `{"m":4,"k":4,"n":4}`, http.StatusBadRequest, KindBadRequest},
		{"zero dim", http.MethodPost, `{"tenant":"t","m":0,"k":4,"n":4}`, http.StatusBadRequest, KindBadRequest},
		{"dim too big", http.MethodPost, `{"tenant":"t","m":65,"k":4,"n":4}`, http.StatusBadRequest, KindBadRequest},
		{"bad layout", http.MethodPost, `{"tenant":"t","m":4,"k":4,"n":4,"layout":"sideways"}`, http.StatusBadRequest, KindBadRequest},
		{"non-finite alpha", http.MethodPost, `{"tenant":"t","m":4,"k":4,"n":4,"alpha":1e999}`, http.StatusBadRequest, KindBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, eb := postRaw(t, c, tc.method, "/v1/gemm", tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%+v)", status, tc.wantStatus, eb)
			}
			if eb.Error.Kind != tc.wantKind {
				t.Fatalf("kind = %q, want %q (%+v)", eb.Error.Kind, tc.wantKind, eb)
			}
		})
	}
}

// TestGEMMCorrectness verifies the served result against a locally
// computed reference: the wire protocol's deterministic operands mean
// the client can rebuild A, B, C exactly.
func TestGEMMCorrectness(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	alpha := 1.5
	req := &Request{
		Tenant: "acme", M: 24, K: 17, N: 9,
		ASeed: 3, BSeed: 4, CSeed: 5,
		Alpha: &alpha, Beta: 0.5,
		ReturnData: true,
	}
	resp, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	A := recmat.RandomSeeded(req.M, req.K, req.ASeed)
	B := recmat.RandomSeeded(req.K, req.N, req.BSeed)
	C := recmat.RandomSeeded(req.M, req.N, req.CSeed)
	want := make([]float64, 0, req.M*req.N)
	var norm float64
	for j := 0; j < req.N; j++ {
		for i := 0; i < req.M; i++ {
			var dot float64
			for p := 0; p < req.K; p++ {
				dot += A.At(i, p) * B.At(p, j)
			}
			v := alpha*dot + req.Beta*C.At(i, j)
			want = append(want, v)
			norm += math.Abs(v)
		}
	}
	if len(resp.Data) != len(want) {
		t.Fatalf("data length = %d, want %d", len(resp.Data), len(want))
	}
	for idx := range want {
		if math.Abs(resp.Data[idx]-want[idx]) > 1e-10 {
			t.Fatalf("C[%d] = %g, want %g", idx, resp.Data[idx], want[idx])
		}
	}
	if math.Abs(resp.CNorm-norm) > 1e-9*norm {
		t.Fatalf("CNorm = %g, want %g", resp.CNorm, norm)
	}
}

// TestPlanCachePath checks that a named operand is served from the plan
// cache on repeat and still yields the right answer.
func TestPlanCachePath(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	req := &Request{
		Tenant: "acme", M: 64, K: 64, N: 32,
		AName: "weights", ASeed: 7, BSeed: 8,
		Layout: "z", ReturnData: true,
	}
	first, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !first.PlanCached {
		t.Fatal("first named request did not use the plan-cache path")
	}
	second, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters["plan_cache_hits"] == 0 {
		t.Fatalf("no plan cache hits after repeat request: %v", snap.Counters)
	}
	if len(first.Data) == 0 || len(first.Data) != len(second.Data) {
		t.Fatalf("data lengths differ: %d vs %d", len(first.Data), len(second.Data))
	}
	for i := range first.Data {
		if first.Data[i] != second.Data[i] {
			t.Fatalf("cached plan changed the result at %d: %g vs %g", i, first.Data[i], second.Data[i])
		}
	}
}

func TestTenantQuota(t *testing.T) {
	// Quota fits one 64×64×64 request (3·64²·8 ≈ 98 KiB) but not much
	// more: a request that cannot ever fit is too_large, and the tenant
	// budget must ride into the engine as MemBudget.
	_, c := newTestServer(t, Config{Workers: 2, TenantQuotaBytes: 200 << 10})
	_, err := c.Do(context.Background(), &Request{Tenant: "big", M: 512, K: 512, N: 512, ASeed: 1, BSeed: 2})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized request: err = %v, want ErrTooLarge", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized request: status = %v, want 413", err)
	}
	// A fitting request succeeds even though the quota is far below the
	// engine's preferred working set — the degradation ladder absorbs it.
	resp, err := c.Do(context.Background(), &Request{Tenant: "small", M: 64, K: 64, N: 64, ASeed: 1, BSeed: 2})
	if err != nil {
		t.Fatalf("fitting request failed: %v", err)
	}
	if resp.CNorm == 0 {
		t.Fatal("fitting request returned zero norm")
	}
}

func TestQuotaConcurrentDenied(t *testing.T) {
	// One tenant, quota sized for ~1.5 concurrent 96³ requests, many
	// concurrent calls: some must be denied with the retryable quota
	// kind, and the denials must be exactly that kind — never a wedge,
	// never an internal error.
	faultinject.Configure(faultinject.Config{DelayProb: 1, Delay: 30 * time.Millisecond, Seed: 11})
	defer faultinject.Disable()
	s, c := newTestServer(t, Config{Workers: 2, TenantQuotaBytes: 350 << 10, MaxInflight: 8, DefaultDeadline: 30 * time.Second, MaxDeadline: 30 * time.Second})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var quotaDenied, ok int
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Do(context.Background(), &Request{
				Tenant: "solo", M: 96, K: 96, N: 96,
				ASeed: int64(i + 1), BSeed: int64(i + 2),
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrQuota):
				quotaDenied++
			default:
				t.Errorf("unexpected error kind: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
	if quotaDenied == 0 {
		t.Skip("no quota denial observed (requests serialized); counters still verified elsewhere")
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters["requests_quota_denied"] == 0 {
		t.Fatalf("requests_quota_denied counter not incremented: %v", snap.Counters)
	}
}

func TestShedUnderOverload(t *testing.T) {
	// One execution slot, a one-deep queue, a 5ms queue wait, and every
	// request slowed by 60ms: firing 6 concurrent requests must shed at
	// least one with 429 + Retry-After while the rest complete. Nothing
	// may wedge.
	faultinject.Configure(faultinject.Config{DelayProb: 1, Delay: 60 * time.Millisecond, Seed: 3})
	defer faultinject.Disable()
	s, c := newTestServer(t, Config{
		Workers: 2, MaxInflight: 1, QueueDepth: 1, MaxQueueWait: 5 * time.Millisecond,
		DefaultDeadline: 30 * time.Second, MaxDeadline: 30 * time.Second,
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shed, ok int
	var retryAfterSeen bool
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Do(context.Background(), &Request{
				Tenant: fmt.Sprintf("t%d", i), M: 16, K: 16, N: 16,
				ASeed: int64(i + 1), BSeed: 2,
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrShed):
				shed++
				var apiErr *APIError
				if errors.As(err, &apiErr) {
					if apiErr.Status != http.StatusTooManyRequests {
						t.Errorf("shed status = %d, want 429", apiErr.Status)
					}
					if apiErr.Info.RetryAfterMS > 0 {
						retryAfterSeen = true
					}
				}
			default:
				t.Errorf("unexpected error kind: %v", err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("requests wedged under overload")
	}
	if ok == 0 {
		t.Fatal("no request succeeded under overload")
	}
	if shed == 0 {
		t.Fatal("no request was shed with 1 slot, queue depth 1, 6 callers")
	}
	if !retryAfterSeen {
		t.Error("shed responses carried no Retry-After hint")
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters["requests_shed"] == 0 {
		t.Fatalf("requests_shed counter not incremented: %v", snap.Counters)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	// A 1ms budget on a computation slowed to 50ms must come back as the
	// deadline kind (504), not hang and not 500.
	faultinject.Configure(faultinject.Config{DelayProb: 1, Delay: 50 * time.Millisecond, Seed: 5})
	defer faultinject.Disable()
	_, c := newTestServer(t, Config{Workers: 2})
	_, err := c.Do(context.Background(), &Request{
		Tenant: "t", M: 64, K: 64, N: 64, ASeed: 1, BSeed: 2, DeadlineMS: 1,
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Info.Kind != KindDeadline || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("got kind=%q status=%d, want deadline/504", apiErr.Info.Kind, apiErr.Status)
	}
}

func TestClientDisconnectCancels(t *testing.T) {
	// A client that gives up mid-request surfaces context.Canceled on
	// its side and must not leave the server wedged (Cleanup drains).
	faultinject.Configure(faultinject.Config{DelayProb: 1, Delay: 100 * time.Millisecond, Seed: 7})
	defer faultinject.Disable()
	_, c := newTestServer(t, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	_, err := c.Do(ctx, &Request{Tenant: "t", M: 32, K: 32, N: 32, ASeed: 1, BSeed: 2})
	if err == nil {
		t.Fatal("request succeeded despite client cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDrainGraceful(t *testing.T) {
	// Drain with in-flight work: readyz flips to draining, new requests
	// are rejected with the draining kind, the in-flight request either
	// completes or is cancelled as draining, and Drain returns nil.
	faultinject.Configure(faultinject.Config{DelayProb: 1, Delay: 200 * time.Millisecond, Seed: 9})
	defer faultinject.Disable()
	s := New(Config{Workers: 2, DrainTimeout: 5 * time.Second, DefaultDeadline: 30 * time.Second, MaxDeadline: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, MaxRetries: -1}

	inflightErr := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), &Request{Tenant: "t", M: 32, K: 32, N: 32, ASeed: 1, BSeed: 2})
		inflightErr <- err
	}()
	waitInflight(t, s, 1)

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()

	// The gate flips synchronously at the start of Drain; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for !s.gate.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("gate never flipped to draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	if _, err := c.Do(context.Background(), &Request{Tenant: "t", M: 8, K: 8, N: 8, ASeed: 1, BSeed: 2}); !errors.Is(err, ErrDraining) {
		t.Fatalf("new request during drain: err = %v, want ErrDraining", err)
	}
	if err := <-inflightErr; err != nil && !errors.Is(err, ErrDraining) {
		t.Fatalf("in-flight request: err = %v, want nil or ErrDraining", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDrainCancelsStragglers(t *testing.T) {
	// A drain budget far smaller than the request forces the cancel
	// phase: the straggler must be cancelled through its context (kind
	// draining or canceled), and Drain must still return nil — the
	// no-wedged-requests contract.
	faultinject.Configure(faultinject.Config{DelayProb: 1, Delay: 300 * time.Millisecond, Seed: 13})
	defer faultinject.Disable()
	s := New(Config{Workers: 1, DrainTimeout: 20 * time.Millisecond, DefaultDeadline: 20 * time.Second, MaxDeadline: 20 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, MaxRetries: -1}

	inflightErr := make(chan error, 1)
	go func() {
		// Big enough that compute (every task slowed 300ms) outlives the
		// 20ms drain budget, forcing the cancel phase.
		_, err := c.Do(context.Background(), &Request{Tenant: "t", M: 512, K: 512, N: 512, ASeed: 1, BSeed: 2, DeadlineMS: 15000})
		inflightErr <- err
	}()
	waitInflight(t, s, 1)
	time.Sleep(50 * time.Millisecond) // let compute start

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-inflightErr:
		if err != nil && !errors.Is(err, ErrDraining) {
			t.Fatalf("straggler: err = %v, want nil or ErrDraining", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("straggler never returned after drain")
	}
}

func TestHealthzAndMetricz(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if _, err := c.Do(context.Background(), &Request{Tenant: "t", M: 8, K: 8, N: 8, ASeed: 1, BSeed: 2}); err != nil {
		t.Fatal(err)
	}
	mresp, err := http.Get(c.BaseURL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap recmat.MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["requests_total"] == 0 {
		t.Fatalf("metricz missing requests_total: %v", snap.Counters)
	}
	for _, g := range []string{"queue_depth", "tenant_active", "plan_cache_bytes"} {
		if _, present := snap.Gauges[g]; !present {
			t.Errorf("metricz missing gauge %q: %v", g, snap.Gauges)
		}
	}
	_ = s
}

// TestBetaAtomicityOnFailure checks the serving contract inherited from
// the engine: a request that fails leaves C either fully β-scaled-and-
// accumulated or untouched — here observed through the success path
// producing exactly the β-scaled result and a deadline failure
// producing no partial Data ever.
func TestBetaAtomicityOnFailure(t *testing.T) {
	faultinject.Configure(faultinject.Config{DelayProb: 1, Delay: 50 * time.Millisecond, Seed: 17})
	defer faultinject.Disable()
	_, c := newTestServer(t, Config{Workers: 2})
	resp, err := c.Do(context.Background(), &Request{
		Tenant: "t", M: 16, K: 16, N: 16, ASeed: 1, BSeed: 2, DeadlineMS: 1, ReturnData: true,
	})
	if err == nil {
		t.Skip("request completed inside 1ms; cannot observe the failure path")
	}
	if resp != nil {
		t.Fatalf("failed request returned a partial response: %+v", resp)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("failure was not typed: %v", err)
	}
}

// TestAutoAlgorithmSelection: a request without an algorithm resolves
// per shape. The rectangular serving shape must land on one of the
// table-driven ⟨m,k,n⟩ algorithms (the point of carrying them), a small
// shape on Standard, and the resolved choice must surface in AlgRan and
// the alg_selected_* counters behind /metricz.
func TestAutoAlgorithmSelection(t *testing.T) {
	// The table algorithms' breadth-first scratch estimate at this shape
	// needs more headroom than the default 256 MiB tenant quota leaves,
	// or admission (correctly) degrades the call off the selected table.
	s, c := newTestServer(t, Config{Workers: 4, TenantQuotaBytes: 1 << 30})

	req := &Request{
		Tenant: "acme", M: 1296, K: 864, N: 1296,
		ASeed: 1, BSeed: 2, DeadlineMS: 8000,
	}
	resp, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := recmat.ResolveAlgorithm(&recmat.Options{Algorithm: recmat.Auto}, req.M, req.K, req.N)
	switch want {
	case recmat.TableFast323, recmat.TableFast424, recmat.TableLaderman333:
	default:
		t.Fatalf("auto policy picked %v for %dx%dx%d, want a rectangular table algorithm",
			want, req.M, req.K, req.N)
	}
	if resp.AlgRan != want.String() {
		t.Fatalf("AlgRan = %q, want %q", resp.AlgRan, want.String())
	}
	if s.Metrics().Counter("alg_selected_"+want.String()).Value() < 1 {
		t.Fatalf("alg_selected_%s counter not incremented", want)
	}

	small := &Request{Tenant: "acme", M: 24, K: 24, N: 24, ASeed: 1, BSeed: 2}
	sresp, err := c.Do(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if sresp.AlgRan != recmat.Standard.String() {
		t.Fatalf("small shape AlgRan = %q, want standard", sresp.AlgRan)
	}
}
