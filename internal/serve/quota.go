package serve

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// quotas is the per-tenant rung of the admission ladder: each tenant
// may hold at most `limit` bytes of operand footprint in flight at
// once. The unused remainder of a tenant's quota becomes the request's
// Options.MemBudget, so the engine's own degradation ladder (fast
// parallel → low-memory serial Strassen → standard parallel → standard
// serial) absorbs pressure before the daemon has to reject outright —
// a busy tenant's requests degrade gracefully, then shed.
type quotas struct {
	mu      sync.Mutex
	limit   int64
	tenants map[string]*tenantState

	active *obs.Gauge   // tenant_active: tenants with >= 1 request in flight
	denied *obs.Counter // requests_quota_denied
}

type tenantState struct {
	bytes int64 // reserved operand bytes in flight
	reqs  int
}

func newQuotas(limit int64, reg *obs.Registry) *quotas {
	return &quotas{
		limit:   limit,
		tenants: map[string]*tenantState{},
		active:  reg.Gauge("tenant_active"),
		denied:  reg.Counter("requests_quota_denied"),
	}
}

// reserve admits one request of `bytes` operand footprint for the
// tenant. On success it returns the memory budget the engine call may
// use — the tenant's entire unused quota including this reservation,
// so packed operands plus algorithm temporaries are all charged to the
// tenant — and a release function (idempotence is the caller's job;
// call it exactly once). A request that can never fit the quota fails
// with ErrTooLarge; one that merely cannot fit *now* fails with
// ErrQuota, which is retryable.
func (q *quotas) reserve(tenant string, bytes int64) (budget int64, release func(), err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if bytes > q.limit {
		q.denied.Inc()
		return 0, nil, fmt.Errorf("%w: request needs %d bytes, tenant quota is %d", ErrTooLarge, bytes, q.limit)
	}
	ts := q.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		q.tenants[tenant] = ts
	}
	avail := q.limit - ts.bytes
	if bytes > avail {
		q.denied.Inc()
		return 0, nil, fmt.Errorf("%w: tenant %q has %d of %d bytes free, request needs %d",
			ErrQuota, tenant, avail, q.limit, bytes)
	}
	ts.bytes += bytes
	ts.reqs++
	if ts.reqs == 1 {
		q.active.Inc()
	}
	return avail, func() { q.unreserve(tenant, bytes) }, nil
}

func (q *quotas) unreserve(tenant string, bytes int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ts := q.tenants[tenant]
	if ts == nil {
		return
	}
	ts.bytes -= bytes
	ts.reqs--
	if ts.reqs <= 0 {
		delete(q.tenants, tenant)
		q.active.Dec()
	}
}

// operandBytes is the irreducible column-major footprint of one GEMM
// request — what the quota reserves. The engine's admission estimate
// (packed operands + temporaries) is larger; the gap is covered by
// granting the tenant's whole unused quota as the call's MemBudget.
func operandBytes(m, k, n int) int64 {
	return 8 * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n))
}
