// Package trace reproduces the algorithmic locality-of-reference
// analysis of Figure 1 of the paper: for each element of C = A·B it
// computes exactly which elements of A and of B the algorithm reads,
// under the standard, Strassen, and Winograd recursions carried to the
// element level.
//
// The computation is symbolic: every intermediate quantity carries the
// set of A-elements and B-elements it transitively depends on. A
// recursive multiplication unions the dependency sets of its operands
// into the product; additions union element-wise. For n ≤ 8 the sets
// fit in a single uint64 bitmap per operand.
package trace

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/core"
)

// Dep is the dependency set of one scalar value: bitmaps over the n×n
// elements of A and of B (bit i*n+j marks element (i,j)).
type Dep struct {
	A, B uint64
}

func (d Dep) union(e Dep) Dep {
	return Dep{A: d.A | e.A, B: d.B | e.B}
}

// operandBits selects the bitmap for one operand: 'A' or 'B'.
func (d Dep) operandBits(operand byte) uint64 {
	if operand == 'B' {
		return d.B
	}
	return d.A
}

// depMat is an n×n matrix of dependency sets with quadrant views.
type depMat struct {
	d      [][]Dep // full backing grid
	i0, j0 int
	n      int
}

func newDepMat(n int) depMat {
	g := make([][]Dep, n)
	for i := range g {
		g[i] = make([]Dep, n)
	}
	return depMat{d: g, n: n}
}

func (m depMat) at(i, j int) *Dep {
	return &m.d[m.i0+i][m.j0+j]
}

func (m depMat) quad(qi, qj int) depMat {
	h := m.n / 2
	return depMat{d: m.d, i0: m.i0 + qi*h, j0: m.j0 + qj*h, n: h}
}

// acc unions src element-wise into dst (dst += src, dst = a ± b, …; for
// dependency purposes all additions are unions).
func acc(dst, src depMat) {
	for i := 0; i < dst.n; i++ {
		for j := 0; j < dst.n; j++ {
			*dst.at(i, j) = dst.at(i, j).union(*src.at(i, j))
		}
	}
}

// add3 sets dst = union(a, b) element-wise.
func add3(dst, a, b depMat) {
	for i := 0; i < dst.n; i++ {
		for j := 0; j < dst.n; j++ {
			*dst.at(i, j) = a.at(i, j).union(*b.at(i, j))
		}
	}
}

// mulStd runs the standard element-level recursion: C += A·B.
func mulStd(C, A, B depMat) {
	if C.n == 1 {
		*C.at(0, 0) = C.at(0, 0).union(A.at(0, 0).union(*B.at(0, 0)))
		return
	}
	for qi := 0; qi < 2; qi++ {
		for qj := 0; qj < 2; qj++ {
			mulStd(C.quad(qi, qj), A.quad(qi, 0), B.quad(0, qj))
			mulStd(C.quad(qi, qj), A.quad(qi, 1), B.quad(1, qj))
		}
	}
}

// mulStrassen runs Strassen's recursion symbolically (Figure 1(b)).
func mulStrassen(C, A, B depMat) {
	if C.n == 1 {
		*C.at(0, 0) = C.at(0, 0).union(A.at(0, 0).union(*B.at(0, 0)))
		return
	}
	a11, a12, a21, a22 := A.quad(0, 0), A.quad(0, 1), A.quad(1, 0), A.quad(1, 1)
	b11, b12, b21, b22 := B.quad(0, 0), B.quad(0, 1), B.quad(1, 0), B.quad(1, 1)
	c11, c12, c21, c22 := C.quad(0, 0), C.quad(0, 1), C.quad(1, 0), C.quad(1, 1)
	h := C.n / 2
	tmp := func() depMat { return newDepMat(h) }
	s1, s2, s3, s4, s5 := tmp(), tmp(), tmp(), tmp(), tmp()
	t1, t2, t3, t4, t5 := tmp(), tmp(), tmp(), tmp(), tmp()
	add3(s1, a11, a22)
	add3(s2, a21, a22)
	add3(s3, a11, a12)
	add3(s4, a21, a11)
	add3(s5, a12, a22)
	add3(t1, b11, b22)
	add3(t2, b12, b22)
	add3(t3, b21, b11)
	add3(t4, b11, b12)
	add3(t5, b21, b22)
	var p [7]depMat
	for i := range p {
		p[i] = tmp()
	}
	mulStrassen(p[0], s1, t1)
	mulStrassen(p[1], s2, b11)
	mulStrassen(p[2], a11, t2)
	mulStrassen(p[3], a22, t3)
	mulStrassen(p[4], s3, b22)
	mulStrassen(p[5], s4, t4)
	mulStrassen(p[6], s5, t5)
	acc(c11, p[0])
	acc(c11, p[3])
	acc(c11, p[4])
	acc(c11, p[6])
	acc(c21, p[1])
	acc(c21, p[3])
	acc(c12, p[2])
	acc(c12, p[4])
	acc(c22, p[0])
	acc(c22, p[2])
	acc(c22, p[1])
	acc(c22, p[5])
}

// mulWinograd runs Winograd's recursion symbolically (Figure 1(c)).
func mulWinograd(C, A, B depMat) {
	if C.n == 1 {
		*C.at(0, 0) = C.at(0, 0).union(A.at(0, 0).union(*B.at(0, 0)))
		return
	}
	a11, a12, a21, a22 := A.quad(0, 0), A.quad(0, 1), A.quad(1, 0), A.quad(1, 1)
	b11, b12, b21, b22 := B.quad(0, 0), B.quad(0, 1), B.quad(1, 0), B.quad(1, 1)
	c11, c12, c21, c22 := C.quad(0, 0), C.quad(0, 1), C.quad(1, 0), C.quad(1, 1)
	h := C.n / 2
	tmp := func() depMat { return newDepMat(h) }
	s1, s2, s3, s4 := tmp(), tmp(), tmp(), tmp()
	t1, t2, t3, t4 := tmp(), tmp(), tmp(), tmp()
	add3(s1, a21, a22)
	add3(s2, s1, a11)
	add3(s3, a11, a21)
	add3(s4, a12, s2)
	add3(t1, b12, b11)
	add3(t2, b22, t1)
	add3(t3, b22, b12)
	add3(t4, b21, t2)
	var p [7]depMat
	for i := range p {
		p[i] = tmp()
	}
	mulWinograd(p[0], a11, b11)
	mulWinograd(p[1], a12, b21)
	mulWinograd(p[2], s1, t1)
	mulWinograd(p[3], s2, t2)
	mulWinograd(p[4], s3, t3)
	mulWinograd(p[5], s4, b22)
	mulWinograd(p[6], a22, t4)
	u2 := tmp()
	add3(u2, p[0], p[3]) // U2 = P1 + P4
	u3 := tmp()
	add3(u3, u2, p[4]) // U3 = U2 + P5
	u6 := tmp()
	add3(u6, u2, p[2]) // U6 = U2 + P3
	acc(c11, p[0])     // C11 = P1 + P2
	acc(c11, p[1])
	acc(c21, u3) // C21 = U3 + P7
	acc(c21, p[6])
	acc(c22, u3) // C22 = U3 + P3
	acc(c22, p[2])
	acc(c12, u6) // C12 = U6 + P6
	acc(c12, p[5])
}

// Reads computes, for every element (i, j) of C, the dependency sets of
// the chosen algorithm on an n×n problem (n a power of two, n ≤ 8).
// The returned grid is indexed [i][j].
func Reads(alg core.Alg, n int) [][]Dep {
	if n <= 0 || n > 8 || n&(n-1) != 0 {
		panic("trace: n must be a power of two, at most 8")
	}
	A, B, C := newDepMat(n), newDepMat(n), newDepMat(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			A.at(i, j).A = 1 << uint(i*n+j)
			B.at(i, j).B = 1 << uint(i*n+j)
		}
	}
	switch alg {
	case core.Standard, core.Standard8:
		mulStd(C, A, B)
	case core.Strassen:
		mulStrassen(C, A, B)
	case core.Winograd:
		mulWinograd(C, A, B)
	default:
		panic("trace: unknown algorithm")
	}
	out := make([][]Dep, n)
	for i := range out {
		out[i] = make([]Dep, n)
		for j := range out[i] {
			out[i][j] = *C.at(i, j)
		}
	}
	return out
}

// Count returns the number of elements in a bitmap.
func Count(bitmap uint64) int {
	return bits.OnesCount64(bitmap)
}

// Render draws the Figure 1 dot-grid for one operand: an n×n grid of
// boxes (one per element of C), each containing an n×n grid of dots
// marking the elements of A (operand 'A') or B (operand 'B') read to
// compute it.
func Render(deps [][]Dep, operand byte) string {
	n := len(deps)
	var sb strings.Builder
	fmt.Fprintf(&sb, "elements of %c read to compute each element of C (%dx%d):\n", operand, n, n)
	for bi := 0; bi < n; bi++ {
		for ri := 0; ri < n; ri++ { // row of dots inside the box row
			for bj := 0; bj < n; bj++ {
				b := deps[bi][bj].operandBits(operand)
				for rj := 0; rj < n; rj++ {
					if b&(1<<uint(ri*n+rj)) != 0 {
						sb.WriteByte('*')
					} else {
						sb.WriteByte('.')
					}
				}
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
