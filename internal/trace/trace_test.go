package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestStandardReadsExactlyRowAndColumn(t *testing.T) {
	// The standard algorithm has perfect algorithmic locality: C(i,j)
	// reads exactly row i of A and column j of B (Figure 1(a)).
	for _, n := range []int{2, 4, 8} {
		deps := Reads(core.Standard, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var wantA, wantB uint64
				for k := 0; k < n; k++ {
					wantA |= 1 << uint(i*n+k)
					wantB |= 1 << uint(k*n+j)
				}
				if deps[i][j].A != wantA {
					t.Fatalf("n=%d C(%d,%d): A reads %064b, want row %d", n, i, j, deps[i][j].A, i)
				}
				if deps[i][j].B != wantB {
					t.Fatalf("n=%d C(%d,%d): B reads wrong, want column %d", n, i, j, j)
				}
			}
		}
	}
}

func TestFastAlgorithmsReadSupersets(t *testing.T) {
	// Strassen and Winograd must read at least the row/column the
	// product mathematically depends on, and strictly more for some
	// elements (the worse algorithmic locality of Figure 1(b,c)).
	n := 8
	std := Reads(core.Standard, n)
	for _, alg := range []core.Alg{core.Strassen, core.Winograd} {
		fast := Reads(alg, n)
		strict := false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if fast[i][j].A&std[i][j].A != std[i][j].A ||
					fast[i][j].B&std[i][j].B != std[i][j].B {
					t.Fatalf("%v: C(%d,%d) misses mathematically required reads", alg, i, j)
				}
				if Count(fast[i][j].A) > n || Count(fast[i][j].B) > n {
					strict = true
				}
			}
		}
		if !strict {
			t.Errorf("%v: no element reads more than the standard algorithm", alg)
		}
	}
}

func TestStrassenWorstLocalityOnDiagonal(t *testing.T) {
	// The paper observes the access-pattern blowup "along the main
	// diagonal for Strassen's algorithm": diagonal elements of C read
	// the maximum number of A elements.
	n := 8
	deps := Reads(core.Strassen, n)
	max := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c := Count(deps[i][j].A); c > max {
				max = c
			}
		}
	}
	for i := 0; i < n; i++ {
		if Count(deps[i][i].A) != max {
			t.Errorf("diagonal element (%d,%d) reads %d of A, max is %d",
				i, i, Count(deps[i][i].A), max)
		}
	}
	if max <= n {
		t.Errorf("Strassen max A-reads = %d, expected > %d", max, n)
	}
}

func TestWinogradWorstLocalityAtCorners(t *testing.T) {
	// The paper singles out elements (0,7) and (7,0) for Winograd.
	n := 8
	deps := Reads(core.Winograd, n)
	max := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c := Count(deps[i][j].A) + Count(deps[i][j].B); c > max {
				max = c
			}
		}
	}
	corner07 := Count(deps[0][7].A) + Count(deps[0][7].B)
	corner70 := Count(deps[7][0].A) + Count(deps[7][0].B)
	if corner07 != max && corner70 != max {
		t.Errorf("corners read %d and %d, max is %d — expected a corner to be worst",
			corner07, corner70, max)
	}
}

func TestWinogradReadsNoMoreThanStrassenTotal(t *testing.T) {
	// Sanity: both fast algorithms touch every element of A and B
	// overall (the union over all C elements is everything).
	n := 8
	for _, alg := range []core.Alg{core.Strassen, core.Winograd} {
		var allA, allB uint64
		deps := Reads(alg, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				allA |= deps[i][j].A
				allB |= deps[i][j].B
			}
		}
		if Count(allA) != n*n || Count(allB) != n*n {
			t.Errorf("%v: union of reads covers %d/%d of A, %d/%d of B",
				alg, Count(allA), n*n, Count(allB), n*n)
		}
	}
}

func TestStandard8SameAsStandard(t *testing.T) {
	a := Reads(core.Standard, 4)
	b := Reads(core.Standard8, 4)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("Standard8 dependency sets differ from Standard")
			}
		}
	}
}

func TestRender(t *testing.T) {
	deps := Reads(core.Standard, 2)
	out := Render(deps, 'A')
	if !strings.Contains(out, "**") || !strings.Contains(out, "..") {
		t.Fatalf("render missing dot rows:\n%s", out)
	}
	outB := Render(deps, 'B')
	if out == outB {
		t.Fatal("A and B renders should differ")
	}
}

func TestReadsRejectsBadN(t *testing.T) {
	for _, n := range []int{0, 3, 16, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d should panic", n)
				}
			}()
			Reads(core.Standard, n)
		}()
	}
}

func TestCount(t *testing.T) {
	if Count(0) != 0 || Count(1) != 1 || Count(0b1011) != 3 || Count(^uint64(0)) != 64 {
		t.Fatal("popcount wrong")
	}
}
