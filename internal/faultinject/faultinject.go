// Package faultinject provides probabilistic fault hooks — injected
// panics, delays, and simulated allocation failures — that the
// scheduler and the multiplication driver compile in permanently. The
// hooks cost one atomic load when injection is disabled (the default),
// so they are safe on hot paths; enabling them turns the library's
// failure handling into something a stress suite can exercise
// deterministically.
//
// Injection is configured programmatically with Configure, or for whole
// processes (the cmd/ binaries, `make stress`) through the RECMAT_FAULTS
// environment variable, parsed at init:
//
//	RECMAT_FAULTS="panic=0.02,alloc=0.02,delay=0.01/200us,seed=7"
//
// where panic/alloc/delay are per-hook firing probabilities, the value
// after the slash is the sleep duration for delay faults, and seed makes
// the (splitmix64) fault stream reproducible.
//
// An injected panic carries a *Fault value, which is an error, so after
// the library's panic-to-error conversion errors.As(err, &fault) finds
// it — tests distinguish injected faults from genuine bugs that way.
package faultinject

import (
	"fmt"
	"math"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// Fault is the panic value of an injected fault.
type Fault struct {
	// Site names the instrumentation point that fired (e.g.
	// "core.newTemp").
	Site string
	// Kind is "panic" for Point faults and "alloc" for Alloc faults.
	Kind string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault at %s", f.Kind, f.Site)
}

// Config sets the firing probabilities of the hooks. All probabilities
// are clamped to [0, 1]; a zero Config disables everything.
type Config struct {
	// PanicProb is the probability that a Point call panics.
	PanicProb float64
	// DelayProb is the probability that a Point call sleeps for Delay.
	DelayProb float64
	// Delay is the sleep applied when a delay fault fires.
	Delay time.Duration
	// AllocProb is the probability that an Alloc call panics (simulating
	// a failed scratch allocation).
	AllocProb float64
	// Seed seeds the deterministic fault stream; 0 keeps the current
	// stream position.
	Seed uint64
}

var (
	enabled     atomic.Bool
	panicThresh atomic.Uint64
	delayThresh atomic.Uint64
	allocThresh atomic.Uint64
	delayNanos  atomic.Int64
	rngState    atomic.Uint64
)

func init() {
	if s := os.Getenv("RECMAT_FAULTS"); s != "" {
		c, err := Parse(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring RECMAT_FAULTS=%q: %v\n", s, err)
			return
		}
		Configure(c)
	}
}

// thresh maps a probability to a uint64 threshold compared against the
// raw RNG output, avoiding float work on the hook fast path.
func thresh(p float64) uint64 {
	if p <= 0 || math.IsNaN(p) {
		return 0
	}
	if p >= 1 {
		return math.MaxUint64
	}
	return uint64(p * float64(math.MaxUint64))
}

// Configure enables injection with the given probabilities. It may be
// called at any time, including while hooks are firing.
func Configure(c Config) {
	panicThresh.Store(thresh(c.PanicProb))
	delayThresh.Store(thresh(c.DelayProb))
	allocThresh.Store(thresh(c.AllocProb))
	delayNanos.Store(int64(c.Delay))
	if c.Seed != 0 {
		rngState.Store(c.Seed)
	}
	enabled.Store(c.PanicProb > 0 || c.DelayProb > 0 || c.AllocProb > 0)
}

// Disable turns all hooks off.
func Disable() { Configure(Config{}) }

// Enabled reports whether any hook can fire.
func Enabled() bool { return enabled.Load() }

// rnd is a lock-free splitmix64 step shared by all goroutines: the
// atomic counter advance makes the stream race-free, and a fixed Seed
// makes the sequence of draws deterministic for a serial caller.
func rnd() uint64 {
	x := rngState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Point is a generic fault site: with the configured probabilities it
// sleeps (delay fault), panics with a *Fault (panic fault), or — almost
// always — does nothing. Call it at task and phase boundaries.
func Point(site string) {
	if !enabled.Load() {
		return
	}
	if t := delayThresh.Load(); t != 0 && rnd() <= t {
		time.Sleep(time.Duration(delayNanos.Load()))
	}
	if t := panicThresh.Load(); t != 0 && rnd() <= t {
		panic(&Fault{Site: site, Kind: "panic"})
	}
}

// Alloc is an allocation fault site: with probability AllocProb it
// panics with a *Fault of kind "alloc", simulating an allocation
// failure at the call site. Call it immediately before allocating
// scratch storage.
func Alloc(site string) {
	if !enabled.Load() {
		return
	}
	if t := allocThresh.Load(); t != 0 && rnd() <= t {
		panic(&Fault{Site: site, Kind: "alloc"})
	}
}

// Parse decodes the RECMAT_FAULTS syntax: comma-separated key=value
// pairs with keys panic, alloc, delay (probability, optionally
// "/duration"), and seed.
func Parse(s string) (Config, error) {
	var c Config
	c.Delay = 100 * time.Microsecond
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("faultinject: %q is not key=value", part)
		}
		switch key {
		case "panic":
			if _, err := fmt.Sscanf(val, "%g", &c.PanicProb); err != nil {
				return Config{}, fmt.Errorf("faultinject: bad panic probability %q", val)
			}
		case "alloc":
			if _, err := fmt.Sscanf(val, "%g", &c.AllocProb); err != nil {
				return Config{}, fmt.Errorf("faultinject: bad alloc probability %q", val)
			}
		case "delay":
			prob, dur, hasDur := strings.Cut(val, "/")
			if _, err := fmt.Sscanf(prob, "%g", &c.DelayProb); err != nil {
				return Config{}, fmt.Errorf("faultinject: bad delay probability %q", prob)
			}
			if hasDur {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return Config{}, fmt.Errorf("faultinject: bad delay duration %q: %v", dur, err)
				}
				c.Delay = d
			}
		case "seed":
			if _, err := fmt.Sscanf(val, "%d", &c.Seed); err != nil {
				return Config{}, fmt.Errorf("faultinject: bad seed %q", val)
			}
		default:
			return Config{}, fmt.Errorf("faultinject: unknown key %q", key)
		}
	}
	return c, nil
}
