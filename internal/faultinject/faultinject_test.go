package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledHooksAreNoops(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	// Must not panic.
	Point("test.site")
	Alloc("test.site")
}

func TestCertainPanicFires(t *testing.T) {
	Configure(Config{PanicProb: 1, Seed: 1})
	defer Disable()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PanicProb=1 did not panic")
		}
		f, ok := r.(*Fault)
		if !ok {
			t.Fatalf("panic value %T, want *Fault", r)
		}
		if f.Site != "test.point" || f.Kind != "panic" {
			t.Fatalf("fault = %+v", f)
		}
		var asErr *Fault
		if !errors.As(f, &asErr) {
			t.Fatal("*Fault is not usable as an error")
		}
	}()
	Point("test.point")
}

func TestCertainAllocFires(t *testing.T) {
	Configure(Config{AllocProb: 1, Seed: 2})
	defer Disable()
	defer func() {
		f, ok := recover().(*Fault)
		if !ok || f.Kind != "alloc" || f.Site != "test.alloc" {
			t.Fatalf("recover = %v, want alloc fault at test.alloc", f)
		}
	}()
	Alloc("test.alloc")
}

func TestZeroProbabilityNeverFires(t *testing.T) {
	Configure(Config{PanicProb: 0, AllocProb: 0, DelayProb: 1, Delay: 0, Seed: 3})
	defer Disable()
	for i := 0; i < 1000; i++ {
		Point("never") // delay of 0 ns; must never panic
		Alloc("never")
	}
}

func TestSeededStreamIsDeterministic(t *testing.T) {
	run := func() (fired int) {
		Configure(Config{PanicProb: 0.3, Seed: 42})
		defer Disable()
		for i := 0; i < 200; i++ {
			func() {
				defer func() {
					if recover() != nil {
						fired++
					}
				}()
				Point("det")
			}()
		}
		return fired
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced %d then %d faults", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("p=0.3 over 200 draws fired %d times; stream looks degenerate", a)
	}
}

func TestParseFull(t *testing.T) {
	c, err := Parse("panic=0.02,alloc=0.05,delay=0.01/200us,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if c.PanicProb != 0.02 || c.AllocProb != 0.05 || c.DelayProb != 0.01 {
		t.Fatalf("probabilities wrong: %+v", c)
	}
	if c.Delay != 200*time.Microsecond {
		t.Fatalf("delay = %v, want 200µs", c.Delay)
	}
	if c.Seed != 7 {
		t.Fatalf("seed = %d, want 7", c.Seed)
	}
}

func TestParseDefaultsAndPartials(t *testing.T) {
	c, err := Parse("delay=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 100*time.Microsecond {
		t.Fatalf("default delay = %v, want 100µs", c.Delay)
	}
	if c.DelayProb != 0.5 || c.PanicProb != 0 {
		t.Fatalf("config = %+v", c)
	}
	if c, err := Parse(""); err != nil || c.PanicProb != 0 {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"panic",           // not key=value
		"panic=x",         // bad probability
		"alloc=y",         // bad probability
		"delay=0.1/zebra", // bad duration
		"seed=abc",        // bad seed
		"frobnicate=1",    // unknown key
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
