package recmat

import (
	"context"

	"repro/internal/core"
)

// Plan is a prepacked operand: a matrix converted to a recursive layout
// once, then multiplied many times without paying the conversion again.
// This is the amortization Section 4's accounting motivates — for a
// serving workload (one large fixed operand, a stream of small
// right-hand sides) the fixed operand's conversion would otherwise
// dominate every call.
//
// A Plan is created by Engine.Prepack, stays valid across any number of
// Engine.GEMMPrepacked calls (and across engines — it holds no pool
// reference), and returns its buffers to the internal recycling pool
// when Released. It is immutable and safe for concurrent reads.
type Plan struct {
	p *core.Prepacked
	// trans records whether the source was packed transposed, for
	// callers inspecting the plan.
	trans bool
}

// Rows and Cols return the logical extents of the packed operand —
// op(A), with any transposition requested at Prepack time applied.
func (p *Plan) Rows() int { return p.p.Rows }
func (p *Plan) Cols() int { return p.p.Cols }

// Trans reports whether the plan packed the transpose of its source.
func (p *Plan) Trans() bool { return p.trans }

// Layout returns the recursive layout the plan is packed in.
func (p *Plan) Layout() Layout { return p.p.Curve }

// Bytes returns the packed storage the plan holds.
func (p *Plan) Bytes() int64 { return p.p.Bytes() }

// Release returns the plan's buffers to the recycling pool. The plan
// must not be used afterwards. Release must not race with
// multiplications that use the plan.
func (p *Plan) Release() { p.p.Release() }

// Prepack converts op(A) into a reusable Plan in the layout selected by
// opts (one of the five recursive layouts; ColMajor has no conversion
// to amortize and is rejected). Only the layout, tile, and splitting
// options matter here — algorithm and kernel are chosen per
// GEMMPrepacked call.
//
// Two independently prepacked plans can multiply when their geometries
// conform on the shared dimension; GEMMPrepacked validates this and
// explains any mismatch. For a streaming right-hand operand, use
// PrepackConforming, which conforms by construction.
func (e *Engine) Prepack(A *Matrix, trans bool, opts *Options) (*Plan, error) {
	p, err := core.Prepack(context.Background(), e.pool, opts.coreOptions(), A, trans)
	if err != nil {
		return nil, err
	}
	return &Plan{p: p, trans: trans}, nil
}

// PrepackConforming packs op(B) to conform with like as the left-hand
// plan: the shared inner dimension adopts like's depth, tiling, and
// segmentation, so GEMMPrepacked(ctx, α, like, result, β, C) always
// validates. This is the serving pattern's entry point — Prepack the
// fixed operand once, PrepackConforming each streaming right-hand side
// against it. The layout is taken from like; opts may still adjust
// splitting of the free dimension (nil = defaults).
func (e *Engine) PrepackConforming(B *Matrix, trans bool, opts *Options, like *Plan) (*Plan, error) {
	var lp *core.Prepacked
	if like != nil {
		lp = like.p
	}
	p, err := core.PrepackConforming(context.Background(), e.pool, opts.coreOptions(), B, trans, lp)
	if err != nil {
		return nil, err
	}
	return &Plan{p: p, trans: trans}, nil
}

// Transposed derives the Plan of the packed operand's transpose without
// re-reading the source matrix: each block is transposed inside the
// recursive layout. One Prepack plus one Transposed serves both operand
// slots of a symmetric product (C ← α·A·Aᵀ + β·C) from a single
// conversion pass.
func (p *Plan) Transposed(e *Engine) (*Plan, error) {
	q, err := p.p.Transposed(context.Background(), e.pool)
	if err != nil {
		return nil, err
	}
	return &Plan{p: q, trans: !p.trans}, nil
}

// GEMMPrepacked computes C ← α·A·B + β·C where both operands are
// prepacked Plans (transposition was folded at Prepack time, so there
// are no trans flags). The per-call conversion is reduced to zeroing
// and unpacking the C tile: a steady-state call reports
// Report.ConvertIn ≈ 0 and a ConvertBytes covering only the C epilogue,
// with PackReused counting the operand packs the plans served.
//
// opts selects algorithm, kernel, and cutoffs; layout and tile options
// are ignored in favor of the plans' packed geometry, and
// MaxResidualGrowth does not apply. The failure contract matches
// DGEMMContext: on error or cancellation C holds the β-scaled input
// plus fully completed output blocks only.
func (e *Engine) GEMMPrepacked(ctx context.Context, alpha float64, pa, pb *Plan, beta float64, C *Matrix) (*Report, error) {
	return e.GEMMPrepackedOpts(ctx, nil, alpha, pa, pb, beta, C)
}

// GEMMPrepackedOpts is GEMMPrepacked with explicit Options for
// algorithm, kernel, and cutoff selection (nil = defaults).
func (e *Engine) GEMMPrepackedOpts(ctx context.Context, opts *Options, alpha float64, pa, pb *Plan, beta float64, C *Matrix) (*Report, error) {
	co := opts.coreOptions()
	co.Metrics = e.metrics
	return core.GEMMPrepacked(ctx, e.pool, co, alpha, pa.p, pb.p, beta, C)
}
