package recmat_test

import (
	"context"
	"fmt"
	"math/rand"

	recmat "repro"
)

// ExampleMul multiplies two matrices over the Z-Morton layout and checks
// the result against the naive reference.
func ExampleMul() {
	rng := rand.New(rand.NewSource(1))
	A := recmat.Random(100, 100, rng)
	B := recmat.Random(100, 100, rng)
	C := recmat.NewMatrix(100, 100)
	if _, err := recmat.Mul(C, A, B, &recmat.Options{
		Layout:    recmat.ZMorton,
		Algorithm: recmat.Strassen,
		Workers:   2,
	}); err != nil {
		panic(err)
	}
	want := recmat.NewMatrix(100, 100)
	recmat.RefGEMM(false, false, 1, A, B, 0, want)
	fmt.Println("correct:", recmat.Equal(C, want, 1e-10))
	// Output: correct: true
}

// ExampleEngine_DGEMM shows the full BLAS dgemm form with transposes and
// scalars.
func ExampleEngine_DGEMM() {
	eng := recmat.NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(2))
	A := recmat.Random(30, 50, rng) // op(A) = Aᵀ is 50×30
	B := recmat.Random(30, 40, rng)
	C := recmat.Random(50, 40, rng)
	want := C.Clone()
	recmat.RefGEMM(true, false, 2, A, B, -1, want)
	if _, err := eng.DGEMM(true, false, 2, A, B, -1, C, &recmat.Options{Layout: recmat.Hilbert}); err != nil {
		panic(err)
	}
	fmt.Println("correct:", recmat.Equal(C, want, 1e-11))
	// Output: correct: true
}

// ExampleEngine_Prepack amortizes layout conversion over a stream of
// multiplications: the fixed operand is converted once into a Plan,
// each streamed right-hand side is packed conforming to it, and the
// per-call conversion drops to the C epilogue alone.
func ExampleEngine_Prepack() {
	eng := recmat.NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(4))
	n, b := 128, 16
	W := recmat.Random(n, n, rng)
	opts := &recmat.Options{Layout: recmat.Hilbert, PartnerDim: b}
	pw, err := eng.Prepack(W, false, opts)
	if err != nil {
		panic(err)
	}
	defer pw.Release()

	ok, reusedConversion := true, true
	for stream := 0; stream < 3; stream++ {
		B := recmat.Random(n, b, rng)
		pb, err := eng.PrepackConforming(B, false, opts, pw)
		if err != nil {
			panic(err)
		}
		C := recmat.NewMatrix(n, b)
		rep, err := eng.GEMMPrepacked(context.Background(), 1, pw, pb, 0, C)
		pb.Release()
		if err != nil {
			panic(err)
		}
		want := recmat.NewMatrix(n, b)
		recmat.RefGEMM(false, false, 1, W, B, 0, want)
		ok = ok && recmat.Equal(C, want, 1e-11)
		// Every operand pack was served by the plans, none re-converted.
		reusedConversion = reusedConversion && rep.PackReused > 0
	}
	fmt.Println("correct:", ok, "conversion amortized:", reusedConversion)
	// Output: correct: true conversion amortized: true
}

// ExampleEngine_Cholesky factors an SPD matrix and verifies L·Lᵀ = A.
func ExampleEngine_Cholesky() {
	eng := recmat.NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(3))
	n := 80
	G := recmat.Random(n, n, rng)
	A := recmat.NewMatrix(n, n)
	recmat.RefGEMM(true, false, 1, G, G, 0, A)
	for i := 0; i < n; i++ {
		A.Set(i, i, A.At(i, i)+float64(n))
	}
	L, err := eng.Cholesky(A, &recmat.Options{Layout: recmat.ZMorton})
	if err != nil {
		panic(err)
	}
	rec := recmat.NewMatrix(n, n)
	recmat.RefGEMM(false, true, 1, L, L, 0, rec)
	fmt.Println("reconstructs:", recmat.Equal(rec, A, 1e-9))
	// Output: reconstructs: true
}
