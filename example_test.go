package recmat_test

import (
	"fmt"
	"math/rand"

	recmat "repro"
)

// ExampleMul multiplies two matrices over the Z-Morton layout and checks
// the result against the naive reference.
func ExampleMul() {
	rng := rand.New(rand.NewSource(1))
	A := recmat.Random(100, 100, rng)
	B := recmat.Random(100, 100, rng)
	C := recmat.NewMatrix(100, 100)
	if _, err := recmat.Mul(C, A, B, &recmat.Options{
		Layout:    recmat.ZMorton,
		Algorithm: recmat.Strassen,
		Workers:   2,
	}); err != nil {
		panic(err)
	}
	want := recmat.NewMatrix(100, 100)
	recmat.RefGEMM(false, false, 1, A, B, 0, want)
	fmt.Println("correct:", recmat.Equal(C, want, 1e-10))
	// Output: correct: true
}

// ExampleEngine_DGEMM shows the full BLAS dgemm form with transposes and
// scalars.
func ExampleEngine_DGEMM() {
	eng := recmat.NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(2))
	A := recmat.Random(30, 50, rng) // op(A) = Aᵀ is 50×30
	B := recmat.Random(30, 40, rng)
	C := recmat.Random(50, 40, rng)
	want := C.Clone()
	recmat.RefGEMM(true, false, 2, A, B, -1, want)
	if _, err := eng.DGEMM(true, false, 2, A, B, -1, C, &recmat.Options{Layout: recmat.Hilbert}); err != nil {
		panic(err)
	}
	fmt.Println("correct:", recmat.Equal(C, want, 1e-11))
	// Output: correct: true
}

// ExampleEngine_Cholesky factors an SPD matrix and verifies L·Lᵀ = A.
func ExampleEngine_Cholesky() {
	eng := recmat.NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(3))
	n := 80
	G := recmat.Random(n, n, rng)
	A := recmat.NewMatrix(n, n)
	recmat.RefGEMM(true, false, 1, G, G, 0, A)
	for i := 0; i < n; i++ {
		A.Set(i, i, A.At(i, i)+float64(n))
	}
	L, err := eng.Cholesky(A, &recmat.Options{Layout: recmat.ZMorton})
	if err != nil {
		panic(err)
	}
	rec := recmat.NewMatrix(n, n)
	recmat.RefGEMM(false, true, 1, L, L, 0, rec)
	fmt.Println("reconstructs:", recmat.Equal(rec, A, 1e-9))
	// Output: reconstructs: true
}
