// localityviz prints the algorithmic locality-of-reference diagrams of
// Figure 1 of the paper: for each element of C = A·B, the elements of A
// and of B that the chosen algorithm reads to compute it, as dot grids.
//
// Usage:
//
//	localityviz [-alg standard|strassen|winograd] [-n 8] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	algName := flag.String("alg", "", "algorithm (default: all three)")
	n := flag.Int("n", 8, "matrix size (power of two, at most 8)")
	stats := flag.Bool("stats", false, "also print per-element read counts")
	flag.Parse()

	algs := []core.Alg{core.Standard, core.Strassen, core.Winograd}
	if *algName != "" {
		a, err := core.ParseAlg(*algName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		algs = []core.Alg{a}
	}
	for _, a := range algs {
		deps := trace.Reads(a, *n)
		fmt.Printf("=== %v ===\n", a)
		fmt.Print(trace.Render(deps, 'A'))
		fmt.Print(trace.Render(deps, 'B'))
		if *stats {
			printStats(deps, *n)
		}
	}
}

func printStats(deps [][]trace.Dep, n int) {
	fmt.Println("reads of A (rows) + B per element of C:")
	total, max := 0, 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := trace.Count(deps[i][j].A) + trace.Count(deps[i][j].B)
			fmt.Printf("%4d", c)
			total += c
			if c > max {
				max = c
			}
		}
		fmt.Println()
	}
	fmt.Printf("total reads: %d  max per element: %d  (standard algorithm: %d and %d)\n\n",
		total, max, 2*n*n*n, 2*n)
}
