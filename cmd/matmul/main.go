// matmul multiplies two random matrices with a chosen algorithm, layout,
// and worker count, verifies the result against the naive reference, and
// prints the timing breakdown — the library's command-line smoke test.
//
// Usage:
//
//	matmul [-m 1000] [-k 1000] [-n 1000] [-alg standard] [-layout z]
//	       [-workers 0] [-kernel unrolled4] [-tile 0] [-verify]
//	       [-alpha 1] [-beta 0] [-ta] [-tb] [-reps 1] [-trace out.json]
//
// With -trace, every repetition is recorded and the result is written
// as Chrome Trace Event JSON — load it at https://ui.perfetto.dev to
// see per-worker task, steal, leaf-kernel, and pack/unpack activity
// under the call's convert/compute phase spans.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	recmat "repro"
)

func main() {
	m := flag.Int("m", 1000, "rows of op(A) and C")
	k := flag.Int("k", 0, "inner dimension (default: m)")
	n := flag.Int("n", 0, "columns of op(B) and C (default: m)")
	algName := flag.String("alg", "standard",
		"algorithm: "+strings.Join(recmat.AlgorithmNames(), "|"))
	layoutName := flag.String("layout", "z", "layout: c|u|x|z|g|h")
	workers := flag.Int("workers", 0, "worker count (0 = one per CPU)")
	kernelName := flag.String("kernel", "auto",
		"leaf kernel: auto|"+strings.Join(recmat.Kernels(), "|")+" (auto = benchmark at first use and pick)")
	forceTile := flag.Int("tile", 0, "force exact tile size (0 = auto-select)")
	verify := flag.Bool("verify", false, "check against the naive reference (slow for large n)")
	alpha := flag.Float64("alpha", 1, "alpha scalar")
	beta := flag.Float64("beta", 0, "beta scalar")
	ta := flag.Bool("ta", false, "use op(A) = Aᵀ")
	tb := flag.Bool("tb", false, "use op(B) = Bᵀ")
	reps := flag.Int("reps", 1, "repetitions (reports the best)")
	seed := flag.Int64("seed", 1, "random seed")
	tracePath := flag.String("trace", "", "write a Chrome Trace Event JSON file covering all repetitions")
	flag.Parse()

	if *k == 0 {
		*k = *m
	}
	if *n == 0 {
		*n = *m
	}
	alg, err := recmat.ParseAlgorithm(*algName)
	die(err)
	lo, err := recmat.ParseLayout(*layoutName)
	die(err)
	kname := ""
	if *kernelName != "auto" {
		_, err := recmat.KernelByName(*kernelName) // fail fast on typos
		die(err)
		kname = *kernelName
	}

	rng := rand.New(rand.NewSource(*seed))
	ar, ac := *m, *k
	if *ta {
		ar, ac = ac, ar
	}
	br, bc := *k, *n
	if *tb {
		br, bc = bc, br
	}
	A := recmat.Random(ar, ac, rng)
	B := recmat.Random(br, bc, rng)
	C0 := recmat.Random(*m, *n, rng)

	eng := recmat.NewEngine(*workers)
	defer eng.Close()
	opts := &recmat.Options{Layout: lo, Algorithm: alg, KernelName: kname, ForceTile: *forceTile}

	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		die(err)
		die(eng.EnableTracing(traceFile))
	}

	var best *recmat.Report
	var C *recmat.Matrix
	for r := 0; r < *reps; r++ {
		C = C0.Clone()
		rep, err := eng.DGEMM(*ta, *tb, *alpha, A, B, *beta, C, opts)
		die(err)
		if best == nil || rep.Total() < best.Total() {
			best = rep
		}
	}

	if traceFile != nil {
		die(eng.DisableTracing())
		die(traceFile.Close())
		fmt.Printf("trace: wrote %s (load at https://ui.perfetto.dev)\n", *tracePath)
	}

	flops := 2 * float64(*m) * float64(*k) * float64(*n)
	fmt.Printf("C(%dx%d) = %.3g*op(A)(%dx%d)·op(B)(%dx%d) + %.3g*C\n",
		*m, *n, *alpha, *m, *k, *k, *n, *beta)
	kernelRan := best.Kernel
	if *kernelName == "auto" {
		kernelRan = "auto:" + kernelRan
	}
	fmt.Printf("algorithm=%v layout=%v workers=%d kernel=%s\n", alg, lo, eng.Workers(), kernelRan)
	fmt.Printf("tiling: depth=%d tiles=(%d,%d,%d) padded=(%d,%d,%d) blocks=%d\n",
		best.Depth, best.TileM, best.TileK, best.TileN,
		best.PaddedM, best.PaddedK, best.PaddedN, best.Blocks)
	fmt.Printf("convert-in  %12v\n", best.ConvertIn)
	fmt.Printf("compute     %12v   (%.0f MFLOPS)\n", best.Compute,
		flops/best.Compute.Seconds()/1e6)
	fmt.Printf("convert-out %12v\n", best.ConvertOut)
	fmt.Printf("total       %12v   conversion share %.1f%%\n", best.Total(),
		100*float64(best.ConvertIn+best.ConvertOut)/float64(best.Total()))
	fmt.Printf("work=%.3g flops  span=%.3g flops  parallelism=%.1f\n",
		best.Work, best.Span, best.Parallelism())
	fmt.Printf("sched: spawns=%d steals=%d inline=%d  utilization=%.1f%%\n",
		best.Spawns, best.Steals, best.Inline, 100*best.Utilization)

	if *verify {
		t0 := time.Now()
		want := C0.Clone()
		recmat.RefGEMM(*ta, *tb, *alpha, A, B, *beta, want)
		diff := recmat.MaxAbsDiff(C, want)
		tol := 1e-10 * float64(*k)
		status := "OK"
		if diff > tol {
			status = "FAIL"
		}
		fmt.Printf("verify: max |diff| = %.3g (tol %.3g) %s  [reference took %v]\n",
			diff, tol, status, time.Since(t0))
		if diff > tol {
			os.Exit(1)
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
