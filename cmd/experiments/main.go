// experiments regenerates every figure and table of the paper's
// evaluation (Section 5), printing one table per experiment. By default
// it runs every experiment at "quick" sizes that finish in a few minutes
// on a laptop; -full selects the paper's original problem sizes
// (n ≈ 1000–1536), and -fig / -exp select a single experiment.
//
// Usage:
//
//	experiments [-fig 4|5|6|7] [-exp slowdown|parallelism|conversion|ld|falseshare]
//	            [-full] [-workers 0] [-reps 3]
//
// The mapping from experiment to paper result is documented in DESIGN.md
// and the measured outputs are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	recmat "repro"
	"repro/internal/cachesim"
	"repro/internal/layout"
	"repro/internal/trace"
)

var (
	full    = flag.Bool("full", false, "use the paper's problem sizes (slow)")
	workers = flag.Int("workers", 0, "max worker count (0 = one per CPU)")
	reps    = flag.Int("reps", 3, "repetitions per data point (best is reported)")
	seed    = flag.Int64("seed", 1, "random seed")
	// The paper's experiments fix the four-way-unrolled C kernel, so that
	// is the default here — NOT the library's autotuned default. Pass
	// -kernel=auto to let the engine pick per tile shape.
	kernel = flag.String("kernel", "unrolled4", "leaf kernel for all experiments (auto = autotuned)")
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (1, 2, 4, 5, 6, 7); 0 = all")
	exp := flag.String("exp", "", "text experiment: slowdown|parallelism|conversion|ld|falseshare|tlb|lowmem|sched|dilation")
	flag.Parse()

	run := func(n int, name string, f func()) {
		all := *fig == 0 && *exp == ""
		if all || (n > 0 && *fig == n) || (name != "" && *exp == name) {
			f()
		}
	}
	run(1, "", fig1)
	run(2, "", fig2)
	run(4, "", fig4)
	run(5, "", fig5)
	run(6, "", fig6)
	run(7, "", fig7)
	run(-1, "slowdown", slowdown)
	run(-1, "parallelism", parallelism)
	run(-1, "conversion", conversion)
	run(-1, "ld", leadingDim)
	run(-1, "falseshare", falseShare)
	run(-1, "tlb", tlb)
	run(-1, "lowmem", lowmem)
	run(-1, "sched", schedStats)
	run(-1, "dilation", dilation)
}

// timeMul measures the best-of-reps end-to-end time of one configuration.
// Configurations that do not pin a kernel get the -kernel flag's choice
// (the paper's unrolled4 by default).
func timeMul(eng *recmat.Engine, n int, opts *recmat.Options) (time.Duration, *recmat.Report) {
	if opts.Kernel == nil && opts.KernelName == "" && *kernel != "auto" {
		opts.KernelName = *kernel
	}
	rng := rand.New(rand.NewSource(*seed))
	A := recmat.Random(n, n, rng)
	B := recmat.Random(n, n, rng)
	C := recmat.NewMatrix(n, n)
	var best time.Duration
	var bestRep *recmat.Report
	for r := 0; r < *reps; r++ {
		t0 := time.Now()
		rep, err := eng.Mul(C, A, B, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		el := time.Since(t0)
		if bestRep == nil || el < best {
			best, bestRep = el, rep
		}
	}
	return best, bestRep
}

func header(title string) {
	fmt.Printf("\n================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("================================================================\n")
}

// fig1 prints the algorithmic locality summary of Figure 1 (the full dot
// grids come from cmd/localityviz).
func fig1() {
	header("Figure 1 — algorithmic locality of reference (8x8, per C element)")
	fmt.Println("see cmd/localityviz for the dot grids; summary statistics:")
	fmt.Printf("%-10s %14s %14s %14s\n", "algorithm", "total reads", "max A reads", "max B reads")
	type row struct {
		name string
		alg  recmat.Algorithm
	}
	for _, r := range []row{{"standard", recmat.Standard}, {"strassen", recmat.Strassen}, {"winograd", recmat.Winograd}} {
		total, maxA, maxB := localityStats(r.alg, 8)
		fmt.Printf("%-10s %14d %14d %14d\n", r.name, total, maxA, maxB)
	}
	fmt.Println("(standard reads exactly n per element; the fast algorithms read")
	fmt.Println(" supersets, worst on the diagonal for Strassen and at the (0,7)/(7,0)")
	fmt.Println(" corners for Winograd — matching the paper's Figure 1.)")
}

func localityStats(alg recmat.Algorithm, n int) (total, maxA, maxB int) {
	deps := trace.Reads(alg, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := trace.Count(deps[i][j].A), trace.Count(deps[i][j].B)
			total += a + b
			if a > maxA {
				maxA = a
			}
			if b > maxB {
				maxB = b
			}
		}
	}
	return
}

// fig2 prints the layout orderings (Figure 2) at depth 3.
func fig2() {
	header("Figure 2 — layout function orderings (8x8 grid of tiles)")
	for _, c := range layout.Curves {
		fmt.Printf("\n%s:\n", c)
		g := c.Grid(3)
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				fmt.Printf("%3d", g[i*8+j])
			}
			fmt.Println()
		}
	}
}

// fig4 reproduces Figure 4: execution time vs. tile size, standard
// algorithm, Z-Morton layout, one processor.
func fig4() {
	n1, n2 := 256, 384
	tiles1 := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	tiles2 := []int{3, 6, 12, 24, 48, 96, 192, 384}
	if *full {
		n1, n2 = 1024, 1536
		tiles1 = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
		tiles2 = []int{3, 6, 12, 24, 48, 96, 192, 384, 768}
	}
	header(fmt.Sprintf("Figure 4 — time vs. tile size (standard, Z-Morton, 1 proc, n=%d and n=%d)", n1, n2))
	eng := recmat.NewEngine(1)
	defer eng.Close()
	for _, nc := range []struct {
		n  int
		ts []int
	}{{n1, tiles1}, {n2, tiles2}} {
		fmt.Printf("\nn = %d\n%8s %14s %10s\n", nc.n, "tile", "time", "MFLOPS")
		for _, t := range nc.ts {
			el, _ := timeMul(eng, nc.n, &recmat.Options{Layout: recmat.ZMorton, Algorithm: recmat.Standard, ForceTile: t})
			fmt.Printf("%8d %14v %10.0f\n", t, el.Round(time.Microsecond), mflops(nc.n, el))
		}
	}
}

func mflops(n int, el time.Duration) float64 {
	return 2 * float64(n) * float64(n) * float64(n) / el.Seconds() / 1e6
}

// fig5 reproduces Figure 5: robustness of performance for n in a small
// range, standard and Strassen × {ColMajor, Z-Morton} × worker counts.
func fig5() {
	base, end, step := 250, 266, 2
	if *full {
		base, end, step = 1000, 1048, 4
	}
	header(fmt.Sprintf("Figure 5 — robustness for n in [%d,%d] (time per n)", base, end))
	ws := workerList()
	for _, w := range ws {
		eng := recmat.NewEngine(w)
		fmt.Printf("\nworkers = %d\n%6s", w, "n")
		type cfg struct {
			name string
			alg  recmat.Algorithm
			lo   recmat.Layout
		}
		cfgs := []cfg{
			{"std/LC", recmat.Standard, recmat.ColMajor},
			{"std/LZ", recmat.Standard, recmat.ZMorton},
			{"str/LC", recmat.Strassen, recmat.ColMajor},
			{"str/LZ", recmat.Strassen, recmat.ZMorton},
		}
		for _, c := range cfgs {
			fmt.Printf(" %12s", c.name)
		}
		fmt.Println()
		for n := base; n <= end; n += step {
			fmt.Printf("%6d", n)
			for _, c := range cfgs {
				el, _ := timeMul(eng, n, &recmat.Options{Layout: c.lo, Algorithm: c.alg})
				fmt.Printf(" %12v", el.Round(time.Microsecond))
			}
			fmt.Println()
		}
		eng.Close()
	}
}

// fig6 reproduces Figure 6: six layouts × three algorithms.
func fig6() {
	sizes := []int{250, 360}
	if *full {
		sizes = []int{1000, 1200}
	}
	header("Figure 6 — comparative performance of the six layouts")
	ws := workerList()
	for _, n := range sizes {
		for _, w := range ws {
			eng := recmat.NewEngine(w)
			fmt.Printf("\nn = %d, workers = %d\n%-12s", n, w, "layout")
			algs := []recmat.Algorithm{recmat.Standard, recmat.Strassen, recmat.Winograd}
			for _, a := range algs {
				fmt.Printf(" %12v", a)
			}
			fmt.Println()
			for _, lo := range recmat.Layouts {
				fmt.Printf("%-12v", lo)
				for _, a := range algs {
					el, _ := timeMul(eng, n, &recmat.Options{Layout: lo, Algorithm: a})
					fmt.Printf(" %12v", el.Round(time.Microsecond))
				}
				fmt.Println()
			}
			eng.Close()
		}
	}
}

// fig7 reproduces Figure 7's overhead factors with the kernel
// substitution of DESIGN.md: blocked≈native BLAS, unrolled4 = the
// paper's C kernel, naive = unoptimized compilation.
func fig7() {
	n := 256
	if *full {
		n = 1024
	}
	header(fmt.Sprintf("Figure 7 — leaf-kernel quality overheads (n=%d, 1 proc)", n))
	eng := recmat.NewEngine(1)
	defer eng.Close()
	fmt.Printf("%-10s %-10s %14s %10s %18s\n", "algorithm", "kernel", "time", "MFLOPS", "vs blocked")
	for _, alg := range []recmat.Algorithm{recmat.Standard, recmat.Strassen} {
		var base time.Duration
		// packed8x4 is beyond the paper's kernel set: it bounds from
		// below what a tuned native BLAS would have contributed.
		for _, kn := range []string{"blocked", "axpy", "unrolled4", "naive", "packed8x4"} {
			el, _ := timeMul(eng, n, &recmat.Options{Layout: recmat.ZMorton, Algorithm: alg, KernelName: kn})
			if kn == "blocked" {
				base = el
			}
			ratio := "      -"
			if base > 0 {
				ratio = fmt.Sprintf("%6.2fx", float64(el)/float64(base))
			}
			fmt.Printf("%-10v %-10s %14v %10.0f %18s\n",
				alg, kn, el.Round(time.Microsecond), mflops(n, el), ratio)
		}
	}
	fmt.Println("(paper: no native BLAS costs 1.2-1.4x; gcc instead of cc costs 1.5-1.9x)")
}

// slowdown reproduces the Section 5 text: slowdown of the recursive code
// versus a tuned baseline, at the best tile size and at element level.
func slowdown() {
	sizes := []int{256, 384}
	if *full {
		sizes = []int{1024, 1536}
	}
	header("Section 5 text — slowdown factors vs. tuned baseline")
	eng := recmat.NewEngine(1)
	defer eng.Close()
	for _, n := range sizes {
		// Pick a tile near 16 that divides n into a power-of-two grid so
		// no padding flops distort the comparison (the paper's n=1024
		// uses t=16; n=1536 uses t=24).
		t := 16
		for !isPow2(n / t) {
			t += 8
		}
		native, _ := timeMul(eng, n, &recmat.Options{Layout: recmat.ColMajor, Algorithm: recmat.Standard, KernelName: "blocked", ForceTile: n})
		best, _ := timeMul(eng, n, &recmat.Options{Layout: recmat.ZMorton, Algorithm: recmat.Standard, ForceTile: t})
		fmt.Printf("\nn = %d\n", n)
		fmt.Printf("  tuned baseline (one blocked call): %v\n", native.Round(time.Microsecond))
		fmt.Printf("  recursive Z-Morton, t=%-2d:          %v  (slowdown %.2fx; paper: 1.88x at n=1024, 1.56x at n=1536)\n",
			t, best.Round(time.Microsecond), float64(best)/float64(native))
		if !*full && n <= 384 {
			elem, _ := timeMul(eng, n, &recmat.Options{Layout: recmat.ZMorton, Algorithm: recmat.Standard, ForceTile: 1})
			fmt.Printf("  element-level (t=1, Frens-Wise):   %v  (slowdown %.1fx; paper reports ~8x)\n",
				elem.Round(time.Microsecond), float64(elem)/float64(native))
		}
	}
}

// parallelism reproduces the critical-path discussion: analytic and
// measured work/span for the algorithms at n=1000-equivalent tiling.
func parallelism() {
	header("Section 5 text — available parallelism (work/span)")
	fmt.Printf("%-10s %8s %6s %14s %14s %12s\n", "algorithm", "n", "tile", "work(flops)", "span(flops)", "parallelism")
	n, t, d := 1024, 16, uint(6)
	for _, alg := range recmat.Algorithms {
		w, s := recmat.WorkSpan(alg, d, t)
		fmt.Printf("%-10v %8d %6d %14.3g %14.3g %12.1f\n", alg, n, t, w, s, recmat.Parallelism(w, s))
	}
	fmt.Println("\nmeasured (runtime accounting, SerialCutoff=1, n=256, t=16):")
	eng := recmat.NewEngine(workerCap())
	defer eng.Close()
	fmt.Printf("%-10s %14s %14s %12s\n", "algorithm", "work", "span", "parallelism")
	for _, alg := range recmat.Algorithms {
		_, rep := timeMul(eng, 256, &recmat.Options{Layout: recmat.ZMorton, Algorithm: alg, ForceTile: 16, SerialCutoff: 1})
		fmt.Printf("%-10v %14.3g %14.3g %12.1f\n", alg, rep.Work, rep.Span, rep.Parallelism())
	}
	fmt.Println("(the paper's Cilk-measured values, ~40 standard / ~23 fast at n=1000,")
	fmt.Println(" are burdened by runtime overheads; the unburdened DAG parallelism is")
	fmt.Println(" far larger, and the fast algorithms' is lower, in the same ordering.)")
}

// conversion quantifies the format-conversion overhead of Section 4.
func conversion() {
	n := 512
	if *full {
		n = 1024
	}
	header(fmt.Sprintf("Section 4 — conversion cost vs. multiply (standard, n=%d)", n))
	eng := recmat.NewEngine(workerCap())
	defer eng.Close()
	fmt.Printf("%-12s %12s %12s %12s %8s\n", "layout", "convert-in", "compute", "convert-out", "share")
	for _, lo := range recmat.Layouts[1:] {
		_, rep := timeMul(eng, n, &recmat.Options{Layout: lo, Algorithm: recmat.Standard})
		share := 100 * float64(rep.ConvertIn+rep.ConvertOut) / float64(rep.Total())
		fmt.Printf("%-12v %12v %12v %12v %7.1f%%\n", lo,
			rep.ConvertIn.Round(time.Microsecond), rep.Compute.Round(time.Microsecond),
			rep.ConvertOut.Round(time.Microsecond), share)
	}
}

// leadingDim reproduces the Section 5.1 explanation: leaf products of
// the standard algorithm on canonical layouts run at leading dimension
// n, while the fast algorithms' temporaries halve the leading dimension
// each level. Simulated self-interference misses show why that matters.
func leadingDim() {
	header("Section 5.1 — self-interference vs. leading dimension (simulated)")
	fmt.Printf("%8s %10s %14s %10s\n", "ld", "t", "L1 misses", "miss rate")
	for _, ld := range []int{16, 68, 100, 64, 128, 256, 512, 1024, 520} {
		r := cachesim.LeafSim{T: 16, LD: ld, Repeats: 50, Cfg: cachesim.Small}.Run()
		fmt.Printf("%8d %10d %14d %9.1f%%\n", ld, 16, r.L1.Misses, 100*r.L1.MissRate())
	}
	fmt.Println("(a 16x16 tile re-walked 50 times: contiguous (ld=16) or benign leading")
	fmt.Println(" dimensions (68, 100) miss only on cold start; power-of-two leading")
	fmt.Println(" dimensions make the tile's columns conflict in the direct-mapped L1")
	fmt.Println(" and keep missing. This size sensitivity is what makes the standard")
	fmt.Println(" algorithm under ColMajor fluctuate in Figure 5, while the fast")
	fmt.Println(" algorithms, whose temporaries halve ld at every level, stay flat.)")
}

// falseShare reproduces the false-sharing claim of Section 3 with the
// coherence simulator.
func falseShare() {
	header("Section 3 — false sharing across quadrant boundaries (simulated, 4 procs)")
	fmt.Printf("%8s %8s %-12s %16s %16s\n", "n", "t", "layout", "invalidations", "false-sharing")
	for _, nt := range [][2]int{{60, 15}, {100, 25}, {116, 29}, {64, 16}, {128, 32}} {
		n, t := nt[0], nt[1]
		for _, lo := range []recmat.Layout{recmat.ColMajor, recmat.ZMorton} {
			r := cachesim.MatmulSim{N: n, T: t, Curve: lo, Procs: 4, Cfg: cachesim.Small}.Run()
			fmt.Printf("%8d %8d %-12v %16d %16d\n", n, t, lo, r.L1.Invalidations, r.L1.FalseInvalidations)
		}
	}
	fmt.Println("(sizes whose quadrant height is not a multiple of the 4-word block")
	fmt.Println(" (60, 100, 116) false-share under ColMajor and not under Z-Morton,")
	fmt.Println(" which keeps each processor's quadrant contiguous; block-aligned")
	fmt.Println(" sizes (64, 128) hide the effect under both — the size sensitivity")
	fmt.Println(" the paper attributes to canonical layouts.)")
}

func workerList() []int {
	max := workerCap()
	ws := []int{1}
	for w := 2; w <= max; w *= 2 {
		ws = append(ws, w)
	}
	return ws
}

func workerCap() int {
	if *workers > 0 {
		return *workers
	}
	return 4
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// tlb reproduces the Section 3 dilation claim for TLBs: row-direction
// walks over column-major matrices thrash the TLB; recursive layouts
// keep row neighbors in-page.
func tlb() {
	header("Section 3 — TLB dilation on row-direction walks (simulated)")
	fmt.Printf("%8s %-12s %12s %12s %12s\n", "n", "layout", "accesses", "TLB misses", "miss rate")
	for _, n := range []int{128, 256, 512} {
		for _, lo := range []recmat.Layout{recmat.ColMajor, recmat.ZMorton, recmat.Hilbert} {
			r := cachesim.RowWalkSim{N: n, T: 16, Curve: lo, Rows: 8, Cfg: cachesim.Small}.Run()
			fmt.Printf("%8d %-12v %12d %12d %11.1f%%\n",
				n, lo, r.Accesses, r.TLB.Misses, 100*r.TLB.MissRate())
		}
	}
	fmt.Println("(walking 8 rows element-by-element: once the column stride exceeds")
	fmt.Println(" the page size, the canonical layout touches a new page per element")
	fmt.Println(" while recursive layouts keep most row neighbors within one tile.)")
}

// lowmem reproduces the Section 5 curiosity about the space-conserving
// serial Strassen variant: it behaves like the standard algorithm, with
// recursive layouts reducing its time by 10-20%.
func lowmem() {
	n := 360
	if *full {
		n = 1024
	}
	header(fmt.Sprintf("Section 5 text — low-memory serial Strassen vs. layout (n=%d, 1 proc)", n))
	eng := recmat.NewEngine(1)
	defer eng.Close()
	fmt.Printf("%-18s %12s %12s %10s\n", "algorithm", "ColMajor", "Z-Morton", "LZ gain")
	for _, alg := range []recmat.Algorithm{recmat.Strassen, recmat.StrassenLowMem} {
		lc, _ := timeMul(eng, n, &recmat.Options{Layout: recmat.ColMajor, Algorithm: alg})
		lz, _ := timeMul(eng, n, &recmat.Options{Layout: recmat.ZMorton, Algorithm: alg})
		fmt.Printf("%-18v %12v %12v %9.1f%%\n", alg,
			lc.Round(time.Microsecond), lz.Round(time.Microsecond),
			100*(1-float64(lz)/float64(lc)))
	}
	fmt.Println("(paper: the interspersed variant 'behaves more like the standard")
	fmt.Println(" algorithm: L_Z reduces execution times by 10-20%'.)")
}

// schedStats prints the scheduler counters for one run — the analogue of
// the Cilk instrumentation discussed in the paper's critique.
func schedStats() {
	n := 360
	if *full {
		n = 1000
	}
	header(fmt.Sprintf("Cilk critique analogue — scheduler behavior (n=%d)", n))
	fmt.Printf("%-10s %8s %10s %10s %10s %12s\n", "algorithm", "workers", "spawned", "stolen", "inline", "steal rate")
	for _, alg := range []recmat.Algorithm{recmat.Standard, recmat.Strassen} {
		for _, w := range workerList() {
			eng := recmat.NewEngine(w)
			eng.ResetSchedulerStats()
			timeMul(eng, n, &recmat.Options{Layout: recmat.ZMorton, Algorithm: alg})
			st := eng.SchedulerStats()
			rate := 0.0
			if st.Spawns > 0 {
				rate = float64(st.Steals) / float64(st.Spawns)
			}
			fmt.Printf("%-10v %8d %10d %10d %10d %11.1f%%\n",
				alg, w, st.Spawns, st.Steals, st.Inline, 100*rate)
			eng.Close()
		}
	}
	fmt.Println("(the recursion stops spawning below the serial cutoff, so tasks are")
	fmt.Println(" few and coarse — the Cilk work-first discipline. On one worker no")
	fmt.Println(" steals occur, by construction; with more workers the steal count")
	fmt.Println(" grows with the worker count while remaining bounded by the spawn")
	fmt.Println(" count, which is how the paper's code kept scheduling overhead")
	fmt.Println(" negligible relative to quadrant-sized work.)")
}

// dilation prints the Section 3.4 dilation statistics of every layout:
// jump counts and sizes along the curve, directional neighbor stretch,
// and the axis-asymmetry that distinguishes canonical from recursive
// layouts.
func dilation() {
	header("Section 3.4 — dilation statistics of the layout functions (64x64 grid)")
	fmt.Printf("%-12s %8s %8s %8s %10s %10s %10s\n",
		"layout", "jumps", "maxjump", "avgstep", "rowstretch", "colstretch", "asymmetry")
	for _, c := range layout.Curves {
		d := layout.MeasureDilation(c, 6)
		fmt.Printf("%-12v %8d %8d %8.3f %10.2f %10.2f %10.1f\n",
			c, d.Jumps, d.MaxJump, d.AvgStep, d.AvgRowStretch, d.AvgColStretch, d.Asymmetry())
	}
	fmt.Println("(Hilbert walks with no jumps; jump size and frequency shrink as the")
	fmt.Println(" orientation count grows, as Section 3.4 observes. The canonical")
	fmt.Println(" layouts are maximally asymmetric — unit stretch on the favored")
	fmt.Println(" axis, 2^d on the other — while every recursive layout keeps the")
	fmt.Println(" two directions within a factor of two.)")
}
