// tracecheck validates a Chrome Trace Event JSON file the way the
// library's exporter promises to produce it: parseable JSON, known
// phase codes, per-track monotonic timestamps, well-nested spans, and
// every flow id carrying both a start and a finish. It prints a
// one-line summary and exits non-zero on a malformed trace — the
// `make trace-smoke` target runs it over a trace freshly produced by
// cmd/matmul.
//
// Usage:
//
//	tracecheck [-stats] [-min-request-links N] trace.json
//
// -stats prints per-event-name span counts (the quick "what is in this
// trace" view). -min-request-links asserts the request→wave-item
// linkage of a serving trace: at least N distinct flow ids pairing a
// request lane to the engine work it rode, each on a named request
// track — the contract the daemon's coalescer correlation promises.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	stats := flag.Bool("stats", false, "print per-event-name span counts")
	minLinks := flag.Int("min-request-links", 0, "fail unless ≥ N request→wave flow links are present")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-stats] [-min-request-links N] trace.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sum, err := obs.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok — %d events (%d spans, %d instants) on %d tracks (%d request lanes), %d flow links, %d dropped\n",
		path, sum.Events, sum.Spans, sum.Instants, sum.Tracks, sum.RequestTracks, sum.FlowLinks, sum.Dropped)
	if *stats {
		names := make([]string, 0, len(sum.ByName))
		for n := range sum.ByName {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if sum.ByName[names[i]] != sum.ByName[names[j]] {
				return sum.ByName[names[i]] > sum.ByName[names[j]]
			}
			return names[i] < names[j]
		})
		for _, n := range names {
			fmt.Printf("  %8d  %s\n", sum.ByName[n], n)
		}
	}
	if *minLinks > 0 {
		if sum.FlowLinks < *minLinks {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %d request→wave flow links, want ≥ %d\n",
				path, sum.FlowLinks, *minLinks)
			os.Exit(1)
		}
		if sum.RequestTracks == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: flow links present but no named request lanes\n", path)
			os.Exit(1)
		}
	}
}
