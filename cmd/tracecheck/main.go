// tracecheck validates a Chrome Trace Event JSON file the way the
// library's exporter promises to produce it: parseable JSON, known
// phase codes, per-track monotonic timestamps, and well-nested spans.
// It prints a one-line summary and exits non-zero on a malformed
// trace — the `make trace-smoke` target runs it over a trace freshly
// produced by cmd/matmul.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sum, err := obs.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok — %d events (%d spans, %d instants) on %d tracks, %d dropped\n",
		os.Args[1], sum.Events, sum.Spans, sum.Instants, sum.Tracks, sum.Dropped)
}
