// layoutviz prints the array layout orderings of Figure 2 of the paper:
// for each layout function, the position along the curve (the S number)
// of every tile in a 2^d × 2^d grid, plus an ASCII rendering of the
// curve itself.
//
// Usage:
//
//	layoutviz [-d depth] [-curve name]
//
// With no -curve, all seven layouts are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/layout"
)

func main() {
	d := flag.Uint("d", 3, "depth: the grid is 2^d tiles per side")
	curveName := flag.String("curve", "", "single curve to print (c,r,u,x,z,g,h); default all")
	flag.Parse()

	curves := layout.Curves
	if *curveName != "" {
		c, err := layout.ParseCurve(*curveName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		curves = []layout.Curve{c}
	}
	for _, c := range curves {
		printCurve(c, *d)
	}
}

func printCurve(c layout.Curve, d uint) {
	n := 1 << d
	fmt.Printf("%s (orientations: %d)\n", c, c.Orientations())
	g := c.Grid(d)
	w := len(fmt.Sprint(n*n - 1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			fmt.Printf("%*d ", w, g[i*n+j])
		}
		fmt.Println()
	}
	fmt.Println(renderPath(c, d))
}

// renderPath draws the curve on a character grid: cells at even
// positions, connecting segments between consecutive S positions.
func renderPath(c layout.Curve, d uint) string {
	n := 1 << d
	h, w := 2*n-1, 2*n-1
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	pi, pj := c.SInverse(0, d)
	grid[2*pi][2*pj] = 'o'
	for s := uint64(1); s < uint64(n)*uint64(n); s++ {
		i, j := c.SInverse(s, d)
		grid[2*i][2*j] = 'o'
		di, dj := int(i)-int(pi), int(j)-int(pj)
		switch {
		case di == 0 && (dj == 1 || dj == -1):
			grid[2*i][2*int(pj)+dj] = '-'
		case dj == 0 && (di == 1 || di == -1):
			grid[2*int(pi)+di][2*j] = '|'
		default:
			// Non-adjacent jump (the dilation effect): mark both ends.
			grid[2*pi][2*pj] = '*'
			grid[2*i][2*j] = '*'
		}
		pi, pj = i, j
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}
