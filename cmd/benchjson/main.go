// benchjson measures end-to-end GFLOPS for every {algorithm, layout,
// kernel} combination at fixed problem sizes and writes the results as
// JSON — the machine-readable record of the repo's performance
// trajectory (BENCH_3.json at the repo root is its committed output).
//
// Usage:
//
//	benchjson [-o BENCH_3.json] [-sizes 512,1024] [-reps 2]
//	          [-algs standard,strassen,winograd] [-kernels unrolled4,blocked,packed8x4,auto]
//
// GFLOPS are computed from 2n³ over the end-to-end time (conversion
// included), so layouts pay for their format conversions — the honest
// accounting the paper insists on. Compute-only GFLOPS are reported
// alongside, as are per-call heap allocation counts and the scratch
// arena reservation (schema 2). The recursion's temporaries come from
// the arena, so allocs_per_op measures only the per-call fixed costs
// (packed operand buffers, scheduler bookkeeping), not a per-node
// temp-tree churn.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	recmat "repro"
)

type result struct {
	N         int    `json:"n"`
	Algorithm string `json:"algorithm"`
	Layout    string `json:"layout"`
	Kernel    string `json:"kernel"`
	// KernelRan is the kernel that actually executed; it differs from
	// Kernel only for "auto", where it names the calibration winner.
	KernelRan     string  `json:"kernel_ran"`
	TotalSeconds  float64 `json:"total_seconds"`
	GFLOPS        float64 `json:"gflops"`
	ComputeGFLOPS float64 `json:"compute_gflops"`
	ConvertShare  float64 `json:"convert_share"`
	// ArenaBytes is the scratch-arena reservation of the best rep;
	// AllocsPerOp / AllocBytesPerOp are the whole-process heap deltas
	// (runtime.MemStats Mallocs / TotalAlloc) around that rep's Mul call.
	ArenaBytes      int64  `json:"arena_bytes"`
	AllocsPerOp     uint64 `json:"allocs_per_op"`
	AllocBytesPerOp uint64 `json:"alloc_bytes_per_op"`
}

type output struct {
	Schema    int    `json:"schema"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Workers   int    `json:"workers"`
	Reps      int    `json:"reps"`
	// RefGFLOPS is the host-speed yardstick: a fixed serial in-cache
	// triple-loop matmul measured just before the sweep. Comparison
	// tools (cmd/benchdiff) divide it out so that two records taken at
	// different host clock speeds remain comparable.
	RefGFLOPS float64  `json:"ref_gflops"`
	Results   []result `json:"results"`
}

// refGFLOPS measures the yardstick: best of several reps of a 96³
// serial triple loop, small enough to live in cache so the number
// tracks CPU clock speed rather than memory.
func refGFLOPS() float64 {
	const n = 96
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5) * 0.5
	}
	best := time.Duration(1 << 62)
	for rep := 0; rep < 8; rep++ {
		t0 := time.Now()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var s float64
				for k := 0; k < n; k++ {
					s += a[k*n+i] * b[j*n+k]
				}
				c[j*n+i] = s
			}
		}
		if dt := time.Since(t0); dt < best {
			best = dt
		}
	}
	if c[0] < -1 { // keep the loop observable
		fmt.Fprintln(os.Stderr, c[0])
	}
	return 2 * n * n * n / best.Seconds() / 1e9
}

func main() {
	out := flag.String("o", "BENCH_3.json", "output file (- for stdout)")
	sizesFlag := flag.String("sizes", "512,1024", "comma-separated problem sizes")
	algsFlag := flag.String("algs", "standard,strassen,winograd", "comma-separated algorithms")
	kernelsFlag := flag.String("kernels", "unrolled4,blocked,packed8x4,auto", "comma-separated kernels (auto = autotuned)")
	layoutsFlag := flag.String("layouts", "", "comma-separated layouts (default: all six)")
	workers := flag.Int("workers", 0, "worker count (0 = one per CPU)")
	reps := flag.Int("reps", 2, "repetitions per point (best is kept)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	die(err)
	var algs []recmat.Algorithm
	for _, s := range splitList(*algsFlag) {
		a, err := recmat.ParseAlgorithm(s)
		die(err)
		algs = append(algs, a)
	}
	layouts := recmat.Layouts
	if *layoutsFlag != "" {
		layouts = nil
		for _, s := range splitList(*layoutsFlag) {
			lo, err := recmat.ParseLayout(s)
			die(err)
			layouts = append(layouts, lo)
		}
	}
	kernels := splitList(*kernelsFlag)
	for _, kn := range kernels {
		if kn != "auto" {
			_, err := recmat.KernelByName(kn)
			die(err)
		}
	}

	eng := recmat.NewEngine(*workers)
	defer eng.Close()
	o := output{
		Schema:    2,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Workers:   eng.Workers(),
		Reps:      *reps,
		RefGFLOPS: refGFLOPS(),
	}
	fmt.Fprintf(os.Stderr, "host yardstick: %.3f GFLOPS (serial 96^3 in-cache)\n", o.RefGFLOPS)

	for _, n := range sizes {
		rng := rand.New(rand.NewSource(*seed))
		A := recmat.Random(n, n, rng)
		B := recmat.Random(n, n, rng)
		C := recmat.NewMatrix(n, n)
		flops := 2 * float64(n) * float64(n) * float64(n)
		for _, alg := range algs {
			for _, lo := range layouts {
				for _, kn := range kernels {
					opts := &recmat.Options{Layout: lo, Algorithm: alg}
					if kn != "auto" {
						opts.KernelName = kn
					}
					var best *recmat.Report
					var bestAllocs, bestBytes uint64
					var ms0, ms1 runtime.MemStats
					for r := 0; r < *reps; r++ {
						runtime.ReadMemStats(&ms0)
						rep, err := eng.Mul(C, A, B, opts)
						runtime.ReadMemStats(&ms1)
						die(err)
						if best == nil || rep.Total() < best.Total() {
							best = rep
							bestAllocs = ms1.Mallocs - ms0.Mallocs
							bestBytes = ms1.TotalAlloc - ms0.TotalAlloc
						}
					}
					r := result{
						N:               n,
						Algorithm:       alg.String(),
						Layout:          lo.String(),
						Kernel:          kn,
						KernelRan:       best.Kernel,
						TotalSeconds:    best.Total().Seconds(),
						GFLOPS:          flops / best.Total().Seconds() / 1e9,
						ComputeGFLOPS:   flops / best.Compute.Seconds() / 1e9,
						ConvertShare:    float64(best.ConvertIn+best.ConvertOut) / float64(best.Total()),
						ArenaBytes:      best.ArenaBytes,
						AllocsPerOp:     bestAllocs,
						AllocBytesPerOp: bestBytes,
					}
					o.Results = append(o.Results, r)
					fmt.Fprintf(os.Stderr, "n=%-5d %-9s %-11s %-10s %6.2f GFLOPS %8d allocs/op (ran %s)\n",
						n, r.Algorithm, r.Layout, r.Kernel, r.GFLOPS, r.AllocsPerOp, r.KernelRan)
				}
			}
		}
	}

	buf, err := json.MarshalIndent(&o, "", "  ")
	die(err)
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	die(os.WriteFile(*out, buf, 0o644))
}

func splitList(s string) []string {
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

func parseInts(s string) ([]int, error) {
	var ns []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		ns = append(ns, v)
	}
	return ns, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
