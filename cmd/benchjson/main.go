// benchjson measures end-to-end GFLOPS for every {algorithm, layout,
// kernel} combination at fixed problem sizes and writes the results as
// JSON — the machine-readable record of the repo's performance
// trajectory (BENCH_10.json at the repo root is its committed output).
//
// Usage:
//
//	benchjson [-o BENCH_10.json] [-sizes 512,1024] [-reps 2]
//	          [-shapes 1024x1024x1024,1296x864x1296,...]
//	          [-algs standard,strassen,winograd] [-kernels unrolled4,...,auto]
//	          [-serve-b 48] [-serve-layout hilbert] [-serve-daemon 3s]
//
// GFLOPS are computed from 2n³ over the end-to-end time (conversion
// included), so layouts pay for their format conversions — the honest
// accounting the paper insists on. Compute-only GFLOPS are reported
// alongside, as are per-call heap allocation counts and the scratch
// arena reservation (schema 2). The recursion's temporaries come from
// the arena, so allocs_per_op measures only the per-call fixed costs
// (packed operand buffers, scheduler bookkeeping), not a per-node
// temp-tree churn.
//
// Schema 3 adds the amortized-conversion telemetry: per-record
// conversion seconds and bytes plus the pack-reuse and buffer-pool
// counters, and a serving-shape sweep (mode "serve-percall" vs
// "serve-prepacked") — a fixed n×n A multiplied by a stream of skinny
// n×b right-hand sides, once paying A's conversion per call and once
// with A prepacked so each call converts only B and the C epilogue.
// The per-stream flop count 2n²b is tiny next to A's conversion, so
// this is the shape where amortization matters most.
//
// Schema 4 adds the scheduler telemetry of the best rep: spawned and
// stolen task counts and the pool's worker utilization over the call
// (busy worker-time / workers × wall).
//
// Schema 5 adds the host's detected SIMD capabilities (cpu_features)
// and, by default, sweeps the hardware micro-kernels the CPU unlocked
// ("avx2" on amd64, "neon" on arm64) alongside the pure-Go set — two
// records on different machines are only comparable once you know
// which instruction sets were in play.
//
// Schema 6 adds the serving-daemon record (mode "serve-daemon"): an
// in-process recmatd instance driven to saturation by the closed-loop
// multi-tenant load generator for -serve-daemon seconds, recording
// p50/p99 end-to-end latency, sustained QPS, and the shed rate at an
// offered load 8× the admission limit. GFLOPS is 0 on these records,
// which keeps them out of benchdiff's per-point GFLOPS comparisons —
// latency under deliberate overload is a different quantity than
// throughput of one multiplication.
//
// Schema 7 adds the batched-GEMM sweeps and the coalescing telemetry.
// The modes "batch-engine" vs "batch-looped" run -batch small square
// multiplies (64³-class) once as ONE engine wave (Engine.GEMMBatch) and
// once as a loop of independent calls over the identical operands; the
// modes "batch-serve-engine" vs "batch-serve-looped" do the same for
// the serving shape — a shared prepacked A against a stream of skinny
// right-hand sides (GEMMPrepackedBatch vs PrepackConforming +
// GEMMPrepacked per stream). Each record carries batch_size and
// per_item_seconds, the amortized per-multiply cost the batch path
// exists to lower. The serve-daemon record gains coalesce_rate, and a
// second daemon record (mode "serve-daemon-batch") drives the
// coalescing workload — every request naming one of two fixed operands
// in a recursive layout — so the QPS the daemon's request coalescer
// buys under saturation is on the committed record.
//
// Schema 8 adds the algorithm-family shape sweep (mode "alg-shape"):
// rectangular m×k×n problems (-shapes) on the canonical layout across
// the fast-algorithm family — the hand-coded Winograd, the table-driven
// ⟨2,2,2⟩ forms, the rectangular ⟨m,k,n⟩ tables, and "auto" — so the
// committed record shows where each table wins and what the per-shape
// auto-selection actually picks. These records carry m and k alongside
// n (square records leave them 0 ≡ n), GFLOPS from 2mkn, and
// algorithm_ran, the algorithm that executed ("auto"'s resolution, or
// the admission ladder's degradation).
//
// Schema 9 adds per-request latency attribution to the serving-daemon
// records: attribution maps each request phase (queue, gather, pack,
// compute, unpack) to its mean, p99, and share of end-to-end latency,
// aggregated by the load generator from the timing object every
// response now carries — so the committed record shows where time at
// the saturation edge actually goes, not just how much of it there is.
// The daemon also runs with its SLO flight recorder armed the way
// production would (spool directory, burn-rate monitor on the p99
// objective), and flight_dumps records how many bundles the sweep's
// overload tripped.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	recmat "repro"
	"repro/internal/serve"
)

type result struct {
	N int `json:"n"`
	// M and K complete the problem shape for rectangular records
	// (schema 8, mode "alg-shape"); zero means "same as n", so every
	// square record keeps its schema ≤7 form.
	M int `json:"m,omitempty"`
	K int `json:"k,omitempty"`
	// Mode distinguishes the sweeps: "" is the square per-call GEMM
	// sweep (schema ≤2 compatible); "serve-percall" and
	// "serve-prepacked" are the serving-shape records, whose GFLOPS come
	// from 2n²b per streamed right-hand side.
	Mode      string `json:"mode,omitempty"`
	Algorithm string `json:"algorithm"`
	Layout    string `json:"layout"`
	Kernel    string `json:"kernel"`
	// KernelRan is the kernel that actually executed; it differs from
	// Kernel only for "auto", where it names the calibration winner.
	KernelRan string `json:"kernel_ran"`
	// AlgorithmRan is the algorithm that actually executed (schema 8):
	// the per-shape resolution for "auto", or the admission ladder's
	// pick when a degradation moved the call off the request.
	AlgorithmRan  string  `json:"algorithm_ran,omitempty"`
	TotalSeconds  float64 `json:"total_seconds"`
	GFLOPS        float64 `json:"gflops"`
	ComputeGFLOPS float64 `json:"compute_gflops"`
	ConvertShare  float64 `json:"convert_share"`
	// Conversion telemetry (schema 3): wall time into and out of the
	// recursive layout, bytes moved by conversions, operand packs served
	// from an existing in-layout buffer (symmetric fold or prepacked
	// plan), and tiled-buffer pool traffic.
	ConvertInSeconds  float64 `json:"convert_in_seconds"`
	ConvertOutSeconds float64 `json:"convert_out_seconds"`
	ConvertBytes      int64   `json:"convert_bytes"`
	PackReused        int     `json:"pack_reused"`
	PoolHits          int     `json:"pool_hits"`
	PoolMisses        int     `json:"pool_misses"`
	// ArenaBytes is the scratch-arena reservation of the best rep;
	// AllocsPerOp / AllocBytesPerOp are the whole-process heap deltas
	// (runtime.MemStats Mallocs / TotalAlloc) around that rep's Mul call.
	ArenaBytes      int64  `json:"arena_bytes"`
	AllocsPerOp     uint64 `json:"allocs_per_op"`
	AllocBytesPerOp uint64 `json:"alloc_bytes_per_op"`
	// Scheduler telemetry of the best rep (schema 4): deque pushes,
	// successful steals, and the fraction of worker·wall time the pool
	// spent executing tasks during the call.
	Spawns            int64   `json:"spawns"`
	Steals            int64   `json:"steals"`
	WorkerUtilization float64 `json:"worker_utilization"`
	// Serving-daemon telemetry (schema 6, mode "serve-daemon" only):
	// end-to-end request latency percentiles, sustained successful QPS,
	// and the fraction of attempts shed, all measured at an offered load
	// far past the admission limit. N carries the generator's max dim.
	P50Seconds    float64 `json:"p50_seconds,omitempty"`
	P99Seconds    float64 `json:"p99_seconds,omitempty"`
	QPS           float64 `json:"qps,omitempty"`
	ShedRate      float64 `json:"shed_rate,omitempty"`
	RequestsTotal int     `json:"requests_total,omitempty"`
	RequestsOK    int     `json:"requests_ok,omitempty"`
	// Batched-path telemetry (schema 7): BatchSize is the wave size of a
	// batch-* record (1 for the looped comparator); PerItemSeconds is the
	// amortized wall time per multiply in the batch; CoalesceRate is the
	// fraction of a daemon record's successful requests that shared a
	// batched engine call with at least one sibling.
	BatchSize      int     `json:"batch_size,omitempty"`
	PerItemSeconds float64 `json:"per_item_seconds,omitempty"`
	CoalesceRate   float64 `json:"coalesce_rate,omitempty"`
	// Request-phase attribution (schema 9, serve-daemon records): each
	// phase's mean, p99, and share of end-to-end latency, aggregated
	// from the timing object of every successful response in the
	// selected window. FlightDumps counts the SLO flight bundles the
	// daemon's burn-rate monitor spooled during the sweep.
	Attribution map[string]serve.PhaseAttribution `json:"attribution,omitempty"`
	FlightDumps int64                             `json:"flight_dumps,omitempty"`
}

// fill copies a Report's telemetry into the record.
func (r *result) fill(rep *recmat.Report, flops float64) {
	r.KernelRan = rep.Kernel
	r.AlgorithmRan = rep.Alg.String()
	r.TotalSeconds = rep.Total().Seconds()
	r.GFLOPS = flops / rep.Total().Seconds() / 1e9
	r.ComputeGFLOPS = flops / rep.Compute.Seconds() / 1e9
	r.ConvertShare = float64(rep.ConvertIn+rep.ConvertOut) / float64(rep.Total())
	r.ConvertInSeconds = rep.ConvertIn.Seconds()
	r.ConvertOutSeconds = rep.ConvertOut.Seconds()
	r.ConvertBytes = rep.ConvertBytes
	r.PackReused = rep.PackReused
	r.PoolHits = rep.PoolHits
	r.PoolMisses = rep.PoolMisses
	r.ArenaBytes = rep.ArenaBytes
	r.Spawns = rep.Spawns
	r.Steals = rep.Steals
	r.WorkerUtilization = rep.Utilization
}

type output struct {
	Schema    int    `json:"schema"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Workers   int    `json:"workers"`
	Reps      int    `json:"reps"`
	// RefGFLOPS is the host-speed yardstick: a fixed serial in-cache
	// triple-loop matmul measured just before the sweep. Comparison
	// tools (cmd/benchdiff) divide it out so that two records taken at
	// different host clock speeds remain comparable.
	RefGFLOPS float64 `json:"ref_gflops"`
	// CPUFeatures names the SIMD capabilities detected on the host
	// (schema 5) — empty on architectures without a probe. Records the
	// hardware, not the sweep: a run under RECMAT_NOSIMD still lists the
	// features even though no assembly kernel was measured.
	CPUFeatures []string `json:"cpu_features"`
	Results     []result `json:"results"`
}

// refGFLOPS measures the yardstick: best of several reps of a 96³
// serial triple loop, small enough to live in cache so the number
// tracks CPU clock speed rather than memory.
func refGFLOPS() float64 {
	const n = 96
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5) * 0.5
	}
	best := time.Duration(1 << 62)
	for rep := 0; rep < 8; rep++ {
		t0 := time.Now()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var s float64
				for k := 0; k < n; k++ {
					s += a[k*n+i] * b[j*n+k]
				}
				c[j*n+i] = s
			}
		}
		if dt := time.Since(t0); dt < best {
			best = dt
		}
	}
	if c[0] < -1 { // keep the loop observable
		fmt.Fprintln(os.Stderr, c[0])
	}
	return 2 * n * n * n / best.Seconds() / 1e9
}

func main() {
	// The default kernel sweep races the paper's kernel and the best
	// pure-Go tiers against whatever assembly kernels this host
	// registered, then "auto" to record what the autotuner picks.
	defaultKernels := append([]string{"unrolled4", "blocked", "packed8x4"}, recmat.SIMDKernels()...)
	defaultKernels = append(defaultKernels, "auto")
	out := flag.String("o", "BENCH_10.json", "output file (- for stdout)")
	sizesFlag := flag.String("sizes", "512,1024", "comma-separated problem sizes")
	algsFlag := flag.String("algs", "standard,strassen,winograd",
		"comma-separated algorithms for the square sweep (from: "+strings.Join(recmat.AlgorithmNames(), ",")+")")
	shapesFlag := flag.String("shapes", "1024x1024x1024,1296x864x1296,1536x512x1536",
		"comma-separated mXkXn shapes for the algorithm-family sweep (empty disables)")
	shapeAlgsFlag := flag.String("shape-algs",
		"winograd,winograd-2x2x2,strassen-2x2x2,fast-3x2x3,fast-4x2x4,laderman-3x3x3,auto",
		"comma-separated algorithms for the -shapes sweep")
	kernelsFlag := flag.String("kernels", strings.Join(defaultKernels, ","), "comma-separated kernels (auto = autotuned)")
	layoutsFlag := flag.String("layouts", "", "comma-separated layouts (default: all six)")
	workers := flag.Int("workers", 0, "worker count (0 = one per CPU)")
	reps := flag.Int("reps", 2, "repetitions per point (best is kept)")
	seed := flag.Int64("seed", 1, "random seed")
	serveB := flag.Int("serve-b", 48, "right-hand-side width for the serving-shape sweep (0 disables)")
	serveLayout := flag.String("serve-layout", "hilbert", "layout for the serving-shape sweep")
	serveDaemon := flag.Duration("serve-daemon", 3*time.Second, "duration of the saturation sweep against an in-process recmatd (0 disables)")
	batchCount := flag.Int("batch", 1000, "item count for the batched-vs-looped GEMM sweep (0 disables)")
	batchDim := flag.Int("batch-dim", 64, "square dimension of each item in the batched sweep")
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	die(err)
	var algs []recmat.Algorithm
	for _, s := range splitList(*algsFlag) {
		a, err := recmat.ParseAlgorithm(s)
		die(err)
		algs = append(algs, a)
	}
	layouts := recmat.Layouts
	if *layoutsFlag != "" {
		layouts = nil
		for _, s := range splitList(*layoutsFlag) {
			lo, err := recmat.ParseLayout(s)
			die(err)
			layouts = append(layouts, lo)
		}
	}
	kernels := splitList(*kernelsFlag)
	for _, kn := range kernels {
		if kn != "auto" {
			_, err := recmat.KernelByName(kn)
			die(err)
		}
	}

	eng := recmat.NewEngine(*workers)
	defer eng.Close()
	o := output{
		Schema:      9,
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Workers:     eng.Workers(),
		Reps:        *reps,
		RefGFLOPS:   refGFLOPS(),
		CPUFeatures: recmat.CPUFeatures(),
	}
	fmt.Fprintf(os.Stderr, "host yardstick: %.3f GFLOPS (serial 96^3 in-cache), cpu features %v\n",
		o.RefGFLOPS, o.CPUFeatures)

	// The daemon saturation sweep runs first, on a quiet process: the
	// square sweeps below leave a heated heap and a GC cadence tuned to
	// 1024²-class garbage, which is noise the latency percentiles pick
	// up if the daemon runs last.
	if *serveDaemon > 0 {
		for _, workload := range []string{"mixed", "batch"} {
			r := serveDaemonBench(*serveDaemon, workload, *reps)
			o.Results = append(o.Results, r)
			fmt.Fprintf(os.Stderr, "%s %v: %.0f qps  p50 %.2fms  p99 %.2fms  shed %.1f%%  coalesce %.1f%%  (%d ok / %d attempts)\n",
				r.Mode, *serveDaemon, r.QPS, 1e3*r.P50Seconds, 1e3*r.P99Seconds, 100*r.ShedRate, 100*r.CoalesceRate, r.RequestsOK, r.RequestsTotal)
		}
	}

	for _, n := range sizes {
		rng := rand.New(rand.NewSource(*seed))
		A := recmat.Random(n, n, rng)
		B := recmat.Random(n, n, rng)
		C := recmat.NewMatrix(n, n)
		flops := 2 * float64(n) * float64(n) * float64(n)
		for _, alg := range algs {
			for _, lo := range layouts {
				for _, kn := range kernels {
					opts := &recmat.Options{Layout: lo, Algorithm: alg}
					if kn != "auto" {
						opts.KernelName = kn
					}
					var best *recmat.Report
					var bestAllocs, bestBytes uint64
					var ms0, ms1 runtime.MemStats
					for r := 0; r < *reps; r++ {
						runtime.ReadMemStats(&ms0)
						rep, err := eng.Mul(C, A, B, opts)
						runtime.ReadMemStats(&ms1)
						die(err)
						if best == nil || rep.Total() < best.Total() {
							best = rep
							bestAllocs = ms1.Mallocs - ms0.Mallocs
							bestBytes = ms1.TotalAlloc - ms0.TotalAlloc
						}
					}
					r := result{N: n, Algorithm: alg.String(), Layout: lo.String(), Kernel: kn,
						AllocsPerOp: bestAllocs, AllocBytesPerOp: bestBytes}
					r.fill(best, flops)
					o.Results = append(o.Results, r)
					fmt.Fprintf(os.Stderr, "n=%-5d %-9s %-11s %-10s %6.2f GFLOPS %8d allocs/op (ran %s)\n",
						n, r.Algorithm, r.Layout, r.Kernel, r.GFLOPS, r.AllocsPerOp, r.KernelRan)
				}
			}
		}
	}

	// The algorithm-family shape sweep (schema 8) runs on the canonical
	// layout: the rectangular ⟨m,k,n⟩ tables need its free mixed-radix
	// tile grids — on the recursive curves' power-of-two grids they hand
	// straight off to their base and measure nothing new.
	if *shapesFlag != "" {
		var salgs []recmat.Algorithm
		for _, s := range splitList(*shapeAlgsFlag) {
			a, err := recmat.ParseAlgorithm(s)
			die(err)
			salgs = append(salgs, a)
		}
		for _, spec := range splitList(*shapesFlag) {
			m, k, n, err := parseShape(spec)
			die(err)
			rng := rand.New(rand.NewSource(*seed))
			A := recmat.Random(m, k, rng)
			B := recmat.Random(k, n, rng)
			C := recmat.NewMatrix(m, n)
			flops := 2 * float64(m) * float64(k) * float64(n)
			// Reps interleave round-robin across the shape's algorithms
			// rather than running each algorithm's reps back to back:
			// benchdiff's within-record ratio gates (table Winograd vs
			// hand-coded) compare algorithms of one shape, and on a
			// bursty host a minutes-long drift between two sequential
			// measurement windows would dominate the few percent those
			// gates resolve. Interleaving gives every algorithm the same
			// exposure to the drift.
			best := make([]*recmat.Report, len(salgs))
			bestAllocs := make([]uint64, len(salgs))
			bestBytes := make([]uint64, len(salgs))
			var ms0, ms1 runtime.MemStats
			for r := 0; r < *reps+1; r++ { // +1: first round is warmup
				for i, alg := range salgs {
					opts := &recmat.Options{Layout: recmat.ColMajor, Algorithm: alg}
					runtime.ReadMemStats(&ms0)
					rep, err := eng.Mul(C, A, B, opts)
					runtime.ReadMemStats(&ms1)
					die(err)
					if r == 0 {
						continue
					}
					if best[i] == nil || rep.Total() < best[i].Total() {
						best[i] = rep
						bestAllocs[i] = ms1.Mallocs - ms0.Mallocs
						bestBytes[i] = ms1.TotalAlloc - ms0.TotalAlloc
					}
				}
			}
			for i, alg := range salgs {
				r := result{N: n, M: m, K: k, Mode: "alg-shape",
					Algorithm: alg.String(), Layout: recmat.ColMajor.String(), Kernel: "auto",
					AllocsPerOp: bestAllocs[i], AllocBytesPerOp: bestBytes[i]}
				r.fill(best[i], flops)
				o.Results = append(o.Results, r)
				fmt.Fprintf(os.Stderr, "%dx%dx%d %-16s %6.2f GFLOPS (ran %s/%s)\n",
					m, k, n, r.Algorithm, r.GFLOPS, r.AlgorithmRan, r.KernelRan)
			}
		}
	}

	if *serveB > 0 {
		lo, err := recmat.ParseLayout(*serveLayout)
		die(err)
		for _, n := range sizes {
			pc, pp := serveBench(eng, n, *serveB, lo, *reps, *seed)
			o.Results = append(o.Results, pc, pp)
			for _, r := range []result{pc, pp} {
				fmt.Fprintf(os.Stderr, "n=%-5d %-16s %-11s %6.2f GFLOPS convert %4.0f%% %8d allocs/op\n",
					n, r.Mode, r.Layout, r.GFLOPS, 100*r.ConvertShare, r.AllocsPerOp)
			}
			if pc.GFLOPS > 0 {
				fmt.Fprintf(os.Stderr, "n=%-5d serve speedup: %.2fx\n", n, pp.GFLOPS/pc.GFLOPS)
			}
		}
	}

	if *batchCount > 0 {
		lo, err := recmat.ParseLayout(*serveLayout)
		die(err)
		// A fresh engine isolates the batch records from the square sweep's
		// state: its buffer pool and arena are sized for 1024²-class tiles
		// by now, which skews the small-shape fixed costs the batched-vs-
		// looped pair exists to measure.
		beng := recmat.NewEngine(*workers)
		be, bl := batchSquareBench(beng, *batchCount, *batchDim, lo, *reps, *seed)
		o.Results = append(o.Results, be, bl)
		se, sl := batchServeBench(beng, *batchCount/4, lo, *reps, *seed)
		o.Results = append(o.Results, se, sl)
		beng.Close()
		for _, pair := range [][2]result{{be, bl}, {se, sl}} {
			e, l := pair[0], pair[1]
			fmt.Fprintf(os.Stderr, "%-18s n=%-5d count=%-5d %6.2f GFLOPS  %8.1fus/item\n",
				e.Mode, e.N, e.BatchSize, e.GFLOPS, 1e6*e.PerItemSeconds)
			fmt.Fprintf(os.Stderr, "%-18s n=%-5d count=%-5d %6.2f GFLOPS  %8.1fus/item  (batched %.2fx)\n",
				l.Mode, l.N, e.BatchSize, l.GFLOPS, 1e6*l.PerItemSeconds, e.GFLOPS/l.GFLOPS)
		}
	}

	buf, err := json.MarshalIndent(&o, "", "  ")
	die(err)
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	die(os.WriteFile(*out, buf, 0o644))
}

// serveBench measures the serving pattern at one size: a fixed n×n A
// against a stream of skinny n×b right-hand sides. The per-call record
// re-converts A on every stream (what a caller without plans pays); the
// prepacked record converts A once outside the timed region and then
// pays only the conforming pack of each streamed B plus the C epilogue.
// Each stream's wall time includes everything the caller would do per
// arriving B — for the prepacked mode that is PrepackConforming +
// GEMMPrepacked + Release. The best stream of each mode is recorded.
func serveBench(eng *recmat.Engine, n, b int, lo recmat.Layout, reps int, seed int64) (percall, prepacked result) {
	rng := rand.New(rand.NewSource(seed))
	A := recmat.Random(n, n, rng)
	B := recmat.Random(n, b, rng)
	C := recmat.NewMatrix(n, b)
	opts := &recmat.Options{Layout: lo, Algorithm: recmat.Standard}
	flops := 2 * float64(n) * float64(n) * float64(b)
	streams := reps
	if streams < 3 {
		streams = 3
	}

	percall = result{N: n, Mode: "serve-percall", Algorithm: "standard", Layout: lo.String(), Kernel: "auto"}
	var best *recmat.Report
	var bestAllocs, bestBytes uint64
	var ms0, ms1 runtime.MemStats
	for s := 0; s < streams+1; s++ { // +1: first stream is warmup
		runtime.ReadMemStats(&ms0)
		rep, err := eng.Mul(C, A, B, opts)
		runtime.ReadMemStats(&ms1)
		die(err)
		if s == 0 {
			continue
		}
		if best == nil || rep.Total() < best.Total() {
			best = rep
			bestAllocs = ms1.Mallocs - ms0.Mallocs
			bestBytes = ms1.TotalAlloc - ms0.TotalAlloc
		}
	}
	percall.fill(best, flops)
	percall.AllocsPerOp, percall.AllocBytesPerOp = bestAllocs, bestBytes

	prepacked = result{N: n, Mode: "serve-prepacked", Algorithm: "standard", Layout: lo.String(), Kernel: "auto"}
	paOpts := *opts
	paOpts.PartnerDim = b // the plan will serve n×b streams
	pa, err := eng.Prepack(A, false, &paOpts)
	die(err)
	defer pa.Release()
	bestWall := time.Duration(1 << 62)
	for s := 0; s < streams+1; s++ {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		pb, err := eng.PrepackConforming(B, false, opts, pa)
		die(err)
		rep, err := eng.GEMMPrepacked(context.Background(), 1, pa, pb, 0, C)
		pb.Release()
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		die(err)
		if s == 0 {
			continue
		}
		if wall < bestWall {
			bestWall = wall
			prepacked.fill(rep, flops)
			// Wall-clock accounting: the streamed B's conforming pack
			// happens outside the Report, so rebase the end-to-end
			// numbers on the measured stream time.
			prepacked.TotalSeconds = wall.Seconds()
			prepacked.GFLOPS = flops / wall.Seconds() / 1e9
			prepacked.ConvertShare = (rep.ConvertIn + rep.ConvertOut).Seconds() / wall.Seconds()
			prepacked.AllocsPerOp = ms1.Mallocs - ms0.Mallocs
			prepacked.AllocBytesPerOp = ms1.TotalAlloc - ms0.TotalAlloc
		}
	}
	return percall, prepacked
}

// batchSquareBench is the batched-vs-looped sweep at small square
// shapes: count dim³ multiplies run once as ONE engine wave and once as
// a loop of independent calls over the identical operands. Per-call
// fixed costs (admission, arena reservation, pool wave, buffer-pool
// round trips) dominate at this size, which is exactly what the batch
// path amortizes; per_item_seconds is the honest per-multiply cost.
func batchSquareBench(eng *recmat.Engine, count, dim int, lo recmat.Layout, reps int, seed int64) (batched, looped result) {
	const variants = 8 // distinct operand pairs, cycled across the batch
	rng := rand.New(rand.NewSource(seed))
	As := make([]*recmat.Matrix, variants)
	Bs := make([]*recmat.Matrix, variants)
	for i := range As {
		As[i] = recmat.Random(dim, dim, rng)
		Bs[i] = recmat.Random(dim, dim, rng)
	}
	Cs := make([]*recmat.Matrix, count)
	items := make([]recmat.GEMMBatchItem, count)
	for i := range Cs {
		Cs[i] = recmat.NewMatrix(dim, dim)
		items[i] = recmat.GEMMBatchItem{Alpha: 1, A: As[i%variants], B: Bs[i%variants], C: Cs[i]}
	}
	opts := &recmat.Options{Layout: lo, Algorithm: recmat.Standard}
	flops := float64(count) * 2 * float64(dim) * float64(dim) * float64(dim)

	batched = result{N: dim, Mode: "batch-engine", Algorithm: "standard", Layout: lo.String(), Kernel: "auto", BatchSize: count}
	bestWall := time.Duration(1 << 62)
	for r := 0; r < reps+1; r++ { // +1: first rep is warmup
		t0 := time.Now()
		bs, errs, err := eng.GEMMBatch(context.Background(), items, opts)
		wall := time.Since(t0)
		die(err)
		for _, e := range errs {
			die(e)
		}
		if r == 0 {
			continue
		}
		if wall < bestWall {
			bestWall = wall
			batched.fill(&bs.Stats, flops)
			batched.TotalSeconds = wall.Seconds()
			batched.GFLOPS = flops / wall.Seconds() / 1e9
			batched.PerItemSeconds = wall.Seconds() / float64(count)
		}
	}

	looped = result{N: dim, Mode: "batch-looped", Algorithm: "standard", Layout: lo.String(), Kernel: "auto", BatchSize: 1}
	bestWall = time.Duration(1 << 62)
	for r := 0; r < reps+1; r++ {
		t0 := time.Now()
		var last *recmat.Report
		for i := range items {
			rep, err := eng.Mul(Cs[i], As[i%variants], Bs[i%variants], opts)
			die(err)
			last = rep
		}
		wall := time.Since(t0)
		if r == 0 {
			continue
		}
		if wall < bestWall {
			bestWall = wall
			looped.fill(last, flops)
			looped.TotalSeconds = wall.Seconds()
			looped.GFLOPS = flops / wall.Seconds() / 1e9
			looped.PerItemSeconds = wall.Seconds() / float64(count)
		}
	}
	return batched, looped
}

// batchServeBench is the batched-vs-looped sweep at the serving shape:
// one prepacked A shared by count skinny right-hand sides, run once as
// ONE GEMMPrepackedBatch wave (B's conforming pack fused into the wave
// tasks) and once as the pre-batch serving loop — PrepackConforming +
// GEMMPrepacked + Release per stream.
func batchServeBench(eng *recmat.Engine, count int, lo recmat.Layout, reps int, seed int64) (batched, looped result) {
	// 128×128 weights against 16-wide streams: the small end of the
	// daemon's serving shapes, where per-stream fixed costs (plan
	// allocation, admission, a scheduler wave per call) rival the
	// ~0.5 MFLOP of arithmetic — the regime the batched wave amortizes.
	const n, b, variants = 128, 16, 16
	if count < variants {
		count = variants
	}
	rng := rand.New(rand.NewSource(seed))
	A := recmat.Random(n, n, rng)
	Bs := make([]*recmat.Matrix, variants)
	for i := range Bs {
		Bs[i] = recmat.Random(n, b, rng)
	}
	Cs := make([]*recmat.Matrix, count)
	items := make([]recmat.PrepackedGEMMBatchItem, count)
	for i := range Cs {
		Cs[i] = recmat.NewMatrix(n, b)
		items[i] = recmat.PrepackedGEMMBatchItem{Alpha: 1, B: Bs[i%variants], C: Cs[i]}
	}
	opts := &recmat.Options{Layout: lo, Algorithm: recmat.Standard}
	paOpts := *opts
	paOpts.PartnerDim = b
	pa, err := eng.Prepack(A, false, &paOpts)
	die(err)
	defer pa.Release()
	flops := float64(count) * 2 * float64(n) * float64(n) * float64(b)

	batched = result{N: n, Mode: "batch-serve-engine", Algorithm: "standard", Layout: lo.String(), Kernel: "auto", BatchSize: count}
	bestWall := time.Duration(1 << 62)
	for r := 0; r < reps+1; r++ {
		t0 := time.Now()
		bs, errs, err := eng.GEMMPrepackedBatch(context.Background(), pa, items, opts)
		wall := time.Since(t0)
		die(err)
		for _, e := range errs {
			die(e)
		}
		if r == 0 {
			continue
		}
		if wall < bestWall {
			bestWall = wall
			batched.fill(&bs.Stats, flops)
			batched.TotalSeconds = wall.Seconds()
			batched.GFLOPS = flops / wall.Seconds() / 1e9
			batched.PerItemSeconds = wall.Seconds() / float64(count)
		}
	}

	looped = result{N: n, Mode: "batch-serve-looped", Algorithm: "standard", Layout: lo.String(), Kernel: "auto", BatchSize: 1}
	bestWall = time.Duration(1 << 62)
	for r := 0; r < reps+1; r++ {
		t0 := time.Now()
		var last *recmat.Report
		for i := range items {
			pb, err := eng.PrepackConforming(Bs[i%variants], false, opts, pa)
			die(err)
			rep, err := eng.GEMMPrepacked(context.Background(), 1, pa, pb, 0, Cs[i])
			pb.Release()
			die(err)
			last = rep
		}
		wall := time.Since(t0)
		if r == 0 {
			continue
		}
		if wall < bestWall {
			bestWall = wall
			looped.fill(last, flops)
			looped.TotalSeconds = wall.Seconds()
			looped.GFLOPS = flops / wall.Seconds() / 1e9
			looped.PerItemSeconds = wall.Seconds() / float64(count)
		}
	}
	return batched, looped
}

// serveDaemonBench stands up an in-process recmatd and drives it to
// saturation: offered load is 8× the admission limit, the queue is
// short and its wait bounded, so the daemon must shed — the record
// captures what latency and throughput look like at the edge the
// backpressure machinery defends. Client retries are disabled so the
// shed rate counts raw rejections, not post-retry outcomes. The "mixed"
// workload is the broad multi-tenant mix (mode "serve-daemon",
// comparable back to schema-6 records); "batch" is the coalescing
// workload — every request names one of two fixed operands in a
// recursive layout, so the queue the saturation builds is exactly the
// batching window the request coalescer feeds on (mode
// "serve-daemon-batch"). Like every other mode, the record keeps the
// best of the measurement windows, but a saturation window can be
// spoiled along two independent axes: external host load inflates the
// shed rate, while a window whose closed-loop clients ran slow
// deflates QPS and shed together. So the record keeps the fastest
// window among the calmer-shedding half — the median-shed guard
// discards load-spoiled windows, max-QPS discards slow-client ones.
// Windows are cheap relative to their variance; at least eight are
// taken.
func serveDaemonBench(duration time.Duration, workload string, reps int) result {
	if reps < 8 {
		reps = 8
	}
	maxDim := 128
	if workload == "batch" {
		maxDim = 256 // the coalescing workload's fixed operands are 256×256
	}
	mode := "serve-daemon"
	if workload == "batch" {
		mode = "serve-daemon-batch"
	}
	// One server across all reps: the first window warms the plan cache
	// and the engine's autotuned kernel picks, so the later windows
	// measure the steady-state server the SLO is a statement about.
	// The flight recorder is armed the way production would arm it —
	// spool directory plus a burn-rate monitor on a p99 objective this
	// deliberately saturating sweep is expected to burn — so the record
	// carries how many bundles the overload actually tripped. The
	// minute-long dump rate limit caps the recorder's perturbation at
	// one dump per sweep, and the median-shed/max-QPS window selection
	// below discards a dump-spoiled window like any other noisy one.
	spool, err := os.MkdirTemp("", "benchjson-flight-")
	die(err)
	defer os.RemoveAll(spool)
	s := serve.New(serve.Config{
		Workers:        runtime.GOMAXPROCS(0),
		MaxInflight:    2,
		QueueDepth:     4,
		MaxQueueWait:   20 * time.Millisecond,
		PlanCacheBytes: 64 << 20,
		MaxDim:         maxDim,

		FlightSpoolDir:    spool,
		FlightMinInterval: time.Minute,
		SLOObjective:      50 * time.Millisecond,
		SLOQuantile:       0.99,
		SLOFastWindow:     2 * time.Second,
		SLOSlowWindow:     6 * time.Second,
		SLOPoll:           500 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	var windows []*serve.Summary
	for rep := 0; rep < reps; rep++ {
		gen := &serve.LoadGen{
			Client:      &serve.Client{BaseURL: ts.URL, MaxRetries: -1},
			Tenants:     4,
			Concurrency: 16,
			MaxDim:      maxDim,
			Seed:        1,
		}
		if workload == "batch" {
			gen.Workload = "batch"
			gen.Tenants = 2 // fewer tenants → more requests per coalesce key
		}
		ctx, cancel := context.WithTimeout(context.Background(), duration)
		windows = append(windows, gen.Run(ctx))
		cancel()
	}
	ts.Close()
	sheds := make([]float64, len(windows))
	for i, w := range windows {
		sheds[i] = w.ShedRate()
	}
	sort.Float64s(sheds)
	medianShed := sheds[(len(sheds)-1)/2]
	var sum *serve.Summary
	for _, w := range windows {
		if w.ShedRate() <= medianShed && (sum == nil || w.QPS() > sum.QPS()) {
			sum = w
		}
	}
	flightDumps := s.FlightDumps()
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	die(s.Drain(dctx))
	dcancel()

	return result{
		N: maxDim, Mode: mode,
		Algorithm: "mixed", Layout: "mixed", Kernel: "auto", KernelRan: "auto",
		TotalSeconds:  sum.Duration.Seconds(),
		P50Seconds:    sum.Percentile(50).Seconds(),
		P99Seconds:    sum.Percentile(99).Seconds(),
		QPS:           sum.QPS(),
		ShedRate:      sum.ShedRate(),
		RequestsTotal: sum.Total,
		RequestsOK:    sum.OK,
		CoalesceRate:  sum.CoalesceRate(),
		Attribution:   sum.Attribution,
		FlightDumps:   flightDumps,
	}
}

func splitList(s string) []string {
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// parseShape parses an "mXkXn" problem shape ("1296x864x1296").
func parseShape(s string) (m, k, n int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad shape %q: want mXkXn", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return 0, 0, 0, fmt.Errorf("bad shape %q: %q is not a positive integer", s, p)
		}
		dims[i] = v
	}
	return dims[0], dims[1], dims[2], nil
}

func parseInts(s string) ([]int, error) {
	var ns []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		ns = append(ns, v)
	}
	return ns, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
