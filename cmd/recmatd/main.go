// recmatd is the GEMM-serving daemon: an HTTP front end over one
// recmat engine that multiplies matrices for many concurrent tenants
// with per-request deadlines, per-tenant memory quotas, bounded-queue
// admission with load shedding, a refcounted prepacked-plan cache,
// request coalescing (queued requests sharing a plan-cache entry merge
// into one batched engine call), and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	recmatd [-addr :8080] [-workers 0] [-max-inflight 0] [-queue 0]
//	        [-queue-wait 500ms] [-tenant-quota 268435456]
//	        [-deadline 2s] [-max-deadline 10s] [-drain 5s]
//	        [-plan-cache 536870912] [-max-dim 4096] [-max-batch 8]
//	        [-spool DIR] [-flight-interval 1m]
//	        [-slo-objective 0] [-slo-quantile 0.99]
//	        [-slo-fast 10s] [-slo-slow 1m]
//
// Endpoints:
//
//	POST /v1/gemm       one C ← α·A·B + β·C operation (JSON; see internal/serve)
//	GET  /healthz       liveness (200 while the process runs)
//	GET  /readyz        readiness (503 once draining)
//	GET  /metricz       metrics: JSON by default, OpenMetrics text under a
//	                    Prometheus Accept header or ?format=openmetrics
//	GET  /debug/flightz SLO flight recorder: state, bundles, POST to dump
//	GET  /debug/vars    expvar, including the registry published as "recmat"
//
// Fault injection for chaos drills is inherited from the library:
// RECMAT_FAULTS="panic=0.01,delay=0.02/1ms,seed=7" recmatd ...
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine worker count (0 = one per CPU)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing requests (0 = 2x workers)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x max-inflight)")
	queueWait := flag.Duration("queue-wait", 500*time.Millisecond, "max time a request may wait for a slot")
	tenantQuota := flag.Int64("tenant-quota", 256<<20, "per-tenant concurrent operand bytes")
	deadline := flag.Duration("deadline", 2*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 10*time.Second, "cap on requested deadlines and max inflight time")
	drain := flag.Duration("drain", 5*time.Second, "graceful drain budget before cancelling in-flight work")
	planCache := flag.Int64("plan-cache", 512<<20, "prepacked plan cache bytes (negative disables)")
	maxDim := flag.Int("max-dim", 4096, "max m, k, n accepted")
	maxBatch := flag.Int("max-batch", 0, "max requests coalesced into one engine call (0 = 8, negative disables)")
	spool := flag.String("spool", "", "flight-recorder spool directory (empty disables the recorder)")
	flightInterval := flag.Duration("flight-interval", 0, "min interval between automatic flight dumps (0 = 1m)")
	sloObjective := flag.Duration("slo-objective", 0, "latency SLO: dump a flight bundle when the monitored quantile burns past this over both windows (0 disables; requires -spool)")
	sloQuantile := flag.Float64("slo-quantile", 0, "monitored latency quantile (0 = 0.99)")
	sloFast := flag.Duration("slo-fast", 0, "fast burn-rate window (0 = 10s)")
	sloSlow := flag.Duration("slo-slow", 0, "slow burn-rate window (0 = 1m)")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	s := serve.New(serve.Config{
		Workers:          *workers,
		MaxInflight:      *maxInflight,
		QueueDepth:       *queue,
		MaxQueueWait:     *queueWait,
		TenantQuotaBytes: *tenantQuota,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		DrainTimeout:     *drain,
		PlanCacheBytes:   *planCache,
		MaxDim:           *maxDim,
		MaxBatch:         *maxBatch,
		Logf:             logger.Printf,

		FlightSpoolDir:    *spool,
		FlightMinInterval: *flightInterval,
		SLOObjective:      *sloObjective,
		SLOQuantile:       *sloQuantile,
		SLOFastWindow:     *sloFast,
		SLOSlowWindow:     *sloSlow,
	})
	if err := s.PublishExpvar("recmat"); err != nil {
		logger.Printf("recmatd: expvar publish: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("recmatd: listen %s: %v", *addr, err)
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("recmatd: serving on %s (workers=%d)", ln.Addr(), s.Engine().Workers())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("recmatd: %v: draining", sig)
	case err := <-serveErr:
		logger.Fatalf("recmatd: serve: %v", err)
	}

	// Shutdown order: stop accepting new connections first (Shutdown
	// also waits for idle keep-alives), then drain the request floor.
	// A second signal aborts the wait.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+*maxDeadline+10*time.Second)
	defer cancel()
	go func() {
		if sig, ok := <-sigc, true; ok {
			logger.Printf("recmatd: %v again: forcing exit", sig)
			cancel()
		}
	}()
	go hs.Shutdown(shutdownCtx)
	if err := s.Drain(shutdownCtx); err != nil {
		logger.Printf("recmatd: drain: %v", err)
		os.Exit(1)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("recmatd: http shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "recmatd: exit")
}
