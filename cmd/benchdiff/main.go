// benchdiff compares two benchjson outputs and fails when the candidate
// regresses against the baseline — the guard `make bench` runs so a
// perf-focused change cannot silently slow the standard algorithm down.
//
// Usage:
//
//	benchdiff -baseline BENCH_8.json -candidate /tmp/bench_head.json [-alg standard] [-tol 0.10]
//
// Results are keyed on (n, m, k, mode, algorithm, layout, kernel) —
// m and k are zero on square records, so every pre-schema-8 key is
// unchanged; only keys present in both files are compared (records from
// schema ≤2 files have no mode and compare against mode-less
// candidates). With -alg set, the
// comparison is restricted to that algorithm. All schemas 1–9 load: the
// decoder ignores fields a schema lacks, per-schema gates arm only when
// both files carry the data, and schema 5's cpu_features is metadata
// only — kernels present in just one file (e.g. an assembly kernel the
// baseline host lacked) simply don't form a compared key. Schema 6's
// serve-daemon records carry gflops=0 (they measure latency and shed
// rate under deliberate overload, not throughput of one multiply), so
// they never enter the GFLOPS gates; when both files have one, the p99
// and shed-rate movement is printed for information only. Schema 7's
// batch-engine/batch-looped record pairs (and their batch-serve-*
// serving-shape twins) gate within the candidate like the serve pair
// does: the batched/looped speedup is measured in one window, so host
// drift cancels, and -batchmin is the floor it must clear. The
// serve-daemon-batch record (coalescing workload) prints its QPS and
// coalesce rate informationally alongside serve-daemon. Schema 9's
// request-phase attribution (where each serve-daemon window's latency
// went: queue vs gather vs pack/compute/unpack) and flight-dump count
// print the same way — informational only, never gating, because the
// phase mix moves with offered load and host contention exactly like
// the latency percentiles it decomposes.
//
// Cross-file point-by-point comparison on a shared host is dominated by
// burstiness (individual points swing ±30% between identical-code
// runs), so the exit status aggregates. The gate fails (exit 1) when:
//
//   - the geometric mean of the candidate/baseline GFLOPS ratios across
//     all compared points regresses more than -tol (noise averages out
//     across points; a real slowdown does not), or
//   - any single point regresses more than -pointtol — the
//     catastrophic floor for a targeted regression hiding in an
//     otherwise-green mean, or
//   - a candidate point's conversion share of end-to-end time grew by
//     more than -convtol (absolute) over the baseline's — catching a
//     change that keeps GFLOPS afloat on compute improvements while
//     quietly re-inflating the layout-conversion cost the amortization
//     work removed (both records need convert_share, i.e. schema ≥2;
//     schema-1 records are skipped by this gate), or
//   - the candidate contains a serving-shape pair (modes serve-percall
//     and serve-prepacked at the same n) whose prepacked speedup falls
//     below -servemin. The two records share one measurement window, so
//     this ratio is stable where cross-file points are not; it guards
//     the amortized-conversion win directly, or
//   - a candidate point's worker utilization dropped by more than
//     -utiltol (absolute) below the baseline's — catching a scheduler
//     change that starves workers without (yet) moving the GFLOPS mean.
//     This gate only arms when BOTH files are schema ≥4 (where the
//     field exists and is populated); against an older baseline it is
//     silently inactive, so schema 1–3 files keep comparing cleanly, or
//   - the candidate's table-driven ⟨2,2,2⟩ Winograd (algorithm
//     "winograd-2x2x2" in the schema-8 alg-shape sweep) falls more than
//     -tablemax below the hand-coded "winograd" at the same shape. Both
//     records share the candidate's measurement window, so this ratio
//     is host-drift-free; it bounds the generic table engine's overhead
//     against the hand-tuned recursion it generalizes (0 disables).
//
// Points beyond -tol are still marked "!" in the listing for
// investigation even when the aggregate gate passes.
//
// When both files carry the ref_gflops host yardstick (benchjson
// schema 2), candidate GFLOPS are rescaled by baseline_ref/candidate_ref
// before comparison: the yardstick moves with host clock speed exactly
// like the benchmarked matmuls, so the rescaling cancels machine-speed
// drift between the two measurement windows and leaves only real code
// regressions. -noscale disables this; prefer it for same-host
// comparisons, where the yardstick's own single-sample burst variance
// becomes a coherent scale error on every point — the one noise shape
// the geomean gate cannot average out. Conversion shares are ratios of
// same-host times and need no rescaling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

type result struct {
	N int `json:"n"`
	// M and K complete a rectangular record's shape (schema 8); they
	// are zero on square records, keeping older keys unchanged.
	M         int     `json:"m"`
	K         int     `json:"k"`
	Mode      string  `json:"mode"`
	Algorithm string  `json:"algorithm"`
	Layout    string  `json:"layout"`
	Kernel    string  `json:"kernel"`
	GFLOPS    float64 `json:"gflops"`
	// ConvertShare is a pointer so that schema-1 records (which predate
	// the field) are distinguishable from a measured share of zero.
	ConvertShare *float64 `json:"convert_share"`
	// WorkerUtilization is a pointer for the same reason: schema ≤3
	// records predate the field.
	WorkerUtilization *float64 `json:"worker_utilization"`
	// Serving-daemon fields (schema 6, informational only).
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	QPS        float64 `json:"qps"`
	ShedRate   float64 `json:"shed_rate"`
	// Batched-path fields (schema 7).
	BatchSize      int     `json:"batch_size"`
	PerItemSeconds float64 `json:"per_item_seconds"`
	CoalesceRate   float64 `json:"coalesce_rate"`
	// Request-phase attribution (schema 9, informational only).
	Attribution map[string]phaseAttr `json:"attribution"`
	FlightDumps int64                `json:"flight_dumps"`
}

// phaseAttr mirrors serve.PhaseAttribution without importing the
// serving package: one phase's aggregate across a daemon window.
type phaseAttr struct {
	MeanNS int64   `json:"mean_ns"`
	P99NS  int64   `json:"p99_ns"`
	Share  float64 `json:"share"`
}

type output struct {
	Schema    int      `json:"schema"`
	RefGFLOPS float64  `json:"ref_gflops"`
	Results   []result `json:"results"`
}

type key struct {
	n, m, k                         int
	mode, algorithm, layout, kernel string
}

type point struct {
	gflops       float64
	convertShare *float64
	utilization  *float64
	p50, p99     float64
	qps, shed    float64
	batchSize    int
	perItem      float64
	coalesce     float64
	attribution  map[string]phaseAttr
	flightDumps  int64
}

func load(path string) (map[key]point, float64, int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	var o output
	if err := json.Unmarshal(buf, &o); err != nil {
		return nil, 0, 0, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[key]point, len(o.Results))
	for _, r := range o.Results {
		m[key{r.N, r.M, r.K, r.Mode, r.Algorithm, r.Layout, r.Kernel}] = point{
			r.GFLOPS, r.ConvertShare, r.WorkerUtilization,
			r.P50Seconds, r.P99Seconds, r.QPS, r.ShedRate,
			r.BatchSize, r.PerItemSeconds, r.CoalesceRate,
			r.Attribution, r.FlightDumps,
		}
	}
	return m, o.RefGFLOPS, o.Schema, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_4.json", "baseline benchjson file")
	candidate := flag.String("candidate", "", "candidate benchjson file (required)")
	alg := flag.String("alg", "", "restrict comparison to one algorithm (empty = all)")
	tol := flag.Float64("tol", 0.10, "allowed fractional regression of the geometric-mean GFLOPS ratio")
	pointTol := flag.Float64("pointtol", 0.40, "allowed fractional regression of any single point (catastrophic floor)")
	convTol := flag.Float64("convtol", 0.10, "allowed absolute growth in conversion share of total time")
	serveMin := flag.Float64("servemin", 1.15, "required serve-prepacked / serve-percall speedup within the candidate (0 disables)")
	batchMin := flag.Float64("batchmin", 1.2, "required batch-engine / batch-looped speedup within the candidate (0 disables)")
	utilTol := flag.Float64("utiltol", 0.20, "allowed absolute drop in worker utilization (needs schema >=4 on both sides; 0 disables)")
	tableMax := flag.Float64("tablemax", 0.03, "allowed fractional shortfall of table-driven winograd-2x2x2 vs hand-coded winograd within the candidate's alg-shape sweep (0 disables)")
	noscale := flag.Bool("noscale", false, "disable host-yardstick rescaling")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -candidate is required")
		os.Exit(2)
	}

	base, baseRef, baseSchema, err := load(*baseline)
	die(err)
	cand, candRef, candSchema, err := load(*candidate)
	die(err)
	// The utilization gate needs the field measured on both sides;
	// schema ≤3 files carry no worker_utilization, so it stays off.
	utilGate := *utilTol > 0 && baseSchema >= 4 && candSchema >= 4
	scale := 1.0
	if !*noscale && baseRef > 0 && candRef > 0 {
		scale = baseRef / candRef
		fmt.Printf("host yardstick %.3f -> %.3f GFLOPS: rescaling candidate by %.3f\n",
			baseRef, candRef, scale)
	}

	compared, failed := 0, 0
	logRatioSum := 0.0
	for k, bp := range base {
		if *alg != "" && k.algorithm != *alg {
			continue
		}
		cp, ok := cand[k]
		if !ok || bp.gflops <= 0 {
			continue
		}
		cg := cp.gflops * scale
		compared++
		ratio := cg / bp.gflops
		logRatioSum += math.Log(ratio)
		mark := " "
		if ratio < 1-*pointTol {
			failed++
			mark = "!"
		} else if ratio < 1-*tol {
			mark = "!" // informational: beyond -tol but not gating on its own
		}
		convNote := ""
		if bp.convertShare != nil && cp.convertShare != nil {
			if dshare := *cp.convertShare - *bp.convertShare; dshare > *convTol {
				failed++
				mark = "!"
				convNote = fmt.Sprintf("  convert share %4.1f%% -> %4.1f%%", 100**bp.convertShare, 100**cp.convertShare)
			}
		}
		if utilGate && bp.utilization != nil && cp.utilization != nil {
			if drop := *bp.utilization - *cp.utilization; drop > *utilTol {
				failed++
				mark = "!"
				convNote += fmt.Sprintf("  utilization %4.1f%% -> %4.1f%%", 100**bp.utilization, 100**cp.utilization)
			}
		}
		mode := k.mode
		if mode == "" {
			mode = "percall"
		}
		dims := fmt.Sprintf("n=%-5d", k.n)
		if k.m != 0 || k.k != 0 {
			dims = fmt.Sprintf("%dx%dx%d", k.m, k.k, k.n)
		}
		fmt.Printf("%s %-14s %-15s %-9s %-11s %-10s %6.2f -> %6.2f GFLOPS (%+5.1f%%)%s\n",
			mark, dims, mode, k.algorithm, k.layout, k.kernel, bp.gflops, cg, 100*(ratio-1), convNote)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable results (key mismatch?)")
		os.Exit(2)
	}
	geo := math.Exp(logRatioSum / float64(compared))
	fmt.Printf("geometric-mean GFLOPS ratio over %d points: %.3f\n", compared, geo)
	if geo < 1-*tol {
		failed++
		fmt.Fprintf(os.Stderr, "benchdiff: geometric mean regressed %.1f%% (tol %.0f%%)\n", 100*(1-geo), 100**tol)
	}

	// Serving-shape gate: the prepacked/percall ratio is computed within one
	// measurement window of the candidate, so host drift cancels.
	if *serveMin > 0 {
		for k, pp := range cand {
			if k.mode != "serve-prepacked" {
				continue
			}
			pcKey := k
			pcKey.mode = "serve-percall"
			pc, ok := cand[pcKey]
			if !ok || pc.gflops <= 0 {
				continue
			}
			speedup := pp.gflops / pc.gflops
			fmt.Printf("  n=%-5d serve speedup %.2fx (floor %.2fx)\n", k.n, speedup, *serveMin)
			if speedup < *serveMin {
				failed++
				fmt.Fprintf(os.Stderr, "benchdiff: serve speedup %.2fx at n=%d below floor %.2fx\n", speedup, k.n, *serveMin)
			}
		}
	}

	// Batched-GEMM gate (schema 7): like the serve gate, the batched vs
	// looped pair shares one measurement window of the candidate, so the
	// speedup is stable where cross-file points are not. It guards the
	// one-wave amortization directly — a change that quietly re-inflates
	// the per-item fixed costs fails here before it shows in the mean.
	if *batchMin > 0 {
		for k, be := range cand {
			var loopedMode string
			switch k.mode {
			case "batch-engine":
				loopedMode = "batch-looped"
			case "batch-serve-engine":
				loopedMode = "batch-serve-looped"
			default:
				continue
			}
			blKey := k
			blKey.mode = loopedMode
			bl, ok := cand[blKey]
			if !ok || bl.gflops <= 0 {
				continue
			}
			speedup := be.gflops / bl.gflops
			fmt.Printf("  n=%-5d %s speedup %.2fx over %s, %.1fus/item batch of %d (floor %.2fx)\n",
				k.n, k.mode, speedup, loopedMode, 1e6*be.perItem, be.batchSize, *batchMin)
			if speedup < *batchMin {
				failed++
				fmt.Fprintf(os.Stderr, "benchdiff: %s speedup %.2fx at n=%d below floor %.2fx\n", k.mode, speedup, k.n, *batchMin)
			}
		}
	}

	// Table-engine overhead gate (schema 8): within the candidate's
	// alg-shape sweep, the table-driven ⟨2,2,2⟩ Winograd runs the same
	// recursion as the hand-coded winograd through the generic engine,
	// so their ratio isolates the engine's constant-factor overhead in
	// one measurement window. It must stay within -tablemax.
	if *tableMax > 0 {
		for k, tw := range cand {
			if k.mode != "alg-shape" || k.algorithm != "winograd-2x2x2" {
				continue
			}
			hwKey := k
			hwKey.algorithm = "winograd"
			hw, ok := cand[hwKey]
			if !ok || hw.gflops <= 0 {
				continue
			}
			ratio := tw.gflops / hw.gflops
			fmt.Printf("  %dx%dx%d table winograd-2x2x2 vs hand-coded: %.3fx (floor %.3fx)\n",
				k.m, k.k, k.n, ratio, 1-*tableMax)
			if ratio < 1-*tableMax {
				failed++
				fmt.Fprintf(os.Stderr, "benchdiff: table winograd %.1f%% below hand-coded at %dx%dx%d (allowed %.0f%%)\n",
					100*(1-ratio), k.m, k.k, k.n, 100**tableMax)
			}
		}
	}

	// Serving-daemon records (schema 6; schema 7 adds the coalescing
	// workload twin and the coalesce rate; schema 9 the request-phase
	// attribution and flight-dump count): latency and shed rate under
	// a deliberately saturating load. Offered load, host contention, and
	// the generated request mix all move these numbers, so they inform
	// rather than gate.
	for k, bp := range base {
		if k.mode != "serve-daemon" && k.mode != "serve-daemon-batch" {
			continue
		}
		cp, ok := cand[k]
		if !ok {
			continue
		}
		fmt.Printf("  %s n=%-5d p50 %6.2fms -> %6.2fms  p99 %6.2fms -> %6.2fms  qps %6.0f -> %6.0f  shed %4.1f%% -> %4.1f%%  coalesce %4.1f%% -> %4.1f%% (informational)\n",
			k.mode, k.n, 1e3*bp.p50, 1e3*cp.p50, 1e3*bp.p99, 1e3*cp.p99, bp.qps, cp.qps, 100*bp.shed, 100*cp.shed, 100*bp.coalesce, 100*cp.coalesce)
		if line := attrDiff(bp, cp); line != "" {
			fmt.Printf("  %s n=%-5d %s\n", k.mode, k.n, line)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL (%d gate violation(s); geomean tol %.0f%%, point floor %.0f%%, convert-share tol %.0f pts)\n",
			failed, 100**tol, 100**pointTol, 100**convTol)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: PASS (%d points; geomean tol %.0f%%, point floor %.0f%%, convert share %.0f pts)\n",
		compared, 100**tol, 100**pointTol, 100**convTol)
}

// attrDiff renders the request-phase attribution movement between a
// baseline and a candidate serve-daemon record (schema 9). Phases are
// listed by candidate share, descending; a phase only one side measured
// shows the other side as "-". Empty when neither side has attribution
// (schema ≤8 files), so older baselines print nothing new.
func attrDiff(bp, cp point) string {
	if len(bp.attribution) == 0 && len(cp.attribution) == 0 {
		return ""
	}
	names := map[string]bool{}
	for n := range bp.attribution {
		names[n] = true
	}
	for n := range cp.attribution {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if cp.attribution[ordered[i]].Share != cp.attribution[ordered[j]].Share {
			return cp.attribution[ordered[i]].Share > cp.attribution[ordered[j]].Share
		}
		return ordered[i] < ordered[j]
	})
	share := func(m map[string]phaseAttr, n string) string {
		a, ok := m[n]
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*a.Share)
	}
	parts := make([]string, 0, len(ordered)+1)
	for _, n := range ordered {
		parts = append(parts, fmt.Sprintf("%s %s -> %s", n, share(bp.attribution, n), share(cp.attribution, n)))
	}
	if bp.flightDumps != 0 || cp.flightDumps != 0 {
		parts = append(parts, fmt.Sprintf("flight dumps %d -> %d", bp.flightDumps, cp.flightDumps))
	}
	return "attribution " + strings.Join(parts, ", ") + " (informational)"
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
