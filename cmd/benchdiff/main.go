// benchdiff compares two benchjson outputs and fails when the candidate
// regresses against the baseline — the guard `make bench` runs so a
// perf-focused change cannot silently slow the standard algorithm down.
//
// Usage:
//
//	benchdiff -baseline BENCH_3.json -candidate /tmp/bench_head.json [-alg standard] [-tol 0.10]
//
// Results are keyed on (n, algorithm, layout, kernel); only keys present
// in both files are compared. With -alg set, the comparison is
// restricted to that algorithm. The exit status is 1 if any compared
// point's GFLOPS falls below baseline × (1 − tol).
//
// When both files carry the ref_gflops host yardstick (benchjson
// schema 2), candidate GFLOPS are rescaled by baseline_ref/candidate_ref
// before comparison: the yardstick moves with host clock speed exactly
// like the benchmarked matmuls, so the rescaling cancels machine-speed
// drift between the two measurement windows and leaves only real code
// regressions. -noscale disables this.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type result struct {
	N         int     `json:"n"`
	Algorithm string  `json:"algorithm"`
	Layout    string  `json:"layout"`
	Kernel    string  `json:"kernel"`
	GFLOPS    float64 `json:"gflops"`
}

type output struct {
	Schema    int      `json:"schema"`
	RefGFLOPS float64  `json:"ref_gflops"`
	Results   []result `json:"results"`
}

type key struct {
	n                         int
	algorithm, layout, kernel string
}

func load(path string) (map[key]float64, float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var o output
	if err := json.Unmarshal(buf, &o); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[key]float64, len(o.Results))
	for _, r := range o.Results {
		m[key{r.N, r.Algorithm, r.Layout, r.Kernel}] = r.GFLOPS
	}
	return m, o.RefGFLOPS, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_3.json", "baseline benchjson file")
	candidate := flag.String("candidate", "", "candidate benchjson file (required)")
	alg := flag.String("alg", "", "restrict comparison to one algorithm (empty = all)")
	tol := flag.Float64("tol", 0.10, "allowed fractional GFLOPS regression")
	noscale := flag.Bool("noscale", false, "disable host-yardstick rescaling")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -candidate is required")
		os.Exit(2)
	}

	base, baseRef, err := load(*baseline)
	die(err)
	cand, candRef, err := load(*candidate)
	die(err)
	scale := 1.0
	if !*noscale && baseRef > 0 && candRef > 0 {
		scale = baseRef / candRef
		fmt.Printf("host yardstick %.3f -> %.3f GFLOPS: rescaling candidate by %.3f\n",
			baseRef, candRef, scale)
	}

	compared, regressed := 0, 0
	for k, bg := range base {
		if *alg != "" && k.algorithm != *alg {
			continue
		}
		cg, ok := cand[k]
		if !ok || bg <= 0 {
			continue
		}
		cg *= scale
		compared++
		delta := cg/bg - 1
		mark := " "
		if cg < bg*(1-*tol) {
			regressed++
			mark = "!"
		}
		fmt.Printf("%s n=%-5d %-9s %-11s %-10s %6.2f -> %6.2f GFLOPS (%+5.1f%%)\n",
			mark, k.n, k.algorithm, k.layout, k.kernel, bg, cg, 100*delta)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable results (key mismatch?)")
		os.Exit(2)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d/%d points regressed more than %.0f%%\n",
			regressed, compared, 100**tol)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d points within %.0f%% of baseline\n", compared, 100**tol)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
