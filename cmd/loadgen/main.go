// loadgen drives a recmatd daemon with closed-loop multi-tenant
// traffic and prints a latency/throughput/shedding summary — the
// companion load generator of the chaos soak suite.
//
// Usage:
//
//	loadgen [-url http://127.0.0.1:8080] [-duration 10s] [-conc 8]
//	        [-tenants 4] [-max-dim 256] [-named 0.5] [-deadline 2000]
//	        [-seed 1] [-workload mixed|batch] [-json]
//
// Each of -conc workers loops submit → wait → submit against the
// daemon, so offered load tracks capacity; raise -conc past the
// daemon's -max-inflight to exercise queueing and load shedding.
// Failed attempts are retried with backoff only when the server says
// the failure is retryable (shed, quota, draining).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "recmatd base URL")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	conc := flag.Int("conc", 8, "closed-loop workers")
	tenants := flag.Int("tenants", 4, "distinct tenants")
	maxDim := flag.Int("max-dim", 256, "max generated m, k, n")
	named := flag.Float64("named", 0.5, "fraction of requests using named (plan-cached) operands")
	deadline := flag.Int64("deadline", 2000, "per-request deadline in ms")
	seed := flag.Int64("seed", 1, "generator seed")
	workload := flag.String("workload", "mixed", "request mix: mixed | batch (coalescing workload: few named small operands, skinny right-hand sides)")
	retries := flag.Int("retries", 3, "client retry budget for retryable failures (-1 disables)")
	asJSON := flag.Bool("json", false, "emit the summary as JSON")
	flag.Parse()

	gen := &serve.LoadGen{
		Client:      &serve.Client{BaseURL: *url, MaxRetries: *retries},
		Tenants:     *tenants,
		Concurrency: *conc,
		MaxDim:      *maxDim,
		NamedFrac:   *named,
		DeadlineMS:  *deadline,
		Seed:        *seed,
		Workload:    *workload,
	}
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	sum := gen.Run(ctx)

	if *asJSON {
		out := map[string]any{
			"duration_seconds": sum.Duration.Seconds(),
			"total":            sum.Total,
			"ok":               sum.OK,
			"failed":           sum.Failed,
			"qps":              sum.QPS(),
			"shed_rate":        sum.ShedRate(),
			"p50_seconds":      sum.Percentile(50).Seconds(),
			"p99_seconds":      sum.Percentile(99).Seconds(),
			"degraded":         sum.Degraded,
			"plan_cached":      sum.PlanCached,
			"coalesced":        sum.Coalesced,
			"coalesce_rate":    sum.CoalesceRate(),
		}
		if len(sum.Attribution) > 0 {
			out["attribution"] = sum.Attribution
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(sum)
}
